#!/usr/bin/env python3
"""Bench-delta gate: fail CI when the hot paths regress past tolerance.

Raw ns-per-run numbers are not comparable across machines, so every
check is either (a) an absolute bound on the *committed* baseline files
(measured on the machine of record and refreshed with each perf PR), or
(b) a machine-normalized ratio comparing a fresh measurement against the
committed one:

  admission  window-x100 / greedy-x100 — GREEDY is the reference kernel:
             both scale with the machine, the quotient tracks only the
             WINDOW packing path.
  store      (batch64 - wal-off) / (batch1 - wal-off) — the group-commit
             amortization: journal overhead at batch=64 as a share of
             the fsync-per-record overhead.  Both sides count the same
             fsyncs, so the quotient is machine-stable.  Skipped when
             the fresh machine's fsync is too cheap to measure (tmpfs
             runners): with no fsync cost to amortize the quotient
             degenerates to CPU noise.
  malleable  no-reshape-x10 / greedy-x100 — the water-fill solve against
             the same reference kernel (both admit the same x10/x100
             workload family, the quotient tracks only the step-profile
             solver), plus reshape-100 / greedy-x100 for the EDF
             re-solve path on its fixed 100-request storm.
  serve      loadgen throughput, normalized by the greedy-x100 speed
             factor between the two machines.
  shard      1 -> N domain scaling of `serve --shards`
             (scripts/bench_shard.sh).  The ">= 2x at 4 domains" target
             is only measurable on a machine with >= 4 cores, so each
             BENCH_shard.json records an honest `cores` field and the
             gate skips below that — on any machine the runs must at
             least exist, parse, and keep 4-domain throughput within
             tolerance of 1-domain (oversubscribed domains on a small
             host may not scale, but they must not collapse).

Exit 0 when every gate passes, 1 otherwise, with one line per check.
"""

import argparse
import json
import sys

WINDOW = "gridbw admission:window-x100"
GREEDY = "gridbw admission:greedy-x100"
MALLEABLE_SOLVE = "gridbw malleable:no-reshape-x10"
MALLEABLE_RESHAPE = "gridbw malleable:reshape-100"
BATCH1 = "gridbw store:greedy-wal-batch1"
BATCH64 = "gridbw store:greedy-wal-batch64"
WAL_OFF = "gridbw store:greedy-wal-off"

# Absolute targets for the committed baselines (machine of record).
WINDOW_X100_TARGET_NS = 50e6  # WINDOW-x100 < 50 ms
MALLEABLE_SOLVE_TARGET_NS = 150e6  # water-fill solve (no reshape) x10 < 150 ms
STORE_AMORTIZATION_TARGET = 0.10  # batch=64 overhead < 10% of batch=1's

# Below this overhead1/wal-off multiple, fsync is effectively free on the
# fresh machine and the store amortization quotient is meaningless.
MIN_FSYNC_SIGNAL = 20.0

# Shard-scaling targets: at >= 4 real cores, 4 domains must deliver at
# least this multiple of 1-domain throughput; below 4 cores the scaling
# gate is unmeasurable and only the no-collapse floor applies.
SHARD_SCALING_TARGET = 2.0
SHARD_SCALING_CORES = 4


def shard_runs(path):
    with open(path) as f:
        data = json.load(f)
    runs = {run["shards"]: run for run in data.get("runs", [])}
    if 1 not in runs:
        sys.exit(f"bench-delta: {path} has no shards=1 run")
    if not any(n >= SHARD_SCALING_CORES for n in runs):
        sys.exit(f"bench-delta: {path} has no >= {SHARD_SCALING_CORES}-shard run")
    return data.get("cores"), runs


def check_shard(g, label, path, tol):
    cores, runs = shard_runs(path)
    rps1 = runs[1]["throughput_rps"]
    wide = max(n for n in runs if n >= SHARD_SCALING_CORES)
    rpsn = runs[wide]["throughput_rps"]
    speedup = rpsn / rps1
    if cores is not None and cores >= SHARD_SCALING_CORES:
        g.check(
            speedup >= SHARD_SCALING_TARGET,
            f"{label} shard scaling",
            f"{wide} domains = {speedup:.2f}x of 1 domain on {cores} cores "
            f"(target >= {SHARD_SCALING_TARGET:.1f}x)",
        )
    else:
        g.note(
            f"{label} shard scaling",
            f"{wide} domains = {speedup:.2f}x of 1 domain, but the file records "
            f"cores={cores}: >= {SHARD_SCALING_CORES} cores needed to measure the "
            f">= {SHARD_SCALING_TARGET:.1f}x target",
        )
    # Even oversubscribed, the sharded path must not collapse vs 1 domain.
    g.check(
        speedup >= 1 - tol,
        f"{label} shard no-collapse",
        f"{wide}-domain throughput {rpsn:.0f} req/s is {speedup:.2f}x of "
        f"1-domain {rps1:.0f} (allowed >= {1 - tol:.2f}x)",
    )


def timings(path):
    with open(path) as f:
        data = json.load(f)
    return {row["name"]: row["ns_per_run"] for row in data}


def need(table, name, path):
    if name not in table or table[name] is None:
        sys.exit(f"bench-delta: {path} is missing {name!r}")
    return table[name]


class Gate:
    def __init__(self):
        self.failed = False

    def check(self, ok, label, detail):
        status = "ok  " if ok else "FAIL"
        print(f"[{status}] {label}: {detail}")
        if not ok:
            self.failed = True

    def note(self, label, detail):
        print(f"[skip] {label}: {detail}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline-admission", required=True)
    ap.add_argument("--fresh-admission", required=True)
    ap.add_argument("--baseline-store", required=True)
    ap.add_argument("--fresh-store", required=True)
    ap.add_argument("--baseline-malleable")
    ap.add_argument("--fresh-malleable")
    ap.add_argument("--baseline-serve")
    ap.add_argument("--fresh-serve")
    ap.add_argument("--baseline-shard")
    ap.add_argument("--fresh-shard")
    ap.add_argument("--tolerance", type=float, default=0.25)
    args = ap.parse_args()
    tol = args.tolerance
    g = Gate()

    base_adm = timings(args.baseline_admission)
    fresh_adm = timings(args.fresh_admission)
    base_store = timings(args.baseline_store)
    fresh_store = timings(args.fresh_store)

    # --- absolute bounds on the committed baselines ---
    w = need(base_adm, WINDOW, args.baseline_admission)
    g.check(
        w < WINDOW_X100_TARGET_NS,
        "committed window-x100",
        f"{w / 1e6:.2f} ms (target < {WINDOW_X100_TARGET_NS / 1e6:.0f} ms)",
    )

    b1 = need(base_store, BATCH1, args.baseline_store)
    b64 = need(base_store, BATCH64, args.baseline_store)
    off = need(base_store, WAL_OFF, args.baseline_store)
    base_amort = (b64 - off) / (b1 - off)
    g.check(
        0 < base_amort < STORE_AMORTIZATION_TARGET,
        "committed store amortization",
        f"batch64 overhead = {base_amort * 100:.1f}% of batch1's "
        f"(target < {STORE_AMORTIZATION_TARGET * 100:.0f}%)",
    )

    # --- machine-normalized regression checks ---
    base_greedy = need(base_adm, GREEDY, args.baseline_admission)
    fresh_greedy = need(fresh_adm, GREEDY, args.fresh_admission)
    fresh_w = need(fresh_adm, WINDOW, args.fresh_admission)
    base_ratio = w / base_greedy
    fresh_ratio = fresh_w / fresh_greedy
    g.check(
        fresh_ratio <= base_ratio * (1 + tol),
        "admission window/greedy ratio",
        f"fresh {fresh_ratio:.2f} vs committed {base_ratio:.2f} "
        f"(allowed <= {base_ratio * (1 + tol):.2f})",
    )

    f1 = need(fresh_store, BATCH1, args.fresh_store)
    f64 = need(fresh_store, BATCH64, args.fresh_store)
    foff = need(fresh_store, WAL_OFF, args.fresh_store)
    if f1 - foff < MIN_FSYNC_SIGNAL * foff:
        g.note(
            "store amortization",
            f"fsync overhead only {(f1 - foff) / foff:.1f}x wal-off on this "
            f"machine (< {MIN_FSYNC_SIGNAL:.0f}x): nothing to amortize, quotient is noise",
        )
    else:
        fresh_amort = (f64 - foff) / (f1 - foff)
        g.check(
            fresh_amort <= base_amort * (1 + tol),
            "store amortization",
            f"fresh {fresh_amort * 100:.1f}% vs committed {base_amort * 100:.1f}% "
            f"(allowed <= {base_amort * (1 + tol) * 100:.1f}%)",
        )

    if args.baseline_malleable and args.fresh_malleable:
        base_mall = timings(args.baseline_malleable)
        fresh_mall = timings(args.fresh_malleable)
        bm_solve = need(base_mall, MALLEABLE_SOLVE, args.baseline_malleable)
        g.check(
            bm_solve < MALLEABLE_SOLVE_TARGET_NS,
            "committed malleable solve",
            f"{bm_solve / 1e6:.2f} ms (target < {MALLEABLE_SOLVE_TARGET_NS / 1e6:.0f} ms)",
        )
        # The reshape kernel runs ~0.5 s per iteration, so Bechamel gets
        # few samples and the measurement is noisy (~25% swings on one
        # machine); gate it at double tolerance.
        for label, key, k_tol in (
            ("malleable solve/greedy ratio", MALLEABLE_SOLVE, tol),
            ("malleable reshape/greedy ratio", MALLEABLE_RESHAPE, 2 * tol),
        ):
            base_k = need(base_mall, key, args.baseline_malleable)
            fresh_k = need(fresh_mall, key, args.fresh_malleable)
            base_r = base_k / base_greedy
            fresh_r = fresh_k / fresh_greedy
            g.check(
                fresh_r <= base_r * (1 + k_tol),
                label,
                f"fresh {fresh_r:.2f} vs committed {base_r:.2f} "
                f"(allowed <= {base_r * (1 + k_tol):.2f})",
            )

    if args.baseline_serve and args.fresh_serve:
        with open(args.baseline_serve) as f:
            base_rps = json.load(f)["throughput_rps"]
        with open(args.fresh_serve) as f:
            fresh_rps = json.load(f)["throughput_rps"]
        # Scale the fresh throughput by the machine speed factor measured
        # on the admission reference kernel (slower machine, higher
        # greedy ns, credit the throughput accordingly).
        normalized = fresh_rps * (fresh_greedy / base_greedy)
        g.check(
            normalized >= base_rps * (1 - tol),
            "serve throughput",
            f"fresh {fresh_rps:.0f} req/s (normalized {normalized:.0f}) vs "
            f"committed {base_rps:.0f} (allowed >= {base_rps * (1 - tol):.0f})",
        )

    if args.baseline_shard:
        check_shard(g, "committed", args.baseline_shard, tol)
    if args.fresh_shard:
        check_shard(g, "fresh", args.fresh_shard, tol)

    sys.exit(1 if g.failed else 0)


if __name__ == "__main__":
    main()
