#!/bin/sh
# 1 -> N domain scaling benchmark for `gridbw serve --shards`.
#
# For each shard count (default 1 2 4), run the daemon with a fresh
# store, drive the closed-loop load generator with a fixed seed, scrape
# the live /metrics histogram for the admit-search stage, and shut the
# daemon down gracefully.  Emits one JSON object:
#
#   { "benchmark": "shard_scaling", "cores": <nproc>, ...,
#     "runs": [ { "shards": N, "throughput_rps": ...,
#                 "admit_search_mean_ns": ..., ... }, ... ] }
#
# The `cores` field is what scripts/bench_delta.py keys its scaling gate
# on: "4 domains >= 2x 1 domain" is only measurable on a machine that
# actually has >= 4 cores, so the gate records the core count and skips
# elsewhere (the same philosophy as the fsync-signal skip — never gate
# on noise).
#
# Usage: scripts/bench_shard.sh [OUT.json]
# Env:   G (gridbw binary), REQUESTS, CONNS, SHARD_COUNTS, PORT_BASE
set -eu

G=${G:-./_build/default/bin/gridbw.exe}
OUT=${1:-BENCH_shard.json}
REQUESTS=${REQUESTS:-20000}
CONNS=${CONNS:-8}
SHARD_COUNTS=${SHARD_COUNTS:-1 2 4}
PORT_BASE=${PORT_BASE:-9340}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

for n in $SHARD_COUNTS; do
  sock="$work/s$n.sock"
  port=$((PORT_BASE + n))
  "$G" serve --socket "$sock" --store-dir "$work/store$n" --store-batch 64 \
    --shards "$n" --metrics-port "$port" 2> "$work/serve$n.log" &
  pid=$!
  i=0
  while [ ! -S "$sock" ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
  if [ ! -S "$sock" ]; then
    echo "bench_shard: daemon (shards=$n) never bound $sock" >&2
    cat "$work/serve$n.log" >&2
    exit 1
  fi
  "$G" loadgen --socket "$sock" --requests "$REQUESTS" --connections "$CONNS" \
    --seed 42 --mean-interarrival 14 --cancel-every 50 --binary \
    --bench-out "$work/run$n.json" 1>&2
  # scrape the admit-search stage histogram while the daemon is still up
  python3 - "$port" > "$work/admit$n.json" <<'EOF'
import json, sys, urllib.request
url = "http://127.0.0.1:%s/metrics" % sys.argv[1]
text = urllib.request.urlopen(url, timeout=10).read().decode()
sum_ns = count = None
for line in text.splitlines():
    if line.startswith("serve_stage_admit_search_ns_sum "):
        sum_ns = float(line.split()[1])
    elif line.startswith("serve_stage_admit_search_ns_count "):
        count = int(line.split()[1])
assert sum_ns is not None and count, "admit-search histogram missing from /metrics"
json.dump({"admit_search_mean_ns": sum_ns / count,
           "admit_search_count": count}, sys.stdout)
EOF
  kill -TERM "$pid"
  wait "$pid"
done

SHARD_COUNTS="$SHARD_COUNTS" REQUESTS="$REQUESTS" CONNS="$CONNS" WORK="$work" \
  python3 - > "$OUT" <<'EOF'
import json, os, sys
work = os.environ["WORK"]
runs = []
for n in os.environ["SHARD_COUNTS"].split():
    run = json.load(open("%s/run%s.json" % (work, n)))
    admit = json.load(open("%s/admit%s.json" % (work, n)))
    runs.append({
        "shards": int(n),
        "throughput_rps": run["throughput_rps"],
        "lat_p50_us": run["lat_p50_us"],
        "lat_p95_us": run["lat_p95_us"],
        "admitted": run["admitted"],
        "admit_search_mean_ns": admit["admit_search_mean_ns"],
        "admit_search_count": admit["admit_search_count"],
    })
json.dump({
    "benchmark": "shard_scaling",
    "cores": os.cpu_count(),
    "requests": int(os.environ["REQUESTS"]),
    "connections": int(os.environ["CONNS"]),
    "seed": 42,
    "runs": runs,
}, sys.stdout, indent=2)
print()
EOF
echo "bench_shard: wrote $OUT" >&2
