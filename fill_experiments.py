#!/usr/bin/env python3
"""Splice measured tables from results_default.txt into EXPERIMENTS.md.

Run after `dune exec bin/gridbw.exe -- all --csv-dir results
> results_default.txt` (plus the extra tables appended by the final-run
recipe). Idempotent: placeholders of the form <!--NAME--> are replaced by
fenced blocks; notes placeholders are left for hand-written analysis.
"""

import re
import sys

RESULTS = "results_default.txt"
TARGET = "EXPERIMENTS.md"


def extract_blocks(text):
    """Return {header: table_text} for '== name ==' sections and figures."""
    blocks = {}
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        m = re.match(r"^== (.+?)(?: ==|:)", line)
        if m:
            name = m.group(1).strip()
            # Collect the aligned table that follows (skip '(y: ...)').
            j = i + 1
            table = []
            started = False
            while j < len(lines):
                l = lines[j]
                if l.startswith("+") or l.startswith("|"):
                    started = True
                    table.append(l)
                elif started:
                    break
                elif l.startswith("(y:") or l.strip() == "":
                    pass
                else:
                    break
                j += 1
            if table:
                blocks[name] = "\n".join(table)
            i = j
        else:
            i += 1
    return blocks


def main():
    text = open(RESULTS).read()
    blocks = extract_blocks(text)

    mapping = {
        "FIG4-ACCEPT": "fig4-accept",
        "FIG4-UTIL": "fig4-util",
        "FIG5": "fig5",
        "FIG67": ["fig6-heavy", "fig6-under", "fig7-heavy", "fig7-under"],
        "TUNING": "tuning",
        "OPTGAP": "optgap",
        "BASELINE": "baseline",
        "COALLOC": "coalloc",
        "NPC": "npc",
        "LONGLIVED": "longlived",
        "DISTRIBUTED": "distributed",
        "ABLATION": "ablation-window",
        "BOOKAHEAD": "bookahead",
        "TRANSPORT": "transport",
    }

    md = open(TARGET).read()
    missing = []
    for placeholder, keys in mapping.items():
        keys = keys if isinstance(keys, list) else [keys]
        parts = []
        for k in keys:
            hit = next((v for name, v in blocks.items() if name.startswith(k)), None)
            if hit is None:
                missing.append(k)
            else:
                parts.append(f"`{k}`:\n\n```\n{hit}\n```")
        if parts:
            md = md.replace(f"<!--{placeholder}-->", "\n\n".join(parts))
    open(TARGET, "w").write(md)
    if missing:
        print("missing blocks:", ", ".join(missing), file=sys.stderr)
    print("spliced", len(mapping) - len(missing), "sections")


if __name__ == "__main__":
    main()
