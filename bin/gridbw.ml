(* gridbw — command-line driver for the HPDC'06 bandwidth-sharing
   reproduction.  Subcommands regenerate each paper figure/table, generate
   and replay workload traces, and demonstrate the Theorem 1 reduction.
   See DESIGN.md for the experiment index. *)

open Cmdliner
module Figure = Gridbw_report.Figure
module Table = Gridbw_report.Table
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Trace = Gridbw_workload.Trace
module Summary = Gridbw_metrics.Summary
module Rigid = Gridbw_core.Rigid
module Policy = Gridbw_core.Policy
module Scheduler = Gridbw_core.Scheduler
module Types = Gridbw_core.Types
module Runner = Gridbw_experiments.Runner
module Rng = Gridbw_prng.Rng
module Provenance = Gridbw_report.Provenance
module Replay = Gridbw_metrics.Replay
module Obs = Gridbw_obs.Obs
module Sink = Gridbw_obs.Sink
module Event = Gridbw_obs.Event
module Span = Gridbw_obs.Span
module Flight = Gridbw_obs.Flight
module Runtime = Gridbw_core.Runtime
module Store = Gridbw_store.Store
module Wal = Gridbw_store.Wal
module Json = Gridbw_obs.Json
module Daemon = Gridbw_serve.Daemon
module Loadgen = Gridbw_serve.Loadgen
module Malleable = Gridbw_malleable.Malleable

(* --- shared options --- *)

let count_t =
  Arg.(value & opt (some int) None & info [ "count" ] ~docv:"N" ~doc:"Requests per replication.")

let reps_t =
  Arg.(value & opt (some int) None & info [ "reps" ] ~docv:"R" ~doc:"Replications per point.")

let seed_t =
  Arg.(value & opt (some int64) None & info [ "seed" ] ~docv:"SEED" ~doc:"Base RNG seed.")

let quick_t =
  Arg.(value & flag & info [ "quick" ] ~doc:"Small sizes (fast smoke run).")

let csv_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv-dir" ] ~docv:"DIR" ~doc:"Also write each figure/table as CSV into $(docv).")

let params_of quick count reps seed =
  let base = if quick then Runner.quick else Runner.defaults in
  Runner.with_params ?count ?reps ?seed base

let params_fields (p : Runner.params) =
  [ Provenance.seed p.Runner.seed; Provenance.int "count" p.Runner.count;
    Provenance.int "reps" p.Runner.reps ]

let write_csv ?stamp dir name contents =
  match dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          Option.iter (fun s -> output_string oc (s ^ "\n")) stamp;
          output_string oc contents);
      Printf.printf "wrote %s\n" path

let emit_figure ?stamp csv_dir fig =
  Figure.print fig;
  write_csv ?stamp csv_dir fig.Figure.id (Figure.to_csv fig);
  match csv_dir with
  | None -> ()
  | Some dir -> Printf.printf "wrote %s\n" (Gridbw_report.Gnuplot.write ~dir fig)

let emit_table ?stamp csv_dir name table =
  Printf.printf "== %s ==\n" name;
  Table.print table;
  write_csv ?stamp csv_dir name (Table.to_csv table)

(* --- figure command --- *)

let run_figure params csv_dir num =
  let stamp = Provenance.line ~cmd:(Printf.sprintf "figure %d" num) (params_fields params) in
  let emit_figure fig = emit_figure ~stamp csv_dir fig in
  match num with
  | 4 ->
      print_endline stamp;
      let accept, util = Gridbw_experiments.Figure4.run params in
      emit_figure accept;
      emit_figure util
  | 5 ->
      print_endline stamp;
      emit_figure (Gridbw_experiments.Figure5.run params)
  | 6 ->
      print_endline stamp;
      let heavy, under = Gridbw_experiments.Figure6.figure6 params in
      emit_figure heavy;
      emit_figure under
  | 7 ->
      print_endline stamp;
      let heavy, under = Gridbw_experiments.Figure6.figure7 params in
      emit_figure heavy;
      emit_figure under
  | n -> Printf.eprintf "unknown figure %d (paper evaluation figures: 4-7)\n" n

let figure_cmd =
  let num_t = Arg.(required & pos 0 (some int) None & info [] ~docv:"NUM" ~doc:"Figure number (4-7).") in
  let run num quick count reps seed csv_dir =
    run_figure (params_of quick count reps seed) csv_dir num
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate a paper figure (4, 5, 6 or 7).")
    Term.(const run $ num_t $ quick_t $ count_t $ reps_t $ seed_t $ csv_dir_t)

(* --- table command --- *)

let table_names =
  [ "tuning"; "optgap"; "baseline"; "coalloc"; "npc"; "ablation"; "longlived"; "distributed";
    "bookahead"; "transport"; "corestress"; "faults"; "malleable" ]

let run_table params csv_dir name =
  let stamp = Provenance.line ~cmd:("table " ^ name) (params_fields params) in
  let emit_table csv_dir n t = emit_table ~stamp csv_dir n t in
  let emit_figure csv_dir fig = emit_figure ~stamp csv_dir fig in
  if List.mem name table_names then print_endline stamp;
  match name with
  | "tuning" ->
      emit_table csv_dir "tuning"
        (Gridbw_experiments.Tuning.to_table (Gridbw_experiments.Tuning.run params))
  | "optgap" ->
      emit_table csv_dir "optgap"
        (Gridbw_experiments.Optgap.to_table (Gridbw_experiments.Optgap.run params));
      emit_table csv_dir "optgap-flexible"
        (Gridbw_experiments.Optgap.to_table (Gridbw_experiments.Optgap.run_flexible params))
  | "baseline" ->
      emit_table csv_dir "baseline"
        (Gridbw_experiments.Baseline_cmp.to_table (Gridbw_experiments.Baseline_cmp.run params))
  | "coalloc" ->
      emit_table csv_dir "coalloc"
        (Gridbw_experiments.Coalloc_exp.to_table (Gridbw_experiments.Coalloc_exp.run params))
  | "npc" ->
      emit_table csv_dir "npc"
        (Gridbw_experiments.Npc_demo.to_table (Gridbw_experiments.Npc_demo.run params))
  | "ablation" -> emit_figure csv_dir (Gridbw_experiments.Ablation.run params)
  | "longlived" ->
      emit_table csv_dir "longlived"
        (Gridbw_experiments.Long_lived_exp.to_table (Gridbw_experiments.Long_lived_exp.run params))
  | "distributed" ->
      emit_table csv_dir "distributed"
        (Gridbw_experiments.Distributed_exp.to_table
           (Gridbw_experiments.Distributed_exp.run params))
  | "bookahead" ->
      emit_table csv_dir "bookahead"
        (Gridbw_experiments.Bookahead_exp.to_table (Gridbw_experiments.Bookahead_exp.run params))
  | "transport" ->
      emit_table csv_dir "transport"
        (Gridbw_experiments.Transport_exp.to_table (Gridbw_experiments.Transport_exp.run params))
  | "corestress" ->
      emit_table csv_dir "corestress"
        (Gridbw_experiments.Core_stress.to_table (Gridbw_experiments.Core_stress.run params))
  | "faults" ->
      let g_ok, w_ok = Gridbw_experiments.Fault_exp.parity params in
      Printf.printf "fault-free parity: greedy %s, window %s\n%!"
        (if g_ok then "ok" else "BROKEN") (if w_ok then "ok" else "BROKEN");
      emit_table csv_dir "faults"
        (Gridbw_experiments.Fault_exp.to_table (Gridbw_experiments.Fault_exp.run params));
      emit_table csv_dir "faults-victims"
        (Gridbw_experiments.Fault_exp.ablation_table
           (Gridbw_experiments.Fault_exp.run_ablation params))
  | "malleable" ->
      emit_table csv_dir "malleable"
        (Gridbw_experiments.Malleable_exp.to_table (Gridbw_experiments.Malleable_exp.run params));
      emit_table csv_dir "malleable-optgap"
        (Gridbw_experiments.Malleable_exp.gap_table
           (Gridbw_experiments.Malleable_exp.gap ~seed:params.Runner.seed ()))
  | other ->
      Printf.eprintf "unknown table %s (%s)\n" other (String.concat "|" table_names)

let table_cmd =
  let name_t =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"NAME" ~doc:"tuning, optgap, baseline, coalloc, npc, ablation, longlived, distributed, bookahead, transport, corestress, faults or malleable.")
  in
  let run name quick count reps seed csv_dir =
    run_table (params_of quick count reps seed) csv_dir name
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate an extension experiment table (E5-E9).")
    Term.(const run $ name_t $ quick_t $ count_t $ reps_t $ seed_t $ csv_dir_t)

(* --- all command --- *)

let all_cmd =
  let run quick count reps seed csv_dir =
    let params = params_of quick count reps seed in
    List.iter (run_figure params csv_dir) [ 4; 5; 6; 7 ];
    List.iter (run_table params csv_dir) table_names
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every figure and table.")
    Term.(const run $ quick_t $ count_t $ reps_t $ seed_t $ csv_dir_t)

(* --- workload command --- *)

let workload_cmd =
  let out_t =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output CSV.")
  in
  let load_t =
    Arg.(value & opt (some float) None & info [ "load" ] ~docv:"L" ~doc:"Rigid workload at offered load $(docv).")
  in
  let inter_t =
    Arg.(value & opt (some float) None
         & info [ "interarrival" ] ~docv:"T" ~doc:"Flexible workload with mean inter-arrival $(docv) s.")
  in
  let run out load inter count seed =
    let count = Option.value ~default:1000 count in
    let seed = Option.value ~default:42L seed in
    let spec =
      match (load, inter) with
      | Some load, None -> Spec.paper_rigid ~count ~load ()
      | None, Some mean_interarrival -> Spec.paper_flexible ~count ~mean_interarrival ()
      | None, None -> Spec.paper_flexible ~count ~mean_interarrival:1.0 ()
      | Some _, Some _ -> failwith "pass either --load (rigid) or --interarrival (flexible)"
    in
    Provenance.print ~cmd:"workload"
      (Provenance.seed seed :: Provenance.int "count" count
      ::
      (match (load, inter) with
      | Some l, _ -> [ Provenance.float "load" l ]
      | None, Some t -> [ Provenance.float "interarrival" t ]
      | None, None -> [ Provenance.float "interarrival" 1.0 ]));
    let requests = Gen.generate (Rng.create ~seed ()) spec in
    Trace.to_file out requests;
    Format.printf "%a@.wrote %d requests to %s (measured load %.2f)@." Spec.pp spec
      (List.length requests) out
      (Gen.measured_load spec.Spec.fabric requests)
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Generate a workload trace (section 4.3 / 5.3 settings).")
    Term.(const run $ out_t $ load_t $ inter_t $ count_t $ seed_t)

(* --- run command --- *)

let pp_heuristic ppf = function
  | `Fcfs -> Format.pp_print_string ppf "fcfs"
  | `Fifo_blocking -> Format.pp_print_string ppf "fifo"
  | `Slots c -> Format.pp_print_string ppf (Rigid.cost_name c)
  | `Greedy -> Format.pp_print_string ppf "greedy"
  | `Window -> Format.pp_print_string ppf "window"
  | `Window_deferred -> Format.pp_print_string ppf "window-deferred"
  | `Malleable -> Format.pp_print_string ppf "malleable"

let heuristic_conv =
  let parse = function
    | "fcfs" -> Ok `Fcfs
    | "fifo" -> Ok `Fifo_blocking
    | "cumulated" -> Ok (`Slots Rigid.Cumulated)
    | "minbw" -> Ok (`Slots Rigid.Min_bw)
    | "minvol" -> Ok (`Slots Rigid.Min_vol)
    | "greedy" -> Ok `Greedy
    | "window" -> Ok `Window
    | "window-deferred" -> Ok `Window_deferred
    | "malleable" -> Ok `Malleable
    | s -> Error (`Msg ("unknown heuristic " ^ s))
  in
  Arg.conv (parse, pp_heuristic)

(* The stamp of a trace-replay command: everything that determines the
   decision stream, and nothing about output destinations — a traced run
   and a plain run must print byte-identical stdout (CI checks this). *)
let replay_fields ?(book_ahead = 0.) ?(reshape = true) trace heuristic policy step =
  [ ("trace", trace);
    ("heuristic", Format.asprintf "%a" pp_heuristic heuristic);
    ("policy", Format.asprintf "%a" Policy.pp policy);
    Provenance.float "step" step ]
  @
  (* only the malleable engine reads these two, so only its stamp
     carries them — other heuristics' stdout is unchanged *)
  match heuristic with
  | `Malleable ->
      [ Provenance.float "book_ahead" book_ahead; ("reshape", string_of_bool reshape) ]
  | _ -> []

let policy_conv =
  let parse s =
    if s = "minrate" then Ok Policy.Min_rate
    else
      match float_of_string_opt s with
      | Some f when f >= 0. && f <= 1. -> Ok (Policy.Fraction_of_max f)
      | _ -> Error (`Msg "policy is 'minrate' or a fraction in [0,1]")
  in
  Arg.conv (parse, Policy.pp)

(* Both trace-replay commands dispatch through the first-class scheduler
   interface rather than matching on heuristic constructors. *)
let scheduler_of ?(book_ahead = 0.) ?(reshape = true) heuristic policy ~step =
  match heuristic with
  | (`Fcfs | `Fifo_blocking | `Slots _) as kind -> Scheduler.of_rigid kind
  | `Greedy -> Scheduler.of_flexible `Greedy policy
  | `Window -> Scheduler.of_flexible (`Window step) policy
  | `Window_deferred -> Scheduler.of_flexible (`Window_deferred step) policy
  | `Malleable -> Malleable.scheduler { Malleable.default with Malleable.book_ahead; reshape }

let run_cmd =
  let trace_t =
    Arg.(required & opt (some file) None & info [ "trace" ] ~docv:"FILE" ~doc:"Workload CSV.")
  in
  let heuristic_t =
    Arg.(value & opt heuristic_conv `Greedy
         & info [ "heuristic" ] ~docv:"H"
             ~doc:"fifo|fcfs|cumulated|minbw|minvol|greedy|window|window-deferred|malleable.")
  in
  let policy_t =
    Arg.(value & opt policy_conv Policy.Min_rate
         & info [ "policy" ] ~docv:"P" ~doc:"minrate or a MaxRate fraction f in [0,1].")
  in
  let step_t =
    Arg.(value & opt float 400. & info [ "step" ] ~docv:"S" ~doc:"WINDOW interval length (s).")
  in
  let book_ahead_t =
    Arg.(value & opt float 0.
         & info [ "book-ahead" ] ~docv:"S"
             ~doc:"MALLEABLE: decide each request $(docv) seconds before its start time \
                   (in-advance booking; announce order).")
  in
  let no_reshape_t =
    Arg.(value & flag
         & info [ "no-reshape" ]
             ~doc:"MALLEABLE: reject on first fit failure instead of re-solving the \
                   pending (admitted, not yet started) profiles.")
  in
  let trace_out_t =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write an event trace of every arrival and decision to $(docv) \
                   (binary frames by default; see --trace-format).")
  in
  let trace_format_t =
    let fmt = Arg.enum [ ("binary", `Binary); ("jsonl", `Jsonl) ] in
    Arg.(value & opt fmt `Binary
         & info [ "trace-format" ] ~docv:"F"
             ~doc:"Trace encoding: 'binary' (length-prefixed frames, the default) or 'jsonl' \
                   (one JSON object per line).  replay-trace reads either, sniffing the \
                   format from the first byte.")
  in
  let metrics_out_t =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Dump the telemetry registry (Prometheus text format) to $(docv).")
  in
  let store_dir_t =
    Arg.(value & opt (some string) None
         & info [ "store-dir" ] ~docv:"DIR"
             ~doc:"Journal the run durably into $(docv) (WAL + snapshots).  If $(docv) already \
                   holds a store, recover it and resume the interrupted run (greedy only); the \
                   resumed stdout is byte-identical to an uninterrupted run.")
  in
  let store_batch_t =
    Arg.(value & opt int Wal.default_config.Wal.batch
         & info [ "store-batch" ] ~docv:"N" ~doc:"Group commit: fsync the WAL every $(docv) records.")
  in
  let store_kill_t =
    Arg.(value & opt (some int) None
         & info [ "store-kill-after" ] ~docv:"N"
             ~doc:"Crash drill: SIGKILL the process mid-append of WAL record $(docv), leaving a \
                   torn record on disk (testing aid).")
  in
  let run trace heuristic policy step book_ahead no_reshape trace_out trace_format metrics_out
      store_dir store_batch store_kill =
    let reshape = not no_reshape in
    let requests = Trace.of_file trace in
    let fabric = Gridbw_topology.Fabric.paper_default () in
    let sched = scheduler_of ~book_ahead ~reshape heuristic policy ~step in
    Provenance.print ~cmd:"run" (replay_fields ~book_ahead ~reshape trace heuristic policy step);
    let trace_oc = Option.map open_out_bin trace_out in
    let trace_sink = match trace_format with `Binary -> Sink.binary | `Jsonl -> Sink.jsonl in
    let obs =
      match (trace_oc, metrics_out, store_dir) with
      | None, None, None -> None
      | _ -> Some (Obs.create ?sink:(Option.map trace_sink trace_oc) ())
    in
    let store_config =
      { Store.default_config with
        wal = { Wal.default_config with Wal.batch = store_batch };
        kill_after = store_kill }
    in
    let result =
      match store_dir with
      | None ->
          Scheduler.run
            ?ctx:(Option.map (fun o -> Runtime.make ~obs:o ()) obs)
            sched (Spec.for_replay fabric) requests
      | Some dir when not (Store.exists ~dir) ->
          (* Fresh journal: stamp the capacity prefix at/before the first
             arrival so the event stream stays monotone. *)
          let t0 =
            List.fold_left
              (fun t (r : Gridbw_request.Request.t) -> Float.min t r.Gridbw_request.Request.ts)
              0.0 requests
          in
          let store = Store.create ~config:store_config ?obs ~time:t0 ~dir fabric in
          let result =
            Scheduler.run ~ctx:(Runtime.make ?obs ~store ()) sched (Spec.for_replay fabric)
              requests
          in
          Store.close store;
          Printf.eprintf "journaled %d records to %s\n%!" (Store.records store) dir;
          result
      | Some dir -> (
          (match heuristic with
          | `Greedy -> ()
          | _ ->
              prerr_endline "error: resuming a store supports --heuristic greedy only";
              exit 2);
          match Store.recover ~config:store_config ?obs ~dir () with
          | Error msg ->
              Printf.eprintf "error: cannot recover %s: %s\n" dir msg;
              exit 1
          | Ok r ->
              Printf.eprintf
                "recovered %s: %d records (%d from snapshot, %d replayed), %d torn bytes \
                 discarded\n\
                 %!"
                dir (Store.records r.Store.store) r.Store.snapshot_cursor r.Store.replayed
                r.Store.truncated_bytes;
              let result =
                Gridbw_core.Flexible.greedy_resume
                  ~ctx:(Runtime.make ?obs ~store:r.Store.store ())
                  r.Store.initial_fabric policy ~restored:r.Store.accepted
                  ~decided:r.Store.decided ~arrived:r.Store.arrived requests
              in
              Store.close r.Store.store;
              Printf.eprintf "journaled %d records to %s\n%!" (Store.records r.Store.store) dir;
              result)
    in
    Option.iter Obs.flush obs;
    Option.iter close_out trace_oc;
    (* Side artefacts are reported on stderr: stdout stays identical to a
       plain (untraced) run. *)
    Option.iter (Printf.eprintf "wrote %s\n%!") trace_out;
    (match (metrics_out, obs) with
    | Some path, Some o ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Gridbw_obs.Metrics.to_prometheus (Obs.metrics o)));
        Printf.eprintf "wrote %s\n%!" path
    | _ -> ());
    let summary = Summary.compute fabric ~all:requests ~accepted:result.Types.accepted in
    Format.printf "%a@." Summary.pp summary;
    (match Gridbw_metrics.Validate.check fabric result.Types.accepted with
    | [] -> ()
    | violations ->
        prerr_endline "internal error: infeasible schedule";
        prerr_endline (Gridbw_metrics.Validate.report fabric result.Types.accepted);
        ignore violations;
        exit 1)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one heuristic on a workload trace and print its summary.")
    Term.(
      const run $ trace_t $ heuristic_t $ policy_t $ step_t $ book_ahead_t $ no_reshape_t
      $ trace_out_t $ trace_format_t $ metrics_out_t $ store_dir_t $ store_batch_t
      $ store_kill_t)

(* --- replay-trace command --- *)

let replay_trace_cmd =
  let trace_t =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"Event trace written by run --trace-out (binary or JSONL; the format is \
                   sniffed from the first byte).")
  in
  let run trace =
    match Replay.of_file trace with
    | Error msg ->
        Printf.eprintf "replay-trace: %s\n" msg;
        exit 1
    | Ok r ->
        Provenance.print ~cmd:"replay-trace" [ ("trace", trace) ];
        if not (Replay.monotone r.Replay.events) then
          prerr_endline "warning: trace timestamps are not monotone (engine-driven trace?)";
        (* Bundle traces open with Capacity events describing their own
           fabric; plain --trace-out traces fall back to the paper one.
           A present-but-broken prefix is an error, not a fallback. *)
        (match Replay.fabric r with
        | Ok fabric -> Format.printf "%a@." Summary.pp (Replay.summary fabric r)
        | Error `No_prefix ->
            prerr_endline "note: no capacity prefix in trace; using the paper fabric";
            let fabric = Gridbw_topology.Fabric.paper_default () in
            Format.printf "%a@." Summary.pp (Replay.summary fabric r)
        | Error (`Invalid msg) ->
            Printf.eprintf "error: torn capacity prefix: %s\n" msg;
            exit 1)
  in
  Cmd.v
    (Cmd.info "replay-trace"
       ~doc:"Rebuild a run's summary from its event trace alone (binary or JSONL).")
    Term.(const run $ trace_t)

(* --- trace-report command --- *)

let trace_report_cmd =
  let trace_t =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"Any trace holding span records: a serve --span-out file (binary or \
                   JSONL), or a mixed trace — non-span records are skipped.")
  in
  let top_t =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"K" ~doc:"How many of the slowest requests to list.")
  in
  let run trace top =
    match Gridbw_metrics.Trace_report.load trace with
    | Error msg ->
        Printf.eprintf "trace-report: %s\n" msg;
        exit 1
    | Ok t ->
        if Gridbw_metrics.Trace_report.spans t = [] then begin
          Printf.eprintf "trace-report: no span records in %s\n" trace;
          exit 1
        end;
        print_string (Gridbw_metrics.Trace_report.render ~top t)
  in
  Cmd.v
    (Cmd.info "trace-report"
       ~doc:"Aggregate request trace spans offline: per-stage latency breakdown \
             (p50/p95/p99) and the slowest requests.")
    Term.(const run $ trace_t $ top_t)

(* --- recover command --- *)

let recover_cmd =
  let dir_t =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"Store directory written by run --store-dir.")
  in
  let metrics_out_t =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Dump the telemetry registry (recovery counters included) to $(docv).")
  in
  let json_t =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Machine-readable output: one JSON object on stdout with the record \
                   counts, the audit verdict, and every surviving accepted allocation \
                   (bit-exact floats).  Exit status 1 when the audit fails.")
  in
  let flight_t =
    Arg.(value & opt (some file) None
         & info [ "flight" ] ~docv:"FILE"
             ~doc:"Also scan the crash-surviving flight-recorder ring written by \
                   serve --flight-recorder and dump the last spans before the crash \
                   (--flight-last of them).")
  in
  let flight_last_t =
    Arg.(value & opt int 20
         & info [ "flight-last" ] ~docv:"N" ~doc:"How many of the newest spans to dump.")
  in
  let flight_spans path last =
    match Flight.scan path with
    | Error msg ->
        Printf.eprintf "recover: flight recorder %s: %s\n" path msg;
        exit 1
    | Ok spans -> (List.length spans, Flight.last last spans)
  in
  (* The machine-readable path the serve-smoke drill consumes: recover,
     audit, and dump every surviving accepted allocation with bit-exact
     floats so acked responses can be compared field by field. *)
  let run_json dir flight flight_last =
    let obs = Obs.create () in
    match Store.recover ~obs ~dir () with
    | Error msg ->
        print_endline
          (Json.to_string (Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]));
        exit 1
    | Ok r ->
        let rec split_prefix = function
          | Event.Capacity _ :: rest -> split_prefix rest
          | rest -> rest
        in
        let body = split_prefix r.Store.events in
        let engine_driven =
          List.exists
            (function Event.Capacity _ | Event.Preempt _ | Event.Shed _ -> true | _ -> false)
            body
        in
        let ledger_ok = Gridbw_alloc.Ledger.within_capacity (Store.ledger r.Store.store) in
        let violations =
          if engine_driven then []
          else
            List.map Gridbw_check.Reference.describe
              (Gridbw_check.Reference.audit_allocations r.Store.initial_fabric
                 (List.map snd r.Store.accepted))
        in
        let violations =
          if ledger_ok then violations else violations @ [ "recovered ledger exceeds capacity" ]
        in
        let audit =
          if violations <> [] then "failed" else if engine_driven then "skipped" else "clean"
        in
        let accepted =
          List.map
            (fun (time, a) ->
              let open Gridbw_alloc.Allocation in
              Json.Obj
                [
                  ("id", Json.Num (float_of_int a.request.Gridbw_request.Request.id));
                  ("bw", Json.Num a.bw);
                  ("sigma", Json.Num a.sigma);
                  ("tau", Json.Num a.tau);
                  ("decided_at", Json.Num time);
                ])
            r.Store.accepted
        in
        let flight_fields =
          match flight with
          | None -> []
          | Some path ->
              let total, spans = flight_spans path flight_last in
              [
                ("flight_total", Json.Num (float_of_int total));
                ("flight_last",
                 Json.List
                   (List.map
                      (fun sp ->
                        Json.Obj
                          (("span", Json.Num (float_of_int (Span.id sp)))
                           :: (match Span.req sp with
                              | Some r -> [ ("req", Json.Num (float_of_int r)) ]
                              | None -> [])
                          @ [
                              ("conn", Json.Num (float_of_int (Span.conn sp)));
                              ("total_ns", Json.Num (Span.total_ns sp));
                              ("probes", Json.Num (float_of_int (Span.probes sp)));
                            ]))
                      spans));
              ]
        in
        print_endline
          (Json.to_string
             (Json.Obj
                ([
                  ("ok", Json.Bool (audit <> "failed"));
                  ("records", Json.Num (float_of_int (Store.records r.Store.store)));
                  ("snapshot_cursor", Json.Num (float_of_int r.Store.snapshot_cursor));
                  ("replayed", Json.Num (float_of_int r.Store.replayed));
                  ("truncated_bytes", Json.Num (float_of_int r.Store.truncated_bytes));
                  ("audit", Json.Str audit);
                  ("violations", Json.List (List.map (fun v -> Json.Str v) violations));
                  ("accepted", Json.List accepted);
                  ("cancelled",
                   Json.List
                     (List.filter_map
                        (function
                          | Event.Preempt { id; _ } -> Some (Json.Num (float_of_int id))
                          | _ -> None)
                        r.Store.events));
                ]
                @ flight_fields)));
        Store.close r.Store.store;
        if audit = "failed" then exit 1
  in
  let run dir json metrics_out flight flight_last =
    if json then run_json dir flight flight_last
    else
    let obs = Obs.create () in
    match Store.recover ~obs ~dir () with
    | Error msg ->
        Printf.eprintf "recover: %s\n" msg;
        exit 1
    | Ok r ->
        Provenance.print ~cmd:"recover" [ ("dir", dir) ];
        Printf.eprintf
          "recovered %d records (%d from snapshot, %d replayed), %d torn bytes discarded\n%!"
          (Store.records r.Store.store) r.Store.snapshot_cursor r.Store.replayed
          r.Store.truncated_bytes;
        (* The surviving journal is a self-contained trace: its leading
           Capacity prefix names the fabric, so the journaled run's summary
           is rebuilt from the log alone. *)
        (match Replay.of_events r.Store.events with
        | Error msg ->
            Printf.eprintf "recover: surviving history does not replay: %s\n" msg;
            exit 1
        | Ok t -> (
            match Replay.fabric t with
            | Error (`No_prefix | `Invalid _) ->
                (* unreachable: recover already validated the prefix *)
                prerr_endline "recover: recovered journal lost its capacity prefix";
                exit 1
            | Ok fabric -> Format.printf "%a@." Summary.pp (Replay.summary fabric t)));
        (* Audit the recovered state before anyone serves from it.  An
           engine-driven journal (faults: capacity revisions past the
           prefix, preemptions, sheds) books and releases over time, so the
           whole-interval reference audit does not apply. *)
        let rec split_prefix = function
          | Event.Capacity _ :: rest -> split_prefix rest
          | rest -> rest
        in
        let engine_driven =
          List.exists
            (function Event.Capacity _ | Event.Preempt _ | Event.Shed _ -> true | _ -> false)
            (split_prefix r.Store.events)
        in
        if engine_driven then
          prerr_endline "note: engine-driven journal (faults); reference audit skipped"
        else begin
          let allocs = List.map snd r.Store.accepted in
          let violations =
            Gridbw_check.Reference.audit_allocations r.Store.initial_fabric allocs
          in
          let ledger_ok = Gridbw_alloc.Ledger.within_capacity (Store.ledger r.Store.store) in
          match (violations, ledger_ok) with
          | [], true ->
              Printf.eprintf "audit clean: %d recovered allocations within capacity\n%!"
                (List.length allocs)
          | vs, ok ->
              List.iter
                (fun v -> Printf.eprintf "audit: %s\n" (Gridbw_check.Reference.describe v))
                vs;
              if not ok then prerr_endline "audit: recovered ledger exceeds capacity";
              exit 1
        end;
        Store.close r.Store.store;
        Option.iter
          (fun path ->
            let total, spans = flight_spans path flight_last in
            Printf.eprintf "flight recorder: %d spans recovered; newest %d:\n%!" total
              (List.length spans);
            List.iter (fun sp -> Format.eprintf "  %a@." Span.pp sp) spans)
          flight;
        Option.iter
          (fun path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc (Gridbw_obs.Metrics.to_prometheus (Obs.metrics obs)));
            Printf.eprintf "wrote %s\n%!" path)
          metrics_out
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Recover a durable store: truncate the torn WAL tail, rebuild and audit the \
             journaled admission state, print the journaled run's summary.  With \
             --flight, also dump the tail of a crash-surviving flight-recorder ring.")
    Term.(const run $ dir_t $ json_t $ metrics_out_t $ flight_t $ flight_last_t)

(* --- fuzz command --- *)

module Scenario = Gridbw_check.Scenario
module Harness = Gridbw_check.Harness
module Fuzz = Gridbw_check.Fuzz

let fuzz_cmd =
  let budget_t =
    Arg.(value & opt int 200
         & info [ "budget" ] ~docv:"N" ~doc:"Scenarios to generate and check.")
  in
  let engine_t =
    Arg.(value & opt_all string []
         & info [ "engine" ] ~docv:"E"
             ~doc:"Restrict the sweep to the named engine (repeatable; default: every \
                   shipped scheduler plus the fault-injector and long-lived checks).")
  in
  let family_t =
    Arg.(value & opt_all string []
         & info [ "family" ] ~docv:"F"
             ~doc:"Scenario families to rotate through (repeatable): hotspot-skew, \
                   deadline-tight, near-rigid, revision-storm, cross-shard-storm, \
                   reshape-storm or mixed.")
  in
  let out_t =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Write each minimized counterexample as a replayable bundle under \
                   $(docv)/case-<i>/.")
  in
  let min_size_t =
    Arg.(value & opt (some int) None
         & info [ "min-size" ] ~docv:"N" ~doc:"Smallest scenario size (requests).")
  in
  let max_size_t =
    Arg.(value & opt (some int) None
         & info [ "max-size" ] ~docv:"N" ~doc:"Largest scenario size (requests).")
  in
  let run budget seed engine_names family_names out min_size max_size =
    let seed = Option.value ~default:42L seed in
    let engines =
      match engine_names with
      | [] -> None
      | names ->
          let pool = Scheduler.shipped ~step:Harness.default_step () @ Malleable.engines () in
          Some
            (List.map
               (fun n ->
                 match Scheduler.find pool n with
                 | Some e -> e
                 | None ->
                     Printf.eprintf "fuzz: unknown engine %s (known: %s)\n" n
                       (String.concat ", "
                          (List.map Scheduler.name pool));
                     exit 2)
               names)
    in
    let families =
      match family_names with
      | [] -> None
      | names ->
          Some
            (List.map
               (fun n ->
                 match Scenario.family_of_name n with
                 | Some f -> f
                 | None ->
                     Printf.eprintf "fuzz: unknown family %s (known: %s)\n" n
                       (String.concat ", " (List.map Scenario.family_name Scenario.families));
                     exit 2)
               names)
    in
    Provenance.print ~cmd:"fuzz"
      (Provenance.seed seed :: Provenance.int "budget" budget
      :: (if engine_names = [] then [] else [ ("engines", String.concat "+" engine_names) ])
      @ (if family_names = [] then [] else [ ("families", String.concat "+" family_names) ]));
    let outcome =
      Fuzz.run ?engines ?families ?min_size ?max_size
        ~log:(fun line -> Printf.eprintf "%s\n%!" line)
        ~budget ~seed ()
    in
    Printf.printf "fuzz: %d scenarios checked, %d counterexample(s)\n" outcome.Fuzz.scenarios
      (List.length outcome.Fuzz.failures);
    List.iteri
      (fun i (f : Fuzz.failure) ->
        Format.printf "@[<v2>counterexample %d: %a@,%a@]@." i Scenario.pp f.Fuzz.scenario
          (Format.pp_print_list Harness.pp_finding)
          f.Fuzz.findings;
        Option.iter
          (fun dir ->
            let case = Fuzz.write_bundle ?engines ~dir ~index:i f in
            Printf.printf "wrote %s\n" case)
          out)
      outcome.Fuzz.failures;
    if outcome.Fuzz.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: adversarial scenarios against every scheduler, \
             cross-checked against the reference admission model.")
    Term.(const run $ budget_t $ seed_t $ engine_t $ family_t $ out_t $ min_size_t $ max_size_t)

let hotspot_cmd =
  let trace_t =
    Arg.(required & opt (some file) None & info [ "trace" ] ~docv:"FILE" ~doc:"Workload CSV.")
  in
  let heuristic_t =
    Arg.(value & opt heuristic_conv `Greedy
         & info [ "heuristic" ] ~docv:"H" ~doc:"Admission heuristic (see run).")
  in
  let policy_t =
    Arg.(value & opt policy_conv (Policy.Fraction_of_max 0.8)
         & info [ "policy" ] ~docv:"P" ~doc:"minrate or a MaxRate fraction f in [0,1].")
  in
  let step_t =
    Arg.(value & opt float 400. & info [ "step" ] ~docv:"S" ~doc:"WINDOW interval length (s).")
  in
  let run trace heuristic policy step =
    let requests = Trace.of_file trace in
    let fabric = Gridbw_topology.Fabric.paper_default () in
    let sched = scheduler_of heuristic policy ~step in
    Provenance.print ~cmd:"hotspot" (replay_fields trace heuristic policy step);
    let result = Scheduler.run sched (Spec.for_replay fabric) requests in
    let reports =
      Gridbw_metrics.Hotspot.analyze fabric ~all:requests ~accepted:result.Types.accepted
    in
    Table.print
      (Table.make
         ~headers:[ "side"; "port"; "pressure"; "demand MB/s"; "granted MB/s"; "accepted" ]
         (List.map
            (fun r ->
              let open Gridbw_metrics.Hotspot in
              [
                (match r.side with Ingress -> "ingress" | Egress -> "egress");
                string_of_int r.port;
                Printf.sprintf "%.2f" r.pressure;
                Printf.sprintf "%.0f" r.demanded_rate;
                Printf.sprintf "%.0f" r.granted_rate;
                Printf.sprintf "%d/%d" r.accepted r.requests;
              ])
            reports));
    match Gridbw_metrics.Hotspot.hot_spots reports with
    | [] -> print_endline "no hot spots (all ports below pressure 1)"
    | hot -> Format.printf "%d hot spot(s); worst: %a@." (List.length hot)
               Gridbw_metrics.Hotspot.pp (List.hd hot)
  in
  Cmd.v
    (Cmd.info "hotspot" ~doc:"Per-port pressure analysis of a workload trace (section 7).")
    Term.(const run $ trace_t $ heuristic_t $ policy_t $ step_t)

(* --- serve / loadgen commands --- *)

let hostport_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg "expected HOST:PORT")
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> Ok (host, p)
        | _ -> Error (`Msg ("bad port: " ^ port)))
  in
  Arg.conv (parse, fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

let transport_of cmd socket tcp =
  match (socket, tcp) with
  | Some path, None -> Daemon.Unix_socket path
  | None, Some (host, port) -> Daemon.Tcp (host, port)
  | _ ->
      Printf.eprintf "%s: exactly one of --socket or --tcp is required\n" cmd;
      exit 2

let socket_t =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket $(docv).")

let tcp_t =
  Arg.(value & opt (some hostport_conv) None
       & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"TCP endpoint $(docv).")

let serve_cmd =
  let policy_t =
    Arg.(value & opt policy_conv (Policy.Fraction_of_max 0.8)
         & info [ "policy" ] ~docv:"P" ~doc:"minrate or a MaxRate fraction f in [0,1].")
  in
  let store_dir_t =
    Arg.(value & opt (some string) None
         & info [ "store-dir" ] ~docv:"DIR"
             ~doc:"Journal every decision durably into $(docv) before acking it \
                   (write-ack-after-fsync).  If $(docv) already holds a store, recover \
                   it, audit it, and resume serving.")
  in
  let store_batch_t =
    Arg.(value & opt int Wal.default_config.Wal.batch
         & info [ "store-batch" ] ~docv:"N" ~doc:"Group commit: fsync the WAL every $(docv) records.")
  in
  let store_kill_t =
    Arg.(value & opt (some int) None
         & info [ "store-kill-after" ] ~docv:"N"
             ~doc:"Crash drill: SIGKILL the daemon mid-append of WAL record $(docv), \
                   leaving a torn record on disk (testing aid).")
  in
  let max_frame_t =
    Arg.(value & opt int Gridbw_serve.Frame.max_frame_default
         & info [ "max-frame" ] ~docv:"BYTES" ~doc:"Largest accepted frame payload.")
  in
  let metrics_port_t =
    Arg.(value & opt (some int) None
         & info [ "metrics-port" ] ~docv:"PORT"
             ~doc:"Serve GET /metrics (Prometheus text exposition) over HTTP/1.0 on \
                   127.0.0.1:$(docv), from the same event loop as the protocol socket.")
  in
  let span_out_t =
    Arg.(value & opt (some string) None
         & info [ "span-out" ] ~docv:"FILE"
             ~doc:"Trace every request as a span record (per-stage latencies, ledger \
                   probes) into $(docv).  Binary frames by default; see --span-format. \
                   trace-report aggregates the file offline.")
  in
  let span_format_t =
    let fmt = Arg.enum [ ("binary", `Binary); ("jsonl", `Jsonl) ] in
    Arg.(value & opt fmt `Binary
         & info [ "span-format" ] ~docv:"F"
             ~doc:"Span sink encoding: 'binary' (length-prefixed frames, the default) or \
                   'jsonl'.  trace-report reads either, sniffing record by record.")
  in
  let flight_t =
    Arg.(value & opt (some string) None
         & info [ "flight-recorder" ] ~docv:"FILE"
             ~doc:"Keep the newest spans in a fixed-size crash-surviving ring file at \
                   $(docv) (one write per span, no fsync).  After a crash, \
                   'gridbw recover --flight $(docv)' dumps the last moments.")
  in
  let flight_size_t =
    Arg.(value & opt int Flight.default_size
         & info [ "flight-size" ] ~docv:"BYTES" ~doc:"Flight-recorder ring size.")
  in
  let shards_t =
    Arg.(value & opt (some int) None
         & info [ "shards" ] ~docv:"N"
             ~doc:"Partition the fabric's ports across $(docv) shards, each on its own \
                   OCaml domain, and decide admissions through a worker pool with \
                   two-phase cross-shard reserve/commit.  Decisions are journaled with \
                   their shard id; recovery re-partitions onto the configured count and \
                   audits every shard against the reference model.  Omit for the \
                   single-threaded engine.")
  in
  let run socket tcp policy store_dir store_batch store_kill max_frame metrics_port span_out
      span_format flight_recorder flight_size shards =
    let transport = transport_of "serve" socket tcp in
    let store_config =
      { Store.default_config with
        wal = { Wal.default_config with Wal.batch = store_batch };
        kill_after = store_kill }
    in
    let cfg =
      { (Daemon.default_config ~policy ?store_dir ?metrics_port ?span_out
           ~span_binary:(span_format = `Binary) ?flight_recorder ~flight_size ?shards
           transport)
        with
        Daemon.store_config; max_frame }
    in
    match Daemon.create ~log:(fun s -> Printf.eprintf "serve: %s\n%!" s) cfg with
    | Error e ->
        Printf.eprintf "serve: %s\n" e;
        exit 1
    | Ok d ->
        Daemon.install_signal_handlers d;
        Daemon.run d
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the admission daemon: a durable, auditable admission service speaking \
             the versioned JSONL protocol over a Unix or TCP socket.")
    Term.(const run $ socket_t $ tcp_t $ policy_t $ store_dir_t $ store_batch_t
          $ store_kill_t $ max_frame_t $ metrics_port_t $ span_out_t $ span_format_t
          $ flight_t $ flight_size_t $ shards_t)

let loadgen_cmd =
  let conns_t =
    Arg.(value & opt int 4
         & info [ "connections" ] ~docv:"N" ~doc:"Concurrent closed-loop clients.")
  in
  let requests_t =
    Arg.(value & opt int 10_000 & info [ "requests" ] ~docv:"N" ~doc:"Total requests to send.")
  in
  let lg_seed_t =
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Workload PRNG seed.")
  in
  let mean_ia_t =
    Arg.(value & opt float 0.25
         & info [ "mean-interarrival" ] ~docv:"S" ~doc:"Mean arrival spacing of the drawn workload.")
  in
  let slack_t =
    Arg.(value & opt float 4.0 & info [ "max-slack" ] ~docv:"U" ~doc:"Window slack bound (>= 1).")
  in
  let cancel_t =
    Arg.(value & opt int 0
         & info [ "cancel-every" ] ~docv:"N" ~doc:"Cancel every $(docv)th admitted transfer (0 = never).")
  in
  let acks_t =
    Arg.(value & opt (some string) None
         & info [ "acks" ] ~docv:"FILE"
             ~doc:"Journal every received response payload to $(docv), one JSON line each \
                   (verbatim wire bytes) — the kill-drill evidence file.")
  in
  let tolerate_t =
    Arg.(value & flag
         & info [ "tolerate-disconnect" ]
             ~doc:"A dropped connection stops that client quietly instead of failing the run.")
  in
  let binary_t =
    Arg.(value & flag
         & info [ "binary" ]
             ~doc:"Speak the binary frame form; the daemon notices from the first frame \
                   and replies in kind.")
  in
  let bench_out_t =
    Arg.(value & opt (some string) None
         & info [ "bench-out" ] ~docv:"FILE" ~doc:"Write the report as a JSON object to $(docv).")
  in
  let shutdown_t =
    Arg.(value & flag
         & info [ "shutdown" ] ~doc:"Send the shutdown verb once the run completes.")
  in
  let json_t =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Machine-readable output: stdout is exactly one JSON object (the same \
                   shape --bench-out writes, p50/p95/p99 latencies included); the human \
                   report and provenance move to stderr.")
  in
  let run socket tcp conns requests seed mean_ia slack cancel_every acks_path tolerate
      binary bench_out shutdown json =
    let transport = transport_of "loadgen" socket tcp in
    let acks = Option.map open_out acks_path in
    let cfg =
      Loadgen.default_config ~connections:conns ~requests ~seed ~mean_interarrival:mean_ia
        ~max_slack:slack ~cancel_every ?acks ~binary ~tolerate_disconnect:tolerate transport
    in
    let provenance =
      [ Provenance.seed seed; Provenance.int "requests" requests;
        Provenance.int "connections" conns ]
    in
    if json then Printf.eprintf "%s\n%!" (Provenance.line ~cmd:"loadgen" provenance)
    else Provenance.print ~cmd:"loadgen" provenance;
    match Loadgen.run ~log:(fun s -> Printf.eprintf "%s\n%!" s) cfg with
    | Error e ->
        Option.iter close_out acks;
        Printf.eprintf "loadgen: %s\n" e;
        exit 1
    | Ok report ->
        Option.iter close_out acks;
        Option.iter (Printf.eprintf "wrote %s\n%!") acks_path;
        if json then begin
          Format.eprintf "%a@." Loadgen.pp_report report;
          print_endline (Loadgen.report_to_json report)
        end
        else Format.printf "%a@." Loadgen.pp_report report;
        Option.iter
          (fun path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc (Loadgen.report_to_json report ^ "\n"));
            Printf.eprintf "wrote %s\n%!" path)
          bench_out;
        if shutdown then
          match Loadgen.shutdown transport with
          | Ok records -> Printf.eprintf "daemon stopped (%d journal records)\n%!" records
          | Error e ->
              Printf.eprintf "loadgen: shutdown: %s\n" e;
              exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a running admission daemon with a seeded closed-loop workload and \
             report throughput and latency percentiles.")
    Term.(const run $ socket_t $ tcp_t $ conns_t $ requests_t $ lg_seed_t $ mean_ia_t
          $ slack_t $ cancel_t $ acks_t $ tolerate_t $ binary_t $ bench_out_t $ shutdown_t
          $ json_t)

let main_cmd =
  Cmd.group
    (Cmd.info "gridbw" ~version:"1.0.0"
       ~doc:"Optimal bandwidth sharing in grid environments (HPDC'06) — reproduction toolkit.")
    [ figure_cmd; table_cmd; all_cmd; workload_cmd; run_cmd; replay_trace_cmd;
      trace_report_cmd; recover_cmd; fuzz_cmd; hotspot_cmd; serve_cmd; loadgen_cmd ]

let () = exit (Cmd.eval main_cmd)
