(* Nightly data-grid replication: every site pushes the day's datasets to
   the others inside a fixed maintenance window.  Rigid requests (the
   window is the contract), so this is the section 4 regime: compare FIFO
   against the three time-window-decomposition heuristics.

     dune exec examples/replication.exe *)

module Rng = Gridbw_prng.Rng
module Dist = Gridbw_prng.Dist
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Rigid = Gridbw_core.Rigid
module Types = Gridbw_core.Types
module Summary = Gridbw_metrics.Summary
module Table = Gridbw_report.Table

let sites = 6
let port_capacity = 1000.0 (* MB/s *)
let night = 8. *. 3600.0 (* the 8-hour maintenance window *)

(* Each site replicates ~160 datasets to random peers; a dataset is 1-80 GB
   and its transfer window is a random slice of the night sized for a
   50-500 MB/s transfer. *)
let build_requests rng =
  let next_id = ref 0 in
  List.concat_map
    (fun source ->
      List.init 160 (fun _ ->
          let destination =
            let d = Rng.int rng (sites - 1) in
            if d >= source then d + 1 else d
          in
          let volume = Rng.float_in rng 1_000. 80_000. in
          let rate = Rng.float_in rng 50. 500. in
          let duration = volume /. rate in
          let ts = Rng.float_in rng 0. (night -. duration) in
          let id = !next_id in
          incr next_id;
          Request.make_rigid ~id ~ingress:source ~egress:destination ~bw:rate ~ts
            ~tf:(ts +. duration)))
    (List.init sites Fun.id)

let () =
  let fabric = Fabric.uniform ~ingress_count:sites ~egress_count:sites ~capacity:port_capacity in
  let rng = Rng.create ~seed:2006L () in
  let requests = build_requests rng in
  Format.printf "replicating %d datasets between %d sites over an 8-hour night@.@."
    (List.length requests) sites;
  let rows =
    List.map
      (fun (name, kind) ->
        let result = Rigid.run kind fabric requests in
        let s = Summary.compute fabric ~all:requests ~accepted:result.Types.accepted in
        assert (Summary.all_feasible fabric result.Types.accepted);
        [
          name;
          string_of_int s.Summary.accepted;
          Printf.sprintf "%.1f%%" (100. *. s.Summary.accept_rate);
          Printf.sprintf "%.1f%%" (100. *. s.Summary.utilization);
          Printf.sprintf "%.1f%%" (100. *. s.Summary.volume_accept_rate);
        ])
      [
        ("FIFO", `Fcfs);
        ("CUMULATED-SLOTS", `Slots Rigid.Cumulated);
        ("MINBW-SLOTS", `Slots Rigid.Min_bw);
        ("MINVOL-SLOTS", `Slots Rigid.Min_vol);
      ]
  in
  Table.print
    (Table.make ~headers:[ "heuristic"; "accepted"; "accept rate"; "utilization"; "volume" ] rows)
