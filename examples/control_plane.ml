(* Section 5.4 end to end: clients signal their ingress access router
   (RSVP-style), the router decides locally and answers with a grant; the
   data plane then polices each granted flow with a token bucket so a
   misbehaving sender cannot hurt the other reservations.

     dune exec examples/control_plane.exe *)

module Rng = Gridbw_prng.Rng
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Plane = Gridbw_control.Plane
module Enforcer = Gridbw_control.Enforcer
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Table = Gridbw_report.Table

let () =
  let spec =
    Spec.make
      ~volumes:(Spec.Uniform_volume { lo = 500.; hi = 20_000. })
      ~rate_lo:10. ~rate_hi:1000. ~count:200 ~mean_interarrival:2.0 ()
  in
  let requests = Gen.generate (Rng.create ~seed:99L ()) spec in

  (* Signaling: 5 ms hops, 1 ms router decision. *)
  let config = Plane.default_config (Policy.Fraction_of_max 0.8) in
  let stats = Plane.run spec.Spec.fabric config requests in
  Format.printf
    "signaling: %d requests -> %d granted, %d rejected@.messages: %d total, response time %.1f ms@.@."
    (List.length requests) stats.Plane.accepted stats.Plane.rejected stats.Plane.total_messages
    (1000. *. stats.Plane.mean_response_time);

  (* Enforcement: replay a well-behaved and an overdriving sender against
     the token-bucket policer for the first few grants. *)
  let grants =
    List.filter_map
      (fun t -> match t.Plane.decision with Types.Accepted a -> Some a | Types.Rejected _ -> None)
      stats.Plane.transcripts
  in
  let rng = Rng.create ~seed:5L () in
  let rows =
    List.concat_map
      (fun a ->
        let polite = Enforcer.police a (Enforcer.well_behaved_sender a ~chunk_seconds:1.0) in
        let greedy_sender =
          Enforcer.police a (Enforcer.bursty_sender rng a ~chunk_seconds:1.0 ~overdrive:1.8)
        in
        let row kind (r : Enforcer.report) =
          [
            string_of_int a.Gridbw_alloc.Allocation.request.Gridbw_request.Request.id;
            kind;
            Printf.sprintf "%.0f" r.Enforcer.offered;
            Printf.sprintf "%.0f" r.Enforcer.conformant;
            Printf.sprintf "%.0f" r.Enforcer.dropped;
          ]
        in
        [ row "well-behaved" polite; row "overdriving x1.8" greedy_sender ])
      (List.filteri (fun i _ -> i < 4) grants)
  in
  Table.print
    (Table.make ~headers:[ "grant"; "sender"; "offered MB"; "conformant MB"; "dropped MB" ] rows);
  print_endline "\nwell-behaved senders pass untouched; overdriving senders lose their excess."
