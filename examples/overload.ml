(* The paper's motivation (section 1): in an overloaded grid, letting every
   bulk transfer loose on a fairly-shared network makes transfers run late
   and unpredictably, while admission control guarantees every accepted
   transfer its window.  Same workload, three treatments.

     dune exec examples/overload.exe *)

module Rng = Gridbw_prng.Rng
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Fluid = Gridbw_baseline.Fluid
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Table = Gridbw_report.Table

let () =
  (* Offered load ~3x the fabric capacity. *)
  let spec =
    Spec.make
      ~volumes:(Spec.Uniform_volume { lo = 2_000.; hi = 60_000. })
      ~rate_lo:10. ~rate_hi:1000. ~count:500 ~mean_interarrival:1.0 ()
  in
  let requests = Gen.generate (Rng.create ~seed:13L ()) spec in
  Format.printf "offered load: %.1fx capacity, %d transfers@.@."
    (Gen.measured_load spec.Spec.fabric requests)
    (List.length requests);

  (* (a) No control: max-min fair fluid sharing, everybody transmits. *)
  let fluid = Fluid.simulate spec.Spec.fabric requests in

  (* (b)/(c) Admission control at full rate. *)
  let policy = Policy.Fraction_of_max 1.0 in
  let describe name ~served ~on_time ~stretch =
    [ name; Printf.sprintf "%.0f%%" (100. *. served); Printf.sprintf "%.0f%%" (100. *. on_time);
      Printf.sprintf "%.2f" stretch ]
  in
  let controlled name result =
    let n = float_of_int (List.length requests) in
    let accepted = result.Types.accepted in
    let stretch =
      match accepted with
      | [] -> 0.
      | _ ->
          List.fold_left
            (fun acc (a : Allocation.t) ->
              let r = a.Allocation.request in
              acc +. ((a.Allocation.tau -. r.Request.ts) /. (r.Request.tf -. r.Request.ts)))
            0. accepted
          /. float_of_int (List.length accepted)
    in
    let served = float_of_int (List.length accepted) /. n in
    describe name ~served ~on_time:served (* accepted => on time by construction *) ~stretch
  in
  let fluid_row =
    let n = float_of_int (List.length fluid.Fluid.flows) in
    let on_time =
      float_of_int (List.length (List.filter (fun f -> f.Fluid.deadline_met) fluid.Fluid.flows))
      /. n
    in
    describe "max-min fluid (TCP surrogate)" ~served:1.0 ~on_time ~stretch:fluid.Fluid.mean_stretch
  in
  Table.print
    (Table.make
       ~headers:[ "treatment"; "served"; "finished in window"; "mean stretch" ]
       [
         fluid_row;
         controlled "GREEDY admission (f=1)" (Flexible.greedy spec.Spec.fabric policy requests);
         controlled "WINDOW(60) admission (f=1)"
           (Flexible.window spec.Spec.fabric policy ~step:60. requests);
       ]);
  print_endline
    "\nwithout control every transfer is served but most blow their window\n\
     (stretch >> 1); with admission control fewer are served, but every\n\
     accepted transfer finishes inside its window (stretch <= 1)."
