(* Quickstart: build a fabric, submit a handful of transfer requests, run
   the paper's WINDOW heuristic and inspect every decision.

     dune exec examples/quickstart.exe *)

module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Summary = Gridbw_metrics.Summary

let () =
  (* Two sites pushing data through a 2-ingress / 2-egress overlay with
     100 MB/s access points. *)
  let fabric = Fabric.uniform ~ingress_count:2 ~egress_count:2 ~capacity:100.0 in
  Format.printf "%a@.@." Fabric.pp fabric;

  (* Five bulk transfers: volume (MB), transmission window, host cap. *)
  let request id ingress egress volume ts tf max_rate =
    Request.make ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate
  in
  let requests =
    [
      request 0 0 0 3000. 0. 60. 100.;  (* big archive push, roomy window *)
      request 1 0 1 1200. 5. 30. 80.;   (* results upload *)
      request 2 1 0 600. 8. 20. 60.;    (* dataset fetch *)
      request 3 1 1 4000. 10. 50. 100.; (* checkpoint sync *)
      request 4 0 0 2500. 12. 40. 90.;  (* competing archive push *)
    ]
  in

  (* Admit with Algorithm 3 (10 s batching) granting 80% of each host cap. *)
  let result = Flexible.window fabric (Policy.Fraction_of_max 0.8) ~step:10. requests in

  List.iter
    (fun (r : Request.t) ->
      match Types.decision_of result r.id with
      | Some (Types.Accepted a) ->
          Format.printf "request %d: ACCEPTED  %.0f MB at %.1f MB/s on [%.0f, %.1f]@." r.id
            r.volume a.Allocation.bw a.Allocation.sigma a.Allocation.tau
      | Some (Types.Rejected reason) ->
          Format.printf "request %d: rejected (%a)@." r.id Types.pp_reason reason
      | None -> assert false)
    requests;

  let summary = Summary.compute fabric ~all:requests ~accepted:result.Types.accepted in
  Format.printf "@.%a@." Summary.pp summary;
  assert (Summary.all_feasible fabric result.Types.accepted)
