(* Hot-spot analysis (paper section 7 future work): a skewed workload
   hammers one archive site; the per-port pressure report pinpoints the
   bottleneck, and upgrading that single port recovers most of the lost
   admissions.

     dune exec examples/hotspot.exe *)

module Rng = Gridbw_prng.Rng
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Spec = Gridbw_workload.Spec
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Hotspot = Gridbw_metrics.Hotspot
module Table = Gridbw_report.Table

(* 60% of transfers target egress 0 (the archive); the rest spread out. *)
let skewed_workload rng fabric count =
  List.init count (fun id ->
      let ingress = Rng.int rng (Fabric.ingress_count fabric) in
      let egress =
        if Rng.float rng 1.0 < 0.6 then 0 else Rng.int rng (Fabric.egress_count fabric)
      in
      let volume = Rng.float_in rng 500. 8_000. in
      let rate = Rng.float_in rng 10. 100. in
      let ts = Rng.float_in rng 0. 300. in
      Request.make ~id ~ingress ~egress ~volume ~ts ~tf:(ts +. (volume /. rate))
        ~max_rate:(Float.min 200. (rate *. 2.)))

let run fabric requests =
  let result = Flexible.greedy fabric (Policy.Fraction_of_max 0.8) requests in
  (List.length result.Types.accepted, Hotspot.analyze fabric ~all:requests ~accepted:result.Types.accepted)

let () =
  let rng = Rng.create ~seed:77L () in
  let base = Fabric.uniform ~ingress_count:4 ~egress_count:4 ~capacity:100.0 in
  let requests = skewed_workload rng base 300 in

  let accepted, reports = run base requests in
  Printf.printf "uniform fabric: %d/300 accepted\n\n" accepted;
  let rows =
    List.map
      (fun r ->
        [
          (match r.Hotspot.side with Hotspot.Ingress -> "ingress" | Hotspot.Egress -> "egress");
          string_of_int r.Hotspot.port;
          Printf.sprintf "%.0f" r.Hotspot.demanded_rate;
          Printf.sprintf "%.0f" r.Hotspot.granted_rate;
          Printf.sprintf "%.2f" r.Hotspot.pressure;
          Printf.sprintf "%d/%d" r.Hotspot.accepted r.Hotspot.requests;
        ])
      reports
  in
  Table.print
    (Table.make
       ~headers:[ "side"; "port"; "demand MB/s"; "granted MB/s"; "pressure"; "accepted" ]
       rows);

  (match Hotspot.hot_spots reports with
  | hottest :: _ ->
      Format.printf "@.hottest port: %a@." Hotspot.pp hottest;
      (* Upgrade exactly that port to 4x capacity and re-run. *)
      let upgraded =
        let cap side i =
          let base_cap = 100.0 in
          match (hottest.Hotspot.side, side) with
          | Hotspot.Egress, `Egress when i = hottest.Hotspot.port -> 4. *. base_cap
          | Hotspot.Ingress, `Ingress when i = hottest.Hotspot.port -> 4. *. base_cap
          | _ -> base_cap
        in
        Fabric.make
          ~ingress:(Array.init 4 (fun i -> cap `Ingress i))
          ~egress:(Array.init 4 (fun i -> cap `Egress i))
      in
      let accepted', _ = run upgraded requests in
      Printf.printf "after upgrading that one port to 400 MB/s: %d/300 accepted\n" accepted'
  | [] -> print_endline "no hot spot found")
