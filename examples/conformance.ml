(* Conformance: generate an adversarial scenario from the fuzzer's
   generator, sweep every shipped scheduler over it, and score each run
   with the executable reference model (Definition 1 restated naively).

     dune exec examples/conformance.exe *)

module Fabric = Gridbw_topology.Fabric
module Scheduler = Gridbw_core.Scheduler
module Types = Gridbw_core.Types
module Spec = Gridbw_workload.Spec
module Scenario = Gridbw_check.Scenario
module Reference = Gridbw_check.Reference
module Harness = Gridbw_check.Harness

let () =
  (* A hotspot-skew scenario: most demand funnels through port 0, the
     regime where feasibility bookkeeping is most likely to crack. *)
  let sc = Scenario.generate ~family:Scenario.Hotspot_skew ~seed:2026L ~size:30 in
  Format.printf "%a@.@." Scenario.pp sc;

  List.iter
    (fun sched ->
      let result = Scheduler.run sched (Spec.for_replay sc.Scenario.fabric) sc.Scenario.requests in
      let verdict =
        match Reference.audit sc.Scenario.fabric ~trace:sc.Scenario.requests result with
        | [] -> "conforms"
        | vs -> "VIOLATES: " ^ String.concat "; " (List.map Reference.describe vs)
      in
      Format.printf "%-22s %3d/%d accepted  %s@." (Scheduler.name sched)
        (List.length result.Types.accepted)
        (List.length sc.Scenario.requests)
        verdict)
    (Scheduler.shipped ~step:Harness.default_step ());

  (* The full differential harness adds the metamorphic properties
     (determinism, permutation and scaling invariance, subset
     stability) on top of the oracle checks. *)
  match Harness.check sc with
  | [] -> Format.printf "@.harness: no findings — every engine conforms@."
  | findings ->
      Format.printf "@.harness: %d finding(s)@." (List.length findings);
      List.iter (fun f -> Format.printf "  %a@." Harness.pp_finding f) findings;
      exit 1
