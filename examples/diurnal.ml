(* Diurnal workload: a data grid that bursts at night (experiment output
   shipped to archives) and idles by day.  Shows non-homogeneous arrivals,
   per-hour accept rates, and the utilization timeline of the admitted
   schedule.

     dune exec examples/diurnal.exe *)

module Rng = Gridbw_prng.Rng
module Spec = Gridbw_workload.Spec
module Diurnal = Gridbw_workload.Diurnal
module Request = Gridbw_request.Request
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Timeline = Gridbw_metrics.Timeline
module Table = Gridbw_report.Table

let hour = 3600.0
let day = 24. *. hour

let () =
  let spec =
    Spec.make
      ~volumes:(Spec.Uniform_volume { lo = 10_000.; hi = 200_000. })
      ~rate_lo:20. ~rate_hi:400.
      ~flexibility:(Spec.Flexible { max_slack = 3.0 })
      ~mean_interarrival:1. (* unused by the diurnal sampler *) ()
  in
  (* Trough 1 request / 200 s by day, crest 1 / 10 s at night. *)
  let intensity = Diurnal.day_night ~base:0.005 ~peak:0.1 ~period:day in
  let rng = Rng.create ~seed:20060619L () in
  let requests = Diurnal.generate rng spec intensity ~peak:0.1 ~horizon:day in
  Printf.printf "one day of diurnal traffic: %d requests\n\n" (List.length requests);

  let result = Flexible.window spec.Spec.fabric (Policy.Fraction_of_max 0.8) ~step:600. requests in

  (* Accept rate per 3-hour bucket. *)
  let buckets = 8 in
  let submitted = Array.make buckets 0 and taken = Array.make buckets 0 in
  List.iter
    (fun (r : Request.t) ->
      let b = min (buckets - 1) (int_of_float (r.ts /. day *. float_of_int buckets)) in
      submitted.(b) <- submitted.(b) + 1;
      match Types.decision_of result r.id with
      | Some (Types.Accepted _) -> taken.(b) <- taken.(b) + 1
      | _ -> ())
    requests;
  let rows =
    List.init buckets (fun b ->
        [
          Printf.sprintf "%02d:00-%02d:00" (b * 3) ((b + 1) * 3);
          string_of_int submitted.(b);
          string_of_int taken.(b);
          (if submitted.(b) = 0 then "-"
           else Printf.sprintf "%.0f%%" (100. *. float_of_int taken.(b) /. float_of_int submitted.(b)));
        ])
  in
  Table.print (Table.make ~headers:[ "hours"; "submitted"; "accepted"; "accept rate" ] rows);

  (* Utilization timeline of the admitted schedule. *)
  let timeline = Timeline.build spec.Spec.fabric result.Types.accepted in
  print_endline "\nfabric utilization over the day (20 samples):";
  List.iter
    (fun (at, util) ->
      let bars = int_of_float (util *. 50.) in
      Printf.printf "  %5.1f h |%s %.1f%%\n" (at /. hour) (String.make (min 50 bars) '#')
        (100. *. util))
    (Timeline.sample timeline ~points:20)
