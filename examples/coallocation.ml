(* Co-allocation (paper section 2.3): grid jobs stage a dataset and then
   compute on the destination site.  Sweeping the tuning factor f shows the
   trade-off the paper describes — faster staging starts (and releases)
   CPUs earlier, but guaranteeing more bandwidth rejects more transfers.

     dune exec examples/coallocation.exe *)

module Rng = Gridbw_prng.Rng
module Spec = Gridbw_workload.Spec
module Coalloc = Gridbw_coalloc.Coalloc
module Policy = Gridbw_core.Policy
module Table = Gridbw_report.Table

let () =
  let spec =
    Spec.make
      ~volumes:(Spec.Uniform_volume { lo = 1_000.; hi = 50_000. })
      ~rate_lo:10. ~rate_hi:1000. ~count:400 ~mean_interarrival:1.5 ()
  in
  let policies =
    [
      ("MIN BW", Policy.Min_rate);
      ("f=0.25", Policy.Fraction_of_max 0.25);
      ("f=0.50", Policy.Fraction_of_max 0.5);
      ("f=0.75", Policy.Fraction_of_max 0.75);
      ("f=1.00", Policy.Fraction_of_max 1.0);
    ]
  in
  let rows =
    List.map
      (fun (name, policy) ->
        (* Same jobs for every policy: the seed fixes the workload. *)
        let jobs = Coalloc.random_jobs (Rng.create ~seed:7L ()) spec ~mean_cpu_seconds:120. in
        let r = Coalloc.simulate spec.Spec.fabric ~policy ~cpus_per_site:8 jobs in
        [
          name;
          string_of_int r.Coalloc.completed;
          string_of_int r.Coalloc.rejected;
          Printf.sprintf "%.0f s" r.Coalloc.mean_staging_time;
          Printf.sprintf "%.0f s" r.Coalloc.mean_cpu_wait;
          Printf.sprintf "%.0f s" r.Coalloc.mean_completion_time;
        ])
      policies
  in
  print_endline "co-allocation: 400 transfer+compute jobs, 8 CPUs per site";
  Table.print
    (Table.make
       ~headers:[ "policy"; "completed"; "rejected"; "staging"; "cpu wait"; "completion" ]
       rows);
  print_endline "\nhigher f stages faster (earlier CPU release) but rejects more transfers."
