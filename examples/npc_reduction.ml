(* Theorem 1, step by step: build a 3-Dimensional Matching instance,
   reduce it to MAX-REQUESTS-DEC, and watch both directions of the
   equivalence hold on the exact solver.

     dune exec examples/npc_reduction.exe *)

module Npc = Gridbw_core.Npc
module Unit_exact = Gridbw_core.Unit_exact
module Table = Gridbw_report.Table

let show name (t : Npc.tdm) =
  Printf.printf "%s: n = %d, triples = { %s }\n" name t.Npc.n
    (String.concat "; "
       (List.map (fun (x, y, z) -> Printf.sprintf "(%d,%d,%d)" x y z) t.Npc.triples));
  let inst, k = Npc.reduce t in
  Printf.printf
    "  reduction: %d+1 ingress and egress points, %d unit requests, bound K = %d\n"
    t.Npc.n
    (Array.length inst.Unit_exact.reqs)
    k;
  let sol = Unit_exact.solve inst in
  let matching = Npc.has_matching t in
  Printf.printf "  3-DM matching: %s\n"
    (match matching with
    | Some m ->
        "yes  " ^ String.concat " " (List.map (fun (x, y, z) -> Printf.sprintf "(%d,%d,%d)" x y z) m)
    | None -> "no");
  Printf.printf "  exact scheduler accepts %d request(s) -> >= K %s\n" sol.Unit_exact.count
    (if sol.Unit_exact.count >= k then "holds" else "fails");
  (match matching with
  | Some m ->
      (* Forward direction: the proof's constructive schedule. *)
      let placements = Npc.schedule_of_matching t m in
      Printf.printf "  constructive schedule from the matching: %d placements, feasible = %b\n"
        (List.length placements)
        (Unit_exact.feasible inst placements)
  | None -> ());
  Printf.printf "  equivalence: matching %s <-> schedulable %s   [%s]\n\n"
    (if matching <> None then "yes" else "no")
    (if sol.Unit_exact.count >= k then "yes" else "no")
    (if (matching <> None) = (sol.Unit_exact.count >= k) then "AGREE" else "DISAGREE")

let () =
  print_endline "Theorem 1: MAX-REQUESTS-DEC is NP-complete (reduction from 3-DM)\n";
  (* A yes-instance: the diagonal plus a distractor. *)
  show "yes-instance"
    { Npc.n = 3; triples = [ (1, 1, 1); (2, 2, 2); (3, 3, 3); (1, 2, 3) ] };
  (* A no-instance: z = 2 can only be covered through x = 1, which z = 1
     already needs. *)
  show "no-instance" { Npc.n = 2; triples = [ (1, 1, 1); (1, 2, 2) ] };
  (* Structure of the reduced instance, spelled out for the yes-instance. *)
  let t = { Npc.n = 2; triples = [ (1, 2, 1); (2, 1, 2) ] } in
  let inst, k = Npc.reduce t in
  Printf.printf "reduced instance for n = 2, T = {(1,2,1); (2,1,2)} (K = %d):\n" k;
  Table.print
    (Table.make
       ~headers:[ "request"; "kind"; "ingress"; "egress"; "window" ]
       (Array.to_list inst.Unit_exact.reqs
       |> List.map (fun (r : Unit_exact.ureq) ->
              [
                string_of_int r.Unit_exact.id;
                (if r.Unit_exact.id < List.length t.Npc.triples then "regular (triple)"
                 else "special");
                string_of_int r.Unit_exact.ingress;
                string_of_int r.Unit_exact.egress;
                Printf.sprintf "[%d, %d)" r.Unit_exact.ts r.Unit_exact.tf;
              ])));
  print_endline
    "\nregular ports have capacity 1; the special ports (index n) have capacity n-1."
