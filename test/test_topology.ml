open Helpers
module Fabric = Gridbw_topology.Fabric

let invalid_arg_check name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let make_copies_input () =
  let ingress = [| 10.0 |] and egress = [| 20.0 |] in
  let f = Fabric.make ~ingress ~egress in
  ingress.(0) <- 99.0;
  check_approx "capacity unaffected by caller mutation" 10.0 (Fabric.ingress_capacity f 0)

let rejects_empty_sides () =
  invalid_arg_check "no ingress" (fun () -> Fabric.make ~ingress:[||] ~egress:[| 1.0 |]);
  invalid_arg_check "no egress" (fun () -> Fabric.make ~ingress:[| 1.0 |] ~egress:[||])

let rejects_bad_capacity () =
  invalid_arg_check "zero" (fun () -> Fabric.make ~ingress:[| 0.0 |] ~egress:[| 1.0 |]);
  invalid_arg_check "negative" (fun () -> Fabric.make ~ingress:[| 1.0 |] ~egress:[| -2.0 |]);
  invalid_arg_check "infinite" (fun () -> Fabric.make ~ingress:[| infinity |] ~egress:[| 1.0 |]);
  invalid_arg_check "nan" (fun () -> Fabric.make ~ingress:[| 1.0 |] ~egress:[| Float.nan |])

let uniform_shape () =
  let f = Fabric.uniform ~ingress_count:3 ~egress_count:5 ~capacity:7.5 in
  Alcotest.(check int) "ingress count" 3 (Fabric.ingress_count f);
  Alcotest.(check int) "egress count" 5 (Fabric.egress_count f);
  check_approx "capacity" 7.5 (Fabric.egress_capacity f 4)

let uniform_rejects_zero_count () =
  invalid_arg_check "zero ports" (fun () ->
      Fabric.uniform ~ingress_count:0 ~egress_count:1 ~capacity:1.0)

let paper_platform () =
  let f = Fabric.paper_default () in
  Alcotest.(check int) "10 ingress" 10 (Fabric.ingress_count f);
  Alcotest.(check int) "10 egress" 10 (Fabric.egress_count f);
  check_approx "1 GB/s ports" 1000.0 (Fabric.ingress_capacity f 9);
  check_approx "half total = 10 GB/s" 10_000.0 (Fabric.half_total_capacity f)

let totals () =
  let f = Fabric.make ~ingress:[| 1.0; 2.0 |] ~egress:[| 4.0 |] in
  check_approx "total in" 3.0 (Fabric.total_ingress_capacity f);
  check_approx "total out" 4.0 (Fabric.total_egress_capacity f);
  check_approx "half total" 3.5 (Fabric.half_total_capacity f)

let accessor_range () =
  let f = fabric2 () in
  invalid_arg_check "ingress -1" (fun () -> Fabric.ingress_capacity f (-1));
  invalid_arg_check "egress over" (fun () -> Fabric.egress_capacity f 2);
  Alcotest.(check bool) "valid ingress" true (Fabric.valid_ingress f 1);
  Alcotest.(check bool) "invalid ingress" false (Fabric.valid_ingress f 2);
  Alcotest.(check bool) "invalid egress" false (Fabric.valid_egress f (-1))

let equality () =
  let a = fabric2 () and b = fabric2 () in
  Alcotest.(check bool) "equal" true (Fabric.equal a b);
  let c = Fabric.uniform ~ingress_count:2 ~egress_count:2 ~capacity:50.0 in
  Alcotest.(check bool) "different capacity" false (Fabric.equal a c)

let pp_smoke () =
  let s = Format.asprintf "%a" Fabric.pp (fabric2 ()) in
  Alcotest.(check bool) "mentions ports" true
    (String.length s > 0 && String.index_opt s '2' <> None)

let suites =
  [
    ( "fabric",
      [
        case "make copies input arrays" make_copies_input;
        case "rejects empty sides" rejects_empty_sides;
        case "rejects bad capacities" rejects_bad_capacity;
        case "uniform shape" uniform_shape;
        case "uniform rejects zero counts" uniform_rejects_zero_count;
        case "paper platform (section 4.3)" paper_platform;
        case "capacity totals" totals;
        case "accessor range checks" accessor_range;
        case "equality" equality;
        case "pp smoke" pp_smoke;
      ] );
  ]
