open Helpers
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Token_bucket = Gridbw_control.Token_bucket
module Enforcer = Gridbw_control.Enforcer
module Plane = Gridbw_control.Plane
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Rng = Gridbw_prng.Rng

let invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

(* --- Token bucket --- *)

let bucket_starts_full () =
  let b = Token_bucket.create ~rate:10. ~burst:50. in
  check_approx "full burst" 50.0 (Token_bucket.tokens b ~at:0.0)

let bucket_refills_at_rate () =
  let b = Token_bucket.create ~rate:10. ~burst:50. in
  Alcotest.(check bool) "drain" true (Token_bucket.try_consume b ~at:0.0 ~amount:50.);
  check_approx "empty" 0.0 (Token_bucket.tokens b ~at:0.0);
  check_approx "refilled 2s" 20.0 (Token_bucket.tokens b ~at:2.0);
  check_approx "capped at burst" 50.0 (Token_bucket.tokens b ~at:100.0)

let bucket_rejects_whole_chunk () =
  let b = Token_bucket.create ~rate:10. ~burst:20. in
  Alcotest.(check bool) "too big" false (Token_bucket.try_consume b ~at:0.0 ~amount:21.);
  check_approx "nothing consumed" 20.0 (Token_bucket.tokens b ~at:0.0)

let bucket_partial_consume () =
  let b = Token_bucket.create ~rate:10. ~burst:20. in
  check_approx "partial grant" 20.0 (Token_bucket.consume_up_to b ~at:0.0 ~amount:30.);
  check_approx "drained" 0.0 (Token_bucket.tokens b ~at:0.0)

let bucket_time_monotone () =
  let b = Token_bucket.create ~rate:1. ~burst:1. in
  ignore (Token_bucket.tokens b ~at:5.0);
  invalid "backwards" (fun () -> Token_bucket.tokens b ~at:4.0)

let bucket_validation () =
  invalid "zero rate" (fun () -> Token_bucket.create ~rate:0. ~burst:1.);
  invalid "zero burst" (fun () -> Token_bucket.create ~rate:1. ~burst:0.)

(* --- Enforcer --- *)

let allocation () =
  let r = req ~id:0 ~volume:1000. ~ts:0. ~tf:100. ~max_rate:50. () in
  Allocation.make ~request:r ~bw:20. ~sigma:0.

let well_behaved_passes () =
  let a = allocation () in
  let chunks = Enforcer.well_behaved_sender a ~chunk_seconds:1.0 in
  let report = Enforcer.police a chunks in
  check_approx "all offered" 1000.0 report.Enforcer.offered;
  check_approx "all conformant" 1000.0 report.Enforcer.conformant;
  check_approx "nothing dropped" 0.0 report.Enforcer.dropped

let bursty_overdrive_is_clipped () =
  let a = allocation () in
  let chunks = Enforcer.bursty_sender (rng ()) a ~chunk_seconds:1.0 ~overdrive:2.0 in
  let report = Enforcer.police a chunks in
  Alcotest.(check bool) "some traffic dropped" true (report.Enforcer.dropped > 0.0);
  Alcotest.(check bool) "conformant bounded by grant" true
    (* bw * horizon + initial burst bounds what can pass *)
    (report.Enforcer.conformant <= (20.0 *. 100.0) +. Token_bucket.burst
       (Token_bucket.create ~rate:20. ~burst:20.) +. 1e-6)

let bursty_mild_mostly_passes () =
  let a = allocation () in
  let chunks = Enforcer.bursty_sender (rng ~seed:5L ()) a ~chunk_seconds:1.0 ~overdrive:0.5 in
  let report = Enforcer.police a chunks in
  Alcotest.(check bool) "most passes at half rate" true
    (report.Enforcer.conformant >= 0.8 *. report.Enforcer.offered)

let unsorted_chunks_rejected () =
  let a = allocation () in
  invalid "unsorted" (fun () ->
      Enforcer.police a
        [ { Enforcer.at = 2.0; bytes = 1.0 }; { Enforcer.at = 1.0; bytes = 1.0 } ])

(* --- Plane --- *)

let fabric1 () = Fabric.uniform ~ingress_count:1 ~egress_count:1 ~capacity:100.0

let plane_grants_and_counts_messages () =
  let r = req ~id:0 ~volume:100. ~ts:0. ~tf:100. ~max_rate:50. () in
  let stats = Plane.run (fabric1 ()) (Plane.default_config Policy.Min_rate) [ r ] in
  Alcotest.(check int) "accepted" 1 stats.Plane.accepted;
  Alcotest.(check int) "grant costs 4 messages" 4 stats.Plane.total_messages;
  let t = List.hd stats.Plane.transcripts in
  check_approx "decided after hop+processing" 0.006 t.Plane.decided_at;
  check_approx "client informed after reply hop" 0.011 t.Plane.client_informed_at;
  check_approx ~eps:1e-6 "mean response time" 0.011 stats.Plane.mean_response_time

let plane_rejection_costs_two_messages () =
  let r1 = req ~id:0 ~volume:9_000. ~ts:0. ~tf:100. ~max_rate:100. () in
  let r2 = req ~id:1 ~volume:9_000. ~ts:0. ~tf:100. ~max_rate:100. () in
  let stats = Plane.run (fabric1 ()) (Plane.default_config Policy.Min_rate) [ r1; r2 ] in
  Alcotest.(check int) "one accepted" 1 stats.Plane.accepted;
  Alcotest.(check int) "one rejected" 1 stats.Plane.rejected;
  Alcotest.(check int) "4 + 2 messages" 6 stats.Plane.total_messages

let plane_latency_can_expire_windows () =
  (* The window closes 1 ms after arrival; with 5 ms hops the decision
     arrives too late. An instantaneous controller would have accepted. *)
  let r = req ~id:0 ~volume:0.05 ~ts:0. ~tf:0.001 ~max_rate:50. () in
  let stats = Plane.run (fabric1 ()) (Plane.default_config Policy.Min_rate) [ r ] in
  Alcotest.(check int) "expired in flight" 0 stats.Plane.accepted;
  match (List.hd stats.Plane.transcripts).Plane.decision with
  | Types.Rejected Types.Deadline_unreachable -> ()
  | _ -> Alcotest.fail "expected Deadline_unreachable"

let plane_zero_latency_matches_greedy () =
  let fabric = fabric2 () in
  let reqs = random_requests ~seed:23L ~n:50 fabric in
  let config = { Plane.policy = Policy.Min_rate; hop_latency = 0.; decision_latency = 0. } in
  let stats = Plane.run fabric config reqs in
  let greedy = Gridbw_core.Flexible.greedy fabric Policy.Min_rate reqs in
  Alcotest.(check int) "same accept count as Algorithm 2" (List.length greedy.Types.accepted)
    stats.Plane.accepted

let suites =
  [
    ( "token-bucket",
      [
        case "starts full" bucket_starts_full;
        case "refills at rate, capped" bucket_refills_at_rate;
        case "rejects whole chunk" bucket_rejects_whole_chunk;
        case "partial consume" bucket_partial_consume;
        case "time monotone" bucket_time_monotone;
        case "validation" bucket_validation;
      ] );
    ( "enforcer",
      [
        case "well-behaved sender passes" well_behaved_passes;
        case "overdriven sender is clipped" bursty_overdrive_is_clipped;
        case "mild sender mostly passes" bursty_mild_mostly_passes;
        case "unsorted chunks rejected" unsorted_chunks_rejected;
      ] );
    ( "plane",
      [
        case "grant flow and message count" plane_grants_and_counts_messages;
        case "rejection message count" plane_rejection_costs_two_messages;
        case "latency can expire tight windows" plane_latency_can_expire_windows;
        case "zero latency matches Algorithm 2" plane_zero_latency_matches_greedy;
      ] );
  ]
