open Helpers
module Table = Gridbw_report.Table
module Figure = Gridbw_report.Figure

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let render_aligns () =
  let t = Table.make ~headers:[ "name"; "value" ] [ [ "a"; "1" ]; [ "longer"; "22" ] ] in
  let rendered = Table.render t in
  Alcotest.(check bool) "has header" true (contains ~needle:"| name   | value |" rendered);
  Alcotest.(check bool) "has row" true (contains ~needle:"| longer | 22    |" rendered)

let short_rows_padded () =
  let t = Table.make ~headers:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0)

let long_rows_rejected () =
  match Table.make ~headers:[ "a" ] [ [ "1"; "2" ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "over-long row accepted"

let of_floats_precision () =
  let t = Table.of_floats ~headers:[ "x" ] ~precision:2 [ [ 3.14159 ] ] in
  Alcotest.(check bool) "rounded" true (contains ~needle:"3.14" (Table.render t))

let csv_quoting () =
  let t = Table.make ~headers:[ "k" ] [ [ "a,b" ]; [ "say \"hi\"" ] ] in
  let csv = Table.to_csv t in
  Alcotest.(check bool) "comma quoted" true (contains ~needle:"\"a,b\"" csv);
  Alcotest.(check bool) "quote doubled" true (contains ~needle:"\"say \"\"hi\"\"\"" csv)

let csv_plain () =
  let t = Table.make ~headers:[ "x"; "y" ] [ [ "1"; "2" ] ] in
  Alcotest.(check string) "simple csv" "x,y\n1,2\n" (Table.to_csv t)

(* --- Figure --- *)

let fig () =
  Figure.make ~id:"figX" ~title:"test" ~x_label:"load" ~y_label:"accept"
    [
      Figure.series ~label:"s1" [ (1.0, 0.5); (2.0, 0.25) ];
      Figure.series ~label:"s2" [ (1.0, 0.9) ];
    ]

let figure_table_union () =
  let t = Figure.to_table ~precision:2 (fig ()) in
  let rendered = Table.render t in
  Alcotest.(check bool) "x union row 2" true (contains ~needle:"2.00" rendered);
  Alcotest.(check bool) "s1 value" true (contains ~needle:"0.25" rendered);
  (* s2 has no point at x=2: the cell is empty, so "0.90" appears once only. *)
  Alcotest.(check bool) "s2 value" true (contains ~needle:"0.90" rendered)

let figure_render_has_title () =
  let s = Figure.render (fig ()) in
  Alcotest.(check bool) "title" true (contains ~needle:"figX" s);
  Alcotest.(check bool) "legend" true (contains ~needle:"s1" s)

let figure_plot_nonempty () =
  let s = Figure.ascii_plot (fig ()) in
  Alcotest.(check bool) "non-empty" true (String.length s > 0)

let figure_plot_empty_series () =
  let empty = Figure.make ~id:"e" ~title:"e" ~x_label:"x" ~y_label:"y" [] in
  Alcotest.(check string) "empty plot" "" (Figure.ascii_plot empty)

let figure_csv () =
  let csv = Figure.to_csv (fig ()) in
  Alcotest.(check bool) "header" true (contains ~needle:"load,s1,s2" csv)

let suites =
  [
    ( "table",
      [
        case "render aligns columns" render_aligns;
        case "short rows padded" short_rows_padded;
        case "long rows rejected" long_rows_rejected;
        case "of_floats precision" of_floats_precision;
        case "csv quoting" csv_quoting;
        case "csv plain" csv_plain;
      ] );
    ( "figure",
      [
        case "table over x union" figure_table_union;
        case "render has title and legend" figure_render_has_title;
        case "ascii plot non-empty" figure_plot_nonempty;
        case "ascii plot empty" figure_plot_empty_series;
        case "csv export" figure_csv;
      ] );
  ]
