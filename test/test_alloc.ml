open Helpers
module Profile = Gridbw_alloc.Profile
module Port = Gridbw_alloc.Port
module Ledger = Gridbw_alloc.Ledger
module Live = Gridbw_alloc.Live
module Allocation = Gridbw_alloc.Allocation
module Request = Gridbw_request.Request
module Rng = Gridbw_prng.Rng

(* --- Profile --- *)

let empty_profile () =
  check_approx "usage" 0.0 (Profile.usage_at Profile.empty 3.0);
  check_approx "max" 0.0 (Profile.max_over Profile.empty ~from_:0. ~until:10.);
  Alcotest.(check bool) "is_empty" true (Profile.is_empty Profile.empty)

let single_interval () =
  let p = Profile.add Profile.empty ~from_:2. ~until:5. 10. in
  check_approx "before" 0.0 (Profile.usage_at p 1.9);
  check_approx "at start (closed left)" 10.0 (Profile.usage_at p 2.0);
  check_approx "inside" 10.0 (Profile.usage_at p 4.0);
  check_approx "at end (open right)" 0.0 (Profile.usage_at p 5.0);
  check_approx "peak" 10.0 (Profile.peak p)

let overlapping_adds_sum () =
  let p =
    Profile.empty
    |> fun p -> Profile.add p ~from_:0. ~until:10. 5.
    |> fun p -> Profile.add p ~from_:5. ~until:15. 7.
  in
  check_approx "first only" 5.0 (Profile.usage_at p 2.);
  check_approx "overlap" 12.0 (Profile.usage_at p 7.);
  check_approx "second only" 7.0 (Profile.usage_at p 12.);
  check_approx "max over overlap" 12.0 (Profile.max_over p ~from_:0. ~until:15.);
  check_approx "max over prefix" 12.0 (Profile.max_over p ~from_:0. ~until:6.);
  check_approx "max over disjoint prefix" 5.0 (Profile.max_over p ~from_:0. ~until:5.)

let max_over_sees_interior_spike () =
  let p = Profile.add Profile.empty ~from_:4. ~until:6. 42. in
  check_approx "spike inside query" 42.0 (Profile.max_over p ~from_:0. ~until:10.)

let add_remove_identity () =
  let p =
    Profile.empty
    |> fun p -> Profile.add p ~from_:1. ~until:4. 3.
    |> fun p -> Profile.add p ~from_:2. ~until:6. 2.
    |> fun p -> Profile.remove p ~from_:1. ~until:4. 3.
    |> fun p -> Profile.remove p ~from_:2. ~until:6. 2.
  in
  Alcotest.(check bool) "back to empty" true (Profile.is_empty p)

let integral_value () =
  let p =
    Profile.empty
    |> fun p -> Profile.add p ~from_:0. ~until:10. 5.
    |> fun p -> Profile.add p ~from_:5. ~until:10. 5.
  in
  check_approx "50 + 25" 75.0 (Profile.integral p)

let breakpoints_sorted () =
  let p =
    Profile.empty
    |> fun p -> Profile.add p ~from_:5. ~until:9. 1.
    |> fun p -> Profile.add p ~from_:1. ~until:3. 1.
  in
  Alcotest.(check (list (float 0.))) "sorted" [ 1.; 3.; 5.; 9. ] (Profile.breakpoints p)

let fold_segments_levels () =
  let p =
    Profile.empty
    |> fun p -> Profile.add p ~from_:0. ~until:4. 2.
    |> fun p -> Profile.add p ~from_:2. ~until:6. 3.
  in
  let segs =
    Profile.fold_segments p ~init:[] ~f:(fun acc ~from_ ~until level ->
        (from_, until, level) :: acc)
    |> List.rev
  in
  Alcotest.(check int) "three segments" 3 (List.length segs);
  let f0, u0, l0 = List.nth segs 0 in
  check_approx "seg0 from" 0. f0; check_approx "seg0 until" 2. u0; check_approx "seg0 level" 2. l0;
  let _, _, l1 = List.nth segs 1 in
  check_approx "seg1 level" 5. l1;
  let _, _, l2 = List.nth segs 2 in
  check_approx "seg2 level" 3. l2

let rejects_bad_interval () =
  (match Profile.add Profile.empty ~from_:3. ~until:3. 1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty interval accepted");
  match Profile.add Profile.empty ~from_:0. ~until:infinity 1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "infinite interval accepted"

let prop_add_remove_cancels =
  qcase ~count:200 "qcheck: add/remove sequences cancel exactly"
    QCheck2.Gen.(list_size (int_range 1 30) (triple (int_range 0 50) (int_range 1 20) (int_range 1 100)))
    (fun ops ->
      let intervals =
        List.map (fun (s, d, bw) -> (float_of_int s, float_of_int (s + d), float_of_int bw)) ops
      in
      let p =
        List.fold_left (fun p (f, u, bw) -> Profile.add p ~from_:f ~until:u bw) Profile.empty
          intervals
      in
      let p =
        List.fold_left (fun p (f, u, bw) -> Profile.remove p ~from_:f ~until:u bw) p intervals
      in
      Profile.is_empty p)

(* --- Allocation --- *)

let allocation_fields () =
  let r = req ~volume:100. ~ts:0. ~tf:10. ~max_rate:50. () in
  let a = Allocation.make ~request:r ~bw:20. ~sigma:1. in
  check_approx "tau" 6.0 a.Allocation.tau;
  check_approx "duration" 5.0 (Allocation.duration a);
  Alcotest.(check bool) "deadline ok" true (Allocation.meets_deadline a);
  Alcotest.(check bool) "rate ok" true (Allocation.within_rate_bounds a)

let allocation_violations () =
  let r = req ~volume:100. ~ts:0. ~tf:10. ~max_rate:50. () in
  let late = Allocation.make ~request:r ~bw:10. ~sigma:5. in
  Alcotest.(check bool) "misses deadline" false (Allocation.meets_deadline late);
  let fast = Allocation.make ~request:r ~bw:60. ~sigma:0. in
  Alcotest.(check bool) "over max rate" false (Allocation.within_rate_bounds fast);
  match Allocation.make ~request:r ~bw:10. ~sigma:(-1.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sigma before ts accepted"

(* --- Ledger --- *)

let alloc r bw sigma = Allocation.make ~request:r ~bw ~sigma

let ledger_fit_and_reserve () =
  let f = fabric2 () in
  let l = Ledger.create f in
  let r1 = req ~id:1 ~ingress:0 ~egress:0 ~volume:600. ~ts:0. ~tf:10. ~max_rate:60. () in
  let a1 = alloc r1 60. 0. in
  Alcotest.(check bool) "fits empty" true (Ledger.fits l a1);
  Ledger.reserve l a1;
  check_approx "usage" 60.0 (Ledger.usage_at l (Port.Ingress 0) 5.0);
  (* Same ports, same window, 60 + 60 > 100. *)
  let r2 = req ~id:2 ~ingress:0 ~egress:0 ~volume:600. ~ts:0. ~tf:10. ~max_rate:60. () in
  Alcotest.(check bool) "does not fit" false (Ledger.fits l (alloc r2 60. 0.));
  (* Exactly filling the port is allowed. *)
  let r3 = req ~id:3 ~ingress:0 ~egress:0 ~volume:400. ~ts:0. ~tf:10. ~max_rate:40. () in
  Alcotest.(check bool) "exact fit" true (Ledger.fits l (alloc r3 40. 0.));
  (* Disjoint window fits regardless. *)
  let r4 = req ~id:4 ~ingress:0 ~egress:0 ~volume:600. ~ts:10. ~tf:20. ~max_rate:60. () in
  Alcotest.(check bool) "disjoint window" true (Ledger.fits l (alloc r4 60. 10.))

let ledger_egress_constraint () =
  let f = fabric2 () in
  let l = Ledger.create f in
  (* Different ingress ports, same egress: egress should saturate. *)
  let r1 = req ~id:1 ~ingress:0 ~egress:1 ~volume:700. ~ts:0. ~tf:10. ~max_rate:70. () in
  Ledger.reserve l (alloc r1 70. 0.);
  let r2 = req ~id:2 ~ingress:1 ~egress:1 ~volume:700. ~ts:0. ~tf:10. ~max_rate:70. () in
  Alcotest.(check bool) "egress saturated" false (Ledger.fits l (alloc r2 70. 0.));
  let r3 = req ~id:3 ~ingress:1 ~egress:0 ~volume:700. ~ts:0. ~tf:10. ~max_rate:70. () in
  Alcotest.(check bool) "other egress free" true (Ledger.fits l (alloc r3 70. 0.))

let ledger_reserve_checks () =
  let f = fabric2 () in
  let l = Ledger.create f in
  let r = req ~id:1 ~volume:2000. ~ts:0. ~tf:10. ~max_rate:200. () in
  match Ledger.reserve l (alloc r 200. 0.) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "over-capacity reserve accepted"

let ledger_release_restores () =
  let f = fabric2 () in
  let l = Ledger.create f in
  let r1 = req ~id:1 ~volume:900. ~ts:0. ~tf:10. ~max_rate:90. () in
  let a1 = alloc r1 90. 0. in
  Ledger.reserve l a1;
  let r2 = req ~id:2 ~volume:900. ~ts:0. ~tf:10. ~max_rate:90. () in
  Alcotest.(check bool) "blocked" false (Ledger.fits l (alloc r2 90. 0.));
  Ledger.release l a1;
  Alcotest.(check bool) "free again" true (Ledger.fits l (alloc r2 90. 0.));
  check_approx "no reserved volume" 0.0 (Ledger.reserved_volume l)

let ledger_reserved_volume () =
  let f = fabric2 () in
  let l = Ledger.create f in
  let r = req ~id:1 ~volume:500. ~ts:0. ~tf:10. ~max_rate:50. () in
  Ledger.reserve l (alloc r 50. 0.);
  check_approx "500 MB reserved" 500.0 (Ledger.reserved_volume l)

let prop_random_reservations_within_capacity =
  qcase ~count:60 "qcheck: fits-guarded reservations never violate capacity"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let f = fabric2 () in
      let l = Ledger.create f in
      let requests = List.init 30 (random_request rng f) in
      List.iter
        (fun (r : Request.t) ->
          let a = alloc r (Request.min_rate r) r.Request.ts in
          if Ledger.fits l a then Ledger.reserve l a)
        requests;
      Ledger.within_capacity l)

(* --- Live --- *)

let live_grab_release () =
  let f = fabric2 () in
  let v = Live.create f in
  Alcotest.(check bool) "fits fresh" true (Live.fits v ~ingress:0 ~egress:1 ~bw:100.);
  Live.grab v ~ingress:0 ~egress:1 ~bw:60.;
  check_approx "ali" 60.0 (Live.ingress_used v 0);
  check_approx "ale" 60.0 (Live.egress_used v 1);
  Alcotest.(check bool) "no room for 50" false (Live.fits v ~ingress:0 ~egress:0 ~bw:50.);
  Alcotest.(check bool) "room for 40" true (Live.fits v ~ingress:0 ~egress:0 ~bw:40.);
  Live.release v ~ingress:0 ~egress:1 ~bw:60.;
  check_approx "released" 0.0 (Live.ingress_used v 0)

let live_try_grab () =
  let f = fabric2 () in
  let v = Live.create f in
  Alcotest.(check bool) "grabs" true (Live.try_grab v ~ingress:0 ~egress:0 ~bw:80.);
  Alcotest.(check bool) "refuses" false (Live.try_grab v ~ingress:0 ~egress:1 ~bw:30.);
  check_approx "counters unchanged on refusal" 80.0 (Live.ingress_used v 0)

let live_saturation () =
  let f = fabric2 () in
  let v = Live.create f in
  Live.grab v ~ingress:0 ~egress:1 ~bw:50.;
  check_approx "cost uses max of both sides" 0.9 (Live.saturation v ~ingress:0 ~egress:0 ~bw:40.);
  check_approx "egress side dominates" 0.9 (Live.saturation v ~ingress:1 ~egress:1 ~bw:40.)

let live_release_clamps () =
  let f = fabric2 () in
  let v = Live.create f in
  Live.grab v ~ingress:0 ~egress:0 ~bw:(0.1 +. 0.2);
  Live.release v ~ingress:0 ~egress:0 ~bw:0.1;
  Live.release v ~ingress:0 ~egress:0 ~bw:0.2;
  Alcotest.(check bool) "non-negative" true (Live.ingress_used v 0 >= 0.0)

let live_reset () =
  let f = fabric2 () in
  let v = Live.create f in
  Live.grab v ~ingress:1 ~egress:1 ~bw:42.;
  Live.reset v;
  check_approx "reset" 0.0 (Live.ingress_used v 1)

let suites =
  [
    ( "profile",
      [
        case "empty profile" empty_profile;
        case "single interval semantics" single_interval;
        case "overlapping adds sum" overlapping_adds_sum;
        case "max_over sees interior spike" max_over_sees_interior_spike;
        case "add/remove identity" add_remove_identity;
        case "integral" integral_value;
        case "breakpoints sorted" breakpoints_sorted;
        case "fold_segments levels" fold_segments_levels;
        case "rejects bad intervals" rejects_bad_interval;
        prop_add_remove_cancels;
      ] );
    ( "allocation",
      [ case "derived fields" allocation_fields; case "violations detected" allocation_violations ]
    );
    ( "ledger",
      [
        case "fit and reserve" ledger_fit_and_reserve;
        case "egress constraint" ledger_egress_constraint;
        case "reserve checks capacity" ledger_reserve_checks;
        case "release restores" ledger_release_restores;
        case "reserved volume" ledger_reserved_volume;
        prop_random_reservations_within_capacity;
      ] );
    ( "live",
      [
        case "grab and release" live_grab_release;
        case "try_grab" live_try_grab;
        case "saturation cost" live_saturation;
        case "release clamps residue" live_release_clamps;
        case "reset" live_reset;
      ] );
  ]
