open Helpers
module Runner = Gridbw_experiments.Runner
module Figure = Gridbw_report.Figure
module Summary = Gridbw_metrics.Summary
module Policy = Gridbw_core.Policy

(* Tiny parameters so the whole experiment pipeline stays fast in tests. *)
let tiny = Runner.with_params ~count:40 ~reps:1 Runner.quick

let params_arithmetic () =
  let p = Runner.with_params ~count:7 ~reps:2 ~seed:5L Runner.defaults in
  Alcotest.(check int) "count" 7 p.Runner.count;
  Alcotest.(check int) "reps" 2 p.Runner.reps;
  Alcotest.(check int64) "rep seed" 6L (Runner.seed_for p ~rep:1)

let steady_count_behaviour () =
  (* Slow arrivals: base wins.  Fast arrivals: capped growth. *)
  Alcotest.(check int) "slow keeps base" 100 (Runner.steady_count 100 ~mean_interarrival:1000.);
  let fast = Runner.steady_count 100 ~mean_interarrival:0.01 in
  Alcotest.(check int) "fast hits the 10x-base cap" 1000 fast

let load_calibration () =
  let spec = Runner.rigid_spec tiny ~load:2.0 in
  check_approx ~eps:1e-6 "spec load" 2.0 (Gridbw_workload.Spec.offered_load spec);
  check_approx ~eps:1e-6 "interarrival round trip" 2.0
    (Runner.offered_load_of_interarrival spec.Gridbw_workload.Spec.mean_interarrival)

let summaries_run () =
  let s = Runner.rigid_summary tiny ~load:1.0 `Fcfs ~rep:0 in
  Alcotest.(check bool) "some requests" true (s.Summary.total > 0);
  let s2 = Runner.flexible_summary tiny ~mean_interarrival:1.0 `Greedy Policy.Min_rate ~rep:0 in
  Alcotest.(check bool) "accept rate in [0,1]" true
    (s2.Summary.accept_rate >= 0. && s2.Summary.accept_rate <= 1.)

let figure4_structure () =
  let accept, util = Gridbw_experiments.Figure4.run ~loads:[ 0.5; 2.0 ] tiny in
  Alcotest.(check int) "five series" 5 (List.length accept.Figure.series);
  List.iter
    (fun s -> Alcotest.(check int) "two points" 2 (List.length s.Figure.points))
    accept.Figure.series;
  Alcotest.(check string) "ids" "fig4-accept" accept.Figure.id;
  Alcotest.(check string) "ids" "fig4-util" util.Figure.id

let figure5_structure () =
  let fig = Gridbw_experiments.Figure5.run ~interarrivals:[ 0.5; 2.0 ] ~steps:[ 50.0 ] tiny in
  Alcotest.(check int) "greedy + one window" 2 (List.length fig.Figure.series)

let figure6_structure () =
  let heavy, under =
    Gridbw_experiments.Figure6.run ~heavy:[ 0.5 ] ~underloaded:[ 5.0 ] ~kind:`Greedy
      ~id_prefix:"t" ~title:"t" tiny
  in
  Alcotest.(check int) "five policies" 5 (List.length heavy.Figure.series);
  Alcotest.(check string) "panel ids" "t-heavy" heavy.Figure.id;
  Alcotest.(check string) "panel ids" "t-under" under.Figure.id

let tuning_rows () =
  let rows = Gridbw_experiments.Tuning.run ~fs:[ 0.0; 1.0 ] tiny in
  (* 2 regimes x 2 heuristics x 2 fs *)
  Alcotest.(check int) "row count" 8 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "rates bounded" true
        (r.Gridbw_experiments.Tuning.accept_rate >= 0.
        && r.Gridbw_experiments.Tuning.accept_rate <= 1.
        && r.Gridbw_experiments.Tuning.mean_speedup >= 0.))
    rows

let optgap_rows () =
  let rows = Gridbw_experiments.Optgap.run ~instances:3 ~requests_per_instance:8 tiny in
  Alcotest.(check int) "five heuristics" 5 (List.length rows);
  List.iter
    (fun r ->
      let open Gridbw_experiments.Optgap in
      Alcotest.(check bool) "ratios in [0,1]" true (r.mean_ratio >= 0. && r.mean_ratio <= 1. +. 1e-9);
      Alcotest.(check bool) "worst <= mean" true (r.worst_ratio <= r.mean_ratio +. 1e-9))
    rows

let baseline_rows () =
  let rows = Gridbw_experiments.Baseline_cmp.run ~mean_interarrival:0.3 tiny in
  Alcotest.(check int) "three approaches" 3 (List.length rows);
  let fluid = List.hd rows in
  check_approx "fluid serves everyone" 1.0 fluid.Gridbw_experiments.Baseline_cmp.served;
  List.iteri
    (fun i r ->
      if i > 0 then
        (* admission control: every served transfer is on time *)
        check_approx "served = on-time" r.Gridbw_experiments.Baseline_cmp.served
          r.Gridbw_experiments.Baseline_cmp.on_time)
    rows

let coalloc_rows () =
  let rows = Gridbw_experiments.Coalloc_exp.run ~fs:[ 1.0 ] tiny in
  Alcotest.(check int) "minbw + one f" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "counts non-negative" true
        (r.Gridbw_experiments.Coalloc_exp.completed >= 0
        && r.Gridbw_experiments.Coalloc_exp.rejected >= 0))
    rows

let npc_rows () =
  let rows = Gridbw_experiments.Npc_demo.run ~sizes:[ (2, 4) ] tiny in
  Alcotest.(check int) "four instances" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "reduction equivalence" true r.Gridbw_experiments.Npc_demo.agree)
    rows

let ablation_structure () =
  let fig = Gridbw_experiments.Ablation.run ~steps:[ 10.; 40. ] ~mean_interarrival:0.5 tiny in
  Alcotest.(check int) "three series" 3 (List.length fig.Figure.series)

let long_lived_rows () =
  let rows = Gridbw_experiments.Long_lived_exp.run ~request_counts:[ 30; 60 ] tiny in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      let open Gridbw_experiments.Long_lived_exp in
      Alcotest.(check bool) "optimal >= greedy" true (r.optimal_accepted >= r.greedy_accepted -. 1e-9))
    rows

let distributed_rows () =
  let rows = Gridbw_experiments.Distributed_exp.run ~gossip_intervals:[ 0.0; 30.0 ] tiny in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let fresh = List.hd rows in
  check_approx "no violations at interval 0" 0.0
    fresh.Gridbw_experiments.Distributed_exp.egress_violations

let bookahead_rows () =
  let rows = Gridbw_experiments.Bookahead_exp.run ~fractions:[ 0.0; 0.5 ] tiny in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let zero = List.hd rows in
  Alcotest.(check int) "no bookers at fraction 0" 0
    zero.Gridbw_experiments.Bookahead_exp.bookers

let core_stress_rows () =
  let rows = Gridbw_experiments.Core_stress.run ~rhos:[ 0.5; 1.0 ] tiny in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let tight = List.hd rows and ample = List.nth rows 1 in
  let open Gridbw_experiments.Core_stress in
  (* Edge-only admission ignores rho entirely. *)
  check_approx "edge accept independent of trunk" tight.edge_accept ample.edge_accept;
  Alcotest.(check bool) "tight trunk violated at least as much" true
    (tight.violation_time_fraction >= ample.violation_time_fraction -. 1e-9);
  Alcotest.(check bool) "core-aware accepts no more than edge-only" true
    (tight.core_aware_accept <= tight.edge_accept +. 1e-9)

let tables_render () =
  (* Every to_table renders without raising. *)
  let open Gridbw_experiments in
  ignore (Gridbw_report.Table.render (Tuning.to_table (Tuning.run ~fs:[ 0.5 ] tiny)));
  ignore
    (Gridbw_report.Table.render
       (Optgap.to_table (Optgap.run ~instances:2 ~requests_per_instance:6 tiny)));
  ignore
    (Gridbw_report.Table.render (Npc_demo.to_table (Npc_demo.run ~sizes:[ (2, 2) ] tiny)));
  ignore
    (Gridbw_report.Table.render
       (Long_lived_exp.to_table (Long_lived_exp.run ~request_counts:[ 20 ] tiny)));
  ignore
    (Gridbw_report.Table.render
       (Distributed_exp.to_table (Distributed_exp.run ~gossip_intervals:[ 0.0 ] tiny)))

let suites =
  [
    ( "experiments",
      [
        case "params arithmetic" params_arithmetic;
        case "steady count behaviour" steady_count_behaviour;
        case "load calibration" load_calibration;
        case "runner summaries" summaries_run;
        case "figure 4 structure" figure4_structure;
        case "figure 5 structure" figure5_structure;
        case "figure 6/7 structure" figure6_structure;
        case "tuning rows" tuning_rows;
        case "optgap rows" optgap_rows;
        slow_case "baseline rows" baseline_rows;
        case "coalloc rows" coalloc_rows;
        case "npc rows" npc_rows;
        case "ablation structure" ablation_structure;
        case "long-lived rows" long_lived_rows;
        case "distributed rows" distributed_rows;
        case "bookahead rows" bookahead_rows;
        case "core stress rows" core_stress_rows;
        slow_case "tables render" tables_render;
      ] );
  ]
