(* Conformance & fuzzing subsystem: mutation tests for the two oracles
   (each Validate constructor induced by a hand-built infeasible schedule
   and flagged identically by the reference model), shrinker units,
   scenario determinism, a fuzz smoke pass over every shipped engine, and
   the off-by-one headroom mutant being caught, shrunk and replayed
   bit-identically from its counterexample bundle. *)

open Helpers
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Validate = Gridbw_metrics.Validate
module Replay = Gridbw_metrics.Replay
module Summary = Gridbw_metrics.Summary
module Types = Gridbw_core.Types
module Scheduler = Gridbw_core.Scheduler
module Spec = Gridbw_workload.Spec
module Scenario = Gridbw_check.Scenario
module Reference = Gridbw_check.Reference
module Harness = Gridbw_check.Harness
module Shrink = Gridbw_check.Shrink
module Fuzz = Gridbw_check.Fuzz
module Mutant = Gridbw_testkit.Mutant

let alloc ?(id = 0) ?(ingress = 0) ?(egress = 0) ~bw ~sigma ~tau ?tf ?max_rate () =
  let tf = Option.value tf ~default:tau in
  let max_rate = Option.value max_rate ~default:bw in
  let r =
    Request.make ~id ~ingress ~egress ~volume:(bw *. (tau -. sigma)) ~ts:sigma ~tf ~max_rate
  in
  Allocation.make ~request:r ~bw ~sigma

(* --- oracle mutation tests ---

   For each Validate constructor, build a schedule that violates exactly
   that constraint.  Validate.check must flag it and nothing else, the
   reference model must report the same constraint on the same
   request/port, and [Reference.agrees] must hold in both directions. *)

let expect_exactly label allocs matches =
  let fabric = fabric2 () in
  let val_vs = Validate.check fabric allocs in
  let ref_vs = Reference.audit_allocations fabric allocs in
  let show_v vs =
    String.concat "; " (List.map (fun v -> Format.asprintf "%a" Validate.pp_violation v) vs)
  in
  (match val_vs with
  | [ v ] when matches v -> ()
  | vs -> Alcotest.failf "%s: Validate flagged [%s]" label (show_v vs));
  (match ref_vs with
  | [ _ ] -> ()
  | vs ->
      Alcotest.failf "%s: reference flagged %d violation(s): %s" label (List.length vs)
        (String.concat "; " (List.map Reference.describe vs)));
  Alcotest.(check bool) (label ^ ": oracles agree") true (Reference.agrees val_vs ref_vs)

let test_inject_port_overload () =
  (* Two 60 MB/s transfers overlap on ingress 0 of a 100 MB/s port; their
     egress ports differ so only one constraint breaks. *)
  expect_exactly "port overload"
    [ alloc ~id:0 ~egress:0 ~bw:60. ~sigma:0. ~tau:10. ();
      alloc ~id:1 ~egress:1 ~bw:60. ~sigma:5. ~tau:15. () ]
    (function Validate.Port_overload { side = Gridbw_metrics.Hotspot.Ingress; port = 0; _ } -> true | _ -> false)

let test_inject_deadline_miss () =
  (* 100 MB at 5 MB/s takes 20 s, but the window closes at t=10. *)
  let r = Request.make ~id:3 ~ingress:0 ~egress:0 ~volume:100. ~ts:0. ~tf:10. ~max_rate:100. in
  expect_exactly "deadline miss"
    [ Allocation.make ~request:r ~bw:5. ~sigma:0. ]
    (function Validate.Deadline_miss { request_id = 3; _ } -> true | _ -> false)

let test_inject_rate_above_max () =
  (* Granted 50 MB/s against a 5 MB/s host cap. *)
  let r = Request.make ~id:4 ~ingress:0 ~egress:0 ~volume:100. ~ts:0. ~tf:30. ~max_rate:5. in
  expect_exactly "rate above max"
    [ Allocation.make ~request:r ~bw:50. ~sigma:0. ]
    (function Validate.Rate_above_max { request_id = 4; _ } -> true | _ -> false)

let test_inject_bad_route () =
  (* Ingress 5 does not exist on the 2x2 fabric. *)
  expect_exactly "bad route"
    [ alloc ~id:5 ~ingress:5 ~bw:10. ~sigma:0. ~tau:10. () ]
    (function Validate.Bad_route { request_id = 5; _ } -> true | _ -> false)

let test_inject_duplicate () =
  let a = alloc ~id:6 ~bw:10. ~sigma:0. ~tau:10. () in
  expect_exactly "duplicate request" [ a; a ]
    (function Validate.Duplicate_request { request_id = 6 } -> true | _ -> false)

let test_early_start_unreachable () =
  (* Start_before_request cannot be built through the public API:
     [Allocation.t] is private and the smart constructor rejects
     sigma < ts, so the constructor is only reachable through a corrupted
     trace.  Pin the guard that makes it unreachable. *)
  let r = Request.make ~id:7 ~ingress:0 ~egress:0 ~volume:100. ~ts:5. ~tf:30. ~max_rate:50. in
  match Allocation.make ~request:r ~bw:10. ~sigma:2. with
  | _ -> Alcotest.fail "Allocation.make accepted sigma < ts"
  | exception Invalid_argument _ -> ()

let test_clean_schedule_passes () =
  let allocs =
    [ alloc ~id:0 ~egress:0 ~bw:60. ~sigma:0. ~tau:10. ();
      alloc ~id:1 ~egress:1 ~bw:40. ~sigma:5. ~tau:15. () ]
  in
  Alcotest.(check int) "validate" 0 (List.length (Validate.check (fabric2 ()) allocs));
  Alcotest.(check int) "reference" 0
    (List.length (Reference.audit_allocations (fabric2 ()) allocs))

(* --- shrinker --- *)

let test_shrink_list_minimizes () =
  let items = List.init 20 Fun.id in
  (* "Fails" whenever both 3 and 11 survive: the 1-minimal list is [3; 11]. *)
  let fails l = List.mem 3 l && List.mem 11 l in
  Alcotest.(check (list int)) "1-minimal" [ 3; 11 ] (Shrink.shrink_list ~fails items)

let test_shrink_preserves_failure () =
  let fails l = List.length l >= 3 in
  let out = Shrink.shrink_list ~fails (List.init 50 Fun.id) in
  Alcotest.(check int) "minimal failing size" 3 (List.length out)

(* --- scenario generation --- *)

let test_scenario_deterministic () =
  let a = Scenario.generate ~family:Scenario.Mixed ~seed:99L ~size:25 in
  let b = Scenario.generate ~family:Scenario.Mixed ~seed:99L ~size:25 in
  Alcotest.(check bool) "same requests" true (a.Scenario.requests = b.Scenario.requests);
  Alcotest.(check bool) "same fabric" true (Fabric.equal a.Scenario.fabric b.Scenario.fabric)

let test_fault_script_json_roundtrip () =
  let sc = Scenario.generate ~family:Scenario.Revision_storm ~seed:12L ~size:30 in
  Alcotest.(check bool) "storm script non-empty" true (sc.Scenario.faults <> []);
  match Scenario.faults_of_json (Scenario.faults_to_json sc.Scenario.faults) with
  | Ok back -> Alcotest.(check bool) "bit-exact round-trip" true (back = sc.Scenario.faults)
  | Error msg -> Alcotest.failf "fault script did not round-trip: %s" msg

let test_replay_hints () =
  let check name expected = Alcotest.(check (option string)) name expected (Fuzz.replay_hint name) in
  Alcotest.(check (option string)) "fcfs"
    (Some "gridbw run --trace workload.csv --heuristic fcfs")
    (Fuzz.replay_hint "fcfs");
  Alcotest.(check (option string)) "window"
    (Some "gridbw run --trace workload.csv --heuristic window --step 11 --policy 0.80")
    (Fuzz.replay_hint "window(11)/f=0.80");
  Alcotest.(check (option string)) "greedy"
    (Some "gridbw run --trace workload.csv --heuristic greedy --policy minrate")
    (Fuzz.replay_hint "greedy/minrate");
  Alcotest.(check (option string)) "malleable"
    (Some "gridbw run --trace workload.csv --heuristic malleable")
    (Fuzz.replay_hint "malleable");
  Alcotest.(check (option string)) "malleable booked"
    (Some "gridbw run --trace workload.csv --heuristic malleable --book-ahead 7")
    (Fuzz.replay_hint "malleable(ba=7)");
  Alcotest.(check (option string)) "malleable frozen"
    (Some "gridbw run --trace workload.csv --heuristic malleable --no-reshape")
    (Fuzz.replay_hint "malleable(no-reshape)");
  check "faulty-greedy[3 events]" None;
  check "mutant-greedy" None

(* --- fuzzing --- *)

let fuzz_smoke () =
  (* Every shipped engine, every family, small budget: the default suite's
     quick conformance pass.  Must stay well under a second. *)
  let outcome = Fuzz.run ~budget:25 ~seed:11L () in
  Alcotest.(check int) "scenarios checked" 25 outcome.Fuzz.scenarios;
  match outcome.Fuzz.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "unexpected counterexample: %s"
        (String.concat "; "
           (List.map (fun x -> Format.asprintf "%a" Harness.pp_finding x) f.Fuzz.findings))

let mutant_families = [ Scenario.Hotspot_skew; Scenario.Mixed ]

(* Shared between the two mutant tests: one 500-scenario hunt. *)
let mutant_outcome =
  lazy (Fuzz.run ~engines:[ Mutant.greedy ] ~families:mutant_families ~budget:500 ~seed:5L ())

let test_mutant_caught () =
  match (Lazy.force mutant_outcome).Fuzz.failures with
  | [] -> Alcotest.fail "off-by-one headroom mutant survived 500 scenarios"
  | f :: _ ->
      let sc = f.Fuzz.scenario in
      Alcotest.(check bool) "shrunk small" true (List.length sc.Scenario.requests <= 8);
      Alcotest.(check bool) "findings survive on the minimized scenario" true
        (f.Fuzz.findings <> [])

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_mutant_bundle_replays () =
  match (Lazy.force mutant_outcome).Fuzz.failures with
  | [] -> Alcotest.fail "off-by-one headroom mutant survived 500 scenarios"
  | f :: _ ->
      let dir = Filename.temp_file "gridbw-bundle" "" in
      Sys.remove dir;
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
        (fun () ->
          let case = Fuzz.write_bundle ~engines:[ Mutant.greedy ] ~dir ~index:0 f in
          List.iter
            (fun file ->
              Alcotest.(check bool) (file ^ " written") true
                (Sys.file_exists (Filename.concat case file)))
            [ "workload.csv"; "events.jsonl"; "meta.json" ];
          let sc = f.Fuzz.scenario in
          match Replay.of_file (Filename.concat case "events.jsonl") with
          | Error msg -> Alcotest.failf "bundle trace does not parse: %s" msg
          | Ok r ->
              (* The leading Capacity events carry the scenario fabric. *)
              let fabric =
                match Replay.fabric r with
                | Ok f -> f
                | Error `No_prefix -> Alcotest.fail "bundle trace has no capacity prefix"
                | Error (`Invalid msg) -> Alcotest.failf "bundle capacity prefix invalid: %s" msg
              in
              Alcotest.(check bool) "fabric reconstructed from the trace" true
                (Fabric.equal fabric sc.Scenario.fabric);
              let result =
                Scheduler.run Mutant.greedy (Spec.for_replay sc.Scenario.fabric)
                  sc.Scenario.requests
              in
              let live =
                Summary.compute sc.Scenario.fabric ~all:sc.Scenario.requests
                  ~accepted:result.Types.accepted
              in
              let replayed = Replay.summary fabric r in
              if live <> replayed then
                Alcotest.failf "replay not bit-identical:@.live %a@.replay %a" Summary.pp live
                  Summary.pp replayed)

(* --- Replay.fabric: the capacity prefix must error cleanly, never
   silently substitute a default fabric --- *)

module Event = Gridbw_obs.Event

let cap side port capacity = Event.Capacity { time = 0.; side; port; capacity }

let arrival =
  Event.Arrival
    { time = 0.; seq = 0; id = 0; ingress = 0; egress = 0; volume = 10.; ts = 0.; tf = 10.;
      max_rate = 10. }

let replay_of events =
  match Replay.of_events events with
  | Ok r -> r
  | Error msg -> Alcotest.failf "of_events rejected the fixture: %s" msg

let test_replay_fabric_no_prefix () =
  (* A plain --trace-out trace starts directly with arrivals. *)
  match Replay.fabric (replay_of [ arrival ]) with
  | Error `No_prefix -> ()
  | Ok _ -> Alcotest.fail "fabric invented from a prefix-less trace"
  | Error (`Invalid msg) -> Alcotest.failf "expected `No_prefix, got `Invalid %s" msg

let test_replay_fabric_torn_prefix () =
  (* Ingress port 1 is declared (port 2 exists) but its capacity event is
     missing — a torn prefix must not summarise against a made-up fabric. *)
  let torn = [ cap Event.Ingress 0 100.; cap Event.Ingress 2 100.; cap Event.Egress 0 100. ] in
  (match Replay.fabric (replay_of (torn @ [ arrival ])) with
  | Error (`Invalid _) -> ()
  | Ok _ -> Alcotest.fail "fabric built from a prefix with a missing port"
  | Error `No_prefix -> Alcotest.fail "prefix present but reported absent");
  (* Same for a non-positive capacity. *)
  let bad = [ cap Event.Ingress 0 0.; cap Event.Egress 0 100. ] in
  (match Replay.fabric (replay_of (bad @ [ arrival ])) with
  | Error (`Invalid _) -> ()
  | _ -> Alcotest.fail "fabric built from a zero-capacity prefix");
  (* And for a one-sided prefix. *)
  let one_sided = [ cap Event.Ingress 0 100. ] in
  match Replay.fabric (replay_of (one_sided @ [ arrival ])) with
  | Error (`Invalid _) -> ()
  | _ -> Alcotest.fail "fabric built from an ingress-only prefix"

let test_replay_fabric_valid_prefix () =
  let events =
    [ cap Event.Ingress 0 100.; cap Event.Ingress 1 50.; cap Event.Egress 0 80.; arrival ]
  in
  match Replay.fabric (replay_of events) with
  | Ok f ->
      Alcotest.(check bool) "fabric matches the prefix" true
        (Fabric.equal f (Fabric.make ~ingress:[| 100.; 50. |] ~egress:[| 80. |]))
  | Error `No_prefix -> Alcotest.fail "valid prefix reported absent"
  | Error (`Invalid msg) -> Alcotest.failf "valid prefix rejected: %s" msg

let prop_harness_clean_on_random_scenarios =
  qcase ~count:15 "harness: shipped engines conform on random scenarios"
    (Gridbw_testkit.Arbitrary.scenario ~max_size:20 ())
    (fun sc -> Harness.check sc = [])

let suites =
  [
    ( "conformance",
      [
        case "oracle mutation: port overload" test_inject_port_overload;
        case "oracle mutation: deadline miss" test_inject_deadline_miss;
        case "oracle mutation: rate above max" test_inject_rate_above_max;
        case "oracle mutation: bad route" test_inject_bad_route;
        case "oracle mutation: duplicate" test_inject_duplicate;
        case "oracle mutation: early start unreachable via constructor"
          test_early_start_unreachable;
        case "oracles pass a clean schedule" test_clean_schedule_passes;
        case "shrink: finds the 1-minimal sublist" test_shrink_list_minimizes;
        case "shrink: preserves the failure" test_shrink_preserves_failure;
        case "scenario: deterministic in (family, seed, size)" test_scenario_deterministic;
        case "scenario: fault script round-trips through json" test_fault_script_json_roundtrip;
        case "bundle: replay hints name the CLI spelling" test_replay_hints;
        case "replay fabric: no capacity prefix is a clean error" test_replay_fabric_no_prefix;
        case "replay fabric: torn prefix is a clean error" test_replay_fabric_torn_prefix;
        case "replay fabric: valid prefix reconstructs the fabric"
          test_replay_fabric_valid_prefix;
        case "fuzz smoke: shipped engines conform (budget 25)" fuzz_smoke;
        slow_case "fuzz: off-by-one mutant caught and shrunk" test_mutant_caught;
        slow_case "fuzz: mutant bundle replays bit-identically" test_mutant_bundle_replays;
        prop_harness_clean_on_random_scenarios;
      ] );
  ]
