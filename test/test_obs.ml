open Helpers
module Obs = Gridbw_obs.Obs
module Event = Gridbw_obs.Event
module Sink = Gridbw_obs.Sink
module Metrics = Gridbw_obs.Metrics
module Replay = Gridbw_metrics.Replay
module Summary = Gridbw_metrics.Summary
module Flexible = Gridbw_core.Flexible
module Rigid = Gridbw_core.Rigid
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- metrics registry --- *)

let counters_and_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "reqs" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter accumulates" 5 (Metrics.value c);
  Alcotest.(check int) "find-or-create shares state" 5 (Metrics.value (Metrics.counter m "reqs"));
  let g = Metrics.gauge m "depth" in
  Metrics.set g 3.5;
  Metrics.set g 2.0;
  check_approx "gauge keeps last value" 2.0 (Metrics.gauge_value (Metrics.gauge m "depth"))

let histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 3.0 ];
  Alcotest.(check int) "count" 3 (Metrics.hist_count h);
  check_approx "sum" 4.5 (Metrics.hist_sum h);
  (* <=1 lands in the le=1 bucket; 3.0 in (2,4]. *)
  Alcotest.(check (list (pair (float 0.) int)))
    "buckets" [ (1.0, 2); (4.0, 1) ] (Metrics.hist_buckets h)

let kind_mismatch_raises () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  match Metrics.histogram m "x" with
  | _ -> Alcotest.fail "expected Invalid_argument on kind mismatch"
  | exception Invalid_argument _ -> ()

let prometheus_dump () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "accepted") 2;
  Metrics.observe (Metrics.histogram m "lat") 3.0;
  let text = Metrics.to_prometheus m in
  let has s = Alcotest.(check bool) ("contains " ^ s) true (contains ~affix:s text) in
  has "# TYPE accepted counter";
  has "accepted 2";
  has "# TYPE lat histogram";
  has "lat_bucket{le=\"+Inf\"} 1";
  has "lat_count 1";
  Alcotest.(check string) "dump is deterministic" text (Metrics.to_prometheus m)

(* --- sinks --- *)

let mark i = Event.Dispatch { time = float_of_int i; pending = i }

let ring_eviction () =
  let r = Sink.ring ~capacity:3 in
  let s = Sink.ring_sink r in
  List.iter (fun i -> s.Sink.emit (mark i)) [ 0; 1; 2; 3; 4 ];
  Alcotest.(check int) "dropped" 2 (Sink.ring_dropped r);
  Alcotest.(check (list int)) "keeps most recent, oldest first" [ 2; 3; 4 ]
    (List.map (function Event.Dispatch d -> d.pending | _ -> -1) (Sink.ring_events r))

(* Property: after any number of emits, the ring holds exactly the
   newest [capacity] events in emit order, and [ring_dropped] counts
   every eviction — including across multiple full wraps. *)
let ring_wrap_gen = QCheck2.Gen.(pair (int_range 1 12) (int_range 0 100))

let prop_ring_wrap =
  qcase ~count:300 "sink: ring wrap keeps newest capacity events, counts drops"
    ring_wrap_gen
    (fun (capacity, n) ->
      let r = Sink.ring ~capacity in
      let s = Sink.ring_sink r in
      for i = 0 to n - 1 do
        s.Sink.emit (mark i)
      done;
      let kept =
        List.map (function Event.Dispatch d -> d.pending | _ -> -1) (Sink.ring_events r)
      in
      let k = Int.min capacity n in
      kept = List.init k (fun j -> n - k + j)
      && Sink.ring_dropped r = Int.max 0 (n - capacity))

let tee_duplicates () =
  let a = Sink.ring ~capacity:8 and b = Sink.ring ~capacity:8 in
  let t = Sink.tee (Sink.ring_sink a) (Sink.ring_sink b) in
  t.Sink.emit (mark 1);
  Alcotest.(check int) "left got it" 1 (List.length (Sink.ring_events a));
  Alcotest.(check int) "right got it" 1 (List.length (Sink.ring_events b))

(* --- event JSONL round-trip --- *)

let sample_events =
  [
    Event.Arrival
      { time = 1.25; seq = 3; id = 7; ingress = 1; egress = 2; volume = 100.5; ts = 1.25;
        tf = 90.0; max_rate = 33.3 };
    Event.Accept
      { time = 2.0; id = 7; ingress = 1; egress = 2; volume = 100.5; ts = 1.25; tf = 90.0;
        max_rate = 33.3; bw = 12.5; sigma = 2.0; shard = None };
    Event.Accept
      { time = 2.5; id = 10; ingress = 1; egress = 2; volume = 10.0; ts = 1.25; tf = 90.0;
        max_rate = 33.3; bw = 2.5; sigma = 2.5; shard = Some 3 };
    Event.Reject
      { time = 3.0; id = 8; reason = "port-saturated"; port = Some (Event.Ingress, 4);
        headroom = Some 0.125; shard = Some 0 };
    Event.Reject
      { time = 3.5; id = 9; reason = "deadline-unreachable"; port = None; headroom = None;
        shard = None };
    Event.Preempt { time = 4.0; id = 7; bw = 12.5; shard = Some 1 };
    Event.Shed { time = 5.0; side = Event.Egress; port = 2; excess = 7.5; victims = 3 };
    Event.Capacity { time = 6.0; side = Event.Ingress; port = 0; capacity = 50.0 };
    Event.Dispatch { time = 7.0; pending = 4 };
  ]

let event_round_trip () =
  List.iter
    (fun e ->
      match Event.of_line (Event.to_json e) with
      | Ok e' ->
          Alcotest.(check bool) ("round-trip " ^ Event.kind e) true (e = e')
      | Error msg -> Alcotest.failf "%s failed to parse back: %s" (Event.kind e) msg)
    sample_events

let finite f = if Float.is_finite f then f else 1.5

let float_fields_round_trip =
  qcase ~count:200 "arbitrary float fields survive the JSONL round-trip"
    QCheck2.Gen.(triple float float float)
    (fun (a, b, c) ->
      let volume = Float.abs (finite a) +. 1e-9 and ts = finite b and bw = Float.abs (finite c) +. 1e-9 in
      let e =
        Event.Accept
          { time = ts; id = 0; ingress = 0; egress = 0; volume; ts; tf = ts +. 1.0;
            max_rate = bw; bw; sigma = ts; shard = None }
      in
      Event.of_line (Event.to_json e) = Ok e)

(* --- ctx behaviour --- *)

let disabled_is_inert () =
  Obs.count Obs.disabled "inert_counter";
  Obs.observe Obs.disabled "inert_hist" 1.0;
  Obs.event Obs.disabled (fun () -> Alcotest.fail "thunk must not run");
  let dump = Metrics.to_prometheus (Obs.metrics Obs.disabled) in
  Alcotest.(check bool) "registry untouched" false (contains ~affix:"inert" dump)

let span_records_and_returns () =
  let obs = Obs.create () in
  Alcotest.(check int) "span returns f's value" 42 (Obs.span obs "unit_test" (fun () -> 42));
  let h = Metrics.histogram (Obs.metrics obs) "span_unit_test_ns" in
  Alcotest.(check int) "one observation" 1 (Metrics.hist_count h);
  (match Obs.span obs "unit_test" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "exception must propagate"
  | exception Failure _ -> ());
  Alcotest.(check int) "failed span still observed" 2 (Metrics.hist_count h)

let decision_signature (r : Types.result) =
  List.map
    (fun (a : Gridbw_alloc.Allocation.t) ->
      (a.Gridbw_alloc.Allocation.request.Request.id, a.Gridbw_alloc.Allocation.bw,
       a.Gridbw_alloc.Allocation.sigma))
    r.Types.accepted

let tracing_does_not_change_decisions () =
  let f = fabric2 () in
  let reqs = random_requests ~seed:5L ~n:60 f in
  let plain = Flexible.run `Greedy f (Policy.Fraction_of_max 0.8) reqs in
  let buf = Buffer.create 1024 in
  let obs = Obs.create ~sink:(Sink.jsonl_buffer buf) () in
  let traced =
    Flexible.run ~ctx:(Gridbw_core.Runtime.make ~obs ()) `Greedy f
      (Policy.Fraction_of_max 0.8) reqs
  in
  Alcotest.(check bool) "identical accept stream" true
    (decision_signature plain = decision_signature traced);
  Alcotest.(check int) "identical reject count" (List.length plain.Types.rejected)
    (List.length traced.Types.rejected)

(* --- trace replay --- *)

let check_summary_exact (live : Summary.t) (replayed : Summary.t) =
  Alcotest.(check int) "total" live.Summary.total replayed.Summary.total;
  Alcotest.(check int) "accepted" live.Summary.accepted replayed.Summary.accepted;
  let exact name a b =
    if not (Float.equal a b) then Alcotest.failf "%s: live %.17g, replayed %.17g" name a b
  in
  exact "accept_rate" live.Summary.accept_rate replayed.Summary.accept_rate;
  exact "utilization" live.Summary.utilization replayed.Summary.utilization;
  exact "raw_utilization" live.Summary.raw_utilization replayed.Summary.raw_utilization;
  exact "volume_accept_rate" live.Summary.volume_accept_rate replayed.Summary.volume_accept_rate;
  exact "mean_bw" live.Summary.mean_bw replayed.Summary.mean_bw;
  exact "mean_speedup" live.Summary.mean_speedup replayed.Summary.mean_speedup;
  exact "mean_start_delay" live.Summary.mean_start_delay replayed.Summary.mean_start_delay;
  exact "span" live.Summary.span replayed.Summary.span

(* Live summary vs the summary rebuilt from the JSONL trace alone must be
   bit-identical (the summary's float folds are order-sensitive, so this
   also pins arrival/decision ordering in the trace). *)
let replay_trace run_traced requests fabric =
  let buf = Buffer.create 4096 in
  let obs = Obs.create ~sink:(Sink.jsonl_buffer buf) () in
  let result = run_traced obs in
  let live = Summary.compute fabric ~all:requests ~accepted:result.Types.accepted in
  match Replay.of_lines (String.split_on_char '\n' (Buffer.contents buf)) with
  | Error msg -> Alcotest.failf "trace did not parse: %s" msg
  | Ok r ->
      Alcotest.(check bool) "timestamps monotone" true (Replay.monotone r.Replay.events);
      Alcotest.(check (list int)) "input order restored"
        (List.map (fun (q : Request.t) -> q.Request.id) requests)
        (List.map (fun (q : Request.t) -> q.Request.id) r.Replay.requests);
      check_summary_exact live (Replay.summary fabric r)

let flexible_replay kind seed () =
  let spec = Spec.paper_flexible ~count:200 ~mean_interarrival:1.0 () in
  let requests = Gen.generate (rng ~seed ()) spec in
  let fabric = spec.Spec.fabric in
  replay_trace
    (fun obs ->
      Flexible.run ~ctx:(Gridbw_core.Runtime.make ~obs ()) kind fabric
        (Policy.Fraction_of_max 0.8) requests)
    requests fabric

let rigid_replay seed () =
  let spec = Spec.paper_rigid ~count:150 ~load:1.2 () in
  let requests = Gen.generate (rng ~seed ()) spec in
  let fabric = spec.Spec.fabric in
  replay_trace
    (fun obs ->
      Rigid.run ~ctx:(Gridbw_core.Runtime.make ~obs ()) (`Slots Rigid.Min_bw) fabric requests)
    requests fabric

(* --- percentile estimator --- *)

(* The registry's power-of-two bucketing (bucket 0 = [0,1], bucket i =
   [2^(i-1), 2^i) for i >= 1), re-derived independently of metrics.ml. *)
let sample_bucket v = if v <= 1.0 then 0 else snd (Float.frexp v)

(* Exact nearest rank ⌈q·n⌉, in integer arithmetic: q = mi·2^(e-53)
   with a 53-bit integer mantissa, so ⌈q·n⌉ = ⌈mi·n / 2^(53-e)⌉ — no
   float product, hence immune to the ulp-high rounding the
   implementation has to compensate for. *)
let exact_rank q n =
  if q <= 0. || n = 0 then 1
  else begin
    let m, e = Float.frexp q in
    let mi = int_of_float (Float.ldexp m 53) in
    let shift = 53 - e in
    (* shift >= 62 means q < 2^-8: q·n < 1 for the n <= 300 used here *)
    if shift >= 62 then 1
    else begin
      let d = 1 lsl shift in
      let a = mi * n in
      let k = (a / d) + if a mod d = 0 then 0 else 1 in
      Int.max 1 (Int.min n k)
    end
  end

let percentile_edges () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "p" in
  Alcotest.(check bool) "empty histogram -> nan" true
    (Float.is_nan (Metrics.percentile h 0.5));
  Metrics.observe h 5.0;
  Alcotest.check_raises "q > 1 raises"
    (Invalid_argument "Metrics.percentile: q must be in [0,1]")
    (fun () -> ignore (Metrics.percentile h 1.5));
  Alcotest.check_raises "q < 0 raises"
    (Invalid_argument "Metrics.percentile: q must be in [0,1]")
    (fun () -> ignore (Metrics.percentile h (-0.1)));
  (* one sample: every quantile is in its bucket [4, 8] *)
  let p = Metrics.percentile h 0.5 in
  Alcotest.(check bool) "single sample p50 in its bucket" true (4.0 <= p && p <= 8.0);
  List.iter (Metrics.observe h) [ 100.; 200.; 400. ];
  let p50 = Metrics.percentile h 0.5
  and p95 = Metrics.percentile h 0.95
  and p99 = Metrics.percentile h 0.99 in
  Alcotest.(check bool) "quantiles are monotone" true (p50 <= p95 && p95 <= p99)

(* Oracle property: against the exact sorted-sample order statistic
   (nearest rank k = ceil(q*n)), the interpolated estimate must land in
   the same power-of-two bucket — the accuracy the .mli promises. *)
let percentile_sample_gen =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 300)
         (oneof [ float_range 0. 1.5; float_range 0. 1000.; float_range 0. 1e9 ]))
      (float_range 0. 1.))

let prop_percentile_oracle =
  qcase ~count:300 "metrics: percentile lands in the exact order statistic's bucket"
    percentile_sample_gen
    (fun (samples, q) ->
      let m = Metrics.create () in
      let h = Metrics.histogram m "lat" in
      List.iter (Metrics.observe h) samples;
      let sorted = List.sort Float.compare samples in
      let n = List.length samples in
      let k = exact_rank q n in
      let exact = List.nth sorted (k - 1) in
      let est = Metrics.percentile h q in
      let i = sample_bucket exact in
      let lo = if i = 0 then 0.0 else Float.ldexp 1.0 (i - 1) in
      let hi = Float.ldexp 1.0 i in
      lo <= est && est <= hi)

(* --- merged multi-shard histograms --- *)

(* One registry per "domain", as a sharded daemon keeps them, each
   observing its own serve_stage_* samples; the exposition path merges
   them.  The per-domain split of the samples must be invisible: the
   merge must behave exactly like one registry that saw every sample. *)
let observe_all m name samples =
  let h = Metrics.histogram m name in
  List.iter (Metrics.observe h) samples;
  m

let merged_equals_unsharded =
  qcase ~count:200 "metrics: merged per-domain histograms == single registry"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 4)
           (list_size (int_range 0 60) (float_range 0. 1e7)))
        (float_range 0. 1.))
    (fun (per_domain, q) ->
      let shards =
        List.map (fun s -> observe_all (Metrics.create ()) "serve_stage_admit_search_ns" s)
          per_domain
      in
      let merged = Metrics.merged shards in
      let union = observe_all (Metrics.create ()) "serve_stage_admit_search_ns"
          (List.concat per_domain)
      in
      let hm = Metrics.histogram merged "serve_stage_admit_search_ns" in
      let hu = Metrics.histogram union "serve_stage_admit_search_ns" in
      Metrics.hist_count hm = Metrics.hist_count hu
      && Metrics.hist_buckets hm = Metrics.hist_buckets hu
      && (Metrics.hist_count hm = 0
          || Metrics.percentile hm q = Metrics.percentile hu q))

(* The rank bug the merged path exposed: q·n computed in floats rounds
   an ulp high (0.95 · 20 = 19.000000000000004), so ceil overshot by a
   whole rank.  20 merged samples put rank 19 and rank 20 in different
   power-of-two buckets; the estimate must land in rank 19's bucket. *)
let merged_percentile_rank () =
  let mk samples = observe_all (Metrics.create ()) "serve_stage_admit_search_ns" samples in
  let shards =
    [ mk [ 100.; 100.; 100.; 100.; 100. ];
      mk [ 100.; 100.; 100.; 100.; 100. ];
      mk [ 100.; 100.; 100.; 100.; 100. ];
      mk [ 100.; 100.; 100.; 300.; 600. ] ]
  in
  let merged = Metrics.merged shards in
  let h = Metrics.histogram merged "serve_stage_admit_search_ns" in
  Alcotest.(check int) "20 samples merged" 20 (Metrics.hist_count h);
  (* exact rank of p95 over n=20 is 19 -> the 300 sample, bucket (256,512] *)
  let p95 = Metrics.percentile h 0.95 in
  Alcotest.(check bool)
    (Printf.sprintf "p95 lands in rank 19's bucket (got %g)" p95)
    true
    (256. <= p95 && p95 <= 512.);
  (* same shape on a single registry: q=0.3, n=10 has exact rank 3 *)
  let m = mk [ 3.; 5.; 12.; 24.; 48.; 96.; 192.; 384.; 768.; 1536. ] in
  let h = Metrics.histogram m "serve_stage_admit_search_ns" in
  let p30 = Metrics.percentile h 0.3 in
  Alcotest.(check bool)
    (Printf.sprintf "p30 lands in rank 3's bucket (got %g)" p30)
    true
    (8. <= p30 && p30 <= 16.)

let merged_counters_and_gauges () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add (Metrics.counter a "reqs") 3;
  Metrics.add (Metrics.counter b "reqs") 4;
  Metrics.set (Metrics.gauge a "conns") 2.;
  Metrics.set (Metrics.gauge b "conns") 5.;
  Metrics.add (Metrics.counter b "only_b") 1;
  let m = Metrics.merged [ a; b ] in
  Alcotest.(check int) "counters add" 7 (Metrics.value (Metrics.counter m "reqs"));
  Alcotest.(check int) "one-sided counter kept" 1 (Metrics.value (Metrics.counter m "only_b"));
  Alcotest.(check (float 0.)) "gauges sum" 7. (Metrics.gauge_value (Metrics.gauge m "conns"));
  Alcotest.check_raises "kind mismatch across registries raises"
    (Invalid_argument "Metrics: \"reqs\" already registered as a counter")
    (fun () ->
      let c = Metrics.create () in
      Metrics.set (Metrics.gauge c "reqs") 1.;
      Metrics.merge_into ~into:m c)

(* --- json string escaping --- *)

module Json = Gridbw_obs.Json

(* Arbitrary byte strings, control characters and high bytes included:
   the escaper must keep every one of the 256 byte values reversible. *)
let byte_string_gen =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 30))

let json_str_round_trip =
  qcase ~count:500 "json: arbitrary byte strings round-trip through Str" byte_string_gen
    (fun s -> Json.parse (Json.to_string (Json.Str s)) = Ok (Json.Str s))

let json_obj_key_round_trip =
  qcase ~count:500 "json: arbitrary byte strings round-trip as Obj keys" byte_string_gen
    (fun s ->
      let doc = Json.Obj [ (s, Json.Num 1.0) ] in
      Json.parse (Json.to_string doc) = Ok doc)

let json_escapes_are_ascii () =
  (* Control characters come out as standard escapes, never raw. *)
  let out = Json.to_string (Json.Str "a\"b\\c\nd\te\rf\x00g\x1fh") in
  Alcotest.(check string) "escaped rendering"
    {|"a\"b\\c\nd\te\rf\u0000g\u001fh"|} out;
  String.iter
    (fun c -> if Char.code c < 0x20 then Alcotest.failf "raw control byte %#x in output" (Char.code c))
    out

let json_standard_escapes_parse () =
  (* Escapes the printer never emits must still parse (foreign traces). *)
  List.iter
    (fun (input, expected) ->
      match Json.parse input with
      | Ok (Json.Str s) -> Alcotest.(check string) input expected s
      | Ok _ -> Alcotest.failf "%s: parsed to a non-string" input
      | Error msg -> Alcotest.failf "%s: %s" input msg)
    [
      ({|"\/"|}, "/");
      ({|"\b\f"|}, "\b\x0c");
      ({|"A"|}, "A");
      ({|"é"|}, "\xc3\xa9") (* é as UTF-8 *);
    ]

(* --- span codecs --- *)

module Span = Gridbw_obs.Span

let sample_span ?(id = 7) ?(req = Some 41) () =
  Span.make ~id ~conn:3 ~req ~time:1722.5 ~total_ns:261_000. ~probes:2
    ~durs:[| 120.; 850.; 3200.; 410.; 250_000.; 75. |]

let span_eq a b =
  Span.id a = Span.id b
  && Span.conn a = Span.conn b
  && Span.req a = Span.req b
  && Float.equal (Span.time a) (Span.time b)
  && Float.equal (Span.total_ns a) (Span.total_ns b)
  && Span.probes a = Span.probes b
  && List.for_all
       (fun st -> Float.equal (Span.duration a st) (Span.duration b st))
       Span.all_stages

let span_codec_round_trip () =
  List.iter
    (fun sp ->
      (match Gridbw_wire.Codec.of_string (module Span.Binary) (Gridbw_wire.Codec.to_string (module Span.Binary) sp) with
      | Ok sp' -> Alcotest.(check bool) "binary round-trips" true (span_eq sp sp')
      | Error msg -> Alcotest.fail ("binary: " ^ msg));
      match Gridbw_wire.Codec.of_string (module Span.Jsonl) (Gridbw_wire.Codec.to_string (module Span.Jsonl) sp) with
      | Ok sp' -> Alcotest.(check bool) "jsonl round-trips" true (span_eq sp sp')
      | Error msg -> Alcotest.fail ("jsonl: " ^ msg))
    [ sample_span (); sample_span ~id:9 ~req:None () ]

let span_sniff_autodetects () =
  let sp = sample_span () in
  List.iter
    (fun (label, encoded) ->
      match Span.sniff_decode encoded ~pos:0 with
      | Gridbw_wire.Codec.Value (sp', n) ->
          Alcotest.(check int) (label ^ " consumed") (String.length encoded) n;
          Alcotest.(check bool) (label ^ " fields") true (span_eq sp sp')
      | _ -> Alcotest.fail (label ^ ": sniff_decode failed"))
    [
      ("binary", Gridbw_wire.Codec.to_string (module Span.Binary) sp);
      ("jsonl", Gridbw_wire.Codec.to_string (module Span.Jsonl) sp);
    ];
  Alcotest.(check bool) "json line is recognized" true
    (Span.looks_like_json_span (Span.to_json sp));
  Alcotest.(check bool) "event line is not" false
    (Span.looks_like_json_span (Event.to_json (mark 1)))

let replay_skips_span_lines () =
  let sp = sample_span () in
  let lines = [ Event.to_json (mark 0); Span.to_json sp; Event.to_json (mark 1) ] in
  match Replay.of_lines lines with
  | Error msg -> Alcotest.failf "mixed trace did not parse: %s" msg
  | Ok r -> Alcotest.(check int) "spans skipped, events kept" 2 (List.length r.Replay.events)

let replay_reports_bad_line () =
  match Replay.of_lines [ Event.to_json (mark 0); "{not json" ] with
  | Error msg -> Alcotest.(check bool) "names line 2" true (contains ~affix:"line 2" msg)
  | Ok _ -> Alcotest.fail "expected a parse error"

let suites =
  [
    ( "obs.metrics",
      [
        case "counters and gauges" counters_and_gauges;
        case "histogram log2 buckets" histogram_buckets;
        case "kind mismatch raises" kind_mismatch_raises;
        case "prometheus dump" prometheus_dump;
        case "percentile edges and monotonicity" percentile_edges;
        prop_percentile_oracle;
        merged_equals_unsharded;
        case "merged multi-shard percentile rank" merged_percentile_rank;
        case "merged counters and gauges" merged_counters_and_gauges;
      ] );
    ( "obs.sink",
      [
        case "ring keeps most recent" ring_eviction;
        prop_ring_wrap;
        case "tee duplicates" tee_duplicates;
      ] );
    ( "obs.span",
      [
        case "binary and jsonl codecs round-trip" span_codec_round_trip;
        case "sniff_decode autodetects either form" span_sniff_autodetects;
        case "replay skips span lines in mixed traces" replay_skips_span_lines;
      ] );
    ( "obs.event",
      [ case "every variant round-trips" event_round_trip; float_fields_round_trip ] );
    ( "obs.json",
      [
        json_str_round_trip;
        json_obj_key_round_trip;
        case "control characters render as escapes" json_escapes_are_ascii;
        case "foreign escape forms parse" json_standard_escapes_parse;
      ] );
    ( "obs.ctx",
      [
        case "disabled ctx is inert" disabled_is_inert;
        case "span records and returns" span_records_and_returns;
        case "tracing does not change decisions" tracing_does_not_change_decisions;
      ] );
    ( "obs.replay",
      [
        case "greedy trace replays bit-identically (seed 11)" (flexible_replay `Greedy 11L);
        case "greedy trace replays bit-identically (seed 23)" (flexible_replay `Greedy 23L);
        case "window trace replays bit-identically (seed 11)" (flexible_replay (`Window 400.) 11L);
        case "window trace replays bit-identically (seed 23)" (flexible_replay (`Window 400.) 23L);
        case "slots trace replays bit-identically" (rigid_replay 5L);
        case "parse errors name the line" replay_reports_bad_line;
      ] );
  ]
