open Helpers
module Policy = Gridbw_core.Policy
module Request = Gridbw_request.Request

(* volume 100 MB, window [0, 10], host cap 50 MB/s: MinRate = 10. *)
let r () = req ~volume:100. ~ts:0. ~tf:10. ~max_rate:50. ()

let get = function Some v -> v | None -> Alcotest.fail "expected a rate"

let min_rate_at_arrival () =
  check_approx "min rate" 10.0 (get (Policy.assign Policy.Min_rate (r ()) ~now:0.))

let full_fraction () =
  check_approx "max rate" 50.0 (get (Policy.assign (Policy.Fraction_of_max 1.0) (r ()) ~now:0.))

let fraction_below_min_clamps () =
  (* 0.1 * 50 = 5 < MinRate 10: the guarantee can never go below MinRate. *)
  check_approx "clamped to min" 10.0
    (get (Policy.assign (Policy.Fraction_of_max 0.1) (r ()) ~now:0.))

let fraction_midrange () =
  check_approx "0.5 * 50" 25.0 (get (Policy.assign (Policy.Fraction_of_max 0.5) (r ()) ~now:0.))

let delayed_decision_raises_rate () =
  (* At t = 5 only 5 s remain: MinRate becomes 20. *)
  check_approx "residual min rate" 20.0 (get (Policy.assign Policy.Min_rate (r ()) ~now:5.))

let delayed_to_exact_limit () =
  (* At t = 8, 100 MB in 2 s = 50 MB/s = MaxRate: still feasible. *)
  check_approx "exactly max" 50.0 (get (Policy.assign Policy.Min_rate (r ()) ~now:8.))

let delayed_past_feasibility () =
  Alcotest.(check bool) "needs more than max" true
    (Policy.assign Policy.Min_rate (r ()) ~now:9. = None);
  Alcotest.(check bool) "window closed" true
    (Policy.assign Policy.Min_rate (r ()) ~now:10. = None)

let before_ts_uses_ts () =
  let late = req ~volume:100. ~ts:5. ~tf:15. ~max_rate:50. () in
  check_approx "clock before ts" 10.0 (get (Policy.assign Policy.Min_rate late ~now:0.))

let rigid_request_any_policy () =
  let rigid = Request.make_rigid ~id:0 ~ingress:0 ~egress:0 ~bw:10. ~ts:0. ~tf:10. in
  check_approx "fraction on rigid = min rate" 10.0
    (get (Policy.assign (Policy.Fraction_of_max 0.3) rigid ~now:0.))

let invalid_fraction () =
  let bad f =
    match Policy.assign (Policy.Fraction_of_max f) (r ()) ~now:0. with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "fraction %f accepted" f
  in
  bad (-0.1);
  bad 1.5;
  bad Float.nan

let names () =
  Alcotest.(check string) "minrate" "minrate" (Policy.name Policy.Min_rate);
  Alcotest.(check string) "fraction" "f=0.80" (Policy.name (Policy.Fraction_of_max 0.8))

let suites =
  [
    ( "policy",
      [
        case "min rate at arrival" min_rate_at_arrival;
        case "f=1 grants MaxRate" full_fraction;
        case "small fraction clamps to MinRate" fraction_below_min_clamps;
        case "f=0.5" fraction_midrange;
        case "delayed decision raises the rate" delayed_decision_raises_rate;
        case "delay to the exact limit" delayed_to_exact_limit;
        case "delay past feasibility" delayed_past_feasibility;
        case "clock before ts uses ts" before_ts_uses_ts;
        case "rigid request under any policy" rigid_request_any_policy;
        case "invalid fraction raises" invalid_fraction;
        case "policy names" names;
      ] );
  ]
