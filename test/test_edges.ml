(* A final sweep of edge cases across modules. *)

open Helpers
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Figure = Gridbw_report.Figure
module Table = Gridbw_report.Table
module Types = Gridbw_core.Types
module Policy = Gridbw_core.Policy
module Flexible = Gridbw_core.Flexible
module Plane = Gridbw_control.Plane
module Coalloc = Gridbw_coalloc.Coalloc
module Rng = Gridbw_prng.Rng

let invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

(* --- workload spec/gen --- *)

let flexible_slack_bounds () =
  let spec =
    Spec.make ~fabric:(fabric2 ()) ~volumes:(Spec.Fixed_volume 100.) ~rate_lo:10. ~rate_hi:50.
      ~flexibility:(Spec.Flexible { max_slack = 2.5 }) ~count:300 ~mean_interarrival:0.5 ()
  in
  let reqs = Gen.generate (rng ()) spec in
  List.iter
    (fun (r : Request.t) ->
      let s = Request.slack r in
      if s < 1.0 -. 1e-9 || s > 2.5 +. 1e-9 then Alcotest.failf "slack out of bounds: %f" s;
      check_approx "max rate is the drawn host cap within [10,50]" r.max_rate
        (Float.max 10. (Float.min 50. r.max_rate)))
    reqs

let infinite_slack_rejected () =
  invalid "infinite slack" (fun () ->
      Spec.make ~flexibility:(Spec.Flexible { max_slack = infinity }) ~mean_interarrival:1. ())

let paper_flexible_max_slack_arg () =
  let spec = Spec.paper_flexible ~max_slack:1.5 ~mean_interarrival:1. () in
  match spec.Spec.flexibility with
  | Spec.Flexible { max_slack } -> check_approx "carried" 1.5 max_slack
  | Spec.Rigid -> Alcotest.fail "expected flexible"

let choice_volume_generation () =
  let spec =
    Spec.make ~volumes:(Spec.Choice [| 7.; 11. |]) ~count:100 ~mean_interarrival:1. ()
  in
  List.iter
    (fun (r : Request.t) ->
      if not (approx r.volume 7. || approx r.volume 11.) then
        Alcotest.failf "unexpected volume %f" r.volume)
    (Gen.generate (rng ()) spec)

(* --- request corner cases --- *)

let min_rate_at_clamps_to_ts () =
  let r = req ~volume:100. ~ts:10. ~tf:20. ~max_rate:100. () in
  (match Request.min_rate_at r ~now:(-5.) with
  | Some rate -> check_approx "clamped" 10.0 rate
  | None -> Alcotest.fail "expected rate");
  match Request.min_rate_at r ~now:19.999999 with
  | Some rate -> Alcotest.(check bool) "huge but finite" true (rate > 1e6)
  | None -> Alcotest.fail "window still open"

(* --- policy at the boundary --- *)

let policy_zero_fraction_is_min_rate () =
  let r = req ~volume:100. ~ts:0. ~tf:10. ~max_rate:50. () in
  match
    ( Policy.assign (Policy.Fraction_of_max 0.0) r ~now:0.,
      Policy.assign Policy.Min_rate r ~now:0. )
  with
  | Some a, Some b -> check_approx "f=0 == minrate" b a
  | _ -> Alcotest.fail "expected rates"

(* --- types --- *)

let decision_of_unknown_id () =
  let result = Flexible.greedy (fabric2 ()) Policy.Min_rate [] in
  Alcotest.(check bool) "unknown id" true (Types.decision_of result 42 = None)

let reason_printing () =
  List.iter
    (fun (reason, expected) ->
      Alcotest.(check string) "reason text" expected
        (Format.asprintf "%a" Types.pp_reason reason))
    [
      (Types.Port_saturated, "port-saturated");
      (Types.Deadline_unreachable, "deadline-unreachable");
      (Types.Revoked, "revoked");
    ]

(* --- figure/table --- *)

let figure_single_point_plot () =
  let fig =
    Figure.make ~id:"one" ~title:"one" ~x_label:"x" ~y_label:"y"
      [ Figure.series ~label:"s" [ (1.0, 1.0) ] ]
  in
  Alcotest.(check bool) "plot renders" true (String.length (Figure.ascii_plot fig) > 0);
  Alcotest.(check bool) "render renders" true (String.length (Figure.render fig) > 0)

let table_empty_rows () =
  let t = Table.make ~headers:[ "a"; "b" ] [] in
  Alcotest.(check bool) "renders headers only" true (String.length (Table.render t) > 0);
  Alcotest.(check string) "csv headers only" "a,b\n" (Table.to_csv t)

(* --- control plane config --- *)

let plane_rejects_negative_latency () =
  let config = { Plane.policy = Policy.Min_rate; hop_latency = -1.; decision_latency = 0. } in
  invalid "negative hop" (fun () -> Plane.run (fabric2 ()) config [])

let plane_empty_workload () =
  let stats = Plane.run (fabric2 ()) (Plane.default_config Policy.Min_rate) [] in
  Alcotest.(check int) "no messages" 0 stats.Plane.total_messages;
  check_approx "no response time" 0.0 stats.Plane.mean_response_time

(* --- coalloc --- *)

let coalloc_random_jobs_validation () =
  let spec = Spec.make ~fabric:(fabric2 ()) ~count:5 ~mean_interarrival:1. () in
  invalid "zero cpu mean" (fun () ->
      Coalloc.random_jobs (rng ()) spec ~mean_cpu_seconds:0.)

let coalloc_empty_jobs () =
  let r = Coalloc.simulate (fabric2 ()) ~policy:Policy.Min_rate ~cpus_per_site:1 [] in
  Alcotest.(check int) "nothing" 0 (r.Coalloc.completed + r.Coalloc.rejected);
  check_approx "makespan" 0.0 r.Coalloc.makespan

(* --- flexible window batch boundaries --- *)

let window_batch_boundary_exact () =
  (* A request arriving exactly on a boundary belongs to the interval it
     starts: ts = 10 with step 10 is batch [10, 20). *)
  let r = req ~id:0 ~ingress:0 ~egress:0 ~volume:100. ~ts:10. ~tf:30. ~max_rate:50. () in
  let result = Flexible.window_deferred (fabric2 ()) Policy.Min_rate ~step:10. [ r ] in
  match Types.decision_of result 0 with
  | Some (Types.Accepted a) -> check_approx "decided at 20" 20.0 a.Gridbw_alloc.Allocation.sigma
  | _ -> Alcotest.fail "expected acceptance"

let suites =
  [
    ( "edge-cases",
      [
        case "flexible slack bounds" flexible_slack_bounds;
        case "infinite slack rejected" infinite_slack_rejected;
        case "paper_flexible max_slack" paper_flexible_max_slack_arg;
        case "choice volumes" choice_volume_generation;
        case "min_rate_at clamps" min_rate_at_clamps_to_ts;
        case "f=0 equals min rate" policy_zero_fraction_is_min_rate;
        case "decision_of unknown id" decision_of_unknown_id;
        case "reason printing" reason_printing;
        case "figure with one point" figure_single_point_plot;
        case "table with no rows" table_empty_rows;
        case "plane rejects negative latency" plane_rejects_negative_latency;
        case "plane empty workload" plane_empty_workload;
        case "coalloc random-jobs validation" coalloc_random_jobs_validation;
        case "coalloc empty jobs" coalloc_empty_jobs;
        case "window batch boundary" window_batch_boundary_exact;
      ] );
  ]
