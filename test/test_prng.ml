open Helpers
module Rng = Gridbw_prng.Rng
module Dist = Gridbw_prng.Dist

let stream n rng = List.init n (fun _ -> Rng.int64 rng)

let determinism () =
  let a = Rng.create ~seed:123L () and b = Rng.create ~seed:123L () in
  Alcotest.(check (list int64)) "same seed, same stream" (stream 32 a) (stream 32 b)

let seeds_differ () =
  let a = Rng.create ~seed:1L () and b = Rng.create ~seed:2L () in
  if stream 16 a = stream 16 b then Alcotest.fail "different seeds produced identical streams"

let copy_independent () =
  let a = rng () in
  let b = Rng.copy a in
  Alcotest.(check (list int64)) "copy replays" (stream 8 a) (stream 8 b)

let split_differs () =
  let a = rng () in
  let b = Rng.split a in
  if stream 16 a = stream 16 b then Alcotest.fail "split stream equals parent stream"

let int_bounds () =
  let r = rng () in
  for _ = 1 to 10_000 do
    let n = 1 + Rng.int r 1000 in
    let v = Rng.int r n in
    if v < 0 || v >= n then Alcotest.failf "Rng.int %d out of range: %d" n v
  done

let int_one () = Alcotest.(check int) "int 1 is 0" 0 (Rng.int (rng ()) 1)

let int_rejects_nonpositive () =
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int (rng ()) 0))

let int_in_bounds () =
  let r = rng () in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 5_000 do
    let v = Rng.int_in r 3 7 in
    if v < 3 || v > 7 then Alcotest.failf "int_in out of range: %d" v;
    if v = 3 then seen_lo := true;
    if v = 7 then seen_hi := true
  done;
  Alcotest.(check bool) "lo reachable" true !seen_lo;
  Alcotest.(check bool) "hi reachable" true !seen_hi

let float_bounds () =
  let r = rng () in
  for _ = 1 to 10_000 do
    let v = Rng.float r 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.failf "float out of range: %f" v
  done

let float_in_empty () =
  Alcotest.check_raises "float_in inverted" (Invalid_argument "Rng.float_in: empty range")
    (fun () -> ignore (Rng.float_in (rng ()) 2. 1.))

let shuffle_permutes () =
  let r = rng () in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let choose_singleton () = Alcotest.(check int) "singleton" 9 (Rng.choose (rng ()) [| 9 |])

let choose_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose (rng ()) [||]))

let mean_of f n =
  let r = rng ~seed:11L () in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. f r
  done;
  !acc /. float_of_int n

let exponential_mean () =
  let m = mean_of (fun r -> Dist.exponential r ~mean:4.0) 40_000 in
  if Float.abs (m -. 4.0) > 0.1 then Alcotest.failf "exponential mean drifted: %f" m

let exponential_positive () =
  let r = rng () in
  for _ = 1 to 1000 do
    if Dist.exponential r ~mean:1.0 < 0. then Alcotest.fail "negative exponential draw"
  done

let exponential_bad_mean () =
  Alcotest.check_raises "mean 0" (Invalid_argument "Dist.exponential: mean must be positive")
    (fun () -> ignore (Dist.exponential (rng ()) ~mean:0.))

let poisson_small_mean () =
  let m = mean_of (fun r -> float_of_int (Dist.poisson r ~mean:3.0)) 40_000 in
  if Float.abs (m -. 3.0) > 0.1 then Alcotest.failf "poisson(3) mean drifted: %f" m

let poisson_large_mean () =
  let m = mean_of (fun r -> float_of_int (Dist.poisson r ~mean:80.0)) 20_000 in
  if Float.abs (m -. 80.0) > 1.0 then Alcotest.failf "poisson(80) mean drifted: %f" m

let poisson_zero () = Alcotest.(check int) "poisson 0" 0 (Dist.poisson (rng ()) ~mean:0.)

let normal_moments () =
  let m = mean_of (fun r -> Dist.normal r ~mu:5.0 ~sigma:2.0) 40_000 in
  if Float.abs (m -. 5.0) > 0.1 then Alcotest.failf "normal mean drifted: %f" m

let pareto_bounds () =
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Dist.pareto r ~scale:2.0 ~shape:1.5 in
    if v < 2.0 || not (Float.is_finite v) then Alcotest.failf "pareto out of range: %f" v
  done

let discrete_weighted () =
  let r = rng () in
  for _ = 1 to 2000 do
    match Dist.discrete r [| ("never", 0.0); ("always", 1.0) |] with
    | "always" -> ()
    | other -> Alcotest.failf "picked zero-weight item %s" other
  done

let discrete_bad_weights () =
  Alcotest.check_raises "all zero"
    (Invalid_argument "Dist.discrete: weights must sum to a positive value") (fun () ->
      ignore (Dist.discrete (rng ()) [| ((), 0.0) |]))

let arrivals_sorted () =
  let times = Dist.arrival_times (rng ()) ~rate:0.5 ~horizon:1000.0 in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a > b then Alcotest.fail "arrivals not sorted";
        check rest
    | _ -> ()
  in
  check times;
  List.iter (fun t -> if t < 0. || t >= 1000. then Alcotest.failf "arrival out of horizon: %f" t) times

let arrivals_rate () =
  let times = Dist.arrival_times (rng ~seed:5L ()) ~rate:2.0 ~horizon:20_000.0 in
  let n = float_of_int (List.length times) in
  let rate = n /. 20_000.0 in
  if Float.abs (rate -. 2.0) > 0.05 then Alcotest.failf "arrival rate drifted: %f" rate

let prop_int_in_range =
  qcase "qcheck: Rng.int stays in range"
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 0 1000))
    (fun (bound, salt) ->
      let r = Rng.create ~seed:(Int64.of_int salt) () in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_float_in =
  qcase "qcheck: Rng.float_in stays in range"
    QCheck2.Gen.(triple (float_bound_exclusive 1000.) (float_bound_exclusive 1000.) (int_range 0 1000))
    (fun (a, b, salt) ->
      let lo = Float.min a b and hi = Float.max a b in
      let r = Rng.create ~seed:(Int64.of_int salt) () in
      let v = Rng.float_in r lo hi in
      v >= lo && (v < hi || hi = lo))

let suites =
  [
    ( "prng",
      [
        case "determinism" determinism;
        case "seeds differ" seeds_differ;
        case "copy replays" copy_independent;
        case "split differs" split_differs;
        case "int bounds" int_bounds;
        case "int 1" int_one;
        case "int rejects non-positive" int_rejects_nonpositive;
        case "int_in inclusive bounds" int_in_bounds;
        case "float bounds" float_bounds;
        case "float_in empty range" float_in_empty;
        case "shuffle permutes" shuffle_permutes;
        case "choose singleton" choose_singleton;
        case "choose empty" choose_empty;
        prop_int_in_range;
        prop_float_in;
      ] );
    ( "dist",
      [
        case "exponential mean" exponential_mean;
        case "exponential positive" exponential_positive;
        case "exponential bad mean" exponential_bad_mean;
        case "poisson small mean" poisson_small_mean;
        case "poisson large mean" poisson_large_mean;
        case "poisson zero" poisson_zero;
        case "normal mean" normal_moments;
        case "pareto bounds" pareto_bounds;
        case "discrete weights" discrete_weighted;
        case "discrete bad weights" discrete_bad_weights;
        case "arrivals sorted and bounded" arrivals_sorted;
        case "arrivals rate" arrivals_rate;
      ] );
  ]
