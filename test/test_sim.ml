open Helpers
module Event_queue = Gridbw_sim.Event_queue
module Engine = Gridbw_sim.Engine
module Rng = Gridbw_prng.Rng

let pops_in_time_order () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.push q ~time:t (int_of_float t)) [ 5.; 1.; 3.; 2.; 4. ];
  let order = List.map fst (Event_queue.drain q) in
  Alcotest.(check (list (float 0.))) "sorted" [ 1.; 2.; 3.; 4.; 5. ] order

let fifo_on_ties () =
  let q = Event_queue.create () in
  List.iter (fun v -> Event_queue.push q ~time:1.0 v) [ "a"; "b"; "c" ];
  Event_queue.push q ~time:0.5 "first";
  let payloads = List.map snd (Event_queue.drain q) in
  Alcotest.(check (list string)) "stable ties" [ "first"; "a"; "b"; "c" ] payloads

let peek_does_not_remove () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:2.0 ();
  (match Event_queue.peek q with
  | Some (t, ()) -> check_approx "peek time" 2.0 t
  | None -> Alcotest.fail "peek on non-empty");
  Alcotest.(check int) "still there" 1 (Event_queue.length q)

let interleaved_operations () =
  let q = Event_queue.create ~initial_capacity:1 () in
  Event_queue.push q ~time:3.0 3;
  Event_queue.push q ~time:1.0 1;
  (match Event_queue.pop q with
  | Some (_, 1) -> ()
  | _ -> Alcotest.fail "expected payload 1");
  Event_queue.push q ~time:2.0 2;
  Alcotest.(check (list int)) "remaining order" [ 2; 3 ] (List.map snd (Event_queue.drain q));
  Alcotest.(check bool) "empty at end" true (Event_queue.is_empty q)

let clear_empties () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1.0 ();
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q)

let rejects_nan () =
  let q = Event_queue.create () in
  Alcotest.check_raises "nan time" (Invalid_argument "Event_queue.push: non-finite time")
    (fun () -> Event_queue.push q ~time:Float.nan ())

let grows_past_capacity () =
  let q = Event_queue.create ~initial_capacity:2 () in
  for i = 999 downto 0 do
    Event_queue.push q ~time:(float_of_int i) i
  done;
  Alcotest.(check int) "all stored" 1000 (Event_queue.length q);
  Alcotest.(check (list int)) "drains sorted" (List.init 1000 Fun.id)
    (List.map snd (Event_queue.drain q))

let prop_drain_sorted =
  qcase ~count:50 "qcheck: drain is sorted and stable"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 20))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.push q ~time:(float_of_int t) (t, i)) times;
      let drained = List.map snd (Event_queue.drain q) in
      let expected = List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
          (List.mapi (fun i t -> (t, i)) times) in
      drained = expected)

(* --- engine --- *)

let clock_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule e ~time:2.0 (fun e -> seen := ("b", Engine.now e) :: !seen);
  Engine.schedule e ~time:1.0 (fun e -> seen := ("a", Engine.now e) :: !seen);
  Engine.run e;
  Alcotest.(check (list (pair string (float 0.)))) "order and clock" [ ("a", 1.0); ("b", 2.0) ]
    (List.rev !seen);
  check_approx "final clock" 2.0 (Engine.now e)

let schedule_past_raises () =
  let e = Engine.create ~start:5.0 () in
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule: time is in the past")
    (fun () -> Engine.schedule e ~time:4.0 (fun _ -> ()))

let after_negative_raises () =
  let e = Engine.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.after: negative delay") (fun () ->
      Engine.after e ~delay:(-1.0) (fun _ -> ()))

let handlers_can_reschedule () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick engine =
    incr count;
    if !count < 5 then Engine.after engine ~delay:1.0 tick
  in
  Engine.schedule e ~time:0.0 tick;
  Engine.run e;
  Alcotest.(check int) "five ticks" 5 !count;
  check_approx "clock at last tick" 4.0 (Engine.now e)

let run_until_stops () =
  let e = Engine.create () in
  let fired = ref 0 in
  List.iter (fun t -> Engine.schedule e ~time:t (fun _ -> incr fired)) [ 1.0; 2.0; 3.0; 10.0 ];
  Engine.run ~until:3.5 e;
  Alcotest.(check int) "three fired" 3 !fired;
  check_approx "clock moved to until" 3.5 (Engine.now e);
  Alcotest.(check int) "one pending" 1 (Engine.pending e)

let same_time_self_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~time:1.0 (fun e ->
      log := "outer" :: !log;
      Engine.schedule e ~time:1.0 (fun _ -> log := "inner" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "inner runs after outer" [ "outer"; "inner" ] (List.rev !log)

let suites =
  [
    ( "event-queue",
      [
        case "pops in time order" pops_in_time_order;
        case "FIFO on ties" fifo_on_ties;
        case "peek does not remove" peek_does_not_remove;
        case "interleaved push/pop" interleaved_operations;
        case "clear" clear_empties;
        case "rejects NaN time" rejects_nan;
        case "grows past capacity" grows_past_capacity;
        prop_drain_sorted;
      ] );
    ( "engine",
      [
        case "clock advances with handlers" clock_advances;
        case "schedule in the past raises" schedule_past_raises;
        case "negative delay raises" after_negative_raises;
        case "handlers reschedule" handlers_can_reschedule;
        case "run ~until stops and advances clock" run_until_stops;
        case "same-time self-schedule" same_time_self_schedule;
      ] );
  ]
