let () =
  Alcotest.run "gridbw"
    (Test_prng.suites @ Test_sim.suites @ Test_topology.suites @ Test_request.suites
   @ Test_alloc.suites @ Test_timeline.suites @ Test_flow.suites @ Test_workload.suites @ Test_metrics.suites
   @ Test_hotspot.suites @ Test_report.suites @ Test_policy.suites @ Test_rigid.suites
   @ Test_flexible.suites @ Test_exact.suites @ Test_npc.suites @ Test_long_lived.suites
   @ Test_baseline.suites @ Test_control.suites @ Test_distributed.suites
   @ Test_coalloc.suites @ Test_experiments.suites @ Test_properties.suites
   @ Test_extras.suites @ Test_transport.suites @ Test_validate.suites
   @ Test_edges.suites @ Test_fault.suites @ Test_obs.suites @ Test_conformance.suites
   @ Test_store.suites @ Test_serve.suites @ Test_wire.suites @ Test_shard.suites
   @ Test_malleable.suites)
