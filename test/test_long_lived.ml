open Helpers
module Fabric = Gridbw_topology.Fabric
module Long_lived = Gridbw_core.Long_lived
module Rng = Gridbw_prng.Rng

let fabric2x2 () = Fabric.uniform ~ingress_count:2 ~egress_count:2 ~capacity:100.0
let ll ~id ~ingress ~egress ~bw = Long_lived.request ~id ~ingress ~egress ~bw

let validation () =
  (match Long_lived.request ~id:0 ~ingress:0 ~egress:0 ~bw:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bw accepted");
  match Long_lived.greedy (fabric2x2 ()) [ ll ~id:0 ~ingress:9 ~egress:0 ~bw:1. ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unroutable request accepted"

let greedy_packs_small_first () =
  let reqs =
    [ ll ~id:0 ~ingress:0 ~egress:0 ~bw:80.; ll ~id:1 ~ingress:0 ~egress:0 ~bw:30. ]
  in
  let r = Long_lived.greedy (fabric2x2 ()) reqs in
  Alcotest.(check (list int)) "smaller first" [ 1 ] (Long_lived.accepted_ids r);
  Alcotest.(check bool) "feasible" true (Long_lived.feasible (fabric2x2 ()) r.Long_lived.accepted)

let uniform_optimal_counts_slots () =
  (* Capacity 100, uniform bw 50: two slots per port side. *)
  let reqs = List.init 6 (fun id -> ll ~id ~ingress:(id mod 2) ~egress:(id mod 2) ~bw:50.) in
  let r = Long_lived.optimal_uniform (fabric2x2 ()) ~bw:50. reqs in
  Alcotest.(check int) "2 slots x 2 disjoint pairs" 4 (List.length r.Long_lived.accepted);
  Alcotest.(check bool) "feasible" true (Long_lived.feasible (fabric2x2 ()) r.Long_lived.accepted)

(* The crossing case where greedy (by id on ties) picks a blocking set but
   max-flow routes around it. *)
let optimal_beats_greedy () =
  let fabric = Fabric.make ~ingress:[| 100.; 100. |] ~egress:[| 100.; 100. |] in
  (* Uniform bw 100: each port carries exactly one request.  Requests:
     (0->0), (0->1), (1->1).  Greedy takes (0->0) first (id order), then
     (0->1) fails (ingress 0 full), (1->1) fits: 2 accepted — actually
     optimal here.  Make it adversarial: (0->1) first would block both.  *)
  let reqs =
    [ ll ~id:0 ~ingress:0 ~egress:1 ~bw:100.; ll ~id:1 ~ingress:0 ~egress:0 ~bw:100.;
      ll ~id:2 ~ingress:1 ~egress:1 ~bw:100. ]
  in
  let greedy = Long_lived.greedy fabric reqs in
  (* Greedy id-order takes 0 (in0->out1), blocking 1 (ingress full) and 2
     (egress 1 full): 1 accepted. *)
  Alcotest.(check (list int)) "greedy traps itself" [ 0 ] (Long_lived.accepted_ids greedy);
  let optimal = Long_lived.optimal_uniform fabric ~bw:100. reqs in
  Alcotest.(check (list int)) "max-flow picks the pair" [ 1; 2 ] (Long_lived.accepted_ids optimal)

let optimal_rejects_nonuniform () =
  match
    Long_lived.optimal_uniform (fabric2x2 ()) ~bw:50.
      [ ll ~id:0 ~ingress:0 ~egress:0 ~bw:60. ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-uniform bandwidth accepted"

let exact_small () =
  let reqs =
    [ ll ~id:0 ~ingress:0 ~egress:0 ~bw:70.; ll ~id:1 ~ingress:0 ~egress:0 ~bw:40.;
      ll ~id:2 ~ingress:0 ~egress:0 ~bw:30.; ll ~id:3 ~ingress:1 ~egress:1 ~bw:90. ]
  in
  let count, ids, optimal = Long_lived.exact (fabric2x2 ()) reqs in
  Alcotest.(check int) "three fit (70+30 on port 0, plus the pair-1 request)" 3 count;
  Alcotest.(check (list int)) "first optimal set found in DFS order" [ 0; 2; 3 ] ids;
  Alcotest.(check bool) "proved" true optimal

let maxflow_matches_exact_on_uniform () =
  let fabric = fabric2x2 () in
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed () in
      let reqs =
        List.init 10 (fun id -> ll ~id ~ingress:(Rng.int rng 2) ~egress:(Rng.int rng 2) ~bw:40.)
      in
      let count, _, proved = Long_lived.exact fabric reqs in
      let optimal = Long_lived.optimal_uniform fabric ~bw:40. reqs in
      Alcotest.(check bool) "exact proved" true proved;
      Alcotest.(check int)
        (Printf.sprintf "seed %Ld: max-flow = branch&bound" seed)
        count
        (List.length optimal.Long_lived.accepted))
    [ 1L; 2L; 3L; 4L; 5L; 6L ]

let greedy_never_beats_optimal_uniform () =
  let fabric = Fabric.paper_default () in
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed () in
      let reqs =
        List.init 120 (fun id -> ll ~id ~ingress:(Rng.int rng 10) ~egress:(Rng.int rng 10) ~bw:300.)
      in
      let greedy = List.length (Long_lived.greedy fabric reqs).Long_lived.accepted in
      let optimal =
        List.length (Long_lived.optimal_uniform fabric ~bw:300. reqs).Long_lived.accepted
      in
      if greedy > optimal then Alcotest.failf "greedy %d beat max-flow %d (seed %Ld)" greedy optimal seed)
    [ 10L; 11L; 12L; 13L ]

let suites =
  [
    ( "long-lived",
      [
        case "validation" validation;
        case "greedy packs small first" greedy_packs_small_first;
        case "uniform optimum counts slots" uniform_optimal_counts_slots;
        case "max-flow beats greedy's trap" optimal_beats_greedy;
        case "optimal rejects non-uniform input" optimal_rejects_nonuniform;
        case "exact branch and bound" exact_small;
        case "max-flow matches exact on uniform instances" maxflow_matches_exact_on_uniform;
        case "greedy never beats the optimum" greedy_never_beats_optimal_uniform;
      ] );
  ]
