(* Differential tests: the O(log n) Timeline against the pure Profile_ref
   oracle, on random add/remove/query sequences.

   Two generators.  The grid generator draws times and bandwidths as small
   integer multiples of 0.25, so every partial sum is exactly representable
   and the two structures must agree bit-for-bit even though they associate
   additions differently.  The float generator draws arbitrary values and
   compares with the suite's relative tolerance, pinning the rounding gap
   to the last-ulp scale the ledger's 1e-9 admission slack absorbs. *)

open Helpers
module Profile_ref = Gridbw_alloc.Profile_ref
module Timeline = Gridbw_alloc.Timeline
module Port = Gridbw_alloc.Port
module Ledger = Gridbw_alloc.Ledger
module Allocation = Gridbw_alloc.Allocation
module Fabric = Gridbw_topology.Fabric
module Policy = Gridbw_core.Policy
module Flexible = Gridbw_core.Flexible
module Scheduler = Gridbw_core.Scheduler
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Rng = Gridbw_prng.Rng

(* --- random operation sequences --- *)

type op = Add of float * float * float  (* from_, until, bw; bw < 0 releases *)

let apply_ref p (Add (from_, until, bw)) = Profile_ref.add p ~from_ ~until bw
let apply_tl t (Add (from_, until, bw)) = Timeline.add t ~from_ ~until bw

let build ops =
  let tl = Timeline.create () in
  let p = List.fold_left (fun p op -> apply_tl tl op; apply_ref p op) Profile_ref.empty ops in
  (p, tl)

let interval_gen time =
  let open QCheck2.Gen in
  time >>= fun from_ ->
  time >>= fun span ->
  return (from_, from_ +. 1. +. Float.abs span)

(* Exactly-representable times/rates: multiples of 0.25 in a small range. *)
let grid_time = QCheck2.Gen.(map (fun k -> 0.25 *. float_of_int k) (int_range 0 400))
let grid_bw = QCheck2.Gen.(map (fun k -> 0.25 *. float_of_int k) (int_range 1 400))
let float_time = QCheck2.Gen.float_range 0. 100.
let float_bw = QCheck2.Gen.float_range 0.001 100.

(* An op sequence where roughly a third of the adds are later removed with
   the exact same interval and rate, exercising exact cancellation. *)
let ops_gen time bw =
  let open QCheck2.Gen in
  let add_gen =
    interval_gen time >>= fun (from_, until) ->
    bw >>= fun b -> return (Add (from_, until, b))
  in
  list_size (int_range 1 60) (pair add_gen bool) >|= fun tagged ->
  let adds = List.map fst tagged in
  let removals =
    List.filter_map
      (fun (Add (f, u, b), cancel) -> if cancel then Some (Add (f, u, -.b)) else None)
      tagged
  in
  adds @ removals

let grid_ops = ops_gen grid_time grid_bw
let float_ops = ops_gen float_time float_bw

let queries ops =
  (* Probe at every breakpoint, just before/after, and between them. *)
  List.concat_map (fun (Add (f, u, _)) -> [ f; u; f -. 0.1; u +. 0.1; 0.5 *. (f +. u) ]) ops

(* --- exact equivalence on the grid --- *)

let eq_exact name a b = if a <> b && not (a <> a && b <> b) then Alcotest.failf "%s: ref %h vs timeline %h" name a b

let check_equiv ~exact ops =
  let p, tl = build ops in
  let check name a b =
    if exact then eq_exact name a b
    else if not (approx a b) then Alcotest.failf "%s: ref %.17g vs timeline %.17g" name a b
  in
  Alcotest.(check bool) "is_empty" (Profile_ref.is_empty p) (Timeline.is_empty tl);
  List.iter
    (fun t -> check (Printf.sprintf "usage_at %g" t) (Profile_ref.usage_at p t) (Timeline.usage_at tl t))
    (queries ops);
  List.iter
    (fun (Add (f, u, _)) ->
      check
        (Printf.sprintf "max_over [%g,%g)" f u)
        (Profile_ref.max_over p ~from_:f ~until:u)
        (Timeline.max_over tl ~from_:f ~until:u))
    ops;
  check "peak" (Profile_ref.peak p) (Timeline.peak tl);
  check "integral" (Profile_ref.integral p) (Timeline.integral tl);
  let bps_ref = Profile_ref.breakpoints p and bps_tl = Timeline.breakpoints tl in
  if exact then
    Alcotest.(check (list (float 0.))) "breakpoints" bps_ref bps_tl
  else if List.length bps_ref <> List.length bps_tl then
    Alcotest.failf "breakpoint counts differ: %d vs %d" (List.length bps_ref) (List.length bps_tl);
  true

(* argmax reference: scan breakpoints in (from_, until) left to right,
   strictly-greater replaces — the fault injector's historical peak_over. *)
let argmax_ref p ~from_ ~until =
  Profile_ref.breakpoints p
  |> List.filter (fun t -> t > from_ && t < until)
  |> List.fold_left
       (fun (bt, bu) t ->
         let u = Profile_ref.usage_at p t in
         if u > bu then (t, u) else (bt, bu))
       (from_, Profile_ref.usage_at p from_)

let check_argmax ops =
  let p, tl = build ops in
  List.iter
    (fun (Add (f, u, _)) ->
      let rt, ru = argmax_ref p ~from_:f ~until:u in
      let tt, tu = Timeline.argmax_over tl ~from_:f ~until:u in
      if rt <> tt || ru <> tu then
        Alcotest.failf "argmax_over [%g,%g): ref (%g,%g) vs timeline (%g,%g)" f u rt ru tt tu)
    ops;
  true

(* --- unit cases the random sequences may miss --- *)

let exact_cancel () =
  let tl = Timeline.create () in
  Timeline.add tl ~from_:1. ~until:5. 30.;
  Timeline.add tl ~from_:2. ~until:6. 20.;
  Timeline.remove tl ~from_:1. ~until:5. 30.;
  Timeline.remove tl ~from_:2. ~until:6. 20.;
  Alcotest.(check bool) "empty after exact release" true (Timeline.is_empty tl);
  Alcotest.(check (list (float 0.))) "no breakpoints" [] (Timeline.breakpoints tl)

let copy_is_snapshot () =
  let tl = Timeline.create () in
  Timeline.add tl ~from_:0. ~until:10. 5.;
  let snap = Timeline.copy tl in
  Timeline.add tl ~from_:0. ~until:10. 7.;
  check_approx "original sees both" 12. (Timeline.usage_at tl 5.);
  check_approx "snapshot unchanged" 5. (Timeline.usage_at snap 5.)

let rejects_bad_interval () =
  let tl = Timeline.create () in
  (match Timeline.add tl ~from_:3. ~until:3. 1. with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "empty interval accepted");
  match Timeline.max_over tl ~from_:5. ~until:5. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty query interval accepted"

let argmax_prefers_earliest () =
  let tl = Timeline.create () in
  (* Two disjoint plateaus at the same level: the earlier one wins. *)
  Timeline.add tl ~from_:2. ~until:4. 50.;
  Timeline.add tl ~from_:6. ~until:8. 50.;
  let t, u = Timeline.argmax_over tl ~from_:0. ~until:10. in
  check_approx "peak level" 50. u;
  check_approx "earliest witness" 2. t;
  (* No interior breakpoint above the start level: from_ is the witness. *)
  let t0, u0 = Timeline.argmax_over tl ~from_:2.5 ~until:3.5 in
  check_approx "start level" 50. u0;
  check_approx "start witness" 2.5 t0

(* --- ledger invariants on the new substrate --- *)

let ledger_within_capacity_random () =
  let fabric = fabric2 () in
  let l = Ledger.create fabric in
  let rng = rng ~seed:11L () in
  let reqs = List.init 200 (random_request rng fabric) in
  List.iter
    (fun r ->
      let a = Allocation.make ~request:r ~bw:(Gridbw_request.Request.min_rate r) ~sigma:r.Gridbw_request.Request.ts in
      if Ledger.fits l a then Ledger.reserve l a)
    reqs;
  Alcotest.(check bool) "within_capacity" true (Ledger.within_capacity l)

let ledger_headroom_consistent () =
  let fabric = fabric2 () in
  let l = Ledger.create fabric in
  Ledger.reserve_interval l ~ingress:0 ~egress:1 ~bw:60. ~from_:0. ~until:10.;
  check_approx "ingress headroom" 40. (Ledger.headroom_over l (Port.Ingress 0) ~from_:0. ~until:10.);
  check_approx "egress headroom" 40. (Ledger.headroom_over l (Port.Egress 1) ~from_:0. ~until:10.);
  check_approx "idle port" 100. (Ledger.headroom_over l (Port.Ingress 1) ~from_:0. ~until:10.);
  check_approx "clear interval" 100. (Ledger.headroom_over l (Port.Ingress 0) ~from_:10. ~until:20.);
  (* Oversubscription (capacity cut below commitment) shows as negative. *)
  Ledger.set_fabric l
    (Fabric.make ~ingress:[| 50.; 100. |] ~egress:[| 100.; 100. |]);
  check_approx "negative headroom" (-10.)
    (Ledger.headroom_over l (Port.Ingress 0) ~from_:0. ~until:10.)

let probe_count_tracks_range_queries () =
  let fabric = fabric2 () in
  let l = Ledger.create fabric in
  Alcotest.(check int) "fresh ledger has no probes" 0 (Ledger.probe_count l);
  Ledger.reserve_interval l ~ingress:0 ~egress:1 ~bw:35. ~from_:1. ~until:7.;
  Alcotest.(check int) "unchecked reserve does not probe" 0 (Ledger.probe_count l);
  ignore (Ledger.max_over l (Port.Ingress 0) ~from_:0. ~until:10.);
  Alcotest.(check int) "max_over is one probe" 1 (Ledger.probe_count l);
  ignore (Ledger.argmax_over l (Port.Ingress 0) ~from_:0. ~until:10.);
  ignore (Ledger.headroom_over l (Port.Egress 1) ~from_:0. ~until:10.);
  Alcotest.(check int) "argmax/headroom are one probe each" 3 (Ledger.probe_count l);
  ignore (Ledger.fits_interval l ~ingress:0 ~egress:1 ~bw:10. ~from_:0. ~until:10.);
  Alcotest.(check int) "fits_interval is two probes" 5 (Ledger.probe_count l);
  (* Point queries and breakpoint dumps are not range probes. *)
  ignore (Ledger.usage_at l (Port.Ingress 0) 5.);
  ignore (Ledger.breakpoints l (Port.Ingress 0));
  Alcotest.(check int) "usage_at/breakpoints do not probe" 5 (Ledger.probe_count l)

(* --- Ledger.dump / restore: the durable-snapshot codec's round trip,
   checked against the Profile_ref oracle and independent of lib/store --- *)

let check_dump_roundtrip ~exact ops =
  let fabric = fabric2 () in
  let l = Ledger.create fabric in
  let mirror_i = Array.init 2 (fun _ -> ref Profile_ref.empty) in
  let mirror_e = Array.init 2 (fun _ -> ref Profile_ref.empty) in
  (* Ports derive from the op's interval, so a cancelling removal (same
     interval, negated bw) lands on the same ports as its add. *)
  let ports (Add (f, u, _)) =
    (abs (int_of_float (f *. 4.)) mod 2, abs (int_of_float (u *. 4.)) mod 2)
  in
  List.iter
    (fun (Add (f, u, b) as op) ->
      let i, e = ports op in
      if b > 0. then Ledger.reserve_interval l ~ingress:i ~egress:e ~bw:b ~from_:f ~until:u
      else Ledger.release_interval l ~ingress:i ~egress:e ~bw:(-.b) ~from_:f ~until:u;
      mirror_i.(i) := Profile_ref.add !(mirror_i.(i)) ~from_:f ~until:u b;
      mirror_e.(e) := Profile_ref.add !(mirror_e.(e)) ~from_:f ~until:u b)
    ops;
  let restored = Ledger.restore fabric (Ledger.dump l) in
  let check name a b =
    if exact then eq_exact name a b
    else if not (approx a b) then Alcotest.failf "%s: oracle %.17g vs restored %.17g" name a b
  in
  List.iter
    (fun t ->
      for p = 0 to 1 do
        check
          (Printf.sprintf "ingress %d usage_at %g" p t)
          (Profile_ref.usage_at !(mirror_i.(p)) t)
          (Ledger.usage_at restored (Port.Ingress p) t);
        check
          (Printf.sprintf "egress %d usage_at %g" p t)
          (Profile_ref.usage_at !(mirror_e.(p)) t)
          (Ledger.usage_at restored (Port.Egress p) t)
      done)
    (queries ops);
  (* On the representable grid, restore ∘ dump is a fixpoint after one
     round: dumping the restored ledger is bit-identical. *)
  if exact then
    Alcotest.(check bool) "dump idempotent" true (Ledger.dump restored = Ledger.dump l);
  true

(* --- scheduler interface vs direct heuristic calls --- *)

let scheduler_matches_direct () =
  let spec =
    Spec.make ~fabric:(fabric2 ()) ~volumes:(Spec.Fixed_volume 500.) ~rate_lo:10. ~rate_hi:100.
      ~count:60 ~mean_interarrival:0.8 ()
  in
  let requests = Gen.generate (Rng.create ~seed:5L ()) spec in
  let policy = Policy.Fraction_of_max 0.8 in
  let direct = Flexible.run (`Window 5.) spec.Spec.fabric policy requests in
  let via = Scheduler.run (Scheduler.of_flexible (`Window 5.) policy) spec requests in
  Alcotest.(check (list int)) "same accepted ids"
    (Gridbw_core.Types.accepted_ids direct)
    (Gridbw_core.Types.accepted_ids via);
  Alcotest.(check string) "name" "window(5)/f=0.80"
    (Scheduler.name (Scheduler.of_flexible (`Window 5.) policy));
  Alcotest.(check int) "all rigid schedulers" 5 (List.length Scheduler.rigid_all);
  match Scheduler.find Scheduler.rigid_all "fcfs" with
  | Some s ->
      let r = Scheduler.run s (Spec.for_replay (fabric2 ())) requests in
      Alcotest.(check bool) "fcfs runs" true
        (List.length r.Gridbw_core.Types.accepted + List.length r.Gridbw_core.Types.rejected
        = List.length requests)
  | None -> Alcotest.fail "fcfs not found by name"

let suites =
  [
    ( "alloc-timeline",
      [
        qcase ~count:300 "differential: exact on grid ops" grid_ops (check_equiv ~exact:true);
        qcase ~count:300 "differential: tolerant on float ops" float_ops (check_equiv ~exact:false);
        qcase ~count:200 "differential: argmax_over on grid ops" grid_ops check_argmax;
        case "exact cancellation empties the tree" exact_cancel;
        case "copy is an O(1) snapshot" copy_is_snapshot;
        case "rejects bad intervals" rejects_bad_interval;
        case "argmax prefers the earliest witness" argmax_prefers_earliest;
      ] );
    ( "ledger-port",
      [
        case "within_capacity on random workload" ledger_within_capacity_random;
        qcase ~count:200 "dump/restore: exact round-trip on grid ops" grid_ops
          (check_dump_roundtrip ~exact:true);
        qcase ~count:200 "dump/restore: tolerant round-trip on float ops" float_ops
          (check_dump_roundtrip ~exact:false);
        case "headroom_over is capacity minus max" ledger_headroom_consistent;
        case "probe_count tracks range queries" probe_count_tracks_range_queries;
        case "scheduler dispatch matches direct call" scheduler_matches_direct;
      ] );
  ]
