(* Durable admission journal (lib/store): WAL framing and group commit,
   segment rotation, snapshots, and the crash matrix — a journaled GREEDY
   run carved at every record boundary, mid-record, and with flipped
   bytes must recover deterministically and resume to a summary
   bit-identical to the uninterrupted baseline. *)

open Helpers
module Wal = Gridbw_store.Wal
module Store = Gridbw_store.Store
module Torn = Gridbw_fault.Torn
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Summary = Gridbw_metrics.Summary
module Reference = Gridbw_check.Reference
module Ledger = Gridbw_alloc.Ledger
module Request = Gridbw_request.Request
module Obs = Gridbw_obs.Obs
module Metrics = Gridbw_obs.Metrics
module Event = Gridbw_obs.Event

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_tmpdir f =
  let dir = Filename.temp_file "gridbw-store" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* Deterministic WAL configs: an hour of delay so wall-clock never
   triggers a sync mid-test. *)
let wal_config ?(batch = 4) ?(segment_bytes = Wal.default_config.Wal.segment_bytes) () =
  { Wal.batch; delay = 3600.; segment_bytes }

let store_config ?batch ?segment_bytes ?(snapshot_bytes = max_int) ?codec () =
  { Store.default_config with
    wal = wal_config ?batch ?segment_bytes ();
    snapshot_bytes;
    codec = Option.value codec ~default:Store.default_config.Store.codec }

(* --- WAL unit tests --- *)

let test_frame_roundtrip () =
  let payload = {|{"ev":"accept","id":7}|} in
  let framed = Wal.frame payload in
  Alcotest.(check bool) "newline-terminated" true (framed.[String.length framed - 1] = '\n');
  (match Wal.parse_frame (String.sub framed 0 (String.length framed - 1)) with
  | Ok p -> Alcotest.(check string) "payload survives" payload p
  | Error e -> Alcotest.failf "frame does not parse: %s" e);
  (* Any single corrupted payload byte breaks the CRC. *)
  let corrupt = Bytes.of_string framed in
  Bytes.set corrupt (String.length framed - 3)
    (Char.chr (Char.code (Bytes.get corrupt (String.length framed - 3)) lxor 1));
  match Wal.parse_frame (Bytes.sub_string corrupt 0 (Bytes.length corrupt - 1)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted frame accepted"

let test_group_commit () =
  with_tmpdir (fun dir ->
      let syncs = ref [] in
      let w =
        Wal.create ~config:(wal_config ~batch:3 ()) ~on_sync:(fun n -> syncs := n :: !syncs)
          ~dir ()
      in
      for i = 1 to 7 do
        Wal.append w (Printf.sprintf "payload-%d" i)
      done;
      Alcotest.(check (list int)) "one fsync per full batch" [ 3; 3 ] (List.rev !syncs);
      Wal.close w;
      Alcotest.(check (list int)) "close flushes the remainder" [ 3; 3; 1 ] (List.rev !syncs);
      let s = Wal.scan ~dir in
      Alcotest.(check int) "all records valid" 7 s.Wal.valid;
      Alcotest.(check bool) "clean tail" true (s.Wal.torn = None))

let test_segment_rotation () =
  with_tmpdir (fun dir ->
      let w = Wal.create ~config:(wal_config ~batch:1 ~segment_bytes:64 ()) ~dir () in
      for i = 1 to 20 do
        Wal.append w (Printf.sprintf "record-number-%03d-padded-to-force-rotation" i)
      done;
      Wal.close w;
      let segs =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".log")
      in
      Alcotest.(check bool) "log rotated" true (List.length segs > 1);
      let s = Wal.scan ~dir in
      Alcotest.(check int) "scan crosses segments" 20 s.Wal.valid;
      Alcotest.(check bool) "clean tail" true (s.Wal.torn = None);
      (* Reopening continues the numbering. *)
      let w2 = Wal.reopen ~config:(wal_config ~batch:1 ~segment_bytes:64 ()) ~dir ~records:20 () in
      Wal.append w2 "one-more";
      Wal.close w2;
      Alcotest.(check int) "append after reopen" 21 (Wal.scan ~dir).Wal.valid)

let test_segment_gap_orphans_tail () =
  with_tmpdir (fun dir ->
      let w = Wal.create ~config:(wal_config ~batch:1 ~segment_bytes:64 ()) ~dir () in
      for i = 1 to 20 do
        Wal.append w (Printf.sprintf "record-number-%03d-padded-to-force-rotation" i)
      done;
      Wal.close w;
      let segs = List.sort compare (Array.to_list (Sys.readdir dir)) in
      (* Delete a middle segment: everything after the gap is orphaned. *)
      (match segs with
      | _first :: second :: _ :: _ -> Sys.remove (Filename.concat dir second)
      | _ -> Alcotest.fail "expected at least three segments");
      let s = Wal.scan ~dir in
      Alcotest.(check bool) "gap detected" true (s.Wal.torn <> None);
      Alcotest.(check bool) "only the prefix survives" true (s.Wal.valid < 20))

(* --- the crash matrix ---

   For a journaled GREEDY run: carve a copy of the store at every record
   boundary and mid-record, recover, resume, and require the combined
   summary to be bit-identical to the uninterrupted baseline.  A cut
   inside the 4-record capacity prefix must instead fail cleanly (no
   fabric to recover against). *)

let policy = Policy.Fraction_of_max 0.8

let n_prefix = 4 (* fabric2 = 2 ingress + 2 egress capacity records *)

let baseline requests =
  let result = Flexible.greedy (fabric2 ()) policy requests in
  Summary.compute (fabric2 ()) ~all:requests ~accepted:result.Types.accepted

let journal_run ?batch ?segment_bytes ?snapshot_bytes ?codec ~dir requests =
  let t0 = List.fold_left (fun t (r : Request.t) -> Float.min t r.Request.ts) 0.0 requests in
  let store =
    Store.create ~config:(store_config ?batch ?segment_bytes ?snapshot_bytes ?codec ())
      ~time:t0 ~dir (fabric2 ())
  in
  let result = Flexible.greedy ~ctx:(Gridbw_core.Runtime.make ~store ()) (fabric2 ()) policy requests in
  Store.close store;
  result

let resume_and_check ~label ~expected ~dir requests =
  match Store.recover ~config:(store_config ()) ~dir () with
  | Error msg -> Alcotest.failf "%s: recovery failed: %s" label msg
  | Ok r ->
      let result =
        Flexible.greedy_resume
          ~ctx:(Gridbw_core.Runtime.make ~store:r.Store.store ())
          r.Store.initial_fabric policy
          ~restored:r.Store.accepted ~decided:r.Store.decided ~arrived:r.Store.arrived requests
      in
      Store.close r.Store.store;
      let got = Summary.compute (fabric2 ()) ~all:requests ~accepted:result.Types.accepted in
      if got <> expected then
        Alcotest.failf "%s: resumed summary differs:@.baseline %a@.resumed %a" label Summary.pp
          expected Summary.pp got;
      (* The recovered bookings themselves must be a feasible schedule. *)
      (match Reference.audit_allocations (fabric2 ()) (List.map snd r.Store.accepted) with
      | [] -> ()
      | vs -> Alcotest.failf "%s: %d audit violations on recovered state" label (List.length vs));
      if not (Ledger.within_capacity (Store.ledger r.Store.store)) then
        Alcotest.failf "%s: recovered mirror ledger exceeds capacity" label

let expect_prefix_error ~label ~dir =
  match Store.recover ~config:(store_config ()) ~dir () with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: recovery accepted a cut inside the capacity prefix" label

let carve ~src ~scratch n =
  if Sys.file_exists scratch then rm_rf scratch;
  Torn.copy_store ~src ~dst:scratch;
  Torn.truncate_at ~dir:scratch n;
  scratch

let crash_matrix ?codec seed () =
  let requests = workload_of_seed ~n:30 seed in
  let expected = baseline requests in
  with_tmpdir (fun tmp ->
      let src = Filename.concat tmp "src" in
      let scratch = Filename.concat tmp "carved" in
      ignore (journal_run ~batch:4 ?codec ~dir:src requests);
      let boundaries, total = Torn.record_boundaries ~dir:src in
      Alcotest.(check bool) "journal is non-trivial" true (List.length boundaries > n_prefix);
      List.iteri
        (fun kept boundary ->
          (* Clean cut exactly before record [kept]... *)
          let label = Printf.sprintf "seed %d, cut at record %d" seed kept in
          let dir = carve ~src ~scratch boundary in
          if kept < n_prefix then expect_prefix_error ~label ~dir
          else resume_and_check ~label ~expected ~dir requests;
          (* ...and a torn cut in the middle of record [kept]. *)
          let next =
            match List.nth_opt boundaries (kept + 1) with Some b -> b | None -> total
          in
          if next > boundary + 1 then begin
            let label = Printf.sprintf "seed %d, torn inside record %d" seed kept in
            let dir = carve ~src ~scratch (boundary + ((next - boundary) / 2)) in
            if kept < n_prefix then expect_prefix_error ~label ~dir
            else resume_and_check ~label ~expected ~dir requests
          end)
        boundaries)

let test_flipped_byte_truncates () =
  let requests = workload_of_seed ~n:30 3 in
  let expected = baseline requests in
  with_tmpdir (fun tmp ->
      let src = Filename.concat tmp "src" in
      let scratch = Filename.concat tmp "carved" in
      ignore (journal_run ~batch:4 ~dir:src requests);
      let boundaries, _total = Torn.record_boundaries ~dir:src in
      (* Corrupt a byte inside a mid-log record: CRC (or the frame) breaks,
         recovery truncates there and the resume still converges. *)
      let target = List.nth boundaries (List.length boundaries / 2) in
      if Sys.file_exists scratch then rm_rf scratch;
      Torn.copy_store ~src ~dst:scratch;
      Torn.flip_byte ~dir:scratch (target + 3);
      resume_and_check ~label:"flipped byte" ~expected ~dir:scratch requests)

let test_snapshot_recovery () =
  let requests = workload_of_seed ~n:30 17 in
  let expected = baseline requests in
  with_tmpdir (fun tmp ->
      let src = Filename.concat tmp "src" in
      let scratch = Filename.concat tmp "carved" in
      (* Tiny snapshot threshold: several snapshots over the run. *)
      ignore (journal_run ~batch:4 ~snapshot_bytes:512 ~dir:src requests);
      let snaps =
        Sys.readdir src |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".json" && f <> "store.json")
      in
      Alcotest.(check bool) "snapshots were written" true (List.length snaps >= 1);
      let _, total = Torn.record_boundaries ~dir:src in
      let dir = carve ~src ~scratch (total - 7) in
      (match Store.recover ~config:(store_config ()) ~dir () with
      | Error msg -> Alcotest.failf "snapshot recovery failed: %s" msg
      | Ok r ->
          Alcotest.(check bool) "recovery started from a snapshot" true
            (r.Store.snapshot_cursor > 0);
          Store.close r.Store.store);
      resume_and_check ~label:"snapshot + WAL tail" ~expected ~dir requests;
      (* A corrupted newest snapshot is skipped, not fatal. *)
      let dir = carve ~src ~scratch (total - 7) in
      let newest = List.sort compare snaps |> List.rev |> List.hd in
      let path = Filename.concat dir newest in
      if Sys.file_exists path then begin
        let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
        output_string oc "garbage";
        close_out oc
      end;
      resume_and_check ~label:"corrupt snapshot skipped" ~expected ~dir requests)

let test_double_crash () =
  let requests = workload_of_seed ~n:30 3 in
  let expected = baseline requests in
  with_tmpdir (fun tmp ->
      let src = Filename.concat tmp "src" in
      let scratch = Filename.concat tmp "carved" in
      ignore (journal_run ~batch:4 ~dir:src requests);
      let boundaries, _ = Torn.record_boundaries ~dir:src in
      let cut_a = List.nth boundaries (List.length boundaries / 3) in
      let dir = carve ~src ~scratch cut_a in
      (* First crash: recover and resume, journaling into the same store. *)
      resume_and_check ~label:"first crash" ~expected ~dir requests;
      (* Second crash: carve the resumed journal again, further in. *)
      let boundaries2, _ = Torn.record_boundaries ~dir in
      let cut_b = List.nth boundaries2 (2 * List.length boundaries2 / 3) in
      Torn.truncate_at ~dir cut_b;
      resume_and_check ~label:"second crash" ~expected ~dir requests)

(* --- the sharded crash leg ---

   [gridbw serve --shards N] journals through the sharded engine: the
   reserve phase of a cross-shard admission writes nothing, and the
   single Accept record appended inside the freeze window is the commit
   point for BOTH ports at once.  A SIGKILL between reserve and commit
   therefore leaves either a fully-booked admission or no trace — never
   one port booked and the other not.  This matrix carves a sharded
   journal at every record boundary and mid-record (the same cuts a kill
   can produce) and demands each carve recover to a state where every
   surviving booking holds both its ports: the reference audit is clean,
   each port counter equals the sum of the surviving still-active grants
   on that side, and re-partitioning onto a different shard count
   reproduces the same counters bit for bit. *)

module Shard_engine = Gridbw_shard.Engine
module Scenario = Gridbw_check.Scenario
module Allocation = Gridbw_alloc.Allocation

let sharded_workload () =
  let module Rng = Gridbw_prng.Rng in
  let rng = rng ~seed:23L () in
  List.init 40 (fun id ->
      (* most pairs straddle the two shards (ingress and egress of
         different parities); modest rates so plenty get booked *)
      let ingress = id mod 2 in
      let egress = if id mod 3 = 0 then ingress else 1 - ingress in
      let ts = Rng.float_in rng 0. 50. in
      let dur = Rng.float_in rng 5. 40. in
      let min_rate = Rng.float_in rng 5. 40. in
      Request.make ~id ~ingress ~egress ~volume:(min_rate *. dur) ~ts ~tf:(ts +. dur)
        ~max_rate:(min_rate *. 2.))

let sharded_journal_run ~dir requests =
  let t0 = List.fold_left (fun t (r : Request.t) -> Float.min t r.Request.ts) 0.0 requests in
  let store = Store.create ~config:(store_config ~batch:4 ()) ~time:t0 ~dir (fabric2 ()) in
  let engine = Shard_engine.create ~journal:store ~spawn:false ~shards:2 policy (fabric2 ()) in
  let cross = ref 0 in
  let accepted = ref [] in
  List.iteri
    (fun i (r : Request.t) ->
      (match Shard_engine.try_admit engine r with
      | Types.Accepted a ->
          if r.Request.ingress mod 2 <> r.Request.egress mod 2 then incr cross;
          accepted := a :: !accepted
      | Types.Rejected _ -> ());
      (* cancel-heavy: every few ops pull the most recent booking *)
      if i mod 5 = 2 then
        match !accepted with
        | a :: rest ->
            ignore (Shard_engine.cancel engine a);
            accepted := rest
        | [] -> ())
    requests;
  Shard_engine.flush engine;
  Store.close store;
  Alcotest.(check bool) "workload exercises cross-shard admissions" true (!cross > 0)

(* The Accepts that were never preempted: [Store.recover]'s [accepted]
   keeps preempted bookings (the Preempt releases the mirror-ledger
   interval but the decision stands in history), so the set of bookings
   the engine must still hold is re-derived from the event stream. *)
let surviving_allocations events =
  let tbl = Hashtbl.create 32 in
  List.iter
    (function
      | Event.Accept { id; ingress; egress; volume; ts; tf; max_rate; bw; sigma; _ } ->
          let request = Request.make ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate in
          Hashtbl.replace tbl id (Allocation.make ~request ~bw ~sigma)
      | Event.Preempt { id; _ } -> Hashtbl.remove tbl id
      | _ -> ())
    events;
  Hashtbl.fold (fun _ a acc -> a :: acc) tbl []

let check_sharded_recovery ~label ~dir =
  match Store.recover ~config:(store_config ()) ~dir () with
  | Error msg -> Alcotest.failf "%s: recovery failed: %s" label msg
  | Ok r ->
      Fun.protect ~finally:(fun () -> Store.close r.Store.store) @@ fun () ->
      let allocs = surviving_allocations r.Store.events in
      (match Reference.audit_allocations (fabric2 ()) allocs with
      | [] -> ()
      | vs ->
          Alcotest.failf "%s: %d audit violation(s) on the surviving bookings" label
            (List.length vs));
      if not (Ledger.within_capacity (Store.ledger r.Store.store)) then
        Alcotest.failf "%s: recovered mirror ledger exceeds capacity" label;
      let rebuild shards =
        match
          Shard_engine.of_events ~spawn:false ~shards ~policy ~fabric:r.Store.initial_fabric
            r.Store.events
        with
        | Ok e -> e
        | Error e -> Alcotest.failf "%s: of_events shards=%d: %s" label shards e
      in
      let e2 = rebuild 2 in
      (* restore parks releases already due at the horizon: drain them
         before reading counters *)
      Shard_engine.settle e2;
      (* both-booked-or-neither: every port counter must equal the sum of
         the surviving active grants on that side — a half-committed
         cross-shard admission would leave one side short *)
      let now = Shard_engine.now e2 in
      let exp_ing = Array.make 2 0. and exp_egr = Array.make 2 0. in
      let active = ref 0 in
      List.iter
        (fun (a : Allocation.t) ->
          if a.Allocation.tau > now then begin
            incr active;
            let r = a.Allocation.request in
            exp_ing.(r.Request.ingress) <- exp_ing.(r.Request.ingress) +. a.Allocation.bw;
            exp_egr.(r.Request.egress) <- exp_egr.(r.Request.egress) +. a.Allocation.bw
          end)
        allocs;
      Alcotest.(check int)
        (label ^ ": every surviving booking is active on both sides")
        !active (Shard_engine.active_count e2);
      for i = 0 to 1 do
        let got = Shard_engine.ingress_used e2 i in
        if Float.abs (got -. exp_ing.(i)) > 1e-9 then
          Alcotest.failf "%s: ingress %d holds %.17g, surviving grants sum to %.17g" label i got
            exp_ing.(i)
      done;
      for e = 0 to 1 do
        let got = Shard_engine.egress_used e2 e in
        if Float.abs (got -. exp_egr.(e)) > 1e-9 then
          Alcotest.failf "%s: egress %d holds %.17g, surviving grants sum to %.17g" label e got
            exp_egr.(e)
      done;
      (* and re-partitioning the same carve is exact *)
      let e3 = rebuild 3 in
      Shard_engine.settle e3;
      for i = 0 to 1 do
        if Shard_engine.ingress_used e3 i <> Shard_engine.ingress_used e2 i then
          Alcotest.failf "%s: ingress %d differs under re-partitioning" label i
      done;
      for e = 0 to 1 do
        if Shard_engine.egress_used e3 e <> Shard_engine.egress_used e2 e then
          Alcotest.failf "%s: egress %d differs under re-partitioning" label e
      done

let test_sharded_crash_matrix () =
  let requests = sharded_workload () in
  with_tmpdir (fun tmp ->
      let src = Filename.concat tmp "src" in
      let scratch = Filename.concat tmp "carved" in
      sharded_journal_run ~dir:src requests;
      let boundaries, total = Torn.record_boundaries ~dir:src in
      Alcotest.(check bool) "journal is non-trivial" true (List.length boundaries > n_prefix);
      List.iteri
        (fun kept boundary ->
          let label = Printf.sprintf "sharded cut at record %d" kept in
          let dir = carve ~src ~scratch boundary in
          if kept < n_prefix then expect_prefix_error ~label ~dir
          else check_sharded_recovery ~label ~dir;
          let next =
            match List.nth_opt boundaries (kept + 1) with Some b -> b | None -> total
          in
          if next > boundary + 1 then begin
            let label = Printf.sprintf "sharded torn inside record %d" kept in
            let dir = carve ~src ~scratch (boundary + ((next - boundary) / 2)) in
            if kept < n_prefix then expect_prefix_error ~label ~dir
            else check_sharded_recovery ~label ~dir
          end)
        boundaries)

(* --- the malleable crash leg ---

   A journaled MALLEABLE run commits each profiled admission as ONE
   Reshape record carrying the new step schedule and every
   pending-profile revision the admission performed.  A SIGKILL between
   "revisions applied" and "admit recorded" must be unrepresentable on
   disk: carving the journal in the middle of a Reshape record recovers
   to a state bit-identical to the boundary before it (neither the admit
   nor any revision), and the boundary after it holds both.  The broad
   matrix additionally recovers every boundary and mid-record cut and
   audits the surviving profiled bookings. *)

module Malleable = Gridbw_malleable.Malleable
module Rate_profile = Gridbw_alloc.Rate_profile

let malleable_journal_run ~dir requests =
  let t0 = List.fold_left (fun t (r : Request.t) -> Float.min t r.Request.ts) 0.0 requests in
  let store = Store.create ~config:(store_config ~batch:4 ()) ~time:t0 ~dir (fabric2 ()) in
  let result =
    Malleable.run
      { Malleable.default with Malleable.book_ahead = 10. }
      ~ctx:(Gridbw_core.Runtime.make ~store ())
      (fabric2 ()) requests
  in
  Store.close store;
  result

(* Recover a carve and return its profiled state as [(id, triples)] rows,
   after auditing it: reference-feasible, ledger within capacity, every
   profile closing to its volume bitwise. *)
let malleable_recovered_state ~label ~dir =
  match Store.recover ~config:(store_config ()) ~dir () with
  | Error msg -> Alcotest.failf "%s: recovery failed: %s" label msg
  | Ok r ->
      Fun.protect ~finally:(fun () -> Store.close r.Store.store) @@ fun () ->
      let allocs = List.map snd r.Store.accepted in
      (match Reference.audit_allocations (fabric2 ()) allocs with
      | [] -> ()
      | vs -> Alcotest.failf "%s: %d audit violations on recovered state" label (List.length vs));
      if not (Ledger.within_capacity (Store.ledger r.Store.store)) then
        Alcotest.failf "%s: recovered mirror ledger exceeds capacity" label;
      List.map
        (fun (a : Allocation.t) ->
          match a.Allocation.profile with
          | None ->
              Alcotest.failf "%s: malleable accept %d recovered without a profile" label
                a.Allocation.request.Request.id
          | Some p ->
              if Rate_profile.integral p <> a.Allocation.request.Request.volume then
                Alcotest.failf "%s: recovered profile of %d does not close bitwise" label
                  a.Allocation.request.Request.id;
              (a.Allocation.request.Request.id, Rate_profile.to_triples p))
        allocs
      |> List.sort compare

let test_malleable_crash_matrix () =
  let requests = workload_of_seed ~n:30 5 in
  with_tmpdir (fun tmp ->
      let src = Filename.concat tmp "src" in
      let scratch = Filename.concat tmp "carved" in
      ignore (malleable_journal_run ~dir:src requests);
      let events =
        match Store.recover ~config:(store_config ()) ~dir:src () with
        | Error msg -> Alcotest.failf "uncarved journal does not recover: %s" msg
        | Ok r ->
            Store.close r.Store.store;
            r.Store.events
      in
      let boundaries, total = Torn.record_boundaries ~dir:src in
      (* one WAL record per event (the capacity prefix is events too):
         the event index IS the record index the carves are keyed by *)
      Alcotest.(check int) "records = events" (List.length events) (List.length boundaries);
      let boundary_of record =
        match List.nth_opt boundaries record with Some b -> b | None -> total
      in
      (* broad matrix: every clean and torn cut recovers to an auditable
         profiled state (or fails cleanly inside the capacity prefix) *)
      List.iteri
        (fun kept boundary ->
          let label = Printf.sprintf "malleable cut at record %d" kept in
          let dir = carve ~src ~scratch boundary in
          if kept < n_prefix then expect_prefix_error ~label ~dir
          else ignore (malleable_recovered_state ~label ~dir);
          let next = boundary_of (kept + 1) in
          if next > boundary + 1 then begin
            let label = Printf.sprintf "malleable torn inside record %d" kept in
            let dir = carve ~src ~scratch (boundary + ((next - boundary) / 2)) in
            if kept < n_prefix then expect_prefix_error ~label ~dir
            else ignore (malleable_recovered_state ~label ~dir)
          end)
        boundaries;
      (* targeted both-or-neither: for every Reshape that revised pending
         profiles, a mid-record carve equals the pre state bit for bit
         and the post state holds the admit AND every revision *)
      let checked = ref 0 in
      List.iteri
        (fun i ev ->
          match ev with
          | Event.Reshape { id; profile; revised; _ } when Array.length revised > 0 ->
              incr checked;
              let record = i in
              let before_b = boundary_of record and after_b = boundary_of (record + 1) in
              let label = Printf.sprintf "reshape record %d (admit %d)" record id in
              let pre =
                malleable_recovered_state ~label:(label ^ ", pre")
                  ~dir:(carve ~src ~scratch before_b)
              in
              let mid =
                malleable_recovered_state ~label:(label ^ ", torn")
                  ~dir:(carve ~src ~scratch (before_b + ((after_b - before_b) / 2)))
              in
              if mid <> pre then
                Alcotest.failf "%s: torn reshape left a partial state behind" label;
              let post =
                malleable_recovered_state ~label:(label ^ ", post")
                  ~dir:(carve ~src ~scratch after_b)
              in
              (match List.assoc_opt id post with
              | Some got when got = profile -> ()
              | Some _ -> Alcotest.failf "%s: admitted profile differs from the record" label
              | None -> Alcotest.failf "%s: admit missing after a committed reshape" label);
              Array.iter
                (fun (rid, triples) ->
                  if not (List.mem_assoc rid pre) then
                    Alcotest.failf "%s: revision targets %d, which was never admitted" label rid;
                  match List.assoc_opt rid post with
                  | Some got when got = triples -> ()
                  | Some _ ->
                      Alcotest.failf "%s: revision of %d not applied by the replay" label rid
                  | None -> Alcotest.failf "%s: revised transfer %d vanished" label rid)
                revised
          | _ -> ())
        events;
      Alcotest.(check bool) "workload produced revising reshapes" true (!checked > 0))

let test_store_metrics () =
  let requests = workload_of_seed ~n:30 17 in
  with_tmpdir (fun tmp ->
      let dir = Filename.concat tmp "src" in
      let obs = Obs.create () in
      let t0 = List.fold_left (fun t (r : Request.t) -> Float.min t r.Request.ts) 0.0 requests in
      let store =
        Store.create ~config:(store_config ~batch:4 ()) ~obs ~time:t0 ~dir (fabric2 ())
      in
      ignore (Flexible.greedy ~ctx:(Gridbw_core.Runtime.make ~store ()) (fabric2 ()) policy requests);
      Store.close store;
      let m = Obs.metrics obs in
      Alcotest.(check int) "wal_records_total counts every record" (Store.records store)
        (Metrics.value (Metrics.counter m "store_wal_records_total"));
      Alcotest.(check bool) "fsyncs happened" true
        (Metrics.value (Metrics.counter m "store_fsync_total") > 0);
      let h = Metrics.histogram m "store_fsync_batch_size" in
      Alcotest.(check int) "batch histogram sums to the record count" (Store.records store)
        (int_of_float (Metrics.hist_sum h));
      (* Recovery counts the records it replayed. *)
      let obs2 = Obs.create () in
      match Store.recover ~config:(store_config ()) ~obs:obs2 ~dir () with
      | Error msg -> Alcotest.failf "recover: %s" msg
      | Ok r ->
          Store.close r.Store.store;
          Alcotest.(check int) "store_recovery_records" r.Store.replayed
            (Metrics.value (Metrics.counter (Obs.metrics obs2) "store_recovery_records")))

let test_create_refuses_existing () =
  with_tmpdir (fun tmp ->
      let dir = Filename.concat tmp "s" in
      let store = Store.create ~config:(store_config ()) ~dir (fabric2 ()) in
      Store.close store;
      Alcotest.(check bool) "exists" true (Store.exists ~dir);
      match Store.create ~config:(store_config ()) ~dir (fabric2 ()) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "create over an existing store accepted")

(* Random crash offsets, on top of the exhaustive boundary matrix. *)
let prop_random_offset_recovers =
  let requests = lazy (workload_of_seed ~n:30 3) in
  let fixture =
    lazy
      (let requests = Lazy.force requests in
       let dir = Filename.temp_file "gridbw-store-prop" "" in
       Sys.remove dir;
       Sys.mkdir dir 0o755;
       ignore (journal_run ~batch:4 ~dir requests);
       at_exit (fun () -> if Sys.file_exists dir then rm_rf dir);
       (dir, snd (Torn.record_boundaries ~dir), baseline requests))
  in
  qcase ~count:25 "store: recovery converges from a random crash offset"
    QCheck2.Gen.(int_range 0 10_000_000)
    (fun raw ->
      let src, total, expected = Lazy.force fixture in
      let requests = Lazy.force requests in
      let n = raw mod total in
      let scratch = src ^ "-carved" in
      let dir = carve ~src ~scratch n in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists scratch then rm_rf scratch)
        (fun () ->
          match Store.recover ~config:(store_config ()) ~dir () with
          | Error _ ->
              (* Only legitimate inside the capacity prefix. *)
              let kept = (Wal.scan ~dir).Wal.valid in
              kept < n_prefix
          | Ok r ->
              let result =
                Flexible.greedy_resume
          ~ctx:(Gridbw_core.Runtime.make ~store:r.Store.store ())
          r.Store.initial_fabric policy
                  ~restored:r.Store.accepted ~decided:r.Store.decided ~arrived:r.Store.arrived
                  requests
              in
              Store.close r.Store.store;
              Summary.compute (fabric2 ()) ~all:requests ~accepted:result.Types.accepted
              = expected))

(* --- Store.flush: explicit group commit --- *)

let wal_bytes dir =
  Array.fold_left
    (fun acc f ->
      if String.length f >= 4 && String.sub f 0 4 = "wal-" then
        acc + (Unix.stat (Filename.concat dir f)).Unix.st_size
      else acc)
    0 (Sys.readdir dir)

(* With --store-batch far larger than what we append (and the sync delay
   out of reach), records stay in the writer's buffer: nothing lands on
   disk until Store.flush forces the group commit.  This is the fsync the
   daemon runs before acking a round. *)
let test_flush_forces_group_commit () =
  with_tmpdir (fun dir ->
      let obs = Obs.create () in
      let store =
        Store.create ~config:(store_config ~batch:1000 ()) ~obs ~dir (fabric2 ())
      in
      Store.flush store;
      let base = wal_bytes dir in
      for i = 0 to 9 do
        Store.log store
          (Event.Arrival
             { time = float_of_int i; seq = i; id = i; ingress = 0; egress = 0;
               volume = 10.; ts = float_of_int i; tf = float_of_int i +. 10.;
               max_rate = 5. })
      done;
      Alcotest.(check int) "group commit holds records back" base (wal_bytes dir);
      let fsyncs () = Metrics.value (Metrics.counter (Obs.metrics obs) "store_fsync_total") in
      let before = fsyncs () in
      Store.flush store;
      let flushed = wal_bytes dir in
      Alcotest.(check bool) "flush pushes the tail to disk" true (flushed > base);
      Alcotest.(check bool) "flush fsyncs" true (fsyncs () > before);
      Store.flush store;
      Alcotest.(check int) "flush of an empty tail is a no-op" flushed (wal_bytes dir);
      let total = Store.records store in
      Store.close store;
      match Store.recover ~config:(store_config ()) ~dir () with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check int) "every flushed record recovers" total
            (Store.records r.Store.store);
          Store.close r.Store.store)

(* The new Runtime.ctx plumbing and the deprecated ?store argument must
   journal byte-identically: same WAL payload stream, same decisions. *)
let test_ctx_journal_matches_legacy () =
  let requests = random_requests ~seed:21L ~n:40 (fabric2 ()) in
  let journal run =
    with_tmpdir (fun dir ->
        let store = Store.create ~config:(store_config ()) ~time:0.0 ~dir (fabric2 ()) in
        let result = run store in
        Store.close store;
        let s = Wal.scan ~dir in
        ( List.length result.Types.accepted,
          List.map (fun (r : Wal.record) -> r.Wal.payload) s.Wal.records ))
  in
  let legacy = journal (fun store -> Flexible.greedy ~ctx:(Gridbw_core.Runtime.make ~store ()) (fabric2 ()) policy requests) in
  let ctxed =
    journal (fun store ->
        Flexible.greedy
          ~ctx:(Gridbw_core.Runtime.make ~store ())
          (fabric2 ()) policy requests)
  in
  Alcotest.(check int) "same accept count" (fst legacy) (fst ctxed);
  Alcotest.(check bool) "identical journal payloads" true (snd legacy = snd ctxed)

let test_observed_tees_store () =
  let module Runtime = Gridbw_core.Runtime in
  Alcotest.(check bool) "default ctx stays disabled" false
    (Runtime.observed Runtime.default).Obs.enabled;
  with_tmpdir (fun dir ->
      let store = Store.create ~config:(store_config ()) ~time:0.0 ~dir (fabric2 ()) in
      let obs = Runtime.observed (Runtime.make ~store ()) in
      Alcotest.(check bool) "store-only ctx journals" true obs.Obs.enabled;
      Store.close store)

let suites =
  [
    ( "store",
      [
        case "flush: forces the group commit to disk" test_flush_forces_group_commit;
        case "wal: frame round-trip, corruption detected" test_frame_roundtrip;
        case "wal: group commit fsyncs per batch" test_group_commit;
        case "wal: segments rotate and reopen" test_segment_rotation;
        case "wal: segment gap orphans the tail" test_segment_gap_orphans_tail;
        case "store: create refuses an existing store" test_create_refuses_existing;
        case "crash matrix: every boundary and torn record (seed 3)" (crash_matrix 3);
        case "crash matrix: every boundary and torn record (seed 17)" (crash_matrix 17);
        case "crash matrix: jsonl-codec journal (seed 3)" (crash_matrix ~codec:Wal.Jsonl 3);
        case "crash: flipped byte truncates at the CRC" test_flipped_byte_truncates;
        case "crash: snapshot + WAL tail recovery" test_snapshot_recovery;
        case "crash: double crash, recover twice" test_double_crash;
        case "crash matrix: sharded journal, cross-shard admissions both-booked-or-neither"
          test_sharded_crash_matrix;
        case "crash matrix: malleable journal, reshape+admit both-or-neither"
          test_malleable_crash_matrix;
        case "metrics: store counters land in the registry" test_store_metrics;
        case "ctx: Runtime.ctx journals identically to ?store" test_ctx_journal_matches_legacy;
        case "ctx: observed tees the store sink" test_observed_tees_store;
        prop_random_offset_recovers;
      ] );
  ]
