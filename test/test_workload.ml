open Helpers
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Trace = Gridbw_workload.Trace
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Rng = Gridbw_prng.Rng

let invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let paper_volume_set () =
  let set = Spec.paper_volume_set in
  Alcotest.(check int) "19 values" 19 (Array.length set);
  check_approx "min 10 GB" 10_000.0 set.(0);
  check_approx "max 1 TB" 1_000_000.0 set.(18);
  check_approx "mean" (5_950_000.0 /. 19.0) (Spec.mean_volume Spec.Paper_set)

let spec_validation () =
  invalid "bad rate range" (fun () -> Spec.make ~rate_lo:10. ~rate_hi:5. ~mean_interarrival:1. ());
  invalid "zero interarrival" (fun () -> Spec.make ~mean_interarrival:0. ());
  invalid "zero count" (fun () -> Spec.make ~count:0 ~mean_interarrival:1. ());
  invalid "bad volume range" (fun () ->
      Spec.make ~volumes:(Spec.Uniform_volume { lo = 5.; hi = 1. }) ~mean_interarrival:1. ());
  invalid "bad slack" (fun () ->
      Spec.make ~flexibility:(Spec.Flexible { max_slack = 0.5 }) ~mean_interarrival:1. ());
  invalid "bad load" (fun () -> Spec.paper_rigid ~load:0. ())

let rigid_load_calibration () =
  let spec = Spec.paper_rigid ~load:2.0 () in
  check_approx ~eps:1e-6 "offered load equals target" 2.0 (Spec.offered_load spec)

let generate_shape () =
  let spec = Spec.paper_rigid ~count:200 ~load:1.0 () in
  let reqs = Gen.generate (rng ()) spec in
  Alcotest.(check int) "count" 200 (List.length reqs);
  List.iteri
    (fun i (r : Request.t) -> Alcotest.(check int) "sequential ids" i r.id)
    reqs;
  let sorted = List.for_all2 (fun (a : Request.t) (b : Request.t) -> a.ts <= b.ts)
      (List.filteri (fun i _ -> i < 199) reqs) (List.tl reqs) in
  Alcotest.(check bool) "sorted by arrival" true sorted;
  List.iter
    (fun (r : Request.t) ->
      Alcotest.(check bool) "routed" true (Request.routed_on r spec.Spec.fabric);
      Alcotest.(check bool) "rigid" true (Request.is_rigid r);
      Alcotest.(check bool) "volume from set" true
        (Array.exists (fun v -> approx v r.volume) Spec.paper_volume_set);
      let mr = Request.min_rate r in
      Alcotest.(check bool) "rate in range" true (mr >= 10. -. 1e-6 && mr <= 1000. +. 1e-6))
    reqs

let generate_flexible () =
  let spec = Spec.paper_flexible ~count:200 ~mean_interarrival:1.0 () in
  let reqs = Gen.generate (rng ()) spec in
  List.iter
    (fun (r : Request.t) ->
      Alcotest.(check bool) "max above min" true (r.max_rate >= Request.min_rate r -. 1e-9);
      Alcotest.(check bool) "max capped by rate_hi" true (r.max_rate <= 1000. +. 1e-6))
    reqs

let generate_bounded_slack () =
  let spec =
    Spec.make ~flexibility:(Spec.Flexible { max_slack = 2.0 }) ~count:300 ~mean_interarrival:1. ()
  in
  let reqs = Gen.generate (rng ()) spec in
  List.iter
    (fun (r : Request.t) ->
      Alcotest.(check bool) "slack bounded" true (Request.slack r <= 2.0 +. 1e-6))
    reqs

let generate_deterministic () =
  let spec = Spec.paper_rigid ~count:50 ~load:1.0 () in
  let a = Gen.generate (Rng.create ~seed:9L ()) spec in
  let b = Gen.generate (Rng.create ~seed:9L ()) spec in
  Alcotest.(check bool) "same workload from same seed" true
    (List.for_all2
       (fun (x : Request.t) (y : Request.t) ->
         x.id = y.id && x.ts = y.ts && x.volume = y.volume && x.max_rate = y.max_rate)
       a b)

let measured_load_close () =
  let spec = Spec.paper_rigid ~count:3000 ~load:2.0 () in
  let reqs = Gen.generate (rng ~seed:3L ()) spec in
  let measured = Gen.measured_load spec.Spec.fabric reqs in
  if Float.abs (measured -. 2.0) > 0.4 then
    Alcotest.failf "measured load %.3f too far from target 2.0" measured

let horizon_and_span () =
  let r1 = req ~id:1 ~ts:1. ~tf:5. () and r2 = req ~id:2 ~ts:3. ~tf:20. () in
  check_approx "horizon" 20.0 (Gen.horizon [ r1; r2 ]);
  check_approx "span" 2.0 (Gen.arrival_span [ r1; r2 ]);
  check_approx "empty horizon" 0.0 (Gen.horizon []);
  check_approx "singleton span" 0.0 (Gen.arrival_span [ r1 ])

let trace_roundtrip () =
  let spec = Spec.paper_flexible ~count:64 ~mean_interarrival:0.7 () in
  let reqs = Gen.generate (rng ~seed:21L ()) spec in
  let back = Trace.of_string (Trace.to_string reqs) in
  Alcotest.(check int) "count preserved" (List.length reqs) (List.length back);
  List.iter2
    (fun (a : Request.t) (b : Request.t) ->
      if not (a.id = b.id && a.ingress = b.ingress && a.egress = b.egress && a.volume = b.volume
              && a.ts = b.ts && a.tf = b.tf && a.max_rate = b.max_rate)
      then Alcotest.failf "request %d did not round-trip exactly" a.id)
    reqs back

let trace_file_roundtrip () =
  let reqs = [ req ~id:0 ~volume:123.456 (); req ~id:1 ~ts:1.5 ~tf:9.25 ~volume:10. () ] in
  let path = Filename.temp_file "gridbw" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.to_file path reqs;
      let back = Trace.of_file path in
      Alcotest.(check int) "two rows" 2 (List.length back))

let trace_malformed () =
  (match Trace.of_string "id,bad header is fine if exactly 7 fields missing" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed line accepted");
  match Trace.of_string "1,2,3,not_a_float,0,1,5" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "bad float accepted"

let trace_empty () = Alcotest.(check int) "empty" 0 (List.length (Trace.of_string ""))

let suites =
  [
    ( "workload",
      [
        case "paper volume set" paper_volume_set;
        case "spec validation" spec_validation;
        case "rigid load calibration" rigid_load_calibration;
        case "generated shape (rigid)" generate_shape;
        case "generated flexible rates" generate_flexible;
        case "bounded slack" generate_bounded_slack;
        case "deterministic from seed" generate_deterministic;
        slow_case "measured load close to target" measured_load_close;
        case "horizon and span" horizon_and_span;
      ] );
    ( "trace",
      [
        case "string round-trip exact" trace_roundtrip;
        case "file round-trip" trace_file_roundtrip;
        case "malformed input rejected" trace_malformed;
        case "empty input" trace_empty;
      ] );
  ]
