open Helpers
module Npc = Gridbw_core.Npc
module Unit_exact = Gridbw_core.Unit_exact
module Rng = Gridbw_prng.Rng

let validate_errors () =
  (match Npc.validate { Npc.n = 0; triples = [] } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n = 0 accepted");
  (match Npc.validate { Npc.n = 2; triples = [ (1, 1, 3) ] } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range coordinate accepted");
  match Npc.validate { Npc.n = 2; triples = [ (1, 1, 1); (1, 1, 1) ] } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate triple accepted"

let matching_yes () =
  let t = { Npc.n = 2; triples = [ (1, 1, 1); (2, 2, 2); (1, 2, 2) ] } in
  match Npc.has_matching t with
  | Some m ->
      Alcotest.(check int) "two triples" 2 (List.length m);
      let xs = List.map (fun (x, _, _) -> x) m |> List.sort_uniq Int.compare in
      Alcotest.(check (list int)) "x coverage" [ 1; 2 ] xs
  | None -> Alcotest.fail "matching exists"

let matching_no () =
  (* Both triples share x = 1: no perfect matching for n = 2. *)
  let t = { Npc.n = 2; triples = [ (1, 1, 1); (1, 2, 2) ] } in
  Alcotest.(check bool) "no matching" true (Npc.has_matching t = None)

let matching_needs_all_slices () =
  (* No triple has z = 2. *)
  let t = { Npc.n = 2; triples = [ (1, 1, 1); (2, 2, 1) ] } in
  Alcotest.(check bool) "no matching" true (Npc.has_matching t = None)

let reduction_shape () =
  let t = { Npc.n = 3; triples = [ (1, 1, 1); (2, 2, 2); (3, 3, 3); (1, 2, 3) ] } in
  let inst, k = Npc.reduce t in
  Alcotest.(check int) "K = n + 2n(n-1)" (3 + (2 * 3 * 2)) k;
  Alcotest.(check int) "|T| + 2n(n-1) requests" (4 + 12) (Array.length inst.Unit_exact.reqs);
  Alcotest.(check int) "n+1 ingress ports" 4 (Array.length inst.Unit_exact.caps_in);
  Alcotest.(check int) "regular ingress capacity 1" 1 inst.Unit_exact.caps_in.(0);
  Alcotest.(check int) "special ingress capacity n-1" 2 inst.Unit_exact.caps_in.(3);
  (* Regular request of triple (1,2,3): ingress 0, egress 1, window [3,4). *)
  let r = inst.Unit_exact.reqs.(3) in
  Alcotest.(check int) "regular ingress" 0 r.Unit_exact.ingress;
  Alcotest.(check int) "regular egress" 1 r.Unit_exact.egress;
  Alcotest.(check int) "regular ts" 3 r.Unit_exact.ts;
  Alcotest.(check int) "regular tf" 4 r.Unit_exact.tf;
  (* Special requests span the whole horizon. *)
  let s = inst.Unit_exact.reqs.(4) in
  Alcotest.(check int) "special ts" 1 s.Unit_exact.ts;
  Alcotest.(check int) "special tf" 4 s.Unit_exact.tf

let forward_direction () =
  (* A matching yields a feasible schedule accepting exactly K requests. *)
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed () in
      let t = Npc.random rng ~n:4 ~extra_triples:4 in
      match Npc.has_matching t with
      | None -> Alcotest.fail "promised matching missing"
      | Some m ->
          let inst, k = Npc.reduce t in
          let placements = Npc.schedule_of_matching t m in
          Alcotest.(check int) "K placements" k (List.length placements);
          Alcotest.(check bool) "feasible" true (Unit_exact.feasible inst placements))
    [ 1L; 2L; 3L; 4L; 5L ]

let equivalence ~n ~instances ~triples_lo ~triples_hi seed0 =
  let rng = Rng.create ~seed:seed0 () in
  for i = 1 to instances do
    let t =
      if i mod 2 = 0 then
        Npc.random rng ~n ~extra_triples:(Rng.int_in rng 0 (triples_hi - n))
      else Npc.random_no_promise rng ~n ~triples:(Rng.int_in rng triples_lo triples_hi)
    in
    let inst, k = Npc.reduce t in
    let sol = Unit_exact.solve inst in
    Alcotest.(check bool) "solver finished" true sol.Unit_exact.optimal;
    let has = Npc.has_matching t <> None in
    let schedules_k = sol.Unit_exact.count >= k in
    if has <> schedules_k then
      Alcotest.failf "reduction equivalence broken (n=%d, instance %d): matching=%b, count=%d, K=%d"
        n i has sol.Unit_exact.count k
  done

let equivalence_n2 () = equivalence ~n:2 ~instances:12 ~triples_lo:1 ~triples_hi:5 77L
let equivalence_n3 () = equivalence ~n:3 ~instances:6 ~triples_lo:3 ~triples_hi:6 78L

let random_instances_validate () =
  let rng = Rng.create ~seed:3L () in
  for _ = 1 to 20 do
    let t = Npc.random rng ~n:(Rng.int_in rng 1 5) ~extra_triples:(Rng.int_in rng 0 5) in
    Npc.validate t;
    Alcotest.(check bool) "promise holds" true (Npc.has_matching t <> None)
  done

let suites =
  [
    ( "npc",
      [
        case "tdm validation" validate_errors;
        case "matching: positive" matching_yes;
        case "matching: coordinate collision" matching_no;
        case "matching: missing slice" matching_needs_all_slices;
        case "reduction shape (Theorem 1)" reduction_shape;
        case "forward direction: matching -> K-schedule" forward_direction;
        slow_case "equivalence on random instances (n=2)" equivalence_n2;
        slow_case "equivalence on random instances (n=3)" equivalence_n3;
        case "random generators validate" random_instances_validate;
      ] );
  ]
