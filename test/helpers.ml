(* Shared helpers for the gridbw test suite. *)

module Rng = Gridbw_prng.Rng
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_approx ?(eps = 1e-9) msg expected actual =
  if not (approx ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let rng ?(seed = 42L) () = Rng.create ~seed ()

(* A small 2-ingress / 2-egress fabric with 100 MB/s ports. *)
let fabric2 () = Fabric.uniform ~ingress_count:2 ~egress_count:2 ~capacity:100.0

let req ?(id = 0) ?(ingress = 0) ?(egress = 0) ?(volume = 100.) ?(ts = 0.) ?(tf = 10.)
    ?max_rate () =
  let max_rate = match max_rate with Some m -> m | None -> volume /. (tf -. ts) in
  Request.make ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate

(* Random request valid on [fabric], window within [0, 100]. *)
let random_request rng fabric id =
  let ingress = Rng.int rng (Fabric.ingress_count fabric) in
  let egress = Rng.int rng (Fabric.egress_count fabric) in
  let ts = Rng.float_in rng 0. 50. in
  let dur = Rng.float_in rng 1. 50. in
  let min_rate = Rng.float_in rng 1. 100. in
  let slack = Rng.float_in rng 1. 4. in
  Request.make ~id ~ingress ~egress ~volume:(min_rate *. dur) ~ts ~tf:(ts +. dur)
    ~max_rate:(min_rate *. slack)

let random_requests ?(seed = 7L) ?(n = 40) fabric =
  let r = Rng.create ~seed () in
  List.init n (random_request r fabric)

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let qcase ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)
