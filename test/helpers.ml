(* Shared helpers for the gridbw test suite — now provided by the
   reusable gridbw_testkit library (test/testkit), which the fuzzer smoke
   tests and the examples consume too. *)

include Gridbw_testkit.Testkit
