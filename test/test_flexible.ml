open Helpers
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Port = Gridbw_alloc.Port
module Flexible = Gridbw_core.Flexible
module Online = Gridbw_core.Online
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Summary = Gridbw_metrics.Summary
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Rng = Gridbw_prng.Rng

let fabric1 () = Fabric.uniform ~ingress_count:1 ~egress_count:1 ~capacity:100.0
let flex ~id ~volume ~ts ~tf ~max_rate = req ~id ~ingress:0 ~egress:0 ~volume ~ts ~tf ~max_rate ()
let ids = Types.accepted_ids

let alloc_of result id =
  match Types.decision_of result id with
  | Some (Types.Accepted a) -> a
  | _ -> Alcotest.failf "request %d not accepted" id

(* Two requests that fit together at MinRate but not at MaxRate. *)
let minrate_packs_more () =
  let reqs =
    [
      flex ~id:0 ~volume:500. ~ts:0. ~tf:10. ~max_rate:100.;
      flex ~id:1 ~volume:500. ~ts:0. ~tf:10. ~max_rate:100.;
    ]
  in
  let min = Flexible.greedy (fabric1 ()) Policy.Min_rate reqs in
  Alcotest.(check (list int)) "min rate accepts both" [ 0; 1 ] (ids min);
  check_approx "assigned min rate" 50.0 (alloc_of min 0).Allocation.bw;
  let full = Flexible.greedy (fabric1 ()) (Policy.Fraction_of_max 1.0) reqs in
  Alcotest.(check (list int)) "f=1 accepts only one" [ 0 ] (ids full);
  check_approx "assigned max rate" 100.0 (alloc_of full 0).Allocation.bw

(* Algorithm 2 reclaims finished transfers before admitting new arrivals at
   the same instant. *)
let release_before_admission () =
  let reqs =
    [
      flex ~id:0 ~volume:1000. ~ts:0. ~tf:10. ~max_rate:100.;
      flex ~id:1 ~volume:500. ~ts:10. ~tf:20. ~max_rate:100.;
    ]
  in
  let result = Flexible.greedy (fabric1 ()) Policy.Min_rate reqs in
  Alcotest.(check (list int)) "second admitted after reclaim" [ 0; 1 ] (ids result)

(* The paper's heavy-load inversion: granting MaxRate frees the port sooner,
   letting a later request in that MinRate would have blocked. *)
let full_rate_frees_port_sooner () =
  let reqs =
    [
      flex ~id:0 ~volume:500. ~ts:0. ~tf:10. ~max_rate:100.;
      flex ~id:1 ~volume:500. ~ts:5. ~tf:10. ~max_rate:100.;
    ]
  in
  let min = Flexible.greedy (fabric1 ()) Policy.Min_rate reqs in
  Alcotest.(check (list int)) "min rate blocks the second" [ 0 ] (ids min);
  let full = Flexible.greedy (fabric1 ()) (Policy.Fraction_of_max 1.0) reqs in
  Alcotest.(check (list int)) "max rate admits both" [ 0; 1 ] (ids full)

let greedy_arrival_tie_smaller_minrate_first () =
  let reqs =
    [
      flex ~id:0 ~volume:800. ~ts:0. ~tf:10. ~max_rate:80.;
      flex ~id:1 ~volume:300. ~ts:0. ~tf:10. ~max_rate:30.;
    ]
  in
  let result = Flexible.greedy (fabric1 ()) Policy.Min_rate reqs in
  (* id1 (MinRate 30) goes first, then id0 (80): 30 + 80 > 100. *)
  Alcotest.(check (list int)) "smaller min rate wins" [ 1 ] (ids result)

let greedy_sigma_is_arrival () =
  let reqs = [ flex ~id:0 ~volume:100. ~ts:3. ~tf:13. ~max_rate:50. ] in
  let result = Flexible.greedy (fabric1 ()) Policy.Min_rate reqs in
  check_approx "sigma = ts" 3.0 (alloc_of result 0).Allocation.sigma

(* --- WINDOW (Algorithm 3, lookahead batching) --- *)

let window_keeps_arrival_start () =
  let reqs = [ flex ~id:0 ~volume:100. ~ts:3. ~tf:23. ~max_rate:100. ] in
  let result = Flexible.window (fabric1 ()) Policy.Min_rate ~step:10. reqs in
  let a = alloc_of result 0 in
  check_approx "sigma = ts despite batching" 3.0 a.Allocation.sigma;
  check_approx "MinRate from the original window" 5.0 a.Allocation.bw;
  Alcotest.(check bool) "meets deadline" true (Allocation.meets_deadline a)

(* Three same-instant candidates, capacity 100: the two cheapest are
   admitted (30 + 50), the 60 MB/s one trips the cost > 1 cut. *)
let window_packs_by_cost () =
  let mk id volume = flex ~id ~volume ~ts:0. ~tf:10. ~max_rate:(volume /. 10.) in
  let reqs = [ mk 0 600.; mk 1 500.; mk 2 300. ] in
  let result = Flexible.window (fabric1 ()) Policy.Min_rate ~step:100. reqs in
  Alcotest.(check (list int)) "cheapest two admitted" [ 1; 2 ] (ids result);
  match Types.decision_of result 0 with
  | Some (Types.Rejected Types.Port_saturated) -> ()
  | _ -> Alcotest.fail "expected Port_saturated for the expensive candidate"

(* Lookahead beats arrival order: greedy locks in the 90 MB/s hog that
   arrives first, WINDOW sees the whole batch and picks the two 50s. *)
let window_knowledge_beats_greedy () =
  let mk id bw ts = flex ~id ~volume:(bw *. 100.) ~ts ~tf:(ts +. 100.) ~max_rate:bw in
  let reqs = [ mk 0 90. 0.; mk 1 50. 1.; mk 2 50. 2. ] in
  let greedy = Flexible.greedy (fabric1 ()) Policy.Min_rate reqs in
  Alcotest.(check (list int)) "greedy keeps the hog" [ 0 ] (ids greedy);
  let window = Flexible.window (fabric1 ()) Policy.Min_rate ~step:10. reqs in
  Alcotest.(check (list int)) "window picks the pair" [ 1; 2 ] (ids window)

(* A candidate can be instantaneously cheap at its own start yet collide
   with a reservation spike later in its transmission interval; it must be
   rejected alone, without tripping the batch-wide cut. *)
let window_spike_rejected_alone () =
  let ra = flex ~id:0 ~volume:250. ~ts:2. ~tf:7. ~max_rate:50. in
  (* [2,7) at 50 *)
  let rb = flex ~id:1 ~volume:600. ~ts:0. ~tf:10. ~max_rate:60. in
  (* [0,10) at 60 *)
  let rc = flex ~id:2 ~volume:300. ~ts:0. ~tf:10. ~max_rate:30. in
  (* [0,10) at 30 *)
  let result = Flexible.window (fabric1 ()) Policy.Min_rate ~step:100. [ ra; rb; rc ] in
  (* Cost order: rc (0.3) -> accepted; ra (0.8 at t=2 over the 30 base) ->
     accepted, usage on [2,7) is 80; rb (cost 0.9 at t=0, <= 1) collides
     with the spike and is rejected alone. *)
  Alcotest.(check (list int)) "spike rejection" [ 0; 2 ] (ids result);
  match Types.decision_of result 1 with
  | Some (Types.Rejected Types.Port_saturated) -> ()
  | _ -> Alcotest.fail "expected Port_saturated for the spiked candidate"

let window_never_expires_windows () =
  (* Even a request whose whole window is shorter than the step is fine:
     it keeps its own start time. *)
  let reqs = [ flex ~id:0 ~volume:50. ~ts:1. ~tf:2. ~max_rate:50. ] in
  let result = Flexible.window (fabric1 ()) Policy.Min_rate ~step:400. reqs in
  Alcotest.(check (list int)) "accepted at its own start" [ 0 ] (ids result)

let window_bad_step () =
  match Flexible.window (fabric1 ()) Policy.Min_rate ~step:0. [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero step accepted"

(* --- WINDOW-DEFERRED (ablation variant) --- *)

let deferred_defers_to_interval_end () =
  let reqs = [ flex ~id:0 ~volume:100. ~ts:1. ~tf:21. ~max_rate:100. ] in
  let result = Flexible.window_deferred (fabric1 ()) Policy.Min_rate ~step:10. reqs in
  let a = alloc_of result 0 in
  check_approx "decided at interval end" 10.0 a.Allocation.sigma;
  (* Residual window is 11 s for 100 MB. *)
  check_approx "deadline-aware min rate" (100. /. 11.) a.Allocation.bw;
  Alcotest.(check bool) "meets deadline" true (Allocation.meets_deadline a)

let deferred_rejects_expired_window () =
  let reqs = [ flex ~id:0 ~volume:50. ~ts:1. ~tf:2. ~max_rate:50. ] in
  let result = Flexible.window_deferred (fabric1 ()) Policy.Min_rate ~step:10. reqs in
  match Types.decision_of result 0 with
  | Some (Types.Rejected Types.Deadline_unreachable) -> ()
  | _ -> Alcotest.fail "expected Deadline_unreachable"

let deferred_releases_at_boundaries () =
  let reqs =
    [
      (* Decided at t=10, f=1 gives 100 MB/s: runs [10, 15). *)
      flex ~id:0 ~volume:500. ~ts:0. ~tf:30. ~max_rate:100.;
      (* Arrives in [10, 20), decided at t=20, after the release. *)
      flex ~id:1 ~volume:500. ~ts:12. ~tf:40. ~max_rate:100.;
    ]
  in
  let result =
    Flexible.window_deferred (fabric1 ()) (Policy.Fraction_of_max 1.0) ~step:10. reqs
  in
  Alcotest.(check (list int)) "both admitted across boundaries" [ 0; 1 ] (ids result);
  check_approx "second starts at its boundary" 20.0 (alloc_of result 1).Allocation.sigma

let window_dominates_deferred () =
  (* Lookahead never pays the delay/expiry tax, so on a common random
     workload it should accept at least as many requests here. *)
  let spec =
    Spec.make ~fabric:(fabric2 ()) ~volumes:(Spec.Uniform_volume { lo = 100.; hi = 2000. })
      ~rate_lo:5. ~rate_hi:100. ~count:150 ~mean_interarrival:1. ()
  in
  let reqs = Gen.generate (Rng.create ~seed:4L ()) spec in
  let lookahead = Flexible.window (fabric2 ()) Policy.Min_rate ~step:20. reqs in
  let deferred = Flexible.window_deferred (fabric2 ()) Policy.Min_rate ~step:20. reqs in
  Alcotest.(check bool) "lookahead >= deferred" true
    (List.length lookahead.Types.accepted >= List.length deferred.Types.accepted)

let policies =
  [ Policy.Min_rate; Policy.Fraction_of_max 0.5; Policy.Fraction_of_max 0.8;
    Policy.Fraction_of_max 1.0 ]

let random_flexible seed n =
  let spec =
    Spec.make ~fabric:(fabric2 ()) ~volumes:(Spec.Uniform_volume { lo = 50.; hi = 2000. })
      ~rate_lo:5. ~rate_hi:100. ~count:n ~mean_interarrival:2. ()
  in
  Gen.generate (Rng.create ~seed ()) spec

(* --- BOOK-AHEAD (advance reservations, section 6 contrast) --- *)

let book_ahead_early_booker_wins () =
  (* Two conflicting requests; the later-starting one books 10 s ahead and
     claims the future capacity first. *)
  let r0 = flex ~id:0 ~volume:500. ~ts:5. ~tf:10. ~max_rate:100. in
  let r1 = flex ~id:1 ~volume:500. ~ts:6. ~tf:11. ~max_rate:100. in
  let announce (r : Request.t) = if r.id = 1 then 10.0 else 0.0 in
  let result =
    Flexible.book_ahead (fabric1 ()) (Policy.Fraction_of_max 1.0) ~announce [ r0; r1 ]
  in
  Alcotest.(check (list int)) "the booker wins" [ 1 ] (ids result);
  (* Without booking, arrival order favours r0. *)
  let no_lead = Flexible.book_ahead (fabric1 ()) (Policy.Fraction_of_max 1.0)
      ~announce:(fun _ -> 0.) [ r0; r1 ] in
  Alcotest.(check (list int)) "walk-in order favours the early starter" [ 0 ] (ids no_lead)

let book_ahead_constant_lead_matches_zero_lead () =
  let reqs = random_flexible 21L 60 in
  let a = Flexible.book_ahead (fabric2 ()) Policy.Min_rate ~announce:(fun _ -> 0.) reqs in
  let b = Flexible.book_ahead (fabric2 ()) Policy.Min_rate ~announce:(fun _ -> 50.) reqs in
  Alcotest.(check (list int)) "constant lead preserves order and outcome" (ids a) (ids b)

let book_ahead_feasible () =
  let reqs = random_flexible 22L 80 in
  let rng = Rng.create ~seed:5L () in
  let leads = Hashtbl.create 64 in
  List.iter (fun (r : Request.t) -> Hashtbl.replace leads r.id (Rng.float rng 100.)) reqs;
  let result =
    Flexible.book_ahead (fabric2 ()) (Policy.Fraction_of_max 0.9)
      ~announce:(fun r -> Hashtbl.find leads r.Request.id)
      reqs
  in
  Alcotest.(check bool) "consistent" true (Types.is_consistent result);
  Alcotest.(check bool) "feasible" true (Summary.all_feasible (fabric2 ()) result.Types.accepted)

let book_ahead_negative_lead_rejected () =
  let reqs = [ flex ~id:0 ~volume:10. ~ts:0. ~tf:10. ~max_rate:10. ] in
  match Flexible.book_ahead (fabric1 ()) Policy.Min_rate ~announce:(fun _ -> -1.) reqs with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative lead accepted"

(* --- properties over random workloads --- *)

let feasible_and_consistent () =
  let fabric = fabric2 () in
  List.iter
    (fun seed ->
      let reqs = random_flexible seed 80 in
      List.iter
        (fun policy ->
          List.iter
            (fun kind ->
              let result = Flexible.run kind fabric policy reqs in
              let name = Flexible.heuristic_name kind ^ "/" ^ Policy.name policy in
              Alcotest.(check bool) (name ^ " consistent") true (Types.is_consistent result);
              Alcotest.(check bool) (name ^ " feasible") true
                (Summary.all_feasible fabric result.Types.accepted))
            [ `Greedy; `Window 5.0; `Window 40.0; `Window_deferred 5.0; `Window_deferred 40.0 ])
        policies)
    [ 11L; 12L; 13L ]

let accepted_meet_deadlines () =
  let reqs = random_flexible 99L 120 in
  List.iter
    (fun kind ->
      let result = Flexible.run kind (fabric2 ()) Policy.Min_rate reqs in
      List.iter
        (fun a ->
          if not (Allocation.meets_deadline a) then
            Alcotest.failf "%s: allocation for %d misses its deadline"
              (Flexible.heuristic_name kind) a.Allocation.request.Request.id)
        result.Types.accepted)
    [ `Greedy; `Window 7.0; `Window_deferred 7.0 ]

let deterministic () =
  let reqs = random_flexible 5L 60 in
  List.iter
    (fun kind ->
      let a = Flexible.run kind (fabric2 ()) (Policy.Fraction_of_max 0.8) reqs in
      let b = Flexible.run kind (fabric2 ()) (Policy.Fraction_of_max 0.8) reqs in
      Alcotest.(check (list int)) (Flexible.heuristic_name kind ^ " deterministic") (ids a) (ids b))
    [ `Greedy; `Window 10.0; `Window_deferred 10.0 ]

(* --- Online controller --- *)

let online_time_monotone () =
  let ctl = Online.create (fabric1 ()) in
  Online.advance_to ctl 5.0;
  match Online.advance_to ctl 4.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "time moved backwards"

let online_clamps_rounding_dust () =
  (* Timestamps an epsilon in the past (float dust from upstream arithmetic)
     are clamped to the clock instead of raising; genuinely past times
     still raise (previous test). *)
  let ctl = Online.create (fabric1 ()) in
  Online.advance_to ctl 5.0;
  Online.advance_to ctl (5.0 -. 1e-12);
  check_approx "clock unchanged" 5.0 (Online.now ctl);
  let r = flex ~id:0 ~volume:100. ~ts:0. ~tf:10. ~max_rate:100. in
  match Online.try_admit ctl (Policy.Fraction_of_max 1.0) r ~at:(5.0 -. 1e-12) with
  | Types.Accepted a -> check_approx "admitted at the clamped clock" 5.0 a.Allocation.sigma
  | Types.Rejected _ -> Alcotest.fail "admission failed"

let online_active_count () =
  let ctl = Online.create (fabric1 ()) in
  let r = flex ~id:0 ~volume:100. ~ts:0. ~tf:10. ~max_rate:100. in
  (match Online.try_admit ctl (Policy.Fraction_of_max 1.0) r ~at:0.0 with
  | Types.Accepted _ -> ()
  | Types.Rejected _ -> Alcotest.fail "admission failed");
  Alcotest.(check int) "one active" 1 (Online.active_count ctl);
  check_approx "port used" 100.0 (Online.used ctl (Port.Ingress 0));
  Online.advance_to ctl 1.0;
  (* Transfer finishes at t = 1 (100 MB at 100 MB/s). *)
  Alcotest.(check int) "released" 0 (Online.active_count ctl);
  check_approx "port free" 0.0 (Online.used ctl (Port.Egress 0))

let online_peek_does_not_mutate () =
  let ctl = Online.create (fabric1 ()) in
  let r = flex ~id:0 ~volume:100. ~ts:0. ~tf:10. ~max_rate:100. in
  (match Online.peek_cost ctl Policy.Min_rate r ~at:0.0 with
  | Some (bw, cost) ->
      check_approx "peeked bw" 10.0 bw;
      check_approx "peeked cost" 0.1 cost
  | None -> Alcotest.fail "expected a cost");
  check_approx "nothing grabbed" 0.0 (Online.used ctl (Port.Ingress 0));
  Alcotest.(check int) "nothing active" 0 (Online.active_count ctl)

let suites =
  [
    ( "flexible-greedy",
      [
        case "min rate packs more than max rate" minrate_packs_more;
        case "release precedes same-instant admission" release_before_admission;
        case "f=1 frees the port sooner (heavy-load inversion)" full_rate_frees_port_sooner;
        case "arrival tie: smaller MinRate first" greedy_arrival_tie_smaller_minrate_first;
        case "sigma equals arrival time" greedy_sigma_is_arrival;
      ] );
    ( "flexible-window",
      [
        case "batching keeps each arrival start" window_keeps_arrival_start;
        case "packs candidates by saturation cost" window_packs_by_cost;
        case "lookahead beats arrival order" window_knowledge_beats_greedy;
        case "reservation spike rejected alone" window_spike_rejected_alone;
        case "short windows never expire" window_never_expires_windows;
        case "rejects bad step" window_bad_step;
      ] );
    ( "flexible-window-deferred",
      [
        case "defers decision to interval end" deferred_defers_to_interval_end;
        case "rejects expired window" deferred_rejects_expired_window;
        case "releases at boundaries" deferred_releases_at_boundaries;
        case "lookahead dominates deferred" window_dominates_deferred;
      ] );
    ( "book-ahead",
      [
        case "early booker displaces the walk-in" book_ahead_early_booker_wins;
        case "constant lead is order-preserving" book_ahead_constant_lead_matches_zero_lead;
        case "feasible and consistent" book_ahead_feasible;
        case "negative lead rejected" book_ahead_negative_lead_rejected;
      ] );
    ( "flexible-properties",
      [
        case "feasible and consistent across policies" feasible_and_consistent;
        case "accepted requests meet deadlines" accepted_meet_deadlines;
        case "determinism" deterministic;
      ] );
    ( "online",
      [
        case "time is monotone" online_time_monotone;
        case "rounding dust is clamped" online_clamps_rounding_dust;
        case "active count follows releases" online_active_count;
        case "peek_cost does not mutate" online_peek_does_not_mutate;
      ] );
  ]
