(* The sharded multicore engine (lib/shard).

   Three layers of evidence, matching the design's linearizability
   argument (DESIGN section 13):

   - an interleaving explorer drives two mock shard cores through every
     schedule of two concurrent cross-shard admissions (reserve/reserve
     contention, reserve/abort, commit-after-peer-abort, duplicate
     delivery) and asserts the invariants schedule by schedule: capacity
     is never oversubscribed, and at quiescence no freeze, no parked
     message and no reservation survives;

   - a qcheck linearizability property runs random concurrent
     admit/cancel histories on 2-4 shards under real coordinator
     threads, then replays the recorded history in ticket order on a
     fresh single-shard [Online] ledger and demands bit-identical
     decisions and port counters;

   - seeded section-5.3 workloads pin [--shards 1] to the unsharded
     engine decision-for-decision, and a journal written by a sharded
     run recovers onto a different shard count ([of_events]
     re-partitioning) with identical state and identical future
     decisions. *)

module Rng = Gridbw_prng.Rng
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Port = Gridbw_alloc.Port
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Online = Gridbw_core.Online
module Scenario = Gridbw_check.Scenario
module Store = Gridbw_store.Store
module Partition = Gridbw_shard.Partition
module Mailbox = Gridbw_shard.Mailbox
module Sequencer = Gridbw_shard.Sequencer
module Core = Gridbw_shard.Core
module Engine = Gridbw_shard.Engine
open Helpers

(* ------------------------------------------------------------------ *)
(* partition and plumbing units                                        *)

let partition_basics () =
  let p = Partition.make ~shards:3 in
  Alcotest.(check int) "ingress mod" 1 (Partition.of_ingress p 7);
  Alcotest.(check int) "egress mod" 2 (Partition.of_egress p 5);
  (match Partition.involved p ~ingress:7 ~egress:5 with
  | lo, Some hi ->
      Alcotest.(check int) "lo" 1 lo;
      Alcotest.(check int) "hi" 2 hi
  | _ -> Alcotest.fail "expected two shards");
  (match Partition.involved p ~ingress:5 ~egress:8 with
  | lo, None -> Alcotest.(check int) "collapsed" 2 lo
  | _ -> Alcotest.fail "expected one shard");
  (* ascending regardless of which side hashes lower *)
  (match Partition.involved p ~ingress:2 ~egress:0 with
  | lo, Some hi -> Alcotest.(check bool) "ascending" true (lo < hi)
  | _ -> Alcotest.fail "expected two shards");
  Alcotest.check_raises "shards >= 1" (Invalid_argument "Partition.make: shards must be >= 1")
    (fun () -> ignore (Partition.make ~shards:0))

let mailbox_fifo () =
  let b = Mailbox.create () in
  Mailbox.send b 1;
  Mailbox.send b 2;
  Mailbox.send b 3;
  Alcotest.(check int) "length" 3 (Mailbox.length b);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Mailbox.recv b);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Mailbox.recv b);
  Mailbox.close b;
  Alcotest.(check (option int)) "drains after close" (Some 3) (Mailbox.recv b);
  Alcotest.(check (option int)) "closed and empty" None (Mailbox.recv b);
  Alcotest.check_raises "send after close" (Invalid_argument "Mailbox.send: closed")
    (fun () -> Mailbox.send b 4)

let sequencer_ratchet () =
  let s = Sequencer.create () in
  let t0, at0 = Sequencer.next s ~ts:5.0 in
  let t1, at1 = Sequencer.next s ~ts:2.0 in
  let t2, at2 = Sequencer.next s ~ts:9.0 in
  Alcotest.(check (list int)) "tickets" [ 0; 1; 2 ] [ t0; t1; t2 ];
  Alcotest.(check (list (float 0.))) "clock ratchet: at monotone, never rewinds"
    [ 5.0; 5.0; 9.0 ] [ at0; at1; at2 ]

(* ------------------------------------------------------------------ *)
(* interleaving explorer                                               *)
(*                                                                     *)
(* Two coordinators run the two-phase protocol against two inline      *)
(* cores.  Each coordinator is a five-step state machine (freeze s0,   *)
(* freeze s1, probe s0, probe s1, decide+commit/abort); the explorer   *)
(* enumerates every interleaving of the two step streams.  A           *)
(* coordinator whose freeze got parked simply cannot progress until    *)
(* the peer resolves and the core pumps its continuation - exactly     *)
(* the blocking a real mailbox rpc would do.                           *)

type coord = {
  creq : Request.t;
  cbw : float;
  mutable pc : int;
  mutable pending : Core.reply option ref;  (* reply slot of the outstanding rpc *)
  mutable fits : bool * bool;
  mutable accepted : Allocation.t option;
}

let mk_coord ~op_base:_ ~id ~bw =
  let r = req ~id ~ingress:0 ~egress:1 ~volume:(bw *. 10.) ~ts:0. ~tf:10. ~max_rate:bw () in
  { creq = r; cbw = bw; pc = 0; pending = ref (Some (Core.Done { op = -1 })); fits = (false, false); accepted = None }

(* one protocol step; returns false when blocked (parked freeze) or done *)
let coord_step cores ~op c =
  if c.pc >= 5 then false
  else if !(c.pending) = None then false (* rpc outstanding: parked *)
  else begin
    let send s msg_of =
      let slot = ref None in
      c.pending <- slot;
      Core.handle cores.(s) (msg_of (fun r -> slot := Some r))
    in
    (match c.pc with
    | 0 -> send 0 (fun k -> Core.Freeze { op; k })
    | 1 -> send 1 (fun k -> Core.Freeze { op; k })
    | 2 ->
        send 0 (fun k -> Core.Probe { op; at = 0.; r = c.creq; bw = Some c.cbw; k });
        (match !(c.pending) with
        | Some (Core.Probed { ing = Some (ok, _); _ }) -> c.fits <- (ok, snd c.fits)
        | _ -> Alcotest.fail "shard 0 must probe the ingress side")
    | 3 ->
        send 1 (fun k -> Core.Probe { op; at = 0.; r = c.creq; bw = Some c.cbw; k });
        (match !(c.pending) with
        | Some (Core.Probed { egr = Some (ok, _); _ }) -> c.fits <- (fst c.fits, ok)
        | _ -> Alcotest.fail "shard 1 must probe the egress side")
    | 4 ->
        if fst c.fits && snd c.fits then begin
          let a = Allocation.make ~request:c.creq ~bw:c.cbw ~sigma:0. in
          c.accepted <- Some a;
          Core.handle cores.(0) (Core.Commit { op; a; k = ignore });
          Core.handle cores.(1) (Core.Commit { op; a; k = ignore })
        end
        else begin
          Core.handle cores.(0) (Core.Abort { op; k = ignore });
          Core.handle cores.(1) (Core.Abort { op; k = ignore })
        end
    | _ -> assert false);
    c.pc <- c.pc + 1;
    true
  end

(* all interleavings of a steps for coordinator 0 and b steps for 1 *)
let rec schedules a b =
  if a = 0 then [ List.init b (fun _ -> 1) ]
  else if b = 0 then [ List.init a (fun _ -> 0) ]
  else
    List.map (fun s -> 0 :: s) (schedules (a - 1) b)
    @ List.map (fun s -> 1 :: s) (schedules a (b - 1))

let cap = 100.0

let run_schedule ~bw0 ~bw1 sched =
  let fabric = fabric2 () in
  let partition = Partition.make ~shards:2 in
  let cores =
    [| Core.create ~track_duplicates:true ~shard:0 ~partition fabric;
       Core.create ~track_duplicates:true ~shard:1 ~partition fabric |]
  in
  let c0 = mk_coord ~op_base:0 ~id:100 ~bw:bw0 in
  let c1 = mk_coord ~op_base:1 ~id:101 ~bw:bw1 in
  let step = function 0 -> ignore (coord_step cores ~op:0 c0) | _ -> ignore (coord_step cores ~op:1 c1) in
  let invariants () =
    Array.iter
      (fun core ->
        let u0 = Core.ingress_used core 0 and u1 = Core.egress_used core 1 in
        if u0 > cap +. 1e-9 || u1 > cap +. 1e-9 then
          Alcotest.failf "oversubscribed mid-schedule: ing0=%g egr1=%g" u0 u1)
      cores
  in
  List.iter (fun who -> step who; invariants ()) sched;
  (* drain: alternate until neither can progress *)
  let rec drain n =
    if n > 0 then begin
      let p0 = coord_step cores ~op:0 c0 in
      invariants ();
      let p1 = coord_step cores ~op:1 c1 in
      invariants ();
      if p0 || p1 then drain (n - 1)
    end
  in
  drain 32;
  (cores, c0, c1)

let quiescent cores =
  Array.iter
    (fun core ->
      (match Core.frozen core with
      | None -> ()
      | Some op -> Alcotest.failf "shard %d still frozen by op %d" (Core.shard core) op);
      Alcotest.(check int)
        (Printf.sprintf "shard %d parked empty" (Core.shard core))
        0 (Core.parked_count core))
    cores

let explorer_reserve_reserve () =
  (* 60 + 60 > 100: under every interleaving exactly one wins, the loser
     aborts cleanly, and nothing leaks. *)
  let scheds = schedules 5 5 in
  Alcotest.(check int) "explorer enumerates C(10,5) schedules" 252 (List.length scheds);
  List.iter
    (fun sched ->
      let cores, c0, c1 = run_schedule ~bw0:60. ~bw1:60. sched in
      quiescent cores;
      let winners = List.filter_map (fun c -> c.accepted) [ c0; c1 ] in
      Alcotest.(check int) "exactly one admission wins" 1 (List.length winners);
      Alcotest.(check (float 0.)) "ingress counter = winner's grant" 60. (Core.ingress_used cores.(0) 0);
      Alcotest.(check (float 0.)) "egress counter = winner's grant" 60. (Core.egress_used cores.(1) 1);
      Alcotest.(check int) "one booking on each side" 1 (List.length (Core.booked_ids cores.(0)));
      Alcotest.(check int) "one booking on each side" 1 (List.length (Core.booked_ids cores.(1))))
    scheds

let explorer_reserve_abort () =
  (* both oversized: every interleaving ends with two aborts and a
     completely clean fabric - the reserve phase mutates nothing. *)
  List.iter
    (fun sched ->
      let cores, c0, c1 = run_schedule ~bw0:150. ~bw1:120. sched in
      quiescent cores;
      Alcotest.(check bool) "no winner" true (c0.accepted = None && c1.accepted = None);
      Alcotest.(check (float 0.)) "ingress untouched" 0. (Core.ingress_used cores.(0) 0);
      Alcotest.(check (float 0.)) "egress untouched" 0. (Core.egress_used cores.(1) 1);
      Array.iter
        (fun core -> Alcotest.(check (list int)) "no reservation survives" [] (Core.booked_ids core))
        cores)
    (schedules 5 5)

let explorer_mixed () =
  (* 80 + 30: whoever sequences first wins; the other fits only if the
     winner was the small one.  Either way the counters equal the sum of
     the committed grants and never exceed capacity. *)
  List.iter
    (fun sched ->
      let cores, c0, c1 = run_schedule ~bw0:80. ~bw1:30. sched in
      quiescent cores;
      let total = List.fold_left (fun acc c -> match c.accepted with Some a -> acc +. a.Allocation.bw | None -> acc) 0. [ c0; c1 ] in
      Alcotest.(check (float 0.)) "ingress = sum of committed grants" total (Core.ingress_used cores.(0) 0);
      Alcotest.(check (float 0.)) "egress = sum of committed grants" total (Core.egress_used cores.(1) 1);
      Alcotest.(check bool) "at least one wins" true (total > 0.))
    (schedules 5 5)

let duplicate_delivery () =
  let fabric = fabric2 () in
  let partition = Partition.make ~shards:2 in
  let core = Core.create ~track_duplicates:true ~shard:0 ~partition fabric in
  let r = req ~id:7 ~ingress:0 ~egress:1 ~volume:500. ~ts:0. ~tf:10. ~max_rate:50. () in
  let a = Allocation.make ~request:r ~bw:50. ~sigma:0. in
  let got = ref [] in
  let k tag = fun reply -> got := (tag, reply) :: !got in
  Core.handle core (Core.Freeze { op = 0; k = k "f" });
  Core.handle core (Core.Freeze { op = 0; k = k "f-dup" });  (* duplicate while frozen: re-acked *)
  Core.handle core (Core.Commit { op = 0; a; k = k "c" });
  let used = Core.ingress_used core 0 in
  Alcotest.(check (float 0.)) "committed once" 50. used;
  (* duplicate deliveries of a resolved op are acknowledged, never re-applied *)
  Core.handle core (Core.Commit { op = 0; a; k = k "c-dup" });
  Core.handle core (Core.Freeze { op = 0; k = k "f-late" });
  Core.handle core (Core.Abort { op = 0; k = k "a-late" });
  Alcotest.(check (float 0.)) "duplicates are no-ops" used (Core.ingress_used core 0);
  Alcotest.(check (option int)) "not re-frozen by late duplicate" None (Core.frozen core);
  let dones = List.filter (fun (_, r) -> match r with Core.Done _ -> true | _ -> false) !got in
  (* the real commit resolves with Done, and so do all three duplicates *)
  Alcotest.(check int) "every duplicate acked Done" 4 (List.length dones)

let commit_after_peer_abort () =
  (* op 0 reserves both shards, the coordinator decides to abort; a stray
     duplicate Commit arriving after the abort must not book anything. *)
  let fabric = fabric2 () in
  let partition = Partition.make ~shards:2 in
  let cores =
    [| Core.create ~track_duplicates:true ~shard:0 ~partition fabric;
       Core.create ~track_duplicates:true ~shard:1 ~partition fabric |]
  in
  let r = req ~id:9 ~ingress:0 ~egress:1 ~volume:400. ~ts:0. ~tf:10. ~max_rate:40. () in
  let a = Allocation.make ~request:r ~bw:40. ~sigma:0. in
  Array.iter (fun c -> Core.handle c (Core.Freeze { op = 3; k = ignore })) cores;
  Core.handle cores.(0) (Core.Abort { op = 3; k = ignore });
  (* shard 1's abort is delayed; meanwhile a duplicated commit hits shard 0 *)
  Core.handle cores.(0) (Core.Commit { op = 3; a; k = ignore });
  Core.handle cores.(1) (Core.Abort { op = 3; k = ignore });
  Core.handle cores.(1) (Core.Commit { op = 3; a; k = ignore });
  quiescent cores;
  Alcotest.(check (float 0.)) "commit after abort books nothing (ing)" 0. (Core.ingress_used cores.(0) 0);
  Alcotest.(check (float 0.)) "commit after abort books nothing (egr)" 0. (Core.egress_used cores.(1) 1);
  Array.iter (fun c -> Alcotest.(check (list int)) "no booking" [] (Core.booked_ids c)) cores

let protocol_violation_raises () =
  let fabric = fabric2 () in
  let partition = Partition.make ~shards:1 in
  let core = Core.create ~shard:0 ~partition fabric in
  let r = req ~id:1 () in
  Alcotest.check_raises "probe without freeze"
    (Invalid_argument "Shard.Core: probe for op 5 without freeze") (fun () ->
      Core.handle core (Core.Probe { op = 5; at = 0.; r; bw = Some 10.; k = ignore }))

(* ------------------------------------------------------------------ *)
(* linearizability: concurrent histories replay on the single ledger   *)

let check_same_decision ~i expected actual =
  match (expected, actual) with
  | Types.Accepted a, Types.Accepted b ->
      if not (a.Allocation.bw = b.Allocation.bw && a.Allocation.sigma = b.Allocation.sigma
              && a.Allocation.tau = b.Allocation.tau) then
        Alcotest.failf "op %d: accepted allocations differ (bw %.17g vs %.17g, sigma %.17g vs %.17g)"
          i a.Allocation.bw b.Allocation.bw a.Allocation.sigma b.Allocation.sigma
  | Types.Rejected x, Types.Rejected y ->
      if x <> y then Alcotest.failf "op %d: rejection reasons differ" i
  | Types.Accepted _, Types.Rejected _ -> Alcotest.failf "op %d: engine accepted, replay rejected" i
  | Types.Rejected _, Types.Accepted _ -> Alcotest.failf "op %d: engine rejected, replay accepted" i

(* Replay a recorded history in ticket order on a fresh unsharded ledger
   and demand bit-identical decisions; returns the ledger for counter
   comparison. *)
let replay_history ~policy ~fabric history =
  let online = Online.create fabric in
  let booked = Hashtbl.create 64 in
  List.iteri
    (fun i (h : Engine.hist_entry) ->
      match h.Engine.op with
      | Engine.H_admit r -> (
          let d = Online.try_admit online policy r ~at:h.Engine.at in
          (match h.Engine.ok with
          | Some expected -> check_same_decision ~i expected d
          | None -> Alcotest.failf "op %d: admit without recorded decision" i);
          match d with
          | Types.Accepted a -> Hashtbl.replace booked r.Request.id a
          | Types.Rejected _ -> ())
      | Engine.H_cancel { id; _ } ->
          Online.advance_to online h.Engine.at;
          let cancelled =
            match Hashtbl.find_opt booked id with
            | Some a -> Online.preempt online a
            | None -> false
          in
          let expected = h.Engine.ok <> None in
          if cancelled <> expected then
            Alcotest.failf "op %d: cancel of %d %s on replay but %s on the sharded run" i id
              (if cancelled then "succeeded" else "failed")
              (if expected then "succeeded" else "failed"))
    history;
  online

let compare_counters ~fabric engine online =
  for i = 0 to Fabric.ingress_count fabric - 1 do
    let sharded = Engine.ingress_used engine i and ledger = Online.used online (Port.ingress i) in
    if sharded <> ledger then
      Alcotest.failf "ingress %d: sharded %.17g <> replay %.17g" i sharded ledger
  done;
  for e = 0 to Fabric.egress_count fabric - 1 do
    let sharded = Engine.egress_used engine e and ledger = Online.used online (Port.egress e) in
    if sharded <> ledger then
      Alcotest.failf "egress %d: sharded %.17g <> replay %.17g" e sharded ledger
  done

let lin_gen =
  QCheck2.Gen.(
    tup4 seed_gen (int_range 2 4) (int_range 2 3) (int_range 10 40))

let prop_linearizable (seed, shards, nthreads, nreqs) =
  let fabric = Fabric.uniform ~ingress_count:4 ~egress_count:4 ~capacity:120. in
  let policy = Policy.Fraction_of_max 0.5 in
  let engine = Engine.create ~record:true ~shards policy fabric in
  Fun.protect ~finally:(fun () -> Engine.stop engine) @@ fun () ->
  let worker w () =
    let rng = Rng.create ~seed:(Int64.of_int ((seed * 31) + w)) () in
    let mine = ref [] in
    for j = 0 to nreqs - 1 do
      let id = (w * 10_000) + j in
      let r = Scenario.random_request rng fabric ~hot:0.5 ~id () in
      (match Engine.try_admit engine r with
      | Types.Accepted a -> mine := a :: !mine
      | Types.Rejected _ -> ());
      (* cancel-heavy: about a third of my accepted transfers get pulled *)
      if Rng.float rng 1.0 < 0.33 then
        match !mine with
        | a :: rest ->
            ignore (Engine.cancel engine a);
            mine := rest
        | [] -> ()
    done
  in
  let threads = List.init nthreads (fun w -> Thread.create (worker w) ()) in
  List.iter Thread.join threads;
  let history = Engine.history engine in
  (* tickets are a permutation 0..n-1: every operation sequenced exactly once *)
  List.iteri
    (fun i (h : Engine.hist_entry) ->
      if h.Engine.ticket <> i then Alcotest.failf "history has a ticket gap at %d" i)
    history;
  let online = replay_history ~policy ~fabric history in
  (* bring both sides to the same global instant: shards no late
     operation touched still hold releases the replay ledger drained *)
  Online.advance_to online (Engine.now engine);
  Engine.settle engine;
  compare_counters ~fabric engine online;
  Alcotest.(check int)
    "active transfers match the replayed ledger"
    (Online.active_count online) (Engine.active_count engine);
  true

(* ------------------------------------------------------------------ *)
(* shards=1 parity with the unsharded engine on section 5.3 workloads  *)

let prop_shards1_parity seed =
  let requests = workload_of_seed ~n:60 seed in
  let fabric = fabric2 () in
  let policy = Policy.Min_rate in
  let engine = Engine.create ~spawn:false ~shards:1 policy fabric in
  let online = Online.create fabric in
  List.iteri
    (fun i r ->
      let at = Float.max (Online.now online) r.Request.ts in
      let expected = Online.try_admit online policy r ~at in
      let actual = Engine.try_admit engine r in
      check_same_decision ~i expected actual)
    requests;
  compare_counters ~fabric engine online;
  Alcotest.(check (float 0.)) "clocks agree" (Online.now online) (Engine.now engine);
  true

(* ------------------------------------------------------------------ *)
(* recovery: a sharded journal re-partitions onto a new shard count    *)

let with_tmpdir f =
  let dir = Filename.temp_file "gridbw_shard" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let recovery_repartitions () =
  with_tmpdir @@ fun dir ->
  let fabric = Fabric.uniform ~ingress_count:4 ~egress_count:4 ~capacity:120. in
  let policy = Policy.Fraction_of_max 0.5 in
  let store = Store.create ~dir fabric in
  let engine = Engine.create ~journal:store ~spawn:false ~shards:2 policy fabric in
  let rng = rng ~seed:11L () in
  let accepted = ref [] in
  for id = 0 to 79 do
    let r = Scenario.random_request rng fabric ~hot:0.4 ~id () in
    (match Engine.try_admit engine r with
    | Types.Accepted a -> accepted := a :: !accepted
    | Types.Rejected _ -> ());
    if id mod 7 = 3 then
      match !accepted with
      | a :: rest ->
          ignore (Engine.cancel engine a);
          accepted := rest
      | [] -> ()
  done;
  Engine.flush engine;
  (* freeze the live run's observable state before closing its journal *)
  let live_ing = Array.init 4 (Engine.ingress_used engine) in
  let live_egr = Array.init 4 (Engine.egress_used engine) in
  let live_active = Engine.active_count engine in
  let live_now = Engine.now engine in
  Store.close store;
  let recovered =
    match Store.recover ~dir () with Ok r -> r | Error e -> Alcotest.failf "recover: %s" e
  in
  (* rebuild on the original count and on a re-partitioned one: the
     per-port replay must land every counter and every booking on its
     owner bit-identically in both *)
  let rebuild shards =
    match
      Engine.of_events ~spawn:false ~shards ~policy ~fabric:recovered.Store.initial_fabric
        recovered.Store.events
    with
    | Ok e -> e
    | Error e -> Alcotest.failf "of_events shards=%d: %s" shards e
  in
  let e2 = rebuild 2 and e3 = rebuild 3 in
  List.iter
    (fun (label, e) ->
      for i = 0 to Fabric.ingress_count fabric - 1 do
        if Engine.ingress_used e i <> live_ing.(i) then
          Alcotest.failf "%s: ingress %d differs from the live run" label i
      done;
      for g = 0 to Fabric.egress_count fabric - 1 do
        if Engine.egress_used e g <> live_egr.(g) then
          Alcotest.failf "%s: egress %d differs from the live run" label g
      done;
      Alcotest.(check int) (label ^ ": active bookings survive") live_active (Engine.active_count e);
      Alcotest.(check (float 0.)) (label ^ ": clock restored") live_now (Engine.now e))
    [ ("same-count", e2); ("re-partitioned", e3) ];
  (* and the future is identical: the same tail of fresh requests decides
     the same on both recovered engines *)
  let tail = List.init 40 (fun j -> Scenario.random_request rng fabric ~hot:0.4 ~id:(100 + j) ()) in
  List.iteri
    (fun i r -> check_same_decision ~i (Engine.try_admit e2 r) (Engine.try_admit e3 r))
    tail;
  Store.close recovered.Store.store

let suites =
  [
    ( "shard.partition",
      [
        case "ports map by modulus; involved shards come out ascending" partition_basics;
        case "mailbox is FIFO, drains after close, refuses new sends" mailbox_fifo;
        case "sequencer tickets are dense and its clock only ratchets forward" sequencer_ratchet;
      ] );
    ( "shard.explorer",
      [
        case "reserve/reserve: every interleaving admits exactly one of two conflicting requests"
          explorer_reserve_reserve;
        case "reserve/abort: aborts mutate nothing under any interleaving" explorer_reserve_abort;
        case "mixed sizes: counters always equal the committed grants" explorer_mixed;
        case "duplicate delivery of freeze/commit/abort is acked but never re-applied"
          duplicate_delivery;
        case "a stray commit after the peer aborted books nothing" commit_after_peer_abort;
        case "probe without a freeze is a protocol violation" protocol_violation_raises;
      ] );
    ( "shard.linearizable",
      [
        qcase ~count:30 "concurrent admit/cancel histories replay bit-identically on one ledger"
          lin_gen prop_linearizable;
        qcase ~count:40 "--shards 1 matches the unsharded engine on section 5.3 workloads"
          seed_gen prop_shards1_parity;
        case "a 2-shard journal recovers onto 3 shards with identical state and future"
          recovery_repartitions;
      ] );
  ]
