(* Cross-module property tests: invariants that tie the libraries together
   on randomised inputs. *)

open Helpers
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Profile = Gridbw_alloc.Profile
module Trace = Gridbw_workload.Trace
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Summary = Gridbw_metrics.Summary
module Rigid = Gridbw_core.Rigid
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Maxmin = Gridbw_baseline.Maxmin
module Rng = Gridbw_prng.Rng

(* seed_gen / workload_of_seed come from Helpers (gridbw_testkit). *)

let prop_trace_roundtrip =
  qcase ~count:50 "trace: random workloads round-trip exactly" seed_gen (fun seed ->
      let reqs = workload_of_seed seed in
      let back = Trace.of_string (Trace.to_string reqs) in
      List.length back = List.length reqs
      && List.for_all2
           (fun (a : Request.t) (b : Request.t) ->
             a.id = b.id && a.ingress = b.ingress && a.egress = b.egress && a.volume = b.volume
             && a.ts = b.ts && a.tf = b.tf && a.max_rate = b.max_rate)
           reqs back)

let prop_profile_max_dominates_point =
  qcase ~count:100 "profile: max_over dominates usage_at interior points"
    QCheck2.Gen.(pair seed_gen (int_range 2 20))
    (fun (seed, n) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let p =
        List.fold_left
          (fun p _ ->
            let from_ = Rng.float_in rng 0. 50. in
            Profile.add p ~from_ ~until:(from_ +. Rng.float_in rng 0.5 10.) (Rng.float_in rng 1. 20.))
          Profile.empty (List.init n Fun.id)
      in
      let probe = Rng.float_in rng 0. 60. in
      Profile.max_over p ~from_:probe ~until:(probe +. 5.)
      >= Profile.usage_at p probe -. 1e-9)

let prop_scaled_utilization_dominates_raw =
  qcase ~count:30 "summary: B_scaled utilization >= raw utilization" seed_gen (fun seed ->
      let reqs = workload_of_seed seed in
      let result = Flexible.greedy (fabric2 ()) Policy.Min_rate reqs in
      let s = Summary.compute (fabric2 ()) ~all:reqs ~accepted:result.Types.accepted in
      s.Summary.utilization >= s.Summary.raw_utilization -. 1e-9)

let prop_policy_monotone_in_f =
  qcase ~count:100 "policy: granted rate is monotone in f"
    QCheck2.Gen.(triple seed_gen (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (seed, f1, f2) ->
      let lo = Float.min f1 f2 and hi = Float.max f1 f2 in
      let r = List.hd (workload_of_seed ~n:1 seed) in
      match
        ( Policy.assign (Policy.Fraction_of_max lo) r ~now:r.Request.ts,
          Policy.assign (Policy.Fraction_of_max hi) r ~now:r.Request.ts )
      with
      | Some a, Some b -> b >= a -. 1e-9
      | None, None -> true
      | _ -> false)

let prop_policy_within_bounds =
  qcase ~count:100 "policy: granted rate within [MinRate, MaxRate]"
    QCheck2.Gen.(pair seed_gen (float_range 0.0 1.0))
    (fun (seed, f) ->
      let r = List.hd (workload_of_seed ~n:1 seed) in
      match Policy.assign (Policy.Fraction_of_max f) r ~now:r.Request.ts with
      | Some bw ->
          bw >= Request.min_rate r *. (1. -. 1e-9) && bw <= r.Request.max_rate *. (1. +. 1e-9)
      | None -> false)

let all_kinds_feasible name run =
  qcase ~count:25 name seed_gen (fun seed ->
      let reqs = workload_of_seed seed in
      let result = run reqs in
      Types.is_consistent result && Summary.all_feasible (fabric2 ()) result.Types.accepted)

let prop_greedy_feasible =
  all_kinds_feasible "greedy: consistent and feasible on random workloads" (fun reqs ->
      Flexible.greedy (fabric2 ()) (Policy.Fraction_of_max 0.7) reqs)

let prop_window_feasible =
  all_kinds_feasible "window: consistent and feasible on random workloads" (fun reqs ->
      Flexible.window (fabric2 ()) (Policy.Fraction_of_max 0.7) ~step:13. reqs)

let prop_deferred_feasible =
  all_kinds_feasible "window-deferred: consistent and feasible on random workloads" (fun reqs ->
      Flexible.window_deferred (fabric2 ()) Policy.Min_rate ~step:13. reqs)

let rigidify reqs =
  List.map
    (fun (r : Request.t) ->
      Request.make_rigid ~id:r.id ~ingress:r.ingress ~egress:r.egress ~bw:(Request.min_rate r)
        ~ts:r.ts ~tf:r.tf)
    reqs

let prop_slots_feasible =
  qcase ~count:25 "slot heuristics: consistent and feasible on random workloads" seed_gen
    (fun seed ->
      let reqs = rigidify (workload_of_seed seed) in
      List.for_all
        (fun cost ->
          let result = Rigid.slots ~cost (fabric2 ()) reqs in
          Types.is_consistent result && Summary.all_feasible (fabric2 ()) result.Types.accepted)
        [ Rigid.Cumulated; Rigid.Min_bw; Rigid.Min_vol ])

let prop_accepted_meet_deadlines =
  qcase ~count:25 "every heuristic: accepted transfers finish in-window" seed_gen (fun seed ->
      let reqs = workload_of_seed seed in
      List.for_all
        (fun kind ->
          let result = Flexible.run kind (fabric2 ()) (Policy.Fraction_of_max 0.9) reqs in
          List.for_all Allocation.meets_deadline result.Types.accepted)
        [ `Greedy; `Window 9.0; `Window_deferred 9.0 ])

let prop_maxmin_flow_total_bounded =
  qcase ~count:50 "maxmin: aggregate rate bounded by either side's capacity" seed_gen
    (fun seed ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let caps_in = Array.init 3 (fun _ -> Rng.float_in rng 10. 100.) in
      let caps_out = Array.init 3 (fun _ -> Rng.float_in rng 10. 100.) in
      let flows =
        Array.init (1 + Rng.int rng 30) (fun _ ->
            { Maxmin.ingress = Rng.int rng 3; egress = Rng.int rng 3;
              max_rate = Rng.float_in rng 1. 60. })
      in
      let rates = Maxmin.rates ~caps_in ~caps_out flows in
      let total = Array.fold_left ( +. ) 0.0 rates in
      let bound side = Array.fold_left ( +. ) 0.0 side in
      total <= Float.min (bound caps_in) (bound caps_out) *. (1. +. 1e-6))

let prop_maxmin_adding_flow_never_raises_others =
  qcase ~count:40 "maxmin: adding a flow never raises an existing rate" seed_gen (fun seed ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let caps_in = [| Rng.float_in rng 20. 100. |] in
      let caps_out = [| Rng.float_in rng 20. 100. |] in
      let flow () = { Maxmin.ingress = 0; egress = 0; max_rate = Rng.float_in rng 1. 80. } in
      let n = 1 + Rng.int rng 10 in
      let flows = Array.init n (fun _ -> flow ()) in
      let before = Maxmin.rates ~caps_in ~caps_out flows in
      let flows' = Array.append flows [| flow () |] in
      let after = Maxmin.rates ~caps_in ~caps_out flows' in
      let ok = ref true in
      for i = 0 to n - 1 do
        if after.(i) > before.(i) +. 1e-6 then ok := false
      done;
      !ok)

let prop_exact_dominates_on_unit_instances =
  qcase ~count:20 "unit-exact: count bounded by capacity-time volume" seed_gen (fun seed ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let reqs =
        Array.init (3 + Rng.int rng 8) (fun id ->
            let ts = Rng.int rng 4 in
            { Gridbw_core.Unit_exact.id; ingress = Rng.int rng 2; egress = Rng.int rng 2;
              ts; tf = ts + 1 + Rng.int rng 3 })
      in
      let inst =
        { Gridbw_core.Unit_exact.caps_in = [| 1; 2 |]; caps_out = [| 2; 1 |]; reqs }
      in
      let sol = Gridbw_core.Unit_exact.solve inst in
      (* 7 time steps max (ts in 0..3, tf up to 7), ingress volume 3/step. *)
      sol.Gridbw_core.Unit_exact.count <= Array.length reqs
      && sol.Gridbw_core.Unit_exact.count <= 7 * 3
      && Gridbw_core.Unit_exact.feasible inst sol.Gridbw_core.Unit_exact.placements)

let suites =
  [
    ( "cross-module properties",
      [
        prop_trace_roundtrip;
        prop_profile_max_dominates_point;
        prop_scaled_utilization_dominates_raw;
        prop_policy_monotone_in_f;
        prop_policy_within_bounds;
        prop_greedy_feasible;
        prop_window_feasible;
        prop_deferred_feasible;
        prop_slots_feasible;
        prop_accepted_meet_deadlines;
        prop_maxmin_flow_total_bounded;
        prop_maxmin_adding_flow_never_raises_others;
        prop_exact_dominates_on_unit_instances;
      ] );
  ]
