(* Fault injection and recovery: victim selection, script validation,
   fault-free parity with Flexible, recovery identities, and randomized
   capacity/deadline invariants. *)

open Helpers
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Summary = Gridbw_metrics.Summary
module Resilience = Gridbw_metrics.Resilience
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Plane = Gridbw_control.Plane
module Rng = Gridbw_prng.Rng
module Fault = Gridbw_fault.Fault
module Victim = Gridbw_fault.Victim
module Injector = Gridbw_fault.Injector

(* seed_gen / workload_of_seed come from Helpers (gridbw_testkit). *)

let zero_latency_config ?(admission = Injector.Greedy) ?(victim = Victim.Smallest_residual) () =
  {
    (Injector.default_config ~admission ()) with
    Injector.control = { (Plane.default_config Policy.Min_rate) with hop_latency = 0.; decision_latency = 0. };
    victim;
    check_invariants = true;
  }

let alloc ~id ~bw ~sigma ~tau ?(tf = tau) () =
  let r =
    Request.make ~id ~ingress:0 ~egress:0 ~volume:(bw *. (tau -. sigma)) ~ts:sigma ~tf
      ~max_rate:bw
  in
  Allocation.make ~request:r ~bw ~sigma

(* --- victim selection --- *)

let test_victim_smallest_residual () =
  let a = alloc ~id:0 ~bw:10. ~sigma:0. ~tau:10. () in
  let b = alloc ~id:1 ~bw:10. ~sigma:0. ~tau:10. () in
  let c = alloc ~id:2 ~bw:10. ~sigma:0. ~tau:10. () in
  let victims =
    Victim.select Victim.Smallest_residual ~need:15. [ (a, 50.); (b, 20.); (c, 90.) ]
  in
  Alcotest.(check (list int))
    "smallest residuals first, stop once need covered" [ 1; 0 ]
    (List.map (fun (v : Allocation.t) -> v.request.Request.id) victims)

let test_victim_latest_deadline () =
  let a = alloc ~id:0 ~bw:10. ~sigma:0. ~tau:10. ~tf:30. () in
  let b = alloc ~id:1 ~bw:10. ~sigma:0. ~tau:10. ~tf:50. () in
  let c = alloc ~id:2 ~bw:10. ~sigma:0. ~tau:10. ~tf:40. () in
  let victims = Victim.select Victim.Latest_deadline ~need:15. [ (a, 1.); (b, 1.); (c, 1.) ] in
  Alcotest.(check (list int))
    "latest deadlines first" [ 1; 2 ]
    (List.map (fun (v : Allocation.t) -> v.request.Request.id) victims)

let test_victim_squeeze_takes_all () =
  let a = alloc ~id:0 ~bw:10. ~sigma:0. ~tau:10. () in
  let b = alloc ~id:1 ~bw:10. ~sigma:0. ~tau:10. () in
  let victims = Victim.select Victim.Proportional_squeeze ~need:1. [ (a, 5.); (b, 5.) ] in
  Alcotest.(check int) "squeeze renegotiates every candidate" 2 (List.length victims)

(* --- script validation --- *)

let test_validate_rejects () =
  let fabric = fabric2 () in
  let bad_port = [ Fault.Degrade { side = Fault.Ingress; port = 9; factor = 0.5; from_ = 0.; until = 1. } ] in
  let bad_factor = [ Fault.Degrade { side = Fault.Ingress; port = 0; factor = 1.5; from_ = 0.; until = 1. } ] in
  let overlap =
    [
      Fault.Degrade { side = Fault.Egress; port = 1; factor = 0.5; from_ = 0.; until = 5. };
      Fault.Degrade { side = Fault.Egress; port = 1; factor = 0.2; from_ = 3.; until = 8. };
    ]
  in
  let raises events =
    match Fault.validate fabric events with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad port" true (raises bad_port);
  Alcotest.(check bool) "bad factor" true (raises bad_factor);
  Alcotest.(check bool) "overlapping windows" true (raises overlap);
  Fault.validate fabric
    [
      Fault.Degrade { side = Fault.Egress; port = 1; factor = 0.5; from_ = 0.; until = 3. };
      Fault.Degrade { side = Fault.Egress; port = 1; factor = 0.2; from_ = 3.; until = 8. };
    ]

let test_generate_is_valid_and_deterministic () =
  let fabric = fabric2 () in
  let gen seed = Fault.generate (Rng.create ~seed ()) fabric ~horizon:500. Fault.default_spec in
  let a = gen 1L and b = gen 1L in
  Alcotest.(check bool) "same seed, same script" true (a = b);
  Fault.validate fabric a

(* --- fault-free parity --- *)

let ids (l : Allocation.t list) = List.map (fun (a : Allocation.t) -> a.request.Request.id) l

let summary_of fabric (r : Types.result) =
  Summary.compute fabric ~all:r.Types.all ~accepted:r.Types.accepted

let prop_empty_script_greedy_parity =
  qcase ~count:40 "injector: empty script is bit-identical to greedy" seed_gen (fun seed ->
      let fabric = fabric2 () in
      let reqs = workload_of_seed seed in
      let reference = Flexible.greedy fabric Policy.Min_rate reqs in
      let cfg = { (Injector.default_config ()) with Injector.check_invariants = true } in
      let report = Injector.run fabric cfg [] reqs in
      ids reference.Types.accepted = ids report.Injector.result.Types.accepted
      && summary_of fabric reference = summary_of fabric report.Injector.result)

let prop_empty_script_window_parity =
  qcase ~count:40 "injector: empty script is bit-identical to window" seed_gen (fun seed ->
      let fabric = fabric2 () in
      let reqs = workload_of_seed seed in
      let step = 10.0 in
      let reference = Flexible.window ~step fabric (Policy.Fraction_of_max 0.8) reqs in
      let cfg =
        {
          (Injector.default_config ~policy:(Policy.Fraction_of_max 0.8)
             ~admission:(Injector.Window step) ())
          with Injector.check_invariants = true
        }
      in
      let report = Injector.run fabric cfg [] reqs in
      ids reference.Types.accepted = ids report.Injector.result.Types.accepted
      && summary_of fabric reference = summary_of fabric report.Injector.result)

(* --- recovery identities --- *)

let test_scripted_preempt_recovers () =
  (* One transfer, preempted halfway, zero renegotiation latency: the
     residual is re-admitted instantly on an otherwise idle fabric and the
     request still meets its deadline with full delivery. *)
  let fabric = fabric2 () in
  let r = req ~id:0 ~volume:200. ~ts:0. ~tf:10. ~max_rate:50. () in
  let script = [ Fault.Preempt { request_id = 0; at = 2.0 } ] in
  let report = Injector.run fabric (zero_latency_config ()) script [ r ] in
  let o = List.hd report.Injector.outcomes in
  Alcotest.(check bool) "admitted" true o.Resilience.admitted;
  Alcotest.(check int) "one preemption" 1 o.Resilience.preemptions;
  check_approx "full volume delivered" 200. o.Resilience.delivered;
  (match o.Resilience.finished_at with
  | Some f -> Alcotest.(check bool) "finished by deadline" true (f <= 10. +. 1e-9)
  | None -> Alcotest.fail "transfer never finished");
  check_approx "no violation time at zero latency" 0. o.Resilience.violation_time;
  Alcotest.(check int) "recovered count" 1 report.Injector.stats.Resilience.recovered

let test_no_recovery_loses_transfer () =
  let fabric = fabric2 () in
  let r = req ~id:0 ~volume:200. ~ts:0. ~tf:10. ~max_rate:50. () in
  let script = [ Fault.Preempt { request_id = 0; at = 2.0 } ] in
  let cfg = { (zero_latency_config ()) with Injector.recovery = Injector.No_recovery } in
  let report = Injector.run fabric cfg script [ r ] in
  let o = List.hd report.Injector.outcomes in
  Alcotest.(check bool) "never finished" true (o.Resilience.finished_at = None);
  Alcotest.(check bool) "partial delivery only" true (o.Resilience.delivered < 200.);
  Alcotest.(check bool) "violation accrued" true (o.Resilience.violation_time > 0.)

let test_abort_excluded_from_ratios () =
  let fabric = fabric2 () in
  let r = req ~id:0 ~volume:200. ~ts:0. ~tf:10. ~max_rate:50. () in
  let script = [ Fault.Abort { request_id = 0; at = 2.0 } ] in
  let report = Injector.run fabric (zero_latency_config ()) script [ r ] in
  let o = List.hd report.Injector.outcomes in
  Alcotest.(check bool) "aborted" true o.Resilience.aborted;
  check_approx "no violation time for dead hosts" 0. o.Resilience.violation_time;
  check_approx "guarantee ratio ignores aborts" 1. report.Injector.stats.Resilience.guarantee_kept

let test_degrade_sheds_to_capacity () =
  (* Two transfers fill ingress 0; halving it must preempt one, and with
     zero-latency recovery the victim must still finish by its deadline
     (it has slack: max_rate 50 vs min_rate 10). *)
  let fabric = fabric2 () in
  let r0 = req ~id:0 ~ingress:0 ~egress:0 ~volume:500. ~ts:0. ~tf:50. ~max_rate:50. () in
  let r1 = req ~id:1 ~ingress:0 ~egress:1 ~volume:500. ~ts:0. ~tf:50. ~max_rate:50. () in
  let script =
    [ Fault.Degrade { side = Fault.Ingress; port = 0; factor = 0.5; from_ = 2.; until = 4. } ]
  in
  let cfg = { (zero_latency_config ()) with Injector.policy = Policy.Fraction_of_max 1.0 } in
  let report = Injector.run fabric cfg script [ r0; r1 ] in
  Alcotest.(check int) "both admitted" 2 (List.length report.Injector.result.Types.accepted);
  Alcotest.(check int) "someone was preempted" 1 report.Injector.stats.Resilience.preempted;
  List.iter
    (fun (o : Resilience.outcome) ->
      match o.Resilience.finished_at with
      | Some f ->
          Alcotest.(check bool) "finished by deadline" true (f <= o.Resilience.request.Request.tf +. 1e-9)
      | None -> Alcotest.fail "transfer lost despite recovery")
    report.Injector.outcomes

(* --- randomized invariants --- *)

let script_of_seed fabric seed reqs =
  let spec = { Fault.mtbf = 60.; mean_outage = 20.; depth_lo = 0.0; depth_hi = 0.7 } in
  Fault.generate (Rng.create ~seed:(Int64.of_int (seed + 17)) ()) fabric
    ~horizon:(Fault.horizon_of_requests reqs) spec

(* Post-hoc audit (greedy mode): at every instant, the delivered service
   intervals must fit under the fabric's *current* capacity as revised by
   the script.  Shared with the conformance harness. *)
let audit_services fabric script services =
  Gridbw_check.Reference.audit_services ~slack:1e-6 fabric script services = []

let prop_capacity_never_exceeded_greedy =
  qcase ~count:40 "injector: greedy never exceeds revised capacities" seed_gen (fun seed ->
      let fabric = fabric2 () in
      let reqs = workload_of_seed seed in
      let script = script_of_seed fabric seed reqs in
      (* check_invariants asserts the live counters after every event; the
         audit re-derives usage from the delivered service intervals. *)
      let report = Injector.run fabric (zero_latency_config ()) script reqs in
      audit_services fabric script report.Injector.services)

let prop_capacity_never_exceeded_window =
  qcase ~count:25 "injector: window invariant checks pass under faults" seed_gen (fun seed ->
      let fabric = fabric2 () in
      let reqs = workload_of_seed seed in
      let script = script_of_seed fabric seed reqs in
      let cfg = zero_latency_config ~admission:(Injector.Window 10.0) () in
      let report = Injector.run fabric cfg script reqs in
      List.length report.Injector.outcomes = List.length reqs)

let prop_recovered_meet_deadlines =
  qcase ~count:40 "injector: recovered transfers finish by their original deadline"
    QCheck2.Gen.(pair seed_gen (int_range 0 2))
    (fun (seed, vidx) ->
      let fabric = fabric2 () in
      let reqs = workload_of_seed seed in
      let script = script_of_seed fabric seed reqs in
      let victim = List.nth Victim.all vidx in
      let report = Injector.run fabric (zero_latency_config ~victim ()) script reqs in
      List.for_all
        (fun (o : Resilience.outcome) ->
          match o.Resilience.finished_at with
          | Some f ->
              f <= (o.Resilience.request.Request.tf *. (1. +. 1e-9)) +. 1e-9
          | None -> true)
        report.Injector.outcomes)

let prop_preempt_readmit_identity =
  qcase ~count:60 "injector: preempt + zero-latency readmit preserves the guarantee"
    QCheck2.Gen.(pair seed_gen (float_range 0.05 0.95))
    (fun (seed, frac) ->
      let fabric = fabric2 () in
      let r = List.hd (workload_of_seed ~n:1 seed) in
      let at = r.Request.ts +. (frac *. (r.Request.tf -. r.Request.ts)) in
      let script = [ Fault.Preempt { request_id = r.Request.id; at } ] in
      let report = Injector.run fabric (zero_latency_config ()) script [ r ] in
      let o = List.hd report.Injector.outcomes in
      (not o.Resilience.admitted)
      ||
      match o.Resilience.finished_at with
      | Some f ->
          f <= (r.Request.tf *. (1. +. 1e-9)) +. 1e-9
          && approx ~eps:1e-6 o.Resilience.delivered r.Request.volume
      | None -> false)

let suites =
  [
    ( "fault",
      [
        case "victim: smallest-residual order" test_victim_smallest_residual;
        case "victim: latest-deadline order" test_victim_latest_deadline;
        case "victim: proportional squeeze takes all" test_victim_squeeze_takes_all;
        case "fault: validate rejects bad scripts" test_validate_rejects;
        case "fault: generate is valid and deterministic" test_generate_is_valid_and_deterministic;
        case "injector: scripted preempt recovers" test_scripted_preempt_recovers;
        case "injector: no-recovery loses the transfer" test_no_recovery_loses_transfer;
        case "injector: aborts excluded from ratios" test_abort_excluded_from_ratios;
        case "injector: degrade sheds to capacity" test_degrade_sheds_to_capacity;
        prop_empty_script_greedy_parity;
        prop_empty_script_window_parity;
        prop_capacity_never_exceeded_greedy;
        prop_capacity_never_exceeded_window;
        prop_recovered_meet_deadlines;
        prop_preempt_readmit_identity;
      ] );
  ]
