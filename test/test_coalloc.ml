open Helpers
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Coalloc = Gridbw_coalloc.Coalloc
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Spec = Gridbw_workload.Spec
module Rng = Gridbw_prng.Rng

let fabric1 () = Fabric.uniform ~ingress_count:1 ~egress_count:1 ~capacity:100.0

let mk_job ?(id = 0) ?(volume = 500.) ?(ts = 0.) ?(tf = 20.) ?(max_rate = 100.) ~cpu () =
  Coalloc.job ~id ~transfer:(req ~id ~volume ~ts ~tf ~max_rate ()) ~cpu_seconds:cpu

let completion_of result id =
  match List.assoc_opt id (List.map (fun (j, o) -> (j.Coalloc.id, o)) result.Coalloc.outcomes) with
  | Some (Coalloc.Completed c) -> c
  | Some (Coalloc.Transfer_rejected _) -> Alcotest.failf "job %d rejected" id
  | None -> Alcotest.failf "job %d missing" id

let single_job_timeline () =
  (* MinRate 25 finishes staging at t = 20, then 5 s of CPU. *)
  let jobs = [ mk_job ~cpu:5.0 () ] in
  let r = Coalloc.simulate (fabric1 ()) ~policy:Policy.Min_rate ~cpus_per_site:1 jobs in
  let c = completion_of r 0 in
  check_approx "staged at deadline" 20.0 c.Coalloc.staged_at;
  check_approx "cpu starts immediately" 20.0 c.Coalloc.cpu_start;
  check_approx "finished" 25.0 c.Coalloc.finished_at;
  check_approx "mean completion" 25.0 r.Coalloc.mean_completion_time;
  Alcotest.(check int) "completed" 1 r.Coalloc.completed

let faster_policy_earlier_release () =
  (* f=1 stages at 100 MB/s: staging 5 s instead of 20. *)
  let jobs = [ mk_job ~cpu:5.0 () ] in
  let r =
    Coalloc.simulate (fabric1 ()) ~policy:(Policy.Fraction_of_max 1.0) ~cpus_per_site:1 jobs
  in
  let c = completion_of r 0 in
  check_approx "staged early" 5.0 c.Coalloc.staged_at;
  check_approx "finished early" 10.0 c.Coalloc.finished_at

let cpu_queueing () =
  (* Two jobs stage instantly-ish at f=1 (5 s each, parallel ports? no —
     same port: second is rejected at MinRate? Use disjoint windows). *)
  let j0 = mk_job ~id:0 ~ts:0. ~cpu:10.0 () in
  let j1 = mk_job ~id:1 ~ts:5. ~tf:30. ~cpu:10.0 () in
  let r =
    Coalloc.simulate (fabric1 ()) ~policy:(Policy.Fraction_of_max 1.0) ~cpus_per_site:1
      [ j0; j1 ]
  in
  let c0 = completion_of r 0 and c1 = completion_of r 1 in
  check_approx "j0 staged" 5.0 c0.Coalloc.staged_at;
  check_approx "j1 staged" 10.0 c1.Coalloc.staged_at;
  (* Single CPU: j1 waits for j0's CPU to free at t = 15. *)
  check_approx "j1 queued behind j0" 15.0 c1.Coalloc.cpu_start;
  check_approx "cpu wait recorded" 2.5 r.Coalloc.mean_cpu_wait;
  check_approx "makespan" 25.0 r.Coalloc.makespan

let two_cpus_no_wait () =
  let j0 = mk_job ~id:0 ~ts:0. ~cpu:10.0 () in
  let j1 = mk_job ~id:1 ~ts:5. ~tf:30. ~cpu:10.0 () in
  let r =
    Coalloc.simulate (fabric1 ()) ~policy:(Policy.Fraction_of_max 1.0) ~cpus_per_site:2
      [ j0; j1 ]
  in
  check_approx "no wait with two slots" 0.0 r.Coalloc.mean_cpu_wait

let rejected_transfer_reported () =
  (* Both want the whole port on the same window at f=1. *)
  let j0 = mk_job ~id:0 ~cpu:1.0 () in
  let j1 = mk_job ~id:1 ~cpu:1.0 () in
  let r =
    Coalloc.simulate (fabric1 ()) ~policy:(Policy.Fraction_of_max 1.0) ~cpus_per_site:1
      [ j0; j1 ]
  in
  Alcotest.(check int) "one rejected" 1 r.Coalloc.rejected;
  match List.assoc 1 (List.map (fun (j, o) -> (j.Coalloc.id, o)) r.Coalloc.outcomes) with
  | Coalloc.Transfer_rejected Types.Port_saturated -> ()
  | _ -> Alcotest.fail "expected Port_saturated"

let validation () =
  (match Coalloc.job ~id:0 ~transfer:(req ()) ~cpu_seconds:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero cpu accepted");
  match Coalloc.simulate (fabric1 ()) ~policy:Policy.Min_rate ~cpus_per_site:0 [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero cpus accepted"

let random_jobs_shape () =
  let spec =
    Spec.make ~fabric:(fabric2 ()) ~volumes:(Spec.Uniform_volume { lo = 10.; hi = 100. })
      ~rate_lo:1. ~rate_hi:50. ~count:40 ~mean_interarrival:1. ()
  in
  let jobs = Coalloc.random_jobs (rng ()) spec ~mean_cpu_seconds:30. in
  Alcotest.(check int) "one job per request" 40 (List.length jobs);
  List.iter
    (fun j -> Alcotest.(check bool) "positive cpu" true (j.Coalloc.cpu_seconds > 0.))
    jobs

let tradeoff_visible () =
  (* On a loaded fabric, f=1 must stage faster than MinRate on average. *)
  let spec =
    Spec.make ~fabric:(fabric2 ()) ~volumes:(Spec.Uniform_volume { lo = 100.; hi = 500. })
      ~rate_lo:5. ~rate_hi:40. ~count:60 ~mean_interarrival:3. ()
  in
  let jobs = Coalloc.random_jobs (Rng.create ~seed:91L ()) spec ~mean_cpu_seconds:10. in
  let slow = Coalloc.simulate (fabric2 ()) ~policy:Policy.Min_rate ~cpus_per_site:4 jobs in
  let fast =
    Coalloc.simulate (fabric2 ()) ~policy:(Policy.Fraction_of_max 1.0) ~cpus_per_site:4 jobs
  in
  Alcotest.(check bool) "f=1 stages faster" true
    (fast.Coalloc.mean_staging_time < slow.Coalloc.mean_staging_time)

let suites =
  [
    ( "coalloc",
      [
        case "single job timeline" single_job_timeline;
        case "faster policy releases earlier" faster_policy_earlier_release;
        case "cpu queueing" cpu_queueing;
        case "two cpus remove the wait" two_cpus_no_wait;
        case "rejected transfer reported" rejected_transfer_reported;
        case "validation" validation;
        case "random job generation" random_jobs_shape;
        case "staging-time trade-off visible" tradeoff_visible;
      ] );
  ]
