open Helpers
module Tcp = Gridbw_transport.Tcp

let invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let validation () =
  invalid "zero volume" (fun () -> Tcp.flow ~volume:0. ());
  invalid "negative start" (fun () -> Tcp.flow ~start_round:(-1) ~volume:1. ());
  invalid "zero cap" (fun () -> Tcp.flow ~rate_cap:0. ~volume:1. ());
  invalid "zero capacity" (fun () -> Tcp.simulate ~capacity:0. ~max_rounds:10 []);
  invalid "zero rounds" (fun () -> Tcp.simulate ~capacity:1. ~max_rounds:0 [])

let single_flow_completes () =
  let result = Tcp.simulate ~capacity:100. ~max_rounds:10_000 [ Tcp.flow ~volume:5_000. () ] in
  let f = List.hd result.Tcp.flows in
  (match f.Tcp.finished_round with
  | Some r -> Alcotest.(check bool) "finished in reasonable time" true (r > 10 && r < 1_000)
  | None -> Alcotest.fail "did not finish");
  check_approx ~eps:1e-6 "everything delivered" 5_000. f.Tcp.delivered

let slow_start_doubles () =
  (* With a huge pipe and tiny volume, the flow never overflows: rounds ~
     log2(volume / initial window). 2 + 4 + 8 + ... doubles each round. *)
  let result = Tcp.simulate ~capacity:1e9 ~max_rounds:100 [ Tcp.flow ~volume:1_000. () ] in
  match (List.hd result.Tcp.flows).Tcp.finished_round with
  | Some r -> Alcotest.(check bool) "exponential ramp" true (r <= 10)
  | None -> Alcotest.fail "did not finish"

let lossless_when_under_capacity () =
  let result =
    Tcp.simulate ~capacity:1_000. ~max_rounds:1_000
      [ Tcp.flow ~rate_cap:100. ~volume:10_000. (); Tcp.flow ~rate_cap:100. ~volume:10_000. () ]
  in
  check_approx "no drops" 0.0 result.Tcp.total_drops;
  List.iter
    (fun f -> Alcotest.(check int) "no loss events" 0 f.Tcp.loss_events)
    result.Tcp.flows

let shaped_completion_is_deterministic () =
  (* 10 shaped flows at 100 seg/round each on a 1000 seg/round link: every
     flow delivers exactly its cap per round once cwnd passes the cap. *)
  let specs = List.init 10 (fun _ -> Tcp.flow ~rate_cap:100. ~volume:10_000. ()) in
  let result = Tcp.simulate ~capacity:1_000. ~max_rounds:10_000 specs in
  let rounds =
    List.map
      (fun f -> match f.Tcp.finished_round with Some r -> r | None -> -1)
      result.Tcp.flows
  in
  Alcotest.(check bool) "all finished" true (List.for_all (fun r -> r >= 0) rounds);
  let spread = List.fold_left max 0 rounds - List.fold_left min max_int rounds in
  Alcotest.(check bool) "near-identical completion" true (spread <= 1);
  check_approx ~eps:1e-6 "perfectly fair" 1.0 result.Tcp.jain_fairness

let contention_causes_losses () =
  let specs = List.init 10 (fun _ -> Tcp.flow ~volume:50_000. ()) in
  let result = Tcp.simulate ~capacity:100. ~max_rounds:50_000 specs in
  Alcotest.(check bool) "drops happened" true (result.Tcp.total_drops > 0.);
  Alcotest.(check bool) "loss events recorded" true
    (List.exists (fun f -> f.Tcp.loss_events > 0) result.Tcp.flows)

let reno_sawtooth_bounded () =
  (* A single long Reno flow on a small pipe oscillates around capacity +
     buffer; it must keep delivering and must keep taking periodic losses. *)
  let result = Tcp.simulate ~capacity:50. ~max_rounds:2_000 [ Tcp.flow ~volume:60_000. () ] in
  let f = List.hd result.Tcp.flows in
  Alcotest.(check bool) "multiple loss episodes" true (f.Tcp.loss_events > 3);
  Alcotest.(check bool) "good utilization despite sawtooth" true
    (result.Tcp.bottleneck_utilization > 0.7)

let bic_ramps_faster_than_reno () =
  (* After a loss, BIC converges back to the pre-loss window faster: on a
     lossy link it should finish the same volume no later than Reno. *)
  let run algorithm =
    let result =
      Tcp.simulate ~capacity:100. ~max_rounds:50_000 [ Tcp.flow ~algorithm ~volume:100_000. () ]
    in
    match (List.hd result.Tcp.flows).Tcp.finished_round with
    | Some r -> r
    | None -> max_int
  in
  Alcotest.(check bool) "BIC at least as fast" true (run Tcp.Bic <= run Tcp.Reno)

let late_start_respected () =
  let result =
    Tcp.simulate ~capacity:1_000. ~max_rounds:1_000
      [ Tcp.flow ~start_round:100 ~volume:100. () ]
  in
  match (List.hd result.Tcp.flows).Tcp.finished_round with
  | Some r -> Alcotest.(check bool) "no progress before start" true (r >= 100)
  | None -> Alcotest.fail "did not finish"

let max_rounds_caps_simulation () =
  let result = Tcp.simulate ~capacity:1. ~max_rounds:10 [ Tcp.flow ~volume:1e9 () ] in
  Alcotest.(check int) "stopped at the cap" 10 result.Tcp.rounds;
  Alcotest.(check bool) "unfinished reported" true
    ((List.hd result.Tcp.flows).Tcp.finished_round = None)

let transport_experiment_shape () =
  let rows =
    Gridbw_experiments.Transport_exp.run ~flows:8 ~volume:5_000. ~capacity:400.
      ~max_rounds:20_000 Gridbw_experiments.Runner.quick
  in
  Alcotest.(check int) "four treatments" 4 (List.length rows);
  let uncontrolled = List.hd rows in
  let shaped = List.nth rows 3 in
  let open Gridbw_experiments.Transport_exp in
  Alcotest.(check int) "shaped has no losses" 0 shaped.loss_events;
  Alcotest.(check bool) "shaped is more predictable" true
    (shaped.cov_completion <= uncontrolled.cov_completion +. 1e-9);
  Alcotest.(check bool) "shaped is fair" true (shaped.jain > 0.99);
  Alcotest.(check int) "everything completes" 8 shaped.completed

let suites =
  [
    ( "tcp",
      [
        case "validation" validation;
        case "single flow completes" single_flow_completes;
        case "slow start ramps exponentially" slow_start_doubles;
        case "no losses under capacity" lossless_when_under_capacity;
        case "shaped completions deterministic" shaped_completion_is_deterministic;
        case "contention causes losses" contention_causes_losses;
        case "reno sawtooth" reno_sawtooth_bounded;
        case "BIC ramps at least as fast as Reno" bic_ramps_faster_than_reno;
        case "late start respected" late_start_respected;
        case "max rounds cap" max_rounds_caps_simulation;
        slow_case "E13 experiment shape" transport_experiment_shape;
      ] );
  ]
