open Helpers
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Distributed = Gridbw_control.Distributed
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Rng = Gridbw_prng.Rng

let workload seed n interarrival =
  let spec =
    Spec.make ~fabric:(fabric2 ()) ~volumes:(Spec.Uniform_volume { lo = 100.; hi = 2000. })
      ~rate_lo:5. ~rate_hi:100. ~count:n ~mean_interarrival:interarrival ()
  in
  Gen.generate (Rng.create ~seed ()) spec

let zero_interval_matches_centralised () =
  let reqs = workload 3L 120 0.5 in
  let distributed =
    Distributed.run (fabric2 ()) (Policy.Fraction_of_max 0.8) ~gossip_interval:0. reqs
  in
  let central = Flexible.greedy (fabric2 ()) (Policy.Fraction_of_max 0.8) reqs in
  Alcotest.(check int) "same accept count" (List.length central.Types.accepted)
    distributed.Distributed.accepted;
  Alcotest.(check int) "no violations" 0 distributed.Distributed.egress_violations;
  Alcotest.(check bool) "never overbooked" true (distributed.Distributed.peak_overbooking <= 1. +. 1e-9)

let stale_views_overbook () =
  (* Heavy load and a long gossip interval: routers race on the egress
     ports and overbook. *)
  let reqs = workload 4L 300 0.1 in
  let fresh = Distributed.run (fabric2 ()) (Policy.Fraction_of_max 1.0) ~gossip_interval:0. reqs in
  let stale =
    Distributed.run (fabric2 ()) (Policy.Fraction_of_max 1.0) ~gossip_interval:50. reqs
  in
  Alcotest.(check bool) "stale run overbooks" true
    (stale.Distributed.peak_overbooking > fresh.Distributed.peak_overbooking);
  Alcotest.(check bool) "violations recorded" true (stale.Distributed.egress_violations > 0)

let gossip_rounds_counted () =
  let reqs = workload 5L 60 1.0 in
  let r = Distributed.run (fabric2 ()) Policy.Min_rate ~gossip_interval:10. reqs in
  Alcotest.(check bool) "some rounds" true (r.Distributed.gossip_rounds >= 1);
  let r0 = Distributed.run (fabric2 ()) Policy.Min_rate ~gossip_interval:0. reqs in
  Alcotest.(check int) "refresh per decision" (List.length reqs) r0.Distributed.gossip_rounds

let local_ingress_never_violated () =
  (* The ingress side is exact knowledge, so whatever the gossip interval,
     the ingress ports stay within capacity: replay and check. *)
  let reqs = workload 6L 200 0.2 in
  let r = Distributed.run (fabric2 ()) (Policy.Fraction_of_max 1.0) ~gossip_interval:100. reqs in
  (* peak_overbooking only watches egress; a violation count of 0 with
     interval 0 was already checked; here we just sanity-check bounds. *)
  Alcotest.(check bool) "accept rate within [0,1]" true
    (r.Distributed.accept_rate >= 0. && r.Distributed.accept_rate <= 1.)

let validation () =
  match Distributed.run (fabric2 ()) Policy.Min_rate ~gossip_interval:(-1.) [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative interval accepted"

let suites =
  [
    ( "distributed",
      [
        case "zero interval matches centralised greedy" zero_interval_matches_centralised;
        case "stale views overbook egress ports" stale_views_overbook;
        case "gossip rounds counted" gossip_rounds_counted;
        case "bounds sanity" local_ingress_never_violated;
        case "validation" validation;
      ] );
  ]
