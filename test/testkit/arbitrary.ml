(* QCheck2 arbitraries layered over the fuzzer's deterministic scenario
   generation: property tests draw from exactly the space the fuzzer
   explores, and a shrunk counterexample is always expressible as a
   (family, seed, size) triple. *)

module QGen = QCheck2.Gen
module Scenario = Gridbw_check.Scenario

let seed64 = QGen.map Int64.of_int (QGen.int_range 0 0x3FFFFFFF)
let family = QGen.oneofl Scenario.families

let scenario ?(families = Scenario.families) ?(min_size = 2) ?(max_size = 30) () =
  let open QGen in
  let* family = oneofl families in
  let* seed = seed64 in
  let* size = int_range min_size max_size in
  return (Scenario.generate ~family ~seed ~size)

let print_scenario sc = Format.asprintf "%a" Scenario.pp sc

(* Requests of one random scenario, for properties that only need a
   workload (no fault script): the fabric comes with them. *)
let workload ?families ?min_size ?max_size () =
  QGen.map
    (fun (sc : Scenario.t) -> (sc.Scenario.fabric, sc.Scenario.requests))
    (scenario ?families ?min_size ?max_size ())
