(* Shared fixtures and qcheck plumbing for the gridbw test suite.

   This used to live in test/helpers.ml; it is a library so the unit
   tests, the property tests, the conformance tests, the fuzzer and the
   examples consume one set of generators instead of re-deriving their
   own slightly-different "random valid request". *)

module Rng = Gridbw_prng.Rng
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Spec = Gridbw_workload.Spec
module Scenario = Gridbw_check.Scenario

let approx ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_approx ?(eps = 1e-9) msg expected actual =
  if not (approx ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let rng ?(seed = 42L) () = Rng.create ~seed ()

(* A small 2-ingress / 2-egress fabric with 100 MB/s ports. *)
let fabric2 () = Fabric.uniform ~ingress_count:2 ~egress_count:2 ~capacity:100.0

let req ?(id = 0) ?(ingress = 0) ?(egress = 0) ?(volume = 100.) ?(ts = 0.) ?(tf = 10.)
    ?max_rate () =
  let max_rate = match max_rate with Some m -> m | None -> volume /. (tf -. ts) in
  Request.make ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate

(* Random request valid on [fabric], window within [0, 100] — the
   fuzzer's scenario draw, so the tests and the conformance harness
   explore the same space. *)
let random_request rng fabric id = Scenario.random_request rng fabric ~id ()

let random_requests ?(seed = 7L) ?(n = 40) fabric =
  let r = Rng.create ~seed () in
  List.init n (random_request r fabric)

(* Poisson-style workload from the section 4.3/5.3 generator, used by the
   cross-module property tests and the fault tests. *)
let workload_of_seed ?(n = 40) seed =
  let spec =
    Spec.make ~fabric:(fabric2 ()) ~volumes:(Spec.Uniform_volume { lo = 50.; hi = 3000. })
      ~rate_lo:5. ~rate_hi:100. ~count:n ~mean_interarrival:1.5 ()
  in
  Gridbw_workload.Gen.generate (Rng.create ~seed:(Int64.of_int seed) ()) spec

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* One seed for the whole suite: QCHECK_SEED if set (CI runs the suite
   under two fixed seeds), self-initialized otherwise.  The seed is
   stitched into every property-test name, so any failure line already
   carries the exact reproduction command. *)
let qcheck_seed =
  lazy
    (match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
    | Some s -> s
    | None ->
        Random.self_init ();
        Random.int 1_000_000_000)

let qcase ?(count = 100) name gen prop =
  let seed = Lazy.force qcheck_seed in
  let name = Printf.sprintf "%s [QCHECK_SEED=%d]" name seed in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| seed |])
    (QCheck2.Test.make ~name ~count gen prop)
