(* A deliberately broken scheduler: GREEDY at minimum rate that admits
   whenever the port's peak usage plus the new rate fits within capacity
   *plus one MB/s* — the classic off-by-one headroom slip.  The
   conformance harness must flag it (both oracles report the overload)
   and shrink the evidence to a small replayable bundle; the fuzz-smoke
   tests assert exactly that. *)

module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Fabric = Gridbw_topology.Fabric
module Types = Gridbw_core.Types
module Flexible = Gridbw_core.Flexible
module Scheduler = Gridbw_core.Scheduler
module Emit = Gridbw_core.Emit
module Obs = Gridbw_obs.Obs

let headroom = 1.0

let peak intervals ~from_ ~until =
  let probes = from_ :: List.concat_map (fun (f, u, _) -> [ f; u ]) intervals in
  let usage_at t =
    List.fold_left
      (fun acc (f, u, bw) -> if f <= t && t < u then acc +. bw else acc)
      0.0 intervals
  in
  List.fold_left
    (fun m t -> if from_ <= t && t < until then Float.max m (usage_at t) else m)
    0.0 probes

let greedy : Scheduler.t =
  Scheduler.make ~name:"mutant-greedy" (fun ?(ctx = Gridbw_core.Runtime.default) spec requests ->
      let obs = Gridbw_core.Runtime.observed ctx in
      let fabric = spec.Gridbw_workload.Spec.fabric in
      let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
      let booked_in = Hashtbl.create 8 and booked_out = Hashtbl.create 8 in
      let get tbl p = Option.value (Hashtbl.find_opt tbl p) ~default:[] in
      let decisions =
        List.map
          (fun (r : Request.t) ->
            if Obs.tracing obs then Emit.emit_arrival obs seqs r;
            let bw = Request.min_rate r in
            let sigma = r.Request.ts in
            let a = Allocation.make ~request:r ~bw ~sigma in
            let fits tbl p cap =
              peak (get tbl p) ~from_:sigma ~until:a.Allocation.tau +. bw <= cap +. headroom
            in
            let d =
              if
                fits booked_in r.Request.ingress
                  (Fabric.ingress_capacity fabric r.Request.ingress)
                && fits booked_out r.Request.egress
                     (Fabric.egress_capacity fabric r.Request.egress)
              then begin
                let span = (sigma, a.Allocation.tau, bw) in
                Hashtbl.replace booked_in r.Request.ingress (span :: get booked_in r.Request.ingress);
                Hashtbl.replace booked_out r.Request.egress (span :: get booked_out r.Request.egress);
                Types.Accepted a
              end
              else Types.Rejected Types.Port_saturated
            in
            Emit.emit_decision obs ~time:r.Request.ts r d;
            (r, d))
          (Flexible.arrival_order requests)
      in
      Flexible.collect requests decisions)
