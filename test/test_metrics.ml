open Helpers
module Stats = Gridbw_metrics.Stats
module Summary = Gridbw_metrics.Summary
module Resilience = Gridbw_metrics.Resilience
module Allocation = Gridbw_alloc.Allocation
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request

let welford_known_values () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_approx "mean" 5.0 (Stats.Welford.mean w);
  check_approx "sample variance" (32.0 /. 7.0) (Stats.Welford.variance w);
  check_approx "min" 2.0 (Stats.Welford.min w);
  check_approx "max" 9.0 (Stats.Welford.max w);
  Alcotest.(check int) "count" 8 (Stats.Welford.count w)

let welford_empty () =
  let w = Stats.Welford.create () in
  check_approx "mean 0" 0.0 (Stats.Welford.mean w);
  check_approx "variance 0" 0.0 (Stats.Welford.variance w)

let welford_single () =
  let w = Stats.Welford.create () in
  Stats.Welford.add w 3.0;
  check_approx "mean" 3.0 (Stats.Welford.mean w);
  check_approx "variance needs two" 0.0 (Stats.Welford.variance w)

let aggregate_ci () =
  let a = Stats.aggregate [ 1.; 2.; 3.; 4.; 5. ] in
  check_approx "mean" 3.0 a.Stats.mean;
  check_approx "ci95" (1.96 *. a.Stats.stddev /. sqrt 5.0) a.Stats.ci95;
  Alcotest.(check int) "n" 5 a.Stats.n

let aggregate_empty () =
  let a = Stats.aggregate [] in
  Alcotest.(check int) "n" 0 a.Stats.n;
  check_approx "mean" 0.0 a.Stats.mean

(* --- Summary --- *)

let summary_empty () =
  let s = Summary.compute (fabric2 ()) ~all:[] ~accepted:[] in
  Alcotest.(check int) "total" 0 s.Summary.total;
  check_approx "accept rate" 0.0 s.Summary.accept_rate

let two_requests_one_accepted () =
  let f = fabric2 () in
  (* Span [0, 10]; r1 accepted at its min rate of 50 MB/s. *)
  let r1 = req ~id:1 ~ingress:0 ~egress:0 ~volume:500. ~ts:0. ~tf:10. ~max_rate:100. () in
  let r2 = req ~id:2 ~ingress:1 ~egress:1 ~volume:500. ~ts:0. ~tf:10. ~max_rate:100. () in
  let a1 = Allocation.make ~request:r1 ~bw:50. ~sigma:0. in
  let s = Summary.compute f ~all:[ r1; r2 ] ~accepted:[ a1 ] in
  check_approx "accept rate" 0.5 s.Summary.accept_rate;
  check_approx "volume accept rate" 0.5 s.Summary.volume_accept_rate;
  check_approx "mean bw" 50.0 s.Summary.mean_bw;
  check_approx "mean speedup" 1.0 s.Summary.mean_speedup;
  check_approx "span" 10.0 s.Summary.span;
  (* Demand per port is 50 MB/s, below the 100 MB/s capacity, so B_scaled
     clamps to the demand: utilization = 50 / (0.5*(50+50+50+50)) = 0.5. *)
  check_approx "scaled utilization" 0.5 s.Summary.utilization;
  (* Raw denominator is half of total capacity = 200. *)
  check_approx "raw utilization" 0.25 s.Summary.raw_utilization

let summary_full_acceptance () =
  let f = fabric2 () in
  let r = req ~id:1 ~volume:1000. ~ts:0. ~tf:10. ~max_rate:100. () in
  let a = Allocation.make ~request:r ~bw:100. ~sigma:0. in
  let s = Summary.compute f ~all:[ r ] ~accepted:[ a ] in
  check_approx "accept rate 1" 1.0 s.Summary.accept_rate;
  check_approx "utilization 1 (scaled)" 1.0 s.Summary.utilization

let summary_speedup_and_delay () =
  let r = req ~id:1 ~volume:100. ~ts:0. ~tf:10. ~max_rate:50. () in
  (* Accepted at 2.5x its min rate, starting 2 s late. *)
  let a = Allocation.make ~request:r ~bw:25. ~sigma:2. in
  let s = Summary.compute (fabric2 ()) ~all:[ r ] ~accepted:[ a ] in
  check_approx "speedup" 2.5 s.Summary.mean_speedup;
  check_approx "start delay" 2.0 s.Summary.mean_start_delay

let guaranteed_counting () =
  let r1 = req ~id:1 ~volume:100. ~ts:0. ~tf:10. ~max_rate:40. () in
  let r2 = req ~id:2 ~volume:100. ~ts:0. ~tf:10. ~max_rate:40. () in
  let a1 = Allocation.make ~request:r1 ~bw:32. ~sigma:0. in
  (* exactly 0.8 * 40 *)
  let a2 = Allocation.make ~request:r2 ~bw:10. ~sigma:0. in
  (* min rate only *)
  Alcotest.(check int) "f=0.8 guarantees one" 1 (Summary.guaranteed_count ~f:0.8 [ a1; a2 ]);
  Alcotest.(check int) "f=0 guarantees both" 2 (Summary.guaranteed_count ~f:0.0 [ a1; a2 ]);
  Alcotest.(check int) "f=1 guarantees none" 0 (Summary.guaranteed_count ~f:1.0 [ a1; a2 ])

let feasibility_detects_overload () =
  let f = fabric2 () in
  let mk id = req ~id ~ingress:0 ~egress:0 ~volume:600. ~ts:0. ~tf:10. ~max_rate:60. () in
  let a id = Allocation.make ~request:(mk id) ~bw:60. ~sigma:0. in
  Alcotest.(check bool) "one fits" true (Summary.all_feasible f [ a 1 ]);
  Alcotest.(check bool) "two overload the port" false (Summary.all_feasible f [ a 1; a 2 ])

let feasibility_detects_deadline_miss () =
  let f = fabric2 () in
  let r = req ~id:1 ~volume:100. ~ts:0. ~tf:10. ~max_rate:50. () in
  let late = Allocation.make ~request:r ~bw:10. ~sigma:5. in
  Alcotest.(check bool) "late allocation flagged" false (Summary.all_feasible f [ late ])

let feasibility_detects_rate_violation () =
  let f = fabric2 () in
  let r = req ~id:1 ~volume:100. ~ts:0. ~tf:10. ~max_rate:20. () in
  let fast = Allocation.make ~request:r ~bw:40. ~sigma:0. in
  Alcotest.(check bool) "over-max-rate flagged" false (Summary.all_feasible f [ fast ])

(* --- Resilience edge cases --- *)

let outcome ?(admitted = true) ?(aborted = false) ?(delivered = 0.) ?finished_at
    ?(preemptions = 0) ?(violation_time = 0.) request =
  { Resilience.request; admitted; aborted; delivered; finished_at; preemptions; violation_time }

let resilience_empty () =
  let t = Resilience.compute ~span:100. [] in
  Alcotest.(check int) "total" 0 t.Resilience.total;
  check_approx "recovered_fraction defaults to 1" 1.0 t.Resilience.recovered_fraction;
  check_approx "guarantee_kept defaults to 1" 1.0 t.Resilience.guarantee_kept;
  check_approx "goodput" 0.0 t.Resilience.goodput

let resilience_zero_faults () =
  (* A fault-free run: everything admitted finishes untouched, on time. *)
  let r1 = req ~id:1 ~volume:100. ~ts:0. ~tf:10. () in
  let r2 = req ~id:2 ~volume:300. ~ts:0. ~tf:10. () in
  let t =
    Resilience.compute ~span:10.
      [ outcome ~delivered:100. ~finished_at:5. r1; outcome ~delivered:300. ~finished_at:10. r2 ]
  in
  Alcotest.(check int) "admitted" 2 t.Resilience.admitted;
  Alcotest.(check int) "nothing preempted" 0 t.Resilience.preempted;
  check_approx "recovered_fraction 1 with no preemptions" 1.0 t.Resilience.recovered_fraction;
  check_approx "guarantee fully kept" 1.0 t.Resilience.guarantee_kept;
  check_approx "no violation time" 0.0 t.Resilience.violation_minutes;
  check_approx "goodput" 40.0 t.Resilience.goodput;
  check_approx "everything promised was delivered" 1.0 t.Resilience.delivered_fraction

let resilience_all_shed () =
  (* Every admitted transfer was preempted and none came back. *)
  let mk id = req ~id ~volume:100. ~ts:0. ~tf:10. () in
  let t =
    Resilience.compute ~span:10.
      (List.map (fun id -> outcome ~preemptions:1 ~violation_time:60. (mk id)) [ 1; 2; 3 ])
  in
  Alcotest.(check int) "all preempted" 3 t.Resilience.preempted;
  Alcotest.(check int) "none recovered" 0 t.Resilience.recovered;
  check_approx "recovered_fraction 0" 0.0 t.Resilience.recovered_fraction;
  check_approx "guarantee fully broken" 0.0 t.Resilience.guarantee_kept;
  check_approx "violation minutes add up" 3.0 t.Resilience.violation_minutes;
  check_approx "nothing delivered" 0.0 t.Resilience.delivered_fraction;
  check_approx "no goodput" 0.0 t.Resilience.goodput

let resilience_aborts_excluded () =
  (* An end-host abort is not a broken network guarantee: it leaves both
     the recovery and the guarantee ratios alone. *)
  let r1 = req ~id:1 ~volume:100. ~ts:0. ~tf:10. () in
  let r2 = req ~id:2 ~volume:100. ~ts:0. ~tf:10. () in
  let t =
    Resilience.compute ~span:10.
      [ outcome ~aborted:true ~preemptions:2 ~delivered:30. r1;
        outcome ~delivered:100. ~finished_at:9. r2 ]
  in
  Alcotest.(check int) "abort counted" 1 t.Resilience.aborted;
  Alcotest.(check int) "aborted transfer not in preempted" 0 t.Resilience.preempted;
  check_approx "guarantee judged on survivors only" 1.0 t.Resilience.guarantee_kept;
  check_approx "delivered fraction counts partial bytes" 0.65 t.Resilience.delivered_fraction

let resilience_zero_span () =
  let r1 = req ~id:1 ~volume:100. ~ts:0. ~tf:10. () in
  let t = Resilience.compute ~span:0. [ outcome ~delivered:100. ~finished_at:5. r1 ] in
  check_approx "goodput guarded against zero span" 0.0 t.Resilience.goodput

let suites =
  [
    ( "stats",
      [
        case "welford known values" welford_known_values;
        case "welford empty" welford_empty;
        case "welford single" welford_single;
        case "aggregate ci95" aggregate_ci;
        case "aggregate empty" aggregate_empty;
      ] );
    ( "summary",
      [
        case "empty run" summary_empty;
        case "two requests, one accepted" two_requests_one_accepted;
        case "full acceptance saturates utilization" summary_full_acceptance;
        case "speedup and start delay" summary_speedup_and_delay;
        case "guaranteed_count thresholds" guaranteed_counting;
        case "feasibility: port overload" feasibility_detects_overload;
        case "feasibility: deadline miss" feasibility_detects_deadline_miss;
        case "feasibility: rate violation" feasibility_detects_rate_violation;
      ] );
    ( "resilience",
      [
        case "empty outcome list" resilience_empty;
        case "zero faults" resilience_zero_faults;
        case "all transfers shed" resilience_all_shed;
        case "aborts excluded from ratios" resilience_aborts_excluded;
        case "zero span" resilience_zero_span;
      ] );
  ]
