(* The serving subsystem (lib/serve): framing codec, versioned protocol,
   per-connection session machine, admission semantics (idempotency,
   durability, recovery), and a live in-process daemon driven by the
   closed-loop load generator over a real Unix socket. *)

open Helpers
module Frame = Gridbw_serve.Frame
module Protocol = Gridbw_serve.Protocol
module Session = Gridbw_serve.Session
module Admission = Gridbw_serve.Admission
module Daemon = Gridbw_serve.Daemon
module Loadgen = Gridbw_serve.Loadgen
module Store = Gridbw_store.Store
module Wal = Gridbw_store.Wal
module Obs = Gridbw_obs.Obs
module Policy = Gridbw_core.Policy
module Request = Gridbw_request.Request

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let with_tmpdir f =
  let dir = Filename.temp_file "gridbw-serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* Deterministic store config: huge batch, sync delay out of reach, so
   only explicit flushes commit. *)
let store_config () =
  { Store.default_config with
    wal = { Wal.default_config with Wal.batch = 1000; delay = 3600. };
    snapshot_bytes = max_int }

(* --- frame codec --- *)

let frame_encode_shape () =
  Alcotest.(check string) "frame layout" "3 abc\n" (Frame.encode "abc");
  Alcotest.(check string) "empty payload" "0 \n" (Frame.encode "")

let byte_string_gen =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 30))

let prop_frame_chunked_roundtrip =
  qcase ~count:300 "frame: payload lists survive chunked decoding"
    QCheck2.Gen.(pair (list_size (int_range 0 8) byte_string_gen) (int_range 1 7))
    (fun (payloads, chunk) ->
      let wire = String.concat "" (List.map Frame.encode payloads) in
      let d = Frame.decoder () in
      let out = ref [] in
      let rec drain () =
        match Frame.next d with
        | Ok (Some p) ->
            out := p :: !out;
            drain ()
        | Ok None -> ()
        | Error e -> Alcotest.failf "unexpected frame error: %s" (Frame.describe e)
      in
      let i = ref 0 in
      let n = String.length wire in
      while !i < n do
        let len = Int.min chunk (n - !i) in
        Frame.feed d (String.sub wire !i len);
        i := !i + len;
        drain ()
      done;
      drain ();
      List.rev !out = payloads && Frame.buffered d = 0)

let frame_truncated_prefix_waits () =
  let d = Frame.decoder () in
  Frame.feed d "12";
  Alcotest.(check bool) "digits alone: need more bytes" true (Frame.next d = Ok None);
  Frame.feed d " ";
  Alcotest.(check bool) "payload missing: need more bytes" true (Frame.next d = Ok None);
  Frame.feed d "abcdefghijkl\n";
  Alcotest.(check bool) "completed frame decodes" true (Frame.next d = Ok (Some "abcdefghijkl"))

let frame_errors_are_typed_and_sticky () =
  (* not a digit *)
  let d = Frame.decoder () in
  Frame.feed d "x3 abc\n";
  (match Frame.next d with
  | Error (Frame.Malformed_length _) -> ()
  | other ->
      Alcotest.failf "expected Malformed_length, got %s"
        (match other with
        | Ok _ -> "Ok"
        | Error e -> Frame.describe e));
  (* the decoder stays broken even when good bytes follow *)
  Frame.feed d (Frame.encode "fine");
  Alcotest.(check bool) "decoder stays poisoned" true
    (match Frame.next d with Error (Frame.Malformed_length _) -> true | _ -> false);
  (* length field absurdly long *)
  let d = Frame.decoder () in
  Frame.feed d "12345678901 ";
  Alcotest.(check bool) "overlong length field" true
    (match Frame.next d with Error (Frame.Malformed_length _) -> true | _ -> false);
  (* declared length over the cap *)
  let d = Frame.decoder ~max_frame:10 () in
  Frame.feed d "11 aaaaaaaaaaa\n";
  Alcotest.(check bool) "oversized" true (Frame.next d = Error (Frame.Oversized 11));
  (* missing terminator *)
  let d = Frame.decoder () in
  Frame.feed d "3 abcX";
  Alcotest.(check bool) "missing terminator" true (Frame.next d = Error Frame.Missing_terminator)

let frame_blocking_io () =
  let path = Filename.temp_file "gridbw-frame" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      Frame.output oc "hello";
      Frame.output oc "";
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          Alcotest.(check bool) "first frame" true (Frame.input ic = Ok "hello");
          Alcotest.(check bool) "second frame" true (Frame.input ic = Ok "");
          Alcotest.(check bool) "eof" true (Frame.input ic = Error `Eof)))

(* --- protocol codec --- *)

let fin = QCheck2.Gen.float_range (-1e12) 1e12
let posf = QCheck2.Gen.float_range 1e-6 1e12

let request_gen =
  QCheck2.Gen.(
    oneof
      [
        (let* id = nat and* ingress = nat and* egress = nat in
         let* volume = posf and* ts = fin and* tf = fin and* max_rate = posf in
         return (Protocol.Admit { id; ingress; egress; volume; ts; tf; max_rate }));
        map (fun id -> Protocol.Query { id }) nat;
        map (fun id -> Protocol.Cancel { id }) nat;
        return Protocol.Stats;
        return Protocol.Shutdown;
      ])

let prop_request_roundtrip =
  qcase ~count:400 "protocol: every request constructor round-trips" request_gen
    (fun r -> Protocol.decode_request (Protocol.encode_request r) = Ok r)

let response_gen =
  QCheck2.Gen.(
    let window = triple fin fin fin in
    oneof
      [
        (let* id = nat and* bw, sigma, tau = window in
         return (Protocol.Admitted { id; bw; sigma; tau }));
        (let* id = nat and* reason = byte_string_gen in
         return (Protocol.Rejected { id; reason }));
        (let* id = nat in
         let* disposition =
           oneof
             [
               return Protocol.Unknown;
               map (fun (bw, sigma, tau) -> Protocol.Active { bw; sigma; tau }) window;
               map (fun (bw, sigma, tau) -> Protocol.Done { bw; sigma; tau }) window;
               map (fun reason -> Protocol.Refused { reason }) byte_string_gen;
               return Protocol.Cancelled;
             ]
         in
         return (Protocol.Status { id; disposition }));
        map (fun id -> Protocol.Cancel_ok { id }) nat;
        (let* id = nat and* reason = byte_string_gen in
         return (Protocol.Cancel_failed { id; reason }));
        (* stats payloads embed raw Prometheus text, newlines included *)
        map (fun text -> Protocol.Stats_text text) byte_string_gen;
        map (fun records -> Protocol.Goodbye { records }) nat;
        (let* code =
           oneofl [ Protocol.Bad_frame; Protocol.Bad_json; Protocol.Bad_version; Protocol.Bad_request ]
         and* message = byte_string_gen in
         return (Protocol.Error { code; message }));
      ])

let prop_response_roundtrip =
  qcase ~count:400 "protocol: every response constructor round-trips" response_gen
    (fun r -> Protocol.decode_response (Protocol.encode_response r) = Ok r)

let protocol_rejects_bad_payloads () =
  let is_bad_json = function Result.Error (Protocol.Bad_json_e _) -> true | _ -> false in
  let is_bad_req = function Result.Error (Protocol.Bad_request_e _) -> true | _ -> false in
  Alcotest.(check bool) "not json" true (is_bad_json (Protocol.decode_request "{not json"));
  Alcotest.(check bool) "not an object" true (is_bad_json (Protocol.decode_request "[1,2]"));
  Alcotest.(check bool) "wrong version" true
    (Protocol.decode_request {|{"v":2,"op":"stats"}|} = Result.Error (Protocol.Bad_version_e 2));
  Alcotest.(check bool) "missing version" true
    (is_bad_req (Protocol.decode_request {|{"op":"stats"}|}));
  Alcotest.(check bool) "unknown verb" true
    (is_bad_req (Protocol.decode_request {|{"v":1,"op":"frobnicate"}|}));
  Alcotest.(check bool) "missing field" true
    (is_bad_req (Protocol.decode_request {|{"v":1,"op":"admit","id":3}|}));
  Alcotest.(check bool) "ill-typed field" true
    (is_bad_req (Protocol.decode_request {|{"v":1,"op":"query","id":"three"}|}));
  (* decode errors map onto typed error responses *)
  match Protocol.error_of_decode (Protocol.Bad_version_e 9) with
  | Protocol.Error { code = Protocol.Bad_version; _ } -> ()
  | _ -> Alcotest.fail "expected a bad-version error response"

(* --- session --- *)

let session_keeps_going_after_bad_payload () =
  let s = Session.create ~id:0 ~peer:"test" () in
  Session.feed s (Frame.encode "{broken json");
  (match Session.next s with
  | Some (Session.Undecodable (Protocol.Error { code = Protocol.Bad_json; _ })) -> ()
  | _ -> Alcotest.fail "expected an undecodable-payload error");
  Alcotest.(check bool) "connection survives payload errors" false (Session.want_close s);
  Session.feed s (Frame.encode (Protocol.encode_request Protocol.Stats));
  (match Session.next s with
  | Some (Session.Request Protocol.Stats) -> ()
  | _ -> Alcotest.fail "expected the stats request");
  Alcotest.(check int) "both frames counted" 2 (Session.frames_in s)

let session_closes_on_broken_framing () =
  let s = Session.create ~id:1 ~peer:"test" () in
  Session.feed s "garbage that is not a frame\n";
  (match Session.next s with
  | Some (Session.Broken (Protocol.Error { code = Protocol.Bad_frame; _ })) -> ()
  | _ -> Alcotest.fail "expected a broken-framing error");
  Alcotest.(check bool) "session wants to close" true (Session.want_close s);
  Alcotest.(check bool) "no further messages" true (Session.next s = None)

let session_output_is_framed () =
  let s = Session.create ~id:2 ~peer:"test" () in
  let resp = Protocol.Goodbye { records = 42 } in
  Session.queue s resp;
  Alcotest.(check bool) "output pending" true (Session.pending s);
  let d = Frame.decoder () in
  Frame.feed d (Session.out_chunk s);
  (match Frame.next d with
  | Ok (Some payload) ->
      Alcotest.(check bool) "payload decodes back" true
        (Protocol.decode_response payload = Ok resp)
  | _ -> Alcotest.fail "expected one complete frame");
  Session.wrote s (String.length (Session.out_chunk s));
  Alcotest.(check bool) "drained" false (Session.pending s)

(* --- admission semantics --- *)

let policy = Policy.Fraction_of_max 0.8

let admit ?(id = 1) ?(ingress = 0) ?(egress = 0) ?(volume = 100.) ?(ts = 0.) ?(tf = 10.)
    ?(max_rate = 50.) () =
  Protocol.Admit { id; ingress; egress; volume; ts; tf; max_rate }

let admission_decides_and_is_idempotent () =
  let t = Admission.create ~policy (fabric2 ()) in
  let first = Admission.handle t (admit ()) in
  (match first with
  | Protocol.Admitted { id = 1; bw; sigma; tau } ->
      (* f=0.8 grants max(0.8*50, 100/10) = 40 MB/s from sigma = ts *)
      check_approx "bw" 40.0 bw;
      check_approx "sigma" 0.0 sigma;
      check_approx "tau" 2.5 tau
  | r -> Alcotest.failf "expected admission, got %a" Protocol.pp_response r);
  (* at-least-once retry: byte-identical decision, no re-decide *)
  Alcotest.(check bool) "duplicate admit returns the recorded decision" true
    (Admission.handle t (admit ()) = first);
  Alcotest.(check int) "still one accepted" 1 (Admission.accepted_count t);
  (* infeasible: min rate 200 MB/s on a 100 MB/s port *)
  (match Admission.handle t (admit ~id:2 ~volume:2000. ~max_rate:200. ()) with
  | Protocol.Rejected { id = 2; _ } -> ()
  | r -> Alcotest.failf "expected rejection, got %a" Protocol.pp_response r);
  (* validation failures come back as typed errors, not exceptions *)
  (match Admission.handle t (admit ~id:3 ~ingress:9 ()) with
  | Protocol.Error { code = Protocol.Bad_request; _ } -> ()
  | r -> Alcotest.failf "expected bad-request (no such route), got %a" Protocol.pp_response r);
  (match Admission.handle t (admit ~id:4 ~ts:(-1.) ~tf:5. ()) with
  | Protocol.Error { code = Protocol.Bad_request; _ } -> ()
  | r -> Alcotest.failf "expected bad-request (negative ts), got %a" Protocol.pp_response r);
  (match Admission.handle t (admit ~id:5 ~tf:0. ()) with
  | Protocol.Error { code = Protocol.Bad_request; _ } -> ()
  | r -> Alcotest.failf "expected bad-request (empty window), got %a" Protocol.pp_response r)

let admission_query_and_cancel () =
  let t = Admission.create ~policy (fabric2 ()) in
  (match Admission.handle t (Protocol.Query { id = 9 }) with
  | Protocol.Status { id = 9; disposition = Protocol.Unknown } -> ()
  | r -> Alcotest.failf "expected unknown, got %a" Protocol.pp_response r);
  ignore (Admission.handle t (admit ()));
  (match Admission.handle t (Protocol.Query { id = 1 }) with
  | Protocol.Status { id = 1; disposition = Protocol.Active _ } -> ()
  | r -> Alcotest.failf "expected active, got %a" Protocol.pp_response r);
  (match Admission.handle t (Protocol.Cancel { id = 1 }) with
  | Protocol.Cancel_ok { id = 1 } -> ()
  | r -> Alcotest.failf "expected cancel-ok, got %a" Protocol.pp_response r);
  Alcotest.(check bool) "cancel retry is idempotent" true
    (Admission.handle t (Protocol.Cancel { id = 1 }) = Protocol.Cancel_ok { id = 1 });
  (match Admission.handle t (Protocol.Query { id = 1 }) with
  | Protocol.Status { id = 1; disposition = Protocol.Cancelled } -> ()
  | r -> Alcotest.failf "expected cancelled, got %a" Protocol.pp_response r);
  (match Admission.handle t (Protocol.Cancel { id = 77 }) with
  | Protocol.Cancel_failed { id = 77; _ } -> ()
  | r -> Alcotest.failf "expected cancel-failed, got %a" Protocol.pp_response r);
  (* a cancelled transfer's bandwidth is free again *)
  (match Admission.handle t (admit ~id:2 ~volume:900. ~max_rate:100. ()) with
  | Protocol.Admitted _ -> ()
  | r -> Alcotest.failf "expected re-admission after cancel, got %a" Protocol.pp_response r);
  (match Admission.handle t Protocol.Stats with
  | Protocol.Stats_text _ -> ()
  | r -> Alcotest.failf "expected stats text, got %a" Protocol.pp_response r);
  match Admission.handle t Protocol.Shutdown with
  | Protocol.Goodbye { records = 0 } -> ()
  | r -> Alcotest.failf "expected goodbye with 0 records (no store), got %a" Protocol.pp_response r

(* Journal a mixed decision history through a store, recover it, and
   demand the resumed admission state answers every retry and query with
   the original (bit-identical) decision. *)
let admission_recovery_round_trip () =
  with_tmpdir (fun dir ->
      let fabric = fabric2 () in
      let store = Store.create ~config:(store_config ()) ~dir fabric in
      let t = Admission.create ~store ~policy fabric in
      let reqs =
        List.map
          (fun (r : Request.t) ->
            Protocol.Admit
              {
                id = r.Request.id;
                ingress = r.Request.ingress;
                egress = r.Request.egress;
                volume = r.Request.volume;
                ts = Float.max 0. r.Request.ts;
                tf = r.Request.tf;
                max_rate = r.Request.max_rate;
              })
          (random_requests ~seed:11L ~n:40 fabric)
      in
      let responses = List.map (Admission.handle t) reqs in
      (* cancel the first two admitted transfers *)
      let admitted_ids =
        List.filter_map
          (function Protocol.Admitted { id; _ } -> Some id | _ -> None)
          responses
      in
      Alcotest.(check bool) "workload admits something" true (List.length admitted_ids >= 2);
      let to_cancel = [ List.nth admitted_ids 0; List.nth admitted_ids 1 ] in
      List.iter
        (fun id ->
          match Admission.handle t (Protocol.Cancel { id }) with
          | Protocol.Cancel_ok _ -> ()
          | r -> Alcotest.failf "cancel failed: %a" Protocol.pp_response r)
        to_cancel;
      Alcotest.(check bool) "decisions are dirty before flush" true (Admission.dirty t);
      Admission.flush t;
      Alcotest.(check bool) "flush clears dirty" false (Admission.dirty t);
      Admission.close t;
      match Store.recover ~config:(store_config ()) ~dir () with
      | Error e -> Alcotest.fail e
      | Ok r -> (
          match Admission.of_recovered ~policy r with
          | Error e -> Alcotest.fail e
          | Ok t2 ->
              Alcotest.(check int) "accepted count survives"
                (Admission.accepted_count t)
                (Admission.accepted_count t2);
              (* every admit retried against the recovered daemon returns
                 the original decision, floats bit-identical *)
              List.iter2
                (fun req resp ->
                  if Admission.handle t2 req <> resp then
                    Alcotest.failf "recovered decision differs for %a" Protocol.pp_request req)
                reqs responses;
              List.iter
                (fun id ->
                  match Admission.handle t2 (Protocol.Query { id }) with
                  | Protocol.Status { disposition = Protocol.Cancelled; _ } -> ()
                  | r -> Alcotest.failf "expected cancelled after recovery, got %a"
                           Protocol.pp_response r)
                to_cancel;
              Admission.close t2))

let of_recovered_refuses_engine_journals () =
  with_tmpdir (fun dir ->
      let fabric = fabric2 () in
      let store = Store.create ~config:(store_config ()) ~dir fabric in
      (* a capacity revision past the prefix marks a fault-injector run *)
      Store.log store
        (Gridbw_obs.Event.Arrival
           {
             time = 1.0;
             seq = 0;
             id = 0;
             ingress = 0;
             egress = 0;
             volume = 10.;
             ts = 1.0;
             tf = 11.0;
             max_rate = 5.;
           });
      Store.log store
        (Gridbw_obs.Event.Capacity
           { time = 5.0; side = Gridbw_obs.Event.Ingress; port = 0; capacity = 50. });
      Store.close store;
      match Store.recover ~config:(store_config ()) ~dir () with
      | Error e -> Alcotest.fail e
      | Ok r -> (
          match Admission.of_recovered ~policy r with
          | Error msg ->
              Alcotest.(check bool) "names the cause" true (String.length msg > 0)
          | Ok _ -> Alcotest.fail "engine-driven journal must be refused"))

(* --- live daemon end to end --- *)

let daemon_config ~sock ~store_dir =
  { (Daemon.default_config ~policy ~fabric:(fabric2 ()) ~store_dir (Daemon.Unix_socket sock)) with
    Daemon.store_config = store_config ();
    tick = 0.02 }

let end_to_end_live_daemon () =
  with_tmpdir (fun dir ->
      let sock = Filename.concat dir "d.sock" in
      let store_dir = Filename.concat dir "store" in
      let cfg = daemon_config ~sock ~store_dir in
      match Daemon.create cfg with
      | Error e -> Alcotest.fail e
      | Ok d -> (
          let th = Thread.create Daemon.run d in
          let lg =
            (* light load (large interarrival) so most requests admit and
               cancel_every:2 fires on every worker *)
            Loadgen.default_config ~connections:3 ~requests:300 ~seed:5L ~cancel_every:2
              ~mean_interarrival:50. ~fabric:(fabric2 ()) (Daemon.Unix_socket sock)
          in
          match Loadgen.run lg with
          | Error e ->
              Daemon.stop d;
              Thread.join th;
              Alcotest.fail e
          | Ok report -> (
              Alcotest.(check int) "every admit answered" 300
                (report.Loadgen.admitted + report.Loadgen.rejected);
              Alcotest.(check int) "no protocol errors" 0 report.Loadgen.errors;
              Alcotest.(check int) "no disconnects" 0 report.Loadgen.disconnects;
              Alcotest.(check bool) "some admitted" true (report.Loadgen.admitted > 0);
              Alcotest.(check bool) "some cancelled" true (report.Loadgen.cancelled > 0);
              Alcotest.(check bool) "latencies measured" true
                (report.Loadgen.lat_p50_us > 0.
                 && report.Loadgen.lat_p50_us <= report.Loadgen.lat_p99_us);
              (* graceful shutdown through the protocol verb *)
              (match Loadgen.shutdown (Daemon.Unix_socket sock) with
              | Error e -> Alcotest.fail ("shutdown: " ^ e)
              | Ok records -> Alcotest.(check bool) "journal non-empty" true (records > 0));
              Thread.join th;
              Alcotest.(check bool) "socket removed on shutdown" false (Sys.file_exists sock);
              (* restart on the surviving store: recovery audits clean and
                 the decision history is intact *)
              match Daemon.create cfg with
              | Error e -> Alcotest.fail ("restart: " ^ e)
              | Ok d2 ->
                  let adm = Daemon.admission d2 in
                  Alcotest.(check int) "accepted count survives restart"
                    report.Loadgen.admitted
                    (Admission.accepted_count adm);
                  Daemon.stop d2;
                  let th2 = Thread.create Daemon.run d2 in
                  Thread.join th2)))

(* --- flight recorder --- *)

module Span = Gridbw_obs.Span
module Flight = Gridbw_obs.Flight

let flight_span i =
  Span.make ~id:i ~conn:(i mod 4) ~req:(Some (1000 + i)) ~time:(float_of_int i)
    ~total_ns:(float_of_int (i * 100)) ~probes:2
    ~durs:[| 1.; 2.; 3.; 4.; 5.; 6. |]

let span_ids spans = List.map Span.id spans

let flight_wraps_and_keeps_newest () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "flight.bin" in
      (* A file this small holds only a handful of frames, so 100
         appends wrap it many times over. *)
      let frame_len =
        String.length (Gridbw_wire.Codec.to_string (module Span.Binary) (flight_span 0))
      in
      let f = Flight.create ~size:(4 * frame_len) path in
      for i = 0 to 99 do
        Flight.append f (flight_span i)
      done;
      Flight.close f;
      match Flight.scan path with
      | Error e -> Alcotest.fail e
      | Ok spans ->
          let n = List.length spans in
          Alcotest.(check bool) "a wrapped ring keeps a recent window" true
            (n >= 2 && n <= 4);
          let expect = List.init n (fun j -> 100 - n + j) in
          Alcotest.(check (list int)) "newest spans, oldest first" expect (span_ids spans);
          Alcotest.(check (list int)) "last trims to the newest two" [ 98; 99 ]
            (span_ids (Flight.last 2 spans)))

let flight_tolerates_torn_tail () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "flight.bin" in
      let f = Flight.create ~size:(1 lsl 14) path in
      for i = 0 to 9 do
        Flight.append f (flight_span i)
      done;
      Flight.close f;
      let read_all () =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let bytes = Bytes.of_string (read_all ()) in
      (* Sever the last frame mid-record: flip a byte inside it.  The
         CRC kills that frame; every other span still comes back. *)
      let frame_len =
        String.length (Gridbw_wire.Codec.to_string (module Span.Binary) (flight_span 9))
      in
      let torn_at = (10 * frame_len) - (frame_len / 2) in
      Bytes.set bytes torn_at (Char.chr (Char.code (Bytes.get bytes torn_at) lxor 0xff));
      Alcotest.(check (list int)) "corrupted frame dropped, rest recovered"
        [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
        (span_ids (Flight.scan_string (Bytes.to_string bytes)));
      (* Truncation (crash mid-write of the trailing frame) behaves the
         same: the partial record is dropped, not fatal. *)
      let truncated = Bytes.sub_string bytes 0 ((10 * frame_len) - 3) in
      Alcotest.(check (list int)) "truncated tail dropped"
        [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
        (span_ids (Flight.scan_string truncated)))

let daemon_survives_malformed_clients () =
  with_tmpdir (fun dir ->
      let sock = Filename.concat dir "d.sock" in
      let cfg =
        { (Daemon.default_config ~policy ~fabric:(fabric2 ()) (Daemon.Unix_socket sock)) with
          Daemon.tick = 0.02 }
      in
      match Daemon.create cfg with
      | Error e -> Alcotest.fail e
      | Ok d ->
          let th = Thread.create Daemon.run d in
          let connect () =
            let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX sock);
            fd
          in
          (* a client with broken framing gets a typed error then the boot *)
          let fd = connect () in
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          output_string oc "this is not a frame\n";
          flush oc;
          (match Frame.input ic with
          | Ok payload -> (
              match Protocol.decode_response payload with
              | Ok (Protocol.Error { code = Protocol.Bad_frame; _ }) -> ()
              | _ -> Alcotest.fail "expected a bad-frame error response")
          | Error _ -> Alcotest.fail "expected an error response before close");
          Alcotest.(check bool) "connection closed after framing error" true
            (Frame.input ic = Error `Eof);
          Unix.close fd;
          (* bad JSON in a well-formed frame keeps the connection alive *)
          let fd = connect () in
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          Frame.output oc "{broken";
          (match Frame.input ic with
          | Ok payload -> (
              match Protocol.decode_response payload with
              | Ok (Protocol.Error { code = Protocol.Bad_json; _ }) -> ()
              | _ -> Alcotest.fail "expected a bad-json error response")
          | Error _ -> Alcotest.fail "expected an error response");
          Frame.output oc (Protocol.encode_request Protocol.Stats);
          (match Frame.input ic with
          | Ok payload -> (
              match Protocol.decode_response payload with
              | Ok (Protocol.Stats_text text) ->
                  Alcotest.(check bool) "stats carries serve metrics" true
                    (contains ~affix:"serve_connections_total" text)
              | _ -> Alcotest.fail "expected stats after the payload error")
          | Error _ -> Alcotest.fail "connection should have survived the payload error");
          Unix.close fd;
          Daemon.stop d;
          Thread.join th)

let suites =
  [
    ( "serve.frame",
      [
        case "encode layout" frame_encode_shape;
        prop_frame_chunked_roundtrip;
        case "truncated prefixes wait for bytes" frame_truncated_prefix_waits;
        case "malformed frames: typed, sticky errors" frame_errors_are_typed_and_sticky;
        case "blocking channel helpers" frame_blocking_io;
      ] );
    ( "serve.protocol",
      [
        prop_request_roundtrip;
        prop_response_roundtrip;
        case "malformed payloads: typed decode errors" protocol_rejects_bad_payloads;
      ] );
    ( "serve.session",
      [
        case "payload errors keep the connection" session_keeps_going_after_bad_payload;
        case "framing errors close the connection" session_closes_on_broken_framing;
        case "responses leave framed" session_output_is_framed;
      ] );
    ( "serve.admission",
      [
        case "decide, reject, validate, idempotent retries" admission_decides_and_is_idempotent;
        case "query and cancel lifecycle" admission_query_and_cancel;
        case "journal, recover, bit-identical decisions" admission_recovery_round_trip;
        case "engine-driven journals refused" of_recovered_refuses_engine_journals;
      ] );
    ( "serve.flight",
      [
        case "ring file wraps, keeps the newest spans" flight_wraps_and_keeps_newest;
        case "torn tail drops the damaged frame only" flight_tolerates_torn_tail;
      ] );
    ( "serve.daemon",
      [
        slow_case "end to end: loadgen, shutdown, restart" end_to_end_live_daemon;
        case "malformed clients get typed errors" daemon_survives_malformed_clients;
      ] );
  ]
