open Helpers
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Validate = Gridbw_metrics.Validate
module Hotspot = Gridbw_metrics.Hotspot
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types

let alloc ?(id = 1) ?(ingress = 0) ?(egress = 0) ?(volume = 500.) ?(ts = 0.) ?(tf = 10.)
    ?(max_rate = 100.) ?(bw = 50.) ?(sigma = 0.) () =
  Allocation.make ~request:(req ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate ()) ~bw ~sigma

let clean_schedule_is_valid () =
  Alcotest.(check bool) "valid" true (Validate.is_valid (fabric2 ()) [ alloc () ]);
  Alcotest.(check string) "clean report" "schedule is feasible"
    (Validate.report (fabric2 ()) [ alloc () ])

let empty_is_valid () = Alcotest.(check bool) "empty" true (Validate.is_valid (fabric2 ()) [])

let detects_port_overload () =
  let a1 = alloc ~id:1 ~bw:60. () and a2 = alloc ~id:2 ~bw:60. () in
  let vs = Validate.check (fabric2 ()) [ a1; a2 ] in
  (* Both the shared ingress and the shared egress overload. *)
  Alcotest.(check int) "two overloads" 2 (List.length vs);
  match vs with
  | Validate.Port_overload { side = Hotspot.Ingress; port = 0; usage; capacity; _ } :: _ ->
      check_approx "usage" 120.0 usage;
      check_approx "capacity" 100.0 capacity
  | _ -> Alcotest.fail "expected an ingress overload first"

let detects_deadline_miss () =
  let late = alloc ~bw:20. ~sigma:5. () in
  (* 500 MB at 20 MB/s from t=5 -> tau = 30 > tf = 10 *)
  match Validate.check (fabric2 ()) [ late ] with
  | [ Validate.Deadline_miss { request_id = 1; tau; tf } ] ->
      check_approx "tau" 30.0 tau;
      check_approx "tf" 10.0 tf
  | vs -> Alcotest.failf "expected exactly a deadline miss, got %d violations" (List.length vs)

let detects_rate_violation () =
  (* volume 150 at bw 15 from 0: tau = 10 = tf, fine on deadline; but cap
     the host at 10. *)
  let r = req ~id:1 ~volume:100. ~ts:0. ~tf:10. ~max_rate:10. () in
  let a = Allocation.make ~request:r ~bw:15. ~sigma:0. in
  let vs = Validate.check (fabric2 ()) [ a ] in
  Alcotest.(check bool) "rate violation present" true
    (List.exists (function Validate.Rate_above_max _ -> true | _ -> false) vs)

let detects_bad_route () =
  let r = Request.make ~id:1 ~ingress:7 ~egress:0 ~volume:10. ~ts:0. ~tf:10. ~max_rate:10. in
  let a = Allocation.make ~request:r ~bw:1. ~sigma:0. in
  match Validate.check (fabric2 ()) [ a ] with
  | [ Validate.Bad_route { ingress = 7; _ } ] -> ()
  | _ -> Alcotest.fail "expected exactly a bad route"

let detects_duplicates () =
  let a = alloc ~bw:10. () in
  let vs = Validate.check (fabric2 ()) [ a; a ] in
  Alcotest.(check bool) "duplicate flagged" true
    (List.exists (function Validate.Duplicate_request _ -> true | _ -> false) vs)

let report_lists_violations () =
  let a1 = alloc ~id:1 ~bw:60. () and a2 = alloc ~id:2 ~bw:60. () in
  let text = Validate.report (fabric2 ()) [ a1; a2 ] in
  Alcotest.(check bool) "mentions overloads" true
    (String.length text > 0 && text.[0] = '2')

let heuristic_output_always_clean () =
  let reqs = random_requests ~seed:44L ~n:80 (fabric2 ()) in
  List.iter
    (fun kind ->
      let result = Flexible.run kind (fabric2 ()) (Policy.Fraction_of_max 0.8) reqs in
      match Validate.check (fabric2 ()) result.Types.accepted with
      | [] -> ()
      | vs ->
          Alcotest.failf "%s produced %d violations, first: %s"
            (Flexible.heuristic_name kind) (List.length vs)
            (Format.asprintf "%a" Validate.pp_violation (List.hd vs)))
    [ `Greedy; `Window 11.0; `Window_deferred 11.0 ]

let agrees_with_summary_all_feasible () =
  let good = [ alloc () ] in
  let bad = [ alloc ~id:1 ~bw:60. (); alloc ~id:2 ~bw:60. () ] in
  Alcotest.(check bool) "good agrees" true
    (Validate.is_valid (fabric2 ()) good
    = Gridbw_metrics.Summary.all_feasible (fabric2 ()) good);
  Alcotest.(check bool) "bad agrees" true
    (Validate.is_valid (fabric2 ()) bad
    = Gridbw_metrics.Summary.all_feasible (fabric2 ()) bad)

let suites =
  [
    ( "validate",
      [
        case "clean schedule" clean_schedule_is_valid;
        case "empty schedule" empty_is_valid;
        case "port overload" detects_port_overload;
        case "deadline miss" detects_deadline_miss;
        case "rate violation" detects_rate_violation;
        case "bad route" detects_bad_route;
        case "duplicates" detects_duplicates;
        case "report text" report_lists_violations;
        case "heuristic output always clean" heuristic_output_always_clean;
        case "agrees with Summary.all_feasible" agrees_with_summary_all_feasible;
      ] );
  ]
