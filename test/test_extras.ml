(* Tests for the auxiliary tooling: gnuplot export, diurnal arrivals,
   utilization timelines. *)

open Helpers
module Figure = Gridbw_report.Figure
module Gnuplot = Gridbw_report.Gnuplot
module Spec = Gridbw_workload.Spec
module Diurnal = Gridbw_workload.Diurnal
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Timeline = Gridbw_metrics.Timeline
module Rng = Gridbw_prng.Rng

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

(* --- gnuplot --- *)

let fig () =
  Figure.make ~id:"t-fig" ~title:"a \"quoted\" title" ~x_label:"x" ~y_label:"y"
    [ Figure.series ~label:"s1" [ (1.0, 2.0); (3.0, 4.0) ];
      Figure.series ~label:"s2" [ (1.0, 0.5) ] ]

let gnuplot_script_structure () =
  let s = Gnuplot.script (fig ()) in
  Alcotest.(check bool) "has data block per series" true
    (contains ~needle:"$data0 << EOD" s && contains ~needle:"$data1 << EOD" s);
  Alcotest.(check bool) "plots both" true (contains ~needle:"title \"s2\"" s);
  Alcotest.(check bool) "escapes quotes" true (contains ~needle:"a \\\"quoted\\\" title" s);
  Alcotest.(check bool) "data points present" true (contains ~needle:"3 4" s)

let gnuplot_empty_figure () =
  let empty = Figure.make ~id:"e" ~title:"e" ~x_label:"x" ~y_label:"y" [] in
  Alcotest.(check bool) "no plot line" true
    (contains ~needle:"# no series" (Gnuplot.script empty))

let gnuplot_write_file () =
  let dir = Filename.temp_file "gridbw" "" in
  Sys.remove dir;
  let path = Gnuplot.write ~dir (fig ()) in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.rmdir dir)
    (fun () ->
      Alcotest.(check bool) "file exists" true (Sys.file_exists path);
      Alcotest.(check bool) "named by id" true (Filename.basename path = "t-fig.gp"))

(* --- diurnal --- *)

let day_night_shape () =
  let f = Diurnal.day_night ~base:1.0 ~peak:5.0 ~period:24.0 in
  check_approx "trough at 0" 1.0 (f 0.0);
  check_approx "crest at half period" 5.0 (f 12.0);
  check_approx "periodic" (f 3.0) (f 27.0)

let day_night_validation () =
  (* day_night validates eagerly, before returning the closure. *)
  (match (Diurnal.day_night ~base:2.0 ~peak:1.0 ~period:10.) 0.0 with
  | exception Invalid_argument _ -> ()
  | (_ : float) -> Alcotest.fail "peak < base accepted");
  match (Diurnal.day_night ~base:0. ~peak:1. ~period:0.) 0.0 with
  | exception Invalid_argument _ -> ()
  | (_ : float) -> Alcotest.fail "zero period accepted"

let thinning_matches_mean () =
  let intensity = Diurnal.day_night ~base:0.5 ~peak:1.5 ~period:100.0 in
  (* Mean rate over a whole period is (base + peak) / 2 = 1. *)
  let times =
    Diurnal.arrival_times (rng ~seed:17L ()) intensity ~peak:1.5 ~horizon:40_000.0
  in
  let rate = float_of_int (List.length times) /. 40_000.0 in
  if Float.abs (rate -. 1.0) > 0.05 then Alcotest.failf "thinned rate drifted: %f" rate;
  let sorted = List.sort Float.compare times in
  Alcotest.(check bool) "sorted" true (sorted = times)

let thinning_concentrates_at_peak () =
  let intensity = Diurnal.day_night ~base:0.01 ~peak:2.0 ~period:100.0 in
  let times = Diurnal.arrival_times (rng ()) intensity ~peak:2.0 ~horizon:10_000.0 in
  (* Night = middle half of each period carries nearly all arrivals. *)
  let crest = List.filter (fun t -> let ph = Float.rem t 100. in ph > 25. && ph < 75.) times in
  Alcotest.(check bool) "crest-heavy" true
    (float_of_int (List.length crest) > 0.8 *. float_of_int (List.length times))

let thinning_rejects_underestimated_peak () =
  let intensity = fun _ -> 5.0 in
  match Diurnal.arrival_times (rng ()) intensity ~peak:1.0 ~horizon:100.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dominating rate violation accepted"

let diurnal_generate_valid_requests () =
  let spec =
    Spec.make ~fabric:(fabric2 ()) ~volumes:(Spec.Uniform_volume { lo = 10.; hi = 100. })
      ~rate_lo:1. ~rate_hi:50. ~mean_interarrival:1. ()
  in
  let intensity = Diurnal.day_night ~base:0.05 ~peak:0.5 ~period:500.0 in
  let reqs = Diurnal.generate (rng ()) spec intensity ~peak:0.5 ~horizon:2_000.0 in
  Alcotest.(check bool) "some arrivals" true (List.length reqs > 10);
  List.iteri
    (fun i (r : Request.t) ->
      Alcotest.(check int) "sequential ids" i r.id;
      Alcotest.(check bool) "routed" true (Request.routed_on r (fabric2 ()));
      Alcotest.(check bool) "within horizon" true (r.ts < 2_000.0))
    reqs

(* --- timeline --- *)

let timeline_usage () =
  let f = fabric2 () in
  let r1 = req ~id:1 ~ingress:0 ~egress:1 ~volume:600. ~ts:0. ~tf:10. ~max_rate:60. () in
  let r2 = req ~id:2 ~ingress:0 ~egress:0 ~volume:100. ~ts:5. ~tf:10. ~max_rate:20. () in
  let allocations =
    [ Allocation.make ~request:r1 ~bw:60. ~sigma:0.; Allocation.make ~request:r2 ~bw:20. ~sigma:5. ]
  in
  let tl = Timeline.build f allocations in
  (match Timeline.span tl with
  | Some (lo, hi) ->
      check_approx "span lo" 0.0 lo;
      check_approx "span hi" 10.0 hi
  | None -> Alcotest.fail "expected a span");
  check_approx "ingress 0 early" 60.0 (Timeline.ingress_usage tl 0 ~at:2.0);
  check_approx "ingress 0 overlapped" 80.0 (Timeline.ingress_usage tl 0 ~at:6.0);
  check_approx "egress 1" 60.0 (Timeline.egress_usage tl 1 ~at:6.0);
  check_approx "total rate" 80.0 (Timeline.total_rate tl ~at:6.0);
  (* half capacity of fabric2 = 200 *)
  check_approx "utilization" 0.4 (Timeline.utilization tl ~at:6.0)

let timeline_sampling () =
  let f = fabric2 () in
  let r = req ~id:1 ~volume:1000. ~ts:0. ~tf:10. ~max_rate:100. () in
  let tl = Timeline.build f [ Allocation.make ~request:r ~bw:100. ~sigma:0. ] in
  let samples = Timeline.sample tl ~points:5 in
  Alcotest.(check int) "five samples" 5 (List.length samples);
  let xs = List.map fst samples in
  check_approx "first at span start" 0.0 (List.hd xs);
  check_approx "last at span end" 10.0 (List.nth xs 4)

let timeline_empty () =
  let tl = Timeline.build (fabric2 ()) [] in
  Alcotest.(check bool) "no span" true (Timeline.span tl = None);
  Alcotest.(check int) "no samples" 0 (List.length (Timeline.sample tl ~points:3))

let timeline_peaks () =
  let f = fabric2 () in
  let r = req ~id:1 ~ingress:1 ~egress:0 ~volume:500. ~ts:0. ~tf:10. ~max_rate:50. () in
  let tl = Timeline.build f [ Allocation.make ~request:r ~bw:50. ~sigma:0. ] in
  let peaks = Timeline.peak_port_usage tl in
  Alcotest.(check int) "four ports" 4 (List.length peaks);
  let peak_of side idx =
    let _, _, v = List.find (fun (s, i, _) -> s = side && i = idx) peaks in
    v
  in
  check_approx "ingress 1 peak" 50.0 (peak_of "ingress" 1);
  check_approx "ingress 0 idle" 0.0 (peak_of "ingress" 0);
  check_approx "egress 0 peak" 50.0 (peak_of "egress" 0)

let suites =
  [
    ( "gnuplot",
      [
        case "script structure" gnuplot_script_structure;
        case "empty figure" gnuplot_empty_figure;
        case "write file" gnuplot_write_file;
      ] );
    ( "diurnal",
      [
        case "day/night intensity shape" day_night_shape;
        case "intensity validation" day_night_validation;
        case "thinning matches mean rate" thinning_matches_mean;
        case "arrivals concentrate at the crest" thinning_concentrates_at_peak;
        case "underestimated peak rejected" thinning_rejects_underestimated_peak;
        case "generated requests valid" diurnal_generate_valid_requests;
      ] );
    ( "timeline",
      [
        case "usage accounting" timeline_usage;
        case "uniform sampling" timeline_sampling;
        case "empty timeline" timeline_empty;
        case "peak port usage" timeline_peaks;
      ] );
  ]
