open Helpers
module Dinic = Gridbw_flow.Dinic
module Rng = Gridbw_prng.Rng

let invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let single_edge () =
  let g = Dinic.create ~vertices:2 in
  let e = Dinic.add_edge g ~src:0 ~dst:1 ~capacity:7 in
  Alcotest.(check int) "flow" 7 (Dinic.max_flow g ~source:0 ~sink:1);
  Alcotest.(check int) "edge carries it" 7 (Dinic.flow_on g e)

let series_bottleneck () =
  let g = Dinic.create ~vertices:3 in
  ignore (Dinic.add_edge g ~src:0 ~dst:1 ~capacity:10);
  ignore (Dinic.add_edge g ~src:1 ~dst:2 ~capacity:3);
  Alcotest.(check int) "bottleneck" 3 (Dinic.max_flow g ~source:0 ~sink:2)

let parallel_paths () =
  let g = Dinic.create ~vertices:4 in
  ignore (Dinic.add_edge g ~src:0 ~dst:1 ~capacity:5);
  ignore (Dinic.add_edge g ~src:0 ~dst:2 ~capacity:4);
  ignore (Dinic.add_edge g ~src:1 ~dst:3 ~capacity:5);
  ignore (Dinic.add_edge g ~src:2 ~dst:3 ~capacity:4);
  Alcotest.(check int) "sums paths" 9 (Dinic.max_flow g ~source:0 ~sink:3)

(* The classic case where a greedy augmenting path must be undone through
   the residual edge. *)
let needs_residual () =
  let g = Dinic.create ~vertices:4 in
  ignore (Dinic.add_edge g ~src:0 ~dst:1 ~capacity:1);
  ignore (Dinic.add_edge g ~src:0 ~dst:2 ~capacity:1);
  ignore (Dinic.add_edge g ~src:1 ~dst:2 ~capacity:1);
  ignore (Dinic.add_edge g ~src:1 ~dst:3 ~capacity:1);
  ignore (Dinic.add_edge g ~src:2 ~dst:3 ~capacity:1);
  Alcotest.(check int) "2 units through the cross edge" 2 (Dinic.max_flow g ~source:0 ~sink:3)

let disconnected () =
  let g = Dinic.create ~vertices:4 in
  ignore (Dinic.add_edge g ~src:0 ~dst:1 ~capacity:5);
  ignore (Dinic.add_edge g ~src:2 ~dst:3 ~capacity:5);
  Alcotest.(check int) "no path" 0 (Dinic.max_flow g ~source:0 ~sink:3)

let zero_capacity_edges () =
  let g = Dinic.create ~vertices:2 in
  ignore (Dinic.add_edge g ~src:0 ~dst:1 ~capacity:0);
  Alcotest.(check int) "blocked" 0 (Dinic.max_flow g ~source:0 ~sink:1)

let bipartite_matching () =
  (* 3x3 bipartite with a perfect matching. *)
  let g = Dinic.create ~vertices:8 in
  let src = 0 and sink = 7 in
  let left i = 1 + i and right j = 4 + j in
  for i = 0 to 2 do
    ignore (Dinic.add_edge g ~src ~dst:(left i) ~capacity:1);
    ignore (Dinic.add_edge g ~src:(right i) ~dst:sink ~capacity:1)
  done;
  List.iter
    (fun (i, j) -> ignore (Dinic.add_edge g ~src:(left i) ~dst:(right j) ~capacity:1))
    [ (0, 0); (0, 1); (1, 1); (1, 2); (2, 0) ];
  Alcotest.(check int) "perfect matching" 3 (Dinic.max_flow g ~source:src ~sink)

let validation () =
  let g = Dinic.create ~vertices:2 in
  invalid "negative capacity" (fun () -> Dinic.add_edge g ~src:0 ~dst:1 ~capacity:(-1));
  invalid "bad vertex" (fun () -> Dinic.add_edge g ~src:0 ~dst:9 ~capacity:1);
  invalid "source = sink" (fun () -> Dinic.max_flow g ~source:0 ~sink:0);
  invalid "zero vertices" (fun () -> Dinic.create ~vertices:0)

let add_after_solve_rejected () =
  let g = Dinic.create ~vertices:2 in
  ignore (Dinic.add_edge g ~src:0 ~dst:1 ~capacity:1);
  ignore (Dinic.max_flow g ~source:0 ~sink:1);
  invalid "frozen" (fun () -> Dinic.add_edge g ~src:0 ~dst:1 ~capacity:1)

(* Flow conservation and capacity bounds against a brute-force min-cut
   upper bound on random small graphs. *)
let prop_flow_bounded_by_cuts =
  qcase ~count:40 "qcheck: max flow equals brute-force min cut"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let vertices = 5 in
      let edges =
        List.init 10 (fun _ ->
            (Rng.int rng vertices, Rng.int rng vertices, Rng.int rng 5))
        |> List.filter (fun (s, d, _) -> s <> d)
      in
      let g = Dinic.create ~vertices in
      List.iter (fun (s, d, c) -> ignore (Dinic.add_edge g ~src:s ~dst:d ~capacity:c)) edges;
      let flow = Dinic.max_flow g ~source:0 ~sink:(vertices - 1) in
      (* Brute-force min cut over all source-side subsets containing 0 and
         not vertices-1. *)
      let min_cut = ref max_int in
      for mask = 0 to (1 lsl vertices) - 1 do
        if mask land 1 = 1 && mask land (1 lsl (vertices - 1)) = 0 then begin
          let cut =
            List.fold_left
              (fun acc (s, d, c) ->
                if mask land (1 lsl s) <> 0 && mask land (1 lsl d) = 0 then acc + c else acc)
              0 edges
          in
          if cut < !min_cut then min_cut := cut
        end
      done;
      flow = !min_cut)

let suites =
  [
    ( "dinic",
      [
        case "single edge" single_edge;
        case "series bottleneck" series_bottleneck;
        case "parallel paths" parallel_paths;
        case "needs residual edges" needs_residual;
        case "disconnected" disconnected;
        case "zero capacity" zero_capacity_edges;
        case "bipartite matching" bipartite_matching;
        case "validation" validation;
        case "frozen after solve" add_after_solve_rejected;
        prop_flow_bounded_by_cuts;
      ] );
  ]
