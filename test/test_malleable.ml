(* The MALLEABLE engine (lib/malleable): bitwise profile closure on
   random workloads, the compensation limit, constant-step parity with
   GREEDY, reshape opening capacity, overload dominance over GREEDY, and
   the exact-optimum upper bound on small instances. *)

open Helpers
module Malleable = Gridbw_malleable.Malleable
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Rate_profile = Gridbw_alloc.Rate_profile
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Exact = Gridbw_core.Exact
module Reference = Gridbw_check.Reference
module Rng = Gridbw_prng.Rng
module ME = Gridbw_experiments.Malleable_exp
module Runner = Gridbw_experiments.Runner

(* --- profile closure: the engine's core contract ---

   Every accepted allocation carries a step profile that (a) integrates
   to the request volume BITWISE (Kahan order, [=] not [approx]), (b)
   never exceeds max_rate, (c) stays inside the transfer window, and the
   whole accepted set passes the reference capacity audit. *)

let closes config seed =
  let reqs = workload_of_seed ~n:40 seed in
  let result = Malleable.run config (fabric2 ()) reqs in
  List.for_all
    (fun (a : Allocation.t) ->
      let r = a.Allocation.request in
      match a.Allocation.profile with
      | None -> false
      | Some p ->
          Rate_profile.integral p = r.Request.volume
          && Rate_profile.peak p <= r.Request.max_rate
          && Rate_profile.start p >= r.Request.ts
          && Rate_profile.finish p <= Malleable.deadline_limit r)
    result.Types.accepted
  && Reference.audit_allocations (fabric2 ()) result.Types.accepted = []

let prop_profiles_close =
  qcase ~count:60 "malleable: every profile closes bitwise, in rate and window" seed_gen
    (fun seed -> closes Malleable.default seed)

let prop_profiles_close_booked =
  qcase ~count:40 "malleable(ba=7): booked profiles close too" seed_gen (fun seed ->
      closes { Malleable.default with Malleable.book_ahead = 7. } seed)

let prop_kappa_bounds_peak =
  qcase ~count:40 "malleable(kappa=2): no step exceeds the compensation limit" seed_gen
    (fun seed ->
      let config = { Malleable.default with Malleable.kappa = 2. } in
      let reqs = workload_of_seed ~n:40 seed in
      let result = Malleable.run config (fabric2 ()) reqs in
      List.for_all
        (fun (a : Allocation.t) ->
          let r = a.Allocation.request in
          let limit = Float.min r.Request.max_rate (2. *. Request.min_rate r) in
          match a.Allocation.profile with
          | None -> false
          | Some p -> Rate_profile.peak p <= limit)
        result.Types.accepted)

(* --- constant-step parity: the property-gated degenerate mode ---

   With reshaping off and one constant step per request the engine must
   reproduce GREEDY/MinRate decision for decision, bit for bit. *)

let decisions (res : Types.result) =
  ( List.map
      (fun (a : Allocation.t) ->
        (a.Allocation.request.Request.id, a.Allocation.bw, a.Allocation.sigma, a.Allocation.tau))
      res.Types.accepted,
    List.map (fun ((r : Request.t), reason) -> (r.Request.id, reason)) res.Types.rejected )

let prop_constant_step_parity =
  qcase ~count:60 "malleable-constant: bit-identical to greedy/minrate" seed_gen (fun seed ->
      let reqs = workload_of_seed ~n:40 seed in
      let m =
        Malleable.run { Malleable.default with Malleable.constant_step = true } (fabric2 ()) reqs
      in
      let g = Flexible.greedy (fabric2 ()) Policy.Min_rate reqs in
      decisions m = decisions g)

(* --- reshaping opens capacity ---

   On a 10 MB/s 1x1 fabric, A (100 MB over [0,20]) level-fills at rate 5
   across its whole window, leaving 5 MB/s of headroom before t=10.
   B (60 MB due by t=10) can move at most 50 MB through that headroom
   and must be rejected unless the engine may reshape A's
   not-yet-started profile.  The EDF re-solve gives B rate 6 on [0,10)
   and A rate 4 then 6 across the two halves: both close. *)

let test_reshape_opens_capacity () =
  let fabric = Fabric.uniform ~ingress_count:1 ~egress_count:1 ~capacity:10. in
  let a = Request.make ~id:0 ~ingress:0 ~egress:0 ~volume:100. ~ts:0. ~tf:20. ~max_rate:10. in
  let b = Request.make ~id:1 ~ingress:0 ~egress:0 ~volume:60. ~ts:0. ~tf:10. ~max_rate:10. in
  let config = { Malleable.default with Malleable.book_ahead = 100. } in
  let reshaped = Malleable.run config fabric [ a; b ] in
  Alcotest.(check int) "reshape admits both" 2 (List.length reshaped.Types.accepted);
  (match Reference.audit_allocations fabric reshaped.Types.accepted with
  | [] -> ()
  | vs -> Alcotest.failf "reshaped schedule fails the audit (%d violations)" (List.length vs));
  let frozen =
    Malleable.run { config with Malleable.reshape = false } fabric [ a; b ]
  in
  Alcotest.(check int) "without reshape only A fits" 1 (List.length frozen.Types.accepted);
  match frozen.Types.rejected with
  | [ (r, _) ] -> Alcotest.(check int) "B is the reject" 1 r.Request.id
  | _ -> Alcotest.fail "expected exactly one rejection"

(* --- accept-rate dominance at the shipped overload operating points ---

   On the section 5.3 workload MALLEABLE must accept at least GREEDY's
   rate on every row and strictly more on at least one (ISSUE 10's
   acceptance bar; the full four-point sweep ships in `gridbw table
   malleable`, the test pins a two-point slice to stay fast). *)

let test_overload_dominance () =
  let rows = ME.run ~interarrivals:[ 0.1; 0.15 ] Runner.quick in
  List.iter
    (fun (r : ME.row) ->
      if r.ME.malleable < r.ME.greedy then
        Alcotest.failf "interarrival %g: malleable %.4f < greedy %.4f" r.ME.mean_interarrival
          r.ME.malleable r.ME.greedy)
    rows;
  Alcotest.(check bool) "strictly higher on at least one row" true
    (List.exists (fun (r : ME.row) -> r.ME.malleable > r.ME.greedy) rows)

(* --- never above the exact optimum ---

   On 1x1 fabrics the flow-based feasibility check of
   [Exact.max_requests_malleable] is exact, so the engine may never
   accept more requests than the solver. *)

let test_exact_bound () =
  let gaps = ME.gap ~sizes:[ 4; 6 ] ~trials:10 ~seed:42L () in
  Alcotest.(check int) "two sizes" 2 (List.length gaps);
  List.iter
    (fun (g : ME.gap_row) ->
      Alcotest.(check bool) (Printf.sprintf "size %d solved to optimality" g.ME.size) true
        g.ME.all_optimal;
      if g.ME.engine_accepted > g.ME.exact_count then
        Alcotest.failf "size %d: engine accepted %d > exact optimum %d" g.ME.size
          g.ME.engine_accepted g.ME.exact_count)
    gaps

let prop_engine_below_exact =
  qcase ~count:15 "malleable: accept count <= exact optimum on random 1x1 instances" seed_gen
    (fun seed ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let fabric = Fabric.uniform ~ingress_count:1 ~egress_count:1 ~capacity:100. in
      let reqs =
        List.init 6 (fun id ->
            let ts = Rng.float_in rng 0. 50. in
            let dur = Rng.float_in rng 1. 25. in
            let min_rate = Rng.float_in rng 2. 80. in
            let slack = Rng.float_in rng 1. 3. in
            Request.make ~id ~ingress:0 ~egress:0 ~volume:(min_rate *. dur) ~ts
              ~tf:(ts +. dur) ~max_rate:(Float.min 100. (min_rate *. slack)))
      in
      let res = Malleable.run Malleable.default fabric reqs in
      let sol = Exact.max_requests_malleable fabric reqs in
      sol.Exact.optimal && List.length res.Types.accepted <= sol.Exact.count)

let suites =
  [
    ( "malleable",
      [
        prop_profiles_close;
        prop_profiles_close_booked;
        prop_kappa_bounds_peak;
        prop_constant_step_parity;
        case "reshape opens capacity a frozen schedule wastes" test_reshape_opens_capacity;
        slow_case "accept rate dominates GREEDY at the overload points" test_overload_dominance;
        slow_case "never above the exact optimum (seeded gap sweep)" test_exact_bound;
        prop_engine_below_exact;
      ] );
  ]
