(* lib/wire: the two wire forms of every event constructor must agree —
   encode with either codec, decode, and land on the same event — plus
   frame-level corruption detection, truncation handling, and
   mixed-format streams (trace files and WAL segments may interleave
   JSONL lines and binary frames freely). *)

open Helpers
module Codec = Gridbw_wire.Codec
module Frame = Gridbw_wire.Frame
module Crc32 = Gridbw_wire.Crc32
module Event = Gridbw_obs.Event
module Event_codec = Gridbw_obs.Event_codec
module Wal = Gridbw_store.Wal

(* %.17g is injective on finite floats (17 significant digits
   round-trip), so JSON text equality is event equality — and it is the
   very representation the JSONL codec ships, so comparing through it
   checks exactly what the wire preserves. *)
let event_eq a b = Event.to_json a = Event.to_json b

let pp_event fmt e = Format.pp_print_string fmt (Event.to_json e)
let event_testable = Alcotest.testable pp_event event_eq

(* --- generators --- *)

let gen_float =
  QCheck2.Gen.(
    oneof
      [
        map (fun f -> if Float.is_finite f then f else 0.) float;
        float_range (-1e6) 1e6;
        oneofl [ 0.; -0.; 1e-300; 1e300; 4910.25 ];
      ])

let gen_id = QCheck2.Gen.int_range 0 1_000_000
let gen_side = QCheck2.Gen.oneofl [ Event.Ingress; Event.Egress ]

let gen_reason =
  QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 24))

let gen_event =
  let open QCheck2.Gen in
  let* k = int_range 1 7 in
  match k with
  | 1 ->
      let* time = gen_float and* seq = gen_id and* id = gen_id in
      let* ingress = gen_id and* egress = gen_id in
      let* volume = gen_float and* ts = gen_float and* tf = gen_float in
      let* max_rate = gen_float in
      return (Event.Arrival { time; seq; id; ingress; egress; volume; ts; tf; max_rate })
  | 2 ->
      let* time = gen_float and* id = gen_id in
      let* ingress = gen_id and* egress = gen_id in
      let* volume = gen_float and* ts = gen_float and* tf = gen_float in
      let* max_rate = gen_float and* bw = gen_float and* sigma = gen_float in
      let* shard = option gen_id in
      return (Event.Accept { time; id; ingress; egress; volume; ts; tf; max_rate; bw; sigma; shard })
  | 3 ->
      let* time = gen_float and* id = gen_id and* reason = gen_reason in
      let* port = option (pair gen_side gen_id) in
      let* headroom = option gen_float in
      let* shard = option gen_id in
      return (Event.Reject { time; id; reason; port; headroom; shard })
  | 4 ->
      let* time = gen_float and* id = gen_id and* bw = gen_float in
      let* shard = option gen_id in
      return (Event.Preempt { time; id; bw; shard })
  | 5 ->
      let* time = gen_float and* side = gen_side and* port = gen_id in
      let* excess = gen_float and* victims = gen_id in
      return (Event.Shed { time; side; port; excess; victims })
  | 6 ->
      let* time = gen_float and* side = gen_side and* port = gen_id in
      let* capacity = gen_float in
      return (Event.Capacity { time; side; port; capacity })
  | _ ->
      let* time = gen_float and* pending = gen_id in
      return (Event.Dispatch { time; pending })

(* One fixed exemplar per constructor, so every constructor is pinned
   even if a qcheck run draws unevenly. *)
let exemplars =
  [
    Event.Arrival
      { time = 1.5; seq = 0; id = 7; ingress = 1; egress = 2; volume = 100.;
        ts = 0.; tf = 10.; max_rate = 12.5 };
    Event.Accept
      { time = 2.; id = 7; ingress = 1; egress = 2; volume = 100.; ts = 0.;
        tf = 10.; max_rate = 12.5; bw = 10.; sigma = 2.; shard = None };
    Event.Accept
      { time = 2.5; id = 11; ingress = 1; egress = 2; volume = 10.; ts = 0.;
        tf = 10.; max_rate = 12.5; bw = 2.; sigma = 2.5; shard = Some 2 };
    Event.Reject
      { time = 3.; id = 8; reason = "spike"; port = Some (Event.Egress, 4);
        headroom = Some 0.25; shard = Some 0 };
    Event.Reject
      { time = 3.5; id = 9; reason = "deadline"; port = None; headroom = None; shard = None };
    Event.Preempt { time = 4.; id = 7; bw = 10.; shard = Some 1 };
    Event.Shed { time = 5.; side = Event.Ingress; port = 0; excess = 12.; victims = 2 };
    Event.Capacity { time = 0.; side = Event.Egress; port = 3; capacity = 100. };
    Event.Dispatch { time = 6.; pending = 11 };
  ]

(* --- codec round-trips and cross-format equality --- *)

let roundtrip (module C : Codec.S with type t = Event.t) ev =
  match Codec.of_string (module C) (Codec.to_string (module C) ev) with
  | Ok ev' -> ev'
  | Error msg -> Alcotest.failf "%s: %s" C.name msg

let test_exemplar_roundtrips () =
  List.iter
    (fun ev ->
      Alcotest.check event_testable "binary round-trip" ev
        (roundtrip (module Event_codec.Binary) ev);
      Alcotest.check event_testable "jsonl round-trip" ev
        (roundtrip (module Event_codec.Jsonl) ev))
    exemplars

let prop_codecs_agree =
  qcase ~count:500 "wire: binary and jsonl decode to the same event" gen_event (fun ev ->
      let b = roundtrip (module Event_codec.Binary) ev in
      let j = roundtrip (module Event_codec.Jsonl) ev in
      event_eq b ev && event_eq j ev && event_eq b j)

let prop_mixed_stream =
  (* Interleave the two forms in one byte stream; the sniffing reader
     must recover the exact event sequence. *)
  qcase ~count:100 "wire: mixed binary/jsonl streams sniff per record"
    QCheck2.Gen.(list_size (int_range 1 20) (pair gen_event bool))
    (fun entries ->
      let buf = Buffer.create 1024 in
      List.iter
        (fun (ev, binary) ->
          if binary then Event_codec.Binary.encode buf ev
          else Event_codec.Jsonl.encode buf ev)
        entries;
      let s = Buffer.contents buf in
      let rec decode acc pos =
        if pos >= String.length s then List.rev acc
        else
          match Event_codec.sniff_decode s ~pos with
          | Codec.Value (ev, next) -> decode (ev :: acc) next
          | Codec.Incomplete -> Alcotest.fail "mixed stream: truncated"
          | Codec.Corrupt msg -> Alcotest.failf "mixed stream: %s" msg
      in
      List.for_all2 (fun (ev, _) got -> event_eq ev got) entries (decode [] 0))

(* --- frame-level corruption and truncation --- *)

let prop_bitflip_never_passes =
  qcase ~count:300 "wire: a flipped byte never decodes back to the event"
    QCheck2.Gen.(pair gen_event (int_range 0 10_000))
    (fun (ev, raw) ->
      let s = Codec.to_string (module Event_codec.Binary) ev in
      let i = raw mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      match Event_codec.Binary.decode (Bytes.to_string b) ~pos:0 with
      | Codec.Value (ev', _) -> not (event_eq ev' ev)
      | Codec.Incomplete | Codec.Corrupt _ -> true)

let prop_truncation_is_incomplete =
  qcase ~count:300 "wire: every strict prefix of a binary frame is Incomplete"
    QCheck2.Gen.(pair gen_event (int_range 0 10_000))
    (fun (ev, raw) ->
      let s = Codec.to_string (module Event_codec.Binary) ev in
      let n = raw mod String.length s in
      match Event_codec.Binary.decode (String.sub s 0 n) ~pos:0 with
      | Codec.Incomplete -> true
      | Codec.Value _ | Codec.Corrupt _ -> false)

let test_frame_tag_validation () =
  let b = Buffer.create 32 in
  Frame.add b ~tag:0x7f "payload";
  let s = Buffer.contents b in
  (match Frame.decode s ~pos:0 with
  | Codec.Value ((tag, payload), next) ->
      Alcotest.(check int) "tag survives" 0x7f tag;
      Alcotest.(check string) "payload survives" "payload" payload;
      Alcotest.(check int) "frame size" (String.length s) next
  | _ -> Alcotest.fail "frame does not decode");
  (* An event decoder must refuse a frame with someone else's tag. *)
  match Event_codec.Binary.decode s ~pos:0 with
  | Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "wrong-tag frame accepted as an event"

let test_line_hexline_roundtrip () =
  List.iter
    (fun payload ->
      let b = Buffer.create 32 in
      Frame.Line.encode b payload;
      (match Frame.Line.decode (Buffer.contents b) ~pos:0 with
      | Codec.Value (p, _) -> Alcotest.(check string) "line payload" payload p
      | _ -> Alcotest.fail "line frame does not decode");
      let b = Buffer.create 32 in
      Frame.Hexline.encode b payload;
      match Frame.Hexline.decode (Buffer.contents b) ~pos:0 with
      | Codec.Value (p, _) -> Alcotest.(check string) "hexline payload" payload p
      | _ -> Alcotest.fail "hexline frame does not decode")
    [ ""; "x"; {|{"ev":"accept","id":7}|}; String.make 300 'z' ]

(* --- WAL: mixed-format segments --- *)

(* A journal written under one format and continued under the other must
   stay fully replayable: the scanner sniffs per record. *)
let test_wal_mixed_segment () =
  let dir = Filename.temp_file "gridbw-wire-wal" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let rm_rf d =
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Sys.rmdir d
  in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cfg = { Wal.default_config with Wal.batch = 1 } in
      let w = Wal.create ~config:cfg ~format:Wal.Jsonl ~dir () in
      for i = 0 to 4 do
        Wal.append w (Printf.sprintf "jsonl-record-%d" i)
      done;
      Wal.close w;
      let w2 = Wal.reopen ~config:cfg ~format:Wal.Binary ~dir ~records:5 () in
      for i = 5 to 9 do
        Wal.append w2 (Printf.sprintf "binary-record-%d" i)
      done;
      Wal.close w2;
      let s = Wal.scan ~dir in
      Alcotest.(check int) "all records valid" 10 s.Wal.valid;
      Alcotest.(check bool) "clean tail" true (s.Wal.torn = None);
      let formats = List.map (fun (r : Wal.record) -> r.Wal.format) s.Wal.records in
      Alcotest.(check bool) "first half jsonl, second half binary" true
        (formats
        = [ Wal.Jsonl; Wal.Jsonl; Wal.Jsonl; Wal.Jsonl; Wal.Jsonl;
            Wal.Binary; Wal.Binary; Wal.Binary; Wal.Binary; Wal.Binary ]);
      List.iteri
        (fun i (r : Wal.record) ->
          let prefix = if i < 5 then "jsonl" else "binary" in
          Alcotest.(check string) "payload survives"
            (Printf.sprintf "%s-record-%d" prefix i)
            r.Wal.payload)
        s.Wal.records)

let suites =
  [
    ( "wire",
      [
        case "every constructor round-trips through both codecs" test_exemplar_roundtrips;
        prop_codecs_agree;
        prop_mixed_stream;
        prop_bitflip_never_passes;
        prop_truncation_is_incomplete;
        case "frame: tag byte validated by record codecs" test_frame_tag_validation;
        case "frame: Line and Hexline round-trip" test_line_hexline_roundtrip;
        case "wal: mixed jsonl/binary segment replays" test_wal_mixed_segment;
      ] );
  ]
