open Helpers
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Rigid = Gridbw_core.Rigid
module Types = Gridbw_core.Types
module Summary = Gridbw_metrics.Summary
module Rng = Gridbw_prng.Rng

let fabric1 () = Fabric.uniform ~ingress_count:1 ~egress_count:1 ~capacity:100.0

let rigid ~id ~bw ~ts ~tf = Request.make_rigid ~id ~ingress:0 ~egress:0 ~bw ~ts ~tf

let ids result = Types.accepted_ids result

let reason_of result id =
  match Types.decision_of result id with
  | Some (Types.Rejected reason) -> reason
  | Some (Types.Accepted _) -> Alcotest.failf "request %d was accepted" id
  | None -> Alcotest.failf "request %d missing" id

(* The paper's motivating failure: FCFS lets one early hog block the port
   while the slot heuristics evict it once cheaper requests show up. *)
let hog_scenario () =
  [
    rigid ~id:0 ~bw:100. ~ts:0. ~tf:100.;
    rigid ~id:1 ~bw:10. ~ts:1. ~tf:2.;
    rigid ~id:2 ~bw:10. ~ts:1. ~tf:2.;
    rigid ~id:3 ~bw:10. ~ts:1. ~tf:2.;
  ]

let fcfs_keeps_the_hog () =
  let result = Rigid.fcfs (fabric1 ()) (hog_scenario ()) in
  Alcotest.(check (list int)) "only the hog" [ 0 ] (ids result);
  Alcotest.(check bool) "reason" true (reason_of result 1 = Types.Port_saturated)

let slots_evict_the_hog () =
  List.iter
    (fun cost ->
      let result = Rigid.slots ~cost (fabric1 ()) (hog_scenario ()) in
      Alcotest.(check (list int))
        (Rigid.cost_name cost ^ " accepts the three small requests")
        [ 1; 2; 3 ] (ids result);
      Alcotest.(check bool) "hog revoked" true (reason_of result 0 = Types.Revoked))
    [ Rigid.Cumulated; Rigid.Min_bw; Rigid.Min_vol ]

let fcfs_tie_smaller_bandwidth_first () =
  let reqs = [ rigid ~id:0 ~bw:80. ~ts:0. ~tf:10.; rigid ~id:1 ~bw:30. ~ts:0. ~tf:10. ] in
  let result = Rigid.fcfs (fabric1 ()) reqs in
  Alcotest.(check (list int)) "smaller bw wins the tie" [ 1 ] (ids result)

let fcfs_accepts_when_capacity_allows () =
  let reqs =
    [ rigid ~id:0 ~bw:40. ~ts:0. ~tf:10.; rigid ~id:1 ~bw:60. ~ts:0. ~tf:10.;
      rigid ~id:2 ~bw:10. ~ts:0. ~tf:10. ]
  in
  let result = Rigid.fcfs (fabric1 ()) reqs in
  (* order by bw: id2 (10), id0 (40), id1 (50): 10+40 = 50, +60 > 100. *)
  Alcotest.(check (list int)) "packs by tie order" [ 0; 2 ] (ids result)

let fcfs_disjoint_windows_independent () =
  let reqs = [ rigid ~id:0 ~bw:100. ~ts:0. ~tf:10.; rigid ~id:1 ~bw:100. ~ts:10. ~tf:20. ] in
  Alcotest.(check (list int)) "both fit" [ 0; 1 ] (ids (Rigid.fcfs (fabric1 ()) reqs))

(* minvol and minbw order by different keys: a short fat request (small
   volume, large bandwidth) versus a long thin one (large volume, small
   bandwidth) that overlap in the fat one's slice. *)
let minvol_vs_minbw () =
  let fat = rigid ~id:0 ~bw:80. ~ts:0. ~tf:2. in
  (* vol 160 *)
  let thin = rigid ~id:1 ~bw:30. ~ts:0. ~tf:10. in
  (* vol 300 *)
  let reqs = [ fat; thin ] in
  let by_vol = Rigid.slots ~cost:Rigid.Min_vol (fabric1 ()) reqs in
  Alcotest.(check (list int)) "min-vol keeps the fat request" [ 0 ] (ids by_vol);
  let by_bw = Rigid.slots ~cost:Rigid.Min_bw (fabric1 ()) reqs in
  Alcotest.(check (list int)) "min-bw keeps the thin request" [ 1 ] (ids by_bw)

(* CUMULATED's priority factor protects a request that already holds earlier
   slices; MINBW happily revokes it for a slightly cheaper newcomer. *)
let cumulated_protects_history () =
  let long = rigid ~id:0 ~bw:60. ~ts:0. ~tf:10. in
  let newcomer = rigid ~id:1 ~bw:50. ~ts:5. ~tf:12. in
  let reqs = [ long; newcomer ] in
  let cumulated = Rigid.slots ~cost:Rigid.Cumulated (fabric1 ()) reqs in
  Alcotest.(check (list int)) "cumulated keeps the long request" [ 0 ] (ids cumulated);
  let by_bw = Rigid.slots ~cost:Rigid.Min_bw (fabric1 ()) reqs in
  Alcotest.(check (list int)) "min-bw revokes it" [ 1 ] (ids by_bw);
  Alcotest.(check bool) "revocation reason" true (reason_of by_bw 0 = Types.Revoked)

let rejected_in_first_slice_is_port_saturated () =
  let reqs = [ rigid ~id:0 ~bw:100. ~ts:0. ~tf:10.; rigid ~id:1 ~bw:100. ~ts:0. ~tf:10. ] in
  let result = Rigid.slots ~cost:Rigid.Min_bw (fabric1 ()) reqs in
  Alcotest.(check int) "one accepted" 1 (List.length result.Types.accepted);
  Alcotest.(check bool) "first-slice rejection reason" true
    (reason_of result 1 = Types.Port_saturated)

let unknown_port_rejected () =
  let bad = Request.make_rigid ~id:0 ~ingress:5 ~egress:0 ~bw:1. ~ts:0. ~tf:1. in
  (match Rigid.fcfs (fabric1 ()) [ bad ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fcfs accepted unroutable request");
  match Rigid.slots ~cost:Rigid.Cumulated (fabric1 ()) [ bad ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "slots accepted unroutable request"

let all_heuristics =
  [ `Fcfs; `Fifo_blocking; `Slots Rigid.Cumulated; `Slots Rigid.Min_bw; `Slots Rigid.Min_vol ]

let empty_workload () =
  List.iter
    (fun kind ->
      let result = Rigid.run kind (fabric1 ()) [] in
      Alcotest.(check int) "no decisions" 0 (List.length result.Types.accepted))
    all_heuristics

(* Head-of-line blocking: the 100 MB/s hog occupies [0,100]; the blocked
   request at t=1 makes the scheduler wait until t=100, losing the two
   requests behind it even though FCFS would have found room for them. *)
let fifo_blocking_cascade () =
  let reqs =
    [
      rigid ~id:0 ~bw:100. ~ts:0. ~tf:100.;
      rigid ~id:1 ~bw:50. ~ts:1. ~tf:5.;
      (* blocked head: waits till 100 *)
      rigid ~id:2 ~bw:10. ~ts:2. ~tf:3.;
      (* would fit under FCFS? no - port full; but under blocking it is not
         even examined before its start passes *)
      rigid ~id:3 ~bw:10. ~ts:150. ~tf:160.;
      (* after the queue drains: accepted *)
    ]
  in
  let blocking = Rigid.fifo_blocking (fabric1 ()) reqs in
  Alcotest.(check (list int)) "hog + late request" [ 0; 3 ] (ids blocking);
  Alcotest.(check bool) "consistent" true (Types.is_consistent blocking);
  Alcotest.(check bool) "feasible" true
    (Summary.all_feasible (fabric1 ()) blocking.Types.accepted)

let fifo_blocking_loses_to_fcfs () =
  (* A workload where FCFS recovers capacity that the blocking queue
     wastes: many small non-overlapping requests behind one blocked head. *)
  let reqs =
    rigid ~id:0 ~bw:80. ~ts:0. ~tf:50.
    :: rigid ~id:1 ~bw:100. ~ts:1. ~tf:6.
       (* blocked head: needs the whole port, waits till t=50 *)
    :: List.init 8 (fun i -> rigid ~id:(2 + i) ~bw:10. ~ts:(float_of_int (10 + i)) ~tf:49.)
  in
  let blocking = List.length (Rigid.fifo_blocking (fabric1 ()) reqs).Types.accepted in
  let fcfs = List.length (Rigid.fcfs (fabric1 ()) reqs).Types.accepted in
  Alcotest.(check int) "blocking keeps only the hog" 1 blocking;
  (* FCFS fits the hog plus two 10 MB/s requests alongside it. *)
  Alcotest.(check int) "fcfs recovers small requests" 3 fcfs

let fifo_blocking_no_contention_is_fcfs () =
  let reqs = [ rigid ~id:0 ~bw:40. ~ts:0. ~tf:10.; rigid ~id:1 ~bw:40. ~ts:2. ~tf:12. ] in
  Alcotest.(check (list int)) "both accepted" [ 0; 1 ]
    (ids (Rigid.fifo_blocking (fabric1 ()) reqs))

let random_rigid_requests seed fabric n =
  let r = Rng.create ~seed () in
  List.init n (fun id ->
      let ingress = Rng.int r (Fabric.ingress_count fabric) in
      let egress = Rng.int r (Fabric.egress_count fabric) in
      let ts = Rng.float_in r 0. 50. in
      let dur = Rng.float_in r 1. 30. in
      let bw = Rng.float_in r 5. 100. in
      Request.make_rigid ~id ~ingress ~egress ~bw ~ts ~tf:(ts +. dur))

let feasible_and_consistent () =
  let fabric = fabric2 () in
  List.iter
    (fun seed ->
      let reqs = random_rigid_requests seed fabric 60 in
      List.iter
        (fun kind ->
          let result = Rigid.run kind fabric reqs in
          let name = Rigid.heuristic_name kind in
          Alcotest.(check bool) (name ^ " consistent") true (Types.is_consistent result);
          Alcotest.(check bool)
            (name ^ " feasible") true
            (Summary.all_feasible fabric result.Types.accepted))
        all_heuristics)
    [ 1L; 2L; 3L; 4L; 5L ]

let deterministic () =
  let fabric = fabric2 () in
  let reqs = random_rigid_requests 77L fabric 40 in
  List.iter
    (fun kind ->
      let a = Rigid.run kind fabric reqs and b = Rigid.run kind fabric reqs in
      Alcotest.(check (list int)) (Rigid.heuristic_name kind ^ " deterministic") (ids a) (ids b))
    all_heuristics

let suites =
  [
    ( "rigid",
      [
        case "fcfs keeps the hog (paper's FIFO failure)" fcfs_keeps_the_hog;
        case "slot heuristics evict the hog" slots_evict_the_hog;
        case "fcfs tie: smaller bandwidth first" fcfs_tie_smaller_bandwidth_first;
        case "fcfs packs within capacity" fcfs_accepts_when_capacity_allows;
        case "fcfs disjoint windows independent" fcfs_disjoint_windows_independent;
        case "min-vol and min-bw order differently" minvol_vs_minbw;
        case "cumulated protects served history" cumulated_protects_history;
        case "first-slice rejection reason" rejected_in_first_slice_is_port_saturated;
        case "unroutable request raises" unknown_port_rejected;
        case "blocking FIFO: head-of-line cascade" fifo_blocking_cascade;
        case "blocking FIFO loses to selective-reject FCFS" fifo_blocking_loses_to_fcfs;
        case "blocking FIFO without contention" fifo_blocking_no_contention_is_fcfs;
        case "empty workload" empty_workload;
        case "random workloads: feasible and consistent" feasible_and_consistent;
        case "determinism" deterministic;
      ] );
  ]
