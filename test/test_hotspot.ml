open Helpers
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Hotspot = Gridbw_metrics.Hotspot

let empty () = Alcotest.(check int) "no reports" 0 (List.length (Hotspot.analyze (fabric2 ()) ~all:[] ~accepted:[]))

let report_for side port reports =
  match
    List.find_opt (fun r -> r.Hotspot.side = side && r.Hotspot.port = port) reports
  with
  | Some r -> r
  | None -> Alcotest.fail "missing report"

let pressure_accounting () =
  let f = fabric2 () in
  (* 2000 MB over a 10 s span through ingress 0 => 200 MB/s demanded on a
     100 MB/s port: pressure 2. *)
  let r1 = req ~id:1 ~ingress:0 ~egress:0 ~volume:1500. ~ts:0. ~tf:10. ~max_rate:150. () in
  let r2 = req ~id:2 ~ingress:0 ~egress:1 ~volume:500. ~ts:0. ~tf:10. ~max_rate:50. () in
  let accepted = [ Allocation.make ~request:r2 ~bw:50. ~sigma:0. ] in
  let reports = Hotspot.analyze f ~all:[ r1; r2 ] ~accepted in
  Alcotest.(check int) "one report per port" 4 (List.length reports);
  let in0 = report_for Hotspot.Ingress 0 reports in
  check_approx "demanded" 200.0 in0.Hotspot.demanded_rate;
  check_approx "granted" 50.0 in0.Hotspot.granted_rate;
  check_approx "lost" 150.0 in0.Hotspot.lost_rate;
  check_approx "pressure" 2.0 in0.Hotspot.pressure;
  Alcotest.(check int) "requests" 2 in0.Hotspot.requests;
  Alcotest.(check int) "accepted" 1 in0.Hotspot.accepted;
  (* Untouched ingress port 1. *)
  let in1 = report_for Hotspot.Ingress 1 reports in
  check_approx "idle port" 0.0 in1.Hotspot.pressure

let sorted_by_pressure () =
  let f = fabric2 () in
  let r1 = req ~id:1 ~ingress:0 ~egress:1 ~volume:3000. ~ts:0. ~tf:10. ~max_rate:300. () in
  let reports = Hotspot.analyze f ~all:[ r1 ] ~accepted:[] in
  (match reports with
  | first :: second :: _ ->
      Alcotest.(check bool) "descending" true (first.Hotspot.pressure >= second.Hotspot.pressure)
  | _ -> Alcotest.fail "expected reports");
  let hot = Hotspot.hot_spots reports in
  (* Ingress 0 and egress 1 both carry 300 MB/s demand on 100 MB/s. *)
  Alcotest.(check int) "two hot spots" 2 (List.length hot);
  Alcotest.(check int) "threshold filters" 0
    (List.length (Hotspot.hot_spots ~threshold:10.0 reports))

let egress_side_tracked () =
  let f = fabric2 () in
  let r1 = req ~id:1 ~ingress:0 ~egress:1 ~volume:800. ~ts:0. ~tf:10. ~max_rate:80. () in
  let accepted = [ Allocation.make ~request:r1 ~bw:80. ~sigma:0. ] in
  let out1 = report_for Hotspot.Egress 1 (Hotspot.analyze f ~all:[ r1 ] ~accepted) in
  check_approx "egress granted" 80.0 out1.Hotspot.granted_rate;
  Alcotest.(check int) "egress accepted count" 1 out1.Hotspot.accepted

let suites =
  [
    ( "hotspot",
      [
        case "empty workload" empty;
        case "pressure accounting" pressure_accounting;
        case "sorted and filtered" sorted_by_pressure;
        case "egress side tracked" egress_side_tracked;
      ] );
  ]
