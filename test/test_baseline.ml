open Helpers
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Maxmin = Gridbw_baseline.Maxmin
module Fluid = Gridbw_baseline.Fluid
module Rng = Gridbw_prng.Rng

let flow ?(ingress = 0) ?(egress = 0) max_rate = { Maxmin.ingress; egress; max_rate }

let equal_split () =
  let rates =
    Maxmin.rates ~caps_in:[| 100. |] ~caps_out:[| 100. |] [| flow 100.; flow 100. |]
  in
  check_approx "fair half" 50.0 rates.(0);
  check_approx "fair half" 50.0 rates.(1)

let cap_limits_flow () =
  let rates = Maxmin.rates ~caps_in:[| 100. |] ~caps_out:[| 100. |] [| flow 10.; flow 100. |] in
  check_approx "capped flow" 10.0 rates.(0);
  check_approx "rest to the other" 90.0 rates.(1)

let single_flow_gets_min_of_caps () =
  let rates = Maxmin.rates ~caps_in:[| 40. |] ~caps_out:[| 100. |] [| flow 500. |] in
  check_approx "ingress bottleneck" 40.0 rates.(0)

let cross_traffic () =
  (* Flow A crosses (in0, out0); flow B (in0, out1); flow C (in1, out1).
     Port in0 splits A and B at 50 each; C then gets out1's residue. *)
  let rates =
    Maxmin.rates ~caps_in:[| 100.; 100. |] ~caps_out:[| 100.; 100. |]
      [| flow ~ingress:0 ~egress:0 1000.; flow ~ingress:0 ~egress:1 1000.;
         flow ~ingress:1 ~egress:1 1000. |]
  in
  check_approx "A" 50.0 rates.(0);
  check_approx "B" 50.0 rates.(1);
  check_approx "C" 50.0 rates.(2)

let empty_flows () =
  let rates = Maxmin.rates ~caps_in:[| 10. |] ~caps_out:[| 10. |] [||] in
  Alcotest.(check int) "no rates" 0 (Array.length rates)

let bad_inputs () =
  (match Maxmin.rates ~caps_in:[| 0. |] ~caps_out:[| 1. |] [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero capacity accepted");
  match Maxmin.rates ~caps_in:[| 1. |] ~caps_out:[| 1. |] [| flow ~ingress:5 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad port accepted"

let prop_maxmin_properties =
  qcase ~count:80 "qcheck: progressive filling yields a max-min allocation"
    QCheck2.Gen.(pair (int_range 1 40) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) () in
      let caps_in = Array.init 3 (fun _ -> Rng.float_in rng 10. 200.) in
      let caps_out = Array.init 3 (fun _ -> Rng.float_in rng 10. 200.) in
      let flows =
        Array.init n (fun _ ->
            { Maxmin.ingress = Rng.int rng 3; egress = Rng.int rng 3;
              max_rate = Rng.float_in rng 1. 100. })
      in
      let rates = Maxmin.rates ~caps_in ~caps_out flows in
      Maxmin.is_maxmin ~caps_in ~caps_out flows rates)

(* --- Fluid --- *)

let fabric1 () = Fabric.uniform ~ingress_count:1 ~egress_count:1 ~capacity:100.0

let lone_transfer_on_time () =
  (* 500 MB at MaxRate 100 through an idle port: finishes in 5 s. *)
  let r = req ~id:0 ~volume:500. ~ts:0. ~tf:10. ~max_rate:100. () in
  let result = Fluid.simulate (fabric1 ()) [ r ] in
  let f = List.hd result.Fluid.flows in
  check_approx "finish" 5.0 f.Fluid.finish;
  Alcotest.(check bool) "on time" true f.Fluid.deadline_met;
  check_approx "no misses" 0.0 result.Fluid.deadline_miss_rate

let sharing_delays_completion () =
  (* Two identical 500 MB transfers share the 100 MB/s port: 50 each,
     both complete at t = 10 — exactly their deadline. A third pushes
     everyone to ~1/3 of the port and all three are late. *)
  let mk id = req ~id ~volume:500. ~ts:0. ~tf:10. ~max_rate:100. () in
  let two = Fluid.simulate (fabric1 ()) [ mk 0; mk 1 ] in
  List.iter
    (fun f ->
      check_approx "finish at deadline" 10.0 f.Fluid.finish;
      Alcotest.(check bool) "met" true f.Fluid.deadline_met)
    two.Fluid.flows;
  let three = Fluid.simulate (fabric1 ()) [ mk 0; mk 1; mk 2 ] in
  check_approx "all late" 1.0 three.Fluid.deadline_miss_rate;
  Alcotest.(check int) "concurrency" 3 three.Fluid.max_concurrency

let later_arrival_speeds_up_after_departure () =
  (* f0 runs alone on [0,1) at 100 (150 MB left), then shares at 50 and
     finishes at t=4; f1 has 50 MB left at t=4 and finishes alone at 100:
     t=4.5. *)
  let f0 = req ~id:0 ~volume:250. ~ts:0. ~tf:10. ~max_rate:100. () in
  let f1 = req ~id:1 ~volume:200. ~ts:1. ~tf:10. ~max_rate:100. () in
  let result = Fluid.simulate (fabric1 ()) [ f0; f1 ] in
  let by_id id = List.find (fun f -> f.Fluid.request.Request.id = id) result.Fluid.flows in
  check_approx "f0 finish" 4.0 (by_id 0).Fluid.finish;
  check_approx "f1 finish" 4.5 (by_id 1).Fluid.finish

let volume_conserved () =
  let fabric = fabric2 () in
  let reqs = random_requests ~seed:17L ~n:30 fabric in
  let result = Fluid.simulate fabric reqs in
  Alcotest.(check int) "every flow completes" 30 (List.length result.Fluid.flows);
  List.iter
    (fun f ->
      let r = f.Fluid.request in
      if f.Fluid.finish < r.Request.ts then Alcotest.fail "finished before arrival";
      let implied = f.Fluid.mean_rate *. (f.Fluid.finish -. r.Request.ts) in
      check_approx ~eps:1e-6 "volume conserved" r.Request.volume implied)
    result.Fluid.flows

let overload_misses_deadlines () =
  (* Twenty rigid-tight transfers at once on one port: massive overload,
     nearly everyone is late. *)
  let reqs =
    List.init 20 (fun id -> req ~id ~volume:100. ~ts:0. ~tf:1.5 ~max_rate:100. ())
  in
  let result = Fluid.simulate (fabric1 ()) reqs in
  Alcotest.(check bool) "most deadlines missed" true (result.Fluid.deadline_miss_rate > 0.9)

let empty_fluid () =
  let result = Fluid.simulate (fabric1 ()) [] in
  Alcotest.(check int) "no flows" 0 (List.length result.Fluid.flows)

let suites =
  [
    ( "maxmin",
      [
        case "equal split" equal_split;
        case "per-flow cap limits" cap_limits_flow;
        case "single flow takes min of caps" single_flow_gets_min_of_caps;
        case "cross traffic" cross_traffic;
        case "empty flow set" empty_flows;
        case "bad inputs" bad_inputs;
        prop_maxmin_properties;
      ] );
    ( "fluid",
      [
        case "lone transfer on time" lone_transfer_on_time;
        case "sharing delays completion" sharing_delays_completion;
        case "rates rise after departures" later_arrival_speeds_up_after_departure;
        case "volume conserved on random workload" volume_conserved;
        case "overload misses deadlines" overload_misses_deadlines;
        case "empty workload" empty_fluid;
      ] );
  ]
