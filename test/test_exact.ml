open Helpers
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Rigid = Gridbw_core.Rigid
module Exact = Gridbw_core.Exact
module Unit_exact = Gridbw_core.Unit_exact
module Types = Gridbw_core.Types
module Summary = Gridbw_metrics.Summary
module Rng = Gridbw_prng.Rng

let fabric1 () = Fabric.uniform ~ingress_count:1 ~egress_count:1 ~capacity:100.0
let rigid ~id ~bw ~ts ~tf = Request.make_rigid ~id ~ingress:0 ~egress:0 ~bw ~ts ~tf

let simple_optimum () =
  let reqs =
    [ rigid ~id:0 ~bw:50. ~ts:0. ~tf:10.; rigid ~id:1 ~bw:50. ~ts:0. ~tf:10.;
      rigid ~id:2 ~bw:50. ~ts:0. ~tf:10. ]
  in
  let sol = Exact.max_requests (fabric1 ()) reqs in
  Alcotest.(check int) "two of three" 2 sol.Exact.count;
  Alcotest.(check bool) "optimal" true sol.Exact.optimal

let exact_beats_fcfs () =
  let reqs =
    [ rigid ~id:0 ~bw:100. ~ts:0. ~tf:100.; rigid ~id:1 ~bw:10. ~ts:1. ~tf:2.;
      rigid ~id:2 ~bw:10. ~ts:1. ~tf:2. ]
  in
  let sol = Exact.max_requests (fabric1 ()) reqs in
  Alcotest.(check int) "optimum rejects the hog" 2 sol.Exact.count;
  Alcotest.(check (list int)) "optimal set" [ 1; 2 ] sol.Exact.accepted_ids;
  let fcfs = Rigid.fcfs (fabric1 ()) reqs in
  Alcotest.(check int) "fcfs traps itself" 1 (List.length fcfs.Types.accepted)

let empty_instance () =
  let sol = Exact.max_requests (fabric1 ()) [] in
  Alcotest.(check int) "zero" 0 sol.Exact.count

let result_of_is_feasible () =
  let fabric = fabric2 () in
  let reqs = random_requests ~seed:31L ~n:12 fabric in
  let rigidified =
    List.map
      (fun (r : Request.t) ->
        Request.make_rigid ~id:r.id ~ingress:r.ingress ~egress:r.egress
          ~bw:(Request.min_rate r) ~ts:r.ts ~tf:r.tf)
      reqs
  in
  let sol = Exact.max_requests fabric rigidified in
  let result = Exact.result_of fabric rigidified sol in
  Alcotest.(check bool) "consistent" true (Types.is_consistent result);
  Alcotest.(check bool) "feasible" true (Summary.all_feasible fabric result.Types.accepted);
  Alcotest.(check int) "count matches" sol.Exact.count (List.length result.Types.accepted)

let dominates_heuristics () =
  let fabric = fabric2 () in
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed () in
      let reqs =
        List.init 14 (fun id ->
            let ingress = Rng.int rng 2 and egress = Rng.int rng 2 in
            let ts = Rng.float_in rng 0. 20. in
            let dur = Rng.float_in rng 1. 15. in
            Request.make_rigid ~id ~ingress ~egress ~bw:(Rng.float_in rng 10. 90.) ~ts
              ~tf:(ts +. dur))
      in
      let optimum = (Exact.max_requests fabric reqs).Exact.count in
      List.iter
        (fun kind ->
          let got = List.length (Rigid.run kind fabric reqs).Types.accepted in
          if got > optimum then
            Alcotest.failf "%s beat the exact optimum (%d > %d, seed %Ld)"
              (Rigid.heuristic_name kind) got optimum seed)
        [ `Fcfs; `Slots Rigid.Cumulated; `Slots Rigid.Min_bw; `Slots Rigid.Min_vol ])
    [ 101L; 102L; 103L; 104L; 105L; 106L ]

let budget_exhaustion_reported () =
  let reqs = List.init 18 (fun id -> rigid ~id ~bw:10. ~ts:0. ~tf:10.) in
  let sol = Exact.max_requests ~node_budget:10 (fabric1 ()) reqs in
  Alcotest.(check bool) "not optimal" false sol.Exact.optimal

let flexible_exact_beats_greedy () =
  (* Greedy at f=1 takes the hog; the offline optimum picks MinRate rates
     that pack both. *)
  let mk id volume max_rate =
    Request.make ~id ~ingress:0 ~egress:0 ~volume ~ts:0. ~tf:10. ~max_rate
  in
  let reqs = [ mk 0 500. 100.; mk 1 500. 100. ] in
  let sol = Exact.max_requests_flexible (fabric1 ()) reqs in
  Alcotest.(check int) "optimum packs both at MinRate" 2 sol.Exact.count;
  Alcotest.(check bool) "proved" true sol.Exact.optimal;
  let greedy_f1 =
    Gridbw_core.Flexible.greedy (fabric1 ()) (Gridbw_core.Policy.Fraction_of_max 1.0) reqs
  in
  Alcotest.(check int) "greedy f=1 takes one" 1 (List.length greedy_f1.Types.accepted)

let flexible_exact_dominates_heuristics () =
  let fabric = fabric2 () in
  List.iter
    (fun seed ->
      let reqs = random_requests ~seed ~n:10 fabric in
      let optimum = (Exact.max_requests_flexible fabric reqs).Exact.count in
      List.iter
        (fun (name, run) ->
          let got = List.length (run reqs).Types.accepted in
          if got > optimum then Alcotest.failf "%s beat the optimum (%Ld)" name seed)
        [
          ("greedy-min", Gridbw_core.Flexible.greedy fabric Gridbw_core.Policy.Min_rate);
          ("greedy-f1", Gridbw_core.Flexible.greedy fabric (Gridbw_core.Policy.Fraction_of_max 1.0));
          ("window-min", Gridbw_core.Flexible.window fabric Gridbw_core.Policy.Min_rate ~step:10.);
        ])
    [ 301L; 302L; 303L; 304L ]

let flexible_exact_levels_validated () =
  match Exact.max_requests_flexible ~levels:[ 1.5 ] (fabric1 ()) [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad level accepted"

(* --- Unit_exact --- *)

let uinst ?(cap_in = [| 1 |]) ?(cap_out = [| 1 |]) reqs =
  { Unit_exact.caps_in = cap_in; caps_out = cap_out; reqs = Array.of_list reqs }

let ureq id ?(ingress = 0) ?(egress = 0) ts tf = { Unit_exact.id; ingress; egress; ts; tf }

let unit_two_slots () =
  let inst = uinst [ ureq 0 0 2; ureq 1 0 2 ] in
  let sol = Unit_exact.solve inst in
  Alcotest.(check int) "both fit in two slots" 2 sol.Unit_exact.count;
  Alcotest.(check bool) "placements feasible" true
    (Unit_exact.feasible inst sol.Unit_exact.placements)

let unit_three_into_two () =
  let sol = Unit_exact.solve (uinst [ ureq 0 0 2; ureq 1 0 2; ureq 2 0 2 ]) in
  Alcotest.(check int) "capacity bound" 2 sol.Unit_exact.count

let unit_capacity_two () =
  let inst = uinst ~cap_in:[| 2 |] ~cap_out:[| 2 |] [ ureq 0 0 2; ureq 1 0 2; ureq 2 0 2; ureq 3 0 2 ] in
  Alcotest.(check int) "four fit" 4 (Unit_exact.solve inst).Unit_exact.count

let unit_window_respected () =
  let inst = uinst [ ureq 0 1 2 ] in
  let sol = Unit_exact.solve inst in
  Alcotest.(check (list (pair int int))) "forced slot" [ (0, 1) ] sol.Unit_exact.placements

let unit_validate_errors () =
  (match Unit_exact.solve (uinst [ ureq 0 2 2 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty window accepted");
  match Unit_exact.solve (uinst [ { Unit_exact.id = 0; ingress = 3; egress = 0; ts = 0; tf = 1 } ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad port accepted"

let unit_feasible_checker () =
  let inst = uinst [ ureq 0 0 2; ureq 1 0 2 ] in
  Alcotest.(check bool) "good" true (Unit_exact.feasible inst [ (0, 0); (1, 1) ]);
  Alcotest.(check bool) "conflict" false (Unit_exact.feasible inst [ (0, 0); (1, 0) ]);
  Alcotest.(check bool) "outside window" false (Unit_exact.feasible inst [ (0, 2) ]);
  Alcotest.(check bool) "duplicate id" false (Unit_exact.feasible inst [ (0, 0); (0, 1) ]);
  Alcotest.(check bool) "unknown id" false (Unit_exact.feasible inst [ (9, 0) ])

(* The paper notes the single ingress-egress pair case is polynomial: a
   greedy (earliest-deadline-first over slots) is optimal.  Check the exact
   solver agrees with that greedy on random single-pair instances. *)
let edf_greedy inst =
  let reqs = Array.to_list inst.Unit_exact.reqs in
  let sorted =
    List.sort
      (fun (a : Unit_exact.ureq) b ->
        match Int.compare a.tf b.tf with 0 -> Int.compare a.id b.id | c -> c)
      reqs
  in
  let cap = inst.Unit_exact.caps_in.(0) in
  let used = Hashtbl.create 16 in
  List.fold_left
    (fun count (r : Unit_exact.ureq) ->
      let rec find t = if t >= r.tf then None
        else if Option.value ~default:0 (Hashtbl.find_opt used t) < cap then Some t
        else find (t + 1)
      in
      match find r.ts with
      | Some t ->
          Hashtbl.replace used t (1 + Option.value ~default:0 (Hashtbl.find_opt used t));
          count + 1
      | None -> count)
    0 sorted

let single_pair_greedy_is_optimal () =
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed () in
      let reqs =
        List.init 12 (fun id ->
            let ts = Rng.int rng 6 in
            let tf = ts + 1 + Rng.int rng 4 in
            ureq id ts tf)
      in
      let inst = uinst ~cap_in:[| 1 |] ~cap_out:[| 1 |] reqs in
      let exact = (Unit_exact.solve inst).Unit_exact.count in
      let greedy = edf_greedy inst in
      Alcotest.(check int) (Printf.sprintf "seed %Ld" seed) exact greedy)
    [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ]

let suites =
  [
    ( "exact",
      [
        case "simple optimum" simple_optimum;
        case "optimum rejects the hog fcfs keeps" exact_beats_fcfs;
        case "empty instance" empty_instance;
        case "result_of is feasible" result_of_is_feasible;
        slow_case "never beaten by heuristics" dominates_heuristics;
        case "budget exhaustion reported" budget_exhaustion_reported;
        case "flexible optimum packs what greedy f=1 cannot" flexible_exact_beats_greedy;
        slow_case "flexible optimum dominates heuristics" flexible_exact_dominates_heuristics;
        case "flexible levels validated" flexible_exact_levels_validated;
      ] );
    ( "unit-exact",
      [
        case "two requests, two slots" unit_two_slots;
        case "three into two slots" unit_three_into_two;
        case "capacity two" unit_capacity_two;
        case "window respected" unit_window_respected;
        case "validation errors" unit_validate_errors;
        case "feasibility checker" unit_feasible_checker;
        slow_case "single pair: EDF greedy matches optimum" single_pair_greedy_is_optimal;
      ] );
  ]
