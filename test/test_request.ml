open Helpers
module Request = Gridbw_request.Request

let invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let validation () =
  invalid "zero volume" (fun () -> req ~volume:0. ());
  invalid "negative volume" (fun () -> req ~volume:(-1.) ());
  invalid "empty window" (fun () -> req ~ts:5. ~tf:5. ());
  invalid "inverted window" (fun () -> req ~ts:5. ~tf:4. ());
  invalid "zero max rate" (fun () -> req ~max_rate:0. ());
  invalid "nan volume" (fun () -> req ~volume:Float.nan ());
  (* 100 MB in 10 s needs 10 MB/s; a 5 MB/s cap can never meet the deadline. *)
  invalid "max below min rate" (fun () -> req ~volume:100. ~ts:0. ~tf:10. ~max_rate:5. ())

let min_rate_value () =
  let r = req ~volume:100. ~ts:0. ~tf:10. () in
  check_approx "min rate" 10.0 (Request.min_rate r)

let min_rate_at_before_ts () =
  let r = req ~volume:100. ~ts:10. ~tf:20. ~max_rate:50. () in
  match Request.min_rate_at r ~now:0.0 with
  | Some rate -> check_approx "clamped to ts" 10.0 rate
  | None -> Alcotest.fail "expected a rate"

let min_rate_at_midwindow () =
  let r = req ~volume:100. ~ts:0. ~tf:10. ~max_rate:50. () in
  match Request.min_rate_at r ~now:5.0 with
  | Some rate -> check_approx "doubled" 20.0 rate
  | None -> Alcotest.fail "expected a rate"

let min_rate_at_closed () =
  let r = req ~volume:100. ~ts:0. ~tf:10. ~max_rate:50. () in
  Alcotest.(check bool) "at tf" true (Request.min_rate_at r ~now:10.0 = None);
  Alcotest.(check bool) "after tf" true (Request.min_rate_at r ~now:11.0 = None)

let rigid_constructor () =
  let r = Request.make_rigid ~id:1 ~ingress:0 ~egress:0 ~bw:25. ~ts:2. ~tf:6. in
  check_approx "volume" 100.0 r.Request.volume;
  check_approx "max rate" 25.0 r.Request.max_rate;
  Alcotest.(check bool) "rigid" true (Request.is_rigid r);
  check_approx "slack 1" 1.0 (Request.slack r)

let flexible_detection () =
  let r = req ~volume:100. ~ts:0. ~tf:10. ~max_rate:40. () in
  Alcotest.(check bool) "flexible" false (Request.is_rigid r);
  check_approx "slack" 4.0 (Request.slack r)

let duration () =
  let r = req ~volume:100. ~max_rate:50. () in
  check_approx "duration at 50" 2.0 (Request.duration_at r ~bw:50.);
  invalid "zero bw" (fun () -> Request.duration_at r ~bw:0.)

let routing () =
  let f = fabric2 () in
  Alcotest.(check bool) "on fabric" true (Request.routed_on (req ~ingress:1 ~egress:1 ()) f);
  Alcotest.(check bool) "bad ingress" false (Request.routed_on (req ~ingress:2 ()) f);
  Alcotest.(check bool) "bad egress" false (Request.routed_on (req ~egress:5 ()) f)

let ordering () =
  let a = req ~id:1 () and b = req ~id:2 () in
  Alcotest.(check bool) "compare by id" true (Request.compare a b < 0);
  Alcotest.(check bool) "equal by id" true (Request.equal a (req ~id:1 ~volume:7. ~tf:1. ()))

let prop_make_valid =
  qcase "qcheck: generated requests satisfy their own invariants"
    QCheck2.Gen.(tup4 (float_range 0.1 1e6) (float_range 0.0 1e4) (float_range 0.1 1e4)
                   (float_range 1.0 16.0))
    (fun (volume, ts, dur, slack) ->
      let tf = ts +. dur in
      let min_rate = volume /. dur in
      let r =
        Request.make ~id:0 ~ingress:0 ~egress:0 ~volume ~ts ~tf ~max_rate:(min_rate *. slack)
      in
      Request.min_rate r <= r.Request.max_rate *. (1. +. 1e-9)
      && Request.slack r >= 1.0 -. 1e-9
      && Request.duration_at r ~bw:r.Request.max_rate <= dur *. (1. +. 1e-9))

let suites =
  [
    ( "request",
      [
        case "constructor validation" validation;
        case "min rate" min_rate_value;
        case "min_rate_at before ts" min_rate_at_before_ts;
        case "min_rate_at mid-window" min_rate_at_midwindow;
        case "min_rate_at closed window" min_rate_at_closed;
        case "rigid constructor" rigid_constructor;
        case "flexible detection" flexible_detection;
        case "duration at rate" duration;
        case "routing check" routing;
        case "ordering and equality" ordering;
        prop_make_valid;
      ] );
  ]
