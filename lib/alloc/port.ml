type t = Ingress of int | Egress of int

let ingress i = Ingress i
let egress e = Egress e
let index = function Ingress i | Egress i -> i
let is_ingress = function Ingress _ -> true | Egress _ -> false

let equal a b =
  match (a, b) with
  | Ingress i, Ingress j | Egress i, Egress j -> Int.equal i j
  | Ingress _, Egress _ | Egress _, Ingress _ -> false

let compare a b =
  match (a, b) with
  | Ingress i, Ingress j | Egress i, Egress j -> Int.compare i j
  | Ingress _, Egress _ -> -1
  | Egress _, Ingress _ -> 1

let pp ppf = function
  | Ingress i -> Format.fprintf ppf "ingress:%d" i
  | Egress e -> Format.fprintf ppf "egress:%d" e
