(** Balanced breakpoint tree: the O(log n) port-usage structure behind
    {!Ledger}'s admission hot path.

    Semantically a mutable {!Profile_ref}: a piecewise-constant usage level
    encoded as deltas at breakpoint times, with float keys compared exactly
    so reservations cancel out precisely on release.  Every query the
    reference answers with a full O(n) map walk is answered here along a
    single root-to-leaf descent over cached subtree aggregates.

    Caveat on float rounding: subtree sums are associated by tree shape,
    not strictly left-to-right, so results can differ from the reference in
    the last ulp when deltas are not exactly representable sums.  The
    admission slack in {!Ledger} (1e-9 relative) dwarfs this.  The
    differential suite in test/test_timeline.ml checks exact equality on an
    exactly-representable grid and tolerance equality on arbitrary floats. *)

type t

val create : unit -> t
(** A fresh, empty timeline. *)

val copy : t -> t
(** Independent deep copy, O(n): nodes are mutated in place by
    [add]/[remove], so a snapshot duplicates the tree.  Later
    [add]/[remove] on either copy do not affect the other. *)

val clear : t -> unit

val add : t -> from_:float -> until:float -> float -> unit
(** [add t ~from_ ~until bw] reserves [bw] on the half-open interval
    [\[from_, until)].  Requires [from_ < until] and finite bounds.
    Negative [bw] releases (used by {!remove}).  O(log n). *)

val remove : t -> from_:float -> until:float -> float -> unit
(** Inverse of {!add} with the same arguments. *)

val usage_at : t -> float -> float
(** Allocated bandwidth at time [t] (intervals are closed on the left).
    O(log n). *)

val max_over : t -> from_:float -> until:float -> float
(** Maximum allocated bandwidth over [\[from_, until)].  0 on an empty
    timeline.  Requires [from_ < until].  O(log n). *)

val argmax_over : t -> from_:float -> until:float -> float * float
(** [(time, level)] of the maximum over [\[from_, until)]: the earliest
    time in the interval at which {!max_over}'s value is reached ([from_]
    itself when no interior breakpoint exceeds the start level, matching a
    left-to-right scan with strictly-greater replacement).  O(log n). *)

val peak : t -> float
(** Maximum usage over the whole time axis. *)

val breakpoints : t -> float list
(** Sorted times where the usage changes (deltas that cancelled out
    exactly are dropped).  O(n). *)

val fold_segments : t -> init:'a -> f:('a -> from_:float -> until:float -> float -> 'a) -> 'a
(** Fold over the maximal constant segments with non-zero span between the
    first and last breakpoint.  The level before the first breakpoint and
    after the last is 0 and is not visited. *)

val integral : t -> float
(** Total reserved volume: ∫ usage dt (MB when usage is MB/s). *)

val is_empty : t -> bool
