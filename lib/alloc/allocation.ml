module Request = Gridbw_request.Request

type t = {
  request : Request.t;
  bw : float;
  sigma : float;
  tau : float;
  profile : Rate_profile.t option;
}

let make ~request ~bw ~sigma =
  if bw <= 0. || not (Float.is_finite bw) then
    invalid_arg "Allocation.make: bandwidth must be positive and finite";
  if sigma < request.Request.ts then invalid_arg "Allocation.make: start before requested ts";
  { request; bw; sigma; tau = sigma +. (request.Request.volume /. bw); profile = None }

let of_profile ~request profile =
  let start = Rate_profile.start profile and finish = Rate_profile.finish profile in
  if not (finish > start) then invalid_arg "Allocation.of_profile: empty span";
  let bw = request.Request.volume /. (finish -. start) in
  { (make ~request ~bw ~sigma:start) with profile = Some profile }

let meets_deadline t = t.tau <= t.request.Request.tf *. (1. +. 1e-9) +. 1e-9
let within_rate_bounds t = t.bw <= t.request.Request.max_rate *. (1. +. 1e-9)
let duration t = t.tau -. t.sigma
let compare a b = Request.compare a.request b.request

let pp ppf t =
  match t.profile with
  | None ->
      Format.fprintf ppf "%a @@ %.2fMB/s on [%.2f,%.2f]" Request.pp t.request t.bw t.sigma
        t.tau
  | Some p -> Format.fprintf ppf "%a @@ profile %a" Request.pp t.request Rate_profile.pp p
