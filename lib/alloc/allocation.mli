(** An accepted request together with its assigned bandwidth and window.

    Acceptance fixes the assigned start [sigma], the constant transmission
    rate [bw], and hence the finish [tau = sigma + volume / bw]
    (section 2.1 of the paper). *)

type t = private {
  request : Gridbw_request.Request.t;
  bw : float;  (** assigned bandwidth, MB/s *)
  sigma : float;  (** assigned start time *)
  tau : float;  (** assigned finish time, [sigma + volume / bw] *)
}

val make : request:Gridbw_request.Request.t -> bw:float -> sigma:float -> t
(** Validates [bw > 0] and [sigma >= ts(request)].
    Raises [Invalid_argument] otherwise.  [tau] is derived. *)

val meets_deadline : t -> bool
(** [tau <= tf] up to a relative [1e-9] slack — the paper's hard
    requirement for accepted requests. *)

val within_rate_bounds : t -> bool
(** [bw <= max_rate] up to a relative [1e-9] slack.  (No lower-bound check:
    [meets_deadline] already subsumes the [bw >= MinRate] constraint when
    [sigma = ts].) *)

val duration : t -> float
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
