(** An accepted request together with its assigned bandwidth and window.

    Acceptance fixes the assigned start [sigma], the constant transmission
    rate [bw], and hence the finish [tau = sigma + volume / bw]
    (section 2.1 of the paper).

    A malleable acceptance additionally carries a step-function
    {!Rate_profile.t}; [bw] then holds the mean rate over the profile
    span and [sigma]/[tau] bracket it, so constant-rate consumers keep a
    meaningful summary while profile-aware ones ({!Gridbw_metrics},
    the store mirror, the reference model) use the exact steps. *)

type t = private {
  request : Gridbw_request.Request.t;
  bw : float;  (** assigned bandwidth, MB/s (mean rate when profiled) *)
  sigma : float;  (** assigned start time *)
  tau : float;  (** assigned finish time, [sigma + volume / bw] *)
  profile : Rate_profile.t option;
      (** step-function schedule for malleable acceptances; [None] for
          constant-rate engines *)
}

val make : request:Gridbw_request.Request.t -> bw:float -> sigma:float -> t
(** Validates [bw > 0] and [sigma >= ts(request)].
    Raises [Invalid_argument] otherwise.  [tau] is derived; [profile]
    is [None]. *)

val of_profile : request:Gridbw_request.Request.t -> Rate_profile.t -> t
(** Derives [sigma] from the profile start and [bw] as
    [volume / (finish - start)], then routes through {!make} so [tau]
    is computed by the same formula every replay path uses; attaches
    the profile.  Raises [Invalid_argument] on the same conditions as
    {!make} (e.g. profile starting before [ts]). *)

val meets_deadline : t -> bool
(** [tau <= tf] up to a relative [1e-9] slack — the paper's hard
    requirement for accepted requests. *)

val within_rate_bounds : t -> bool
(** [bw <= max_rate] up to a relative [1e-9] slack.  (No lower-bound check:
    [meets_deadline] already subsumes the [bw >= MinRate] constraint when
    [sigma = ts].)  For profiled allocations this bounds the mean rate;
    the per-step bound is the profile {!Rate_profile.peak}, checked by
    the validators. *)

val duration : t -> float
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
