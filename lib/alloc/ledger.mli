(** Time-indexed bandwidth accounting for a whole fabric.

    One {!Profile.t} per ingress and egress port.  The ledger enforces the
    paper's constraint set (1): at any instant, the bandwidth reserved
    through a port never exceeds its capacity.  Capacity checks allow a
    relative [1e-9] slack to absorb float accumulation. *)

type t

val create : Gridbw_topology.Fabric.t -> t
val fabric : t -> Gridbw_topology.Fabric.t

val set_fabric : t -> Gridbw_topology.Fabric.t -> unit
(** Swap in a revised fabric (same port counts, possibly different
    capacities).  Existing reservations are untouched; intervals booked
    before a capacity cut may exceed the new capacity until the caller
    preempts enough of them (the fault subsystem's capacity-revision
    path).  All subsequent {!fits} checks use the revised capacities. *)

val fits : t -> Allocation.t -> bool
(** Would reserving this allocation keep both its ports within capacity
    over [\[sigma, tau)]? *)

val fits_interval : t -> ingress:int -> egress:int -> bw:float -> from_:float -> until:float -> bool
(** Same check for an explicit port pair / rate / interval. *)

val reserve : t -> Allocation.t -> unit
(** Record the allocation.  Raises [Invalid_argument] if it does not fit —
    callers are expected to check {!fits} first. *)

val release : t -> Allocation.t -> unit
(** Remove a previously reserved allocation (exact inverse). *)

val reserve_interval : t -> ingress:int -> egress:int -> bw:float -> from_:float -> until:float -> unit
(** Unchecked low-level reservation on an explicit interval (used by the
    slot heuristics that reserve window slices rather than whole
    allocations). *)

val release_interval : t -> ingress:int -> egress:int -> bw:float -> from_:float -> until:float -> unit

val ingress_usage_at : t -> int -> float -> float
val egress_usage_at : t -> int -> float -> float

val ingress_max_over : t -> int -> from_:float -> until:float -> float
val egress_max_over : t -> int -> from_:float -> until:float -> float

val ingress_breakpoints : t -> int -> float list
(** Sorted times where the ingress port's reserved bandwidth changes. *)

val egress_breakpoints : t -> int -> float list

val within_capacity : t -> bool
(** Global invariant check: every port's peak usage is within its
    capacity (with the [1e-9] slack).  Intended for tests. *)

val reserved_volume : t -> float
(** Σ over ingress ports of ∫ usage dt — total MB of reserved ingress
    capacity (each request counted once). *)
