(** Time-indexed bandwidth accounting for a whole fabric.

    One {!Timeline.t} per ingress and egress port, so admission checks
    ({!fits_interval}, {!max_over}) cost O(log n) in the number of live
    breakpoints.  The ledger enforces the paper's constraint set (1): at
    any instant, the bandwidth reserved through a port never exceeds its
    capacity.  Capacity checks allow a relative [1e-9] slack to absorb
    float accumulation.

    Ports are addressed with {!Port.t}. *)

type t

val create : Gridbw_topology.Fabric.t -> t
val fabric : t -> Gridbw_topology.Fabric.t

val set_fabric : t -> Gridbw_topology.Fabric.t -> unit
(** Swap in a revised fabric (same port counts, possibly different
    capacities).  Existing reservations are untouched; intervals booked
    before a capacity cut may exceed the new capacity until the caller
    preempts enough of them (the fault subsystem's capacity-revision
    path).  All subsequent {!fits} checks use the revised capacities. *)

val fits : t -> Allocation.t -> bool
(** Would reserving this allocation keep both its ports within capacity
    over [\[sigma, tau)]? *)

val fits_interval : t -> ingress:int -> egress:int -> bw:float -> from_:float -> until:float -> bool
(** Same check for an explicit port pair / rate / interval. *)

val reserve : t -> Allocation.t -> unit
(** Record the allocation.  Raises [Invalid_argument] if it does not fit —
    callers are expected to check {!fits} first. *)

val release : t -> Allocation.t -> unit
(** Remove a previously reserved allocation (exact inverse). *)

val reserve_interval : t -> ingress:int -> egress:int -> bw:float -> from_:float -> until:float -> unit
(** Unchecked low-level reservation on an explicit interval (used by the
    slot heuristics that reserve window slices rather than whole
    allocations). *)

val release_interval : t -> ingress:int -> egress:int -> bw:float -> from_:float -> until:float -> unit

val capacity : t -> Port.t -> float
(** The port's capacity in the current fabric. *)

val usage_at : t -> Port.t -> float -> float
(** Reserved bandwidth through the port at a time (intervals are closed on
    the left). *)

val max_over : t -> Port.t -> from_:float -> until:float -> float
(** Maximum reserved bandwidth through the port over [\[from_, until)].
    Requires [from_ < until]. *)

val argmax_over : t -> Port.t -> from_:float -> until:float -> float * float
(** [(time, level)] of the maximum over [\[from_, until)], earliest time
    winning ties — the revision point the fault subsystem preempts at. *)

val headroom_over : t -> Port.t -> from_:float -> until:float -> float
(** [capacity t port -. max_over t port ~from_ ~until]: the largest extra
    rate the port can carry throughout the interval.  Negative when the
    port is oversubscribed (after a capacity cut).  Note admission keeps
    using {!fits_interval}'s comparison, which has the [1e-9] slack;
    [headroom_over] is a measurement, not an admission predicate. *)

val breakpoints : t -> Port.t -> float list
(** Sorted times where the port's reserved bandwidth changes. *)

val probe_count : t -> int
(** Running count of timeline range probes ({!max_over}, {!argmax_over},
    {!headroom_over}; two per {!fits_interval}) since creation.  The
    batch schedulers report the delta per decision through the telemetry
    histogram [ledger_probes_per_decision]. *)

val within_capacity : t -> bool
(** Global invariant check: every port's peak usage is within its
    capacity (with the [1e-9] slack).  Intended for tests. *)

val reserved_volume : t -> float
(** Σ over ingress ports of ∫ usage dt — total MB of reserved ingress
    capacity (each request counted once). *)

(** {2 Snapshot serialization}

    The durable store ({!Gridbw_store.Store}) snapshots the ledger as the
    per-port list of maximal constant non-zero segments read off
    {!Timeline.fold_segments}.  The pair is a semantic round-trip:
    [restore fabric (dump t)] answers every query with the same levels as
    [t], up to the {!Timeline} caveat that subtree sums are associated by
    tree shape (exact on exactly-representable levels, last-ulp otherwise
    — well inside the ledger's [1e-9] admission slack). *)

type segment = { seg_from : float; seg_until : float; seg_level : float }

type dump = { dump_ingress : segment list array; dump_egress : segment list array }

val dump : t -> dump
(** Per-port non-zero constant segments, in increasing time order.
    Segments are disjoint, finite, and carry the port's exact usage level
    over their span. *)

val restore : Gridbw_topology.Fabric.t -> dump -> t
(** Rebuild a ledger from a dump.  The fabric supplies port counts and
    capacities; raises [Invalid_argument] when the dump's port counts do
    not match or a segment is malformed (non-finite or empty span).  The
    probe counter restarts at 0. *)
