(* Balanced breakpoint tree for a single port's piecewise-constant usage.

   Each node holds one breakpoint time and the delta of allocated bandwidth
   there (exactly the entries of the reference [Profile_ref] map), and
   caches for its subtree
     - [sum]: the total of the deltas, and
     - [best]/[best_at]: the maximum over the subtree's breakpoints of the
       running in-order delta sum (i.e. the usage level just after each
       breakpoint), with the leftmost breakpoint achieving it.
   Prefix sums ([usage_at]) and range maxima ([max_over], [argmax_over])
   then resolve along a single root-to-leaf descent: O(log n) against the
   reference's O(n) full-map walk.

   The tree is an AVL rebalanced in place on the insertion/deletion path.
   Nodes are mutable and allocated once per breakpoint: an update rewrites
   the h/sum/best caches along the path instead of copying it, and the
   float payload of every node lives in an all-float record ([fl]) so the
   aggregates stay unboxed — the admission inner loop runs without per-probe
   allocation.  Range maxima accumulate into a probe cursor owned by the
   timeline ([probe]), reused across queries, rather than building a
   (value, witness) tuple at every level of the descent.

   Float discipline matches [Profile_ref] exactly: keys are compared with
   [Float.compare] (the ordering of [Map.Make (Float)]), deltas cancel on
   [= 0.], and aggregate sums are accumulated left-to-right in key order so
   every level equals the same rounding-order prefix sum the reference
   computes.  In-place rebalancing performs the same rotations on the same
   shapes as the previous persistent version, so cached aggregates associate
   identically and decision streams are bit-identical.  The differential
   qcheck suite in test/test_timeline.ml pins this equivalence down. *)

(* All-float payload: flat unboxed float block, mutated in place. *)
type fl = {
  mutable key : float;
  mutable delta : float;
  mutable sum : float;
  mutable best : float;
  mutable best_at : float;
}

type tree = Leaf | Node of { mutable l : tree; mutable r : tree; mutable h : int; f : fl }

(* Reusable probe cursor for range-max descents. *)
type probe = { mutable pbest : float; mutable pbest_at : float }

type t = { mutable root : tree; probe : probe }

let height = function Leaf -> 0 | Node n -> n.h
let sum = function Leaf -> 0. | Node n -> n.f.sum

(* Recompute height and aggregates of a node from its children (which must
   already be up to date).  The in-order candidates for [best] are the left
   subtree's best, the level after this node, and the right subtree's best
   offset by everything to its left; strict [>] keeps the leftmost witness
   on ties. *)
let update t =
  match t with
  | Leaf -> ()
  | Node n ->
      let f = n.f in
      let here = sum n.l +. f.delta in
      n.h <- 1 + max (height n.l) (height n.r);
      f.sum <- here +. sum n.r;
      (match n.l with
      | Leaf ->
          f.best <- here;
          f.best_at <- f.key
      | Node ln ->
          if here > ln.f.best then begin
            f.best <- here;
            f.best_at <- f.key
          end
          else begin
            f.best <- ln.f.best;
            f.best_at <- ln.f.best_at
          end);
      (match n.r with
      | Leaf -> ()
      | Node rn ->
          let rb = here +. rn.f.best in
          if rb > f.best then begin
            f.best <- rb;
            f.best_at <- rn.f.best_at
          end)

(* AVL rebalance for a node whose children differ in height by at most 2
   (the invariant after one insertion or deletion below).  Rotations
   reattach the existing nodes — same shapes as the persistent version,
   children updated before their new parent. *)
let balance t =
  match t with
  | Leaf -> t
  | Node n ->
      let hl = height n.l and hr = height n.r in
      if hl > hr + 1 then begin
        let l = n.l in
        match l with
        | Node ln when height ln.l >= height ln.r ->
            (* single right rotation *)
            n.l <- ln.r;
            update t;
            ln.r <- t;
            update l;
            l
        | Node ln -> (
            match ln.r with
            | Node lrn ->
                (* left-right double rotation *)
                let lr = ln.r in
                ln.r <- lrn.l;
                update l;
                n.l <- lrn.r;
                update t;
                lrn.l <- l;
                lrn.r <- t;
                update lr;
                lr
            | Leaf -> assert false)
        | Leaf -> assert false
      end
      else if hr > hl + 1 then begin
        let r = n.r in
        match r with
        | Node rn when height rn.r >= height rn.l ->
            (* single left rotation *)
            n.r <- rn.l;
            update t;
            rn.l <- t;
            update r;
            r
        | Node rn -> (
            match rn.l with
            | Node rln ->
                (* right-left double rotation *)
                let rl = rn.l in
                rn.l <- rln.r;
                update r;
                n.r <- rln.l;
                update t;
                rln.l <- t;
                rln.r <- r;
                update rl;
                rl
            | Leaf -> assert false)
        | Leaf -> assert false
      end
      else begin
        update t;
        t
      end

let rec min_node t =
  match t with
  | Leaf -> assert false
  | Node { l = Leaf; _ } -> t
  | Node n -> min_node n.l

let rec remove_min t =
  match t with
  | Leaf -> assert false
  | Node { l = Leaf; r; _ } -> r
  | Node n ->
      n.l <- remove_min n.l;
      balance t

(* Join two subtrees whose keys are already ordered (all of [l] < all of
   [r]): the minimum node of [r] is detached and reused as the new root —
   the same shape the persistent version built from the min binding. *)
let merge l r =
  match (l, r) with
  | Leaf, t | t, Leaf -> t
  | _ -> (
      let mt = min_node r in
      match mt with
      | Node m ->
          let r' = remove_min r in
          m.l <- l;
          m.r <- r';
          balance mt
      | Leaf -> assert false)

(* Add [delta] to the entry at [key], dropping the node when the deltas
   cancel exactly — the same invariant as the reference map, so
   [breakpoints] never reports a time where the level does not change. *)
let rec add_delta t key delta =
  match t with
  | Leaf ->
      if delta = 0. then Leaf
      else Node { l = Leaf; r = Leaf; h = 1; f = { key; delta; sum = delta; best = delta; best_at = key } }
  | Node n ->
      let c = Float.compare key n.f.key in
      if c = 0 then begin
        let d = n.f.delta +. delta in
        if d = 0. then merge n.l n.r
        else begin
          n.f.delta <- d;
          update t;
          t
        end
      end
      else if c < 0 then begin
        n.l <- add_delta n.l key delta;
        balance t
      end
      else begin
        n.r <- add_delta n.r key delta;
        balance t
      end

(* Sum of deltas with key <= time. *)
let rec prefix_sum tree time =
  match tree with
  | Leaf -> 0.
  | Node n ->
      if Float.compare n.f.key time <= 0 then sum n.l +. n.f.delta +. prefix_sum n.r time
      else prefix_sum n.l time

(* Max (and leftmost witness) of the level after each breakpoint with
   key > lo, offset by [acc], the sum of all deltas left of this subtree.
   Subtrees entirely above the bound are answered from their cached
   aggregates, so the descent visits O(log n) nodes.  Candidates are folded
   into the probe cursor strictly in key order with strictly-greater
   replacement — the same (value, leftmost witness) the persistent
   tuple-returning version computed, without the per-level allocation. *)
let rec best_above tree lo acc p =
  match tree with
  | Leaf -> ()
  | Node n ->
      let here = acc +. sum n.l +. n.f.delta in
      if Float.compare n.f.key lo <= 0 then best_above n.r lo here p
      else begin
        best_above n.l lo acc p;
        if here > p.pbest then begin
          p.pbest <- here;
          p.pbest_at <- n.f.key
        end;
        match n.r with
        | Leaf -> ()
        | Node rn ->
            let rb = here +. rn.f.best in
            if rb > p.pbest then begin
              p.pbest <- rb;
              p.pbest_at <- rn.f.best_at
            end
      end

(* Symmetric: keys < hi. *)
let rec best_below tree hi acc p =
  match tree with
  | Leaf -> ()
  | Node n ->
      if Float.compare n.f.key hi >= 0 then best_below n.l hi acc p
      else begin
        let here = acc +. sum n.l +. n.f.delta in
        (match n.l with
        | Leaf -> ()
        | Node ln ->
            let lb = acc +. ln.f.best in
            if lb > p.pbest then begin
              p.pbest <- lb;
              p.pbest_at <- ln.f.best_at
            end);
        if here > p.pbest then begin
          p.pbest <- here;
          p.pbest_at <- n.f.key
        end;
        best_below n.r hi here p
      end

(* Keys strictly inside (lo, hi): descend to the split node, then the two
   one-sided searches above. *)
let rec best_between tree ~lo ~hi acc p =
  match tree with
  | Leaf -> ()
  | Node n ->
      if Float.compare n.f.key lo <= 0 then best_between n.r ~lo ~hi (acc +. sum n.l +. n.f.delta) p
      else if Float.compare n.f.key hi >= 0 then best_between n.l ~lo ~hi acc p
      else begin
        let here = acc +. sum n.l +. n.f.delta in
        best_above n.l lo acc p;
        if here > p.pbest then begin
          p.pbest <- here;
          p.pbest_at <- n.f.key
        end;
        best_below n.r hi here p
      end

(* --- public interface --- *)

let create () = { root = Leaf; probe = { pbest = neg_infinity; pbest_at = Float.nan } }

let rec copy_tree = function
  | Leaf -> Leaf
  | Node n ->
      Node
        {
          l = copy_tree n.l;
          r = copy_tree n.r;
          h = n.h;
          f =
            {
              key = n.f.key;
              delta = n.f.delta;
              sum = n.f.sum;
              best = n.f.best;
              best_at = n.f.best_at;
            };
        }

let copy t = { root = copy_tree t.root; probe = { pbest = neg_infinity; pbest_at = Float.nan } }
let clear t = t.root <- Leaf
let is_empty t = t.root = Leaf

let add t ~from_ ~until bw =
  if not (Float.is_finite from_ && Float.is_finite until) then
    invalid_arg "Timeline.add: non-finite interval";
  if from_ >= until then invalid_arg "Timeline.add: empty interval";
  t.root <- add_delta (add_delta t.root from_ bw) until (-.bw)

let remove t ~from_ ~until bw = add t ~from_ ~until (-.bw)
let usage_at t time = prefix_sum t.root time

let max_over t ~from_ ~until =
  if from_ >= until then invalid_arg "Timeline.max_over: empty interval";
  let start_level = prefix_sum t.root from_ in
  let p = t.probe in
  p.pbest <- neg_infinity;
  p.pbest_at <- Float.nan;
  best_between t.root ~lo:from_ ~hi:until 0. p;
  Float.max start_level p.pbest

let argmax_over t ~from_ ~until =
  if from_ >= until then invalid_arg "Timeline.argmax_over: empty interval";
  let start_level = prefix_sum t.root from_ in
  let p = t.probe in
  p.pbest <- neg_infinity;
  p.pbest_at <- Float.nan;
  best_between t.root ~lo:from_ ~hi:until 0. p;
  if p.pbest > start_level then (p.pbest_at, p.pbest) else (from_, start_level)

let peak t = match t.root with Leaf -> 0.0 | Node n -> Float.max 0.0 n.f.best

let breakpoints t =
  let rec walk tree acc =
    match tree with Leaf -> acc | Node n -> walk n.l (n.f.key :: walk n.r acc)
  in
  walk t.root []

let fold_segments t ~init ~f =
  let rec walk tree (acc, level, prev) =
    match tree with
    | Leaf -> (acc, level, prev)
    | Node n ->
        let acc, level, prev = walk n.l (acc, level, prev) in
        let acc =
          match prev with
          | Some p when p < n.f.key -> f acc ~from_:p ~until:n.f.key level
          | _ -> acc
        in
        walk n.r (acc, level +. n.f.delta, Some n.f.key)
  in
  let acc, _, _ = walk t.root (init, 0.0, None) in
  acc

let integral t =
  fold_segments t ~init:0.0 ~f:(fun acc ~from_ ~until level -> acc +. (level *. (until -. from_)))
