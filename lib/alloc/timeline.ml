(* Balanced breakpoint tree for a single port's piecewise-constant usage.

   Each node holds one breakpoint time and the delta of allocated bandwidth
   there (exactly the entries of the reference [Profile_ref] map), and
   caches for its subtree
     - [sum]: the total of the deltas, and
     - [best]/[best_at]: the maximum over the subtree's breakpoints of the
       running in-order delta sum (i.e. the usage level just after each
       breakpoint), with the leftmost breakpoint achieving it.
   Prefix sums ([usage_at]) and range maxima ([max_over], [argmax_over])
   then resolve along a single root-to-leaf descent: O(log n) against the
   reference's O(n) full-map walk.

   The tree is an AVL rebalanced on the insertion/deletion path; the nodes
   themselves are immutable (so snapshots would be O(1)), with a mutable
   root making the structure imperative for the ledger's add/remove flow.

   Float discipline matches [Profile_ref] exactly: keys are compared with
   [Float.compare] (the ordering of [Map.Make (Float)]), deltas cancel on
   [= 0.], and aggregate sums are accumulated left-to-right in key order so
   every level equals the same rounding-order prefix sum the reference
   computes.  The differential qcheck suite in test/test_timeline.ml pins
   this equivalence down. *)

type tree =
  | Leaf
  | Node of {
      l : tree;
      key : float;
      delta : float;
      r : tree;
      h : int;
      sum : float;
      best : float;
      best_at : float;
    }

type t = { mutable root : tree }

let height = function Leaf -> 0 | Node n -> n.h
let sum = function Leaf -> 0. | Node n -> n.sum

(* Smart constructor: recompute height and aggregates.  The in-order
   candidates for [best] are the left subtree's best, the level after this
   node, and the right subtree's best offset by everything to its left;
   strict [>] keeps the leftmost witness on ties. *)
let node l key delta r =
  let here = sum l +. delta in
  let best, best_at =
    match l with Leaf -> (here, key) | Node n -> if here > n.best then (here, key) else (n.best, n.best_at)
  in
  let best, best_at =
    match r with
    | Leaf -> (best, best_at)
    | Node n ->
        let rb = here +. n.best in
        if rb > best then (rb, n.best_at) else (best, best_at)
  in
  Node
    {
      l;
      key;
      delta;
      r;
      h = 1 + max (height l) (height r);
      sum = here +. sum r;
      best;
      best_at;
    }

(* AVL rebalance for a node whose children differ in height by at most 2
   (the invariant after one insertion or deletion below). *)
let balance l key delta r =
  let hl = height l and hr = height r in
  if hl > hr + 1 then
    match l with
    | Node { l = ll; key = lk; delta = ld; r = lr; _ } when height ll >= height lr ->
        node ll lk ld (node lr key delta r)
    | Node { l = ll; key = lk; delta = ld; r = Node { l = lrl; key = lrk; delta = lrd; r = lrr; _ }; _ }
      ->
        node (node ll lk ld lrl) lrk lrd (node lrr key delta r)
    | _ -> assert false
  else if hr > hl + 1 then
    match r with
    | Node { l = rl; key = rk; delta = rd; r = rr; _ } when height rr >= height rl ->
        node (node l key delta rl) rk rd rr
    | Node { l = Node { l = rll; key = rlk; delta = rld; r = rlr; _ }; key = rk; delta = rd; r = rr; _ }
      ->
        node (node l key delta rll) rlk rld (node rlr rk rd rr)
    | _ -> assert false
  else node l key delta r

let rec min_binding = function
  | Leaf -> assert false
  | Node { l = Leaf; key; delta; _ } -> (key, delta)
  | Node { l; _ } -> min_binding l

let rec remove_min = function
  | Leaf -> assert false
  | Node { l = Leaf; r; _ } -> r
  | Node { l; key; delta; r; _ } -> balance (remove_min l) key delta r

let merge l r =
  match (l, r) with
  | Leaf, t | t, Leaf -> t
  | _ ->
      let key, delta = min_binding r in
      balance l key delta (remove_min r)

(* Add [delta] to the entry at [key], dropping the node when the deltas
   cancel exactly — the same invariant as the reference map, so
   [breakpoints] never reports a time where the level does not change. *)
let rec add_delta tree key delta =
  match tree with
  | Leaf -> if delta = 0. then Leaf else node Leaf key delta Leaf
  | Node { l; key = k; delta = d; r; _ } ->
      let c = Float.compare key k in
      if c = 0 then
        let d = d +. delta in
        if d = 0. then merge l r else node l k d r
      else if c < 0 then balance (add_delta l key delta) k d r
      else balance l k d (add_delta r key delta)

(* Sum of deltas with key <= time. *)
let rec prefix_sum tree time =
  match tree with
  | Leaf -> 0.
  | Node { l; key; delta; r; _ } ->
      if Float.compare key time <= 0 then sum l +. delta +. prefix_sum r time
      else prefix_sum l time

(* Max (and leftmost witness) of the level after each breakpoint with
   key > lo, offset by [acc], the sum of all deltas left of this subtree.
   Subtrees entirely above the bound are answered from their cached
   aggregates, so the descent visits O(log n) nodes. *)
let rec best_above tree lo acc =
  match tree with
  | Leaf -> (neg_infinity, Float.nan)
  | Node { l; key; delta; r; _ } ->
      let here = acc +. sum l +. delta in
      if Float.compare key lo <= 0 then best_above r lo here
      else
        let best, best_at = best_above l lo acc in
        let best, best_at = if here > best then (here, key) else (best, best_at) in
        (match r with
        | Leaf -> (best, best_at)
        | Node n ->
            let rb = here +. n.best in
            if rb > best then (rb, n.best_at) else (best, best_at))

(* Symmetric: keys < hi. *)
let rec best_below tree hi acc =
  match tree with
  | Leaf -> (neg_infinity, Float.nan)
  | Node { l; key; delta; r; _ } ->
      if Float.compare key hi >= 0 then best_below l hi acc
      else
        let here = acc +. sum l +. delta in
        let best, best_at =
          match l with
          | Leaf -> (here, key)
          | Node n -> if here > acc +. n.best then (here, key) else (acc +. n.best, n.best_at)
        in
        let rb, ra = best_below r hi here in
        if rb > best then (rb, ra) else (best, best_at)

(* Keys strictly inside (lo, hi): descend to the split node, then the two
   one-sided searches above. *)
let rec best_between tree ~lo ~hi acc =
  match tree with
  | Leaf -> (neg_infinity, Float.nan)
  | Node { l; key; delta; r; _ } ->
      if Float.compare key lo <= 0 then best_between r ~lo ~hi (acc +. sum l +. delta)
      else if Float.compare key hi >= 0 then best_between l ~lo ~hi acc
      else
        let here = acc +. sum l +. delta in
        let best, best_at = best_above l lo acc in
        let best, best_at = if here > best then (here, key) else (best, best_at) in
        let rb, ra = best_below r hi here in
        if rb > best then (rb, ra) else (best, best_at)

(* --- public interface --- *)

let create () = { root = Leaf }
let copy t = { root = t.root }
let clear t = t.root <- Leaf
let is_empty t = t.root = Leaf

let add t ~from_ ~until bw =
  if not (Float.is_finite from_ && Float.is_finite until) then
    invalid_arg "Timeline.add: non-finite interval";
  if from_ >= until then invalid_arg "Timeline.add: empty interval";
  t.root <- add_delta (add_delta t.root from_ bw) until (-.bw)

let remove t ~from_ ~until bw = add t ~from_ ~until (-.bw)
let usage_at t time = prefix_sum t.root time

let max_over t ~from_ ~until =
  if from_ >= until then invalid_arg "Timeline.max_over: empty interval";
  let start_level = prefix_sum t.root from_ in
  let best, _ = best_between t.root ~lo:from_ ~hi:until 0. in
  Float.max start_level best

let argmax_over t ~from_ ~until =
  if from_ >= until then invalid_arg "Timeline.argmax_over: empty interval";
  let start_level = prefix_sum t.root from_ in
  let best, best_at = best_between t.root ~lo:from_ ~hi:until 0. in
  if best > start_level then (best_at, best) else (from_, start_level)

let peak t = match t.root with Leaf -> 0.0 | Node n -> Float.max 0.0 n.best

let breakpoints t =
  let rec walk tree acc =
    match tree with Leaf -> acc | Node { l; key; r; _ } -> walk l (key :: walk r acc)
  in
  walk t.root []

let fold_segments t ~init ~f =
  let rec walk tree (acc, level, prev) =
    match tree with
    | Leaf -> (acc, level, prev)
    | Node { l; key; delta; r; _ } ->
        let acc, level, prev = walk l (acc, level, prev) in
        let acc =
          match prev with Some p when p < key -> f acc ~from_:p ~until:key level | _ -> acc
        in
        walk r (acc, level +. delta, Some key)
  in
  let acc, _, _ = walk t.root (init, 0.0, None) in
  acc

let integral t =
  fold_segments t ~init:0.0 ~f:(fun acc ~from_ ~until level -> acc +. (level *. (until -. from_)))
