(** Instantaneous port-usage counters for on-line heuristics.

    The paper's Algorithms 2 and 3 track [ali(i)] / [ale(e)] — the
    bandwidth currently allocated on each ingress / egress port — and
    compare against the port capacities.  [Live.t] is exactly that state;
    time is managed by the caller (grab on admission, release when the
    transfer finishes). *)

type t

val create : Gridbw_topology.Fabric.t -> t
val fabric : t -> Gridbw_topology.Fabric.t

val set_fabric : t -> Gridbw_topology.Fabric.t -> unit
(** Swap in a revised fabric (same port counts, possibly different
    capacities).  Counters are untouched: a shrunk port may be left
    over-committed — callers are expected to preempt until {!fits} holds
    again (the fault subsystem's capacity-revision path). *)

val probe_count : t -> int
(** Port-counter probes performed so far: each {!fits} (and so each
    {!try_grab}) and each {!saturation} compares the two counters of a
    route against their capacities and counts 2.  The on-line analogue of
    {!Gridbw_alloc.Ledger.probe_count} — admission spans record the delta
    across a decision as the search's work. *)

val ingress_used : t -> int -> float
(** [ali(i)]. *)

val egress_used : t -> int -> float
(** [ale(e)]. *)

val fits : t -> ingress:int -> egress:int -> bw:float -> bool
(** [ali(i) + bw <= B_in(i)] and [ale(e) + bw <= B_out(e)] (with the usual
    [1e-9] relative slack). *)

val grab : t -> ingress:int -> egress:int -> bw:float -> unit
(** Add [bw] to both counters.  Does not check capacity. *)

val release : t -> ingress:int -> egress:int -> bw:float -> unit
(** Subtract [bw] from both counters, clamping tiny negative residue
    from float cancellation back to 0. *)

val try_grab : t -> ingress:int -> egress:int -> bw:float -> bool
(** {!fits} then {!grab}; returns whether it grabbed. *)

(** {2 Per-side halves}

    For shards owning only one end of a route: same expressions as the
    two-sided forms, so an ingress-half on one shard plus an egress-half
    on another is bit-identical to the unsharded operation.  Each
    per-side fits counts 1 probe. *)

val fits_ingress : t -> ingress:int -> bw:float -> bool
val fits_egress : t -> egress:int -> bw:float -> bool
val grab_ingress : t -> ingress:int -> bw:float -> unit
val grab_egress : t -> egress:int -> bw:float -> unit
val release_ingress : t -> ingress:int -> bw:float -> unit
val release_egress : t -> egress:int -> bw:float -> unit

val saturation : t -> ingress:int -> egress:int -> bw:float -> float
(** The WINDOW heuristic's cost (section 5.2):
    [max((ali+bw)/B_in, (ale+bw)/B_out)]. *)

val reset : t -> unit
