(** Step-function rate profile of a single malleable transfer.

    A profile is a sorted array of non-overlapping half-open segments
    [\[from_, until)], each carrying a strictly positive constant rate.
    Gaps between segments mean the transfer is paused (rate 0); rates
    may change only at segment boundaries, which the MALLEABLE engine
    places on ledger breakpoints.

    Unlike {!Profile}, which accumulates the usage of *many* requests on
    one port, a [Rate_profile.t] describes the schedule of *one* request:
    it is attached to an {!Allocation.t} and its Kahan-summed {!integral}
    is required to equal the request volume bit-for-bit. *)

type seg = {
  from_ : float;  (** segment start (inclusive) *)
  until : float;  (** segment end (exclusive), [> from_] *)
  rate : float;  (** constant rate on the segment, [> 0] *)
}

type t = private seg array

val make : seg list -> t
(** Validates: non-empty, every field finite, [from_ < until] and
    [rate > 0] per segment, and segments sorted with
    [seg.(i).until <= seg.(i+1).from_].  Raises [Invalid_argument]
    otherwise. *)

val constant : from_:float -> until:float -> rate:float -> t
(** Single-segment profile — the shape every rigid/constant engine
    implicitly assigns. *)

val of_triples : (float * float * float) array -> t
(** [(from_, until, rate)] triples, validated like {!make}.  Inverse of
    {!to_triples}; this is the wire/journal representation. *)

val to_triples : t -> (float * float * float) array

val segments : t -> seg list
val start : t -> float
(** Start of the first segment. *)

val finish : t -> float
(** End of the last segment. *)

val peak : t -> float
(** Maximum segment rate. *)

val rate_at : t -> float -> float
(** Rate at a given time; 0 outside every segment (left-closed). *)

val integral : t -> float
(** Kahan-compensated sum of [rate * (until - from_)] over the segments,
    in segment order.  The MALLEABLE engine constructs profiles so this
    equals the request volume exactly (bitwise); {!Gridbw_metrics} and
    the reference model check that contract. *)

val is_constant : t -> bool
(** True when the profile is a single segment. *)

val equal : t -> t -> bool
(** Structural (bitwise per field) equality. *)

val pp : Format.formatter -> t -> unit
