module Fmap = Map.Make (Float)

(* Reference implementation: map from breakpoint time to the delta of
   allocated bandwidth there, every query a full prefix-sum walk.  Kept as
   the O(n)-per-query oracle that [Timeline] is differentially tested
   against; the ledger's hot path uses [Timeline].
   Invariant: no stored delta is exactly 0 (cancelled entries are removed),
   so [breakpoints] reflects actual level changes of exact-float reservations. *)
type t = float Fmap.t

let empty = Fmap.empty

let add_delta t time delta =
  Fmap.update time
    (function
      | None -> if delta = 0. then None else Some delta
      | Some d ->
          let d = d +. delta in
          if d = 0. then None else Some d)
    t

let add t ~from_ ~until bw =
  if not (Float.is_finite from_ && Float.is_finite until) then
    invalid_arg "Profile_ref.add: non-finite interval";
  if from_ >= until then invalid_arg "Profile_ref.add: empty interval";
  let t = add_delta t from_ bw in
  add_delta t until (-.bw)

let remove t ~from_ ~until bw = add t ~from_ ~until (-.bw)

let usage_at t time =
  Fmap.fold (fun bp delta acc -> if bp <= time then acc +. delta else acc) t 0.0

let max_over t ~from_ ~until =
  if from_ >= until then invalid_arg "Profile_ref.max_over: empty interval";
  (* Level at the start of the interval, then walk breakpoints inside it. *)
  let start_level =
    Fmap.fold (fun bp delta acc -> if bp <= from_ then acc +. delta else acc) t 0.0
  in
  let best = ref start_level in
  let level = ref start_level in
  Fmap.iter
    (fun bp delta ->
      if bp > from_ && bp < until then begin
        level := !level +. delta;
        if !level > !best then best := !level
      end)
    t;
  !best

let peak t =
  let best = ref 0.0 and level = ref 0.0 in
  Fmap.iter
    (fun _ delta ->
      level := !level +. delta;
      if !level > !best then best := !level)
    t;
  !best

let breakpoints t = Fmap.fold (fun bp _ acc -> bp :: acc) t [] |> List.rev

let fold_segments t ~init ~f =
  let acc = ref init and level = ref 0.0 and prev = ref None in
  Fmap.iter
    (fun bp delta ->
      (match !prev with
      | Some p when p < bp -> acc := f !acc ~from_:p ~until:bp !level
      | _ -> ());
      level := !level +. delta;
      prev := Some bp)
    t;
  !acc

let integral t =
  fold_segments t ~init:0.0 ~f:(fun acc ~from_ ~until level -> acc +. (level *. (until -. from_)))

let is_empty t = Fmap.is_empty t
