type seg = { from_ : float; until : float; rate : float }
type t = seg array

let validate (segs : seg array) =
  if Array.length segs = 0 then invalid_arg "Rate_profile.make: empty profile";
  Array.iteri
    (fun i s ->
      if
        not
          (Float.is_finite s.from_ && Float.is_finite s.until && Float.is_finite s.rate)
      then invalid_arg "Rate_profile.make: non-finite segment";
      if not (s.from_ < s.until) then invalid_arg "Rate_profile.make: empty or inverted segment";
      if not (s.rate > 0.) then invalid_arg "Rate_profile.make: rate must be positive";
      if i > 0 && not (segs.(i - 1).until <= s.from_) then
        invalid_arg "Rate_profile.make: overlapping or unsorted segments")
    segs;
  segs

let make segs = validate (Array.of_list segs)
let constant ~from_ ~until ~rate = validate [| { from_; until; rate } |]

let of_triples triples =
  validate (Array.map (fun (from_, until, rate) -> { from_; until; rate }) triples)

let to_triples (t : t) = Array.map (fun s -> (s.from_, s.until, s.rate)) t
let segments (t : t) = Array.to_list t
let start (t : t) = t.(0).from_
let finish (t : t) = t.(Array.length t - 1).until
let peak (t : t) = Array.fold_left (fun m s -> Float.max m s.rate) 0. t

let rate_at (t : t) time =
  let n = Array.length t in
  let rec go i =
    if i >= n || t.(i).from_ > time then 0.
    else if time < t.(i).until then t.(i).rate
    else go (i + 1)
  in
  go 0

let integral (t : t) =
  (* Kahan: the bitwise volume contract depends on this exact summation
     order, so the engine's closing step and every checker share it. *)
  let sum = ref 0. and comp = ref 0. in
  Array.iter
    (fun s ->
      let y = (s.rate *. (s.until -. s.from_)) -. !comp in
      let t' = !sum +. y in
      comp := (t' -. !sum) -. y;
      sum := t')
    t;
  !sum

let is_constant (t : t) = Array.length t = 1

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         Int64.equal (Int64.bits_of_float x.from_) (Int64.bits_of_float y.from_)
         && Int64.equal (Int64.bits_of_float x.until) (Int64.bits_of_float y.until)
         && Int64.equal (Int64.bits_of_float x.rate) (Int64.bits_of_float y.rate))
       a b

let pp ppf (t : t) =
  Format.fprintf ppf "@[<h>";
  Array.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%.2f@@[%.2f,%.2f)" s.rate s.from_ s.until)
    t;
  Format.fprintf ppf "@]"
