(* Compatibility alias: [Profile] is the historical name of the pure
   reference profile.  The ledger's hot path now runs on [Timeline]; the
   pure implementation lives in [Profile_ref] and remains the differential
   oracle (and the independent structure [Validate] checks schedules with). *)
include Profile_ref
