(** A fabric access point, keyed by side.

    The paper's constraint set (1) is symmetric in the ingress and egress
    directions, and so is every query the admission heuristics ask of the
    ledger ("is there headroom on this port over this interval").  [Port.t]
    carries the side together with the index so those queries exist once,
    instead of as [ingress_*]/[egress_*] accessor pairs. *)

type t = Ingress of int | Egress of int

val ingress : int -> t
val egress : int -> t

val index : t -> int
(** The port's index within its side's capacity vector. *)

val is_ingress : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
