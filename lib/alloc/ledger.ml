module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request

type t = {
  mutable fabric : Fabric.t;
  ingress : Timeline.t array;
  egress : Timeline.t array;
  mutable probes : int;
}

let create fabric =
  {
    fabric;
    ingress = Array.init (Fabric.ingress_count fabric) (fun _ -> Timeline.create ());
    egress = Array.init (Fabric.egress_count fabric) (fun _ -> Timeline.create ());
    probes = 0;
  }

let probe_count t = t.probes

let fabric t = t.fabric

let set_fabric t fabric =
  if not (Fabric.same_shape t.fabric fabric) then
    invalid_arg "Ledger.set_fabric: port counts differ";
  t.fabric <- fabric

(* Resolve a port to its timeline, validating the index against the fabric.
   [what] names the calling operation in the error message. *)
let timeline t what port =
  match (port : Port.t) with
  | Port.Ingress i ->
      if not (Fabric.valid_ingress t.fabric i) then
        invalid_arg (Printf.sprintf "Ledger.%s: bad ingress port" what);
      t.ingress.(i)
  | Port.Egress e ->
      if not (Fabric.valid_egress t.fabric e) then
        invalid_arg (Printf.sprintf "Ledger.%s: bad egress port" what);
      t.egress.(e)

let capacity t port =
  match (port : Port.t) with
  | Port.Ingress i ->
      if not (Fabric.valid_ingress t.fabric i) then invalid_arg "Ledger.capacity: bad ingress port";
      Fabric.ingress_capacity t.fabric i
  | Port.Egress e ->
      if not (Fabric.valid_egress t.fabric e) then invalid_arg "Ledger.capacity: bad egress port";
      Fabric.egress_capacity t.fabric e

(* Relative slack absorbing float accumulation in capacity comparisons. *)
let le_cap used cap = used <= cap *. (1. +. 1e-9)

let fits_interval t ~ingress ~egress ~bw ~from_ ~until =
  if not (Fabric.valid_ingress t.fabric ingress) then
    invalid_arg "Ledger.fits_interval: bad ingress port";
  if not (Fabric.valid_egress t.fabric egress) then
    invalid_arg "Ledger.fits_interval: bad egress port";
  if from_ >= until then invalid_arg "Ledger.fits_interval: empty interval";
  t.probes <- t.probes + 2;
  le_cap
    (Timeline.max_over t.ingress.(ingress) ~from_ ~until +. bw)
    (Fabric.ingress_capacity t.fabric ingress)
  && le_cap
       (Timeline.max_over t.egress.(egress) ~from_ ~until +. bw)
       (Fabric.egress_capacity t.fabric egress)

let ports (a : Allocation.t) =
  (a.Allocation.request.Request.ingress, a.Allocation.request.Request.egress)

let fits t a =
  let i, e = ports a in
  fits_interval t ~ingress:i ~egress:e ~bw:a.Allocation.bw ~from_:a.Allocation.sigma
    ~until:a.Allocation.tau

let reserve_interval t ~ingress ~egress ~bw ~from_ ~until =
  Timeline.add t.ingress.(ingress) ~from_ ~until bw;
  Timeline.add t.egress.(egress) ~from_ ~until bw

let release_interval t ~ingress ~egress ~bw ~from_ ~until =
  Timeline.remove t.ingress.(ingress) ~from_ ~until bw;
  Timeline.remove t.egress.(egress) ~from_ ~until bw

let reserve t a =
  if not (fits t a) then invalid_arg "Ledger.reserve: allocation exceeds port capacity";
  let i, e = ports a in
  reserve_interval t ~ingress:i ~egress:e ~bw:a.Allocation.bw ~from_:a.Allocation.sigma
    ~until:a.Allocation.tau

let release t a =
  let i, e = ports a in
  release_interval t ~ingress:i ~egress:e ~bw:a.Allocation.bw ~from_:a.Allocation.sigma
    ~until:a.Allocation.tau

let usage_at t port time = Timeline.usage_at (timeline t "usage_at" port) time

let max_over t port ~from_ ~until =
  t.probes <- t.probes + 1;
  Timeline.max_over (timeline t "max_over" port) ~from_ ~until

let argmax_over t port ~from_ ~until =
  t.probes <- t.probes + 1;
  Timeline.argmax_over (timeline t "argmax_over" port) ~from_ ~until

let headroom_over t port ~from_ ~until =
  t.probes <- t.probes + 1;
  capacity t port -. Timeline.max_over (timeline t "headroom_over" port) ~from_ ~until

let breakpoints t port = Timeline.breakpoints (timeline t "breakpoints" port)

let within_capacity t =
  let ok = ref true in
  Array.iteri
    (fun i p ->
      if not (le_cap (Timeline.peak p) (Fabric.ingress_capacity t.fabric i)) then ok := false)
    t.ingress;
  Array.iteri
    (fun e p ->
      if not (le_cap (Timeline.peak p) (Fabric.egress_capacity t.fabric e)) then ok := false)
    t.egress;
  !ok

let reserved_volume t = Array.fold_left (fun acc p -> acc +. Timeline.integral p) 0.0 t.ingress

(* --- snapshot serialization support (the durable store's Ledger image) --- *)

type segment = { seg_from : float; seg_until : float; seg_level : float }
type dump = { dump_ingress : segment list array; dump_egress : segment list array }

let dump_timeline tl =
  Timeline.fold_segments tl ~init: []
    ~f:(fun acc ~from_ ~until level ->
      if level = 0.0 then acc else { seg_from = from_; seg_until = until; seg_level = level } :: acc)
  |> List.rev

let dump t =
  {
    dump_ingress = Array.map dump_timeline t.ingress;
    dump_egress = Array.map dump_timeline t.egress;
  }

let restore_timeline what segs =
  let tl = Timeline.create () in
  List.iter
    (fun { seg_from; seg_until; seg_level } ->
      if
        not
          (Float.is_finite seg_from && Float.is_finite seg_until && Float.is_finite seg_level
         && seg_from < seg_until)
      then invalid_arg (Printf.sprintf "Ledger.restore: malformed %s segment" what);
      if seg_level <> 0.0 then Timeline.add tl ~from_:seg_from ~until:seg_until seg_level)
    segs;
  tl

let restore fabric d =
  if
    Array.length d.dump_ingress <> Fabric.ingress_count fabric
    || Array.length d.dump_egress <> Fabric.egress_count fabric
  then invalid_arg "Ledger.restore: dump port counts do not match the fabric";
  {
    fabric;
    ingress = Array.map (restore_timeline "ingress") d.dump_ingress;
    egress = Array.map (restore_timeline "egress") d.dump_egress;
    probes = 0;
  }
