module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request

type t = {
  mutable fabric : Fabric.t;
  ingress : Profile.t array;
  egress : Profile.t array;
}

let create fabric =
  {
    fabric;
    ingress = Array.make (Fabric.ingress_count fabric) Profile.empty;
    egress = Array.make (Fabric.egress_count fabric) Profile.empty;
  }

let fabric t = t.fabric

let set_fabric t fabric =
  if not (Fabric.same_shape t.fabric fabric) then
    invalid_arg "Ledger.set_fabric: port counts differ";
  t.fabric <- fabric

(* Relative slack absorbing float accumulation in capacity comparisons. *)
let le_cap used cap = used <= cap *. (1. +. 1e-9)

let fits_interval t ~ingress ~egress ~bw ~from_ ~until =
  if not (Fabric.valid_ingress t.fabric ingress) then
    invalid_arg "Ledger.fits_interval: bad ingress port";
  if not (Fabric.valid_egress t.fabric egress) then
    invalid_arg "Ledger.fits_interval: bad egress port";
  if from_ >= until then invalid_arg "Ledger.fits_interval: empty interval";
  le_cap
    (Profile.max_over t.ingress.(ingress) ~from_ ~until +. bw)
    (Fabric.ingress_capacity t.fabric ingress)
  && le_cap
       (Profile.max_over t.egress.(egress) ~from_ ~until +. bw)
       (Fabric.egress_capacity t.fabric egress)

let ports (a : Allocation.t) =
  (a.Allocation.request.Request.ingress, a.Allocation.request.Request.egress)

let fits t a =
  let i, e = ports a in
  fits_interval t ~ingress:i ~egress:e ~bw:a.Allocation.bw ~from_:a.Allocation.sigma
    ~until:a.Allocation.tau

let reserve_interval t ~ingress ~egress ~bw ~from_ ~until =
  t.ingress.(ingress) <- Profile.add t.ingress.(ingress) ~from_ ~until bw;
  t.egress.(egress) <- Profile.add t.egress.(egress) ~from_ ~until bw

let release_interval t ~ingress ~egress ~bw ~from_ ~until =
  t.ingress.(ingress) <- Profile.remove t.ingress.(ingress) ~from_ ~until bw;
  t.egress.(egress) <- Profile.remove t.egress.(egress) ~from_ ~until bw

let reserve t a =
  if not (fits t a) then invalid_arg "Ledger.reserve: allocation exceeds port capacity";
  let i, e = ports a in
  reserve_interval t ~ingress:i ~egress:e ~bw:a.Allocation.bw ~from_:a.Allocation.sigma
    ~until:a.Allocation.tau

let release t a =
  let i, e = ports a in
  release_interval t ~ingress:i ~egress:e ~bw:a.Allocation.bw ~from_:a.Allocation.sigma
    ~until:a.Allocation.tau

let ingress_usage_at t i time = Profile.usage_at t.ingress.(i) time
let egress_usage_at t e time = Profile.usage_at t.egress.(e) time
let ingress_max_over t i ~from_ ~until = Profile.max_over t.ingress.(i) ~from_ ~until
let egress_max_over t e ~from_ ~until = Profile.max_over t.egress.(e) ~from_ ~until
let ingress_breakpoints t i = Profile.breakpoints t.ingress.(i)
let egress_breakpoints t e = Profile.breakpoints t.egress.(e)

let within_capacity t =
  let ok = ref true in
  Array.iteri
    (fun i p -> if not (le_cap (Profile.peak p) (Fabric.ingress_capacity t.fabric i)) then ok := false)
    t.ingress;
  Array.iteri
    (fun e p -> if not (le_cap (Profile.peak p) (Fabric.egress_capacity t.fabric e)) then ok := false)
    t.egress;
  !ok

let reserved_volume t = Array.fold_left (fun acc p -> acc +. Profile.integral p) 0.0 t.ingress
