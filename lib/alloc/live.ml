module Fabric = Gridbw_topology.Fabric

type t = {
  mutable fabric : Fabric.t;
  ali : float array;
  ale : float array;
  mutable probes : int;
}

let create fabric =
  {
    fabric;
    ali = Array.make (Fabric.ingress_count fabric) 0.0;
    ale = Array.make (Fabric.egress_count fabric) 0.0;
    probes = 0;
  }

let probe_count t = t.probes

let fabric t = t.fabric

let set_fabric t fabric =
  if not (Fabric.same_shape t.fabric fabric) then
    invalid_arg "Live.set_fabric: port counts differ";
  t.fabric <- fabric
let ingress_used t i = t.ali.(i)
let egress_used t e = t.ale.(e)

let le_cap used cap = used <= cap *. (1. +. 1e-9)

let fits t ~ingress ~egress ~bw =
  t.probes <- t.probes + 2;
  le_cap (t.ali.(ingress) +. bw) (Fabric.ingress_capacity t.fabric ingress)
  && le_cap (t.ale.(egress) +. bw) (Fabric.egress_capacity t.fabric egress)

let grab t ~ingress ~egress ~bw =
  t.ali.(ingress) <- t.ali.(ingress) +. bw;
  t.ale.(egress) <- t.ale.(egress) +. bw

let clamp x = if x < 0. then 0. else x

let release t ~ingress ~egress ~bw =
  t.ali.(ingress) <- clamp (t.ali.(ingress) -. bw);
  t.ale.(egress) <- clamp (t.ale.(egress) -. bw)

(* Per-side halves of the operations above, for shards that own only one
   end of a route.  The arithmetic expressions are copied verbatim from
   the two-sided forms: a sharded run that performs [fits_ingress] on one
   shard and [fits_egress] on another must agree bit-for-bit with an
   unsharded [fits]. *)

let fits_ingress t ~ingress ~bw =
  t.probes <- t.probes + 1;
  le_cap (t.ali.(ingress) +. bw) (Fabric.ingress_capacity t.fabric ingress)

let fits_egress t ~egress ~bw =
  t.probes <- t.probes + 1;
  le_cap (t.ale.(egress) +. bw) (Fabric.egress_capacity t.fabric egress)

let grab_ingress t ~ingress ~bw = t.ali.(ingress) <- t.ali.(ingress) +. bw
let grab_egress t ~egress ~bw = t.ale.(egress) <- t.ale.(egress) +. bw
let release_ingress t ~ingress ~bw = t.ali.(ingress) <- clamp (t.ali.(ingress) -. bw)
let release_egress t ~egress ~bw = t.ale.(egress) <- clamp (t.ale.(egress) -. bw)

let try_grab t ~ingress ~egress ~bw =
  let ok = fits t ~ingress ~egress ~bw in
  if ok then grab t ~ingress ~egress ~bw;
  ok

let saturation t ~ingress ~egress ~bw =
  t.probes <- t.probes + 2;
  Float.max
    ((t.ali.(ingress) +. bw) /. Fabric.ingress_capacity t.fabric ingress)
    ((t.ale.(egress) +. bw) /. Fabric.egress_capacity t.fabric egress)

let reset t =
  Array.fill t.ali 0 (Array.length t.ali) 0.0;
  Array.fill t.ale 0 (Array.length t.ale) 0.0
