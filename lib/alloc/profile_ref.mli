(** Reference implementation of the piecewise-constant port profile.

    The profile stores, for each breakpoint time, the change (delta) of the
    allocated bandwidth at that instant; the usage on an interval is the
    prefix sum of deltas, recomputed by a full walk on every query — O(n)
    per query.  Breakpoint times come verbatim from request fields, so
    float keys compare exactly and reservations cancel out precisely on
    release.

    This is the oracle the O(log n) {!Timeline} structure is differentially
    tested against; the ledger's admission hot path uses {!Timeline}. *)

type t

val empty : t

val add : t -> from_:float -> until:float -> float -> t
(** [add p ~from_ ~until bw] reserves [bw] on the half-open interval
    [\[from_, until)].  Requires [from_ < until] and finite bounds.
    Negative [bw] releases (used by {!remove}). *)

val remove : t -> from_:float -> until:float -> float -> t
(** Inverse of {!add} with the same arguments. *)

val usage_at : t -> float -> float
(** Allocated bandwidth at time [t] (intervals are closed on the left). *)

val max_over : t -> from_:float -> until:float -> float
(** Maximum allocated bandwidth over [\[from_, until)].  0 on an empty
    profile.  Requires [from_ < until]. *)

val peak : t -> float
(** Maximum usage over the whole time axis. *)

val breakpoints : t -> float list
(** Sorted times where the usage changes (deltas that cancelled out
    exactly are dropped). *)

val fold_segments : t -> init:'a -> f:('a -> from_:float -> until:float -> float -> 'a) -> 'a
(** Fold over the maximal constant segments with non-zero span between the
    first and last breakpoint.  The level before the first breakpoint and
    after the last is 0 and is not visited. *)

val integral : t -> float
(** Total reserved volume: ∫ usage dt (MB when usage is MB/s). *)

val is_empty : t -> bool
