(** The grid overlay fabric of the paper's system model (section 2).

    The network is a set of ingress access points and a set of egress access
    points; the core between them is assumed lossless and over-provisioned,
    so the only capacity constraints live at the access points.  A fabric is
    therefore fully described by the two capacity vectors [B_in] and
    [B_out].  Ports are identified by their index in each vector. *)

type t

val make : ingress:float array -> egress:float array -> t
(** Build a fabric from explicit capacity vectors.  Capacities must be
    finite and positive, and both sides non-empty.
    Raises [Invalid_argument] otherwise.  The arrays are copied. *)

val uniform : ingress_count:int -> egress_count:int -> capacity:float -> t
(** Homogeneous fabric: every port has the same [capacity]. *)

val paper_default : unit -> t
(** The evaluation platform of section 4.3: 10 ingress and 10 egress points
    of 1 GB/s (= 1000 MB/s) each. *)

val ingress_count : t -> int
val egress_count : t -> int

val ingress_capacity : t -> int -> float
(** Capacity of ingress port [i]; raises [Invalid_argument] if out of
    range. *)

val egress_capacity : t -> int -> float
(** Capacity of egress port [e]; raises [Invalid_argument] if out of
    range. *)

val total_ingress_capacity : t -> float
val total_egress_capacity : t -> float

val half_total_capacity : t -> float
(** [½ (Σ B_in + Σ B_out)] — the normalisation used by both the paper's
    load definition (section 4.3) and RESOURCE-UTIL (section 2.2). *)

val with_ingress_capacity : t -> int -> float -> t
(** Copy of the fabric with ingress port [i] set to the given capacity.
    Used by the fault subsystem to model port degradation; the capacity
    must still be finite and positive (a full outage is modeled by a tiny
    residual capacity). *)

val with_egress_capacity : t -> int -> float -> t

val same_shape : t -> t -> bool
(** Same number of ingress and egress ports (capacities may differ) —
    the precondition for revising a live controller's fabric in place. *)

val valid_ingress : t -> int -> bool
val valid_egress : t -> int -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
