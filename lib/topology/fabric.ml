type t = { ingress : float array; egress : float array }

let check_side name caps =
  if Array.length caps = 0 then invalid_arg (Printf.sprintf "Fabric.make: no %s ports" name);
  Array.iter
    (fun c ->
      if not (Float.is_finite c) || c <= 0. then
        invalid_arg (Printf.sprintf "Fabric.make: %s capacities must be finite and positive" name))
    caps

let make ~ingress ~egress =
  check_side "ingress" ingress;
  check_side "egress" egress;
  { ingress = Array.copy ingress; egress = Array.copy egress }

let uniform ~ingress_count ~egress_count ~capacity =
  if ingress_count <= 0 || egress_count <= 0 then
    invalid_arg "Fabric.uniform: port counts must be positive";
  make ~ingress:(Array.make ingress_count capacity) ~egress:(Array.make egress_count capacity)

(* Section 4.3: 10 ingress + 10 egress points at 1 GB/s; bandwidth unit is MB/s. *)
let paper_default () = uniform ~ingress_count:10 ~egress_count:10 ~capacity:1000.0

let ingress_count t = Array.length t.ingress
let egress_count t = Array.length t.egress

let check_capacity name c =
  if not (Float.is_finite c) || c <= 0. then
    invalid_arg (Printf.sprintf "Fabric.%s: capacity must be finite and positive" name)

let with_ingress_capacity t i capacity =
  if i < 0 || i >= Array.length t.ingress then
    invalid_arg "Fabric.with_ingress_capacity: out of range";
  check_capacity "with_ingress_capacity" capacity;
  let ingress = Array.copy t.ingress in
  ingress.(i) <- capacity;
  { t with ingress }

let with_egress_capacity t e capacity =
  if e < 0 || e >= Array.length t.egress then
    invalid_arg "Fabric.with_egress_capacity: out of range";
  check_capacity "with_egress_capacity" capacity;
  let egress = Array.copy t.egress in
  egress.(e) <- capacity;
  { t with egress }

let same_shape a b =
  Array.length a.ingress = Array.length b.ingress
  && Array.length a.egress = Array.length b.egress

let ingress_capacity t i =
  if i < 0 || i >= Array.length t.ingress then invalid_arg "Fabric.ingress_capacity: out of range";
  t.ingress.(i)

let egress_capacity t e =
  if e < 0 || e >= Array.length t.egress then invalid_arg "Fabric.egress_capacity: out of range";
  t.egress.(e)

let sum = Array.fold_left ( +. ) 0.0
let total_ingress_capacity t = sum t.ingress
let total_egress_capacity t = sum t.egress
let half_total_capacity t = 0.5 *. (total_ingress_capacity t +. total_egress_capacity t)

let valid_ingress t i = i >= 0 && i < Array.length t.ingress
let valid_egress t e = e >= 0 && e < Array.length t.egress

let equal a b = a.ingress = b.ingress && a.egress = b.egress

let pp ppf t =
  Format.fprintf ppf "@[<v>fabric: %d ingress / %d egress ports@,ingress: @[%a@]@,egress:  @[%a@]@]"
    (ingress_count t) (egress_count t)
    (Fmt.array ~sep:Fmt.sp Fmt.float)
    t.ingress
    (Fmt.array ~sep:Fmt.sp Fmt.float)
    t.egress
