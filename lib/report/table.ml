type t = { headers : string list; rows : string list list }

let make ~headers rows =
  let width = List.length headers in
  let pad row =
    let n = List.length row in
    if n > width then invalid_arg "Table.make: row longer than header"
    else row @ List.init (width - n) (fun _ -> "")
  in
  { headers; rows = List.map pad rows }

let of_floats ~headers ?(precision = 4) rows =
  make ~headers (List.map (List.map (Printf.sprintf "%.*f" precision)) rows)

let column_widths t =
  let update widths row =
    List.map2 (fun w cell -> max w (String.length cell)) widths row
  in
  List.fold_left update (List.map String.length t.headers) t.rows

let render t =
  let widths = column_widths t in
  let render_row row =
    let cells = List.map2 (fun w cell -> Printf.sprintf "%-*s" w cell) widths row in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule = "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+" in
  String.concat "\n"
    ((rule :: render_row t.headers :: rule :: List.map render_row t.rows) @ [ rule ])

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (line t.headers :: List.map line t.rows) ^ "\n"

let print t = print_endline (render t)
