(** Figure containers: named series over a shared x-axis, rendered as an
    aligned table (one column per series) plus optional ASCII plot. *)

type series = { label : string; points : (float * float) list }

type t = {
  id : string;  (** e.g. "fig4-accept" *)
  title : string;
  x_label : string;
  y_label : string;
  series : series list;
}

val make :
  id:string -> title:string -> x_label:string -> y_label:string -> series list -> t

val series : label:string -> (float * float) list -> series

val to_table : ?precision:int -> t -> Table.t
(** One row per distinct x (union over series, sorted); missing points
    render as empty cells. *)

val render : ?precision:int -> t -> string
(** Title line, the table, and an ASCII chart of the series. *)

val ascii_plot : ?width:int -> ?height:int -> t -> string
(** Crude scatter plot; each series uses a distinct mark character.
    Returns "" when there are no points. *)

val to_csv : t -> string
val print : t -> unit
