let line ?(tool = "gridbw") ~cmd fields =
  let body = String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) fields) in
  if body = "" then Printf.sprintf "# %s %s" tool cmd
  else Printf.sprintf "# %s %s | %s" tool cmd body

let print ?tool ~cmd fields = print_endline (line ?tool ~cmd fields)
let seed s = ("seed", Int64.to_string s)
let int k v = (k, string_of_int v)
let float k v = (k, Printf.sprintf "%g" v)
