type series = { label : string; points : (float * float) list }
type t = { id : string; title : string; x_label : string; y_label : string; series : series list }

let make ~id ~title ~x_label ~y_label series = { id; title; x_label; y_label; series }
let series ~label points = { label; points }

let xs_of t =
  List.concat_map (fun s -> List.map fst s.points) t.series
  |> List.sort_uniq Float.compare

let lookup s x = List.assoc_opt x s.points

let to_table ?(precision = 4) t =
  let xs = xs_of t in
  let fmt v = Printf.sprintf "%.*f" precision v in
  let rows =
    List.map
      (fun x ->
        fmt x :: List.map (fun s -> match lookup s x with Some y -> fmt y | None -> "") t.series)
      xs
  in
  Table.make ~headers:(t.x_label :: List.map (fun s -> s.label) t.series) rows

let marks = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '$'; '~' |]

let ascii_plot ?(width = 64) ?(height = 16) t =
  let points = List.concat_map (fun s -> s.points) t.series in
  match points with
  | [] -> ""
  | (x0, y0) :: _ ->
      let fold f init = List.fold_left f init points in
      let xmin = fold (fun a (x, _) -> Float.min a x) x0 in
      let xmax = fold (fun a (x, _) -> Float.max a x) x0 in
      let ymin = Float.min 0.0 (fold (fun a (_, y) -> Float.min a y) y0) in
      let ymax = fold (fun a (_, y) -> Float.max a y) y0 in
      let ymax = if ymax = ymin then ymin +. 1.0 else ymax in
      let xspan = if xmax = xmin then 1.0 else xmax -. xmin in
      let grid = Array.make_matrix height width ' ' in
      List.iteri
        (fun si s ->
          let mark = marks.(si mod Array.length marks) in
          List.iter
            (fun (x, y) ->
              let col =
                int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1) +. 0.5)
              in
              let row =
                height - 1
                - int_of_float ((y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1) +. 0.5)
              in
              if row >= 0 && row < height && col >= 0 && col < width then grid.(row).(col) <- mark)
            s.points)
        t.series;
      let buf = Buffer.create 1024 in
      Buffer.add_string buf (Printf.sprintf "%10.3f |" ymax);
      Buffer.add_string buf (String.init width (fun c -> grid.(0).(c)));
      Buffer.add_char buf '\n';
      for r = 1 to height - 2 do
        Buffer.add_string buf "           |";
        Buffer.add_string buf (String.init width (fun c -> grid.(r).(c)));
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (Printf.sprintf "%10.3f |" ymin);
      Buffer.add_string buf (String.init width (fun c -> grid.(height - 1).(c)));
      Buffer.add_char buf '\n';
      Buffer.add_string buf ("           +" ^ String.make width '-' ^ "\n");
      let xlo = Printf.sprintf "%.3g" xmin and xhi = Printf.sprintf "%.3g" xmax in
      let gap = max 1 (width - String.length xlo - String.length xhi) in
      Buffer.add_string buf ("            " ^ xlo ^ String.make gap ' ' ^ xhi ^ "\n");
      List.iteri
        (fun si s ->
          Buffer.add_string buf
            (Printf.sprintf "            %c = %s\n" marks.(si mod Array.length marks) s.label))
        t.series;
      Buffer.contents buf

let render ?precision t =
  Printf.sprintf "== %s: %s ==\n(y: %s)\n%s\n%s" t.id t.title t.y_label
    (Table.render (to_table ?precision t))
    (ascii_plot t)

let to_csv t = Table.to_csv (to_table ~precision:6 t)
let print t = print_endline (render t)
