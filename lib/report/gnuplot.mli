(** Gnuplot export for {!Figure.t}.

    The harness's primary output is ASCII, but regenerated paper figures
    are nicer to eyeball as plots.  [script] renders a self-contained
    gnuplot program (data inlined via heredocs, one block per series) that
    produces a PNG; [write ~dir fig] drops [<id>.gp] next to the CSVs so
    `gnuplot results/fig4-accept.gp` recreates the figure offline. *)

val script : ?terminal:string -> ?output:string -> Figure.t -> string
(** Gnuplot source.  [terminal] defaults to ["pngcairo size 900,600"];
    [output] defaults to ["<id>.png"]. *)

val write : dir:string -> Figure.t -> string
(** Write [<dir>/<id>.gp]; creates [dir] if missing; returns the path. *)
