(** Reproducibility stamps for command output.

    Every CLI, CSV and bench artefact opens with one comment line naming
    the command and the knobs that determine its output — RNG seed,
    request count, replication count, heuristic/policy — so a saved file
    can always be regenerated:

    {v # gridbw figure 4 | seed=42 count=600 reps=3 v}

    The stamp deliberately excludes output-destination flags (e.g.
    [--trace-out]): a traced run and a plain run of the same workload must
    produce byte-identical stdout, which CI checks. *)

val line : ?tool:string -> cmd:string -> (string * string) list -> string
(** [line ~cmd fields] is ["# <tool> <cmd> | k=v ..."] (no ["|"] when
    [fields] is empty).  [tool] defaults to ["gridbw"]. *)

val print : ?tool:string -> cmd:string -> (string * string) list -> unit
(** {!line} to stdout with a trailing newline. *)

(** Field shorthands. *)

val seed : int64 -> string * string
val int : string -> int -> string * string
val float : string -> float -> string * string
