(** Aligned ASCII tables and CSV output for experiment results. *)

type t

val make : headers:string list -> string list list -> t
(** Rows shorter than the header are padded with empty cells; longer rows
    raise [Invalid_argument]. *)

val of_floats : headers:string list -> ?precision:int -> float list list -> t
(** Convenience: format every cell with [%.*f] (default precision 4). *)

val render : t -> string
(** Aligned, boxed with [|] separators and a header rule. *)

val to_csv : t -> string
(** RFC-4180-ish: cells containing commas, quotes or newlines are quoted. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
