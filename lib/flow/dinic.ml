(* Adjacency as arrays-of-growable-int-vectors; each edge stores its
   remaining capacity, the residual twin being the edge with id lxor 1. *)

type t = {
  vertices : int;
  mutable cap : int array;  (* remaining capacity per half-edge *)
  mutable dst : int array;  (* head per half-edge *)
  mutable edges : int;  (* half-edges stored *)
  adj : int list array;  (* outgoing half-edge ids per vertex, reversed *)
  mutable adj_frozen : int array array option;
  mutable original_cap : int array;
}

let create ~vertices =
  if vertices <= 0 then invalid_arg "Dinic.create: need at least one vertex";
  {
    vertices;
    cap = Array.make 16 0;
    dst = Array.make 16 0;
    edges = 0;
    adj = Array.make vertices [];
    adj_frozen = None;
    original_cap = [||];
  }

let ensure_room t =
  if t.edges + 2 > Array.length t.cap then begin
    let n = 2 * Array.length t.cap in
    let cap = Array.make n 0 and dst = Array.make n 0 in
    Array.blit t.cap 0 cap 0 t.edges;
    Array.blit t.dst 0 dst 0 t.edges;
    t.cap <- cap;
    t.dst <- dst
  end

let add_edge t ~src ~dst ~capacity =
  if t.adj_frozen <> None then invalid_arg "Dinic.add_edge: graph already solved";
  if capacity < 0 then invalid_arg "Dinic.add_edge: negative capacity";
  if src < 0 || src >= t.vertices || dst < 0 || dst >= t.vertices then
    invalid_arg "Dinic.add_edge: vertex out of range";
  ensure_room t;
  let id = t.edges in
  t.cap.(id) <- capacity;
  t.dst.(id) <- dst;
  t.cap.(id + 1) <- 0;
  t.dst.(id + 1) <- src;
  t.edges <- t.edges + 2;
  t.adj.(src) <- id :: t.adj.(src);
  t.adj.(dst) <- (id + 1) :: t.adj.(dst);
  id

let freeze t =
  match t.adj_frozen with
  | Some a -> a
  | None ->
      let a = Array.map (fun l -> Array.of_list (List.rev l)) t.adj in
      t.adj_frozen <- Some a;
      t.original_cap <- Array.sub t.cap 0 t.edges;
      a

let max_flow t ~source ~sink =
  if source < 0 || source >= t.vertices || sink < 0 || sink >= t.vertices || source = sink then
    invalid_arg "Dinic.max_flow: bad source/sink";
  let adj = freeze t in
  let level = Array.make t.vertices (-1) in
  let iter = Array.make t.vertices 0 in
  let queue = Queue.create () in
  let bfs () =
    Array.fill level 0 t.vertices (-1);
    Queue.clear queue;
    level.(source) <- 0;
    Queue.push source queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun e ->
          let w = t.dst.(e) in
          if t.cap.(e) > 0 && level.(w) < 0 then begin
            level.(w) <- level.(v) + 1;
            Queue.push w queue
          end)
        adj.(v)
    done;
    level.(sink) >= 0
  in
  (* Blocking-flow DFS with per-vertex edge iterators. *)
  let rec dfs v pushed =
    if v = sink then pushed
    else begin
      let result = ref 0 in
      while !result = 0 && iter.(v) < Array.length adj.(v) do
        let e = adj.(v).(iter.(v)) in
        let w = t.dst.(e) in
        if t.cap.(e) > 0 && level.(w) = level.(v) + 1 then begin
          let got = dfs w (min pushed t.cap.(e)) in
          if got > 0 then begin
            t.cap.(e) <- t.cap.(e) - got;
            t.cap.(e lxor 1) <- t.cap.(e lxor 1) + got;
            result := got
          end
          else iter.(v) <- iter.(v) + 1
        end
        else iter.(v) <- iter.(v) + 1
      done;
      !result
    end
  in
  let flow = ref 0 in
  while bfs () do
    Array.fill iter 0 t.vertices 0;
    let rec push () =
      let got = dfs source max_int in
      if got > 0 then begin
        flow := !flow + got;
        push ()
      end
    in
    push ()
  done;
  !flow

let flow_on t id =
  if id < 0 || id >= t.edges || id land 1 = 1 then invalid_arg "Dinic.flow_on: bad edge id";
  if t.adj_frozen = None then 0 else t.original_cap.(id) - t.cap.(id)

let vertex_count t = t.vertices
let edge_count t = t.edges / 2
