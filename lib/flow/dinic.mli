(** Dinic's maximum-flow algorithm on integer capacities.

    Substrate for the polynomial optimal scheduler of uniform long-lived
    requests (paper section 3, citing Marchal et al. [13, 14]): the
    accept/reject problem becomes a bipartite degree-constrained subgraph
    problem, i.e. a max-flow instance.  O(V²E) worst case, linear in
    practice on the shallow three-layer networks used here. *)

type t

val create : vertices:int -> t
(** Graph on vertices [0 .. vertices-1], no edges. *)

val add_edge : t -> src:int -> dst:int -> capacity:int -> int
(** Add a directed edge (plus its residual twin) and return an edge id
    usable with {!flow_on}.  Capacity must be non-negative; vertices in
    range.  Raises [Invalid_argument] otherwise. *)

val max_flow : t -> source:int -> sink:int -> int
(** Run Dinic from [source] to [sink]; returns the flow value.  May be
    called once per graph (the residual state persists so {!flow_on}
    reflects the computed flow). *)

val flow_on : t -> int -> int
(** Flow routed on the given edge id after {!max_flow}. *)

val vertex_count : t -> int
val edge_count : t -> int
(** Number of {!add_edge} calls (not counting residual twins). *)
