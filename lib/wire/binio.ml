(* Little-endian primitive readers/writers shared by the binary codecs.
   Floats travel as their IEEE 754 bit patterns ([Int64.bits_of_float]),
   so every value round-trips bit-exactly — including -0., infinities and
   NaN payloads — which is what keeps binary and JSONL decision streams
   comparable without a tolerance. *)

let add_u8 b v = Buffer.add_char b (Char.unsafe_chr (v land 0xff))
let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let add_i64 b v = Buffer.add_int64_le b (Int64.of_int v)
let add_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let get_u8 s pos = Char.code (String.get s pos)
let get_u32 s pos = Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF
let get_i64 s pos = Int64.to_int (String.get_int64_le s pos)
let get_f64 s pos = Int64.float_of_bits (String.get_int64_le s pos)
