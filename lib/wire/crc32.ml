(* IEEE 802.3 CRC32 (reflected, the zlib polynomial), table-driven.  The
   state fits in a native [int] (63-bit on every supported platform), so
   the per-byte loop runs unboxed; only the API surface is [int32].
   Moved here from lib/store's WAL so the WAL, the binary trace frames,
   and the serve layer all share one implementation. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let sub s ~pos ~len =
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!c lsr 8)
  done;
  Int32.of_int (!c lxor 0xFFFFFFFF)

let digest s = sub s ~pos:0 ~len:(String.length s)
