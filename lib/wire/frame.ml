(* Record framing, three ways:

   - binary: 0xB1 magic, version/kind tag byte, u32 LE payload length,
     payload bytes, u32 LE CRC32 of the payload.  Self-delimiting,
     newline-safe, torn-tail detectable.
   - [Line]: the serve plane's "%d %s\n" length-prefixed text frame.
   - [Hexline]: the JSONL WAL's "%08x %d %s\n" CRC-framed line.

   The magic byte 0xB1 is not printable ASCII, so the first byte of any
   record distinguishes the three: '{' or a decimal digit or a hex digit
   opens one of the text forms, 0xB1 opens a binary frame.  That is the
   whole format-negotiation story — journals, traces, and serve streams
   may mix records freely and every reader sniffs per record. *)

let magic = '\xB1'
let is_binary c = Char.equal c magic

(* magic + tag + u32 length before the payload, u32 crc after. *)
let header_bytes = 6
let trailer_bytes = 4
let overhead = header_bytes + trailer_bytes

let add b ~tag payload =
  if tag < 0 || tag > 0xff then invalid_arg "Frame.add: tag must fit one byte";
  Buffer.add_char b magic;
  Binio.add_u8 b tag;
  Binio.add_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.add_int32_le b (Crc32.digest payload)

(* Decode one binary frame at [pos] into (tag, payload).  [max] bounds
   the accepted payload length so a corrupted length field on a live
   socket is an error instead of an unbounded wait for more input. *)
let decode ?(max = Stdlib.max_int) s ~pos : (int * string) Codec.decoded =
  let len = String.length s in
  if pos >= len then Incomplete
  else if not (is_binary s.[pos]) then Corrupt "bad magic byte"
  else if pos + header_bytes > len then Incomplete
  else begin
    let tag = Binio.get_u8 s (pos + 1) in
    let plen = Binio.get_u32 s (pos + 2) in
    if plen > max then Corrupt (Printf.sprintf "frame length %d exceeds limit %d" plen max)
    else if pos + header_bytes + plen + trailer_bytes > len then Incomplete
    else begin
      let crc = String.get_int32_le s (pos + header_bytes + plen) in
      if not (Int32.equal crc (Crc32.sub s ~pos:(pos + header_bytes) ~len:plen)) then
        Corrupt "crc mismatch"
      else
        Value
          ( (tag, String.sub s (pos + header_bytes) plen),
            pos + header_bytes + plen + trailer_bytes )
    end
  end

(* "%d %s\n": decimal payload length, space, payload, newline. *)
module Line = struct
  type t = string

  let name = "line"
  let max_digits = 10

  let encode b payload =
    Buffer.add_string b (string_of_int (String.length payload));
    Buffer.add_char b ' ';
    Buffer.add_string b payload;
    Buffer.add_char b '\n'

  let decode s ~pos : t Codec.decoded =
    let len = String.length s in
    let rec digits i =
      if i >= len then `Incomplete
      else
        match s.[i] with
        | '0' .. '9' when i - pos < max_digits -> digits (i + 1)
        | '0' .. '9' -> `Too_long
        | ' ' when i > pos -> `Sep i
        | _ -> `Bad i
    in
    match digits pos with
    | `Incomplete -> Incomplete
    | `Too_long -> Corrupt "length prefix too long"
    | `Bad i ->
        if i = pos then Corrupt "missing length prefix" else Corrupt "malformed length prefix"
    | `Sep i -> (
        match int_of_string_opt (String.sub s pos (i - pos)) with
        | None -> Corrupt "malformed length prefix"
        | Some plen ->
            let start = i + 1 in
            if start + plen + 1 > len then Incomplete
            else if s.[start + plen] <> '\n' then Corrupt "missing frame terminator"
            else Value (String.sub s start plen, start + plen + 1))
end

(* "%08x %d %s\n": CRC32 in hex, payload length, payload, newline.  The
   JSONL WAL's historical frame, kept byte-identical so existing
   journals replay unchanged. *)
module Hexline = struct
  type t = string

  let name = "hexline"

  let encode b payload =
    if String.contains payload '\n' then invalid_arg "Hexline.encode: payload contains a newline";
    let hex = "0123456789abcdef" in
    let crc = Int32.to_int (Crc32.digest payload) land 0xFFFFFFFF in
    for i = 7 downto 0 do
      Buffer.add_char b hex.[(crc lsr (4 * i)) land 0xf]
    done;
    Buffer.add_char b ' ';
    Buffer.add_string b (string_of_int (String.length payload));
    Buffer.add_char b ' ';
    Buffer.add_string b payload;
    Buffer.add_char b '\n'

  (* [line] is one record without its trailing newline. *)
  let parse_frame line =
    match String.index_opt line ' ' with
    | None -> Error "missing crc field"
    | Some i -> (
        match String.index_from_opt line (i + 1) ' ' with
        | None -> Error "missing length field"
        | Some j -> (
            let crc_hex = String.sub line 0 i in
            let len_s = String.sub line (i + 1) (j - i - 1) in
            match (Int32.of_string_opt ("0x" ^ crc_hex), int_of_string_opt len_s) with
            | None, _ -> Error "malformed crc"
            | _, None -> Error "malformed length"
            | Some crc, Some len ->
                let start = j + 1 in
                if String.length line - start <> len then Error "length mismatch"
                else
                  let payload = String.sub line start len in
                  if Crc32.digest payload <> crc then Error "crc mismatch" else Ok payload))

  let decode s ~pos : t Codec.decoded =
    match String.index_from_opt s pos '\n' with
    | None -> Incomplete
    | Some nl -> (
        match parse_frame (String.sub s pos (nl - pos)) with
        | Ok payload -> Value (payload, nl + 1)
        | Error msg -> Corrupt msg)
end
