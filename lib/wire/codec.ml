(* The one wire-codec interface every record family implements twice:
   once as JSONL (debug/interop) and once as the length-prefixed binary
   form.  Encoders append to a caller-owned [Buffer.t]; decoders read
   from a substring and report how far they got, so the same codec
   drives files, sockets, and incremental feeds without copying. *)

type 'a decoded =
  | Value of 'a * int  (* decoded value and the position just past it *)
  | Incomplete  (* the buffer ends mid-record: feed more bytes *)
  | Corrupt of string  (* the bytes at [pos] can never parse *)

module type S = sig
  type t

  val name : string
  (** Short identifier used in error messages and format negotiation. *)

  val encode : Buffer.t -> t -> unit
  (** Append one complete record, framing included. *)

  val decode : string -> pos:int -> t decoded
  (** Parse one record starting exactly at [pos]. *)
end

let to_string (type a) (module C : S with type t = a) v =
  let b = Buffer.create 256 in
  C.encode b v;
  Buffer.contents b

(* Decode a whole string as exactly one record. *)
let of_string (type a) (module C : S with type t = a) s =
  match C.decode s ~pos:0 with
  | Value (v, next) when next = String.length s -> Ok v
  | Value _ -> Error (C.name ^ ": trailing bytes after record")
  | Incomplete -> Error (C.name ^ ": truncated record")
  | Corrupt msg -> Error (C.name ^ ": " ^ msg)

(* Decode every record in a string, stopping cleanly at the end. *)
let all_of_string (type a) (module C : S with type t = a) s =
  let len = String.length s in
  let rec loop acc pos =
    if pos >= len then Ok (List.rev acc)
    else
      match C.decode s ~pos with
      | Value (v, next) -> loop (v :: acc) next
      | Incomplete -> Error (C.name ^ ": truncated record at end of input")
      | Corrupt msg -> Error (C.name ^ ": " ^ msg)
  in
  loop [] 0
