(** Bandwidth assignment policies for flexible requests (sections 2.3 and
    5.1 of the paper).

    When a flexible request is admitted at time [now], the scheduler picks
    its constant transmission rate.  [Min_rate] grants the slowest rate that
    still meets the deadline; [Fraction_of_max f] guarantees
    [f × MaxRate] (never less than the deadline-driven minimum), trading
    accept rate for faster transfers and earlier release of the CPU and
    storage resources co-allocated with the transfer. *)

type t =
  | Min_rate
  | Fraction_of_max of float  (** [f ∈ [0, 1]]; [f = 1] grants [MaxRate] *)

val validate : t -> unit
(** Raises [Invalid_argument] when the fraction is outside [\[0, 1\]]. *)

val assign : t -> Gridbw_request.Request.t -> now:float -> float option
(** Rate granted when transmission starts at [max now ts]:
    [max (f × MaxRate, MinRate_now)] (or [MinRate_now] for [Min_rate]),
    where [MinRate_now = volume / (tf - start)] is the deadline-aware
    minimum.  [None] when the residual window can no longer fit the
    transfer even at [MaxRate] (relative [1e-9] slack). *)

val name : t -> string
(** "minrate" or "f=0.80"-style label for tables. *)

val pp : Format.formatter -> t -> unit
