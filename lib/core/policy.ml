module Request = Gridbw_request.Request

type t = Min_rate | Fraction_of_max of float

let validate = function
  | Min_rate -> ()
  | Fraction_of_max f ->
      if not (Float.is_finite f) || f < 0. || f > 1. then
        invalid_arg "Policy: fraction must lie in [0, 1]"

let assign t (r : Request.t) ~now =
  validate t;
  match Request.min_rate_at r ~now with
  | None -> None
  | Some min_rate_now ->
      if min_rate_now > r.max_rate *. (1. +. 1e-9) then None
      else
        let bw =
          match t with
          | Min_rate -> min_rate_now
          | Fraction_of_max f -> Float.max (f *. r.max_rate) min_rate_now
        in
        Some (Float.min bw r.max_rate)

let name = function
  | Min_rate -> "minrate"
  | Fraction_of_max f -> Printf.sprintf "f=%.2f" f

let pp ppf t = Format.pp_print_string ppf (name t)
