module Spec = Gridbw_workload.Spec
module Request = Gridbw_request.Request
module Obs = Gridbw_obs.Obs

module type S = sig
  val name : string
  val run : ?ctx:Runtime.ctx -> Spec.t -> Request.t list -> Types.result
end

type t = (module S)

let name (module M : S) = M.name
let run ?ctx (module M : S) spec requests = M.run ?ctx spec requests

let make ~name:n f : t =
  (module struct
    let name = n
    let run = f
  end)

let of_rigid kind =
  make ~name:(Rigid.heuristic_name kind) (fun ?ctx spec requests ->
      Rigid.run ?ctx kind spec.Spec.fabric requests)

let of_flexible kind policy =
  make
    ~name:(Printf.sprintf "%s/%s" (Flexible.heuristic_name kind) (Policy.name policy))
    (fun ?ctx spec requests -> Flexible.run ?ctx kind spec.Spec.fabric policy requests)

let rigid_all = List.map of_rigid [ `Fcfs; `Fifo_blocking; `Slots Rigid.Cumulated; `Slots Rigid.Min_bw; `Slots Rigid.Min_vol ]

let flexible_all ?(policy = Policy.Min_rate) ?(step = 400.) () =
  List.map (fun kind -> of_flexible kind policy) [ `Greedy; `Window step; `Window_deferred step ]

let shipped ?(step = 400.) () =
  rigid_all @ flexible_all ~step ()
  @ flexible_all ~policy:(Policy.Fraction_of_max 0.8) ~step ()

let find schedulers n = List.find_opt (fun s -> String.equal (name s) n) schedulers
