module Spec = Gridbw_workload.Spec
module Request = Gridbw_request.Request

module type S = sig
  val name : string
  val run : Spec.t -> Request.t list -> Types.result
end

type t = (module S)

let name (module M : S) = M.name
let run (module M : S) spec requests = M.run spec requests

let make ~name:n f : t =
  (module struct
    let name = n
    let run = f
  end)

let of_rigid kind =
  make ~name:(Rigid.heuristic_name kind) (fun spec requests ->
      Rigid.run kind spec.Spec.fabric requests)

let of_flexible kind policy =
  make
    ~name:(Printf.sprintf "%s/%s" (Flexible.heuristic_name kind) (Policy.name policy))
    (fun spec requests -> Flexible.run kind spec.Spec.fabric policy requests)

let rigid_all = List.map of_rigid [ `Fcfs; `Fifo_blocking; `Slots Rigid.Cumulated; `Slots Rigid.Min_bw; `Slots Rigid.Min_vol ]

let find schedulers n = List.find_opt (fun s -> String.equal (name s) n) schedulers
