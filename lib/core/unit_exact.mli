(** Exact solver for MAX-REQUESTS-DEC instances (Definition 1).

    Uniform unit-size requests over integer time steps: request [r] may be
    scheduled at any single step [sigma ∈ [ts, tf)] where it consumes one
    capacity unit at its ingress and egress ports.  Capacities are small
    integers.  This is the instance shape produced by the Theorem 1
    reduction from 3-Dimensional Matching. *)

type ureq = { id : int; ingress : int; egress : int; ts : int; tf : int }
(** Window [\[ts, tf)): the request occupies exactly one step in it. *)

type instance = { caps_in : int array; caps_out : int array; reqs : ureq array }

val validate : instance -> unit
(** Raises [Invalid_argument] on empty windows, bad ports, or non-positive
    capacities. *)

type solution = {
  count : int;
  placements : (int * int) list;  (** (request id, step) for accepted *)
  optimal : bool;  (** false iff the node budget was exhausted *)
  nodes : int;
}

val solve : ?node_budget:int -> instance -> solution
(** Branch and bound over (placement | reject) decisions.  Identical
    requests (same ports and window) are canonicalised — forced into
    non-decreasing placements and reject-monotone order — which collapses
    the exponential symmetry of the Theorem 1 reduction's special
    requests.  Default budget: 20 million nodes. *)

val feasible : instance -> (int * int) list -> bool
(** Do the placements respect windows and per-step port capacities? *)
