module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Live = Gridbw_alloc.Live
module Event_queue = Gridbw_sim.Event_queue
module Obs = Gridbw_obs.Obs
module Event = Gridbw_obs.Event
module Span = Gridbw_obs.Span

type t = {
  live : Live.t;
  releases : Allocation.t Event_queue.t;
  mutable clock : float;
  (* Physical identities of the allocations whose bandwidth is still held.
     Preemption removes an entry without touching [releases]; the stale
     queue entry is skipped when its release time is drained. *)
  mutable active : Allocation.t list;
}

let create fabric =
  { live = Live.create fabric; releases = Event_queue.create (); clock = neg_infinity; active = [] }

let fabric t = Live.fabric t.live
let now t = t.clock

(* Event-handler float jitter can ask for a timestamp an ulp in the past;
   absorb it with the same relative slack the ledger uses for capacities,
   and keep the raise for genuinely past times. *)
let clamp_past t time =
  if time >= t.clock then time
  else if t.clock -. time <= 1e-9 *. Float.max 1.0 (Float.abs t.clock) then t.clock
  else invalid_arg "Online.advance_to: time moves backwards"

let remove_active t a = t.active <- List.filter (fun b -> b != a) t.active
let is_active t a = List.memq a t.active

let advance_to t time =
  let time = clamp_past t time in
  t.clock <- time;
  let rec drain () =
    match Event_queue.peek t.releases with
    | Some (tau, a) when tau <= time ->
        ignore (Event_queue.pop t.releases);
        if is_active t a then begin
          Live.release t.live ~ingress:a.Allocation.request.Request.ingress
            ~egress:a.Allocation.request.Request.egress ~bw:a.Allocation.bw;
          remove_active t a
        end;
        drain ()
    | _ -> ()
  in
  drain ()

(* The port that could not fit the request, with its spare bandwidth at
   decision time — the "why" recorded on a Port_saturated trace event.
   When both ports are short, report the tighter one. *)
let blocking_port t (r : Request.t) =
  let fabric = Live.fabric t.live in
  let head_in = Fabric.ingress_capacity fabric r.ingress -. Live.ingress_used t.live r.ingress in
  let head_out = Fabric.egress_capacity fabric r.egress -. Live.egress_used t.live r.egress in
  if head_in <= head_out then ((Event.Ingress, r.ingress), head_in)
  else ((Event.Egress, r.egress), head_out)

let try_admit ?(ctx = Runtime.default) t policy (r : Request.t) ~at =
  let obs = Runtime.observed ctx in
  let at = clamp_past t at in
  advance_to t at;
  let blocked = ref None in
  let decide () =
    match Policy.assign policy r ~now:at with
    | None -> Types.Rejected Types.Deadline_unreachable
    | Some bw ->
        if Live.try_grab t.live ~ingress:r.ingress ~egress:r.egress ~bw then begin
          let a = Allocation.make ~request:r ~bw ~sigma:(Float.max at r.ts) in
          Event_queue.push t.releases ~time:a.Allocation.tau a;
          t.active <- a :: t.active;
          Types.Accepted a
        end
        else begin
          if obs.Obs.enabled then blocked := Some (blocking_port t r);
          Types.Rejected Types.Port_saturated
        end
  in
  if not obs.Obs.enabled then decide ()
  else begin
    let span = ctx.Runtime.span in
    let t0 = match span with Some _ -> Span.now_ns () | None -> 0. in
    let p0 = match span with Some _ -> Live.probe_count t.live | None -> 0 in
    let decision = Obs.span obs "admit" decide in
    let shard = ctx.Runtime.shard in
    (match span with
    | None -> Emit.emit_decision obs ~time:at ?blocked:!blocked ?shard r decision
    | Some sp ->
        Span.record sp Span.Admit_search (Span.now_ns () -. t0);
        Span.add_probes sp (Live.probe_count t.live - p0);
        Span.timed span Span.Wal_append (fun () ->
            Emit.emit_decision obs ~time:at ?blocked:!blocked ?shard r decision));
    decision
  end

let peek_cost t policy (r : Request.t) ~at =
  let at = clamp_past t at in
  advance_to t at;
  match Policy.assign policy r ~now:at with
  | None -> None
  | Some bw -> Some (bw, Live.saturation t.live ~ingress:r.ingress ~egress:r.egress ~bw)

(* Rebuild the controller state of a recovered run.  Allocations must be
   fed in their original decision order: the counters are float
   accumulators, so bit-identical resumed decisions require replaying the
   exact grab/release sequence of the original run — including
   allocations that already finished (their grab and release both
   happened, in order, and [(u +. a) -. a] is not always [u] if the
   surrounding operations reorder). *)
let restore t (a : Allocation.t) ~at =
  let at = clamp_past t at in
  advance_to t at;
  if
    not
      (Live.try_grab t.live ~ingress:a.Allocation.request.Request.ingress
         ~egress:a.Allocation.request.Request.egress ~bw:a.Allocation.bw)
  then
    invalid_arg
      (Printf.sprintf "Online.restore: recovered allocation %d does not fit"
         a.Allocation.request.Request.id);
  Event_queue.push t.releases ~time:a.Allocation.tau a;
  t.active <- a :: t.active

let preempt ?(ctx = Runtime.default) t (a : Allocation.t) =
  let obs = Runtime.observed ctx in
  if is_active t a then begin
    Live.release t.live ~ingress:a.Allocation.request.Request.ingress
      ~egress:a.Allocation.request.Request.egress ~bw:a.Allocation.bw;
    remove_active t a;
    if obs.Obs.enabled then begin
      Obs.count obs "preempted_total";
      Obs.event obs (fun () ->
          Event.Preempt
            {
              time = t.clock;
              id = a.Allocation.request.Request.id;
              bw = a.Allocation.bw;
              shard = ctx.Runtime.shard;
            })
    end;
    true
  end
  else false

let set_fabric t fabric = Live.set_fabric t.live fabric
let active_allocations t = t.active
let active_count t = List.length t.active

let used t port =
  match (port : Gridbw_alloc.Port.t) with
  | Gridbw_alloc.Port.Ingress i -> Live.ingress_used t.live i
  | Gridbw_alloc.Port.Egress e -> Live.egress_used t.live e
