module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Live = Gridbw_alloc.Live
module Event_queue = Gridbw_sim.Event_queue

type t = {
  live : Live.t;
  releases : Allocation.t Event_queue.t;
  mutable clock : float;
  (* Physical identities of the allocations whose bandwidth is still held.
     Preemption removes an entry without touching [releases]; the stale
     queue entry is skipped when its release time is drained. *)
  mutable active : Allocation.t list;
}

let create fabric =
  { live = Live.create fabric; releases = Event_queue.create (); clock = neg_infinity; active = [] }

let fabric t = Live.fabric t.live
let now t = t.clock

(* Event-handler float jitter can ask for a timestamp an ulp in the past;
   absorb it with the same relative slack the ledger uses for capacities,
   and keep the raise for genuinely past times. *)
let clamp_past t time =
  if time >= t.clock then time
  else if t.clock -. time <= 1e-9 *. Float.max 1.0 (Float.abs t.clock) then t.clock
  else invalid_arg "Online.advance_to: time moves backwards"

let remove_active t a = t.active <- List.filter (fun b -> b != a) t.active
let is_active t a = List.memq a t.active

let advance_to t time =
  let time = clamp_past t time in
  t.clock <- time;
  let rec drain () =
    match Event_queue.peek t.releases with
    | Some (tau, a) when tau <= time ->
        ignore (Event_queue.pop t.releases);
        if is_active t a then begin
          Live.release t.live ~ingress:a.Allocation.request.Request.ingress
            ~egress:a.Allocation.request.Request.egress ~bw:a.Allocation.bw;
          remove_active t a
        end;
        drain ()
    | _ -> ()
  in
  drain ()

let try_admit t policy (r : Request.t) ~at =
  let at = clamp_past t at in
  advance_to t at;
  match Policy.assign policy r ~now:at with
  | None -> Types.Rejected Types.Deadline_unreachable
  | Some bw ->
      if Live.try_grab t.live ~ingress:r.ingress ~egress:r.egress ~bw then begin
        let a = Allocation.make ~request:r ~bw ~sigma:(Float.max at r.ts) in
        Event_queue.push t.releases ~time:a.Allocation.tau a;
        t.active <- a :: t.active;
        Types.Accepted a
      end
      else Types.Rejected Types.Port_saturated

let peek_cost t policy (r : Request.t) ~at =
  let at = clamp_past t at in
  advance_to t at;
  match Policy.assign policy r ~now:at with
  | None -> None
  | Some bw -> Some (bw, Live.saturation t.live ~ingress:r.ingress ~egress:r.egress ~bw)

let preempt t (a : Allocation.t) =
  if is_active t a then begin
    Live.release t.live ~ingress:a.Allocation.request.Request.ingress
      ~egress:a.Allocation.request.Request.egress ~bw:a.Allocation.bw;
    remove_active t a;
    true
  end
  else false

let set_fabric t fabric = Live.set_fabric t.live fabric
let active_allocations t = t.active
let active_count t = List.length t.active

let used t port =
  match (port : Gridbw_alloc.Port.t) with
  | Gridbw_alloc.Port.Ingress i -> Live.ingress_used t.live i
  | Gridbw_alloc.Port.Egress e -> Live.egress_used t.live e

(* Deprecated per-side accessors, kept as wrappers over the port-keyed API. *)
let ingress_used t i = used t (Gridbw_alloc.Port.Ingress i)
let egress_used t e = used t (Gridbw_alloc.Port.Egress e)
