module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Live = Gridbw_alloc.Live
module Event_queue = Gridbw_sim.Event_queue

type t = {
  live : Live.t;
  releases : Allocation.t Event_queue.t;
  mutable clock : float;
  mutable active : int;
}

let create fabric =
  { live = Live.create fabric; releases = Event_queue.create (); clock = neg_infinity; active = 0 }

let fabric t = Live.fabric t.live
let now t = t.clock

let advance_to t time =
  if time < t.clock then invalid_arg "Online.advance_to: time moves backwards";
  t.clock <- time;
  let rec drain () =
    match Event_queue.peek t.releases with
    | Some (tau, a) when tau <= time ->
        ignore (Event_queue.pop t.releases);
        Live.release t.live ~ingress:a.Allocation.request.Request.ingress
          ~egress:a.Allocation.request.Request.egress ~bw:a.Allocation.bw;
        t.active <- t.active - 1;
        drain ()
    | _ -> ()
  in
  drain ()

let try_admit t policy (r : Request.t) ~at =
  advance_to t at;
  match Policy.assign policy r ~now:at with
  | None -> Types.Rejected Types.Deadline_unreachable
  | Some bw ->
      if Live.try_grab t.live ~ingress:r.ingress ~egress:r.egress ~bw then begin
        let a = Allocation.make ~request:r ~bw ~sigma:(Float.max at r.ts) in
        Event_queue.push t.releases ~time:a.Allocation.tau a;
        t.active <- t.active + 1;
        Types.Accepted a
      end
      else Types.Rejected Types.Port_saturated

let peek_cost t policy (r : Request.t) ~at =
  advance_to t at;
  match Policy.assign policy r ~now:at with
  | None -> None
  | Some bw -> Some (bw, Live.saturation t.live ~ingress:r.ingress ~egress:r.egress ~bw)

let active_count t = t.active
let ingress_used t i = Live.ingress_used t.live i
let egress_used t e = Live.egress_used t.live e
