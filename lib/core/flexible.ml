module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Ledger = Gridbw_alloc.Ledger
module Port = Gridbw_alloc.Port
module Obs = Gridbw_obs.Obs
module Event = Gridbw_obs.Event

let check_routing fabric requests =
  List.iter
    (fun (r : Request.t) ->
      if not (Request.routed_on r fabric) then
        invalid_arg (Printf.sprintf "Flexible: request %d routed on unknown port" r.id))
    requests

let arrival_compare (a : Request.t) (b : Request.t) =
  match Float.compare a.ts b.ts with
  | 0 -> (
      match Float.compare (Request.min_rate a) (Request.min_rate b) with
      | 0 -> Int.compare a.id b.id
      | c -> c)
  | c -> c

let arrival_order requests = List.sort arrival_compare requests

let collect all decisions =
  let accepted = ref [] and rejected = ref [] in
  List.iter
    (fun (r, d) ->
      match d with
      | Types.Accepted a -> accepted := a :: !accepted
      | Types.Rejected reason -> rejected := (r, reason) :: !rejected)
    decisions;
  { Types.all; accepted = List.rev !accepted; rejected = List.rev !rejected }

let greedy ?(obs = Obs.disabled) ?store fabric policy requests =
  let obs = Emit.with_store ?store obs in
  check_routing fabric requests;
  Policy.validate policy;
  let ctl = Online.create fabric in
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  let decisions =
    List.map
      (fun (r : Request.t) ->
        if Obs.tracing obs then Emit.emit_arrival obs seqs r;
        (r, Online.try_admit ~obs ctl policy r ~at:r.ts))
      (arrival_order requests)
  in
  collect requests decisions

(* Continue a GREEDY run recovered from a durable store.  [restored] are
   the journaled accepted allocations with their decision times, in
   decision order; [decided]/[arrived] answer whether a request id already
   has a journaled decision/arrival.  Because GREEDY journals decisions in
   its processing order, a recovered journal prefix is exactly "the same
   run stopped after k decisions": re-booking [restored] in order rebuilds
   the controller's float state bit-for-bit, and the remaining requests
   re-decide identically to the uninterrupted run.

   The result's [accepted] is the full run (restored ++ resumed, decision
   order); [rejected] only covers post-crash decisions — journaled
   rejections carry no state and are not reconstructed into reasons. *)
let greedy_resume ?(obs = Obs.disabled) ?store fabric policy ~restored ~decided
    ?(arrived = fun _ -> false) requests =
  let obs = Emit.with_store ?store obs in
  check_routing fabric requests;
  Policy.validate policy;
  let ctl = Online.create fabric in
  List.iter (fun (at, a) -> Online.restore ctl a ~at) restored;
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  let decisions =
    List.filter_map
      (fun (r : Request.t) ->
        if decided r.id then None
        else begin
          (* A request whose arrival was journaled but whose decision was
             lost must not arrive twice in the journal. *)
          if Obs.tracing obs && not (arrived r.id) then Emit.emit_arrival obs seqs r;
          Some (r, Online.try_admit ~obs ctl policy r ~at:r.ts)
        end)
      (arrival_order requests)
  in
  let res = collect requests decisions in
  { res with Types.accepted = List.map snd restored @ res.Types.accepted }

(* Group requests by the [step]-interval their arrival falls into, in
   interval order, each batch in arrival order. *)
let batches ~step requests =
  let by_interval = Hashtbl.create 64 in
  List.iter
    (fun (r : Request.t) ->
      let k = int_of_float (Float.floor (r.ts /. step)) in
      Hashtbl.replace by_interval k
        (r :: Option.value ~default:[] (Hashtbl.find_opt by_interval k)))
    (arrival_order requests);
  Hashtbl.fold (fun k _ acc -> k :: acc) by_interval []
  |> List.sort Int.compare
  |> List.map (fun k -> (k, List.rev (Hashtbl.find by_interval k)))

(* Candidate state while packing one WINDOW batch: the port usage at the
   candidate's own start instant is cached and updated incrementally as
   batch mates are accepted, so the O(batch) min-cost scan does no ledger
   folds. *)
type candidate = {
  creq : Request.t;
  cbw : float;
  mutable use_in : float;  (* reserved bandwidth at creq.ts on its ingress *)
  mutable use_out : float;
  mutable alive : bool;
}

(* One WINDOW batch against a shared ledger — Algorithm 3's inner loop.
   Exposed so the fault subsystem can re-pack residual requests with the
   exact same kernel; capacities are read from the ledger's current
   fabric, which may have been revised mid-run.

   [now] stamps the batch's trace events (the batch-boundary decision
   instant); it defaults to the latest arrival in the batch. *)
let pack_batch ?(obs = Obs.disabled) ?now policy ledger ~decide batch =
  let fabric = Ledger.fabric ledger in
  let now =
    match now with
    | Some t -> t
    | None -> List.fold_left (fun acc (r : Request.t) -> Float.max acc r.ts) neg_infinity batch
  in
  let last_probes = ref (Ledger.probe_count ledger) in
  let record ?blocked r d =
    (if obs.Obs.enabled then begin
       let p = Ledger.probe_count ledger in
       Obs.observe obs "ledger_probes_per_decision" (float_of_int (p - !last_probes));
       last_probes := p
     end);
    Emit.emit_decision obs ~time:now ?blocked r d;
    decide r d
  in
  let cost c =
    Float.max
      ((c.use_in +. c.cbw) /. Fabric.ingress_capacity fabric c.creq.Request.ingress)
      ((c.use_out +. c.cbw) /. Fabric.egress_capacity fabric c.creq.Request.egress)
  in
  (* The saturated side of a candidate, from its cached usage counters. *)
  let sat_info c =
    let cap_in = Fabric.ingress_capacity fabric c.creq.Request.ingress in
    let cap_out = Fabric.egress_capacity fabric c.creq.Request.egress in
    if (c.use_in +. c.cbw) /. cap_in >= (c.use_out +. c.cbw) /. cap_out then
      Some ((Event.Ingress, c.creq.Request.ingress), cap_in -. c.use_in)
    else Some ((Event.Egress, c.creq.Request.egress), cap_out -. c.use_out)
  in
  Obs.span obs "pack_batch" @@ fun () ->
  (* Every candidate keeps its arrival start, so the policy rate is the
     one of section 5.1 (MinRate or f x MaxRate at ts) and is always
     defined. *)
  let candidates =
    List.filter_map
      (fun (r : Request.t) ->
        match Policy.assign policy r ~now:r.ts with
        | Some bw ->
            Some
              {
                creq = r;
                cbw = bw;
                use_in = Ledger.usage_at ledger (Port.Ingress r.ingress) r.ts;
                use_out = Ledger.usage_at ledger (Port.Egress r.egress) r.ts;
                alive = true;
              }
        | None ->
            record r (Types.Rejected Types.Deadline_unreachable);
            None)
      batch
    |> Array.of_list
  in
  let remaining = ref (Array.length candidates) in
  while !remaining > 0 do
    (* Cheapest alive candidate (ties: smaller id). *)
    let best = ref None in
    Array.iter
      (fun c ->
        if c.alive then
          match !best with
          | None -> best := Some (c, cost c)
          | Some (b, bc) ->
              let cc = cost c in
              if cc < bc || (cc = bc && c.creq.Request.id < b.creq.Request.id) then
                best := Some (c, cc))
      candidates;
    match !best with
    | None -> remaining := 0
    | Some (c, best_cost) ->
        if best_cost > 1. +. 1e-9 then begin
          (* Algorithm 3's cut: the cheapest candidate saturates a port,
             so every remaining candidate does too. *)
          Array.iter
            (fun c ->
              if c.alive then begin
                c.alive <- false;
                record ?blocked:(sat_info c) c.creq (Types.Rejected Types.Port_saturated)
              end)
            candidates;
          remaining := 0
        end
        else begin
          let r = c.creq in
          let a = Allocation.make ~request:r ~bw:c.cbw ~sigma:r.Request.ts in
          if Ledger.fits ledger a then begin
            Ledger.reserve ledger a;
            record r (Types.Accepted a);
            (* Refresh the cached usage of batch mates whose start falls
               inside the accepted transmission interval. *)
            Array.iter
              (fun m ->
                if m.alive && m != c then begin
                  let ts = m.creq.Request.ts in
                  if ts >= a.Allocation.sigma && ts < a.Allocation.tau then begin
                    if m.creq.Request.ingress = r.Request.ingress then
                      m.use_in <- m.use_in +. c.cbw;
                    if m.creq.Request.egress = r.Request.egress then
                      m.use_out <- m.use_out +. c.cbw
                  end
                end)
              candidates
          end
          else
            (* Instantaneously cheap but blocked by a reservation spike
               later in its transmission interval. *)
            record ?blocked:(Emit.spike_port obs ledger a) r (Types.Rejected Types.Port_saturated);
          c.alive <- false;
          decr remaining
        end
  done

let window ?(obs = Obs.disabled) ?store fabric policy ~step requests =
  let obs = Emit.with_store ?store obs in
  if step <= 0. || not (Float.is_finite step) then
    invalid_arg "Flexible.window: step must be positive and finite";
  check_routing fabric requests;
  Policy.validate policy;
  let ledger = Ledger.create fabric in
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  let decisions = ref [] in
  let decide r d = decisions := (r, d) :: !decisions in
  List.iter
    (fun (k, batch) ->
      Emit.emit_arrivals obs seqs batch;
      pack_batch ~obs ~now:(float_of_int (k + 1) *. step) policy ledger ~decide batch)
    (batches ~step requests);
  collect requests (List.rev !decisions)

let book_ahead ?(obs = Obs.disabled) fabric policy ~announce requests =
  check_routing fabric requests;
  Policy.validate policy;
  let ledger = Ledger.create fabric in
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  let order =
    List.map
      (fun (r : Request.t) ->
        let lead = announce r in
        if lead < 0. || not (Float.is_finite lead) then
          invalid_arg "Flexible.book_ahead: announce lead must be non-negative and finite";
        (r.ts -. lead, r))
      requests
    |> List.sort (fun (ta, (a : Request.t)) (tb, (b : Request.t)) ->
           match Float.compare ta tb with 0 -> Int.compare a.id b.id | c -> c)
  in
  let decisions =
    List.map
      (fun (announce_at, (r : Request.t)) ->
        (* Trace stamp is the announce instant — the moment the decision is
           actually taken under book-ahead. *)
        if Obs.tracing obs then
          Obs.event obs (fun () ->
              Event.Arrival
                {
                  time = announce_at;
                  seq = (match Hashtbl.find_opt seqs r.id with Some s -> s | None -> -1);
                  id = r.id;
                  ingress = r.ingress;
                  egress = r.egress;
                  volume = r.volume;
                  ts = r.ts;
                  tf = r.tf;
                  max_rate = r.max_rate;
                });
        let d, blocked =
          match Policy.assign policy r ~now:r.ts with
          | None -> (Types.Rejected Types.Deadline_unreachable, None)
          | Some bw ->
              let a = Allocation.make ~request:r ~bw ~sigma:r.ts in
              if Ledger.fits ledger a then begin
                Ledger.reserve ledger a;
                (Types.Accepted a, None)
              end
              else (Types.Rejected Types.Port_saturated, Emit.spike_port obs ledger a)
        in
        Emit.emit_decision obs ~time:announce_at ?blocked r d;
        (r, d))
      order
  in
  collect requests decisions

let window_deferred ?(obs = Obs.disabled) ?store fabric policy ~step requests =
  let obs = Emit.with_store ?store obs in
  if step <= 0. || not (Float.is_finite step) then
    invalid_arg "Flexible.window_deferred: step must be positive and finite";
  check_routing fabric requests;
  Policy.validate policy;
  let ctl = Online.create fabric in
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  let decisions = ref [] in
  let decide r d = decisions := (r, d) :: !decisions in
  (* Rejections decided by the batch loop itself (the cut and the deadline
     filter) are traced here; admissions go through [Online.try_admit],
     which traces them itself. *)
  let reject_at time r reason = Emit.emit_decision obs ~time r (Types.Rejected reason) in
  List.iter
    (fun (k, batch) ->
      let decision_time = float_of_int (k + 1) *. step in
      Emit.emit_arrivals obs seqs batch;
      Online.advance_to ctl decision_time;
      (* Candidates that can still meet their deadline after the delay. *)
      let candidates =
        List.filter
          (fun (r : Request.t) ->
            match Online.peek_cost ctl policy r ~at:decision_time with
            | None ->
                reject_at decision_time r Types.Deadline_unreachable;
                decide r (Types.Rejected Types.Deadline_unreachable);
                false
            | Some _ -> true)
          batch
      in
      (* Admit in increasing saturation cost; stop as soon as the cheapest
         candidate no longer fits (Algorithm 3's cut). *)
      let rec pack = function
        | [] -> ()
        | remaining -> (
            let scored =
              List.filter_map
                (fun r ->
                  match Online.peek_cost ctl policy r ~at:decision_time with
                  | Some (_, c) -> Some (r, c)
                  | None -> None)
                remaining
            in
            match scored with
            | [] -> ()
            | (first, first_cost) :: rest ->
                let best, best_cost =
                  List.fold_left
                    (fun ((b, bc) as acc) ((r, c) as cur) ->
                      if c < bc || (c = bc && r.Request.id < b.Request.id) then cur else acc)
                    (first, first_cost) rest
                in
                if best_cost > 1. +. 1e-9 then
                  List.iter
                    (fun (r, _) ->
                      reject_at decision_time r Types.Port_saturated;
                      decide r (Types.Rejected Types.Port_saturated))
                    scored
                else begin
                  decide best (Online.try_admit ~obs ctl policy best ~at:decision_time);
                  pack (List.filter (fun r -> not (Request.equal r best)) remaining)
                end)
      in
      pack candidates)
    (batches ~step requests);
  collect requests (List.rev !decisions)

let heuristic_name = function
  | `Greedy -> "greedy"
  | `Window step -> Printf.sprintf "window(%g)" step
  | `Window_deferred step -> Printf.sprintf "window-deferred(%g)" step

let run ?obs ?store kind fabric policy requests =
  match kind with
  | `Greedy -> greedy ?obs ?store fabric policy requests
  | `Window step -> window ?obs ?store fabric policy ~step requests
  | `Window_deferred step -> window_deferred ?obs ?store fabric policy ~step requests
