module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Ledger = Gridbw_alloc.Ledger
module Port = Gridbw_alloc.Port
module Obs = Gridbw_obs.Obs
module Event = Gridbw_obs.Event

let check_routing fabric requests =
  List.iter
    (fun (r : Request.t) ->
      if not (Request.routed_on r fabric) then
        invalid_arg (Printf.sprintf "Flexible: request %d routed on unknown port" r.id))
    requests

let arrival_compare (a : Request.t) (b : Request.t) =
  match Float.compare a.ts b.ts with
  | 0 -> (
      match Float.compare (Request.min_rate a) (Request.min_rate b) with
      | 0 -> Int.compare a.id b.id
      | c -> c)
  | c -> c

let arrival_order requests = List.sort arrival_compare requests

let collect all decisions =
  let accepted = ref [] and rejected = ref [] in
  List.iter
    (fun (r, d) ->
      match d with
      | Types.Accepted a -> accepted := a :: !accepted
      | Types.Rejected reason -> rejected := (r, reason) :: !rejected)
    decisions;
  { Types.all; accepted = List.rev !accepted; rejected = List.rev !rejected }

let greedy ?(ctx = Runtime.default) fabric policy requests =
  let obs = Runtime.observed ctx in
  let ictx = Runtime.make ~obs () in
  check_routing fabric requests;
  Policy.validate policy;
  let ctl = Online.create fabric in
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  let decisions =
    List.map
      (fun (r : Request.t) ->
        if Obs.tracing obs then Emit.emit_arrival obs seqs r;
        (r, Online.try_admit ~ctx:ictx ctl policy r ~at:r.ts))
      (arrival_order requests)
  in
  collect requests decisions

(* Continue a GREEDY run recovered from a durable store.  [restored] are
   the journaled accepted allocations with their decision times, in
   decision order; [decided]/[arrived] answer whether a request id already
   has a journaled decision/arrival.  Because GREEDY journals decisions in
   its processing order, a recovered journal prefix is exactly "the same
   run stopped after k decisions": re-booking [restored] in order rebuilds
   the controller's float state bit-for-bit, and the remaining requests
   re-decide identically to the uninterrupted run.

   The result's [accepted] is the full run (restored ++ resumed, decision
   order); [rejected] only covers post-crash decisions — journaled
   rejections carry no state and are not reconstructed into reasons. *)
let greedy_resume ?(ctx = Runtime.default) fabric policy ~restored ~decided
    ?(arrived = fun _ -> false) requests =
  let obs = Runtime.observed ctx in
  let ictx = Runtime.make ~obs () in
  check_routing fabric requests;
  Policy.validate policy;
  let ctl = Online.create fabric in
  List.iter (fun (at, a) -> Online.restore ctl a ~at) restored;
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  let decisions =
    List.filter_map
      (fun (r : Request.t) ->
        if decided r.id then None
        else begin
          (* A request whose arrival was journaled but whose decision was
             lost must not arrive twice in the journal. *)
          if Obs.tracing obs && not (arrived r.id) then Emit.emit_arrival obs seqs r;
          Some (r, Online.try_admit ~ctx:ictx ctl policy r ~at:r.ts)
        end)
      (arrival_order requests)
  in
  let res = collect requests decisions in
  { res with Types.accepted = List.map snd restored @ res.Types.accepted }

(* Group requests by the [step]-interval their arrival falls into, in
   interval order, each batch in arrival order.  One array sort and a
   backward sweep over consecutive runs: arrival order makes the interval
   keys non-decreasing, so no per-interval table is needed.
   [arrival_compare] is total (id tie-break), so the unstable array sort
   produces exactly the processing order of {!arrival_order}.  Generated
   and journaled workloads already arrive in that order, so sortedness is
   checked in O(n) first and the sort skipped when it would be a no-op. *)
let batches ~step requests =
  let arr = Array.of_list requests in
  let sorted = ref true in
  let i = ref 1 in
  while !sorted && !i < Array.length arr do
    if arrival_compare arr.(!i - 1) arr.(!i) > 0 then sorted := false;
    incr i
  done;
  if not !sorted then Array.sort arrival_compare arr;
  let interval (r : Request.t) = int_of_float (Float.floor (r.ts /. step)) in
  let res = ref [] in
  let i = ref (Array.length arr - 1) in
  while !i >= 0 do
    let k = interval arr.(!i) in
    let batch = ref [] in
    while !i >= 0 && interval arr.(!i) = k do
      batch := arr.(!i) :: !batch;
      decr i
    done;
    res := (k, !batch) :: !res
  done;
  !res

(* One WINDOW batch against a shared ledger — Algorithm 3's inner loop.
   Exposed so the fault subsystem can re-pack residual requests with the
   exact same kernel; capacities are read from the ledger's current
   fabric, which may have been revised mid-run.

   [now] stamps the batch's trace events (the batch-boundary decision
   instant); it defaults to the latest arrival in the batch. *)
let pack_batch ?(obs = Obs.disabled) ?now policy ledger ~decide batch =
  let fabric = Ledger.fabric ledger in
  let now =
    match now with
    | Some t -> t
    | None -> List.fold_left (fun acc (r : Request.t) -> Float.max acc r.ts) neg_infinity batch
  in
  let last_probes = ref (Ledger.probe_count ledger) in
  let record ?blocked r d =
    (if obs.Obs.enabled then begin
       let p = Ledger.probe_count ledger in
       Obs.observe obs "ledger_probes_per_decision" (float_of_int (p - !last_probes));
       last_probes := p
     end);
    Emit.emit_decision obs ~time:now ?blocked r d;
    decide r d
  in
  Obs.span obs "pack_batch" @@ fun () ->
  match batch with
  | [] -> ()
  | first :: _ ->
  (* Candidate state lives in parallel flat arrays — floats unboxed, ids
     and liveness immediate — so the min-cost scan, the post-accept
     refresh, and the cut sweep plain array cells instead of chasing
     per-candidate records.  [use_in]/[use_out] cache the port usage at
     the candidate's own start instant and are updated incrementally as
     batch mates are accepted, so the scan does no ledger folds; the
     cost only changes when an accepted mate lands on a shared port, and
     the refresh reaches exactly those candidates through per-port index
     lists instead of a full-batch walk.

     Every candidate keeps its arrival start, so the policy rate is the
     one of section 5.1 (MinRate or f x MaxRate at ts) and is always
     defined. *)
  let cap = List.length batch in
  let reqs = Array.make cap first in
  let cbw = Array.make cap 0. in
  let cap_in = Array.make cap 0. in
  let cap_out = Array.make cap 0. in
  let use_in = Array.make cap 0. in
  let use_out = Array.make cap 0. in
  let costs = Array.make cap 0. in
  let ids = Array.make cap 0 in
  let alive = Array.make cap false in
  let n = ref 0 in
  List.iter
    (fun (r : Request.t) ->
      match Policy.assign policy r ~now:r.ts with
      | Some bw ->
          let i = !n in
          reqs.(i) <- r;
          cbw.(i) <- bw;
          cap_in.(i) <- Fabric.ingress_capacity fabric r.ingress;
          cap_out.(i) <- Fabric.egress_capacity fabric r.egress;
          use_in.(i) <- Ledger.usage_at ledger (Port.Ingress r.ingress) r.ts;
          use_out.(i) <- Ledger.usage_at ledger (Port.Egress r.egress) r.ts;
          costs.(i) <-
            Float.max ((use_in.(i) +. bw) /. cap_in.(i)) ((use_out.(i) +. bw) /. cap_out.(i));
          ids.(i) <- r.Request.id;
          alive.(i) <- true;
          incr n
      | None -> record r (Types.Rejected Types.Deadline_unreachable))
    batch;
  let n = !n in
  let cost i =
    Float.max
      ((use_in.(i) +. cbw.(i)) /. cap_in.(i))
      ((use_out.(i) +. cbw.(i)) /. cap_out.(i))
  in
  (* The saturated side of a candidate, from its cached usage counters. *)
  let sat_info i =
    if (use_in.(i) +. cbw.(i)) /. cap_in.(i) >= (use_out.(i) +. cbw.(i)) /. cap_out.(i) then
      Some ((Event.Ingress, reqs.(i).Request.ingress), cap_in.(i) -. use_in.(i))
    else Some ((Event.Egress, reqs.(i).Request.egress), cap_out.(i) -. use_out.(i))
  in
  (* Per-port candidate index arrays, ascending — candidate order is
     arrival order, so each array is sorted by start instant and the
     refresh after an accept binary-searches the [sigma, tau) window
     instead of filtering the whole port list. *)
  let port_index count port_of =
    let cnt = Array.make count 0 in
    for i = 0 to n - 1 do
      let p = port_of reqs.(i) in
      cnt.(p) <- cnt.(p) + 1
    done;
    let idx = Array.map (fun c -> Array.make c 0) cnt in
    Array.fill cnt 0 count 0;
    for i = 0 to n - 1 do
      let p = port_of reqs.(i) in
      idx.(p).(cnt.(p)) <- i;
      cnt.(p) <- cnt.(p) + 1
    done;
    idx
  in
  let by_in = port_index (Fabric.ingress_count fabric) (fun r -> r.Request.ingress) in
  let by_out = port_index (Fabric.egress_count fabric) (fun r -> r.Request.egress) in
  (* First position in [idxs] whose candidate starts at or after [t]. *)
  let lower_bound (idxs : int array) t =
    let lo = ref 0 and hi = ref (Array.length idxs) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if reqs.(idxs.(mid)).Request.ts < t then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  (* Lazy min-heap on (cost, id).  Costs only ever increase while packing
     (mates landing on a shared port push usage up), so an entry's stored
     cost is a lower bound on its current cost: when a stale or dead entry
     surfaces it is refreshed in place (or dropped) and re-sunk, and a
     root whose stored cost is current is the exact (cost, id) argmin —
     the same candidate the linear scan would pick. *)
  let hcost = Array.make (max n 1) 0. in
  let hidx = Array.make (max n 1) 0 in
  let hsize = ref n in
  let hless c1 i1 c2 i2 = c1 < c2 || (c1 = c2 && ids.(i1) < ids.(i2)) in
  let rec sift_down p =
    let l = (2 * p) + 1 in
    if l < !hsize then begin
      let r = l + 1 in
      let s =
        if r < !hsize && hless hcost.(r) hidx.(r) hcost.(l) hidx.(l) then r else l
      in
      if hless hcost.(s) hidx.(s) hcost.(p) hidx.(p) then begin
        let c = hcost.(p) and i = hidx.(p) in
        hcost.(p) <- hcost.(s);
        hidx.(p) <- hidx.(s);
        hcost.(s) <- c;
        hidx.(s) <- i;
        sift_down s
      end
    end
  in
  for i = 0 to n - 1 do
    hcost.(i) <- costs.(i);
    hidx.(i) <- i
  done;
  for p = (n / 2) - 1 downto 0 do
    sift_down p
  done;
  let drop_root () =
    hsize := !hsize - 1;
    if !hsize > 0 then begin
      hcost.(0) <- hcost.(!hsize);
      hidx.(0) <- hidx.(!hsize);
      sift_down 0
    end
  in
  (* Cheapest alive candidate (ties: smaller id), from the cached costs. *)
  let rec next_best () =
    let i = hidx.(0) in
    if not alive.(i) then begin
      drop_root ();
      next_best ()
    end
    else if hcost.(0) < costs.(i) then begin
      hcost.(0) <- costs.(i);
      sift_down 0;
      next_best ()
    end
    else i
  in
  let live = ref n in
  let kill i =
    alive.(i) <- false;
    decr live
  in
  while !live > 0 do
    let bi = next_best () in
    if costs.(bi) > 1. +. 1e-9 then begin
      (* Algorithm 3's cut: the cheapest candidate saturates a port, so
         every remaining candidate does too.  Rejections are recorded in
         candidate order, as the pre-compaction walk did. *)
      let tracing = Obs.tracing obs in
      for i = 0 to n - 1 do
        if alive.(i) then begin
          alive.(i) <- false;
          record
            ?blocked:(if tracing then sat_info i else None)
            reqs.(i)
            (Types.Rejected Types.Port_saturated)
        end
      done;
      live := 0
    end
    else begin
      let r = reqs.(bi) in
      let bw = cbw.(bi) in
      let a = Allocation.make ~request:r ~bw ~sigma:r.Request.ts in
      if Ledger.fits ledger a then begin
        (* [fits] just vouched for the whole interval; reserve without the
           redundant re-probe. *)
        Ledger.reserve_interval ledger ~ingress:r.Request.ingress ~egress:r.Request.egress
          ~bw ~from_:a.Allocation.sigma ~until:a.Allocation.tau;
        record r (Types.Accepted a);
        (* Refresh the cached usage (and cost) of batch mates on the
           accepted ports whose start falls inside the accepted
           transmission interval — exactly the [sigma, tau) slice of the
           port's ts-sorted index array. *)
        let touch (use : float array) (idxs : int array) =
          let stop = lower_bound idxs a.Allocation.tau in
          for k = lower_bound idxs a.Allocation.sigma to stop - 1 do
            let i = idxs.(k) in
            if alive.(i) && i <> bi then begin
              use.(i) <- use.(i) +. bw;
              costs.(i) <- cost i
            end
          done
        in
        touch use_in by_in.(r.Request.ingress);
        touch use_out by_out.(r.Request.egress)
      end
      else
        (* Instantaneously cheap but blocked by a reservation spike
           later in its transmission interval. *)
        record ?blocked:(Emit.spike_port obs ledger a) r (Types.Rejected Types.Port_saturated);
      kill bi
    end
  done

let window ?(ctx = Runtime.default) fabric policy ~step requests =
  let obs = Runtime.observed ctx in
  if step <= 0. || not (Float.is_finite step) then
    invalid_arg "Flexible.window: step must be positive and finite";
  check_routing fabric requests;
  Policy.validate policy;
  let ledger = Ledger.create fabric in
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  let accepted = ref [] and rejected = ref [] in
  let decide r d =
    match d with
    | Types.Accepted a -> accepted := a :: !accepted
    | Types.Rejected reason -> rejected := (r, reason) :: !rejected
  in
  List.iter
    (fun (k, batch) ->
      Emit.emit_arrivals obs seqs batch;
      pack_batch ~obs ~now:(float_of_int (k + 1) *. step) policy ledger ~decide batch)
    (batches ~step requests);
  { Types.all = requests; accepted = List.rev !accepted; rejected = List.rev !rejected }

let book_ahead ?(ctx = Runtime.default) fabric policy ~announce requests =
  let obs = Runtime.observed ctx in
  check_routing fabric requests;
  Policy.validate policy;
  let ledger = Ledger.create fabric in
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  let order =
    List.map
      (fun (r : Request.t) ->
        let lead = announce r in
        if lead < 0. || not (Float.is_finite lead) then
          invalid_arg "Flexible.book_ahead: announce lead must be non-negative and finite";
        (r.ts -. lead, r))
      requests
    |> List.sort (fun (ta, (a : Request.t)) (tb, (b : Request.t)) ->
           match Float.compare ta tb with 0 -> Int.compare a.id b.id | c -> c)
  in
  let decisions =
    List.map
      (fun (announce_at, (r : Request.t)) ->
        (* Trace stamp is the announce instant — the moment the decision is
           actually taken under book-ahead. *)
        if Obs.tracing obs then
          Obs.event obs (fun () ->
              Event.Arrival
                {
                  time = announce_at;
                  seq = (match Hashtbl.find_opt seqs r.id with Some s -> s | None -> -1);
                  id = r.id;
                  ingress = r.ingress;
                  egress = r.egress;
                  volume = r.volume;
                  ts = r.ts;
                  tf = r.tf;
                  max_rate = r.max_rate;
                });
        let d, blocked =
          match Policy.assign policy r ~now:r.ts with
          | None -> (Types.Rejected Types.Deadline_unreachable, None)
          | Some bw ->
              let a = Allocation.make ~request:r ~bw ~sigma:r.ts in
              if Ledger.fits ledger a then begin
                Ledger.reserve ledger a;
                (Types.Accepted a, None)
              end
              else (Types.Rejected Types.Port_saturated, Emit.spike_port obs ledger a)
        in
        Emit.emit_decision obs ~time:announce_at ?blocked r d;
        (r, d))
      order
  in
  collect requests decisions

let window_deferred ?(ctx = Runtime.default) fabric policy ~step requests =
  let obs = Runtime.observed ctx in
  let ictx = Runtime.make ~obs () in
  if step <= 0. || not (Float.is_finite step) then
    invalid_arg "Flexible.window_deferred: step must be positive and finite";
  check_routing fabric requests;
  Policy.validate policy;
  let ctl = Online.create fabric in
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  let decisions = ref [] in
  let decide r d = decisions := (r, d) :: !decisions in
  (* Rejections decided by the batch loop itself (the cut and the deadline
     filter) are traced here; admissions go through [Online.try_admit],
     which traces them itself. *)
  let reject_at time r reason = Emit.emit_decision obs ~time r (Types.Rejected reason) in
  List.iter
    (fun (k, batch) ->
      let decision_time = float_of_int (k + 1) *. step in
      Emit.emit_arrivals obs seqs batch;
      Online.advance_to ctl decision_time;
      (* Candidates that can still meet their deadline after the delay,
         with their saturation cost cached: within the batch the clock is
         pinned at [decision_time], so a candidate's cost only changes
         when an admission lands on one of its ports — recompute exactly
         those instead of re-scoring the whole remainder every round. *)
      let candidates =
        List.filter_map
          (fun (r : Request.t) ->
            match Online.peek_cost ctl policy r ~at:decision_time with
            | None ->
                reject_at decision_time r Types.Deadline_unreachable;
                decide r (Types.Rejected Types.Deadline_unreachable);
                None
            | Some (_, c) -> Some (r, ref c, ref true))
          batch
        |> Array.of_list
      in
      let live = ref (Array.length candidates) in
      (* Admit in increasing saturation cost; stop as soon as the cheapest
         candidate no longer fits (Algorithm 3's cut). *)
      while !live > 0 do
        let best = ref None in
        Array.iter
          (fun (r, c, alive) ->
            if !alive then
              match !best with
              | None -> best := Some (r, c)
              | Some ((b : Request.t), bc) ->
                  if !c < !bc || (!c = !bc && r.Request.id < b.Request.id) then best := Some (r, c))
          candidates;
        match !best with
        | None -> live := 0
        | Some (best_r, best_cost) ->
            if !best_cost > 1. +. 1e-9 then begin
              (* The cut rejects the survivors in candidate order, as the
                 per-round re-scoring walk did. *)
              Array.iter
                (fun (r, _, alive) ->
                  if !alive then begin
                    alive := false;
                    reject_at decision_time r Types.Port_saturated;
                    decide r (Types.Rejected Types.Port_saturated)
                  end)
                candidates;
              live := 0
            end
            else begin
              let d = Online.try_admit ~ctx:ictx ctl policy best_r ~at:decision_time in
              decide best_r d;
              Array.iter (fun (r, _, alive) -> if !alive && Request.equal r best_r then alive := false) candidates;
              decr live;
              match d with
              | Types.Accepted _ ->
                  (* Only shared-port candidates see different counters. *)
                  Array.iter
                    (fun (r, c, alive) ->
                      if
                        !alive
                        && (r.Request.ingress = best_r.Request.ingress
                           || r.Request.egress = best_r.Request.egress)
                      then
                        match Online.peek_cost ctl policy r ~at:decision_time with
                        | Some (_, c') -> c := c'
                        | None -> ())
                    candidates
              | Types.Rejected _ -> ()
            end
      done)
    (batches ~step requests);
  collect requests (List.rev !decisions)

let heuristic_name = function
  | `Greedy -> "greedy"
  | `Window step -> Printf.sprintf "window(%g)" step
  | `Window_deferred step -> Printf.sprintf "window-deferred(%g)" step

let run ?ctx kind fabric policy requests =
  match kind with
  | `Greedy -> greedy ?ctx fabric policy requests
  | `Window step -> window ?ctx fabric policy ~step requests
  | `Window_deferred step -> window_deferred ?ctx fabric policy ~step requests
