(** Decisions and results shared by all scheduling heuristics. *)

type reason =
  | Port_saturated  (** an ingress or egress port had no room *)
  | Deadline_unreachable
      (** by decision time, even [MaxRate] could not finish within the
          window (only arises when decisions are delayed, e.g. WINDOW) *)
  | Revoked
      (** accepted in an earlier time slice but evicted later (slot
          heuristics of section 4.2) *)

type decision = Accepted of Gridbw_alloc.Allocation.t | Rejected of reason

type result = {
  all : Gridbw_request.Request.t list;  (** every submitted request *)
  accepted : Gridbw_alloc.Allocation.t list;  (** in decision order *)
  rejected : (Gridbw_request.Request.t * reason) list;
}

val accept_rate : result -> float
(** accepted / total; 0 for an empty result. *)

val accepted_ids : result -> int list
(** Sorted ids of accepted requests. *)

val decision_of : result -> int -> decision option
(** Decision for request id, if the request is part of the result. *)

val is_consistent : result -> bool
(** Every request appears in exactly one of [accepted] / [rejected]. *)

val pp_reason : Format.formatter -> reason -> unit
val pp : Format.formatter -> result -> unit
