(** Incremental on-line admission controller.

    This is the state shared by the paper's Algorithms 2 and 3 (and by the
    control-plane model): the instantaneous port counters [ali]/[ale], plus
    a release queue that returns bandwidth when accepted transfers finish.
    Drivers advance virtual time with {!advance_to} and submit requests with
    {!try_admit}; time must be non-decreasing. *)

type t

val create : Gridbw_topology.Fabric.t -> t
val fabric : t -> Gridbw_topology.Fabric.t

val now : t -> float
(** Latest time the controller has been advanced to. *)

val advance_to : t -> float -> unit
(** Move virtual time forward, releasing the bandwidth of every accepted
    allocation whose finish time [tau] is [<= time].  A [time] within
    [1e-9] relative slack of the current clock is clamped to the clock
    (event-handler float jitter must not crash a run); a genuinely past
    [time] raises [Invalid_argument]. *)

val try_admit :
  ?ctx:Runtime.ctx ->
  t ->
  Policy.t ->
  Gridbw_request.Request.t ->
  at:float ->
  Types.decision
(** Decide request [r] at time [at] (implicitly {!advance_to} [at] first).
    The policy fixes the rate; admission succeeds iff both ports have room
    at that rate.  On success the allocation starts at
    [sigma = max at ts(r)] and its bandwidth is held until {!advance_to}
    passes its [tau].

    With [ctx.obs] enabled: the decision runs under the ["admit"]
    profiling span, bumps [admit_requests_total] /
    [admit_accepted_total] / [admit_rejected_total], and (when tracing)
    emits an [Accept] or [Reject] event — saturated rejects carry the
    tighter port and its headroom at decision time.

    With [ctx.store], the decision is also journaled to the durable
    store (the store's sink is merged into the telemetry context).  With
    [ctx.span], the decision search and the journaling append are
    accumulated onto the request's trace span as the [Admit_search] and
    [Wal_append] stages. *)

val restore : t -> Gridbw_alloc.Allocation.t -> at:float -> unit
(** Re-book a recovered allocation exactly as {!try_admit} booked it at
    decision time [at]: advance to [at], grab its bandwidth, queue its
    release at [tau].  Call once per recovered allocation {e in original
    decision order} — the port counters are float accumulators, so
    bit-identical resumed decisions need the original grab/release
    sequence replayed in order (finished allocations included: their
    release is drained by the interleaved {!advance_to} calls just as it
    was live).  Raises [Invalid_argument] if the allocation does not fit,
    which on a faithfully recovered journal cannot happen. *)

val peek_cost : t -> Policy.t -> Gridbw_request.Request.t -> at:float -> (float * float) option
(** [(bw, cost)] the request would get if admitted now, where [cost] is the
    WINDOW heuristic's saturation [max((ali+bw)/B_in, (ale+bw)/B_out)]
    (section 5.2); [None] when the deadline is no longer reachable.  Does
    not modify the controller (apart from an implicit {!advance_to}). *)

val preempt : ?ctx:Runtime.ctx -> t -> Gridbw_alloc.Allocation.t -> bool
(** Revoke a still-held allocation (matched by physical identity),
    returning its bandwidth to both ports immediately.  Returns [false]
    if the allocation already finished or was already preempted.  The
    fault subsystem's capacity-revision path uses this to shed load after
    a port degradation.  With [ctx.obs], a successful preemption bumps
    [preempted_total] and emits a [Preempt] event. *)

val set_fabric : t -> Gridbw_topology.Fabric.t -> unit
(** Revise port capacities mid-flight (same port counts).  Counters are
    kept: a shrunk port may be left over-committed until the caller
    preempts enough allocations ({!active_allocations} + {!preempt}). *)

val active_allocations : t -> Gridbw_alloc.Allocation.t list
(** Allocations whose bandwidth is still held, most recent first. *)

val active_count : t -> int
(** Accepted transfers whose bandwidth is still held. *)

val used : t -> Gridbw_alloc.Port.t -> float
(** Bandwidth currently held through the port (the paper's [ali]/[ale]
    counter). *)
