(** Exact branch-and-bound solver for MAX-REQUESTS on rigid requests.

    MAX-REQUESTS is NP-complete (Theorem 1), so this solver is exponential
    and only intended for small instances — it gives the optimum the
    polynomial heuristics of section 4 are measured against (experiment E6
    of DESIGN.md). *)

type solution = {
  count : int;  (** number of accepted requests *)
  accepted_ids : int list;  (** sorted ids of an optimal accepted set *)
  optimal : bool;  (** false when the node budget was exhausted *)
  nodes : int;  (** search nodes explored *)
}

val max_requests :
  ?node_budget:int ->
  Gridbw_topology.Fabric.t ->
  Gridbw_request.Request.t list ->
  solution
(** Depth-first branch and bound over accept/reject decisions in arrival
    order, feasibility-checked against a bandwidth ledger, pruned with the
    [accepted + remaining <= best] bound.  [node_budget] (default
    [5_000_000]) caps the explored nodes; when exhausted the incumbent is
    returned with [optimal = false]. *)

val result_of :
  Gridbw_topology.Fabric.t -> Gridbw_request.Request.t list -> solution -> Types.result
(** Re-expresses a solution as a {!Types.result} (accepted requests get
    [bw = MinRate], [sigma = ts]). *)

val max_requests_flexible :
  ?node_budget:int ->
  ?levels:float list ->
  Gridbw_topology.Fabric.t ->
  Gridbw_request.Request.t list ->
  solution
(** Offline optimum for {e flexible} requests starting at their arrival
    time: each request is rejected or accepted at one of a discrete grid
    of rates — [max (MinRate, level × MaxRate)] for [level ∈ levels]
    (default [{0, 0.5, 1}]; 0 means exactly MinRate) — checked against
    the time-indexed ledger.  Upper-bounds every on-line heuristic that
    keeps [sigma = ts] and assigns rates from the same grid (GREEDY and
    WINDOW under the corresponding policies).  Exponential with branching
    factor [1 + |levels|]; small instances only. *)
