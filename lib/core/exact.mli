(** Exact branch-and-bound solver for MAX-REQUESTS on rigid requests.

    MAX-REQUESTS is NP-complete (Theorem 1), so this solver is exponential
    and only intended for small instances — it gives the optimum the
    polynomial heuristics of section 4 are measured against (experiment E6
    of DESIGN.md). *)

type solution = {
  count : int;  (** number of accepted requests *)
  accepted_ids : int list;  (** sorted ids of an optimal accepted set *)
  optimal : bool;  (** false when the node budget was exhausted *)
  nodes : int;  (** search nodes explored *)
}

val max_requests :
  ?node_budget:int ->
  Gridbw_topology.Fabric.t ->
  Gridbw_request.Request.t list ->
  solution
(** Depth-first branch and bound over accept/reject decisions in arrival
    order, feasibility-checked against a bandwidth ledger, pruned with the
    [accepted + remaining <= best] bound.  [node_budget] (default
    [5_000_000]) caps the explored nodes; when exhausted the incumbent is
    returned with [optimal = false]. *)

val result_of :
  Gridbw_topology.Fabric.t -> Gridbw_request.Request.t list -> solution -> Types.result
(** Re-expresses a solution as a {!Types.result} (accepted requests get
    [bw = MinRate], [sigma = ts]). *)

val max_requests_flexible :
  ?node_budget:int ->
  ?levels:float list ->
  Gridbw_topology.Fabric.t ->
  Gridbw_request.Request.t list ->
  solution
(** Offline optimum for {e flexible} requests starting at their arrival
    time: each request is rejected or accepted at one of a discrete grid
    of rates — [max (MinRate, level × MaxRate)] for [level ∈ levels]
    (default [{0, 0.5, 1}]; 0 means exactly MinRate) — checked against
    the time-indexed ledger.  Upper-bounds every on-line heuristic that
    keeps [sigma = ts] and assigns rates from the same grid (GREEDY and
    WINDOW under the corresponding policies).  Exponential with branching
    factor [1 + |levels|]; small instances only. *)

val max_requests_malleable :
  ?node_budget:int ->
  Gridbw_topology.Fabric.t ->
  Gridbw_request.Request.t list ->
  solution
(** Offline optimum count for {e malleable} (step-profile) reservations:
    a subset is feasible when every request can ship its full volume
    within [\[ts, tf\]] at time-varying rates in [\[0, MaxRate\]] under
    the port capacities.  Feasibility of a subset is decided per port by
    the classic preemptive-deadline max-flow reduction (source → request
    volume, request → alive elementary segment at [MaxRate × length],
    segment → sink at [capacity × length]); branch and bound over
    subsets in arrival order with the same count bound as
    {!max_requests}.

    On a 1×1 fabric the per-port check is exact, so the returned count
    is the malleable optimum.  On wider fabrics charging both endpoint
    ports at once is a fractional packing the flow relaxes, so the count
    is an {e upper bound} on the optimum — still a sound yardstick,
    since every heuristic's accepted set passes the per-port check.
    [node_budget] (default [100_000]) caps explored nodes; each node
    costs a handful of max-flow solves. *)
