module Obs = Gridbw_obs.Obs
module Store = Gridbw_store.Store

type ctx = {
  obs : Obs.ctx;
  store : Store.t option;
  shard : int option;
}

let default = { obs = Obs.disabled; store = None; shard = None }
let make ?(obs = Obs.disabled) ?store ?shard () = { obs; store; shard }
let with_obs c obs = { c with obs }
let with_store c store = { c with store = Some store }

(* The deprecated-argument shim: an explicit [ctx] wins; otherwise the
   legacy [?obs]/[?store] pair is packed into one.  Passing both a ctx
   and a legacy argument is an error — silently preferring one would
   hide a caller bug. *)
let resolve ?obs ?store ?ctx () =
  match (ctx, obs, store) with
  | Some c, None, None -> c
  | Some _, _, _ -> invalid_arg "Runtime.resolve: pass either ?ctx or ?obs/?store, not both"
  | None, _, _ -> { obs = Option.value obs ~default:Obs.disabled; store; shard = None }

(* The telemetry context an admission path should emit into: with a
   durable store present, every event is also journaled (the store's
   sink tees with any tracing sink already attached). *)
let observed c = match c.store with None -> c.obs | Some s -> Store.attach s c.obs
