module Obs = Gridbw_obs.Obs
module Span = Gridbw_obs.Span
module Store = Gridbw_store.Store

type ctx = {
  obs : Obs.ctx;
  store : Store.t option;
  span : Span.t option;
  shard : int option;
}

let default = { obs = Obs.disabled; store = None; span = None; shard = None }
let make ?(obs = Obs.disabled) ?store ?span ?shard () = { obs; store; span; shard }
let with_obs c obs = { c with obs }
let with_store c store = { c with store = Some store }
let with_span c span = { c with span = Some span }

(* The telemetry context an admission path should emit into: with a
   durable store present, every event is also journaled (the store's
   sink tees with any tracing sink already attached). *)
let observed c = match c.store with None -> c.obs | Some s -> Store.attach s c.obs
