module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Ledger = Gridbw_alloc.Ledger
module Port = Gridbw_alloc.Port
module Live = Gridbw_alloc.Live
module Obs = Gridbw_obs.Obs

type cost_kind = Cumulated | Min_bw | Min_vol

let cost_name = function
  | Cumulated -> "cumulated-slots"
  | Min_bw -> "minbw-slots"
  | Min_vol -> "minvol-slots"

let check_routing fabric requests =
  List.iter
    (fun (r : Request.t) ->
      if not (Request.routed_on r fabric) then
        invalid_arg (Printf.sprintf "Rigid: request %d routed on unknown port" r.id))
    requests

let alloc_of (r : Request.t) = Allocation.make ~request:r ~bw:(Request.min_rate r) ~sigma:r.ts

(* Arrival order: by start time, ties by smaller rate then id — the same
   order fcfs and fifo_blocking serve the queue in. *)
let arrival_compare (a : Request.t) (b : Request.t) =
  match Float.compare a.ts b.ts with
  | 0 -> (
      match Float.compare (Request.min_rate a) (Request.min_rate b) with
      | 0 -> Int.compare a.id b.id
      | c -> c)
  | c -> c

let fcfs ?(ctx = Runtime.default) fabric requests =
  let obs = Runtime.observed ctx in
  check_routing fabric requests;
  let ledger = Ledger.create fabric in
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  let order = List.sort arrival_compare requests in
  let accepted = ref [] and rejected = ref [] in
  List.iter
    (fun (r : Request.t) ->
      if Obs.tracing obs then Emit.emit_arrival obs seqs r;
      let a = alloc_of r in
      if Ledger.fits ledger a then begin
        Ledger.reserve ledger a;
        Emit.emit_decision obs ~time:r.ts r (Types.Accepted a);
        accepted := a :: !accepted
      end
      else begin
        Emit.emit_decision obs ~time:r.ts ?blocked:(Emit.spike_port obs ledger a) r
          (Types.Rejected Types.Port_saturated);
        rejected := (r, Types.Port_saturated) :: !rejected
      end)
    order;
  { Types.all = requests; accepted = List.rev !accepted; rejected = List.rev !rejected }

(* Per-request scheduling state during the slice sweep of Algorithm 1. *)
type state = Alive of { held_before : bool } | Dead of Types.reason

let slots ?(ctx = Runtime.default) ~cost fabric requests =
  let obs = Runtime.observed ctx in
  check_routing fabric requests;
  let arr = Array.of_list requests in
  let n = Array.length arr in
  let state = Array.make n (Alive { held_before = false }) in
  let index_of_id = Hashtbl.create n in
  Array.iteri (fun i (r : Request.t) -> Hashtbl.replace index_of_id r.id i) arr;
  let breakpoints =
    Array.to_list arr
    |> List.concat_map (fun (r : Request.t) -> [ r.ts; r.tf ])
    |> List.sort_uniq Float.compare
  in
  let cost_of (r : Request.t) ~t2 =
    match cost with
    | Min_bw -> Request.min_rate r
    | Min_vol -> r.volume
    | Cumulated ->
        let priority = (t2 -. r.ts) /. (r.tf -. r.ts) in
        let b_min =
          Float.min (Fabric.ingress_capacity fabric r.ingress)
            (Fabric.egress_capacity fabric r.egress)
        in
        Request.min_rate r /. (b_min *. priority)
  in
  let live = Live.create fabric in
  let rec sweep = function
    | t1 :: (t2 :: _ as rest) ->
        let active =
          Array.to_list arr
          |> List.filter (fun (r : Request.t) ->
                 r.ts <= t1 && r.tf >= t2
                 &&
                 match state.(Hashtbl.find index_of_id r.id) with
                 | Alive _ -> true
                 | Dead _ -> false)
        in
        let order =
          List.sort
            (fun (a : Request.t) (b : Request.t) ->
              match Float.compare (cost_of a ~t2) (cost_of b ~t2) with
              | 0 -> Int.compare a.id b.id
              | c -> c)
            active
        in
        Live.reset live;
        List.iter
          (fun (r : Request.t) ->
            let i = Hashtbl.find index_of_id r.id in
            if Live.try_grab live ~ingress:r.ingress ~egress:r.egress ~bw:(Request.min_rate r)
            then state.(i) <- Alive { held_before = true }
            else
              let reason =
                match state.(i) with
                | Alive { held_before = true } -> Types.Revoked
                | Alive { held_before = false } | Dead _ -> Types.Port_saturated
              in
              state.(i) <- Dead reason)
          order;
        sweep rest
    | [ _ ] | [] -> ()
  in
  Obs.span obs "rigid_sweep" (fun () -> sweep breakpoints);
  (* Outcomes are only final once the whole sweep has run, so decisions
     are stamped at the last slice boundary, after the batch arrivals. *)
  (if Obs.tracing obs then begin
     let seqs = Emit.seq_table requests in
     List.iter (fun r -> Emit.emit_arrival obs seqs r) (List.sort arrival_compare requests)
   end);
  let sweep_end = List.fold_left (fun acc t -> Float.max acc t) 0.0 breakpoints in
  let accepted = ref [] and rejected = ref [] in
  Array.iteri
    (fun i r ->
      match state.(i) with
      | Alive _ ->
          let a = alloc_of r in
          Emit.emit_decision obs ~time:sweep_end r (Types.Accepted a);
          accepted := a :: !accepted
      | Dead reason ->
          Emit.emit_decision obs ~time:sweep_end r (Types.Rejected reason);
          rejected := (r, reason) :: !rejected)
    arr;
  { Types.all = requests; accepted = List.rev !accepted; rejected = List.rev !rejected }

(* Head-of-line-blocking FIFO: the single scheduler thread serves requests
   strictly in arrival order.  [queue_time] is when the scheduler becomes
   free; a head request that does not fit at its start time keeps the
   scheduler busy until the bandwidth it wanted frees up (earliest instant
   both ports could have carried it), and only then is it dropped. *)
let fifo_blocking ?(ctx = Runtime.default) fabric requests =
  let obs = Runtime.observed ctx in
  check_routing fabric requests;
  let ledger = Ledger.create fabric in
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  let order = List.sort arrival_compare requests in
  (* Earliest instant >= from_ at which both ports have room for [bw]:
     usage is piecewise constant, so only [from_] and later breakpoints
     need checking.  [None] if the request could never fit (bw above a
     port capacity). *)
  let earliest_fit (r : Request.t) ~from_ =
    let bw = Request.min_rate r in
    if
      bw > Fabric.ingress_capacity fabric r.ingress *. (1. +. 1e-9)
      || bw > Fabric.egress_capacity fabric r.egress *. (1. +. 1e-9)
    then None
    else
      let fits_at t =
        Ledger.usage_at ledger (Port.Ingress r.ingress) t +. bw
        <= Fabric.ingress_capacity fabric r.ingress *. (1. +. 1e-9)
        && Ledger.usage_at ledger (Port.Egress r.egress) t +. bw
           <= Fabric.egress_capacity fabric r.egress *. (1. +. 1e-9)
      in
      let candidates =
        from_
        :: (List.filter (fun t -> t > from_)
              (Ledger.breakpoints ledger (Port.Ingress r.ingress)
              @ Ledger.breakpoints ledger (Port.Egress r.egress))
           |> List.sort_uniq Float.compare)
      in
      List.find_opt fits_at candidates
  in
  let queue_time = ref neg_infinity in
  let accepted = ref [] and rejected = ref [] in
  (* Trace decisions are stamped at the request's arrival (its queue
     position), not at the instant the blocked head finally drops it, so
     the event stream stays chronological. *)
  List.iter
    (fun (r : Request.t) ->
      if Obs.tracing obs then Emit.emit_arrival obs seqs r;
      let service_time = Float.max !queue_time r.ts in
      if service_time > r.ts then begin
        (* The start passed while stuck behind the previous head. *)
        Emit.emit_decision obs ~time:r.ts r (Types.Rejected Types.Port_saturated);
        rejected := (r, Types.Port_saturated) :: !rejected
      end
      else begin
        let a = alloc_of r in
        if Ledger.fits ledger a then begin
          Ledger.reserve ledger a;
          Emit.emit_decision obs ~time:r.ts r (Types.Accepted a);
          accepted := a :: !accepted
        end
        else begin
          (* Head-of-line blocking: wait for the bandwidth, then drop. *)
          (match earliest_fit r ~from_:r.ts with
          | Some t -> queue_time := Float.max !queue_time t
          | None -> ());
          Emit.emit_decision obs ~time:r.ts ?blocked:(Emit.spike_port obs ledger a) r
            (Types.Rejected Types.Port_saturated);
          rejected := (r, Types.Port_saturated) :: !rejected
        end
      end)
    order;
  { Types.all = requests; accepted = List.rev !accepted; rejected = List.rev !rejected }

let run ?ctx kind fabric requests =
  match kind with
  | `Fcfs -> fcfs ?ctx fabric requests
  | `Fifo_blocking -> fifo_blocking ?ctx fabric requests
  | `Slots cost -> slots ?ctx ~cost fabric requests

let heuristic_name = function
  | `Fcfs -> "fcfs"
  | `Fifo_blocking -> "fifo-blocking"
  | `Slots cost -> cost_name cost
