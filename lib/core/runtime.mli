(** The runtime context threaded through every admission engine.

    The engines used to take a pair of optional arguments — [?obs] for
    the telemetry plane and [?store] for the durable journal — and each
    new cross-cutting concern would have added a third.  [ctx] packs
    them into one record (with a [shard] slot reserved for the planned
    multi-fabric partitioning), so engine signatures stay fixed as the
    runtime grows.

    The legacy [?obs]/[?store] arguments still work on every entry point
    this release, via {!resolve}; they are deprecated and will be removed
    next release — pass [?ctx] instead. *)

type ctx = {
  obs : Gridbw_obs.Obs.ctx;  (** telemetry: counters, trace sink *)
  store : Gridbw_store.Store.t option;  (** durable admission journal *)
  shard : int option;
      (** reserved: fabric shard this engine instance owns (multi-fabric
          partitioning; no engine consults it yet) *)
}

val default : ctx
(** Disabled telemetry, no store, no shard — the zero-cost context. *)

val make : ?obs:Gridbw_obs.Obs.ctx -> ?store:Gridbw_store.Store.t -> ?shard:int -> unit -> ctx

val with_obs : ctx -> Gridbw_obs.Obs.ctx -> ctx
val with_store : ctx -> Gridbw_store.Store.t -> ctx

val resolve :
  ?obs:Gridbw_obs.Obs.ctx -> ?store:Gridbw_store.Store.t -> ?ctx:ctx -> unit -> ctx
(** Merge the deprecated [?obs]/[?store] arguments with the new [?ctx]:
    an explicit [ctx] wins when it is the only one given; legacy
    arguments build a shardless context.  Raises [Invalid_argument] if
    both forms are passed — mixing them is a caller bug, not a
    preference to guess at. *)

val observed : ctx -> Gridbw_obs.Obs.ctx
(** The telemetry context an engine should emit into: [obs], teed with
    the store's journaling sink when a store is attached.  Engines call
    this once at entry and thread the merged context internally. *)
