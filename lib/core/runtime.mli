(** The runtime context threaded through every admission engine.

    The engines used to take a pair of optional arguments — [?obs] for
    the telemetry plane and [?store] for the durable journal — and each
    new cross-cutting concern would have added a third.  [ctx] packs
    them into one record, so engine signatures stay fixed as the runtime
    grows: the [span] slot carries the current request's trace through
    the serve path, and [shard] is reserved for the planned multi-fabric
    partitioning.

    The deprecated [?obs]/[?store] arguments (and the [resolve] shim
    that merged them) are gone — every entry point takes [?ctx] only. *)

type ctx = {
  obs : Gridbw_obs.Obs.ctx;  (** telemetry: counters, trace sink *)
  store : Gridbw_store.Store.t option;  (** durable admission journal *)
  span : Gridbw_obs.Span.t option;
      (** the in-flight request's trace span: engines accumulate stage
          durations onto it (admit-search, WAL-append) when present *)
  shard : int option;
      (** reserved: fabric shard this engine instance owns (multi-fabric
          partitioning; no engine consults it yet) *)
}

val default : ctx
(** Disabled telemetry, no store, no span, no shard — the zero-cost
    context. *)

val make :
  ?obs:Gridbw_obs.Obs.ctx ->
  ?store:Gridbw_store.Store.t ->
  ?span:Gridbw_obs.Span.t ->
  ?shard:int ->
  unit ->
  ctx

val with_obs : ctx -> Gridbw_obs.Obs.ctx -> ctx
val with_store : ctx -> Gridbw_store.Store.t -> ctx
val with_span : ctx -> Gridbw_obs.Span.t -> ctx

val observed : ctx -> Gridbw_obs.Obs.ctx
(** The telemetry context an engine should emit into: [obs], teed with
    the store's journaling sink when a store is attached.  Engines call
    this once at entry and thread the merged context internally. *)
