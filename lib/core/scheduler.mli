(** First-class scheduler interface.

    Every admission strategy in the repo — the rigid heuristics of section
    4, the flexible GREEDY/WINDOW family of section 5, and the fault
    injector's degraded-fabric variants — answers the same question: given
    a workload spec and the concrete request trace drawn from it, which
    requests are accepted and at what allocation?  {!S} captures exactly
    that, so drivers ({!Gridbw_experiments}, bin/gridbw) can iterate over a
    list of schedulers instead of matching on per-heuristic constructors. *)

module type S = sig
  val name : string
  (** Stable label used in tables, CSV columns and the CLI. *)

  val run :
    ?ctx:Runtime.ctx ->
    Gridbw_workload.Spec.t ->
    Gridbw_request.Request.t list ->
    Types.result
  (** Decide every request of the trace against the spec's fabric.  The
      trace is normally drawn from the same spec ({!Gridbw_workload.Gen}),
      but only [spec.fabric] (and, for batch heuristics, timing derived
      from the requests themselves) is consulted.  [ctx] is the runtime
      context ({!Runtime.ctx}): decisions feed its telemetry counters
      and, when a trace sink is attached, its event stream; a store in
      the context journals them durably. *)
end

type t = (module S)

val name : t -> string

val run :
  ?ctx:Runtime.ctx ->
  t ->
  Gridbw_workload.Spec.t ->
  Gridbw_request.Request.t list ->
  Types.result

val make :
  name:string ->
  (?ctx:Runtime.ctx ->
  Gridbw_workload.Spec.t ->
  Gridbw_request.Request.t list ->
  Types.result) ->
  t
(** Wrap a function as a scheduler. *)

val of_rigid : [ `Fcfs | `Fifo_blocking | `Slots of Rigid.cost_kind ] -> t
(** The section-4 heuristics, named as {!Rigid.heuristic_name}. *)

val of_flexible : [ `Greedy | `Window of float | `Window_deferred of float ] -> Policy.t -> t
(** The section-5 heuristics; the name combines {!Flexible.heuristic_name}
    and {!Policy.name}, e.g. ["window(400)/f=0.80"]. *)

val rigid_all : t list
(** All five rigid schedulers, in the paper's presentation order. *)

val flexible_all : ?policy:Policy.t -> ?step:float -> unit -> t list
(** The three flexible schedulers (GREEDY, WINDOW, WINDOW-deferred) under
    one policy (default [Min_rate]) and batching step (default 400 s, the
    paper's setting). *)

val shipped : ?step:float -> unit -> t list
(** Every registered engine a conformance sweep should drive: the five
    rigid heuristics plus the flexible family under [Min_rate] and
    [Fraction_of_max 0.8].  The fault injector's degraded-fabric variants
    are script-dependent and enumerated by the caller
    ({!Gridbw_fault.Injector.scheduler}). *)

val find : t list -> string -> t option
(** First scheduler with the given {!name}, if any. *)
