module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation

type reason = Port_saturated | Deadline_unreachable | Revoked
type decision = Accepted of Allocation.t | Rejected of reason

type result = {
  all : Request.t list;
  accepted : Allocation.t list;
  rejected : (Request.t * reason) list;
}

let accept_rate r =
  match r.all with
  | [] -> 0.0
  | _ -> float_of_int (List.length r.accepted) /. float_of_int (List.length r.all)

let accepted_ids r =
  List.map (fun (a : Allocation.t) -> a.request.Request.id) r.accepted |> List.sort Int.compare

let decision_of r id =
  match
    List.find_opt (fun (a : Allocation.t) -> a.Allocation.request.Request.id = id) r.accepted
  with
  | Some a -> Some (Accepted a)
  | None -> (
      match List.find_opt (fun ((req : Request.t), _) -> req.id = id) r.rejected with
      | Some (_, reason) -> Some (Rejected reason)
      | None -> None)

let is_consistent r =
  let module Iset = Set.Make (Int) in
  let ids_of l = Iset.of_list (List.map (fun (req : Request.t) -> req.id) l) in
  let all = ids_of r.all in
  let acc = ids_of (List.map (fun (a : Allocation.t) -> a.Allocation.request) r.accepted) in
  let rej = ids_of (List.map fst r.rejected) in
  Iset.cardinal acc = List.length r.accepted
  && Iset.cardinal rej = List.length r.rejected
  && Iset.is_empty (Iset.inter acc rej)
  && Iset.equal (Iset.union acc rej) all

let pp_reason ppf = function
  | Port_saturated -> Format.pp_print_string ppf "port-saturated"
  | Deadline_unreachable -> Format.pp_print_string ppf "deadline-unreachable"
  | Revoked -> Format.pp_print_string ppf "revoked"

let pp ppf r =
  Format.fprintf ppf "@[<v>%d requests, %d accepted, %d rejected@]" (List.length r.all)
    (List.length r.accepted) (List.length r.rejected)
