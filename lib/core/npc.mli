(** Theorem 1: the reduction from 3-Dimensional Matching to
    MAX-REQUESTS-DEC, made executable.

    Given a 3-DM instance over X, Y, Z of cardinal [n] with triple set [T],
    the reduction builds a platform with [n+1] ingress and [n+1] egress
    points (regular ports of capacity 1, one special port per side of
    capacity [n-1]) and [|T| + 2n(n-1)] unit requests, such that [K = n +
    2n(n-1)] requests can be accepted iff [T] contains a perfect matching.
    Both directions are exercised by the test suite via {!Unit_exact} and
    {!schedule_of_matching}. *)

type tdm = {
  n : int;  (** cardinal of X, Y, Z *)
  triples : (int * int * int) list;  (** (x, y, z), 1-based coordinates *)
}

val validate : tdm -> unit
(** Raises [Invalid_argument] when [n < 1], coordinates are out of
    [\[1, n\]], or triples repeat. *)

val has_matching : tdm -> (int * int * int) list option
(** Backtracking 3-DM solver: a set of [n] triples covering each
    coordinate exactly once, or [None]. *)

val reduce : tdm -> Unit_exact.instance * int
(** The MAX-REQUESTS-DEC instance and the acceptance bound [K].  Requests
    [0 .. |T|-1] are the regular (triple) requests in the order of
    [triples]; the rest are special.  Time steps are 1-based as in the
    paper: triple [(_, _, k)] yields window [\[k, k+1)); special requests
    get [\[1, n+1)). *)

val schedule_of_matching : tdm -> (int * int * int) list -> (int * int) list
(** The constructive forward direction of the proof: placements accepting
    exactly [K] requests given a perfect matching.  Raises
    [Invalid_argument] if the matching is not one of the instance. *)

val random : Gridbw_prng.Rng.t -> n:int -> extra_triples:int -> tdm
(** Random instance guaranteed to contain a perfect matching (a hidden
    random permutation) plus [extra_triples] random distractors. *)

val random_no_promise : Gridbw_prng.Rng.t -> n:int -> triples:int -> tdm
(** Uniformly random distinct triples, no matching promised. *)
