module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Ledger = Gridbw_alloc.Ledger

type solution = { count : int; accepted_ids : int list; optimal : bool; nodes : int }

let max_requests ?(node_budget = 5_000_000) fabric requests =
  List.iter
    (fun (r : Request.t) ->
      if not (Request.routed_on r fabric) then
        invalid_arg (Printf.sprintf "Exact: request %d routed on unknown port" r.id))
    requests;
  let arr =
    Array.of_list
      (List.sort
         (fun (a : Request.t) (b : Request.t) ->
           match Float.compare a.ts b.ts with 0 -> Int.compare a.id b.id | c -> c)
         requests)
  in
  let n = Array.length arr in
  let ledger = Ledger.create fabric in
  let best = ref 0 and best_set = ref [] and nodes = ref 0 and exhausted = ref false in
  let chosen = ref [] in
  let rec explore i accepted =
    incr nodes;
    if !nodes > node_budget then exhausted := true
    else if i = n then begin
      if accepted > !best then begin
        best := accepted;
        best_set := !chosen
      end
    end
    else if accepted + (n - i) <= !best then () (* bound: cannot beat incumbent *)
    else begin
      let r = arr.(i) in
      let a = Allocation.make ~request:r ~bw:(Request.min_rate r) ~sigma:r.Request.ts in
      (* Accept branch first: depth-first dives to a good incumbent early. *)
      if Ledger.fits ledger a then begin
        Ledger.reserve ledger a;
        chosen := r.Request.id :: !chosen;
        explore (i + 1) (accepted + 1);
        chosen := List.tl !chosen;
        Ledger.release ledger a
      end;
      if not !exhausted then explore (i + 1) accepted
    end
  in
  explore 0 0;
  { count = !best; accepted_ids = List.sort Int.compare !best_set; optimal = not !exhausted;
    nodes = !nodes }

let max_requests_flexible ?(node_budget = 5_000_000) ?(levels = [ 0.0; 0.5; 1.0 ]) fabric
    requests =
  List.iter
    (fun (r : Request.t) ->
      if not (Request.routed_on r fabric) then
        invalid_arg (Printf.sprintf "Exact: request %d routed on unknown port" r.id))
    requests;
  List.iter
    (fun l ->
      if l < 0. || l > 1. then invalid_arg "Exact.max_requests_flexible: levels must be in [0,1]")
    levels;
  let arr =
    Array.of_list
      (List.sort
         (fun (a : Request.t) (b : Request.t) ->
           match Float.compare a.ts b.ts with 0 -> Int.compare a.id b.id | c -> c)
         requests)
  in
  let n = Array.length arr in
  (* Distinct admissible rates per request, cheapest first: dominated
     duplicates (levels clamped to MinRate) are merged. *)
  let options =
    Array.map
      (fun (r : Request.t) ->
        List.map (fun l -> Float.max (Request.min_rate r) (l *. r.Request.max_rate)) levels
        |> List.sort_uniq Float.compare)
      arr
  in
  let ledger = Ledger.create fabric in
  let best = ref 0 and best_set = ref [] and nodes = ref 0 and exhausted = ref false in
  let chosen = ref [] in
  let rec explore i accepted =
    incr nodes;
    if !nodes > node_budget then exhausted := true
    else if i = n then begin
      if accepted > !best then begin
        best := accepted;
        best_set := !chosen
      end
    end
    else if accepted + (n - i) <= !best then ()
    else begin
      let r = arr.(i) in
      List.iter
        (fun bw ->
          if not !exhausted then begin
            let a = Allocation.make ~request:r ~bw ~sigma:r.Request.ts in
            if Allocation.meets_deadline a && Ledger.fits ledger a then begin
              Ledger.reserve ledger a;
              chosen := r.Request.id :: !chosen;
              explore (i + 1) (accepted + 1);
              chosen := List.tl !chosen;
              Ledger.release ledger a
            end
          end)
        options.(i);
      if not !exhausted then explore (i + 1) accepted
    end
  in
  explore 0 0;
  { count = !best; accepted_ids = List.sort Int.compare !best_set; optimal = not !exhausted;
    nodes = !nodes }

let result_of fabric requests solution =
  let module Iset = Set.Make (Int) in
  let chosen = Iset.of_list solution.accepted_ids in
  let accepted, rejected =
    List.partition_map
      (fun (r : Request.t) ->
        if Iset.mem r.id chosen then
          Left (Allocation.make ~request:r ~bw:(Request.min_rate r) ~sigma:r.ts)
        else Right (r, Types.Port_saturated))
      requests
  in
  ignore fabric;
  { Types.all = requests; accepted; rejected }
