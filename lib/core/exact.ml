module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Ledger = Gridbw_alloc.Ledger

type solution = { count : int; accepted_ids : int list; optimal : bool; nodes : int }

let max_requests ?(node_budget = 5_000_000) fabric requests =
  List.iter
    (fun (r : Request.t) ->
      if not (Request.routed_on r fabric) then
        invalid_arg (Printf.sprintf "Exact: request %d routed on unknown port" r.id))
    requests;
  let arr =
    Array.of_list
      (List.sort
         (fun (a : Request.t) (b : Request.t) ->
           match Float.compare a.ts b.ts with 0 -> Int.compare a.id b.id | c -> c)
         requests)
  in
  let n = Array.length arr in
  let ledger = Ledger.create fabric in
  let best = ref 0 and best_set = ref [] and nodes = ref 0 and exhausted = ref false in
  let chosen = ref [] in
  let rec explore i accepted =
    incr nodes;
    if !nodes > node_budget then exhausted := true
    else if i = n then begin
      if accepted > !best then begin
        best := accepted;
        best_set := !chosen
      end
    end
    else if accepted + (n - i) <= !best then () (* bound: cannot beat incumbent *)
    else begin
      let r = arr.(i) in
      let a = Allocation.make ~request:r ~bw:(Request.min_rate r) ~sigma:r.Request.ts in
      (* Accept branch first: depth-first dives to a good incumbent early. *)
      if Ledger.fits ledger a then begin
        Ledger.reserve ledger a;
        chosen := r.Request.id :: !chosen;
        explore (i + 1) (accepted + 1);
        chosen := List.tl !chosen;
        Ledger.release ledger a
      end;
      if not !exhausted then explore (i + 1) accepted
    end
  in
  explore 0 0;
  { count = !best; accepted_ids = List.sort Int.compare !best_set; optimal = not !exhausted;
    nodes = !nodes }

let max_requests_flexible ?(node_budget = 5_000_000) ?(levels = [ 0.0; 0.5; 1.0 ]) fabric
    requests =
  List.iter
    (fun (r : Request.t) ->
      if not (Request.routed_on r fabric) then
        invalid_arg (Printf.sprintf "Exact: request %d routed on unknown port" r.id))
    requests;
  List.iter
    (fun l ->
      if l < 0. || l > 1. then invalid_arg "Exact.max_requests_flexible: levels must be in [0,1]")
    levels;
  let arr =
    Array.of_list
      (List.sort
         (fun (a : Request.t) (b : Request.t) ->
           match Float.compare a.ts b.ts with 0 -> Int.compare a.id b.id | c -> c)
         requests)
  in
  let n = Array.length arr in
  (* Distinct admissible rates per request, cheapest first: dominated
     duplicates (levels clamped to MinRate) are merged. *)
  let options =
    Array.map
      (fun (r : Request.t) ->
        List.map (fun l -> Float.max (Request.min_rate r) (l *. r.Request.max_rate)) levels
        |> List.sort_uniq Float.compare)
      arr
  in
  let ledger = Ledger.create fabric in
  let best = ref 0 and best_set = ref [] and nodes = ref 0 and exhausted = ref false in
  let chosen = ref [] in
  let rec explore i accepted =
    incr nodes;
    if !nodes > node_budget then exhausted := true
    else if i = n then begin
      if accepted > !best then begin
        best := accepted;
        best_set := !chosen
      end
    end
    else if accepted + (n - i) <= !best then ()
    else begin
      let r = arr.(i) in
      List.iter
        (fun bw ->
          if not !exhausted then begin
            let a = Allocation.make ~request:r ~bw ~sigma:r.Request.ts in
            if Allocation.meets_deadline a && Ledger.fits ledger a then begin
              Ledger.reserve ledger a;
              chosen := r.Request.id :: !chosen;
              explore (i + 1) (accepted + 1);
              chosen := List.tl !chosen;
              Ledger.release ledger a
            end
          end)
        options.(i);
      if not !exhausted then explore (i + 1) accepted
    end
  in
  explore 0 0;
  { count = !best; accepted_ids = List.sort Int.compare !best_set; optimal = not !exhausted;
    nodes = !nodes }

(* --- malleable feasibility: bipartite max flow per port --- *)

(* Can [reqs] all ship their full volumes through one port of capacity
   [cap], each within its [ts, tf] window at rates in [0, MaxRate]?
   Classic preemptive-deadline reduction: source -> request (volume),
   request -> alive elementary segment (MaxRate * length), segment ->
   sink (cap * length); feasible iff the max flow saturates the source
   arcs.  Floats throughout with a relative tolerance — segment bounds
   are the requests' own breakpoints, so window containment is exact. *)
let port_feasible cap (reqs : Request.t array) =
  let n = Array.length reqs in
  if n = 0 then true
  else begin
    let pts =
      Array.to_list reqs
      |> List.concat_map (fun (r : Request.t) -> [ r.Request.ts; r.Request.tf ])
      |> List.sort_uniq Float.compare
    in
    let rec pair = function a :: (b :: _ as rest) -> (a, b) :: pair rest | _ -> [] in
    let segs = Array.of_list (pair pts) in
    let m = Array.length segs in
    (* nodes: 0 source | 1..n requests | n+1..n+m segments | n+m+1 sink *)
    let v = n + m + 2 in
    let sink = v - 1 in
    let cap_m = Array.make_matrix v v 0.0 in
    let total = Array.fold_left (fun acc (r : Request.t) -> acc +. r.Request.volume) 0.0 reqs in
    Array.iteri (fun i (r : Request.t) -> cap_m.(0).(1 + i) <- r.Request.volume) reqs;
    Array.iteri
      (fun j (a, b) ->
        let len = b -. a in
        cap_m.(n + 1 + j).(sink) <- cap *. len;
        Array.iteri
          (fun i (r : Request.t) ->
            if r.Request.ts <= a && b <= r.Request.tf then
              cap_m.(1 + i).(n + 1 + j) <- r.Request.max_rate *. len)
          reqs)
      segs;
    let eps = 1e-12 *. Float.max 1.0 total in
    let flow = ref 0.0 in
    let prev = Array.make v (-1) in
    let rec augment () =
      Array.fill prev 0 v (-1);
      prev.(0) <- 0;
      let q = Queue.create () in
      Queue.add 0 q;
      while (not (Queue.is_empty q)) && prev.(sink) < 0 do
        let u = Queue.pop q in
        for w = 0 to v - 1 do
          if prev.(w) < 0 && cap_m.(u).(w) > eps then begin
            prev.(w) <- u;
            Queue.add w q
          end
        done
      done;
      if prev.(sink) >= 0 then begin
        let bottleneck = ref infinity in
        let w = ref sink in
        while !w <> 0 do
          let u = prev.(!w) in
          if cap_m.(u).(!w) < !bottleneck then bottleneck := cap_m.(u).(!w);
          w := u
        done;
        let w = ref sink in
        while !w <> 0 do
          let u = prev.(!w) in
          cap_m.(u).(!w) <- cap_m.(u).(!w) -. !bottleneck;
          cap_m.(!w).(u) <- cap_m.(!w).(u) +. !bottleneck;
          w := u
        done;
        flow := !flow +. !bottleneck;
        augment ()
      end
    in
    augment ();
    !flow >= total *. (1. -. 1e-9)
  end

let max_requests_malleable ?(node_budget = 100_000) fabric requests =
  List.iter
    (fun (r : Request.t) ->
      if not (Request.routed_on r fabric) then
        invalid_arg (Printf.sprintf "Exact: request %d routed on unknown port" r.id))
    requests;
  let arr =
    Array.of_list
      (List.sort
         (fun (a : Request.t) (b : Request.t) ->
           match Float.compare a.ts b.ts with 0 -> Int.compare a.id b.id | c -> c)
         requests)
  in
  let n = Array.length arr in
  let feasible chosen =
    let through side port =
      Array.of_list (List.filter (fun (r : Request.t) -> side r = port) chosen)
    in
    let ok = ref true in
    for i = 0 to Fabric.ingress_count fabric - 1 do
      if !ok then
        ok :=
          port_feasible (Fabric.ingress_capacity fabric i)
            (through (fun (r : Request.t) -> r.Request.ingress) i)
    done;
    for e = 0 to Fabric.egress_count fabric - 1 do
      if !ok then
        ok :=
          port_feasible (Fabric.egress_capacity fabric e)
            (through (fun (r : Request.t) -> r.Request.egress) e)
    done;
    !ok
  in
  let best = ref 0 and best_set = ref [] and nodes = ref 0 and exhausted = ref false in
  let chosen = ref [] in
  let rec explore i accepted =
    incr nodes;
    if !nodes > node_budget then exhausted := true
    else if i = n then begin
      if accepted > !best then begin
        best := accepted;
        best_set := List.map (fun (r : Request.t) -> r.Request.id) !chosen
      end
    end
    else if accepted + (n - i) <= !best then ()
    else begin
      let r = arr.(i) in
      (* Feasibility is downward closed (shrink any volume to zero), so
         pruning an infeasible prefix is sound. *)
      if feasible (r :: !chosen) then begin
        chosen := r :: !chosen;
        explore (i + 1) (accepted + 1);
        chosen := List.tl !chosen
      end;
      if not !exhausted then explore (i + 1) accepted
    end
  in
  explore 0 0;
  { count = !best; accepted_ids = List.sort Int.compare !best_set; optimal = not !exhausted;
    nodes = !nodes }

let result_of fabric requests solution =
  let module Iset = Set.Make (Int) in
  let chosen = Iset.of_list solution.accepted_ids in
  let accepted, rejected =
    List.partition_map
      (fun (r : Request.t) ->
        if Iset.mem r.id chosen then
          Left (Allocation.make ~request:r ~bw:(Request.min_rate r) ~sigma:r.ts)
        else Right (r, Types.Port_saturated))
      requests
  in
  ignore fabric;
  { Types.all = requests; accepted; rejected }
