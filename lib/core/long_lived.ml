module Fabric = Gridbw_topology.Fabric
module Live = Gridbw_alloc.Live
module Dinic = Gridbw_flow.Dinic

type request = { id : int; ingress : int; egress : int; bw : float }

let request ~id ~ingress ~egress ~bw =
  if bw <= 0. || not (Float.is_finite bw) then
    invalid_arg "Long_lived.request: bandwidth must be positive and finite";
  { id; ingress; egress; bw }

type result = { accepted : request list; rejected : request list }

let accepted_ids r = List.map (fun q -> q.id) r.accepted |> List.sort Int.compare

let check_routing fabric requests =
  List.iter
    (fun r ->
      if not (Fabric.valid_ingress fabric r.ingress && Fabric.valid_egress fabric r.egress) then
        invalid_arg (Printf.sprintf "Long_lived: request %d routed on unknown port" r.id))
    requests

let feasible fabric requests =
  check_routing fabric requests;
  let live = Live.create fabric in
  List.iter (fun r -> Live.grab live ~ingress:r.ingress ~egress:r.egress ~bw:r.bw) requests;
  let ok = ref true in
  for i = 0 to Fabric.ingress_count fabric - 1 do
    if Live.ingress_used live i > Fabric.ingress_capacity fabric i *. (1. +. 1e-9) then ok := false
  done;
  for e = 0 to Fabric.egress_count fabric - 1 do
    if Live.egress_used live e > Fabric.egress_capacity fabric e *. (1. +. 1e-9) then ok := false
  done;
  !ok

let by_id = List.sort (fun a b -> Int.compare a.id b.id)

let optimal_uniform fabric ~bw requests =
  if bw <= 0. then invalid_arg "Long_lived.optimal_uniform: bandwidth must be positive";
  check_routing fabric requests;
  List.iter
    (fun r ->
      if Float.abs (r.bw -. bw) > 1e-9 *. bw then
        invalid_arg "Long_lived.optimal_uniform: non-uniform request bandwidth")
    requests;
  let m = Fabric.ingress_count fabric and n = Fabric.egress_count fabric in
  (* Vertices: 0 = source, 1 = sink, 2..2+m-1 = ingress, then egress. *)
  let source = 0 and sink = 1 in
  let ingress_vertex i = 2 + i and egress_vertex e = 2 + m + e in
  let g = Dinic.create ~vertices:(2 + m + n) in
  let slots cap = int_of_float (Float.floor ((cap /. bw) *. (1. +. 1e-9))) in
  for i = 0 to m - 1 do
    ignore
      (Dinic.add_edge g ~src:source ~dst:(ingress_vertex i)
         ~capacity:(slots (Fabric.ingress_capacity fabric i)))
  done;
  for e = 0 to n - 1 do
    ignore
      (Dinic.add_edge g ~src:(egress_vertex e) ~dst:sink
         ~capacity:(slots (Fabric.egress_capacity fabric e)))
  done;
  let edge_of =
    List.map
      (fun r ->
        (r, Dinic.add_edge g ~src:(ingress_vertex r.ingress) ~dst:(egress_vertex r.egress)
              ~capacity:1))
      requests
  in
  ignore (Dinic.max_flow g ~source ~sink);
  let accepted, rejected =
    List.partition_map
      (fun (r, edge) -> if Dinic.flow_on g edge > 0 then Left r else Right r)
      edge_of
  in
  { accepted = by_id accepted; rejected = by_id rejected }

let greedy fabric requests =
  check_routing fabric requests;
  let live = Live.create fabric in
  let order =
    List.sort
      (fun a b -> match Float.compare a.bw b.bw with 0 -> Int.compare a.id b.id | c -> c)
      requests
  in
  let accepted, rejected =
    List.partition_map
      (fun r ->
        if Live.try_grab live ~ingress:r.ingress ~egress:r.egress ~bw:r.bw then Left r
        else Right r)
      order
  in
  { accepted = by_id accepted; rejected = by_id rejected }

let exact ?(node_budget = 2_000_000) fabric requests =
  check_routing fabric requests;
  let arr = Array.of_list requests in
  let n = Array.length arr in
  let live = Live.create fabric in
  let best = ref 0 and best_set = ref [] and chosen = ref [] in
  let nodes = ref 0 and exhausted = ref false in
  let rec explore i accepted =
    incr nodes;
    if !nodes > node_budget then exhausted := true
    else if i = n then begin
      if accepted > !best then begin
        best := accepted;
        best_set := !chosen
      end
    end
    else if accepted + (n - i) <= !best then ()
    else begin
      let r = arr.(i) in
      if Live.try_grab live ~ingress:r.ingress ~egress:r.egress ~bw:r.bw then begin
        chosen := r.id :: !chosen;
        explore (i + 1) (accepted + 1);
        chosen := List.tl !chosen;
        Live.release live ~ingress:r.ingress ~egress:r.egress ~bw:r.bw
      end;
      if not !exhausted then explore (i + 1) accepted
    end
  in
  explore 0 0;
  (!best, List.sort Int.compare !best_set, not !exhausted)
