(* Internal trace-emission helpers shared by the admission paths
   (Online, Flexible, Rigid).  Everything here is guarded by the context:
   with [Obs.disabled] each call is a branch and nothing else. *)

module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Ledger = Gridbw_alloc.Ledger
module Port = Gridbw_alloc.Port
module Obs = Gridbw_obs.Obs
module Event = Gridbw_obs.Event

let reason_name reason = Format.asprintf "%a" Types.pp_reason reason

(* Input-list position of every request, recorded on Arrival events so a
   trace replay can restore the original list order (summary float sums
   are order-sensitive). *)
let seq_table requests =
  let h = Hashtbl.create (max 16 (List.length requests)) in
  List.iteri (fun i (r : Request.t) -> Hashtbl.replace h r.id i) requests;
  h

let emit_arrival obs seqs ?time (r : Request.t) =
  Obs.event obs (fun () ->
      Event.Arrival
        {
          time = Option.value time ~default:r.ts;
          seq = (match Hashtbl.find_opt seqs r.id with Some s -> s | None -> -1);
          id = r.id;
          ingress = r.ingress;
          egress = r.egress;
          volume = r.volume;
          ts = r.ts;
          tf = r.tf;
          max_rate = r.max_rate;
        })

let emit_arrivals obs seqs batch =
  if Obs.tracing obs then List.iter (fun r -> emit_arrival obs seqs r) batch

(* Counters plus the Accept/Reject trace record for one decision.
   [blocked] is the saturated port and its headroom at decision time,
   when the caller identified one. *)
let emit_decision obs ~time ?blocked ?shard (r : Request.t) d =
  if obs.Obs.enabled then begin
    Obs.count obs "admit_requests_total";
    match d with
    | Types.Accepted a ->
        Obs.count obs "admit_accepted_total";
        Obs.event obs (fun () ->
            Event.Accept
              {
                time;
                id = r.id;
                ingress = r.ingress;
                egress = r.egress;
                volume = r.volume;
                ts = r.ts;
                tf = r.tf;
                max_rate = r.max_rate;
                bw = a.Allocation.bw;
                sigma = a.Allocation.sigma;
                shard;
              })
    | Types.Rejected reason ->
        Obs.count obs "admit_rejected_total";
        Obs.event obs (fun () ->
            let port, headroom =
              match blocked with
              | Some (p, h) -> (Some p, Some h)
              | None -> (None, None)
            in
            Event.Reject { time; id = r.id; reason = reason_name reason; port; headroom; shard })
  end

(* The tighter port over the allocation's own transmission interval —
   only computed on the traced-reject path (costs two ledger probes). *)
let spike_port obs ledger (a : Allocation.t) =
  if not (Obs.tracing obs) then None
  else begin
    let r = a.Allocation.request in
    let from_ = a.Allocation.sigma and until = a.Allocation.tau in
    let hi = Ledger.headroom_over ledger (Port.Ingress r.Request.ingress) ~from_ ~until in
    let he = Ledger.headroom_over ledger (Port.Egress r.Request.egress) ~from_ ~until in
    if hi <= he then Some ((Event.Ingress, r.Request.ingress), hi)
    else Some ((Event.Egress, r.Request.egress), he)
  end
