module Rng = Gridbw_prng.Rng

type tdm = { n : int; triples : (int * int * int) list }

let validate t =
  if t.n < 1 then invalid_arg "Npc: n must be >= 1";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (x, y, z) ->
      if x < 1 || x > t.n || y < 1 || y > t.n || z < 1 || z > t.n then
        invalid_arg "Npc: triple coordinate out of range";
      if Hashtbl.mem seen (x, y, z) then invalid_arg "Npc: duplicate triple";
      Hashtbl.replace seen (x, y, z) ())
    t.triples

let has_matching t =
  validate t;
  let by_z = Array.make (t.n + 1) [] in
  List.iter (fun ((_, _, z) as triple) -> by_z.(z) <- triple :: by_z.(z)) t.triples;
  let used_x = Array.make (t.n + 1) false and used_y = Array.make (t.n + 1) false in
  (* One triple per z-slice; x and y must realise permutations. *)
  let rec place z acc =
    if z > t.n then Some (List.rev acc)
    else
      let rec try_triples = function
        | [] -> None
        | ((x, y, _) as triple) :: rest ->
            if used_x.(x) || used_y.(y) then try_triples rest
            else begin
              used_x.(x) <- true;
              used_y.(y) <- true;
              match place (z + 1) (triple :: acc) with
              | Some m -> Some m
              | None ->
                  used_x.(x) <- false;
                  used_y.(y) <- false;
                  try_triples rest
            end
      in
      try_triples by_z.(z)
  in
  place 1 []

let reduce t =
  validate t;
  let n = t.n in
  let caps side_special = Array.init (n + 1) (fun i -> if i < n then 1 else side_special) in
  (* With n = 1 the special ports have capacity 0 and there are no special
     requests; the instance degenerates gracefully. *)
  let caps_in = caps (n - 1) and caps_out = caps (n - 1) in
  let regular =
    List.mapi
      (fun idx (x, y, z) ->
        { Unit_exact.id = idx; ingress = x - 1; egress = y - 1; ts = z; tf = z + 1 })
      t.triples
  in
  let base = List.length t.triples in
  let special =
    if n < 2 then []
    else begin
      let acc = ref [] and next = ref base in
      for i = 0 to n - 1 do
        for _copy = 1 to n - 1 do
          acc := { Unit_exact.id = !next; ingress = i; egress = n; ts = 1; tf = n + 1 } :: !acc;
          incr next
        done
      done;
      for e = 0 to n - 1 do
        for _copy = 1 to n - 1 do
          acc := { Unit_exact.id = !next; ingress = n; egress = e; ts = 1; tf = n + 1 } :: !acc;
          incr next
        done
      done;
      List.rev !acc
    end
  in
  let reqs = Array.of_list (regular @ special) in
  let k = n + (2 * n * (n - 1)) in
  ({ Unit_exact.caps_in; caps_out; reqs }, k)

let schedule_of_matching t matching =
  validate t;
  if List.length matching <> t.n then invalid_arg "Npc: matching must have n triples";
  let index_of =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun idx triple -> Hashtbl.replace tbl triple idx) t.triples;
    fun triple ->
      match Hashtbl.find_opt tbl triple with
      | Some idx -> idx
      | None -> invalid_arg "Npc: matching uses a triple not in the instance"
  in
  let n = t.n in
  let base = List.length t.triples in
  (* Special-request ids, grouped per regular port, in reduce's order. *)
  let special_in i copy = base + (i * (n - 1)) + copy in
  let special_out e copy = base + (n * (n - 1)) + (e * (n - 1)) + copy in
  let placements = ref [] in
  (* Regular request of each matched triple runs at step z; alongside it,
     one special request from every other ingress and to every other egress. *)
  let next_in = Array.make n 0 and next_out = Array.make n 0 in
  List.iter
    (fun ((x, y, z) as triple) ->
      placements := (index_of triple, z) :: !placements;
      for i = 0 to n - 1 do
        if i <> x - 1 then begin
          placements := (special_in i next_in.(i), z) :: !placements;
          next_in.(i) <- next_in.(i) + 1
        end
      done;
      for e = 0 to n - 1 do
        if e <> y - 1 then begin
          placements := (special_out e next_out.(e), z) :: !placements;
          next_out.(e) <- next_out.(e) + 1
        end
      done)
    matching;
  List.sort compare !placements

let random rng ~n ~extra_triples =
  if n < 1 then invalid_arg "Npc.random: n must be >= 1";
  let perm_y = Array.init n (fun i -> i + 1) and perm_x = Array.init n (fun i -> i + 1) in
  Rng.shuffle rng perm_x;
  Rng.shuffle rng perm_y;
  let hidden = List.init n (fun z -> (perm_x.(z), perm_y.(z), z + 1)) in
  let seen = Hashtbl.create 16 in
  List.iter (fun triple -> Hashtbl.replace seen triple ()) hidden;
  let extras = ref [] and attempts = ref 0 in
  while List.length !extras < extra_triples && !attempts < 100 * (extra_triples + 1) do
    incr attempts;
    let triple = (Rng.int_in rng 1 n, Rng.int_in rng 1 n, Rng.int_in rng 1 n) in
    if not (Hashtbl.mem seen triple) then begin
      Hashtbl.replace seen triple ();
      extras := triple :: !extras
    end
  done;
  { n; triples = hidden @ List.rev !extras }

let random_no_promise rng ~n ~triples =
  if n < 1 then invalid_arg "Npc.random_no_promise: n must be >= 1";
  let seen = Hashtbl.create 16 in
  let out = ref [] and attempts = ref 0 in
  while List.length !out < triples && !attempts < 100 * (triples + 1) do
    incr attempts;
    let triple = (Rng.int_in rng 1 n, Rng.int_in rng 1 n, Rng.int_in rng 1 n) in
    if not (Hashtbl.mem seen triple) then begin
      Hashtbl.replace seen triple ();
      out := triple :: !out
    end
  done;
  { n; triples = List.rev !out }
