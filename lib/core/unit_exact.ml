type ureq = { id : int; ingress : int; egress : int; ts : int; tf : int }
type instance = { caps_in : int array; caps_out : int array; reqs : ureq array }

let validate inst =
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Unit_exact: negative capacity")
    inst.caps_in;
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Unit_exact: negative capacity")
    inst.caps_out;
  Array.iter
    (fun r ->
      if r.ts >= r.tf then invalid_arg "Unit_exact: empty window";
      if r.ingress < 0 || r.ingress >= Array.length inst.caps_in then
        invalid_arg "Unit_exact: bad ingress";
      if r.egress < 0 || r.egress >= Array.length inst.caps_out then
        invalid_arg "Unit_exact: bad egress")
    inst.reqs

type solution = { count : int; placements : (int * int) list; optimal : bool; nodes : int }

let time_range inst =
  Array.fold_left
    (fun (lo, hi) r -> (min lo r.ts, max hi r.tf))
    (max_int, min_int) inst.reqs

let solve ?(node_budget = 20_000_000) inst =
  validate inst;
  let n = Array.length inst.reqs in
  if n = 0 then { count = 0; placements = []; optimal = true; nodes = 0 }
  else begin
    let t_lo, t_hi = time_range inst in
    let steps = t_hi - t_lo in
    (* Deterministic order: tight windows first so the search fixes the
       constrained (reduction: "regular") requests before the flexible ones. *)
    let order = Array.copy inst.reqs in
    Array.sort
      (fun a b ->
        match Int.compare (a.tf - a.ts) (b.tf - b.ts) with
        | 0 -> Int.compare a.id b.id
        | c -> c)
      order;
    (* prev_identical.(i): index in [order] of the previous request with the
       same ports and window, or -1.  Identical requests are interchangeable;
       forcing their decisions to be monotone removes the symmetry. *)
    let prev_identical = Array.make n (-1) in
    for i = 0 to n - 1 do
      let rec find j =
        if j < 0 then -1
        else
          let a = order.(i) and b = order.(j) in
          if a.ingress = b.ingress && a.egress = b.egress && a.ts = b.ts && a.tf = b.tf then j
          else find (j - 1)
      in
      prev_identical.(i) <- find (i - 1)
    done;
    let used_in = Array.make_matrix (Array.length inst.caps_in) steps 0 in
    let used_out = Array.make_matrix (Array.length inst.caps_out) steps 0 in
    (* decision.(i): -2 undecided, -1 rejected, otherwise the chosen step. *)
    let decision = Array.make n (-2) in
    let best = ref (-1) and best_placements = ref [] and nodes = ref 0 and exhausted = ref false in
    let record accepted =
      if accepted > !best then begin
        best := accepted;
        let acc = ref [] in
        for i = 0 to n - 1 do
          if decision.(i) >= 0 then acc := (order.(i).id, decision.(i)) :: !acc
        done;
        best_placements := !acc
      end
    in
    let rec explore i accepted =
      incr nodes;
      if !nodes > node_budget then exhausted := true
      else if i = n then record accepted
      else if accepted + (n - i) <= !best then ()
      else begin
        let r = order.(i) in
        let prev = prev_identical.(i) in
        let prev_decision = if prev >= 0 then decision.(prev) else -2 in
        (* Placement branches (skipped entirely if the previous identical
           request was rejected: accepting this one instead is symmetric). *)
        if prev_decision <> -1 then begin
          let first_step = if prev_decision >= 0 then max r.ts prev_decision else r.ts in
          let step = ref first_step in
          while not !exhausted && !step < r.tf do
            let s = !step - t_lo in
            if
              used_in.(r.ingress).(s) < inst.caps_in.(r.ingress)
              && used_out.(r.egress).(s) < inst.caps_out.(r.egress)
            then begin
              used_in.(r.ingress).(s) <- used_in.(r.ingress).(s) + 1;
              used_out.(r.egress).(s) <- used_out.(r.egress).(s) + 1;
              decision.(i) <- !step;
              explore (i + 1) (accepted + 1);
              decision.(i) <- -2;
              used_in.(r.ingress).(s) <- used_in.(r.ingress).(s) - 1;
              used_out.(r.egress).(s) <- used_out.(r.egress).(s) - 1
            end;
            incr step
          done
        end;
        if not !exhausted then begin
          decision.(i) <- -1;
          explore (i + 1) accepted;
          decision.(i) <- -2
        end
      end
    in
    explore 0 0;
    {
      count = max 0 !best;
      placements = List.sort compare !best_placements;
      optimal = not !exhausted;
      nodes = !nodes;
    }
  end

let feasible inst placements =
  validate inst;
  let by_id = Hashtbl.create (Array.length inst.reqs) in
  Array.iter (fun r -> Hashtbl.replace by_id r.id r) inst.reqs;
  match time_range inst with
  | exception _ -> false
  | t_lo, t_hi ->
      let steps = t_hi - t_lo in
      if steps <= 0 then placements = []
      else begin
        let used_in = Array.make_matrix (Array.length inst.caps_in) steps 0 in
        let used_out = Array.make_matrix (Array.length inst.caps_out) steps 0 in
        let seen = Hashtbl.create 16 in
        List.for_all
          (fun (id, step) ->
            match Hashtbl.find_opt by_id id with
            | None -> false
            | Some r ->
                if Hashtbl.mem seen id then false
                else begin
                  Hashtbl.replace seen id ();
                  step >= r.ts && step < r.tf
                  &&
                  let s = step - t_lo in
                  used_in.(r.ingress).(s) <- used_in.(r.ingress).(s) + 1;
                  used_out.(r.egress).(s) <- used_out.(r.egress).(s) + 1;
                  used_in.(r.ingress).(s) <= inst.caps_in.(r.ingress)
                  && used_out.(r.egress).(s) <= inst.caps_out.(r.egress)
                end)
          placements
      end
