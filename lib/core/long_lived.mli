(** Long-lived requests — the companion problem of the paper (section 2.1
    and 3, citing Marchal et al. [13, 14]).

    A long-lived request is an indefinite flow between an ingress and an
    egress point at a constant bandwidth; there is no time dimension, the
    scheduler simply picks the largest feasible subset.  The general
    problem is NP-hard, but the paper notes the {e uniform} case
    ([bw(r) = b] for all [r]) is polynomial: it reduces to a bipartite
    degree-constrained subgraph problem, solved here by max-flow
    ({!Gridbw_flow.Dinic}). *)

type request = { id : int; ingress : int; egress : int; bw : float }

val request : id:int -> ingress:int -> egress:int -> bw:float -> request
(** Validates [bw > 0] and finite. *)

type result = {
  accepted : request list;  (** in id order *)
  rejected : request list;
}

val accepted_ids : result -> int list

val feasible : Gridbw_topology.Fabric.t -> request list -> bool
(** Σ bw through each port within its capacity (relative [1e-9] slack). *)

val optimal_uniform : Gridbw_topology.Fabric.t -> bw:float -> request list -> result
(** Maximum-cardinality feasible subset when every request demands exactly
    [bw] (relative [1e-9] tolerance; raises [Invalid_argument] otherwise).
    Builds the 3-layer flow network source → ingress (capacity
    [⌊B_in/bw⌋]) → egress ([⌊B_out/bw⌋]) → sink with one unit edge per
    request, and reads the accepted set off the integral max flow. *)

val greedy : Gridbw_topology.Fabric.t -> request list -> result
(** Non-uniform heuristic: requests sorted by increasing bandwidth (ties
    by id) and packed against live port counters. *)

val exact : ?node_budget:int -> Gridbw_topology.Fabric.t -> request list -> int * int list * bool
(** Branch-and-bound optimum [(count, sorted ids, proved_optimal)] for the
    general (NP-hard) non-uniform case; small instances only. *)
