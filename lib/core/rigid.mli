(** Heuristics for short-lived {e rigid} requests (paper, section 4).

    A rigid request has no scheduling freedom: if accepted it transmits at
    exactly [bw(r) = MinRate(r) = MaxRate(r)] over its whole window
    [\[ts, tf\]].  The scheduler only chooses {e which} requests to accept. *)

type cost_kind =
  | Cumulated
      (** Algorithm 1's cost
          [bw(r) / (b_min × priority(r, [t_i, t_i+1]))] with
          [priority = (t_i+1 - ts) / (tf - ts)] and
          [b_min = min (B_in(ingress), B_out(egress))]: favours requests
          that have already been granted more of their window *)
  | Min_bw  (** MINBW-SLOTS: [cost = bw(r)] *)
  | Min_vol  (** MINVOL-SLOTS: [cost = vol(r)] *)

val cost_name : cost_kind -> string
(** "cumulated-slots", "minbw-slots", "minvol-slots". *)

val fcfs :
  ?ctx:Runtime.ctx ->
  Gridbw_topology.Fabric.t ->
  Gridbw_request.Request.t list ->
  Types.result
(** The §4.1 FCFS baseline: requests are considered in order of their
    starting time (ties: smaller bandwidth first, then id) and accepted iff
    their whole window fits on both ports given earlier acceptances.
    Accepted requests are never revoked, but rejections are instantaneous —
    a rejected request does not delay the queue. *)

val fifo_blocking :
  ?ctx:Runtime.ctx ->
  Gridbw_topology.Fabric.t ->
  Gridbw_request.Request.t list ->
  Types.result
(** The catastrophic FIFO of Figure 4 ("FIFO lets requests block each
    other", §4.4): one scheduler serves the queue strictly in order with
    head-of-line blocking.  When the head request does not fit at its start
    time, the scheduler {e waits} for the required bandwidth to free before
    discovering the window has passed and rejecting; every request queued
    behind it whose start time elapses meanwhile is lost too.  This is the
    behaviour selective rejection (fcfs and the slot heuristics) fixes. *)

val slots :
  ?ctx:Runtime.ctx ->
  cost:cost_kind ->
  Gridbw_topology.Fabric.t ->
  Gridbw_request.Request.t list ->
  Types.result
(** Algorithm 1 (time-window decomposition).  Time is sliced at every
    request start and finish; within each slice the still-alive active
    requests are sorted by non-decreasing cost and packed greedily against
    the slice's fresh port counters; a request that fails in a slice is
    discarded permanently (reason [Port_saturated] if it never held an
    earlier slice, [Revoked] otherwise).  Requests alive through all their
    slices are accepted at [bw = MinRate], [sigma = ts]. *)

val run :
  ?ctx:Runtime.ctx ->
  [ `Fcfs | `Fifo_blocking | `Slots of cost_kind ] ->
  Gridbw_topology.Fabric.t ->
  Gridbw_request.Request.t list ->
  Types.result
(** With [obs]: every decision feeds the admission counters and (when
    tracing) the event stream.  Slot-sweep outcomes are only final after
    the whole sweep, so their trace events are stamped at the last slice
    boundary; [fifo_blocking] stamps decisions at the request's arrival
    so the stream stays chronological. *)

val heuristic_name : [ `Fcfs | `Fifo_blocking | `Slots of cost_kind ] -> string
(** "fcfs", "fifo-blocking", "cumulated-slots", ... *)
