(** On-line heuristics for short-lived {e flexible} requests (paper,
    section 5).

    GREEDY (Algorithm 2) decides the instant a request arrives.  WINDOW
    (Algorithm 3) batches the requests arriving within each [t_step]-long
    interval and packs the whole batch in increasing order of
    port-saturation cost; every accepted request still starts at its own
    arrival time ([sigma = ts]), so a longer interval buys better
    {e knowledge} (more candidates compared against each other) at the
    price of a longer response time to the user — exactly the trade-off of
    section 5.2.  {!window_deferred} is a stricter variant where a request
    cannot start before its batch is decided; see DESIGN.md (ablation A1).

    Every entry point takes the runtime context as [?ctx]
    ({!Runtime.ctx}: telemetry + durable store + span + shard); a store
    in the context journals every arrival and decision.  The packing
    kernel {!pack_batch} is the one exception — it takes the already
    merged telemetry context directly, as the fault injector drives it
    mid-revision. *)

val greedy :
  ?ctx:Runtime.ctx ->
  Gridbw_topology.Fabric.t ->
  Policy.t ->
  Gridbw_request.Request.t list ->
  Types.result
(** Algorithm 2.  Requests are processed in arrival order ([ts], ties by
    smaller [MinRate] then id, as in section 5.1); each is granted the
    policy rate at [sigma = ts] iff both its ports currently have room.
    With a store in [ctx], every arrival and decision is journaled to
    the durable store (in processing order — the property
    {!greedy_resume} relies on). *)

val greedy_resume :
  ?ctx:Runtime.ctx ->
  Gridbw_topology.Fabric.t ->
  Policy.t ->
  restored:(float * Gridbw_alloc.Allocation.t) list ->
  decided:(int -> bool) ->
  ?arrived:(int -> bool) ->
  Gridbw_request.Request.t list ->
  Types.result
(** Continue a GREEDY run recovered from a durable store
    ({!Gridbw_store.Store.recover}).  [restored] re-books the journaled
    accepted allocations with their decision times, in decision order —
    rebuilding the controller's float accumulators bit-for-bit — then the
    requests without a journaled decision are processed exactly as
    {!greedy} would have.  Because GREEDY journals in processing order,
    the journal's surviving prefix is the same run stopped early, so the
    combined result's [accepted] (restored ++ resumed, decision order)
    and its summary are bit-identical to the uninterrupted run's.
    [arrived] suppresses duplicate [Arrival] events for requests whose
    arrival survived but whose decision did not.  [rejected] only covers
    post-crash decisions.  Passing the recovering [store] journals the
    resumed decisions into the same log. *)

val window :
  ?ctx:Runtime.ctx ->
  Gridbw_topology.Fabric.t ->
  Policy.t ->
  step:float ->
  Gridbw_request.Request.t list ->
  Types.result
(** Algorithm 3 with interval length [step > 0].  The batch of interval
    [[k·step, (k+1)·step)) is packed against a time-indexed ledger:
    repeatedly take the candidate with the smallest saturation cost
    [max((used_in(ts)+bw)/B_in, (used_out(ts)+bw)/B_out)]; once the
    cheapest candidate's cost exceeds 1 the rest of the batch is rejected
    (the paper's cut).  A min-cost candidate whose whole transmission
    interval does not fit (a later reservation spike) is rejected alone —
    a refinement the instantaneous-counter formulation cannot express.
    Accepted requests transmit on [\[ts, ts + vol/bw)). *)

val window_deferred :
  ?ctx:Runtime.ctx ->
  Gridbw_topology.Fabric.t ->
  Policy.t ->
  step:float ->
  Gridbw_request.Request.t list ->
  Types.result
(** Ablation variant: decisions {e and starts} are delayed to the end of
    the arrival interval ([sigma = (k+1)·step]).  Because the start is
    delayed, rates are recomputed against the residual window and
    candidates whose deadline became unreachable are rejected with
    [Deadline_unreachable]; bandwidth of finished transfers is reclaimed
    at boundaries only.  This is what Algorithm 3 becomes without arrival
    lookahead; comparing it against {!window} quantifies how much of the
    WINDOW gain is knowledge versus batching. *)

val book_ahead :
  ?ctx:Runtime.ctx ->
  Gridbw_topology.Fabric.t ->
  Policy.t ->
  announce:(Gridbw_request.Request.t -> float) ->
  Gridbw_request.Request.t list ->
  Types.result
(** Advance reservations (the book-ahead model the paper contrasts with in
    section 6, Burchard et al. [6]): each request is {e announced}
    [announce r] seconds of lead before its start and decided in announce
    order against the time-indexed ledger — first-come-first-booked on
    future capacity.  An accepted request transmits at the policy rate on
    [\[ts, ts + vol/bw))] exactly as under GREEDY; what changes is only
    {e when} it claimed the capacity.  [announce] must be non-negative
    (raises [Invalid_argument] otherwise).  With a constant lead this is
    equivalent to {!greedy} up to the ledger's exact future accounting;
    heterogeneous leads let early bookers displace late ones. *)

(** {2 WINDOW internals, shared with the fault subsystem}

    The fault injector replays Algorithm 3 batch-by-batch while capacity
    revisions and preemptions interleave, so the batching and packing
    kernels are exposed.  They behave exactly as inside {!window}. *)

val arrival_order : Gridbw_request.Request.t list -> Gridbw_request.Request.t list
(** The processing order of {!greedy}: by arrival time, then minimum
    rate, then id. *)

val batches :
  step:float -> Gridbw_request.Request.t list -> (int * Gridbw_request.Request.t list) list
(** Group requests by the [step]-interval their arrival falls into, in
    interval order, each batch in arrival order. *)

val pack_batch :
  ?obs:Gridbw_obs.Obs.ctx ->
  ?now:float ->
  Policy.t ->
  Gridbw_alloc.Ledger.t ->
  decide:(Gridbw_request.Request.t -> Types.decision -> unit) ->
  Gridbw_request.Request.t list ->
  unit
(** Pack one batch against the ledger (min-cost order, Algorithm 3's cut),
    calling [decide] once per request.  Capacities are read from the
    ledger's {e current} fabric.

    With [obs], the pack runs under the ["pack_batch"] profiling span,
    every decision feeds the admission counters and the
    [ledger_probes_per_decision] histogram (the delta of
    {!Gridbw_alloc.Ledger.probe_count} since the previous decision), and
    trace events are stamped at [now] — the batch's decision instant,
    defaulting to the latest arrival in the batch. *)

val collect :
  Gridbw_request.Request.t list ->
  (Gridbw_request.Request.t * Types.decision) list ->
  Types.result
(** Assemble a {!Types.result} from per-request decisions (accepted and
    rejected lists keep the decision order). *)

val heuristic_name : [ `Greedy | `Window of float | `Window_deferred of float ] -> string
(** "greedy", "window(400)" or "window-deferred(400)". *)

val run :
  ?ctx:Runtime.ctx ->
  [ `Greedy | `Window of float | `Window_deferred of float ] ->
  Gridbw_topology.Fabric.t ->
  Policy.t ->
  Gridbw_request.Request.t list ->
  Types.result
