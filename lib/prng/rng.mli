(** Deterministic, splittable pseudo-random number generator.

    The generator is xoshiro256** (Blackman & Vigna), seeded through a
    splitmix64 expansion of a single [int64] seed.  Every simulation in
    gridbw takes its randomness from an explicit [Rng.t] value so that all
    experiments are reproducible from a seed printed in their output, and so
    that independent streams (arrivals, volumes, routes, ...) can be derived
    with {!split} without sharing state. *)

type t
(** Mutable generator state. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] builds a generator from [seed] (default
    [0x9E3779B97F4A7C15L]).  Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits32 : t -> int
(** 30-bit non-negative integer (compatible with [Random.bits]). *)

val int : t -> int -> int
(** [int t n] is uniform on [\[0, n)]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform on [\[0, x)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform on [\[lo, hi)]. Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)
