(** Random distributions on top of {!Rng}. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [\[lo, hi)]. *)

val exponential : Rng.t -> mean:float -> float
(** Exponential with the given mean (inter-arrival times of a Poisson
    process of rate [1 /. mean]).  Requires [mean > 0]. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson-distributed count.  Uses Knuth's product method for small means
    and a normal approximation above 30 to stay O(1). *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Gaussian via Box-Muller. *)

val pareto : Rng.t -> scale:float -> shape:float -> float
(** Pareto (heavy-tailed sizes), [scale > 0], [shape > 0]. *)

val discrete : Rng.t -> ('a * float) array -> 'a
(** Weighted choice; weights must be non-negative with a positive sum. *)

val empirical : Rng.t -> float array -> float
(** Uniform choice among the given sample values (non-empty). *)

val arrival_times : Rng.t -> rate:float -> horizon:float -> float list
(** Event times of a Poisson process of intensity [rate] on
    [\[0, horizon)], in increasing order. *)
