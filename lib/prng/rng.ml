type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let golden = 0x9E3779B97F4A7C15L

(* splitmix64 step, used only to expand seeds into full xoshiro states. *)
let splitmix64 state =
  let z = Int64.add !state golden in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed seed =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  (* xoshiro must not start from the all-zero state. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = golden; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let create ?(seed = golden) () = of_seed seed
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed (int64 t)

let bits32 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  if n = 1 then 0
  else
    (* Rejection sampling on the top bits to avoid modulo bias. *)
    let mask = Int64.of_int (n - 1) in
    if n land (n - 1) = 0 then Int64.to_int (Int64.logand (int64 t) mask)
    else
      let bound = Int64.of_int n in
      let rec draw () =
        let v = Int64.shift_right_logical (int64 t) 1 in
        let r = Int64.rem v bound in
        if Int64.sub v r > Int64.sub Int64.max_int (Int64.sub bound 1L) then draw ()
        else Int64.to_int r
      in
      draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

(* 53-bit mantissa, uniform on [0,1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float t x = unit_float t *. x

let float_in t lo hi =
  if lo > hi then invalid_arg "Rng.float_in: empty range";
  lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
