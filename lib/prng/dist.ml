let uniform rng ~lo ~hi = Rng.float_in rng lo hi

let exponential rng ~mean =
  if mean <= 0. then invalid_arg "Dist.exponential: mean must be positive";
  (* Inversion; 1 - u avoids log 0. *)
  let u = Rng.float rng 1.0 in
  -.mean *. log (1.0 -. u)

let normal rng ~mu ~sigma =
  let u1 = 1.0 -. Rng.float rng 1.0 in
  let u2 = Rng.float rng 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let poisson rng ~mean =
  if mean < 0. then invalid_arg "Dist.poisson: mean must be non-negative";
  if mean = 0. then 0
  else if mean > 30. then
    (* Normal approximation with continuity correction. *)
    let x = normal rng ~mu:mean ~sigma:(sqrt mean) in
    max 0 (int_of_float (Float.round x))
  else
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. Rng.float rng 1.0 in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0

let pareto rng ~scale ~shape =
  if scale <= 0. || shape <= 0. then invalid_arg "Dist.pareto: parameters must be positive";
  let u = 1.0 -. Rng.float rng 1.0 in
  scale /. (u ** (1.0 /. shape))

let discrete rng weighted =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 weighted in
  if total <= 0. then invalid_arg "Dist.discrete: weights must sum to a positive value";
  let x = Rng.float rng total in
  let n = Array.length weighted in
  let rec scan i acc =
    let v, w = weighted.(i) in
    let acc = acc +. w in
    if x < acc || i = n - 1 then v else scan (i + 1) acc
  in
  scan 0 0.0

let empirical rng values = Rng.choose rng values

let arrival_times rng ~rate ~horizon =
  if rate <= 0. then invalid_arg "Dist.arrival_times: rate must be positive";
  let mean = 1.0 /. rate in
  let rec loop t acc =
    let t = t +. exponential rng ~mean in
    if t >= horizon then List.rev acc else loop t (t :: acc)
  in
  loop 0.0 []
