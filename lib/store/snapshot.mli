(** Atomic JSONL snapshots of the store's state.

    A snapshot [snap-<cursor>.json] captures everything up to WAL record
    [cursor]: a meta line, the event history (one JSONL event per line —
    the same codec as the WAL payloads), and a final line with the
    {!Gridbw_alloc.Ledger.dump} image.  It is written to a dot-prefixed
    temp file, fsynced, then renamed into place, so a crash mid-write
    leaves at worst an ignorable temp file.

    Recovery loads the newest snapshot whose cursor does not exceed the
    number of valid WAL records (the store syncs the WAL before
    snapshotting, but a torn tail can still cut below a cursor); anything
    unparseable or too new is skipped in favour of an older snapshot or a
    full WAL replay. *)

type t = {
  cursor : int;  (** WAL records covered by this snapshot *)
  events : Gridbw_obs.Event.t list;  (** event history, log order *)
  ledger : Gridbw_alloc.Ledger.dump;
}

val write :
  dir:string -> cursor:int -> events:Gridbw_obs.Event.t list -> ledger:Gridbw_alloc.Ledger.dump ->
  unit

val load_latest : dir:string -> max_cursor:int -> t option
(** Newest parseable snapshot with [cursor <= max_cursor]. *)
