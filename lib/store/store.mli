(** Durable admission journal with crash recovery.

    A store directory holds a header ([store.json], written and fsynced at
    creation), a CRC-framed {!Wal} of admission-relevant events
    (arrival/accept/reject/preempt/shed/capacity-revision — the
    {!Gridbw_obs.Event_codec} binary form by default, the JSONL form when
    [config.codec = Wal.Jsonl]; recovery sniffs the form per record, so
    mixed journals replay fine), and atomic {!Snapshot}s triggered by
    accumulated log size.

    The store plugs into the telemetry plane: {!attach} wraps an
    {!Gridbw_obs.Obs.ctx} so every event the instrumented admission path
    emits is also applied to the store's in-memory state and appended to
    the WAL (tee'd with any existing trace sink).  The store's own
    counters — [store_wal_records_total], [store_fsync_total], the
    [store_fsync_batch_size] histogram, [store_snapshots_total],
    [store_recovery_records] — land in the registry the store was created
    with, so a run's [--metrics-out] Prometheus dump includes them.

    Recovery invariant: a plain GREEDY run journals its decisions in
    processing order, so {e any} valid WAL prefix is the journal of the
    same run stopped after its first [k] records.  Recovery therefore
    truncates at the first torn/CRC-failing record, rebuilds state from
    the newest usable snapshot plus the WAL tail, and a resumed run
    ({!Gridbw_core.Flexible.greedy_resume}) re-decides the lost suffix
    bit-identically — the recovered-plus-resumed summary equals the
    uninterrupted run's, byte for byte. *)

type config = {
  wal : Wal.config;
  snapshot_bytes : int;  (** write a snapshot after this many WAL bytes since the last one *)
  kill_after : int option;  (** crash-drill hook, see {!Wal.create} *)
  codec : Wal.format;
      (** framing and payload form for new WAL appends; [Binary] by
          default.  Reading back is always per-record, independent of
          this setting. *)
}

val default_config : config

type t

val create :
  ?config:config -> ?obs:Gridbw_obs.Obs.ctx -> ?time:float -> dir:string ->
  Gridbw_topology.Fabric.t -> t
(** Initialize [dir] (created if missing) as a store for [fabric]: write
    and fsync the header, then journal one [Capacity] event per port
    stamped [time] (default 0; pass a value at or before the first
    arrival to keep the event stream monotone).  The capacity prefix
    makes the journal self-contained: [gridbw replay-trace] and recovery
    read the fabric from the log itself.  [obs] supplies the metrics
    registry (its sink is not used).  Raises [Invalid_argument] if [dir]
    is already a store. *)

val exists : dir:string -> bool
(** [dir] has a store header. *)

val attach : t -> Gridbw_obs.Obs.ctx -> Gridbw_obs.Obs.ctx
(** A context that journals every emitted event into the store and tees
    to [ctx]'s sink when one is attached.  Always enabled and tracing.
    Flushing the returned context {!sync}s the store. *)

val log : t -> Gridbw_obs.Event.t -> unit
(** Apply and append one event directly (what {!attach}'s sink does).
    [Dispatch] events are not admission state and are skipped. *)

val sync : t -> unit
(** Force the group commit: flush and fsync the WAL tail now. *)

val flush : t -> unit
(** Alias of {!sync}, under the name the serving layer uses: records
    appended since the last commit are made durable {e now}, without
    waiting for the group-commit batch to fill or its delay to elapse.
    [gridbw serve] calls this once per event-loop round before
    acknowledging any admit/cancel decided in that round
    (write-ack-after-fsync): an acked decision is on disk, whatever the
    [--store-batch] setting. *)

val snapshot_now : t -> unit
(** Write a snapshot of the current state immediately (syncing the WAL
    tail first), regardless of the [snapshot_bytes] cadence.  The daemon
    snapshots on graceful shutdown so the next startup recovers without
    a full WAL replay. *)

val close : t -> unit
(** {!sync} and close the WAL. *)

val dir : t -> string

val records : t -> int
(** WAL records appended so far (global index). *)

val fabric : t -> Gridbw_topology.Fabric.t
(** Current fabric, after any journaled capacity revisions. *)

val ledger : t -> Gridbw_alloc.Ledger.t
(** The mirror ledger tracking every journaled booking — the recovered
    state that is audited before serving. *)

(** {2 Recovery} *)

type recovered = {
  store : t;  (** reopened for append, torn tail already truncated *)
  initial_fabric : Gridbw_topology.Fabric.t;  (** from the capacity prefix *)
  events : Gridbw_obs.Event.t list;  (** surviving event history, log order *)
  accepted : (float * Gridbw_alloc.Allocation.t) list;
      (** surviving bookings with their decision times, decision order *)
  decided : int -> bool;  (** request id has a journaled decision *)
  arrived : int -> bool;  (** request id has a journaled arrival *)
  snapshot_cursor : int;  (** records restored from a snapshot; 0 = full WAL replay *)
  replayed : int;  (** WAL records replayed beyond the snapshot *)
  truncated_bytes : int;  (** torn/corrupt tail bytes discarded *)
}

val recover :
  ?config:config -> ?obs:Gridbw_obs.Obs.ctx -> dir:string -> unit -> (recovered, string) result
(** Open the latest usable snapshot, replay the WAL tail, truncate at the
    first torn/CRC-failing record (later segments included), and reopen
    the log for append.  [Error] when [dir] is not a store or the log is
    cut inside the capacity prefix (no fabric to recover against).
    Callers are expected to audit [store]'s {!ledger} / [accepted]
    against {!Gridbw_check.Reference} before serving — [gridbw recover]
    does. *)
