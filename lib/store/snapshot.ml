module Json = Gridbw_obs.Json
module Event = Gridbw_obs.Event
module Ledger = Gridbw_alloc.Ledger

type t = { cursor : int; events : Event.t list; ledger : Ledger.dump }

let name cursor = Printf.sprintf "snap-%010d.json" cursor

let snap_cursor file =
  if
    String.length file = 20
    && String.sub file 0 5 = "snap-"
    && Filename.check_suffix file ".json"
  then int_of_string_opt (String.sub file 5 10)
  else None

(* --- ledger dump codec --- *)

let segments_json segs =
  Json.List
    (List.map
       (fun (s : Ledger.segment) ->
         Json.List [ Json.Num s.seg_from; Json.Num s.seg_until; Json.Num s.seg_level ])
       segs)

let ledger_json (d : Ledger.dump) =
  Json.Obj
    [
      ("ledger", Json.Num 1.);
      ("ingress", Json.List (Array.to_list (Array.map segments_json d.dump_ingress)));
      ("egress", Json.List (Array.to_list (Array.map segments_json d.dump_egress)));
    ]

let ( let* ) = Option.bind

let segment_of_json = function
  | Json.List [ a; b; c ] ->
      let* seg_from = Json.to_float a in
      let* seg_until = Json.to_float b in
      let* seg_level = Json.to_float c in
      Some { Ledger.seg_from; seg_until; seg_level }
  | _ -> None

let side_of_json j =
  match j with
  | Json.List ports ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | Json.List segs :: rest ->
            let* segs =
              List.fold_left
                (fun acc s ->
                  let* acc = acc in
                  let* s = segment_of_json s in
                  Some (s :: acc))
                (Some []) segs
            in
            go (List.rev segs :: acc) rest
        | _ -> None
      in
      let* sides = go [] ports in
      Some (Array.of_list sides)
  | _ -> None

let ledger_of_json j =
  let* _ = Json.member "ledger" j in
  let* ing = Json.member "ingress" j in
  let* egr = Json.member "egress" j in
  let* dump_ingress = side_of_json ing in
  let* dump_egress = side_of_json egr in
  Some { Ledger.dump_ingress; dump_egress }

(* --- write --- *)

let write ~dir ~cursor ~events ~ledger =
  let final = Filename.concat dir (name cursor) in
  let tmp = Filename.concat dir ("." ^ name cursor ^ ".tmp") in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let meta =
        Json.Obj
          [
            ("snap", Json.Num 1.);
            ("cursor", Json.Num (float_of_int cursor));
            ("events", Json.Num (float_of_int (List.length events)));
          ]
      in
      output_string oc (Json.to_string meta ^ "\n");
      List.iter (fun e -> output_string oc (Event.to_json e ^ "\n")) events;
      output_string oc (Json.to_string (ledger_json ledger) ^ "\n");
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp final;
  (* Persist the rename itself; not every filesystem allows fsync on a
     directory fd, hence best-effort. *)
  try
    let fd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)
  with Unix.Unix_error _ -> ()

(* --- load --- *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let load path cursor =
  match read_lines path with
  | [] | [ _ ] -> None
  | meta :: rest -> (
      let* meta = Result.to_option (Json.parse meta) in
      let* c = Option.bind (Json.member "cursor" meta) Json.to_int in
      let* n = Option.bind (Json.member "events" meta) Json.to_int in
      if c <> cursor || n <> List.length rest - 1 then None
      else
        let rec split acc = function
          | [ last ] -> Some (List.rev acc, last)
          | e :: rest -> split (e :: acc) rest
          | [] -> None
        in
        let* event_lines, ledger_line = split [] rest in
        let* events =
          List.fold_left
            (fun acc line ->
              let* acc = acc in
              let* e = Result.to_option (Event.of_line line) in
              Some (e :: acc))
            (Some []) event_lines
        in
        let* ledger = Option.bind (Result.to_option (Json.parse ledger_line)) ledger_of_json in
        Some { cursor; events = List.rev events; ledger })

let load_latest ~dir ~max_cursor =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun f ->
         match snap_cursor f with
         | Some c when c <= max_cursor -> Some (c, Filename.concat dir f)
         | _ -> None)
  |> List.sort (fun a b -> compare b a)
  |> List.find_map (fun (c, path) -> load path c)
