(** Write-ahead log with group commit and segment rotation.

    Record framing comes from {!Gridbw_wire.Frame} and is selected per
    writer:

    - [Jsonl]: the historical text line ["%08x %d %s\n"] — CRC32 of the
      payload in hex, payload byte length, payload (a single-line JSON
      event; this form never carries raw newlines).
    - [Binary] (the default): a length-prefixed binary frame — 0xB1
      magic, tag byte, little-endian length, payload, CRC32 trailer.

    Either way the framing makes every torn or corrupted tail
    detectable, and because the binary magic byte is not printable
    ASCII, readers sniff the format {e per record}: segments may mix
    both forms, so reopening an old JSONL journal with a binary writer
    (or vice versa) keeps the log replayable.

    Segments are files [wal-<index>.log] named by the global index of
    their first record, so the directory listing alone orders the log and
    no manifest is needed.

    Durability is batched (group commit): records accumulate in the
    channel buffer and the writer [fsync]s once per [batch] records, or
    sooner when the oldest unsynced record is older than [delay] seconds
    (checked on the next append), or on {!sync}/{!close}. *)

type format = Jsonl | Binary

val format_name : format -> string

type config = {
  batch : int;  (** records per fsync group; 1 = fsync every record *)
  delay : float;  (** max seconds an unsynced record may age before the next append forces a sync *)
  segment_bytes : int;  (** rotate to a new segment once the open one reaches this size *)
}

val default_config : config
(** [{ batch = 64; delay = 0.05; segment_bytes = 4 MiB }] *)

val crc32 : string -> int32
(** IEEE 802.3 CRC32 — alias of {!Gridbw_wire.Crc32.digest}. *)

val frame : string -> string
(** One [Jsonl]-framed record, newline included.  Raises
    [Invalid_argument] when the payload contains a newline. *)

val parse_frame : string -> (string, string) result
(** Validate one [Jsonl] record line (without its newline) back to its
    payload; [Error] names what broke. *)

type writer = {
  dir : string;
  config : config;
  format : format;  (** framing used for new appends *)
  on_sync : int -> unit;
  kill_after : int option;
  mutable oc : out_channel;
  mutable seg_path : string;
  mutable seg_bytes : int;
  mutable records : int;  (** global count of records appended (and on disk, modulo the unsynced tail) *)
  mutable total_bytes : int;  (** global WAL size in bytes across all segments *)
  mutable appended : int;  (** records appended since this writer was opened *)
  mutable unsynced : int;
  mutable oldest_unsynced : float;
}

val create :
  ?config:config -> ?format:format -> ?kill_after:int -> ?on_sync:(int -> unit) ->
  dir:string -> unit -> writer
(** Open a fresh log in [dir] (first segment [wal-0000000000.log]).
    [format] defaults to [Binary].  [on_sync n] is called after every
    fsync with the number of records in the synced group.  [kill_after n]
    is a crash-injection hook: the [n]th append writes only half of its
    frame, flushes, and SIGKILLs the process — a deterministically torn
    tail for recovery drills. *)

val append : writer -> string -> unit
(** Frame and buffer one payload, then group-commit per the config.
    [Jsonl] payloads must not contain a newline; [Binary] payloads are
    arbitrary bytes. *)

val sync : writer -> unit
(** Flush and fsync any unsynced records now. *)

val close : writer -> unit
(** {!sync} then close the open segment. *)

(** {2 Torn-tolerant scanning} *)

type record = {
  index : int;  (** global record index *)
  seg : string;  (** segment path *)
  off : int;  (** byte offset of the record inside its segment *)
  bytes : int;  (** framed size on disk *)
  format : format;  (** framing this record was found in *)
  payload : string;
}

type scan = {
  records : record list;  (** valid records, log order *)
  valid : int;  (** [List.length records] *)
  cut : (string * int) option;
      (** segment path and byte offset where valid data ends, when the log
          has a torn/corrupt tail; [None] for a clean log *)
  disk_bytes : int;  (** total bytes currently on disk across all segments *)
  torn : string option;  (** why scanning stopped early, when it did *)
}

val scan : dir:string -> scan
(** Read every segment in index order, sniff each record's format, and
    validate its frame.  Scanning stops at the first invalid record
    (torn frame, malformed field, length or CRC mismatch, segment-index
    gap); everything after it — including later segments — is reported
    beyond the cut. *)

val truncate : dir:string -> scan -> keep:int -> unit
(** Physically truncate the log so exactly the first [keep] valid records
    remain: later segments are deleted and the cut segment is truncated in
    place.  [keep] may be less than [scan.valid] (the store cuts earlier
    when a CRC-valid record fails event parsing). *)

val reopen :
  ?config:config -> ?format:format -> ?kill_after:int -> ?on_sync:(int -> unit) ->
  dir:string -> records:int -> unit -> writer
(** Open the (already truncated) log for append: the last remaining
    segment is continued, [records] restates the global record count.
    [format] (default [Binary]) governs new appends only — existing
    records keep whatever framing they were written with. *)
