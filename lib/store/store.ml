module Json = Gridbw_obs.Json
module Event = Gridbw_obs.Event
module Obs = Gridbw_obs.Obs
module Sink = Gridbw_obs.Sink
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Rate_profile = Gridbw_alloc.Rate_profile
module Ledger = Gridbw_alloc.Ledger

type config = {
  wal : Wal.config;
  snapshot_bytes : int;
  kill_after : int option;
  codec : Wal.format;  (* framing + payload form for new WAL appends *)
}

let default_config =
  {
    wal = Wal.default_config;
    snapshot_bytes = 4 * 1024 * 1024;
    kill_after = None;
    codec = Wal.Binary;
  }

(* WAL record payloads: JSONL journals carry the JSON text line, binary
   journals carry the bare binary event body (the WAL frame supplies
   length and CRC).  Reading back is keyed by the per-record format the
   scanner sniffed, never by the store's own codec, so mixed-format
   journals recover cleanly. *)
let payload_of_event codec ev =
  match codec with
  | Wal.Jsonl -> Event.to_json ev
  | Wal.Binary -> Gridbw_obs.Event_codec.Binary.body_of ev

let event_of_record (r : Wal.record) =
  match r.Wal.format with
  | Wal.Jsonl -> Event.of_line r.Wal.payload
  | Wal.Binary -> Gridbw_obs.Event_codec.Binary.of_body r.Wal.payload

type t = {
  dir : string;
  config : config;
  obs : Obs.ctx;
  writer : Wal.writer;
  mutable fabric : Fabric.t;
  mutable mirror : Ledger.t;
  mutable rev_events : Event.t list;
  accepted_tbl : (int, Allocation.t) Hashtbl.t;
  decided_tbl : (int, unit) Hashtbl.t;
  arrived_tbl : (int, unit) Hashtbl.t;
  mutable rev_accepted : (float * Allocation.t) list;
  mutable last_snapshot_bytes : int;
}

let header_file dir = Filename.concat dir "store.json"
let exists ~dir = Sys.file_exists (header_file dir)
let dir t = t.dir
let records t = t.writer.Wal.records
let fabric t = t.fabric
let ledger t = t.mirror

(* --- event application (shared by the live path and recovery) --- *)

let request_of ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate =
  Request.make ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate

(* Mirror bookkeeping for one allocation, profile-aware: constant-rate
   allocations move [bw] over [sigma, tau), profiled ones move each step
   separately.  [clip] drops the already-transmitted part on release
   (preemption at [time] only frees the future). *)
let release_allocation t ~clip (a : Allocation.t) =
  let req = a.Allocation.request in
  let ingress = req.Request.ingress and egress = req.Request.egress in
  match a.Allocation.profile with
  | Some p ->
      List.iter
        (fun (s : Rate_profile.seg) ->
          let from_ = Float.max clip s.from_ in
          if from_ < s.until then
            Ledger.release_interval t.mirror ~ingress ~egress ~bw:s.rate ~from_ ~until:s.until)
        (Rate_profile.segments p)
  | None ->
      let from_ = Float.max clip a.Allocation.sigma in
      if from_ < a.Allocation.tau then
        Ledger.release_interval t.mirror ~ingress ~egress ~bw:a.Allocation.bw ~from_
          ~until:a.Allocation.tau

let reserve_profile t ~ingress ~egress p =
  List.iter
    (fun (s : Rate_profile.seg) ->
      Ledger.reserve_interval t.mirror ~ingress ~egress ~bw:s.rate ~from_:s.from_
        ~until:s.until)
    (Rate_profile.segments p)

(* [ledger_effects:false] replays history whose ledger image came from a
   snapshot: tables and fabric still update, reservations do not. *)
let apply ?(ledger_effects = true) t ev =
  t.rev_events <- ev :: t.rev_events;
  match ev with
  | Event.Arrival { id; _ } -> Hashtbl.replace t.arrived_tbl id ()
  | Event.Reject { id; _ } -> Hashtbl.replace t.decided_tbl id ()
  | Event.Accept { time; id; ingress; egress; volume; ts; tf; max_rate; bw; sigma; _ } ->
      let request = request_of ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate in
      let a = Allocation.make ~request ~bw ~sigma in
      Hashtbl.replace t.decided_tbl id ();
      Hashtbl.replace t.accepted_tbl id a;
      t.rev_accepted <- (time, a) :: t.rev_accepted;
      if ledger_effects then
        Ledger.reserve_interval t.mirror ~ingress ~egress ~bw ~from_:sigma
          ~until:a.Allocation.tau
  | Event.Preempt { time; id; _ } -> (
      match Hashtbl.find_opt t.accepted_tbl id with
      | Some a when ledger_effects -> release_allocation t ~clip:time a
      | _ -> ())
  | Event.Reshape { time; id; ingress; egress; volume; ts; tf; max_rate; profile; revised; _ }
    ->
      (* One journal record = one atomic transaction: every pending
         revision plus the new admit land together or (if the record was
         torn) not at all. *)
      Array.iter
        (fun (rid, segs) ->
          match Hashtbl.find_opt t.accepted_tbl rid with
          | None -> ()
          | Some old ->
              let p = Rate_profile.of_triples segs in
              let a = Allocation.of_profile ~request:old.Allocation.request p in
              if ledger_effects then begin
                (* Revised transfers have not started yet: free the whole
                   old schedule, then book the new one. *)
                release_allocation t ~clip:Float.neg_infinity old;
                reserve_profile t ~ingress:old.Allocation.request.Request.ingress
                  ~egress:old.Allocation.request.Request.egress p
              end;
              Hashtbl.replace t.accepted_tbl rid a;
              t.rev_accepted <-
                List.map
                  (fun (tm, b) ->
                    if b.Allocation.request.Request.id = rid then (tm, a) else (tm, b))
                  t.rev_accepted)
        revised;
      let request = request_of ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate in
      let p = Rate_profile.of_triples profile in
      let a = Allocation.of_profile ~request p in
      Hashtbl.replace t.decided_tbl id ();
      Hashtbl.replace t.accepted_tbl id a;
      t.rev_accepted <- (time, a) :: t.rev_accepted;
      if ledger_effects then reserve_profile t ~ingress ~egress p
  | Event.Shed _ -> ()
  | Event.Capacity { side; port; capacity; _ } ->
      let fabric =
        match side with
        | Event.Ingress -> Fabric.with_ingress_capacity t.fabric port capacity
        | Event.Egress -> Fabric.with_egress_capacity t.fabric port capacity
      in
      t.fabric <- fabric;
      Ledger.set_fabric t.mirror fabric
  | Event.Dispatch _ -> ()

(* --- live journaling --- *)

let snapshot_now t =
  (* The snapshot must never reference records that could be lost from
     an unsynced WAL tail: commit the tail first, so a surviving
     snapshot's cursor always points into durable log. *)
  Wal.sync t.writer;
  let cursor = t.writer.Wal.records in
  Snapshot.write ~dir:t.dir ~cursor ~events:(List.rev t.rev_events)
    ~ledger:(Ledger.dump t.mirror);
  t.last_snapshot_bytes <- t.writer.Wal.total_bytes;
  Obs.count t.obs "store_snapshots_total"

let maybe_snapshot t =
  if t.writer.Wal.total_bytes - t.last_snapshot_bytes >= t.config.snapshot_bytes then
    snapshot_now t

let relevant = function Event.Dispatch _ -> false | _ -> true

let log t ev =
  if relevant ev then begin
    apply t ev;
    Wal.append t.writer (payload_of_event t.config.codec ev);
    Obs.count t.obs "store_wal_records_total";
    maybe_snapshot t
  end

let sync t = Wal.sync t.writer
let close t = Wal.close t.writer

let attach t obs =
  let sink = { Sink.emit = (fun e -> log t e); flush = (fun () -> sync t) } in
  if Obs.tracing obs then { obs with Obs.sink = Sink.tee sink obs.Obs.sink }
  else if Obs.enabled obs then { obs with Obs.sink = sink; tracing = true }
  else { t.obs with Obs.sink = sink; enabled = true; tracing = true }

(* --- creation --- *)

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

let write_header ~dir fabric =
  let path = header_file dir in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let j =
        Json.Obj
          [
            ("gridbw_store", Json.Num 1.);
            ("ingress", Json.Num (float_of_int (Fabric.ingress_count fabric)));
            ("egress", Json.Num (float_of_int (Fabric.egress_count fabric)));
          ]
      in
      output_string oc (Json.to_string j ^ "\n");
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc))

let read_header ~dir =
  let path = header_file dir in
  if not (Sys.file_exists path) then Error "not a gridbw store (missing store.json)"
  else begin
    let ic = open_in_bin path in
    let line =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> try input_line ic with End_of_file -> "")
    in
    match Json.parse line with
    | Error msg -> Error ("corrupt store header: " ^ msg)
    | Ok j -> (
        match
          ( Option.bind (Json.member "gridbw_store" j) Json.to_int,
            Option.bind (Json.member "ingress" j) Json.to_int,
            Option.bind (Json.member "egress" j) Json.to_int )
        with
        | Some 1, Some n_in, Some n_out when n_in > 0 && n_out > 0 -> Ok (n_in, n_out)
        | Some v, _, _ when v <> 1 -> Error (Printf.sprintf "unsupported store version %d" v)
        | _ -> Error "corrupt store header: missing fields")
  end

let fresh ~dir ~config ~obs ~fabric ~writer =
  {
    dir;
    config;
    obs;
    writer;
    fabric;
    mirror = Ledger.create fabric;
    rev_events = [];
    accepted_tbl = Hashtbl.create 64;
    decided_tbl = Hashtbl.create 64;
    arrived_tbl = Hashtbl.create 64;
    rev_accepted = [];
    last_snapshot_bytes = 0;
  }

let create ?(config = default_config) ?obs ?(time = 0.) ~dir fabric =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  if exists ~dir then invalid_arg ("Store.create: " ^ dir ^ " is already a store");
  mkdir_p dir;
  write_header ~dir fabric;
  let writer =
    Wal.create ~config:config.wal ~format:config.codec ?kill_after:config.kill_after
      ~on_sync:(fun n ->
        Obs.count obs "store_fsync_total";
        Obs.observe obs "store_fsync_batch_size" (float_of_int n))
      ~dir ()
  in
  let t = fresh ~dir ~config ~obs ~fabric ~writer in
  (* The capacity prefix: one Capacity event per port, making the journal
     self-contained (same convention as the fuzzer's bundles). *)
  for i = 0 to Fabric.ingress_count fabric - 1 do
    log t
      (Event.Capacity
         { time; side = Event.Ingress; port = i; capacity = Fabric.ingress_capacity fabric i })
  done;
  for e = 0 to Fabric.egress_count fabric - 1 do
    log t
      (Event.Capacity
         { time; side = Event.Egress; port = e; capacity = Fabric.egress_capacity fabric e })
  done;
  t

(* --- recovery --- *)

type recovered = {
  store : t;
  initial_fabric : Fabric.t;
  events : Event.t list;
  accepted : (float * Allocation.t) list;
  decided : int -> bool;
  arrived : int -> bool;
  snapshot_cursor : int;
  replayed : int;
  truncated_bytes : int;
}

(* The fabric described by the leading Capacity events, strict: the prefix
   must cover every header-declared port with a finite positive capacity —
   a shorter prefix means the journal was torn before the store finished
   initializing, and there is nothing to recover against. *)
let fabric_of_prefix ~n_in ~n_out events =
  let ingress = Array.make n_in nan and egress = Array.make n_out nan in
  let rec leading = function
    | Event.Capacity { side; port; capacity; _ } :: rest ->
        let a, n = match side with Event.Ingress -> (ingress, n_in) | Event.Egress -> (egress, n_out) in
        if port < 0 || port >= n then Error (Printf.sprintf "capacity prefix: port %d out of range" port)
        else begin
          a.(port) <- capacity;
          leading rest
        end
    | _ -> Ok ()
  in
  match leading events with
  | Error _ as e -> e
  | Ok () ->
      let check side a =
        let bad = ref None in
        Array.iteri
          (fun p c ->
            if !bad = None && not (Float.is_finite c && c > 0.) then
              bad := Some (Printf.sprintf "torn capacity prefix: no usable capacity for %s port %d" side p))
          a;
        !bad
      in
      (match (check "ingress" ingress, check "egress" egress) with
      | Some msg, _ | None, Some msg -> Error msg
      | None, None -> Ok (Fabric.make ~ingress ~egress))

let recover ?(config = default_config) ?obs ~dir () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  match read_header ~dir with
  | Error _ as e -> e
  | Ok (n_in, n_out) -> (
      let s = Wal.scan ~dir in
      (* A CRC-valid record that fails event parsing cuts the log exactly
         like a CRC failure would. *)
      let rec parse acc = function
        | [] -> (List.rev acc, None)
        | (r : Wal.record) :: rest -> (
            match event_of_record r with
            | Ok e -> parse (e :: acc) rest
            | Error _ -> (List.rev acc, Some r.Wal.index))
      in
      let wal_events, parse_cut = parse [] s.Wal.records in
      let keep = match parse_cut with Some k -> k | None -> s.Wal.valid in
      let kept_bytes =
        List.fold_left
          (fun acc (r : Wal.record) -> if r.Wal.index < keep then acc + r.Wal.bytes else acc)
          0 s.Wal.records
      in
      let snapshot = Snapshot.load_latest ~dir ~max_cursor:keep in
      let base_events, tail_events, snapshot_cursor, snap_ledger =
        match snapshot with
        | Some snap when List.length snap.Snapshot.events = snap.Snapshot.cursor ->
            ( snap.Snapshot.events,
              List.filteri (fun i _ -> i >= snap.Snapshot.cursor) wal_events,
              snap.Snapshot.cursor,
              Some snap.Snapshot.ledger )
        | _ -> ([], wal_events, 0, None)
      in
      let all_events = base_events @ tail_events in
      match fabric_of_prefix ~n_in ~n_out all_events with
      | Error _ as e -> e
      | Ok initial_fabric -> (
          let restore_ledger () =
            match snap_ledger with
            | None -> Ok (Ledger.create initial_fabric)
            | Some d -> (
                try Ok (Ledger.restore initial_fabric d)
                with Invalid_argument msg -> Error ("corrupt snapshot ledger: " ^ msg))
          in
          match restore_ledger () with
          | Error _ as e -> e
          | Ok mirror ->
              (* Physically drop the torn tail before reopening for append. *)
              Wal.truncate ~dir s ~keep;
              let writer =
                Wal.reopen ~config:config.wal ~format:config.codec
                  ?kill_after:config.kill_after
                  ~on_sync:(fun n ->
                    Obs.count obs "store_fsync_total";
                    Obs.observe obs "store_fsync_batch_size" (float_of_int n))
                  ~dir ~records:keep ()
              in
              let t = fresh ~dir ~config ~obs ~fabric:initial_fabric ~writer in
              t.mirror <- mirror;
              t.last_snapshot_bytes <- writer.Wal.total_bytes;
              (* Snapshot history carries no ledger effects (the dump is
                 the ledger image); the WAL tail replays in full. *)
              List.iter (fun e -> apply ~ledger_effects:false t e) base_events;
              List.iter (fun e -> apply t e) tail_events;
              Obs.count_n obs "store_recovery_records" (List.length tail_events);
              Ok
                {
                  store = t;
                  initial_fabric;
                  events = List.rev t.rev_events;
                  accepted = List.rev t.rev_accepted;
                  decided = (fun id -> Hashtbl.mem t.decided_tbl id);
                  arrived = (fun id -> Hashtbl.mem t.arrived_tbl id);
                  snapshot_cursor;
                  replayed = List.length tail_events;
                  truncated_bytes = s.Wal.disk_bytes - kept_bytes;
                }))

(* Defined last so the stdlib's channel [flush] stays visible above. *)
let flush = sync
