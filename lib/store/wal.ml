(* Write-ahead log with group commit and segment rotation.  Record
   framing is delegated to lib/wire: the historical CRC32-hex JSONL line
   ({!Gridbw_wire.Frame.Hexline}) and the length-prefixed binary frame
   (tag {!record_tag}), selected per writer via [format].  Readers sniff
   the format per record — the binary magic byte 0xB1 is not printable
   ASCII — so one segment may mix both forms (a journal created under
   one format and reopened under the other keeps replaying cleanly). *)

module Codec = Gridbw_wire.Codec
module Crc32 = Gridbw_wire.Crc32
module Frame = Gridbw_wire.Frame

type format = Jsonl | Binary

let format_name = function Jsonl -> "jsonl" | Binary -> "binary"

(* Frame tag for WAL records; the event codec owns 0x01. *)
let record_tag = 0x02

(* Compatibility wrappers over the shared implementations; the WAL was
   the original home of this CRC/framing code. *)
let crc32 = Crc32.digest

let frame payload =
  let b = Buffer.create (String.length payload + 16) in
  Frame.Hexline.encode b payload;
  Buffer.contents b

let parse_frame = Frame.Hexline.parse_frame

type config = { batch : int; delay : float; segment_bytes : int }

let default_config = { batch = 64; delay = 0.05; segment_bytes = 4 * 1024 * 1024 }

let validate_config c =
  if c.batch < 1 then invalid_arg "Wal: batch must be >= 1";
  if c.delay < 0. || not (Float.is_finite c.delay) then
    invalid_arg "Wal: delay must be non-negative and finite";
  if c.segment_bytes < 1 then invalid_arg "Wal: segment_bytes must be >= 1"

type writer = {
  dir : string;
  config : config;
  format : format;
  on_sync : int -> unit;
  kill_after : int option;
  mutable oc : out_channel;
  mutable seg_path : string;
  mutable seg_bytes : int;
  mutable records : int;
  mutable total_bytes : int;
  mutable appended : int;
  mutable unsynced : int;
  mutable oldest_unsynced : float;
}

let seg_name idx = Printf.sprintf "wal-%010d.log" idx

let seg_index name =
  if
    String.length name = 18
    && String.sub name 0 4 = "wal-"
    && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 4 10)
  else None

(* Segments in log order: (first record index, path). *)
let segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun f ->
         match seg_index f with Some i -> Some (i, Filename.concat dir f) | None -> None)
  |> List.sort compare

let open_segment path =
  open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 path

let make_writer ?(config = default_config) ?(format = Binary) ?kill_after
    ?(on_sync = fun _ -> ()) ~dir ~records ~total_bytes ~seg_path ~seg_bytes () =
  validate_config config;
  {
    dir;
    config;
    format;
    on_sync;
    kill_after;
    oc = open_segment seg_path;
    seg_path;
    seg_bytes;
    records;
    total_bytes;
    appended = 0;
    unsynced = 0;
    oldest_unsynced = 0.;
  }

let create ?config ?format ?kill_after ?on_sync ~dir () =
  let seg_path = Filename.concat dir (seg_name 0) in
  make_writer ?config ?format ?kill_after ?on_sync ~dir ~records:0 ~total_bytes:0 ~seg_path
    ~seg_bytes:0 ()

let reopen ?config ?format ?kill_after ?on_sync ~dir ~records () =
  let segs = segments dir in
  let total_bytes =
    List.fold_left (fun acc (_, p) -> acc + (Unix.stat p).Unix.st_size) 0 segs
  in
  let seg_path, seg_bytes =
    match List.rev segs with
    | (_, p) :: _ -> (p, (Unix.stat p).Unix.st_size)
    | [] -> (Filename.concat dir (seg_name records), 0)
  in
  make_writer ?config ?format ?kill_after ?on_sync ~dir ~records ~total_bytes ~seg_path
    ~seg_bytes ()

let sync w =
  if w.unsynced > 0 then begin
    flush w.oc;
    Unix.fsync (Unix.descr_of_out_channel w.oc);
    w.on_sync w.unsynced;
    w.unsynced <- 0
  end

let rotate w =
  sync w;
  close_out w.oc;
  let path = Filename.concat w.dir (seg_name w.records) in
  w.oc <- open_segment path;
  w.seg_path <- path;
  w.seg_bytes <- 0

let append w payload =
  let b = Buffer.create (String.length payload + 24) in
  (match w.format with
  | Jsonl -> Frame.Hexline.encode b payload
  | Binary -> Frame.add b ~tag:record_tag payload);
  let framed = Buffer.contents b in
  (match w.kill_after with
  | Some n when w.appended + 1 >= n ->
      (* Crash drill: leave a genuinely torn record on disk and die the
         way a SIGKILLed writer does — no flush, no close. *)
      output_string w.oc (String.sub framed 0 (String.length framed / 2));
      flush w.oc;
      Unix.kill (Unix.getpid ()) Sys.sigkill
  | _ -> ());
  output_string w.oc framed;
  w.records <- w.records + 1;
  w.appended <- w.appended + 1;
  w.seg_bytes <- w.seg_bytes + String.length framed;
  w.total_bytes <- w.total_bytes + String.length framed;
  w.unsynced <- w.unsynced + 1;
  if w.unsynced = 1 then w.oldest_unsynced <- Unix.gettimeofday ();
  if w.unsynced >= w.config.batch || Unix.gettimeofday () -. w.oldest_unsynced >= w.config.delay
  then sync w;
  if w.seg_bytes >= w.config.segment_bytes then rotate w

let close w =
  sync w;
  close_out w.oc

(* --- torn-tolerant scanning --- *)

type record = {
  index : int;
  seg : string;
  off : int;
  bytes : int;
  format : format;
  payload : string;
}

type scan = {
  records : record list;
  valid : int;
  cut : (string * int) option;
  disk_bytes : int;
  torn : string option;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Decode one record at [pos], sniffing its format from the first byte. *)
let decode_record content ~pos : (format * string) Codec.decoded =
  if Frame.is_binary content.[pos] then
    match Frame.decode content ~pos with
    | Codec.Value ((tag, payload), next) ->
        if tag <> record_tag then
          Corrupt (Printf.sprintf "unexpected frame tag %d in WAL" tag)
        else Value ((Binary, payload), next)
    | Incomplete -> Incomplete
    | Corrupt msg -> Corrupt msg
  else
    match Frame.Hexline.decode content ~pos with
    | Codec.Value (payload, next) -> Value ((Jsonl, payload), next)
    | Incomplete -> Incomplete
    | Corrupt msg -> Corrupt msg

let scan ~dir =
  let segs = segments dir in
  let disk_bytes = List.fold_left (fun acc (_, p) -> acc + (Unix.stat p).Unix.st_size) 0 segs in
  let records = ref [] in
  let index = ref 0 in
  let cut = ref None in
  let torn = ref None in
  let stop seg off reason =
    cut := Some (seg, off);
    torn := Some reason
  in
  (try
     List.iter
       (fun (start, seg) ->
         if start <> !index then begin
           (* A gap (or an unexpected first index) orphans this and every
              later segment. *)
           stop seg 0 (Printf.sprintf "segment starts at record %d, expected %d" start !index);
           raise Exit
         end;
         let content = read_file seg in
         let len = String.length content in
         let pos = ref 0 in
         while !pos < len do
           match decode_record content ~pos:!pos with
           | Codec.Value ((format, payload), next) ->
               records :=
                 {
                   index = !index;
                   seg;
                   off = !pos;
                   bytes = next - !pos;
                   format;
                   payload;
                 }
                 :: !records;
               incr index;
               pos := next
           | Incomplete ->
               stop seg !pos "torn record at end of segment";
               raise Exit
           | Corrupt reason ->
               stop seg !pos reason;
               raise Exit
         done)
       segs
   with Exit -> ());
  { records = List.rev !records; valid = !index; cut = !cut; disk_bytes; torn = !torn }

let truncate_file path size =
  if (Unix.stat path).Unix.st_size <> size then
    if size = 0 then Sys.remove path else Unix.truncate path size

let truncate ~dir s ~keep =
  if keep > s.valid then invalid_arg "Wal.truncate: keep exceeds valid records";
  let records = Array.of_list s.records in
  let boundary =
    if keep < s.valid then Some (records.(keep).seg, records.(keep).off)
    else s.cut (* keep everything valid; only the torn tail goes *)
  in
  match boundary with
  | None -> ()
  | Some (seg, off) ->
      List.iter
        (fun (_, path) ->
          if path > seg then Sys.remove path else if path = seg then truncate_file path off)
        (segments dir)
