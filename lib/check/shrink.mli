(** Counterexample minimization.

    Greedy delta-debugging over the two scenario inputs that matter — the
    request list and the fault script: repeatedly drop contiguous chunks
    (halves, then quarters, … down to single elements) while the failure
    predicate keeps holding, then iterate the two passes to a fixpoint.
    The predicate re-runs the harness, so minimization cost is bounded by
    [rounds] full passes; failures found on 50-request scenarios typically
    shrink to a handful of requests. *)

val shrink_list : fails:('a list -> bool) -> 'a list -> 'a list
(** Smallest sublist (by the chunk-removal walk) on which [fails] still
    holds.  [fails] is assumed true of the input. *)

val minimize : ?rounds:int -> fails:(Scenario.t -> bool) -> Scenario.t -> Scenario.t
(** Shrink [requests] then [faults], up to [rounds] (default 3) alternating
    passes.  Returns the input unchanged if it does not fail. *)
