module Rng = Gridbw_prng.Rng
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Trace = Gridbw_workload.Trace
module Spec = Gridbw_workload.Spec
module Scheduler = Gridbw_core.Scheduler
module Json = Gridbw_obs.Json
module Obs = Gridbw_obs.Obs
module Sink = Gridbw_obs.Sink
module Event = Gridbw_obs.Event

type failure = { scenario : Scenario.t; findings : Harness.finding list }
type outcome = { scenarios : int; failures : failure list }

(* Scenario seeds march in a fixed odd stride from the base seed, so any
   scenario index reproduces without replaying the ones before it. *)
let scenario_seed base i = Int64.add base (Int64.mul 1000003L (Int64.of_int (i + 1)))

let run ?engines ?(families = Scenario.families) ?(min_size = 5) ?(max_size = 45)
    ?(log = fun _ -> ()) ~budget ~seed () =
  let failures = ref [] in
  let nf = max 1 (List.length families) in
  for i = 0 to budget - 1 do
    let family = List.nth families (i mod nf) in
    let sseed = scenario_seed seed i in
    let span = Int64.of_int (max 1 (max_size - min_size + 1)) in
    let size = min_size + Int64.to_int (Int64.rem (Int64.logand sseed 0x7FFFFFFFFFFFL) span) in
    let sc = Scenario.generate ~family ~seed:sseed ~size in
    match Harness.check ?engines sc with
    | [] -> ()
    | findings ->
        log
          (Format.asprintf "scenario %d (%a): %d finding(s); minimizing" i Scenario.pp sc
             (List.length findings));
        (* Shrink against the engine that broke when it is identifiable
           and not script-bound (a fault engine captures the original
           script, so shrinking under it would be misleading). *)
        let narrowed =
          match findings with
          | { Harness.engine = name; _ } :: _ when not (String.starts_with ~prefix:"faulty-" name)
            -> (
              let pool = match engines with Some es -> es | None -> Harness.engines_for sc in
              match Scheduler.find pool name with Some e -> Some [ e ] | None -> engines)
          | _ -> engines
        in
        let fails s = Harness.check ?engines:narrowed s <> [] in
        let minimized = Shrink.minimize ~fails sc in
        let final = Harness.check ?engines:narrowed minimized in
        failures := { scenario = minimized; findings = final } :: !failures
  done;
  { scenarios = budget; failures = List.rev !failures }

(* --- counterexample bundles --- *)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let inner_of ~prefix s =
  if String.starts_with ~prefix s && String.ends_with ~suffix:")" s then
    Some (String.sub s (String.length prefix) (String.length s - String.length prefix - 1))
  else None

let replay_hint name =
  let base h = Printf.sprintf "gridbw run --trace workload.csv --heuristic %s" h in
  let policy_arg p =
    if p = "minrate" then Some "minrate"
    else if String.starts_with ~prefix:"f=" p then
      Some (String.sub p 2 (String.length p - 2))
    else None
  in
  (* "malleable(ba=7,no-reshape)" → the flag spelling of each option;
     "malleable-constant" is a parity fixture with no CLI spelling. *)
  let malleable_args inner =
    List.fold_left
      (fun acc opt ->
        match acc with
        | None -> None
        | Some flags ->
            if opt = "no-reshape" then Some (flags ^ " --no-reshape")
            else if String.starts_with ~prefix:"ba=" opt then
              Some (flags ^ " --book-ahead " ^ String.sub opt 3 (String.length opt - 3))
            else None)
      (Some "") (String.split_on_char ',' inner)
  in
  match String.split_on_char '/' name with
  | [ "malleable" ] -> Some (base "malleable")
  | [ head ] when String.starts_with ~prefix:"malleable(" head -> (
      match inner_of ~prefix:"malleable(" head with
      | None -> None
      | Some inner -> Option.map (fun flags -> base "malleable" ^ flags) (malleable_args inner))
  | [ "fcfs" ] -> Some (base "fcfs")
  | [ "fifo-blocking" ] -> Some (base "fifo")
  | [ "cumulated-slots" ] -> Some (base "cumulated")
  | [ "minbw-slots" ] -> Some (base "minbw")
  | [ "minvol-slots" ] -> Some (base "minvol")
  | [ head; pol ] -> (
      match policy_arg pol with
      | None -> None
      | Some p ->
          if head = "greedy" then Some (Printf.sprintf "%s --policy %s" (base "greedy") p)
          else (
            match (inner_of ~prefix:"window(" head, inner_of ~prefix:"window-deferred(" head) with
            | Some step, _ ->
                Some (Printf.sprintf "%s --step %s --policy %s" (base "window") step p)
            | None, Some step ->
                Some (Printf.sprintf "%s --step %s --policy %s" (base "window-deferred") step p)
            | None, None -> None))
  | _ -> None

(* The bundle's JSONL opens with one Capacity event per port: the trace
   then carries its own fabric and [gridbw replay-trace] rebuilds the
   exact summary without assuming the paper topology. *)
let write_events path (sc : Scenario.t) sched =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let obs = Obs.create ~sink:(Sink.jsonl oc) () in
      let t0 =
        List.fold_left (fun acc (r : Request.t) -> Float.min acc r.Request.ts) 0.0
          sc.Scenario.requests
      in
      let fabric = sc.Scenario.fabric in
      for i = 0 to Fabric.ingress_count fabric - 1 do
        Obs.emit obs
          (Event.Capacity
             { time = t0; side = Event.Ingress; port = i;
               capacity = Fabric.ingress_capacity fabric i })
      done;
      for e = 0 to Fabric.egress_count fabric - 1 do
        Obs.emit obs
          (Event.Capacity
             { time = t0; side = Event.Egress; port = e;
               capacity = Fabric.egress_capacity fabric e })
      done;
      ignore (Scheduler.run ~ctx:(Gridbw_core.Runtime.make ~obs ()) sched (Spec.for_replay fabric) sc.Scenario.requests);
      Obs.flush obs)

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_bundle ?engines ~dir ~index failure =
  let sc = failure.scenario in
  let case = Filename.concat dir (Printf.sprintf "case-%d" index) in
  mkdir_p case;
  Trace.to_file (Filename.concat case "workload.csv") sc.Scenario.requests;
  let engine_name =
    match failure.findings with f :: _ -> f.Harness.engine | [] -> "unknown"
  in
  let pool = Option.value engines ~default:[] @ Harness.engines_for sc in
  let traced =
    sc.Scenario.faults = []
    &&
    match Scheduler.find pool engine_name with
    | Some sched ->
        write_events (Filename.concat case "events.jsonl") sc sched;
        true
    | None -> false
  in
  let caps count cap = Json.List (List.init count (fun i -> Json.Num (cap i))) in
  let replay =
    (if traced then [ ("replay_trace", Json.Str "gridbw replay-trace events.jsonl") ] else [])
    @
    match replay_hint engine_name with
    | Some cmd -> [ ("run", Json.Str (cmd ^ "  # note: run uses the paper fabric, not meta.fabric") ) ]
    | None -> []
  in
  let meta =
    Json.Obj
      [ ("family", Json.Str (Scenario.family_name sc.Scenario.family));
        ("seed", Json.Str (Int64.to_string sc.Scenario.seed));
        ("size", Json.Num (float_of_int sc.Scenario.size));
        ("engine", Json.Str engine_name);
        ("findings",
         Json.List
           (List.map
              (fun (f : Harness.finding) ->
                Json.Obj
                  [ ("engine", Json.Str f.Harness.engine); ("check", Json.Str f.Harness.check);
                    ("detail", Json.Str f.Harness.detail) ])
              failure.findings));
        ("fabric",
         Json.Obj
           [ ("ingress",
              caps (Fabric.ingress_count sc.Scenario.fabric)
                (Fabric.ingress_capacity sc.Scenario.fabric));
             ("egress",
              caps (Fabric.egress_count sc.Scenario.fabric)
                (Fabric.egress_capacity sc.Scenario.fabric)) ]);
        ("faults", Scenario.faults_to_json sc.Scenario.faults);
        ("replay", Json.Obj replay) ]
  in
  write_file (Filename.concat case "meta.json") (Json.to_string meta ^ "\n");
  case
