(** Differential conformance harness.

    Drives every {!Gridbw_core.Scheduler.S} implementation over a
    {!Scenario}, cross-checks each run against the {!Reference} model
    {e and} {!Gridbw_metrics.Validate} (two independent oracles that must
    agree), and applies metamorphic properties that hold for the shipped
    engines by construction:

    - {b M1 determinism} — two runs on identical input take identical
      decisions (all engines; catches hidden state).
    - {b M2 permutation invariance} — every engine sorts its input into
      arrival order with total [(ts, MinRate, id)] tie-breaking, so a
      shuffled request list must yield the same decisions.
    - {b M3 ×2 scaling} — doubling every capacity, volume and rate cap is
      exact in binary floating point and preserves every comparison the
      engines make, so decisions are identical with bandwidths exactly
      doubled ({!Scenario.scale2}).
    - {b M4 accepted-subset stability} — for GREEDY, WINDOW and FCFS,
      feeding back only the accepted requests re-accepts all of them with
      identical allocations (rejected requests never touched the ledger).
      Not applied to slot sweeps (slice boundaries come from every
      request) nor blocking FIFO (rejected requests occupy the queue).
    - {b M5 empty-script injector parity} — the fault injector with no
      fault events must be bit-identical to the fault-free GREEDY /
      WINDOW runs.

    Note what is {e not} here: capacity monotonicity of the accept count.
    It sounds plausible but is false for greedy admission — added capacity
    can admit one large early request that displaces two small later ones
    — so asserting it would "catch" correct engines.

    Fault runs are audited at the service level ({!Reference.audit_services}
    under the script's revised capacities): once preemption recycles a
    reservation, the initial admission set is no longer statically
    checkable against the nominal fabric.  The service audit applies to
    the GREEDY injector only — WINDOW inherits retroactive booking (a
    batch boundary books transfers over already-elapsed intervals against
    the fabric as of the boundary), so its recorded services may
    legitimately overlap a past degradation; it is checked on outcome
    bookkeeping and per-request admission constraints instead, matching
    the contract in {!Gridbw_fault.Injector}. *)

type finding = { engine : string; check : string; detail : string }

val pp_finding : Format.formatter -> finding -> unit

val default_step : float
(** WINDOW batching step used by the harness engines (11 s — several
    batches across a scenario's 0–100 s horizon). *)

val engines_for : Scenario.t -> Gridbw_core.Scheduler.t list
(** {!Gridbw_core.Scheduler.shipped} with {!default_step}, plus the
    injector's GREEDY / WINDOW variants bound to the scenario's fault
    script when it has one. *)

val check_scheduler : Scenario.t -> Gridbw_core.Scheduler.t -> finding list
(** Oracle checks and the engine-local metamorphic properties (M1–M4,
    selected by engine) for one scheduler on one scenario. *)

val check_faulted : Scenario.t -> finding list
(** Deep injector checks when the scenario carries a fault script:
    service-level capacity audit under revisions, per-request window/rate
    constraints on initial admissions, outcome bookkeeping. *)

val check_parity : Scenario.t -> finding list
(** M5: empty-script injector runs against their fault-free twins. *)

val check_sharded : Scenario.t -> finding list
(** Differential replay against the sharded multicore engine
    ({!Gridbw_shard.Engine}, [spawn:false], 2 and 3 shards): arrivals and
    preempts are merged into one time-ordered timeline and driven op for
    op through the sharded engine and a single-shard [Online] ledger;
    every decision, every cancel outcome, every settled port counter and
    the active-transfer count must agree bit for bit.  The
    [cross-shard-storm] family exists to feed this check shard-straddling
    cancel-heavy load; applies to any scenario whose fault script is
    preempt-only (degrades revise capacities, which the sharded engine
    has no verb for). *)

val check_long_lived : seed:int64 -> size:int -> finding list
(** Differential checks for the long-lived solvers: greedy feasibility,
    [optimal_uniform] dominance over greedy on uniform instances, and
    branch-and-bound agreement on tiny instances. *)

val check : ?engines:Gridbw_core.Scheduler.t list -> Scenario.t -> finding list
(** Everything above for one scenario.  [engines] overrides
    {!engines_for} (used to fuzz a single engine, or a deliberately broken
    one from the test suite). *)
