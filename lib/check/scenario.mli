(** Adversarial workload scenarios for the conformance harness.

    Each family stresses a regime where the heuristics' feasibility
    bookkeeping is most likely to crack: all demand funnelled through one
    port, deadlines with almost no slack, [MinRate ≈ MaxRate] knife-edge
    rates, and fault scripts that revise capacities while transfers are in
    flight.  Generation is driven by the repo's own deterministic
    {!Gridbw_prng.Rng}, so a scenario is fully reproducible from
    [(family, seed, size)] — which is also all a counterexample bundle
    needs to record.

    The per-request draw ({!random_request}) is shared with the test
    suite's qcheck arbitraries and the examples, so there is exactly one
    definition of "a random valid request" in the tree. *)

type family =
  | Hotspot_skew  (** heterogeneous fabric, ~70 % of requests through port 0 *)
  | Deadline_tight  (** window slack uniform in [1, 1.05] *)
  | Near_rigid  (** [MaxRate] within 1 + 1e-9 of [MinRate] *)
  | Revision_storm  (** mixed workload under an aggressive fault script *)
  | Cross_shard_storm
      (** hotspot pairs pinned to ports 0/1 — distinct shard owners under
          every partitioning — plus a cancel-heavy preempt script; feeds
          {!Harness.check_sharded}'s differential against the sharded
          engine *)
  | Reshape_storm
      (** arrivals in bursts whose transfer windows overlap, slack in
          [1.3, 1.5], ~50 % hotspot routing, no faults — a booking engine
          holds several admitted-but-not-yet-started profiles exactly when
          a burst's later members are decided, so the MALLEABLE engine's
          admission-time reshaping fires constantly *)
  | Mixed  (** a blend of the above draws on a uniform fabric *)

type t = {
  family : family;
  seed : int64;
  size : int;
  fabric : Gridbw_topology.Fabric.t;
  requests : Gridbw_request.Request.t list;
  faults : Gridbw_fault.Fault.event list;
      (** empty except for [Revision_storm] (degrades, aborts, preempts)
          and [Cross_shard_storm] (preempts only) *)
}

val families : family list
val family_name : family -> string
val family_of_name : string -> family option

val random_request :
  Gridbw_prng.Rng.t ->
  Gridbw_topology.Fabric.t ->
  ?hot:float ->
  ?slack_hi:float ->
  id:int ->
  unit ->
  Gridbw_request.Request.t
(** One valid request on [fabric]: window within [\[0, 100\]], min-rate up
    to the smaller port capacity.  [hot] is the probability of routing
    through port 0 on both sides (default 0), [slack_hi] the upper bound
    of the [MaxRate/MinRate] draw (default 4). *)

val generate : family:family -> seed:int64 -> size:int -> t
(** The scenario is a pure function of its three parameters. *)

val with_requests : t -> Gridbw_request.Request.t list -> t
val with_faults : t -> Gridbw_fault.Fault.event list -> t
(** Shrinking steps: same scenario, smaller inputs. *)

val scale2 : t -> t
(** Every capacity, volume and rate doubled — ×2 is exact in binary
    floating point, so a conforming deterministic engine must take
    identical decisions with doubled bandwidths (metamorphic check M3). *)

val faults_to_json : Gridbw_fault.Fault.event list -> Gridbw_obs.Json.t
val faults_of_json : Gridbw_obs.Json.t -> (Gridbw_fault.Fault.event list, string) result
(** Fault-script persistence for counterexample bundles ([meta.json]);
    floats round-trip bit-exactly via {!Gridbw_obs.Json}. *)

val pp : Format.formatter -> t -> unit
