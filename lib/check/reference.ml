module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Types = Gridbw_core.Types
module Validate = Gridbw_metrics.Validate
module Hotspot = Gridbw_metrics.Hotspot
module Fault = Gridbw_fault.Fault
module Injector = Gridbw_fault.Injector
module Rate_profile = Gridbw_alloc.Rate_profile

type side = Hotspot.side

type violation =
  | Inconsistent of string
  | Bad_route of { id : int; ingress : int; egress : int }
  | Early_start of { id : int; sigma : float; ts : float }
  | Rate_above_cap of { id : int; bw : float; max_rate : float }
  | Deadline_miss of { id : int; tau : float; tf : float }
  | Duplicate of { id : int }
  | Port_overload of { side : side; port : int; at : float; usage : float; capacity : float }
  | Volume_mismatch of { id : int; integral : float; volume : float }

(* Deliberately naive interval arithmetic: usage at an instant is a plain
   sum over every allocation covering it, and the sweep probes every
   interval endpoint.  Piecewise-constant right-continuous usage attains
   its maximum at an endpoint, so probing endpoints is exhaustive. *)

let within used cap slack = used <= (cap *. (1. +. slack)) +. slack *. 1e-3

let port_overloads ~slack ~capacity intervals =
  (* [intervals]: (from, until, bw) commitments of one port. *)
  let probes = List.concat_map (fun (f, u, _) -> [ f; u ]) intervals in
  let usage_at t =
    List.fold_left (fun acc (f, u, bw) -> if f <= t && t < u then acc +. bw else acc) 0.0 intervals
  in
  List.fold_left
    (fun worst t ->
      let u = usage_at t in
      if within u capacity slack then worst
      else
        match worst with Some (_, w) when w >= u -> worst | _ -> Some (t, u))
    None probes

let audit_allocations ?(slack = 1e-9) fabric allocations =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (a : Allocation.t) ->
      let r = a.Allocation.request in
      let id = r.Request.id in
      if Hashtbl.mem seen id then add (Duplicate { id }) else Hashtbl.replace seen id ();
      if
        not
          (Fabric.valid_ingress fabric r.Request.ingress
          && Fabric.valid_egress fabric r.Request.egress)
      then add (Bad_route { id; ingress = r.Request.ingress; egress = r.Request.egress });
      if a.Allocation.sigma < r.Request.ts -. 1e-12 then
        add (Early_start { id; sigma = a.Allocation.sigma; ts = r.Request.ts });
      if a.Allocation.bw > r.Request.max_rate *. (1. +. slack) then
        add (Rate_above_cap { id; bw = a.Allocation.bw; max_rate = r.Request.max_rate });
      (* profiled (malleable) allocations: the step peak obeys the host
         cap and the Kahan integral is the volume, bit for bit *)
      (match a.Allocation.profile with
      | None -> ()
      | Some p ->
          let peak = Rate_profile.peak p in
          if peak > r.Request.max_rate *. (1. +. slack) then
            add (Rate_above_cap { id; bw = peak; max_rate = r.Request.max_rate });
          let integral = Rate_profile.integral p in
          if integral <> r.Request.volume then
            add (Volume_mismatch { id; integral; volume = r.Request.volume }));
      if a.Allocation.tau > (r.Request.tf *. (1. +. slack)) +. slack then
        add (Deadline_miss { id; tau = a.Allocation.tau; tf = r.Request.tf }))
    allocations;
  let routed =
    List.filter
      (fun (a : Allocation.t) ->
        let r = a.Allocation.request in
        Fabric.valid_ingress fabric r.Request.ingress && Fabric.valid_egress fabric r.Request.egress)
      allocations
  in
  let commitments (a : Allocation.t) =
    match a.Allocation.profile with
    | Some p ->
        List.map
          (fun (s : Rate_profile.seg) ->
            (s.Rate_profile.from_, s.Rate_profile.until, s.Rate_profile.rate))
          (Rate_profile.segments p)
    | None -> [ (a.Allocation.sigma, a.Allocation.tau, a.Allocation.bw) ]
  in
  let sweep side count capacity_of port_of =
    for port = 0 to count - 1 do
      let intervals =
        List.concat_map
          (fun (a : Allocation.t) ->
            if port_of a.Allocation.request = port then commitments a else [])
          routed
      in
      match port_overloads ~slack ~capacity:(capacity_of port) intervals with
      | Some (at, usage) ->
          add (Port_overload { side; port; at; usage; capacity = capacity_of port })
      | None -> ()
    done
  in
  sweep Hotspot.Ingress (Fabric.ingress_count fabric)
    (Fabric.ingress_capacity fabric)
    (fun r -> r.Request.ingress);
  sweep Hotspot.Egress (Fabric.egress_count fabric)
    (Fabric.egress_capacity fabric)
    (fun r -> r.Request.egress);
  List.rev !violations

let audit ?slack fabric ~trace (result : Types.result) =
  let ids l = List.sort Int.compare (List.map (fun (r : Request.t) -> r.Request.id) l) in
  let bookkeeping =
    if ids trace <> ids result.Types.all then
      [ Inconsistent "result.all does not carry the trace's request ids" ]
    else if not (Types.is_consistent result) then
      [ Inconsistent "accepted/rejected do not partition the trace" ]
    else []
  in
  bookkeeping @ audit_allocations ?slack fabric result.Types.accepted

(* --- capacity under revisions --- *)

(* Must match the injector's residual for full outages (factor = 0). *)
let outage_floor = 1e-6

let capacity_at fabric script side port t =
  let nominal =
    match side with
    | Hotspot.Ingress -> Fabric.ingress_capacity fabric port
    | Hotspot.Egress -> Fabric.egress_capacity fabric port
  in
  let fault_side = match side with Hotspot.Ingress -> Fault.Ingress | Hotspot.Egress -> Fault.Egress in
  List.fold_left
    (fun cap ev ->
      match ev with
      | Fault.Degrade { side = s; port = p; factor; from_; until }
        when s = fault_side && p = port && from_ <= t && t < until ->
          Float.max (factor *. nominal) outage_floor
      | _ -> cap)
    nominal script

let audit_services ?(slack = 1e-9) fabric script (services : Injector.service list) =
  let probes =
    List.concat_map (fun (s : Injector.service) -> [ s.Injector.s_from; s.Injector.s_until ]) services
    @ List.concat_map
        (function Fault.Degrade { from_; until; _ } -> [ from_; until ] | _ -> [])
        script
    |> List.sort_uniq Float.compare
  in
  let violations = ref [] in
  let sweep side count port_of =
    for port = 0 to count - 1 do
      let worst =
        List.fold_left
          (fun worst t ->
            let usage =
              List.fold_left
                (fun acc (s : Injector.service) ->
                  if port_of s = port && s.Injector.s_from <= t && t < s.Injector.s_until then
                    acc +. s.Injector.s_bw
                  else acc)
                0.0 services
            in
            let cap = capacity_at fabric script side port t in
            if within usage cap slack then worst
            else match worst with Some (_, _, w) when w >= usage -> worst | _ -> Some (t, cap, usage))
          None probes
      in
      match worst with
      | Some (at, capacity, usage) ->
          violations := Port_overload { side; port; at; usage; capacity } :: !violations
      | None -> ()
    done
  in
  sweep Hotspot.Ingress (Fabric.ingress_count fabric) (fun s -> s.Injector.s_ingress);
  sweep Hotspot.Egress (Fabric.egress_count fabric) (fun s -> s.Injector.s_egress);
  List.rev !violations

(* --- oracle-vs-oracle agreement --- *)

let same_constraint (v : Validate.violation) (w : violation) =
  match (v, w) with
  | Validate.Port_overload { side; port; _ }, Port_overload { side = s; port = p; _ } ->
      side = s && port = p
  | Validate.Deadline_miss { request_id; _ }, Deadline_miss { id; _ } -> request_id = id
  | Validate.Rate_above_max { request_id; _ }, Rate_above_cap { id; _ } -> request_id = id
  | Validate.Start_before_request { request_id; _ }, Early_start { id; _ } -> request_id = id
  | Validate.Bad_route { request_id; _ }, Bad_route { id; _ } -> request_id = id
  | Validate.Duplicate_request { request_id }, Duplicate { id } -> request_id = id
  | Validate.Volume_mismatch { request_id; _ }, Volume_mismatch { id; _ } -> request_id = id
  | _ -> false

let agrees vs ws =
  let ws' = List.filter (function Inconsistent _ -> false | _ -> true) ws in
  List.for_all (fun v -> List.exists (same_constraint v) ws') vs
  && List.for_all (fun w -> List.exists (fun v -> same_constraint v w) vs) ws'

let pp_violation ppf = function
  | Inconsistent msg -> Format.fprintf ppf "inconsistent decision stream: %s" msg
  | Bad_route { id; ingress; egress } ->
      Format.fprintf ppf "request %d routed on unknown ports (%d -> %d)" id ingress egress
  | Early_start { id; sigma; ts } ->
      Format.fprintf ppf "request %d starts at %.3f before its request time %.3f" id sigma ts
  | Rate_above_cap { id; bw; max_rate } ->
      Format.fprintf ppf "request %d granted %.3f MB/s above its host cap %.3f" id bw max_rate
  | Deadline_miss { id; tau; tf } ->
      Format.fprintf ppf "request %d finishes at %.3f, after its deadline %.3f" id tau tf
  | Duplicate { id } -> Format.fprintf ppf "request %d allocated more than once" id
  | Port_overload { side; port; at; usage; capacity } ->
      Format.fprintf ppf "%s port %d overloaded at t=%.3f: %.3f > %.3f MB/s"
        (match side with Hotspot.Ingress -> "ingress" | Hotspot.Egress -> "egress")
        port at usage capacity
  | Volume_mismatch { id; integral; volume } ->
      Format.fprintf ppf "request %d profile integrates to %.17g, volume is %.17g" id integral
        volume

let describe v = Format.asprintf "%a" pp_violation v
