module Rng = Gridbw_prng.Rng
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Spec = Gridbw_workload.Spec
module Types = Gridbw_core.Types
module Scheduler = Gridbw_core.Scheduler
module Policy = Gridbw_core.Policy
module Long_lived = Gridbw_core.Long_lived
module Validate = Gridbw_metrics.Validate
module Injector = Gridbw_fault.Injector
module Fault = Gridbw_fault.Fault
module Online = Gridbw_core.Online
module Port = Gridbw_alloc.Port
module Shard_engine = Gridbw_shard.Engine
module Malleable = Gridbw_malleable.Malleable

type finding = { engine : string; check : string; detail : string }

let pp_finding ppf f = Format.fprintf ppf "[%s] %s: %s" f.engine f.check f.detail
let default_step = 11.0

let run_on sched fabric requests = Scheduler.run sched (Spec.for_replay fabric) requests

(* A run's decision stream, order-independent: accepted (id, bw, sigma,
   tau) and rejected (id, reason), both sorted.  Two conforming runs are
   compared on exact float equality — the metamorphic properties below
   hold exactly, not approximately. *)
let alloc_sig (a : Allocation.t) =
  (a.Allocation.request.Request.id, a.Allocation.bw, a.Allocation.sigma, a.Allocation.tau)

let signature (r : Types.result) =
  ( List.sort compare (List.map alloc_sig r.Types.accepted),
    List.sort compare
      (List.map
         (fun ((req : Request.t), reason) ->
           (req.Request.id, Format.asprintf "%a" Types.pp_reason reason))
         r.Types.rejected) )

let is_faulty name = String.starts_with ~prefix:"faulty-" name

let subset_applicable name =
  name = "fcfs"
  || String.starts_with ~prefix:"greedy" name
  || String.starts_with ~prefix:"window(" name
  || String.starts_with ~prefix:"window-deferred(" name

let join_ref vs = String.concat "; " (List.map Reference.describe vs)

let join_validate vs =
  String.concat "; " (List.map (fun v -> Format.asprintf "%a" Validate.pp_violation v) vs)

let permuted (sc : Scenario.t) =
  let arr = Array.of_list sc.Scenario.requests in
  let rng = Rng.create ~seed:(Int64.add sc.Scenario.seed 77L) () in
  Rng.shuffle rng arr;
  Array.to_list arr

let check_scheduler (sc : Scenario.t) sched =
  let name = Scheduler.name sched in
  let findings = ref [] in
  let fail check detail = findings := { engine = name; check; detail } :: !findings in
  let result = run_on sched sc.Scenario.fabric sc.Scenario.requests in
  let base_sig = signature result in
  if not (Types.is_consistent result) then
    fail "consistent" "accepted/rejected do not partition the input";
  (* Oracle checks.  A fault engine's initial admissions are not statically
     checkable once shedding has recycled reservations; its deep audit
     lives in [check_faulted]. *)
  if not (is_faulty name && sc.Scenario.faults <> []) then begin
    let ref_vs = Reference.audit sc.Scenario.fabric ~trace:sc.Scenario.requests result in
    let val_vs = Validate.check sc.Scenario.fabric result.Types.accepted in
    if ref_vs <> [] then fail "reference" (join_ref ref_vs);
    if val_vs <> [] then fail "validate" (join_validate val_vs);
    if not (Reference.agrees val_vs ref_vs) then
      fail "oracles-agree"
        (Printf.sprintf "validate found %d violation(s), reference %d — and they differ"
           (List.length val_vs) (List.length ref_vs))
  end;
  (* M1: determinism. *)
  if signature (run_on sched sc.Scenario.fabric sc.Scenario.requests) <> base_sig then
    fail "deterministic" "two runs on identical input disagreed";
  (* M2: permutation invariance (every engine sorts into arrival order
     with total tie-breaking). *)
  if signature (run_on sched sc.Scenario.fabric (permuted sc)) <> base_sig then
    fail "permutation-invariant" "decisions changed under an input shuffle";
  (* M3: exact ×2 scaling. *)
  if not (is_faulty name) then begin
    let scaled = Scenario.scale2 sc in
    let scaled_sig = signature (run_on sched scaled.Scenario.fabric scaled.Scenario.requests) in
    let expected =
      (List.map (fun (id, bw, s, t) -> (id, 2. *. bw, s, t)) (fst base_sig), snd base_sig)
    in
    if scaled_sig <> expected then
      fail "scale2-invariant" "doubling capacities and volumes changed the decisions"
  end;
  (* M4: accepted-subset stability. *)
  if subset_applicable name then begin
    let accepted_ids =
      List.fold_left
        (fun s (a : Allocation.t) -> a.Allocation.request.Request.id :: s)
        [] result.Types.accepted
    in
    let subset =
      List.filter (fun (r : Request.t) -> List.mem r.Request.id accepted_ids) sc.Scenario.requests
    in
    let again = run_on sched sc.Scenario.fabric subset in
    if fst (signature again) <> fst base_sig || again.Types.rejected <> [] then
      fail "accepted-subset-stable"
        "re-running on only the accepted requests changed the allocations"
  end;
  List.rev !findings

(* --- fault-run checks --- *)

let injector_cfg admission = Injector.default_config ~admission ()

let check_faulted (sc : Scenario.t) =
  if sc.Scenario.faults = [] then []
  else
    List.concat_map
      (fun admission ->
        let name = "faulty-" ^ Injector.admission_name admission in
        let findings = ref [] in
        let fail check detail = findings := { engine = name; check; detail } :: !findings in
        let report = Injector.run sc.Scenario.fabric (injector_cfg admission) sc.Scenario.faults sc.Scenario.requests in
        (* The service-capacity audit only applies to GREEDY mode: WINDOW
           inherits Flexible.window's retroactive booking, where a batch
           boundary books transfers over already-elapsed intervals against
           the fabric as of the boundary — so its recorded services can
           legitimately overlap a past degradation. *)
        (match admission with
        | Injector.Window _ -> ()
        | Injector.Greedy -> (
            match
              Reference.audit_services sc.Scenario.fabric sc.Scenario.faults report.Injector.services
            with
            | [] -> ()
            | vs -> fail "service-capacity" (join_ref vs)));
        if List.length report.Injector.outcomes <> List.length sc.Scenario.requests then
          fail "outcomes"
            (Printf.sprintf "%d outcomes for %d requests"
               (List.length report.Injector.outcomes)
               (List.length sc.Scenario.requests));
        let per_request =
          Reference.audit_allocations sc.Scenario.fabric report.Injector.result.Types.accepted
          |> List.filter (function Reference.Port_overload _ -> false | _ -> true)
        in
        if per_request <> [] then fail "admission-constraints" (join_ref per_request);
        List.rev !findings)
      [ Injector.Greedy; Injector.Window default_step ]

let check_parity (sc : Scenario.t) =
  List.concat_map
    (fun (admission, twin) ->
      let inj = Injector.scheduler (injector_cfg admission) [] in
      let a = run_on inj sc.Scenario.fabric sc.Scenario.requests in
      let b = run_on twin sc.Scenario.fabric sc.Scenario.requests in
      if signature a <> signature b then
        [ { engine = Scheduler.name inj;
            check = "empty-script-parity";
            detail = "decision stream differs from " ^ Scheduler.name twin } ]
      else [])
    [ (Injector.Greedy, Scheduler.of_flexible `Greedy Policy.Min_rate);
      (Injector.Window default_step, Scheduler.of_flexible (`Window default_step) Policy.Min_rate) ]

(* --- sharded-engine differential --- *)

let sharded_counts = [ 2; 3 ]
let sharded_policy = Policy.Min_rate

type shard_op = Op_admit of Request.t | Op_cancel of { id : int; at : float }

(* One sequential timeline of arrivals and preempts, ordered by time with
   total tie-breaking; driving the sharded engine and the single-shard
   ledger through it op for op keeps their clocks in lockstep, so every
   decision is comparable bit for bit. *)
let shard_timeline (sc : Scenario.t) =
  let key = function
    | Op_admit r -> (r.Request.ts, 0, r.Request.id)
    | Op_cancel { id; at } -> (at, 1, id)
  in
  let admits = List.map (fun r -> Op_admit r) sc.Scenario.requests in
  let cancels =
    List.filter_map
      (function
        | Fault.Preempt { request_id; at } -> Some (Op_cancel { id = request_id; at })
        | Fault.Degrade _ | Fault.Abort _ -> None)
      sc.Scenario.faults
  in
  List.sort (fun a b -> compare (key a) (key b)) (admits @ cancels)

let describe_decision = function
  | Types.Accepted (a : Allocation.t) ->
      Printf.sprintf "accept bw=%.17g sigma=%.17g tau=%.17g" a.Allocation.bw a.Allocation.sigma
        a.Allocation.tau
  | Types.Rejected reason -> Format.asprintf "reject (%a)" Types.pp_reason reason

let same_decision a b =
  match (a, b) with
  | Types.Accepted (x : Allocation.t), Types.Accepted y ->
      x.Allocation.bw = y.Allocation.bw && x.Allocation.sigma = y.Allocation.sigma
      && x.Allocation.tau = y.Allocation.tau
  | Types.Rejected x, Types.Rejected y -> x = y
  | _ -> false

let check_sharded (sc : Scenario.t) =
  (* Degrades and injector aborts revise capacities mid-flight — the
     sharded engine has no such verb, so only preempt-only (or fault-free)
     scenarios are differentially replayable against it. *)
  if not (List.for_all (function Fault.Preempt _ -> true | _ -> false) sc.Scenario.faults)
  then []
  else
    let timeline = shard_timeline sc in
    List.concat_map
      (fun shards ->
        let name = Printf.sprintf "sharded(%d)" shards in
        let findings = ref [] in
        let fail check detail = findings := { engine = name; check; detail } :: !findings in
        let engine = Shard_engine.create ~spawn:false ~shards sharded_policy sc.Scenario.fabric in
        let online = Online.create sc.Scenario.fabric in
        let lbooked = Hashtbl.create 64 and sbooked = Hashtbl.create 64 in
        List.iteri
          (fun i op ->
            match op with
            | Op_admit r ->
                let at = Float.max (Online.now online) r.Request.ts in
                let expected = Online.try_admit online sharded_policy r ~at in
                let actual = Shard_engine.try_admit engine r in
                if not (same_decision expected actual) then
                  fail "decision-parity"
                    (Printf.sprintf "op %d (request %d): ledger %s, sharded %s" i r.Request.id
                       (describe_decision expected) (describe_decision actual));
                (match expected with
                | Types.Accepted a -> Hashtbl.replace lbooked r.Request.id a
                | Types.Rejected _ -> ());
                (match actual with
                | Types.Accepted a -> Hashtbl.replace sbooked r.Request.id a
                | Types.Rejected _ -> ())
            | Op_cancel { id; _ } -> (
                (* each side cancels its own allocation record, so a prior
                   decision mismatch cannot cascade into a bogus one here *)
                match (Hashtbl.find_opt lbooked id, Hashtbl.find_opt sbooked id) with
                | None, None -> ()
                | Some la, Some sa ->
                    let expected = Online.preempt online la in
                    let actual = Shard_engine.cancel engine sa in
                    if expected then Hashtbl.remove lbooked id;
                    if actual then Hashtbl.remove sbooked id;
                    if expected <> actual then
                      fail "cancel-parity"
                        (Printf.sprintf "op %d: cancel of %d %s on the ledger but %s sharded" i id
                           (if expected then "succeeded" else "failed")
                           (if actual then "succeeded" else "failed"))
                | _ -> ()))
          timeline;
        (* bring both sides to the same global instant before reading
           counters: shards no late operation touched still hold releases
           the ledger drained at its last admission *)
        Shard_engine.settle engine;
        Online.advance_to online (Shard_engine.now engine);
        for i = 0 to Fabric.ingress_count sc.Scenario.fabric - 1 do
          let s = Shard_engine.ingress_used engine i and l = Online.used online (Port.ingress i) in
          if s <> l then
            fail "counter-parity" (Printf.sprintf "ingress %d: sharded %.17g <> ledger %.17g" i s l)
        done;
        for e = 0 to Fabric.egress_count sc.Scenario.fabric - 1 do
          let s = Shard_engine.egress_used engine e and l = Online.used online (Port.egress e) in
          if s <> l then
            fail "counter-parity" (Printf.sprintf "egress %d: sharded %.17g <> ledger %.17g" e s l)
        done;
        if Shard_engine.active_count engine <> Online.active_count online then
          fail "active-parity"
            (Printf.sprintf "%d active transfers sharded, %d on the ledger"
               (Shard_engine.active_count engine) (Online.active_count online));
        Shard_engine.stop engine;
        List.rev !findings)
      sharded_counts

(* --- long-lived solvers --- *)

let check_long_lived ~seed ~size =
  let rng = Rng.create ~seed () in
  let fabric = Fabric.uniform ~ingress_count:2 ~egress_count:2 ~capacity:100.0 in
  let findings = ref [] in
  let fail check detail = findings := { engine = "long-lived"; check; detail } :: !findings in
  let n = max 1 (min size 20) in
  let flow ~id bw =
    Long_lived.request ~id ~ingress:(Rng.int rng 2) ~egress:(Rng.int rng 2) ~bw
  in
  (* Uniform instance: the polynomial max-flow optimum must be feasible
     and dominate greedy. *)
  let bw = Rng.float_in rng 10. 60. in
  let uniform = List.init n (fun id -> flow ~id bw) in
  let opt = Long_lived.optimal_uniform fabric ~bw uniform in
  let grd = Long_lived.greedy fabric uniform in
  if not (Long_lived.feasible fabric opt.Long_lived.accepted) then
    fail "longlived-optimal-feasible" "optimal_uniform returned an infeasible set";
  if not (Long_lived.feasible fabric grd.Long_lived.accepted) then
    fail "longlived-greedy-feasible" "greedy returned an infeasible set";
  if List.length opt.Long_lived.accepted < List.length grd.Long_lived.accepted then
    fail "longlived-dominance"
      (Printf.sprintf "optimum accepted %d < greedy %d"
         (List.length opt.Long_lived.accepted)
         (List.length grd.Long_lived.accepted));
  (if n <= 8 then
     let count, _, proved = Long_lived.exact fabric uniform in
     if proved && count <> List.length opt.Long_lived.accepted then
       fail "longlived-exact-agreement"
         (Printf.sprintf "branch-and-bound %d vs max-flow %d on a uniform instance" count
            (List.length opt.Long_lived.accepted)));
  (* Non-uniform instance: greedy stays feasible. *)
  let mixed = List.init n (fun id -> flow ~id (Rng.float_in rng 5. 80.)) in
  let g2 = Long_lived.greedy fabric mixed in
  if not (Long_lived.feasible fabric g2.Long_lived.accepted) then
    fail "longlived-greedy-feasible-nonuniform" "greedy returned an infeasible set";
  List.rev !findings

(* MALLEABLE parity gate: with reshaping off and one constant step per
   request, the engine must collapse to GREEDY decision for decision —
   the PR-1 style anchor tying the profiled code path to the constant
   one. *)
let check_malleable_parity (sc : Scenario.t) =
  let constant = Malleable.scheduler { Malleable.default with Malleable.constant_step = true } in
  let twin = Scheduler.of_flexible `Greedy Policy.Min_rate in
  let a = run_on constant sc.Scenario.fabric sc.Scenario.requests in
  let b = run_on twin sc.Scenario.fabric sc.Scenario.requests in
  if signature a <> signature b then
    [ { engine = Scheduler.name constant;
        check = "constant-step-parity";
        detail = "decision stream differs from " ^ Scheduler.name twin } ]
  else []

let engines_for (sc : Scenario.t) =
  Scheduler.shipped ~step:default_step ()
  @ Malleable.engines ()
  @
  if sc.Scenario.faults = [] then []
  else
    [ Injector.scheduler (injector_cfg Injector.Greedy) sc.Scenario.faults;
      Injector.scheduler (injector_cfg (Injector.Window default_step)) sc.Scenario.faults ]

let check ?engines (sc : Scenario.t) =
  match engines with
  | Some es -> List.concat_map (check_scheduler sc) es
  | None ->
      List.concat_map (check_scheduler sc) (engines_for sc)
      @ check_faulted sc @ check_parity sc @ check_malleable_parity sc @ check_sharded sc
      @ check_long_lived ~seed:sc.Scenario.seed ~size:(min sc.Scenario.size 16)
