module Rng = Gridbw_prng.Rng
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Fault = Gridbw_fault.Fault

type family =
  | Hotspot_skew
  | Deadline_tight
  | Near_rigid
  | Revision_storm
  | Cross_shard_storm
  | Reshape_storm
  | Mixed

type t = {
  family : family;
  seed : int64;
  size : int;
  fabric : Fabric.t;
  requests : Request.t list;
  faults : Fault.event list;
}

let families =
  [ Hotspot_skew; Deadline_tight; Near_rigid; Revision_storm; Cross_shard_storm;
    Reshape_storm; Mixed ]

let family_name = function
  | Hotspot_skew -> "hotspot-skew"
  | Deadline_tight -> "deadline-tight"
  | Near_rigid -> "near-rigid"
  | Revision_storm -> "revision-storm"
  | Cross_shard_storm -> "cross-shard-storm"
  | Reshape_storm -> "reshape-storm"
  | Mixed -> "mixed"

let family_of_name n = List.find_opt (fun f -> family_name f = n) families

(* Route draw: with probability [hot], both endpoints go through port 0 —
   the funnel that makes one port the binding constraint. *)
let draw_port rng ~hot count =
  if count > 1 && Rng.float rng 1.0 < hot then 0 else Rng.int rng count

let random_request rng fabric ?(hot = 0.0) ?(slack_hi = 4.0) ~id () =
  let ingress = draw_port rng ~hot (Fabric.ingress_count fabric) in
  let egress = draw_port rng ~hot (Fabric.egress_count fabric) in
  let cap =
    Float.min (Fabric.ingress_capacity fabric ingress) (Fabric.egress_capacity fabric egress)
  in
  let ts = Rng.float_in rng 0. 50. in
  let dur = Rng.float_in rng 1. 50. in
  let min_rate = Rng.float_in rng (0.01 *. cap) (1.1 *. cap) in
  let slack = Rng.float_in rng 1.0 slack_hi in
  Request.make ~id ~ingress ~egress ~volume:(min_rate *. dur) ~ts ~tf:(ts +. dur)
    ~max_rate:(min_rate *. slack)

(* Cross-shard pressure: with probability [straddle] the pair is forced
   onto ports 0 and 1, whose indices have distinct residues under every
   modulus >= 2 — so the admission spans two shards for any shard count
   the engine under test is partitioned into. *)
let straddling_request rng fabric ~id =
  let ingress, egress =
    if Rng.float rng 1.0 < 0.65 then (if Rng.float rng 1.0 < 0.5 then (0, 1) else (1, 0))
    else (Rng.int rng (Fabric.ingress_count fabric), Rng.int rng (Fabric.egress_count fabric))
  in
  let cap =
    Float.min (Fabric.ingress_capacity fabric ingress) (Fabric.egress_capacity fabric egress)
  in
  let ts = Rng.float_in rng 0. 50. in
  let dur = Rng.float_in rng 1. 50. in
  let min_rate = Rng.float_in rng (0.05 *. cap) (0.9 *. cap) in
  let slack = Rng.float_in rng 1.0 3.0 in
  Request.make ~id ~ingress ~egress ~volume:(min_rate *. dur) ~ts ~tf:(ts +. dur)
    ~max_rate:(min_rate *. slack)

(* Every shard count from 2 up splits this fabric's first two ports
   across owners; at least two ports per side keeps the pair drawable. *)
let cross_fabric rng =
  let caps n = Array.init n (fun _ -> Rng.float_in rng 60. 140.) in
  Fabric.make ~ingress:(caps (2 + Rng.int rng 3)) ~egress:(caps (2 + Rng.int rng 3))

(* Cancel-heavy: roughly a third of the transfers get pulled mid-window,
   exercising the release path on both owning shards. *)
let cancel_script rng requests =
  Fault.sort
    (List.filter_map
       (fun (r : Request.t) ->
         if Rng.float rng 1.0 < 0.35 then
           Some (Fault.Preempt { request_id = r.Request.id;
                                 at = Rng.float_in rng r.Request.ts r.Request.tf })
         else None)
       requests)

(* Reshape pressure: arrivals land in a handful of bursts whose transfer
   windows open a little after the burst itself, so a booking engine holds
   several admitted-but-not-yet-started profiles exactly when the burst's
   later members are decided — the pending set admission-time reshaping
   re-solves.  Slack in [1.3, 1.5] is wide enough that step profiles have
   room to bend yet tight enough that constant rates jam first. *)
let reshape_request rng fabric ~centre ~id =
  let ingress = draw_port rng ~hot:0.5 (Fabric.ingress_count fabric) in
  let egress = draw_port rng ~hot:0.5 (Fabric.egress_count fabric) in
  let cap =
    Float.min (Fabric.ingress_capacity fabric ingress) (Fabric.egress_capacity fabric egress)
  in
  let ts = Float.max 0. (centre +. Rng.float_in rng (-3.) 3.) in
  let dur = Rng.float_in rng 2. 20. in
  let min_rate = Rng.float_in rng (0.05 *. cap) (0.8 *. cap) in
  let slack = Rng.float_in rng 1.3 1.5 in
  Request.make ~id ~ingress ~egress ~volume:(min_rate *. dur) ~ts ~tf:(ts +. dur)
    ~max_rate:(min_rate *. slack)

let reshape_requests rng fabric ~size =
  let clusters = max 1 (size / 8) in
  let centres = Array.init clusters (fun _ -> Rng.float_in rng 10. 60.) in
  List.init size (fun id ->
      reshape_request rng fabric ~centre:centres.(Rng.int rng clusters) ~id)

let random_fabric rng =
  match Rng.int rng 4 with
  | 0 -> Fabric.uniform ~ingress_count:2 ~egress_count:2 ~capacity:100.0
  | 1 -> Fabric.uniform ~ingress_count:1 ~egress_count:1 ~capacity:100.0
  | 2 -> Fabric.make ~ingress:[| 50.; 200.; 100. |] ~egress:[| 100.; 80. |]
  | _ ->
      let caps n = Array.init n (fun _ -> Rng.float_in rng 40. 160.) in
      Fabric.make ~ingress:(caps (1 + Rng.int rng 3)) ~egress:(caps (1 + Rng.int rng 3))

let requests_of rng fabric ~size ~hot ~slack_hi ~rigid_share =
  List.init size (fun id ->
      if Rng.float rng 1.0 < rigid_share then
        let r = random_request rng fabric ~hot ~slack_hi:1.0 ~id () in
        Request.make_rigid ~id ~ingress:r.Request.ingress ~egress:r.Request.egress
          ~bw:(Request.min_rate r) ~ts:r.Request.ts ~tf:r.Request.tf
      else random_request rng fabric ~hot ~slack_hi ~id ())

let storm_script rng fabric requests =
  let horizon = Float.max 1.0 (Fault.horizon_of_requests requests) in
  let spec = { Fault.mtbf = 30.; mean_outage = 15.; depth_lo = 0.0; depth_hi = 0.8 } in
  let degrades = Fault.generate (Rng.split rng) fabric ~horizon spec in
  let aborts = Fault.generate_aborts (Rng.split rng) ~fraction:0.08 requests in
  let preempts =
    List.filter_map
      (fun (r : Request.t) ->
        if Rng.float rng 1.0 < 0.08 then
          Some (Fault.Preempt { request_id = r.Request.id;
                                at = Rng.float_in rng r.Request.ts r.Request.tf })
        else None)
      requests
  in
  Fault.sort (degrades @ aborts @ preempts)

let generate ~family ~seed ~size =
  let rng = Rng.create ~seed () in
  let fabric =
    match family with Cross_shard_storm -> cross_fabric rng | _ -> random_fabric rng
  in
  let base ~hot ~slack_hi ~rigid_share =
    requests_of rng fabric ~size ~hot ~slack_hi ~rigid_share
  in
  let requests, faults =
    match family with
    | Hotspot_skew -> (base ~hot:0.7 ~slack_hi:4.0 ~rigid_share:0.2, [])
    | Deadline_tight -> (base ~hot:0.3 ~slack_hi:1.05 ~rigid_share:0.0, [])
    | Near_rigid -> (base ~hot:0.3 ~slack_hi:(1.0 +. 1e-9) ~rigid_share:0.5, [])
    | Revision_storm ->
        let reqs = base ~hot:0.4 ~slack_hi:3.0 ~rigid_share:0.2 in
        (reqs, storm_script rng fabric reqs)
    | Cross_shard_storm ->
        let reqs = List.init size (fun id -> straddling_request rng fabric ~id) in
        (reqs, cancel_script rng reqs)
    | Reshape_storm -> (reshape_requests rng fabric ~size, [])
    | Mixed -> (base ~hot:0.35 ~slack_hi:4.0 ~rigid_share:0.25, [])
  in
  { family; seed; size; fabric; requests; faults }

let with_requests t requests = { t with requests }
let with_faults t faults = { t with faults }

let scale_fabric2 fabric =
  Fabric.make
    ~ingress:(Array.init (Fabric.ingress_count fabric) (fun i -> 2. *. Fabric.ingress_capacity fabric i))
    ~egress:(Array.init (Fabric.egress_count fabric) (fun e -> 2. *. Fabric.egress_capacity fabric e))

let scale_request2 (r : Request.t) =
  Request.make ~id:r.Request.id ~ingress:r.Request.ingress ~egress:r.Request.egress
    ~volume:(2. *. r.Request.volume) ~ts:r.Request.ts ~tf:r.Request.tf
    ~max_rate:(2. *. r.Request.max_rate)

let scale2 t =
  {
    t with
    fabric = scale_fabric2 t.fabric;
    requests = List.map scale_request2 t.requests;
    (* Degrade factors are relative, abort/preempt times absolute: a fault
       script is scale-invariant as written. *)
  }

module Json = Gridbw_obs.Json

let side_to_json s = Json.Str (Fault.side_name s)

let side_of_json = function
  | Json.Str "ingress" -> Ok Fault.Ingress
  | Json.Str "egress" -> Ok Fault.Egress
  | _ -> Error "bad side"

let fault_to_json = function
  | Fault.Degrade { side; port; factor; from_; until } ->
      Json.Obj
        [ ("kind", Json.Str "degrade"); ("side", side_to_json side);
          ("port", Json.Num (float_of_int port)); ("factor", Json.Num factor);
          ("from", Json.Num from_); ("until", Json.Num until) ]
  | Fault.Abort { request_id; at } ->
      Json.Obj
        [ ("kind", Json.Str "abort"); ("id", Json.Num (float_of_int request_id));
          ("at", Json.Num at) ]
  | Fault.Preempt { request_id; at } ->
      Json.Obj
        [ ("kind", Json.Str "preempt"); ("id", Json.Num (float_of_int request_id));
          ("at", Json.Num at) ]

let faults_to_json events = Json.List (List.map fault_to_json events)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let req o name = match Json.member name o with Some v -> Ok v | None -> Error ("missing " ^ name)

let num o name =
  let* v = req o name in
  match Json.to_float v with Some f -> Ok f | None -> Error (name ^ " is not a number")

let int_field o name =
  let* v = req o name in
  match Json.to_int v with Some i -> Ok i | None -> Error (name ^ " is not an int")

let fault_of_json o =
  let* kind = req o "kind" in
  match Json.to_str kind with
  | Some "degrade" ->
      let* side = req o "side" in
      let* side = side_of_json side in
      let* port = int_field o "port" in
      let* factor = num o "factor" in
      let* from_ = num o "from" in
      let* until = num o "until" in
      Ok (Fault.Degrade { side; port; factor; from_; until })
  | Some "abort" ->
      let* request_id = int_field o "id" in
      let* at = num o "at" in
      Ok (Fault.Abort { request_id; at })
  | Some "preempt" ->
      let* request_id = int_field o "id" in
      let* at = num o "at" in
      Ok (Fault.Preempt { request_id; at })
  | _ -> Error "unknown fault kind"

let faults_of_json = function
  | Json.List items ->
      List.fold_left
        (fun acc item ->
          let* events = acc in
          let* e = fault_of_json item in
          Ok (e :: events))
        (Ok []) items
      |> Result.map List.rev
  | _ -> Error "fault script is not a list"

let pp ppf t =
  Format.fprintf ppf "%s scenario (seed %Ld): %d requests, %d fault events, %a"
    (family_name t.family) t.seed (List.length t.requests) (List.length t.faults) Fabric.pp
    t.fabric
