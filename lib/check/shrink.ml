let remove_range items lo len =
  List.filteri (fun i _ -> i < lo || i >= lo + len) items

let shrink_list ~fails items =
  let rec go items chunk =
    if chunk < 1 then items
    else
      let n = List.length items in
      let rec try_at lo =
        if lo >= n then None
        else
          let candidate = remove_range items lo (min chunk (n - lo)) in
          if List.length candidate < n && fails candidate then Some candidate
          else try_at (lo + chunk)
      in
      match try_at 0 with
      | Some smaller -> go smaller (min chunk (List.length smaller))
      | None -> go items (chunk / 2)
  in
  go items (max 1 (List.length items / 2))

let minimize ?(rounds = 3) ~fails scenario =
  if not (fails scenario) then scenario
  else
    let pass sc =
      let sc =
        Scenario.with_requests sc
          (shrink_list ~fails:(fun rs -> fails (Scenario.with_requests sc rs)) sc.Scenario.requests)
      in
      Scenario.with_faults sc
        (shrink_list ~fails:(fun fs -> fails (Scenario.with_faults sc fs)) sc.Scenario.faults)
    in
    let size sc = (List.length sc.Scenario.requests, List.length sc.Scenario.faults) in
    let rec fix sc n =
      if n = 0 then sc
      else
        let sc' = pass sc in
        if size sc' = size sc then sc' else fix sc' (n - 1)
    in
    fix scenario rounds
