(** Executable reference admission model.

    Theorem 1 makes MAX-REQUESTS NP-complete, so every engine in the repo
    is a heuristic; the only mechanical correctness anchor is the paper's
    feasibility constraint set (1).  {!Gridbw_metrics.Validate} already
    explains violations, but it shares the {!Gridbw_alloc.Profile}
    machinery with the production ledger.  This module re-states
    Definition 1 from scratch — per-request window containment, rate caps,
    route validity, and a brute-force per-port capacity sweep over
    elementary intervals — so a schedule is judged by two {e independent}
    formulations.  Nothing here touches the ledger, the profile trees or
    the timeline; everything is O(n²) list walking on purpose.

    Two entry points: {!audit} scores a [(trace, decisions)] pair against
    a static fabric (the plain engines), {!audit_services} scores the
    fault injector's delivered service intervals against the
    {e time-varying} capacities induced by a fault script. *)

type side = Gridbw_metrics.Hotspot.side

type violation =
  | Inconsistent of string
      (** the decision set does not partition the trace: missing, duplicate
          or unknown request ids *)
  | Bad_route of { id : int; ingress : int; egress : int }
  | Early_start of { id : int; sigma : float; ts : float }
  | Rate_above_cap of { id : int; bw : float; max_rate : float }
  | Deadline_miss of { id : int; tau : float; tf : float }
  | Duplicate of { id : int }
  | Port_overload of {
      side : side;
      port : int;
      at : float;  (** instant of worst excess *)
      usage : float;
      capacity : float;
    }
  | Volume_mismatch of { id : int; integral : float; volume : float }
      (** a profiled (malleable) allocation whose Kahan integral differs
          from the request volume — checked bit-for-bit *)

val audit_allocations :
  ?slack:float ->
  Gridbw_topology.Fabric.t ->
  Gridbw_alloc.Allocation.t list ->
  violation list
(** Constraint set (1) on a bare allocation list.  [slack] is the relative
    tolerance on capacity / deadline / rate comparisons (default [1e-9],
    matching the ledger).  Port overloads are reported once per port at
    the instant of worst excess. *)

val audit :
  ?slack:float ->
  Gridbw_topology.Fabric.t ->
  trace:Gridbw_request.Request.t list ->
  Gridbw_core.Types.result ->
  violation list
(** {!audit_allocations} plus decision-stream bookkeeping: the result's
    [all] list must carry exactly the trace's ids, and accepted/rejected
    must partition them. *)

val capacity_at :
  Gridbw_topology.Fabric.t ->
  Gridbw_fault.Fault.event list ->
  side ->
  int ->
  float ->
  float
(** Port capacity at one instant under a fault script: the nominal
    capacity, scaled by the factor of the [Degrade] window covering the
    instant if any, floored at the injector's residual [1e-6]. *)

val audit_services :
  ?slack:float ->
  Gridbw_topology.Fabric.t ->
  Gridbw_fault.Fault.event list ->
  Gridbw_fault.Injector.service list ->
  violation list
(** Sweep every service / degradation endpoint: at each instant the sum of
    delivered rates through a port must fit the {e revised} capacity.
    This is the fault-run analogue of the port rows of {!audit} — initial
    admissions are not statically checkable once preemption has recycled
    their reservations. *)

val same_constraint : Gridbw_metrics.Validate.violation -> violation -> bool
(** The two oracles point at the same broken constraint (same kind, same
    request or port) — the agreement predicate of the oracle mutation
    tests. *)

val agrees : Gridbw_metrics.Validate.violation list -> violation list -> bool
(** Every violation of either oracle has a counterpart in the other. *)

val pp_violation : Format.formatter -> violation -> unit
val describe : violation -> string
