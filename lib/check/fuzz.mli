(** Budgeted fuzzing driver over the conformance harness.

    Deterministic from [(seed, budget)]: scenario [i] draws family
    [families.(i mod n)] and a seed derived from the base seed, so a CI
    failure reproduces locally with the same flags.  Each failure is
    minimized ({!Shrink.minimize}, re-checking only the engine that broke
    when it can be identified) and can be serialized as a self-contained
    counterexample bundle:

    - [workload.csv] — the minimized request trace
      ({!Gridbw_workload.Trace} format, replayable with [gridbw run]);
    - [events.jsonl] — the failing engine's decision trace, prefixed with
      [Capacity] events describing the scenario fabric so
      [gridbw replay-trace] rebuilds the exact summary without guessing
      the topology (static engines only);
    - [meta.json] — family / seed / size, the findings, the fault script
      and the suggested replay commands. *)

type failure = {
  scenario : Scenario.t;  (** minimized *)
  findings : Harness.finding list;  (** findings on the minimized scenario *)
}

type outcome = {
  scenarios : int;  (** scenarios generated (= budget) *)
  failures : failure list;
}

val run :
  ?engines:Gridbw_core.Scheduler.t list ->
  ?families:Scenario.family list ->
  ?min_size:int ->
  ?max_size:int ->
  ?log:(string -> unit) ->
  budget:int ->
  seed:int64 ->
  unit ->
  outcome
(** Generate and check [budget] scenarios (sizes uniform-ish in
    [\[min_size, max_size\]], defaults 5–45).  [engines] overrides the
    default sweep ({!Harness.engines_for}) — the mutant tests fuzz a
    single deliberately broken scheduler this way.  [log] receives
    progress lines (a found-failure notice per counterexample). *)

val write_bundle :
  ?engines:Gridbw_core.Scheduler.t list -> dir:string -> index:int -> failure -> string
(** Write the bundle under [dir/case-<index>/] (directories created as
    needed) and return that path.  [engines] extends the engine pool used
    to re-run the failing engine for [events.jsonl] (needed when the
    failure came from a caller-supplied engine such as a test mutant). *)

val replay_hint : string -> string option
(** Best-effort [gridbw run] invocation reproducing the named engine on a
    bundle's [workload.csv]; [None] for engines without a CLI spelling
    (fault variants, test mutants). *)
