(** Worker pool for the sharded daemon path ([gridbw serve --shards N]).

    The select loop stays single-threaded and owns all sockets; what it
    hands off is decision work.  Each round it {!submit}s every decoded
    request to a worker domain (sticky by connection, so one
    connection's requests are answered in order) and then {!await}s the
    round's slots — a bulk-synchronous round.  Workers run concurrently,
    so admissions touching different shards proceed in parallel through
    {!Shard_admission} while the loop's ack-after-fsync discipline is
    unchanged: the round's responses are all collected, the engine's
    journal is flushed once, and only then are acks queued.

    Each worker carries its own metrics registry (a metrics registry is
    not thread-safe); {!registries} exposes them for the daemon to merge
    into the /metrics and [stats] views with
    {!Gridbw_obs.Metrics.merged}. *)

type t
type slot

val create : ?workers:int -> Shard_admission.t -> t
(** Spawn the worker domains ([workers] defaults to the engine's shard
    count). *)

val admission : t -> Shard_admission.t
val workers : t -> int

val submit : t -> conn:int -> Protocol.request -> slot
(** Enqueue one request on connection [conn]'s worker; never blocks. *)

val await : slot -> Protocol.response
(** Block until the worker has decided. *)

val registries : t -> Gridbw_obs.Metrics.t list
(** The per-worker metrics registries (merge with the daemon's own). *)

val stop : t -> unit
(** Drain and join the workers, then the engine's shard domains
    (idempotent). *)
