(** The [gridbw serve] daemon: a single-process, single-threaded
    event-loop server for the admission {!Protocol} over a Unix or TCP
    socket.

    One [select] round accepts new connections, reads every readable
    connection, decodes complete frames, and handles each request through
    {!Admission}.  Responses of the round are {e held back} until the
    store's group commit is forced ({!Gridbw_store.Store.flush}), so an
    acknowledged admit/cancel is on disk before the client can observe it
    (write-ack-after-fsync); one fsync covers every decision of the round.
    Responses on a connection are queued in request order, so clients may
    pipeline.

    Startup with an existing [--store-dir] recovers via the
    {!Gridbw_store.Store.recover} path, audits against the reference
    model, re-books the surviving admissions bit-identically and resumes
    serving.  {!stop} (wired to SIGTERM/SIGINT by
    {!install_signal_handlers}, and to the protocol's [shutdown] verb)
    drains pending output, flushes the WAL, writes a final snapshot and
    closes the store. *)

type transport = Unix_socket of string | Tcp of string * int

type config = {
  transport : transport;
  policy : Gridbw_core.Policy.t;
  fabric : Gridbw_topology.Fabric.t;
      (** the served fabric; ignored (journal wins) when recovering *)
  store_dir : string option;  (** durable journal; [None] = ephemeral daemon *)
  store_config : Gridbw_store.Store.config;
  max_frame : int;
  tick : float;  (** select timeout: latency of noticing {!stop}, seconds *)
  metrics_port : int option;
      (** loopback HTTP/1.0 [GET /metrics] Prometheus scrape endpoint,
          served from the same select loop *)
  span_out : string option;  (** trace-span sink file; enables tracing *)
  span_binary : bool;  (** span sink format: binary frames (default) or JSONL *)
  flight_recorder : string option;
      (** crash-surviving span ring file ({!Gridbw_obs.Flight});
          enables tracing *)
  flight_size : int;  (** flight-recorder file size, bytes *)
  shards : int option;
      (** [Some n]: run the sharded multicore engine
          ({!Gridbw_shard.Engine}) behind a {!Pool} of worker domains
          instead of the single-threaded {!Admission} path.  Decisions
          are journaled with their deciding shard id; recovery
          re-partitions onto the configured count and audits each shard
          against the reference model.  Request spans are not traced on
          this path (workers observe the admit-search latency directly
          as [serve_stage_admit_search_ns]). *)
}

val default_config :
  ?policy:Gridbw_core.Policy.t ->
  ?fabric:Gridbw_topology.Fabric.t ->
  ?store_dir:string ->
  ?metrics_port:int ->
  ?span_out:string ->
  ?span_binary:bool ->
  ?flight_recorder:string ->
  ?flight_size:int ->
  ?shards:int ->
  transport ->
  config
(** Paper fabric, [Fraction_of_max 0.8] policy, default store config,
    1 MiB frames, 100 ms tick; no metrics port, no tracing.  Tracing
    turns on when [span_out] or [flight_recorder] is set: each request
    then carries a {!Gridbw_obs.Span} through decode → parse → admit →
    WAL append → group-commit fsync → reply, feeding the
    [serve_stage_*_ns] histograms, the span sink, and the flight
    recorder. *)

type t

val create : ?obs:Gridbw_obs.Obs.ctx -> ?log:(string -> unit) -> config -> (t, string) result
(** Bind the socket and create/recover the store.  [log] receives
    human-readable startup/recovery/shutdown lines (default: dropped).
    [Error] when the socket cannot be bound, the store cannot be
    recovered, or the recovered journal fails its audit. *)

val admission : t -> Admission.t
(** The single-threaded admission state (tests poke it directly).
    Raises [Invalid_argument] on a sharded ([shards = Some _]) daemon. *)

val run : t -> unit
(** Serve until {!stop}; then drain, flush, snapshot, close.  Ignores
    SIGPIPE for the whole process. *)

val stop : t -> unit
(** Ask {!run} to exit; safe from a signal handler or another thread.
    Takes effect within one [tick]. *)

val install_signal_handlers : t -> unit
(** SIGTERM and SIGINT invoke {!stop}. *)

val connections : t -> int
