(** The daemon's admission state machine over the sharded multicore
    engine ({!Gridbw_shard.Engine}) — the [--shards N] counterpart of
    {!Admission}.

    Unlike {!Admission}, every operation here is thread-safe: the
    daemon's worker pool calls {!admit}/{!query}/{!cancel} from several
    domains at once, and the engine's two-phase protocol serializes only
    the operations that actually share a shard.  Idempotency is kept
    under concurrency: a duplicate admit (at-least-once retries) waits
    for the in-flight decider of the same id and returns its journaled
    decision instead of re-deciding. *)

module Obs = Gridbw_obs.Obs
module Store = Gridbw_store.Store
module Policy = Gridbw_core.Policy
module Fabric = Gridbw_topology.Fabric
module Engine = Gridbw_shard.Engine

type t

val create : ?journal:Store.t -> shards:int -> policy:Policy.t -> Fabric.t -> t

val of_recovered : shards:int -> policy:Policy.t -> Store.recovered -> (t, string) result
(** Audit the recovered journal globally and per shard: the surviving
    bookings (Accepts never preempted — survivors all coexisted in the
    live counters, so their static audit is sound under any cancel
    history) are checked whole and as each shard's slice against
    {!Gridbw_check.Reference.audit_allocations}, then the engine is
    rebuilt with {!Gridbw_shard.Engine.of_events} — the journal may have
    been written under a different shard count; the per-port replay
    re-partitions exactly. *)

val engine : t -> Engine.t
val shards : t -> int

val admit :
  ?obs:Obs.ctx ->
  t ->
  id:int ->
  ingress:int ->
  egress:int ->
  volume:float ->
  ts:float ->
  tf:float ->
  max_rate:float ->
  Protocol.response
(** Validate, decide through the engine (which journals Arrival +
    decision atomically inside its freeze window), and record the entry.
    Observes the decision latency as [serve_stage_admit_search_ns] on
    [obs] — the same histogram the unsharded span path feeds. *)

val query : t -> int -> Protocol.response
val cancel : ?obs:Obs.ctx -> t -> int -> Protocol.response

val dirty : t -> bool
val flush : t -> unit
val snapshot : t -> unit
val stop : t -> unit
(** Join the engine's shard domains.  The journal is closed by the
    store's owner (the daemon). *)

val accepted_count : t -> int
val rejected_count : t -> int
val active_count : t -> int
