(* Wire codec for the admission daemon.  See protocol.mli. *)

module Json = Gridbw_obs.Json

let version = 1

type request =
  | Admit of {
      id : int;
      ingress : int;
      egress : int;
      volume : float;
      ts : float;
      tf : float;
      max_rate : float;
    }
  | Query of { id : int }
  | Cancel of { id : int }
  | Stats
  | Shutdown

type disposition =
  | Unknown
  | Active of { bw : float; sigma : float; tau : float }
  | Done of { bw : float; sigma : float; tau : float }
  | Refused of { reason : string }
  | Cancelled

type error_code = Bad_frame | Bad_json | Bad_version | Bad_request

type response =
  | Admitted of { id : int; bw : float; sigma : float; tau : float }
  | Rejected of { id : int; reason : string }
  | Status of { id : int; disposition : disposition }
  | Cancel_ok of { id : int }
  | Cancel_failed of { id : int; reason : string }
  | Stats_text of string
  | Goodbye of { records : int }
  | Error of { code : error_code; message : string }

type decode_error = Bad_json_e of string | Bad_version_e of int | Bad_request_e of string

let describe_decode_error = function
  | Bad_json_e msg -> "bad json: " ^ msg
  | Bad_version_e v -> Printf.sprintf "unsupported protocol version %d (speaking %d)" v version
  | Bad_request_e msg -> "bad request: " ^ msg

let code_name = function
  | Bad_frame -> "bad-frame"
  | Bad_json -> "bad-json"
  | Bad_version -> "bad-version"
  | Bad_request -> "bad-request"

let code_of_name = function
  | "bad-frame" -> Some Bad_frame
  | "bad-json" -> Some Bad_json
  | "bad-version" -> Some Bad_version
  | "bad-request" -> Some Bad_request
  | _ -> None

let error_of_decode e =
  let code =
    match e with
    | Bad_json_e _ -> Bad_json
    | Bad_version_e _ -> Bad_version
    | Bad_request_e _ -> Bad_request
  in
  Error { code; message = describe_decode_error e }

(* --- encoding --- *)

let num f = Json.Num f
let int i = Json.Num (float_of_int i)
let str s = Json.Str s

let obj re fields = Json.to_string (Json.Obj (("v", int version) :: ("re", str re) :: fields))
let req_obj op fields = Json.to_string (Json.Obj (("v", int version) :: ("op", str op) :: fields))

let encode_request = function
  | Admit { id; ingress; egress; volume; ts; tf; max_rate } ->
      req_obj "admit"
        [
          ("id", int id);
          ("in", int ingress);
          ("out", int egress);
          ("vol", num volume);
          ("ts", num ts);
          ("tf", num tf);
          ("max", num max_rate);
        ]
  | Query { id } -> req_obj "query" [ ("id", int id) ]
  | Cancel { id } -> req_obj "cancel" [ ("id", int id) ]
  | Stats -> req_obj "stats" []
  | Shutdown -> req_obj "shutdown" []

let window fields = function
  | bw, sigma, tau -> fields @ [ ("bw", num bw); ("sigma", num sigma); ("tau", num tau) ]

let encode_response = function
  | Admitted { id; bw; sigma; tau } -> obj "admitted" (window [ ("id", int id) ] (bw, sigma, tau))
  | Rejected { id; reason } -> obj "rejected" [ ("id", int id); ("reason", str reason) ]
  | Status { id; disposition } ->
      let fields =
        match disposition with
        | Unknown -> [ ("state", str "unknown") ]
        | Active { bw; sigma; tau } -> window [ ("state", str "active") ] (bw, sigma, tau)
        | Done { bw; sigma; tau } -> window [ ("state", str "done") ] (bw, sigma, tau)
        | Refused { reason } -> [ ("state", str "rejected"); ("reason", str reason) ]
        | Cancelled -> [ ("state", str "cancelled") ]
      in
      obj "status" (("id", int id) :: fields)
  | Cancel_ok { id } -> obj "cancelled" [ ("id", int id) ]
  | Cancel_failed { id; reason } -> obj "cancel-failed" [ ("id", int id); ("reason", str reason) ]
  | Stats_text text -> obj "stats" [ ("prometheus", str text) ]
  | Goodbye { records } -> obj "goodbye" [ ("records", int records) ]
  | Error { code; message } -> obj "error" [ ("code", str (code_name code)); ("message", str message) ]

(* --- decoding --- *)

let field name conv j what =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Result.Error (Bad_request_e (Printf.sprintf "missing or ill-typed %S field" what))

let int_field name j = field name Json.to_int j name
let float_field name j = field name Json.to_float j name
let str_field name j = field name Json.to_str j name

let ( let* ) = Result.bind

let with_versioned payload k =
  match Json.parse payload with
  | Result.Error msg -> Result.Error (Bad_json_e msg)
  | Ok j -> (
      match j with
      | Json.Obj _ -> (
          match Option.bind (Json.member "v" j) Json.to_int with
          | None -> Result.Error (Bad_request_e "missing or ill-typed \"v\" field")
          | Some v when v <> version -> Result.Error (Bad_version_e v)
          | Some _ -> k j)
      | _ -> Result.Error (Bad_json_e "payload is not a JSON object"))

let decode_request payload =
  with_versioned payload (fun j ->
      let* op = str_field "op" j in
      match op with
      | "admit" ->
          let* id = int_field "id" j in
          let* ingress = int_field "in" j in
          let* egress = int_field "out" j in
          let* volume = float_field "vol" j in
          let* ts = float_field "ts" j in
          let* tf = float_field "tf" j in
          let* max_rate = float_field "max" j in
          Ok (Admit { id; ingress; egress; volume; ts; tf; max_rate })
      | "query" ->
          let* id = int_field "id" j in
          Ok (Query { id })
      | "cancel" ->
          let* id = int_field "id" j in
          Ok (Cancel { id })
      | "stats" -> Ok Stats
      | "shutdown" -> Ok Shutdown
      | other -> Result.Error (Bad_request_e (Printf.sprintf "unknown verb %S" other)))

let decode_window j =
  let* bw = float_field "bw" j in
  let* sigma = float_field "sigma" j in
  let* tau = float_field "tau" j in
  Ok (bw, sigma, tau)

let decode_response payload =
  with_versioned payload (fun j ->
      let* re = str_field "re" j in
      match re with
      | "admitted" ->
          let* id = int_field "id" j in
          let* bw, sigma, tau = decode_window j in
          Ok (Admitted { id; bw; sigma; tau })
      | "rejected" ->
          let* id = int_field "id" j in
          let* reason = str_field "reason" j in
          Ok (Rejected { id; reason })
      | "status" -> (
          let* id = int_field "id" j in
          let* state = str_field "state" j in
          match state with
          | "unknown" -> Ok (Status { id; disposition = Unknown })
          | "active" ->
              let* bw, sigma, tau = decode_window j in
              Ok (Status { id; disposition = Active { bw; sigma; tau } })
          | "done" ->
              let* bw, sigma, tau = decode_window j in
              Ok (Status { id; disposition = Done { bw; sigma; tau } })
          | "rejected" ->
              let* reason = str_field "reason" j in
              Ok (Status { id; disposition = Refused { reason } })
          | "cancelled" -> Ok (Status { id; disposition = Cancelled })
          | other -> Result.Error (Bad_request_e (Printf.sprintf "unknown status state %S" other)))
      | "cancelled" ->
          let* id = int_field "id" j in
          Ok (Cancel_ok { id })
      | "cancel-failed" ->
          let* id = int_field "id" j in
          let* reason = str_field "reason" j in
          Ok (Cancel_failed { id; reason })
      | "stats" ->
          let* text = str_field "prometheus" j in
          Ok (Stats_text text)
      | "goodbye" ->
          let* records = int_field "records" j in
          Ok (Goodbye { records })
      | "error" ->
          let* code_s = str_field "code" j in
          let* message = str_field "message" j in
          let* code =
            match code_of_name code_s with
            | Some c -> Ok c
            | None -> Result.Error (Bad_request_e (Printf.sprintf "unknown error code %S" code_s))
          in
          Ok (Error { code; message })
      | other -> Result.Error (Bad_request_e (Printf.sprintf "unknown response kind %S" other)))

(* --- printing --- *)

let pp_request ppf = function
  | Admit { id; ingress; egress; volume; ts; tf; max_rate } ->
      Format.fprintf ppf "admit[%d %d->%d vol=%g ts=%g tf=%g max=%g]" id ingress egress volume ts
        tf max_rate
  | Query { id } -> Format.fprintf ppf "query[%d]" id
  | Cancel { id } -> Format.fprintf ppf "cancel[%d]" id
  | Stats -> Format.pp_print_string ppf "stats"
  | Shutdown -> Format.pp_print_string ppf "shutdown"

let pp_response ppf = function
  | Admitted { id; bw; sigma; tau } ->
      Format.fprintf ppf "admitted[%d bw=%g sigma=%g tau=%g]" id bw sigma tau
  | Rejected { id; reason } -> Format.fprintf ppf "rejected[%d %s]" id reason
  | Status { id; _ } -> Format.fprintf ppf "status[%d]" id
  | Cancel_ok { id } -> Format.fprintf ppf "cancelled[%d]" id
  | Cancel_failed { id; reason } -> Format.fprintf ppf "cancel-failed[%d %s]" id reason
  | Stats_text _ -> Format.pp_print_string ppf "stats"
  | Goodbye { records } -> Format.fprintf ppf "goodbye[%d]" records
  | Error { code; message } -> Format.fprintf ppf "error[%s %s]" (code_name code) message
