(* Closed-loop load generator.  See loadgen.mli. *)

module Metrics = Gridbw_obs.Metrics
module Json = Gridbw_obs.Json
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Rng = Gridbw_prng.Rng

type config = {
  target : Daemon.transport;
  connections : int;
  requests : int;
  seed : int64;
  mean_interarrival : float;
  max_slack : float;
  fabric : Fabric.t;
  cancel_every : int;
  acks : out_channel option;
  binary : bool;
  tolerate_disconnect : bool;
}

let default_config ?(connections = 4) ?(requests = 10_000) ?(seed = 1L)
    ?(mean_interarrival = 0.25) ?(max_slack = 4.0)
    ?(fabric = Fabric.paper_default ()) ?(cancel_every = 0) ?acks
    ?(binary = false) ?(tolerate_disconnect = false) target =
  {
    target;
    connections;
    requests;
    seed;
    mean_interarrival;
    max_slack;
    fabric;
    cancel_every;
    acks;
    binary;
    tolerate_disconnect;
  }

type report = {
  sent : int;
  answered : int;
  admitted : int;
  rejected : int;
  cancelled : int;
  errors : int;
  disconnects : int;
  wall_s : float;
  throughput : float;
  lat_mean_us : float;
  lat_p50_us : float;
  lat_p95_us : float;
  lat_p99_us : float;
  lat_max_us : float;
}

(* --- client connection --- *)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
    | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
    | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

let connect target =
  let domain, addr =
    match target with
    | Daemon.Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Daemon.Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (resolve host, port))
  in
  (* The daemon may still be binding its socket: retry briefly. *)
  let rec go tries =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok fd
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _)
      when tries > 0 ->
        Unix.close fd;
        Thread.delay 0.05;
        go (tries - 1)
    | exception Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error (Unix.error_message e)
  in
  go 100

(* --- per-worker state (summed after join; latencies land in shared
   arrays at distinct request-id indexes, so workers never race) --- *)

type wstat = {
  mutable sent : int;
  mutable answered : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable cancel_ok : int;
  mutable errors : int;
  mutable disconnects : int;
  mutable fail : string option;
}

type shared = {
  cfg : config;
  reqs : Request.t array;
  admit_lat : float array;  (** seconds, indexed by request id; nan = no sample *)
  cancel_lat : float array;
  acks_mutex : Mutex.t;
  mutable stop : bool;  (** a worker failed hard; everyone winds down *)
}

let record_ack sh payload =
  match sh.cfg.acks with
  | None -> ()
  | Some oc ->
      Mutex.lock sh.acks_mutex;
      output_string oc payload;
      output_char oc '\n';
      Mutex.unlock sh.acks_mutex

(* One request-response exchange; the response payload is returned raw so
   the ack journal carries the exact wire bytes. *)
let exchange sh st ic oc req =
  st.sent <- st.sent + 1;
  let fmt = if sh.cfg.binary then Frame.Binary else Frame.Text in
  let t0 = Unix.gettimeofday () in
  match Frame.output_as fmt oc (Protocol.encode_request req) with
  | exception (Sys_error _ | Unix.Unix_error _) ->
      st.disconnects <- st.disconnects + 1;
      Error `Disconnect
  | () -> (
      match Frame.input ic with
      | Error `Eof ->
          st.disconnects <- st.disconnects + 1;
          Error `Disconnect
      | Error (`Frame e) -> Error (`Protocol (Frame.describe e))
      | Ok payload -> (
          let dt = Unix.gettimeofday () -. t0 in
          match Protocol.decode_response payload with
          | Error e -> Error (`Protocol (Protocol.describe_decode_error e))
          | Ok resp ->
              st.answered <- st.answered + 1;
              record_ack sh payload;
              Ok (resp, dt)))

let worker sh st w =
  match connect sh.cfg.target with
  | Error e ->
      st.disconnects <- st.disconnects + 1;
      if not sh.cfg.tolerate_disconnect then begin
        st.fail <- Some (Printf.sprintf "connect: %s" e);
        sh.stop <- true
      end
  | Ok fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let n = Array.length sh.reqs in
      let hard e =
        st.fail <- Some e;
        sh.stop <- true
      in
      let i = ref w in
      (try
         while !i < n && not sh.stop do
           let r = sh.reqs.(!i) in
           let admit =
             Protocol.Admit
               {
                 id = r.Request.id;
                 ingress = r.Request.ingress;
                 egress = r.Request.egress;
                 volume = r.Request.volume;
                 ts = r.Request.ts;
                 tf = r.Request.tf;
                 max_rate = r.Request.max_rate;
               }
           in
           (match exchange sh st ic oc admit with
           | Error `Disconnect ->
               if not sh.cfg.tolerate_disconnect then
                 hard "connection lost mid-run";
               i := n (* this client is done either way *)
           | Error (`Protocol e) -> hard ("protocol error: " ^ e)
           | Ok (resp, dt) -> (
               sh.admit_lat.(r.Request.id) <- dt;
               match resp with
               | Protocol.Admitted _ ->
                   st.admitted <- st.admitted + 1;
                   if
                     sh.cfg.cancel_every > 0
                     && st.admitted mod sh.cfg.cancel_every = 0
                   then begin
                     match
                       exchange sh st ic oc (Protocol.Cancel { id = r.Request.id })
                     with
                     | Error `Disconnect ->
                         if not sh.cfg.tolerate_disconnect then
                           hard "connection lost mid-run";
                         i := n
                     | Error (`Protocol e) -> hard ("protocol error: " ^ e)
                     | Ok (cresp, cdt) -> (
                         sh.cancel_lat.(r.Request.id) <- cdt;
                         match cresp with
                         | Protocol.Cancel_ok _ -> st.cancel_ok <- st.cancel_ok + 1
                         | Protocol.Cancel_failed _ -> ()
                         | Protocol.Error _ -> st.errors <- st.errors + 1
                         | _ -> hard "unexpected response to cancel")
                   end
               | Protocol.Rejected _ -> st.rejected <- st.rejected + 1
               | Protocol.Error _ -> st.errors <- st.errors + 1
               | _ -> hard "unexpected response to admit"));
           i := !i + sh.cfg.connections
         done
       with e -> hard (Printexc.to_string e));
      (try flush oc with Sys_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()

(* --- aggregation --- *)

let finite_samples arrays =
  let out = ref [] in
  Array.iter
    (fun a ->
      Array.iter (fun v -> if Float.is_finite v then out := v :: !out) a)
    arrays;
  !out

let run ?(log = fun _ -> ()) cfg =
  if cfg.connections < 1 then Error "connections must be >= 1"
  else if cfg.requests < 1 then Error "requests must be >= 1"
  else begin
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let spec =
      Spec.make ~fabric:cfg.fabric ~count:cfg.requests
        ~flexibility:(Spec.Flexible { max_slack = cfg.max_slack })
        ~mean_interarrival:cfg.mean_interarrival ()
    in
    let reqs = Array.of_list (Gen.generate (Rng.create ~seed:cfg.seed ()) spec) in
    log
      (Printf.sprintf "loadgen: %d requests (seed %Ld), %d connections -> %s"
         (Array.length reqs) cfg.seed cfg.connections
         (match cfg.target with
         | Daemon.Unix_socket p -> "unix:" ^ p
         | Daemon.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p));
    let sh =
      {
        cfg;
        reqs;
        admit_lat = Array.make cfg.requests Float.nan;
        cancel_lat = Array.make cfg.requests Float.nan;
        acks_mutex = Mutex.create ();
        stop = false;
      }
    in
    let stats =
      Array.init cfg.connections (fun _ ->
          {
            sent = 0;
            answered = 0;
            admitted = 0;
            rejected = 0;
            cancel_ok = 0;
            errors = 0;
            disconnects = 0;
            fail = None;
          })
    in
    let t0 = Unix.gettimeofday () in
    let threads =
      Array.init cfg.connections (fun w ->
          Thread.create (fun () -> worker sh stats.(w) w) ())
    in
    Array.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    Option.iter flush cfg.acks;
    match
      Array.fold_left
        (fun acc st -> match acc with Some _ -> acc | None -> st.fail)
        None stats
    with
    | Some e -> Error e
    | None ->
        let sum f = Array.fold_left (fun acc st -> acc + f st) 0 stats in
        let samples = finite_samples [| sh.admit_lat; sh.cancel_lat |] in
        let m = Metrics.create () in
        let h = Metrics.histogram m "lat_us" in
        List.iter (fun v -> Metrics.observe h (v *. 1e6)) samples;
        let count = List.length samples in
        let pct q = if count = 0 then 0. else Metrics.percentile h q in
        let answered = sum (fun st -> st.answered) in
        Ok
          {
            sent = sum (fun st -> st.sent);
            answered;
            admitted = sum (fun st -> st.admitted);
            rejected = sum (fun st -> st.rejected);
            cancelled = sum (fun st -> st.cancel_ok);
            errors = sum (fun st -> st.errors);
            disconnects = sum (fun st -> st.disconnects);
            wall_s = wall;
            throughput = (if wall > 0. then float_of_int answered /. wall else 0.);
            lat_mean_us =
              (if count = 0 then 0.
               else List.fold_left ( +. ) 0. samples *. 1e6 /. float_of_int count);
            lat_p50_us = pct 0.5;
            lat_p95_us = pct 0.95;
            lat_p99_us = pct 0.99;
            lat_max_us =
              (if count = 0 then 0.
               else List.fold_left Float.max 0. samples *. 1e6);
            }
  end

let shutdown target =
  match connect target with
  | Error e -> Error e
  | Ok fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let result =
        match Frame.output oc (Protocol.encode_request Protocol.Shutdown) with
        | exception (Sys_error _ | Unix.Unix_error _) -> Error "connection lost"
        | () -> (
            match Frame.input ic with
            | Error `Eof -> Error "connection closed before the goodbye"
            | Error (`Frame e) -> Error (Frame.describe e)
            | Ok payload -> (
                match Protocol.decode_response payload with
                | Ok (Protocol.Goodbye { records }) -> Ok records
                | Ok _ -> Error "unexpected response to shutdown"
                | Error e -> Error (Protocol.describe_decode_error e)))
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      result

let report_to_json (r : report) =
  Json.to_string
    (Json.Obj
       [
         ("benchmark", Json.Str "serve_loadgen");
         ("sent", Json.Num (float_of_int r.sent));
         ("answered", Json.Num (float_of_int r.answered));
         ("admitted", Json.Num (float_of_int r.admitted));
         ("rejected", Json.Num (float_of_int r.rejected));
         ("cancelled", Json.Num (float_of_int r.cancelled));
         ("errors", Json.Num (float_of_int r.errors));
         ("disconnects", Json.Num (float_of_int r.disconnects));
         ("wall_s", Json.Num r.wall_s);
         ("throughput_rps", Json.Num r.throughput);
         ("lat_mean_us", Json.Num r.lat_mean_us);
         ("lat_p50_us", Json.Num r.lat_p50_us);
         ("lat_p95_us", Json.Num r.lat_p95_us);
         ("lat_p99_us", Json.Num r.lat_p99_us);
         ("lat_max_us", Json.Num r.lat_max_us);
       ])

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>sent %d, answered %d (%d admitted, %d rejected, %d cancelled, %d \
     errors, %d disconnects)@,\
     wall %.3f s, %.0f req/s@,\
     latency µs: mean %.0f, p50 %.0f, p95 %.0f, p99 %.0f, max %.0f@]"
    r.sent r.answered r.admitted r.rejected r.cancelled r.errors r.disconnects
    r.wall_s r.throughput r.lat_mean_us r.lat_p50_us r.lat_p95_us r.lat_p99_us
    r.lat_max_us
