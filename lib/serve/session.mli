(** Per-connection protocol state.

    A session owns one connection's incremental {!Frame.decoder} and its
    pending output bytes; it is a pure byte-in / byte-out state machine —
    the {!Daemon} does the socket I/O, tests can drive a session from
    strings.  Frame-level errors poison the connection (framing cannot
    resynchronize): the session reports one final error response to send
    and {!want_close} turns true.  Payload-level errors (bad JSON, bad
    version, unknown verb) are per-request: the peer gets a typed error
    response and the connection keeps going. *)

type t

val create : ?max_frame:int -> ?timed:bool -> id:int -> peer:string -> unit -> t
(** With [timed] (default off), {!next} measures its frame-decode and
    protocol-parse phases for {!stage_ns}. *)

val id : t -> int
val peer : t -> string

(** {2 Input} *)

val feed : t -> string -> unit
(** Raw bytes read from the wire. *)

type incoming =
  | Request of Protocol.request
  | Undecodable of Protocol.response
      (** a complete frame whose payload did not decode; send the error
          response, keep the connection *)
  | Broken of Protocol.response
      (** the frame stream itself is corrupt; send the error response,
          then close ({!want_close} is now true) *)

val next : t -> incoming option
(** The next complete message, [None] when more bytes are needed.  Call
    repeatedly after each {!feed} until [None]. *)

val stage_ns : t -> float * float
(** [(decode_ns, parse_ns)] of the most recent completed message — the
    frame-decode and payload-parse durations the trace span records as
    its first two stages.  Only meaningful right after {!next} returned
    [Some _] on a [timed] session; [(0., 0.)] otherwise. *)

(** {2 Output} *)

val queue : t -> Protocol.response -> unit
(** Encode, frame, and append to the pending output. *)

val pending : t -> bool
val out_chunk : t -> string
(** Bytes waiting to be written (empty when none). *)

val wrote : t -> int -> unit
(** Note that the first [n] bytes of {!out_chunk} reached the wire. *)

val want_close : t -> bool
(** Close once the pending output has drained. *)

(** {2 Accounting} *)

val frames_in : t -> int
val responses_out : t -> int
val errors : t -> int
(** Frame- plus payload-level errors on this connection. *)
