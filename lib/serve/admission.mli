(** The daemon's admission state machine, socket-free.

    Composes the {!Gridbw_core.Online} controller (paper constraint set
    (1), GREEDY-style: decide at submission time) with the durable
    journal: every [admit] journals an [Arrival] plus its decision, every
    effective [cancel] a [Preempt], through the same event codec the
    batch runs use — so [gridbw recover] and [gridbw replay-trace] read a
    daemon's store exactly like a batch run's.

    Durability contract: {!handle} only {e applies and journals}; records
    may still sit in the WAL's unsynced tail.  The caller must
    {!flush} (fsync) before releasing any response to the wire —
    {!Daemon} does this once per event-loop round (group commit).

    Virtual time: the controller clock is the max decision time seen so
    far; an admit for a request whose [ts] is already past decides at the
    clock ([sigma >= ts] still holds, the policy recomputes the rate
    against the residual window).  Request [ts] must be [>= 0] so the
    journal stays monotone past its capacity prefix. *)

type t

val create :
  ?obs:Gridbw_obs.Obs.ctx ->
  ?store:Gridbw_store.Store.t ->
  policy:Gridbw_core.Policy.t ->
  Gridbw_topology.Fabric.t ->
  t
(** Fresh state.  [obs] supplies the metrics registry the [stats] verb
    dumps (a fresh enabled one is created when omitted); with [store],
    decisions are journaled and {!flush} becomes meaningful. *)

val of_recovered :
  ?obs:Gridbw_obs.Obs.ctx ->
  policy:Gridbw_core.Policy.t ->
  Gridbw_store.Store.recovered ->
  (t, string) result
(** Resume from a recovered store: re-book every surviving admission in
    decision order (bit-identical controller state), rebuild the decision
    table (accepted / rejected / cancelled) for [query], and audit the
    recovered ledger against {!Gridbw_check.Reference} before serving —
    [Error] describes the first violation if the journal is unsound.
    Journals with preemptions (cancels) skip the whole-window reference
    audit, like [gridbw recover] does, but still check ledger capacity. *)

val handle : ?span:Gridbw_obs.Span.t -> t -> Protocol.request -> Protocol.response
(** Decide one request.  Total: validation failures come back as typed
    [Error] responses.  Duplicate [admit] ids return the recorded
    decision again without re-deciding (at-least-once retries are safe);
    [cancel] of an already-cancelled id is likewise idempotent.

    With [span] and an [admit] verb: the request id is recorded on the
    span, the decision accumulates its [Admit_search] / [Wal_append]
    stage durations, and the store mirror-ledger probes performed while
    journaling land in the span's probe count. *)

val dirty : t -> bool
(** Unflushed journal records exist: the responses of this round must not
    be released before {!flush}. *)

val flush : t -> unit
(** {!Gridbw_store.Store.flush} + clear {!dirty}.  No-op without a
    store. *)

val snapshot : t -> unit
(** Snapshot the store now (graceful-shutdown path).  No-op without a
    store. *)

val close : t -> unit

val records : t -> int
(** Journal records so far (0 without a store). *)

val accepted_count : t -> int
val rejected_count : t -> int
val active_count : t -> int

val obs : t -> Gridbw_obs.Obs.ctx
(** The telemetry context (shared metrics registry) — the [stats] verb
    dumps its registry. *)
