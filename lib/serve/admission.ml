(* The daemon's admission state machine.  See admission.mli. *)

module Obs = Gridbw_obs.Obs
module Event = Gridbw_obs.Event
module Metrics = Gridbw_obs.Metrics
module Span = Gridbw_obs.Span
module Store = Gridbw_store.Store
module Runtime = Gridbw_core.Runtime
module Online = Gridbw_core.Online
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Ledger = Gridbw_alloc.Ledger
module Reference = Gridbw_check.Reference

type entry =
  | Booked of Allocation.t
  | Refused of string
  | Cancelled of Allocation.t  (** was booked, then preempted by a cancel *)

type t = {
  ctl : Online.t;
  policy : Policy.t;
  obs : Obs.ctx;  (** merged with the store's journaling sink when one is attached *)
  store : Store.t option;
  entries : (int, entry) Hashtbl.t;
  mutable seq : int;  (** Arrival events emitted so far (journal replay order) *)
  mutable dirty : bool;
  mutable accepted : int;
  mutable rejected : int;
}

let reason_name r = Format.asprintf "%a" Types.pp_reason r

let make ?obs ?store ~policy ctl =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let obs = match store with Some s -> Store.attach s obs | None -> obs in
  {
    ctl;
    policy;
    obs;
    store;
    entries = Hashtbl.create 256;
    seq = 0;
    dirty = false;
    accepted = 0;
    rejected = 0;
  }

let create ?obs ?store ~policy fabric =
  Policy.validate policy;
  make ?obs ?store ~policy (Online.create fabric)

let obs t = t.obs
let dirty t = t.dirty

let flush t =
  Option.iter Store.flush t.store;
  t.dirty <- false

let snapshot t = Option.iter Store.snapshot_now t.store
let close t = Option.iter Store.close t.store
let records t = match t.store with Some s -> Store.records s | None -> 0
let accepted_count t = t.accepted
let rejected_count t = t.rejected
let active_count t = Online.active_count t.ctl

(* --- request handling --- *)

let bad_request message = Protocol.Error { code = Protocol.Bad_request; message }

let prior_decision id = function
  | Booked a | Cancelled a ->
      Protocol.Admitted
        { id; bw = a.Allocation.bw; sigma = a.Allocation.sigma; tau = a.Allocation.tau }
  | Refused reason -> Protocol.Rejected { id; reason }

let admit ?span t ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate =
  match Hashtbl.find_opt t.entries id with
  (* At-least-once retries: a duplicate admit returns the journaled
     decision without re-deciding (or re-journaling). *)
  | Some e -> prior_decision id e
  | None -> (
      if ts < 0. then bad_request "ts must be >= 0"
      else
        match Request.make ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate with
        | exception Invalid_argument msg -> bad_request msg
        | r ->
            if not (Request.routed_on r (Online.fabric t.ctl)) then
              bad_request
                (Printf.sprintf "no such route: ingress %d -> egress %d" ingress egress)
            else begin
              let at = Float.max (Online.now t.ctl) r.Request.ts in
              Option.iter (fun sp -> Span.set_req sp id) span;
              Obs.event t.obs (fun () ->
                  Event.Arrival
                    { time = at; seq = t.seq; id; ingress; egress; volume; ts; tf; max_rate });
              t.seq <- t.seq + 1;
              (* [t.obs] already carries the store's journaling sink
                 (pre-attached in [make]) — build the ctx without the
                 store so the decision is not journaled twice.  The span
                 rides the ctx: [try_admit] records the search timing and
                 the live-counter probe delta onto it. *)
              let decision =
                Online.try_admit ~ctx:(Runtime.make ~obs:t.obs ?span ()) t.ctl t.policy r ~at
              in
              if t.store <> None then t.dirty <- true;
              match decision with
              | Types.Accepted a ->
                  Hashtbl.replace t.entries id (Booked a);
                  t.accepted <- t.accepted + 1;
                  Protocol.Admitted
                    { id; bw = a.Allocation.bw; sigma = a.Allocation.sigma; tau = a.Allocation.tau }
              | Types.Rejected reason ->
                  let reason = reason_name reason in
                  Hashtbl.replace t.entries id (Refused reason);
                  t.rejected <- t.rejected + 1;
                  Protocol.Rejected { id; reason }
            end)

let query t id =
  let disposition =
    match Hashtbl.find_opt t.entries id with
    | None -> Protocol.Unknown
    | Some (Refused reason) -> Protocol.Refused { reason }
    | Some (Cancelled _) -> Protocol.Cancelled
    | Some (Booked a) ->
        let bw = a.Allocation.bw and sigma = a.Allocation.sigma and tau = a.Allocation.tau in
        if tau <= Online.now t.ctl then Protocol.Done { bw; sigma; tau }
        else Protocol.Active { bw; sigma; tau }
  in
  Protocol.Status { id; disposition }

let cancel t id =
  match Hashtbl.find_opt t.entries id with
  | None -> Protocol.Cancel_failed { id; reason = "unknown id" }
  | Some (Refused _) -> Protocol.Cancel_failed { id; reason = "was rejected" }
  | Some (Cancelled _) -> Protocol.Cancel_ok { id } (* idempotent retry *)
  | Some (Booked a) ->
      if Online.preempt ~ctx:(Runtime.make ~obs:t.obs ()) t.ctl a then begin
        Hashtbl.replace t.entries id (Cancelled a);
        if t.store <> None then t.dirty <- true;
        Protocol.Cancel_ok { id }
      end
      else Protocol.Cancel_failed { id; reason = "transfer already finished" }

let handle ?span t = function
  | Protocol.Admit { id; ingress; egress; volume; ts; tf; max_rate } ->
      admit ?span t ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate
  | Protocol.Query { id } ->
      Option.iter (fun sp -> Span.set_req sp id) span;
      query t id
  | Protocol.Cancel { id } ->
      Option.iter (fun sp -> Span.set_req sp id) span;
      cancel t id
  | Protocol.Stats -> Protocol.Stats_text (Metrics.to_prometheus (Obs.metrics t.obs))
  | Protocol.Shutdown -> Protocol.Goodbye { records = records t }

(* --- recovery --- *)

(* Events past the leading capacity prefix. *)
let rec past_prefix = function
  | Event.Capacity _ :: rest -> past_prefix rest
  | rest -> rest

let of_recovered ?obs ~policy (r : Store.recovered) =
  Policy.validate policy;
  let body = past_prefix r.Store.events in
  if
    List.exists (function Event.Capacity _ | Event.Shed _ -> true | _ -> false) body
  then
    Error
      "store journal carries capacity revisions (fault-injector run); not a daemon journal"
  else begin
    let has_preempt = List.exists (function Event.Preempt _ -> true | _ -> false) body in
    let allocs = List.map snd r.Store.accepted in
    let audit_errors =
      (* Cancels release capacity early, so the whole-window reference
         audit over-counts; the ledger capacity check below still holds
         (the mirror ledger replayed the releases). *)
      if has_preempt then []
      else Reference.audit_allocations r.Store.initial_fabric allocs
    in
    match audit_errors with
    | v :: _ -> Error ("recovered journal fails the reference audit: " ^ Reference.describe v)
    | [] ->
        if not (Ledger.within_capacity (Store.ledger r.Store.store)) then
          Error "recovered ledger exceeds capacity"
        else begin
          let t =
            make ?obs ~store:r.Store.store ~policy (Online.create r.Store.initial_fabric)
          in
          let by_id = Hashtbl.create 256 in
          List.iter
            (fun (_, a) -> Hashtbl.replace by_id a.Allocation.request.Request.id a)
            r.Store.accepted;
          (* Replay the journal through the controller in event order —
             the same grab/release sequence the live daemon performed, so
             the float accumulators come back bit-identical.  No [~obs]
             here: replay must not re-journal. *)
          List.iter
            (fun ev ->
              match ev with
              | Event.Arrival _ -> t.seq <- t.seq + 1
              | Event.Accept { time; id; _ } ->
                  let a = Hashtbl.find by_id id in
                  Online.restore t.ctl a ~at:time;
                  Hashtbl.replace t.entries id (Booked a);
                  t.accepted <- t.accepted + 1
              | Event.Reject { id; reason; _ } ->
                  Hashtbl.replace t.entries id (Refused reason);
                  t.rejected <- t.rejected + 1
              | Event.Preempt { time; id; _ } -> (
                  Online.advance_to t.ctl time;
                  match Hashtbl.find_opt t.entries id with
                  | Some (Booked a) ->
                      ignore (Online.preempt t.ctl a);
                      Hashtbl.replace t.entries id (Cancelled a)
                  | _ -> ())
              (* the serving plane journals constant-rate admissions
                 only, so a malleable Reshape never appears here *)
              | Event.Reshape _ | Event.Capacity _ | Event.Shed _ | Event.Dispatch _ -> ())
            r.Store.events;
          Ok t
        end
  end
