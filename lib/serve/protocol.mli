(** Versioned wire protocol of the admission daemon.

    Requests and responses are single JSON objects (the {!Gridbw_obs.Json}
    codec), one per {!Frame}.  Every object carries ["v"], the protocol
    version; a daemon refuses versions it does not speak with a typed
    error instead of guessing.  Five verbs: [admit] (decide a request —
    the response is sent only after the decision is durable), [query]
    (look up a decision), [cancel] (preempt a still-active admission),
    [stats] (Prometheus text dump of the daemon's registry), [shutdown]
    (graceful drain).

    Responses on one connection are sent in request order, so clients may
    pipeline.  Decoding is total: malformed input yields {!decode_error},
    never an exception. *)

val version : int

type request =
  | Admit of {
      id : int;
      ingress : int;
      egress : int;
      volume : float;
      ts : float;
      tf : float;
      max_rate : float;
    }
  | Query of { id : int }
  | Cancel of { id : int }
  | Stats
  | Shutdown

(** What the daemon knows about a request id. *)
type disposition =
  | Unknown
  | Active of { bw : float; sigma : float; tau : float }  (** admitted, still transmitting *)
  | Done of { bw : float; sigma : float; tau : float }  (** admitted, transfer finished *)
  | Refused of { reason : string }
  | Cancelled

type error_code = Bad_frame | Bad_json | Bad_version | Bad_request

type response =
  | Admitted of { id : int; bw : float; sigma : float; tau : float }
  | Rejected of { id : int; reason : string }
  | Status of { id : int; disposition : disposition }
  | Cancel_ok of { id : int }
  | Cancel_failed of { id : int; reason : string }
  | Stats_text of string  (** Prometheus text exposition *)
  | Goodbye of { records : int }  (** shutdown acknowledged; journal record count *)
  | Error of { code : error_code; message : string }

type decode_error =
  | Bad_json_e of string  (** the payload is not a JSON object *)
  | Bad_version_e of int  (** a version this implementation does not speak *)
  | Bad_request_e of string  (** unknown verb, missing or ill-typed field *)

val describe_decode_error : decode_error -> string
val error_of_decode : decode_error -> response
(** The error response a daemon sends back for an undecodable request. *)

val code_name : error_code -> string

val encode_request : request -> string
(** The JSON payload (frame it with {!Frame.encode} to put on the wire). *)

val decode_request : string -> (request, decode_error) result

val encode_response : response -> string
val decode_response : string -> (response, decode_error) result

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
