(* Length-prefixed framing.  See frame.mli for the format. *)

type error = Oversized of int | Malformed_length of string | Missing_terminator

let describe = function
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes declared)" n
  | Malformed_length what -> "malformed length prefix: " ^ what
  | Missing_terminator -> "missing frame terminator (framing desynchronized)"

let max_frame_default = 1024 * 1024

(* A length field longer than this cannot describe any frame we would
   accept (10 decimal digits > 1 GiB); treating it as malformed bounds
   how much garbage a broken peer can make us buffer. *)
let max_digits = 10

let encode payload =
  let len = string_of_int (String.length payload) in
  let b = Buffer.create (String.length payload + String.length len + 2) in
  Buffer.add_string b len;
  Buffer.add_char b ' ';
  Buffer.add_string b payload;
  Buffer.add_char b '\n';
  Buffer.contents b

type decoder = { max_frame : int; mutable data : string; mutable err : error option }

let decoder ?(max_frame = max_frame_default) () = { max_frame; data = ""; err = None }

let feed d s = if String.length s > 0 then d.data <- d.data ^ s
let buffered d = String.length d.data

let is_digit c = c >= '0' && c <= '9'

let fail d e =
  d.err <- Some e;
  Error e

let next d =
  match d.err with
  | Some e -> Error e
  | None ->
      let s = d.data in
      let n = String.length s in
      let j = ref 0 in
      while !j < n && is_digit s.[!j] do incr j done;
      let j = !j in
      if j > max_digits then fail d (Malformed_length "length field too long")
      else if j >= n then Ok None (* possibly a truncated prefix: wait for more bytes *)
      else if j = 0 then
        fail d (Malformed_length (Printf.sprintf "expected a digit, got %C" s.[0]))
      else if s.[j] <> ' ' then
        fail d (Malformed_length (Printf.sprintf "expected ' ' after length, got %C" s.[j]))
      else
        let len = int_of_string (String.sub s 0 j) in
        if len > d.max_frame then fail d (Oversized len)
        else
          let need = j + 1 + len + 1 in
          if n < need then Ok None
          else if s.[j + 1 + len] <> '\n' then fail d Missing_terminator
          else begin
            let payload = String.sub s (j + 1) len in
            d.data <- String.sub s need (n - need);
            Ok (Some payload)
          end

(* --- blocking channel helpers (the loadgen / test client side) --- *)

let input ?(max_frame = max_frame_default) ic =
  let rec read_len acc digits =
    match input_char ic with
    | exception End_of_file -> Error `Eof
    | ' ' when digits > 0 -> Ok acc
    | c when is_digit c ->
        if digits >= max_digits then Error (`Frame (Malformed_length "length field too long"))
        else read_len ((acc * 10) + (Char.code c - Char.code '0')) (digits + 1)
    | c -> Error (`Frame (Malformed_length (Printf.sprintf "unexpected %C in length" c)))
  in
  match read_len 0 0 with
  | Error _ as e -> e
  | Ok len ->
      if len > max_frame then Error (`Frame (Oversized len))
      else begin
        match really_input_string ic len with
        | exception End_of_file -> Error `Eof
        | payload -> (
            match input_char ic with
            | exception End_of_file -> Error `Eof
            | '\n' -> Ok payload
            | _ -> Error (`Frame Missing_terminator))
      end

let output oc payload =
  output_string oc (encode payload);
  flush oc
