(* Length-prefixed framing.  See frame.mli for the two wire forms. *)

module Wire_frame = Gridbw_wire.Frame
module Binio = Gridbw_wire.Binio

type format = Text | Binary

let format_name = function Text -> "text" | Binary -> "binary"

type error =
  | Oversized of int
  | Malformed_length of string
  | Missing_terminator
  | Corrupt_frame of string

let describe = function
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes declared)" n
  | Malformed_length what -> "malformed length prefix: " ^ what
  | Missing_terminator -> "missing frame terminator (framing desynchronized)"
  | Corrupt_frame what -> "corrupt binary frame: " ^ what

let max_frame_default = 1024 * 1024

(* A length field longer than this cannot describe any frame we would
   accept (10 decimal digits > 1 GiB); treating it as malformed bounds
   how much garbage a broken peer can make us buffer. *)
let max_digits = 10

(* Frame tag for serve-protocol payloads on the binary form; the event
   codec owns 0x01 and the WAL 0x02. *)
let binary_tag = 0x03

let encode payload =
  let b = Buffer.create (String.length payload + 16) in
  Wire_frame.Line.encode b payload;
  Buffer.contents b

let encode_binary payload =
  let b = Buffer.create (String.length payload + Wire_frame.overhead) in
  Wire_frame.add b ~tag:binary_tag payload;
  Buffer.contents b

let encode_as = function Text -> encode | Binary -> encode_binary

type decoder = {
  max_frame : int;
  mutable data : string;
  mutable err : error option;
  mutable last : format;  (* format of the last completed frame *)
}

let decoder ?(max_frame = max_frame_default) () =
  { max_frame; data = ""; err = None; last = Text }

let feed d s = if String.length s > 0 then d.data <- d.data ^ s
let buffered d = String.length d.data
let last_format d = d.last

let is_digit c = c >= '0' && c <= '9'

let fail d e =
  d.err <- Some e;
  Error e

let next_text d s n =
  let j = ref 0 in
  while !j < n && is_digit s.[!j] do incr j done;
  let j = !j in
  if j > max_digits then fail d (Malformed_length "length field too long")
  else if j >= n then Ok None (* possibly a truncated prefix: wait for more bytes *)
  else if j = 0 then
    fail d (Malformed_length (Printf.sprintf "expected a digit, got %C" s.[0]))
  else if s.[j] <> ' ' then
    fail d (Malformed_length (Printf.sprintf "expected ' ' after length, got %C" s.[j]))
  else
    let len = int_of_string (String.sub s 0 j) in
    if len > d.max_frame then fail d (Oversized len)
    else
      let need = j + 1 + len + 1 in
      if n < need then Ok None
      else if s.[j + 1 + len] <> '\n' then fail d Missing_terminator
      else begin
        let payload = String.sub s (j + 1) len in
        d.data <- String.sub s need (n - need);
        d.last <- Text;
        Ok (Some payload)
      end

let next_binary d s n =
  if n < Wire_frame.header_bytes then Ok None
  else
    let plen = Binio.get_u32 s 2 in
    if plen > d.max_frame then fail d (Oversized plen)
    else
      match Wire_frame.decode s ~pos:0 with
      | Incomplete -> Ok None
      | Corrupt msg -> fail d (Corrupt_frame msg)
      | Value ((tag, payload), next) ->
          if tag <> binary_tag then
            fail d (Corrupt_frame (Printf.sprintf "unexpected frame tag %d" tag))
          else begin
            d.data <- String.sub s next (n - next);
            d.last <- Binary;
            Ok (Some payload)
          end

let next d =
  match d.err with
  | Some e -> Error e
  | None ->
      let s = d.data in
      let n = String.length s in
      if n = 0 then Ok None
      else if Wire_frame.is_binary s.[0] then next_binary d s n
      else next_text d s n

(* --- blocking channel helpers (the loadgen / test client side) --- *)

let input_text ?(max_frame = max_frame_default) first ic =
  let rec read_len acc digits =
    match if digits = 0 then first else input_char ic with
    | exception End_of_file -> Error `Eof
    | ' ' when digits > 0 -> Ok acc
    | c when is_digit c ->
        if digits >= max_digits then Error (`Frame (Malformed_length "length field too long"))
        else read_len ((acc * 10) + (Char.code c - Char.code '0')) (digits + 1)
    | c -> Error (`Frame (Malformed_length (Printf.sprintf "unexpected %C in length" c)))
  in
  match read_len 0 0 with
  | Error _ as e -> e
  | Ok len ->
      if len > max_frame then Error (`Frame (Oversized len))
      else begin
        match really_input_string ic len with
        | exception End_of_file -> Error `Eof
        | payload -> (
            match input_char ic with
            | exception End_of_file -> Error `Eof
            | '\n' -> Ok payload
            | _ -> Error (`Frame Missing_terminator))
      end

let input_binary ?(max_frame = max_frame_default) ic =
  (* The magic byte was already consumed; read the rest of the frame. *)
  match really_input_string ic (Wire_frame.header_bytes - 1) with
  | exception End_of_file -> Error `Eof
  | rest -> (
      let header = String.make 1 Wire_frame.magic ^ rest in
      let plen = Binio.get_u32 header 2 in
      if plen > max_frame then Error (`Frame (Oversized plen))
      else
        match really_input_string ic (plen + Wire_frame.trailer_bytes) with
        | exception End_of_file -> Error `Eof
        | tail -> (
            match Wire_frame.decode (header ^ tail) ~pos:0 with
            | Value ((tag, payload), _) ->
                if tag <> binary_tag then
                  Error (`Frame (Corrupt_frame (Printf.sprintf "unexpected frame tag %d" tag)))
                else Ok payload
            | Corrupt msg -> Error (`Frame (Corrupt_frame msg))
            | Incomplete -> Error `Eof))

let input ?max_frame ic =
  match input_char ic with
  | exception End_of_file -> Error `Eof
  | c when Wire_frame.is_binary c -> input_binary ?max_frame ic
  | c -> input_text ?max_frame c ic

let output_as fmt oc payload =
  output_string oc (encode_as fmt payload);
  flush oc

let output oc payload = output_as Text oc payload
