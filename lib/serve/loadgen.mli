(** Closed-loop load generator for the admission daemon.

    Draws a seeded workload from {!Gridbw_workload} (the §5.3 flexible
    family by default), stride-partitions it over a configurable number of
    client connections, and drives the daemon closed-loop: each connection
    sends one request, waits for the response, records the wall-clock
    latency, then sends its next.  Latencies aggregate into the telemetry
    plane's log₂ histogram; percentiles come from
    {!Gridbw_obs.Metrics.percentile}.

    The generator can journal every response it {e receives} to an acks
    file (one JSON payload per line, verbatim wire bytes).  A kill-drill
    harness can compare that file against a [gridbw recover] of the
    daemon's store: write-ack-after-fsync promises every acked decision
    survives the crash bit-identically. *)

type config = {
  target : Daemon.transport;
  connections : int;  (** concurrent closed-loop clients, >= 1 *)
  requests : int;  (** total requests across all connections *)
  seed : int64;  (** workload PRNG seed — same seed, same byte stream *)
  mean_interarrival : float;  (** §5.3 arrival intensity of the drawn workload *)
  max_slack : float;  (** §5.3 window slack bound, >= 1 *)
  fabric : Gridbw_topology.Fabric.t;  (** must match the daemon's *)
  cancel_every : int;  (** cancel every Nth admitted transfer; 0 = never *)
  acks : out_channel option;  (** record every received response payload *)
  binary : bool;
      (** speak the binary frame form ({!Frame.Binary}); the daemon
          notices from the first frame and replies in kind *)
  tolerate_disconnect : bool;
      (** a dropped connection stops that client quietly instead of
          failing the run — for kill drills where the daemon dies on
          purpose *)
}

val default_config :
  ?connections:int ->
  ?requests:int ->
  ?seed:int64 ->
  ?mean_interarrival:float ->
  ?max_slack:float ->
  ?fabric:Gridbw_topology.Fabric.t ->
  ?cancel_every:int ->
  ?acks:out_channel ->
  ?binary:bool ->
  ?tolerate_disconnect:bool ->
  Daemon.transport ->
  config
(** 4 connections, 10k requests, seed 1, paper fabric, §5.3 arrivals at
    0.25 s mean, slack 4, no cancels, text frames. *)

type report = {
  sent : int;
  answered : int;  (** responses received (admits + cancels) *)
  admitted : int;
  rejected : int;
  cancelled : int;
  errors : int;  (** typed protocol-error responses *)
  disconnects : int;
  wall_s : float;
  throughput : float;  (** answered / wall_s, requests per second *)
  lat_mean_us : float;
  lat_p50_us : float;
  lat_p95_us : float;
  lat_p99_us : float;
  lat_max_us : float;
}

val run : ?log:(string -> unit) -> config -> (report, string) result
(** Drive the daemon to completion.  [Error] on connection failure (unless
    tolerated), malformed workload parameters, or a frame-level protocol
    error from the daemon. *)

val report_to_json : report -> string
(** The [BENCH_serve.json] object (single line, deterministic field
    order). *)

val shutdown : Daemon.transport -> (int, string) result
(** Connect, send the [shutdown] verb, wait for the [goodbye].  [Ok n]
    carries the daemon's final journal record count. *)

val pp_report : Format.formatter -> report -> unit
