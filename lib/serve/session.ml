(* Per-connection protocol state.  See session.mli. *)

module Span = Gridbw_obs.Span

type t = {
  id : int;
  peer : string;
  decoder : Frame.decoder;
  timed : bool;
  mutable out : string;  (* encoded bytes not yet on the wire *)
  mutable closing : bool;
  mutable frames_in : int;
  mutable responses_out : int;
  mutable errors : int;
  (* Stage durations of the most recent completed message (valid right
     after [next] returns [Some _] with [timed]). *)
  mutable decode_ns : float;
  mutable parse_ns : float;
}

let create ?max_frame ?(timed = false) ~id ~peer () =
  {
    id;
    peer;
    decoder = Frame.decoder ?max_frame ();
    timed;
    out = "";
    closing = false;
    frames_in = 0;
    responses_out = 0;
    errors = 0;
    decode_ns = 0.;
    parse_ns = 0.;
  }

let id t = t.id
let peer t = t.peer
let feed t s = Frame.feed t.decoder s

type incoming =
  | Request of Protocol.request
  | Undecodable of Protocol.response
  | Broken of Protocol.response

let next t =
  if t.closing then None
  else
    let t0 = if t.timed then Span.now_ns () else 0. in
    match Frame.next t.decoder with
    | Ok None -> None
    | Ok (Some payload) -> (
        let t1 = if t.timed then Span.now_ns () else 0. in
        if t.timed then t.decode_ns <- t1 -. t0;
        t.frames_in <- t.frames_in + 1;
        match Protocol.decode_request payload with
        | Ok r ->
            if t.timed then t.parse_ns <- Span.now_ns () -. t1;
            Some (Request r)
        | Error e ->
            if t.timed then t.parse_ns <- Span.now_ns () -. t1;
            t.errors <- t.errors + 1;
            Some (Undecodable (Protocol.error_of_decode e)))
    | Error e ->
        t.closing <- true;
        t.errors <- t.errors + 1;
        Some
          (Broken
             (Protocol.Error { code = Protocol.Bad_frame; message = Frame.describe e }))

let queue t resp =
  t.responses_out <- t.responses_out + 1;
  (* Reply in the form the client last spoke: sending one binary frame
     switches the response stream to binary, no handshake needed. *)
  t.out <- t.out ^ Frame.encode_as (Frame.last_format t.decoder) (Protocol.encode_response resp)

let pending t = String.length t.out > 0
let out_chunk t = t.out

let wrote t n =
  if n < 0 || n > String.length t.out then invalid_arg "Session.wrote";
  t.out <- String.sub t.out n (String.length t.out - n)

let stage_ns t = (t.decode_ns, t.parse_ns)
let want_close t = t.closing
let frames_in t = t.frames_in
let responses_out t = t.responses_out
let errors t = t.errors
