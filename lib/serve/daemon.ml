(* The serve event loop.  See daemon.mli. *)

module Obs = Gridbw_obs.Obs
module Metrics = Gridbw_obs.Metrics
module Span = Gridbw_obs.Span
module Flight = Gridbw_obs.Flight
module Store = Gridbw_store.Store
module Policy = Gridbw_core.Policy
module Fabric = Gridbw_topology.Fabric

type transport = Unix_socket of string | Tcp of string * int

type config = {
  transport : transport;
  policy : Policy.t;
  fabric : Fabric.t;
  store_dir : string option;
  store_config : Store.config;
  max_frame : int;
  tick : float;
  metrics_port : int option;
  span_out : string option;
  span_binary : bool;
  flight_recorder : string option;
  flight_size : int;
  shards : int option;
}

let default_config ?(policy = Policy.Fraction_of_max 0.8)
    ?(fabric = Fabric.paper_default ()) ?store_dir ?metrics_port ?span_out
    ?(span_binary = true) ?flight_recorder ?(flight_size = Flight.default_size)
    ?shards transport =
  {
    transport;
    policy;
    fabric;
    store_dir;
    store_config = Store.default_config;
    max_frame = Frame.max_frame_default;
    tick = 0.1;
    metrics_port;
    span_out;
    span_binary;
    flight_recorder;
    flight_size;
    shards;
  }

type conn = { fd : Unix.file_descr; session : Session.t; mutable eof : bool }

(* One /metrics scrape connection: read until the request line is
   complete, send the response, close. *)
type mconn = {
  mfd : Unix.file_descr;
  mutable minbuf : string;
  mutable mout : string;
  mutable mdone : bool;  (* response generated *)
  mutable meof : bool;
}

(* [Direct] is the original single-threaded path; [Pooled] routes
   decisions through a worker pool onto the sharded engine
   ([--shards N]).  The sharded store is owned here (the engine journals
   into it but does not close it), with a dedicated metrics registry:
   workers bump it under the engine's journal lock, and the select loop
   only reads it between rounds, when every worker is idle. *)
type backend =
  | Direct of Admission.t
  | Pooled of { pool : Pool.t; pstore : Store.t option; store_obs : Obs.ctx }

type t = {
  cfg : config;
  listener : Unix.file_descr;
  metrics_listener : Unix.file_descr option;
  backend : backend;
  obs : Obs.ctx;
  tracing : bool;
  span_oc : out_channel option;
  flight : Flight.t option;
  log : string -> unit;
  mutable conns : conn list;
  mutable mconns : mconn list;
  mutable next_conn : int;
  mutable stopping : bool;
}

let admission t =
  match t.backend with
  | Direct adm -> adm
  | Pooled _ -> invalid_arg "Daemon.admission: sharded daemon has no direct Admission.t"

let connections t = List.length t.conns
let stop t = t.stopping <- true

let backend_dirty = function
  | Direct adm -> Admission.dirty adm
  | Pooled { pool; _ } -> Shard_admission.dirty (Pool.admission pool)

let backend_flush = function
  | Direct adm -> Admission.flush adm
  | Pooled { pool; _ } -> Shard_admission.flush (Pool.admission pool)

let backend_records = function
  | Direct adm -> Admission.records adm
  | Pooled { pstore; _ } -> ( match pstore with Some s -> Store.records s | None -> 0)

let backend_accepted = function
  | Direct adm -> Admission.accepted_count adm
  | Pooled { pool; _ } -> Shard_admission.accepted_count (Pool.admission pool)

let backend_rejected = function
  | Direct adm -> Admission.rejected_count adm
  | Pooled { pool; _ } -> Shard_admission.rejected_count (Pool.admission pool)

(* Registries to merge for /metrics and the [stats] verb.  Only called
   from the select loop between rounds (workers idle), so the
   cross-domain reads cannot race worker writes. *)
let metrics_text t =
  match t.backend with
  | Direct _ -> Metrics.to_prometheus (Obs.metrics t.obs)
  | Pooled { pool; store_obs; _ } ->
      Metrics.to_prometheus
        (Metrics.merged
           ((Obs.metrics t.obs :: Pool.registries pool) @ [ Obs.metrics store_obs ]))

let install_signal_handlers t =
  let h = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h

(* --- startup --- *)

let bind_listener = function
  | Unix_socket path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      fd
  | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 128;
      fd

let transport_name = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* The /metrics scrape endpoint binds loopback only: it is an
   operational surface, not part of the served protocol. *)
let bind_metrics port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  Unix.set_nonblock fd;
  fd

let make_admission ~obs ~log cfg =
  match cfg.store_dir with
  | None ->
      log "serving without a store (decisions are not durable)";
      Ok (Admission.create ~obs ~policy:cfg.policy cfg.fabric)
  | Some dir when not (Store.exists ~dir) ->
      let store =
        Store.create ~config:cfg.store_config ~obs ~time:0. ~dir cfg.fabric
      in
      log (Printf.sprintf "initialized store %s" dir);
      Ok (Admission.create ~obs ~store ~policy:cfg.policy cfg.fabric)
  | Some dir -> (
      match Store.recover ~config:cfg.store_config ~obs ~dir () with
      | Error e -> Error (Printf.sprintf "cannot recover store %s: %s" dir e)
      | Ok r -> (
          log
            (Printf.sprintf
               "recovered store %s: %d records (%d from snapshot, %d replayed, %d torn bytes dropped)"
               dir (Store.records r.Store.store) r.Store.snapshot_cursor
               r.Store.replayed r.Store.truncated_bytes);
          match Admission.of_recovered ~obs ~policy:cfg.policy r with
          | Error e -> Error e
          | Ok adm ->
              log
                (Printf.sprintf "audit clean; resuming with %d active transfers"
                   (Admission.active_count adm));
              Ok adm))

let make_sharded ~log cfg shards =
  if shards < 1 then Error "shards must be >= 1"
  else begin
    let store_obs = Obs.create () in
    let built =
      match cfg.store_dir with
      | None ->
          log "serving without a store (decisions are not durable)";
          Ok (Shard_admission.create ~shards ~policy:cfg.policy cfg.fabric, None)
      | Some dir when not (Store.exists ~dir) ->
          let store =
            Store.create ~config:cfg.store_config ~obs:store_obs ~time:0. ~dir cfg.fabric
          in
          log (Printf.sprintf "initialized store %s" dir);
          Ok
            ( Shard_admission.create ~journal:store ~shards ~policy:cfg.policy cfg.fabric,
              Some store )
      | Some dir -> (
          match Store.recover ~config:cfg.store_config ~obs:store_obs ~dir () with
          | Error e -> Error (Printf.sprintf "cannot recover store %s: %s" dir e)
          | Ok r -> (
              log
                (Printf.sprintf
                   "recovered store %s: %d records (%d from snapshot, %d replayed, %d torn bytes dropped)"
                   dir (Store.records r.Store.store) r.Store.snapshot_cursor
                   r.Store.replayed r.Store.truncated_bytes);
              match Shard_admission.of_recovered ~shards ~policy:cfg.policy r with
              | Error e -> Error e
              | Ok adm ->
                  log
                    (Printf.sprintf
                       "per-shard audit clean; resuming with %d active transfers on %d shards"
                       (Shard_admission.active_count adm) shards);
                  Ok (adm, Some r.Store.store)))
    in
    match built with
    | Error e -> Error e
    | Ok (adm, pstore) ->
        let pool = Pool.create adm in
        log
          (Printf.sprintf "sharded engine: %d shards, %d workers" shards (Pool.workers pool));
        Ok (Pooled { pool; pstore; store_obs })
  end

let make_backend ~obs ~log cfg =
  match cfg.shards with
  | None -> Result.map (fun adm -> Direct adm) (make_admission ~obs ~log cfg)
  | Some n -> make_sharded ~log cfg n

let close_backend = function
  | Direct adm -> Admission.close adm
  | Pooled { pool; pstore; _ } ->
      Pool.stop pool;
      Option.iter Store.close pstore

let create ?obs ?(log = fun _ -> ()) cfg =
  Policy.validate cfg.policy;
  let obs = match obs with Some o -> o | None -> Obs.create () in
  match make_backend ~obs ~log cfg with
  | Error e -> Error e
  | Ok backend -> (
      match bind_listener cfg.transport with
      | exception Unix.Unix_error (err, _, _) ->
          close_backend backend;
          Error
            (Printf.sprintf "cannot bind %s: %s"
               (transport_name cfg.transport)
               (Unix.error_message err))
      | exception Failure e ->
          close_backend backend;
          Error (Printf.sprintf "cannot bind %s: %s" (transport_name cfg.transport) e)
      | listener -> (
          Unix.set_nonblock listener;
          log (Printf.sprintf "listening on %s" (transport_name cfg.transport));
          match
            Option.map
              (fun port ->
                let fd = bind_metrics port in
                log (Printf.sprintf "metrics on http://127.0.0.1:%d/metrics" port);
                fd)
              cfg.metrics_port
          with
          | exception Unix.Unix_error (err, _, _) ->
              close_backend backend;
              (try Unix.close listener with Unix.Unix_error _ -> ());
              Error
                (Printf.sprintf "cannot bind metrics port: %s" (Unix.error_message err))
          | metrics_listener ->
              let span_oc = Option.map open_out_bin cfg.span_out in
              Option.iter
                (fun p -> log (Printf.sprintf "tracing spans to %s" p))
                cfg.span_out;
              let flight =
                Option.map
                  (fun path ->
                    let f = Flight.create ~size:cfg.flight_size path in
                    log (Printf.sprintf "flight recorder: %s (%d bytes)" path cfg.flight_size);
                    f)
                  cfg.flight_recorder
              in
              Ok
                {
                  cfg;
                  listener;
                  metrics_listener;
                  backend;
                  obs;
                  tracing = span_oc <> None || flight <> None;
                  span_oc;
                  flight;
                  log;
                  conns = [];
                  mconns = [];
                  next_conn = 0;
                  stopping = false;
                }))

(* --- the event loop --- *)

let peer_name = function
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

let rec accept_all t =
  match Unix.accept ~cloexec:true t.listener with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_all t
  | fd, addr ->
      Unix.set_nonblock fd;
      let id = t.next_conn in
      t.next_conn <- id + 1;
      let session =
        Session.create ~max_frame:t.cfg.max_frame ~timed:t.tracing ~id
          ~peer:(peer_name addr) ()
      in
      Obs.count t.obs "serve_connections_total";
      t.conns <- t.conns @ [ { fd; session; eof = false } ];
      accept_all t

let close_conn t c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c' -> c' != c) t.conns

let scratch = Bytes.create 65536

(* Read everything currently available on [c]; feed it to the session. *)
let rec read_conn c =
  match Unix.read c.fd scratch 0 (Bytes.length scratch) with
  | 0 -> c.eof <- true
  | n ->
      Session.feed c.session (Bytes.sub_string scratch 0 n);
      if n = Bytes.length scratch then read_conn c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_conn c
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
    ->
      c.eof <- true

let write_conn c =
  if Session.pending c.session then
    let chunk = Session.out_chunk c.session in
    match Unix.write_substring c.fd chunk 0 (String.length chunk) with
    | n -> Session.wrote c.session n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception
        Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
      c.eof <- true

(* --- the /metrics scrape endpoint ---

   Minimal HTTP/1.0, one request per connection: parse the request line,
   reply, close.  Headers after the request line are ignored — a scraper
   gets its answer as soon as the first line is complete. *)

let http_response ~status ~body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: \
     %d\r\nConnection: close\r\n\r\n%s"
    status (String.length body) body

let metrics_reply t line =
  match String.split_on_char ' ' (String.trim line) with
  | "GET" :: path :: _ when path = "/metrics" || path = "/metrics/" ->
      Obs.count t.obs "serve_metrics_scrapes_total";
      http_response ~status:"200 OK" ~body:(metrics_text t)
  | _ -> http_response ~status:"404 Not Found" ~body:"only GET /metrics is served\n"

let rec accept_metrics t l =
  match Unix.accept ~cloexec:true l with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_metrics t l
  | fd, _ ->
      Unix.set_nonblock fd;
      t.mconns <- { mfd = fd; minbuf = ""; mout = ""; mdone = false; meof = false } :: t.mconns;
      accept_metrics t l

let rec read_mconn t m =
  match Unix.read m.mfd scratch 0 (Bytes.length scratch) with
  | 0 -> m.meof <- true
  | n ->
      if not m.mdone then begin
        m.minbuf <- m.minbuf ^ Bytes.sub_string scratch 0 n;
        if String.contains m.minbuf '\n' then begin
          let line = List.hd (String.split_on_char '\n' m.minbuf) in
          m.mout <- metrics_reply t line;
          m.mdone <- true
        end
        else if String.length m.minbuf > 4096 then m.meof <- true
      end;
      if n = Bytes.length scratch then read_mconn t m
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_mconn t m
  | exception Unix.Unix_error _ -> m.meof <- true

let write_mconn m =
  if String.length m.mout > 0 then
    match Unix.write_substring m.mfd m.mout 0 (String.length m.mout) with
    | n -> m.mout <- String.sub m.mout n (String.length m.mout - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> m.meof <- true

let sweep_mconns t =
  List.iter
    (fun m ->
      if m.meof || (m.mdone && String.length m.mout = 0) then begin
        (try Unix.close m.mfd with Unix.Unix_error _ -> ());
        t.mconns <- List.filter (fun m' -> m' != m) t.mconns
      end)
    t.mconns

(* Open a span for a request just decoded on [c], folding the session's
   measured decode/parse time into it (that work predates the span
   object, so the open instant is backdated to cover it). *)
let open_span t c =
  if not t.tracing then None
  else begin
    let sp = Span.start ~conn:(Session.id c.session) () in
    let decode_ns, parse_ns = Session.stage_ns c.session in
    Span.record sp Span.Frame_decode decode_ns;
    Span.record sp Span.Protocol_parse parse_ns;
    Span.backdate sp (decode_ns +. parse_ns);
    Some sp
  end

(* A finished span lands in three places: the per-stage latency
   histograms (the /metrics view), the span sink file, and the flight
   recorder's persistent ring. *)
let emit_span t sp =
  Span.finish sp;
  List.iter
    (fun st ->
      let d = Span.duration sp st in
      if d > 0. then Obs.observe t.obs ("serve_stage_" ^ Span.stage_name st ^ "_ns") d)
    Span.all_stages;
  Obs.observe t.obs "serve_span_total_ns" (Span.total_ns sp);
  if Span.probes sp > 0 then
    Obs.observe t.obs "serve_span_probes" (float_of_int (Span.probes sp));
  Option.iter (fun f -> Flight.append f sp) t.flight;
  match t.span_oc with
  | None -> ()
  | Some oc ->
      if t.cfg.span_binary then begin
        let b = Buffer.create 128 in
        Span.Binary.encode b sp;
        Buffer.output_buffer oc b
      end
      else begin
        output_string oc (Span.to_json sp);
        output_char oc '\n'
      end

(* Drain one connection's decoded messages into the round's response list.
   Responses are not queued on the session yet: the whole round is held
   back until the store flush below (ack-after-fsync). *)
let handle_ready t adm c acc =
  let rec loop acc =
    match Session.next c.session with
    | None -> acc
    | Some msg ->
        let span, resp =
          match msg with
          | Session.Request Protocol.Shutdown ->
              t.stopping <- true;
              Obs.count t.obs "serve_requests_total";
              (None, Admission.handle adm Protocol.Shutdown)
          | Session.Request req ->
              Obs.count t.obs "serve_requests_total";
              let span = open_span t c in
              ( span,
                Obs.span t.obs "serve_handle" (fun () ->
                    Admission.handle ?span adm req) )
          | Session.Undecodable resp | Session.Broken resp ->
              Obs.count t.obs "serve_protocol_errors_total";
              (None, resp)
        in
        let handled = match span with Some _ -> Span.now_ns () | None -> 0. in
        loop ((c, span, handled, resp) :: acc)
  in
  loop acc

let round_direct t adm ~readable =
  (* 1. decode + decide, collecting responses in arrival order *)
  let responses =
    List.rev (List.fold_left (fun acc c -> handle_ready t adm c acc) [] readable)
  in
  (* 2. make the round's decisions durable before anyone hears about them *)
  if Admission.dirty adm then begin
    Obs.span t.obs "serve_flush" (fun () -> Admission.flush adm);
    Obs.count t.obs "serve_flushes_total";
    if t.tracing then begin
      (* Group-commit wait: from this request's decision until the
         round's fsync completed.  A request decided early in the round
         also waits for its round-mates to be handled, and its ack
         genuinely stalled on all of it, so the whole stretch is
         attributed to the commit stage. *)
      let fsync_end = Span.now_ns () in
      List.iter
        (fun (_, span, handled, _) ->
          Option.iter
            (fun sp -> Span.record sp Span.Commit_fsync (fsync_end -. handled))
            span)
        responses
    end
  end;
  (* 3. release the acks *)
  List.iter
    (fun (c, span, _, resp) ->
      Span.timed span Span.Reply_write (fun () -> Session.queue c.session resp);
      Option.iter (emit_span t) span)
    responses

(* The sharded round is bulk-synchronous: submit every decoded request
   to its connection's worker (phase 1), await all of them — admissions
   on disjoint shards run in parallel on the worker domains (phase 2),
   answer the verbs the select loop owns while the workers are provably
   idle (phase 3), flush the engine's journal once, and only then
   release the acks in arrival order (ack-after-fsync, unchanged). *)
let round_pooled t pool ~readable =
  let jobs =
    List.rev
      (List.fold_left
         (fun acc c ->
           let rec loop acc =
             match Session.next c.session with
             | None -> acc
             | Some msg ->
                 let item =
                   match msg with
                   | Session.Request ((Protocol.Shutdown | Protocol.Stats) as req) ->
                       Obs.count t.obs "serve_requests_total";
                       if req = Protocol.Shutdown then t.stopping <- true;
                       `Local (c, req)
                   | Session.Request req ->
                       `Slot (c, Pool.submit pool ~conn:(Session.id c.session) req)
                   | Session.Undecodable resp | Session.Broken resp ->
                       Obs.count t.obs "serve_protocol_errors_total";
                       `Ready (c, resp)
                 in
                 loop (item :: acc)
           in
           loop acc)
         [] readable)
  in
  let responses =
    List.map
      (function
        | `Slot (c, slot) -> (c, Pool.await slot)
        | `Ready (c, resp) -> (c, resp)
        | `Local (c, Protocol.Stats) ->
            (* deferred to after the awaits above: workers are idle, so
               merging their registries is race-free *)
            (c, Protocol.Stats_text (metrics_text t))
        | `Local (c, _) -> (c, Protocol.Goodbye { records = backend_records t.backend }))
      jobs
  in
  if backend_dirty t.backend then begin
    Obs.span t.obs "serve_flush" (fun () -> backend_flush t.backend);
    Obs.count t.obs "serve_flushes_total"
  end;
  List.iter (fun (c, resp) -> Session.queue c.session resp) responses

let round t ~readable =
  match t.backend with
  | Direct adm -> round_direct t adm ~readable
  | Pooled { pool; _ } -> round_pooled t pool ~readable

let sweep_closed t =
  let snapshot = t.conns in
  List.iter
    (fun c ->
      if (c.eof || Session.want_close c.session) && not (Session.pending c.session)
      then close_conn t c)
    snapshot

let run t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  while not t.stopping do
    let read_fds =
      (t.listener :: Option.to_list t.metrics_listener)
      @ List.map (fun m -> m.mfd) t.mconns
      @ List.map (fun c -> c.fd) t.conns
    in
    let write_fds =
      List.filter_map
        (fun m -> if String.length m.mout > 0 then Some m.mfd else None)
        t.mconns
      @ List.filter_map
          (fun c -> if Session.pending c.session then Some c.fd else None)
          t.conns
    in
    match Unix.select read_fds write_fds [] t.cfg.tick with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready_r, ready_w, _ ->
        if List.mem t.listener ready_r then accept_all t;
        Option.iter
          (fun l -> if List.mem l ready_r then accept_metrics t l)
          t.metrics_listener;
        List.iter
          (fun m -> if List.mem m.mfd ready_r then read_mconn t m)
          t.mconns;
        let readable =
          List.filter (fun c -> List.mem c.fd ready_r) t.conns
        in
        List.iter read_conn readable;
        round t ~readable;
        List.iter
          (fun c -> if List.mem c.fd ready_w || Session.pending c.session then write_conn c)
          t.conns;
        List.iter
          (fun m -> if List.mem m.mfd ready_w || String.length m.mout > 0 then write_mconn m)
          t.mconns;
        sweep_closed t;
        sweep_mconns t;
        Obs.set_gauge t.obs "serve_connections_active"
          (float_of_int (List.length t.conns))
  done;
  (* Graceful shutdown: stop accepting, drain pending output briefly,
     then flush + snapshot + close the store. *)
  t.log "shutting down: draining connections";
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  Option.iter
    (fun l -> try Unix.close l with Unix.Unix_error _ -> ())
    t.metrics_listener;
  List.iter
    (fun m -> try Unix.close m.mfd with Unix.Unix_error _ -> ())
    t.mconns;
  t.mconns <- [];
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec drain () =
    let pending = List.filter (fun c -> Session.pending c.session) t.conns in
    if pending <> [] && Unix.gettimeofday () < deadline then begin
      (match
         Unix.select [] (List.map (fun c -> c.fd) pending) [] 0.05
       with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | _, ready_w, _ ->
          List.iter
            (fun c -> if List.mem c.fd ready_w then write_conn c)
            pending);
      List.iter (fun c -> if c.eof then close_conn t c) pending;
      drain ()
    end
  in
  drain ();
  List.iter (fun c -> close_conn t c) t.conns;
  (match t.cfg.transport with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  (match t.backend with
  | Direct adm ->
      Admission.flush adm;
      Admission.snapshot adm
  | Pooled { pool; _ } ->
      let adm = Pool.admission pool in
      Shard_admission.flush adm;
      Shard_admission.snapshot adm);
  let records = backend_records t.backend
  and accepted = backend_accepted t.backend
  and rejected = backend_rejected t.backend in
  close_backend t.backend;
  Option.iter close_out t.span_oc;
  Option.iter Flight.close t.flight;
  t.log
    (Printf.sprintf "stopped: %d journal records, %d accepted, %d rejected" records
       accepted rejected)
