(* The serve event loop.  See daemon.mli. *)

module Obs = Gridbw_obs.Obs
module Store = Gridbw_store.Store
module Policy = Gridbw_core.Policy
module Fabric = Gridbw_topology.Fabric

type transport = Unix_socket of string | Tcp of string * int

type config = {
  transport : transport;
  policy : Policy.t;
  fabric : Fabric.t;
  store_dir : string option;
  store_config : Store.config;
  max_frame : int;
  tick : float;
}

let default_config ?(policy = Policy.Fraction_of_max 0.8)
    ?(fabric = Fabric.paper_default ()) ?store_dir transport =
  {
    transport;
    policy;
    fabric;
    store_dir;
    store_config = Store.default_config;
    max_frame = Frame.max_frame_default;
    tick = 0.1;
  }

type conn = { fd : Unix.file_descr; session : Session.t; mutable eof : bool }

type t = {
  cfg : config;
  listener : Unix.file_descr;
  adm : Admission.t;
  obs : Obs.ctx;
  log : string -> unit;
  mutable conns : conn list;
  mutable next_conn : int;
  mutable stopping : bool;
}

let admission t = t.adm
let connections t = List.length t.conns
let stop t = t.stopping <- true

let install_signal_handlers t =
  let h = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h

(* --- startup --- *)

let bind_listener = function
  | Unix_socket path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      fd
  | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 128;
      fd

let transport_name = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let make_admission ~obs ~log cfg =
  match cfg.store_dir with
  | None ->
      log "serving without a store (decisions are not durable)";
      Ok (Admission.create ~obs ~policy:cfg.policy cfg.fabric)
  | Some dir when not (Store.exists ~dir) ->
      let store =
        Store.create ~config:cfg.store_config ~obs ~time:0. ~dir cfg.fabric
      in
      log (Printf.sprintf "initialized store %s" dir);
      Ok (Admission.create ~obs ~store ~policy:cfg.policy cfg.fabric)
  | Some dir -> (
      match Store.recover ~config:cfg.store_config ~obs ~dir () with
      | Error e -> Error (Printf.sprintf "cannot recover store %s: %s" dir e)
      | Ok r -> (
          log
            (Printf.sprintf
               "recovered store %s: %d records (%d from snapshot, %d replayed, %d torn bytes dropped)"
               dir (Store.records r.Store.store) r.Store.snapshot_cursor
               r.Store.replayed r.Store.truncated_bytes);
          match Admission.of_recovered ~obs ~policy:cfg.policy r with
          | Error e -> Error e
          | Ok adm ->
              log
                (Printf.sprintf "audit clean; resuming with %d active transfers"
                   (Admission.active_count adm));
              Ok adm))

let create ?obs ?(log = fun _ -> ()) cfg =
  Policy.validate cfg.policy;
  let obs = match obs with Some o -> o | None -> Obs.create () in
  match make_admission ~obs ~log cfg with
  | Error e -> Error e
  | Ok adm -> (
      match bind_listener cfg.transport with
      | exception Unix.Unix_error (err, _, _) ->
          Admission.close adm;
          Error
            (Printf.sprintf "cannot bind %s: %s"
               (transport_name cfg.transport)
               (Unix.error_message err))
      | exception Failure e ->
          Admission.close adm;
          Error (Printf.sprintf "cannot bind %s: %s" (transport_name cfg.transport) e)
      | listener ->
          Unix.set_nonblock listener;
          log (Printf.sprintf "listening on %s" (transport_name cfg.transport));
          Ok
            {
              cfg;
              listener;
              adm;
              obs;
              log;
              conns = [];
              next_conn = 0;
              stopping = false;
            })

(* --- the event loop --- *)

let peer_name = function
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

let rec accept_all t =
  match Unix.accept ~cloexec:true t.listener with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_all t
  | fd, addr ->
      Unix.set_nonblock fd;
      let id = t.next_conn in
      t.next_conn <- id + 1;
      let session =
        Session.create ~max_frame:t.cfg.max_frame ~id ~peer:(peer_name addr) ()
      in
      Obs.count t.obs "serve_connections_total";
      t.conns <- t.conns @ [ { fd; session; eof = false } ];
      accept_all t

let close_conn t c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c' -> c' != c) t.conns

let scratch = Bytes.create 65536

(* Read everything currently available on [c]; feed it to the session. *)
let rec read_conn c =
  match Unix.read c.fd scratch 0 (Bytes.length scratch) with
  | 0 -> c.eof <- true
  | n ->
      Session.feed c.session (Bytes.sub_string scratch 0 n);
      if n = Bytes.length scratch then read_conn c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_conn c
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
    ->
      c.eof <- true

let write_conn c =
  if Session.pending c.session then
    let chunk = Session.out_chunk c.session in
    match Unix.write_substring c.fd chunk 0 (String.length chunk) with
    | n -> Session.wrote c.session n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception
        Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
      c.eof <- true

(* Drain one connection's decoded messages into the round's response list.
   Responses are not queued on the session yet: the whole round is held
   back until the store flush below (ack-after-fsync). *)
let handle_ready t c acc =
  let rec loop acc =
    match Session.next c.session with
    | None -> acc
    | Some msg ->
        let resp =
          match msg with
          | Session.Request Protocol.Shutdown ->
              t.stopping <- true;
              Obs.count t.obs "serve_requests_total";
              Admission.handle t.adm Protocol.Shutdown
          | Session.Request req ->
              Obs.count t.obs "serve_requests_total";
              Obs.span t.obs "serve_handle" (fun () -> Admission.handle t.adm req)
          | Session.Undecodable resp | Session.Broken resp ->
              Obs.count t.obs "serve_protocol_errors_total";
              resp
        in
        loop ((c, resp) :: acc)
  in
  loop acc

let round t ~readable =
  (* 1. decode + decide, collecting responses in arrival order *)
  let responses =
    List.rev (List.fold_left (fun acc c -> handle_ready t c acc) [] readable)
  in
  (* 2. make the round's decisions durable before anyone hears about them *)
  if Admission.dirty t.adm then begin
    Obs.span t.obs "serve_flush" (fun () -> Admission.flush t.adm);
    Obs.count t.obs "serve_flushes_total"
  end;
  (* 3. release the acks *)
  List.iter (fun (c, resp) -> Session.queue c.session resp) responses

let sweep_closed t =
  let snapshot = t.conns in
  List.iter
    (fun c ->
      if (c.eof || Session.want_close c.session) && not (Session.pending c.session)
      then close_conn t c)
    snapshot

let run t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  while not t.stopping do
    let read_fds = t.listener :: List.map (fun c -> c.fd) t.conns in
    let write_fds =
      List.filter_map
        (fun c -> if Session.pending c.session then Some c.fd else None)
        t.conns
    in
    match Unix.select read_fds write_fds [] t.cfg.tick with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready_r, ready_w, _ ->
        if List.mem t.listener ready_r then accept_all t;
        let readable =
          List.filter (fun c -> List.mem c.fd ready_r) t.conns
        in
        List.iter read_conn readable;
        round t ~readable;
        List.iter
          (fun c -> if List.mem c.fd ready_w || Session.pending c.session then write_conn c)
          t.conns;
        sweep_closed t;
        Obs.set_gauge t.obs "serve_connections_active"
          (float_of_int (List.length t.conns))
  done;
  (* Graceful shutdown: stop accepting, drain pending output briefly,
     then flush + snapshot + close the store. *)
  t.log "shutting down: draining connections";
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec drain () =
    let pending = List.filter (fun c -> Session.pending c.session) t.conns in
    if pending <> [] && Unix.gettimeofday () < deadline then begin
      (match
         Unix.select [] (List.map (fun c -> c.fd) pending) [] 0.05
       with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | _, ready_w, _ ->
          List.iter
            (fun c -> if List.mem c.fd ready_w then write_conn c)
            pending);
      List.iter (fun c -> if c.eof then close_conn t c) pending;
      drain ()
    end
  in
  drain ();
  List.iter (fun c -> close_conn t c) t.conns;
  (match t.cfg.transport with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Admission.flush t.adm;
  Admission.snapshot t.adm;
  Admission.close t.adm;
  t.log
    (Printf.sprintf "stopped: %d journal records, %d accepted, %d rejected"
       (Admission.records t.adm)
       (Admission.accepted_count t.adm)
       (Admission.rejected_count t.adm))
