(** Framing for the [gridbw serve] wire protocol, two forms behind one
    decoder:

    - [Text] (the default): ["%d %s\n"] — the payload byte length in
      ASCII decimal, one space, the payload, one newline
      ({!Gridbw_wire.Frame.Line}).  The trailing newline is a cheap
      integrity check: a peer whose framing drifted out of sync fails
      loudly instead of silently re-interpreting payload bytes as
      lengths.
    - [Binary]: the length-prefixed binary frame from
      {!Gridbw_wire.Frame} (0xB1 magic, tag byte, LE length, payload,
      CRC32 trailer).

    The binary magic byte is not printable ASCII, so the first byte of a
    frame selects its form — clients opt into binary simply by sending
    binary frames, no handshake, and the session replies in whatever
    form the client last spoke ({!last_format}).

    Decoding is incremental and total: {!feed} bytes as they arrive,
    {!next} yields complete payloads or a typed {!error} — malformed
    input never raises. *)

type format = Text | Binary

val format_name : format -> string

type error =
  | Oversized of int  (** declared payload length exceeds [max_frame] *)
  | Malformed_length of string
      (** the length prefix is not a plain decimal number followed by a
          space (leading garbage, no digits, or an unterminated run
          longer than any sane length field) *)
  | Missing_terminator
      (** the byte after the declared payload is not ['\n'] — framing
          has desynchronized *)
  | Corrupt_frame of string
      (** a binary frame failed its CRC or carries an unexpected tag *)

val describe : error -> string

val max_frame_default : int
(** 1 MiB. *)

val encode : string -> string
(** The [Text]-framed bytes for one payload. *)

val encode_binary : string -> string
(** The [Binary]-framed bytes for one payload. *)

val encode_as : format -> string -> string

(** {2 Incremental decoding} *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder

val feed : decoder -> string -> unit
(** Append raw bytes from the wire. *)

val next : decoder -> (string option, error) result
(** [Ok (Some payload)] — one complete frame consumed (either form);
    [Ok None] — more bytes needed; [Error _] — the stream is broken (the
    decoder stays broken: framing errors are not recoverable). *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed by {!next}. *)

val last_format : decoder -> format
(** Form of the most recently completed frame; [Text] before any frame
    has decoded.  Responses are encoded in this form, so a client that
    switches to binary mid-stream gets binary replies from then on. *)

(** {2 Blocking helpers (client side)} *)

val input : ?max_frame:int -> in_channel -> (string, [ `Frame of error | `Eof ]) result
(** Read exactly one frame from a blocking channel, sniffing its form
    from the first byte. *)

val output : out_channel -> string -> unit
(** Write one [Text]-framed payload and flush the channel. *)

val output_as : format -> out_channel -> string -> unit
(** Write one framed payload in the given form and flush the channel. *)
