(** Length-prefixed framing for the [gridbw serve] wire protocol.

    One frame is ["%d %s\n"] — the payload byte length in ASCII decimal,
    one space, the payload, one newline.  The prefix makes frame
    boundaries explicit (the payload may contain anything, newlines
    included), the trailing newline is a cheap integrity check: a peer
    whose framing drifted out of sync fails loudly instead of silently
    re-interpreting payload bytes as lengths.

    Decoding is incremental and total: {!feed} bytes as they arrive,
    {!next} yields complete payloads or a typed {!error} — malformed
    input never raises. *)

type error =
  | Oversized of int  (** declared payload length exceeds [max_frame] *)
  | Malformed_length of string
      (** the length prefix is not a plain decimal number followed by a
          space (leading garbage, no digits, or an unterminated run
          longer than any sane length field) *)
  | Missing_terminator
      (** the byte after the declared payload is not ['\n'] — framing
          has desynchronized *)

val describe : error -> string

val max_frame_default : int
(** 1 MiB. *)

val encode : string -> string
(** The framed bytes for one payload. *)

(** {2 Incremental decoding} *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder

val feed : decoder -> string -> unit
(** Append raw bytes from the wire. *)

val next : decoder -> (string option, error) result
(** [Ok (Some payload)] — one complete frame consumed; [Ok None] — more
    bytes needed; [Error _] — the stream is broken (the decoder stays
    broken: framing errors are not recoverable). *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed by {!next}. *)

(** {2 Blocking helpers (client side)} *)

val input : ?max_frame:int -> in_channel -> (string, [ `Frame of error | `Eof ]) result
(** Read exactly one frame from a blocking channel. *)

val output : out_channel -> string -> unit
(** Write one framed payload and flush the channel. *)
