(* The daemon's admission state machine over the sharded engine.  See
   shard_admission.mli. *)

module Obs = Gridbw_obs.Obs
module Event = Gridbw_obs.Event
module Span = Gridbw_obs.Span
module Store = Gridbw_store.Store
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Ledger = Gridbw_alloc.Ledger
module Reference = Gridbw_check.Reference
module Partition = Gridbw_shard.Partition
module Engine = Gridbw_shard.Engine

type entry =
  | Booked of Allocation.t
  | Refused of string
  | Cancelled of Allocation.t
  | In_flight  (** a worker is deciding this id right now; duplicates wait *)

type t = {
  engine : Engine.t;
  entries : (int, entry) Hashtbl.t;
  m : Mutex.t;
  settled : Condition.t;
  mutable accepted : int;
  mutable rejected : int;
}

let make engine =
  {
    engine;
    entries = Hashtbl.create 256;
    m = Mutex.create ();
    settled = Condition.create ();
    accepted = 0;
    rejected = 0;
  }

let create ?journal ~shards ~policy fabric =
  make (Engine.create ?journal ~shards policy fabric)

let engine t = t.engine
let shards t = Engine.shards t.engine
let dirty t = Engine.dirty t.engine
let flush t = Engine.flush t.engine
let snapshot t = Engine.snapshot_now t.engine
let stop t = Engine.stop t.engine

let accepted_count t =
  Mutex.lock t.m;
  let n = t.accepted in
  Mutex.unlock t.m;
  n

let rejected_count t =
  Mutex.lock t.m;
  let n = t.rejected in
  Mutex.unlock t.m;
  n

let active_count t =
  Engine.settle t.engine;
  Engine.active_count t.engine

(* --- request handling (thread-safe: workers call these concurrently) --- *)

let bad_request message = Protocol.Error { code = Protocol.Bad_request; message }

let prior_decision id = function
  | Booked a | Cancelled a ->
      Protocol.Admitted
        { id; bw = a.Allocation.bw; sigma = a.Allocation.sigma; tau = a.Allocation.tau }
  | Refused reason -> Protocol.Rejected { id; reason }
  | In_flight -> assert false

(* Claim [id] for this worker, or wait out a concurrent decider and
   return its decision (at-least-once retries must see one decision). *)
let claim t id =
  Mutex.lock t.m;
  let rec go () =
    match Hashtbl.find_opt t.entries id with
    | Some In_flight ->
        Condition.wait t.settled t.m;
        go ()
    | Some e ->
        Mutex.unlock t.m;
        `Prior (prior_decision id e)
    | None ->
        Hashtbl.replace t.entries id In_flight;
        Mutex.unlock t.m;
        `Claimed
  in
  go ()

let settle t id entry ~accepted ~rejected =
  Mutex.lock t.m;
  (match entry with
  | None -> Hashtbl.remove t.entries id
  | Some e -> Hashtbl.replace t.entries id e);
  if accepted then t.accepted <- t.accepted + 1;
  if rejected then t.rejected <- t.rejected + 1;
  Condition.broadcast t.settled;
  Mutex.unlock t.m

let reason_name r = Format.asprintf "%a" Types.pp_reason r

let admit ?(obs = Obs.disabled) t ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate =
  match claim t id with
  | `Prior resp -> resp
  | `Claimed -> (
      let invalid msg =
        settle t id None ~accepted:false ~rejected:false;
        bad_request msg
      in
      if ts < 0. then invalid "ts must be >= 0"
      else
        match Request.make ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate with
        | exception Invalid_argument msg -> invalid msg
        | r ->
            if not (Request.routed_on r (Engine.fabric t.engine)) then
              invalid
                (Printf.sprintf "no such route: ingress %d -> egress %d" ingress egress)
            else begin
              (* the engine sequences, decides, and journals Arrival +
                 decision inside the freeze window; this is the sharded
                 counterpart of the admit-search span stage *)
              let t0 = Span.now_ns () in
              let decision = Engine.try_admit ~obs t.engine r in
              Obs.observe obs "serve_stage_admit_search_ns" (Span.now_ns () -. t0);
              match decision with
              | Types.Accepted a ->
                  settle t id (Some (Booked a)) ~accepted:true ~rejected:false;
                  Protocol.Admitted
                    { id; bw = a.Allocation.bw; sigma = a.Allocation.sigma; tau = a.Allocation.tau }
              | Types.Rejected reason ->
                  let reason = reason_name reason in
                  settle t id (Some (Refused reason)) ~accepted:false ~rejected:true;
                  Protocol.Rejected { id; reason }
            end)

let query t id =
  Mutex.lock t.m;
  let rec entry () =
    match Hashtbl.find_opt t.entries id with
    | Some In_flight ->
        Condition.wait t.settled t.m;
        entry ()
    | e -> e
  in
  let e = entry () in
  Mutex.unlock t.m;
  let disposition =
    match e with
    | None -> Protocol.Unknown
    | Some (Refused reason) -> Protocol.Refused { reason }
    | Some (Cancelled _) -> Protocol.Cancelled
    | Some (Booked a) ->
        let bw = a.Allocation.bw and sigma = a.Allocation.sigma and tau = a.Allocation.tau in
        if tau <= Engine.now t.engine then Protocol.Done { bw; sigma; tau }
        else Protocol.Active { bw; sigma; tau }
    | Some In_flight -> assert false
  in
  Protocol.Status { id; disposition }

let cancel ?(obs = Obs.disabled) t id =
  Mutex.lock t.m;
  let rec entry () =
    match Hashtbl.find_opt t.entries id with
    | Some In_flight ->
        Condition.wait t.settled t.m;
        entry ()
    | e -> e
  in
  match entry () with
  | None ->
      Mutex.unlock t.m;
      Protocol.Cancel_failed { id; reason = "unknown id" }
  | Some (Refused _) ->
      Mutex.unlock t.m;
      Protocol.Cancel_failed { id; reason = "was rejected" }
  | Some (Cancelled _) ->
      Mutex.unlock t.m;
      Protocol.Cancel_ok { id } (* idempotent retry *)
  | Some (Booked a) ->
      (* hold the id In_flight across the engine call so a racing cancel
         or query of the same id waits instead of double-preempting *)
      Hashtbl.replace t.entries id In_flight;
      Mutex.unlock t.m;
      if Engine.cancel ~obs t.engine a then begin
        settle t id (Some (Cancelled a)) ~accepted:false ~rejected:false;
        Protocol.Cancel_ok { id }
      end
      else begin
        settle t id (Some (Booked a)) ~accepted:false ~rejected:false;
        Protocol.Cancel_failed { id; reason = "transfer already finished" }
      end
  | Some In_flight -> assert false

(* --- recovery --- *)

let of_recovered ~shards ~policy (r : Store.recovered) =
  Policy.validate policy;
  (* Audit the SURVIVING bookings — Accepts never preempted.  A preempted
     booking's remaining window was released live, so the whole-window
     audit would over-count it; the survivors, by contrast, all coexisted
     in the live counters (each overlap was admitted under capacity with
     the later-cancelled load still on top), so their static audit is
     sound for any cancel history. *)
  let allocs =
    let tbl = Hashtbl.create 256 in
    List.iter
      (fun (_, (a : Allocation.t)) -> Hashtbl.replace tbl a.Allocation.request.Request.id a)
      r.Store.accepted;
    List.iter
      (function Event.Preempt { id; _ } -> Hashtbl.remove tbl id | _ -> ())
      r.Store.events;
    Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
  in
  let audit_errors =
    match Reference.audit_allocations r.Store.initial_fabric allocs with
    | v :: _ -> [ "recovered journal fails the reference audit: " ^ Reference.describe v ]
    | [] ->
        (* per-shard audit: partition the surviving bookings by their
           owning shard under the *new* count and audit each shard's
           slice, so a corrupt journal names the shard it lands on *)
        let part = Partition.make ~shards in
        let by_shard = Array.make shards [] in
        List.iter
          (fun (a : Allocation.t) ->
            let s = Partition.of_ingress part a.Allocation.request.Request.ingress in
            by_shard.(s) <- a :: by_shard.(s))
          allocs;
        let errs = ref [] in
        Array.iteri
          (fun s slice ->
            match Reference.audit_allocations r.Store.initial_fabric slice with
            | [] -> ()
            | v :: _ ->
                errs :=
                  Printf.sprintf "shard %d fails the reference audit: %s" s
                    (Reference.describe v)
                  :: !errs)
          by_shard;
        List.rev !errs
  in
  match audit_errors with
  | e :: _ -> Error e
  | [] ->
      if not (Ledger.within_capacity (Store.ledger r.Store.store)) then
        Error "recovered ledger exceeds capacity"
      else begin
        match
          Engine.of_events ~journal:r.Store.store ~shards ~policy
            ~fabric:r.Store.initial_fabric r.Store.events
        with
        | Error e -> Error e
        | Ok engine ->
            let t = make engine in
            let by_id = Hashtbl.create 256 in
            List.iter
              (fun (_, (a : Allocation.t)) ->
                Hashtbl.replace by_id a.Allocation.request.Request.id a)
              r.Store.accepted;
            List.iter
              (fun ev ->
                match ev with
                | Event.Accept { id; _ } ->
                    Hashtbl.replace t.entries id (Booked (Hashtbl.find by_id id));
                    t.accepted <- t.accepted + 1
                | Event.Reject { id; reason; _ } ->
                    Hashtbl.replace t.entries id (Refused reason);
                    t.rejected <- t.rejected + 1
                | Event.Preempt { id; _ } -> (
                    match Hashtbl.find_opt t.entries id with
                    | Some (Booked a) -> Hashtbl.replace t.entries id (Cancelled a)
                    | _ -> ())
                | Event.Arrival _ | Event.Reshape _ | Event.Capacity _ | Event.Shed _
                | Event.Dispatch _ -> ())
              r.Store.events;
            Ok t
      end
