(* Worker pool bridging the daemon's select loop to the sharded
   admission engine.  See pool.mli. *)

module Obs = Gridbw_obs.Obs
module Metrics = Gridbw_obs.Metrics
module Mailbox = Gridbw_shard.Mailbox

type slot = {
  sm : Mutex.t;
  sc : Condition.t;
  mutable sv : Protocol.response option;
}

type job = Protocol.request * slot

type t = {
  adm : Shard_admission.t;
  boxes : job Mailbox.t array;
  mutable domains : unit Domain.t list;
  worker_obs : Obs.ctx array;  (** per-worker registries; Hashtbl is not thread-safe *)
  mutable stopped : bool;
}

let handle_one adm obs = function
  | Protocol.Admit { id; ingress; egress; volume; ts; tf; max_rate } ->
      Obs.count obs "serve_requests_total";
      Shard_admission.admit ~obs adm ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate
  | Protocol.Query { id } ->
      Obs.count obs "serve_requests_total";
      Shard_admission.query adm id
  | Protocol.Cancel { id } ->
      Obs.count obs "serve_requests_total";
      Shard_admission.cancel ~obs adm id
  | Protocol.Stats | Protocol.Shutdown ->
      (* the select loop answers these itself; a worker never sees them *)
      Protocol.Error { code = Protocol.Bad_request; message = "not routed to workers" }

let create ?(workers = 0) adm =
  let workers = if workers > 0 then workers else Shard_admission.shards adm in
  let boxes = Array.init workers (fun _ -> Mailbox.create ()) in
  let worker_obs = Array.init workers (fun _ -> Obs.create ()) in
  let t = { adm; boxes; domains = []; worker_obs; stopped = false } in
  t.domains <-
    Array.to_list
      (Array.mapi
         (fun w box ->
           Domain.spawn (fun () ->
               let obs = worker_obs.(w) in
               let rec loop () =
                 match Mailbox.recv box with
                 | Some (req, slot) ->
                     let resp = handle_one adm obs req in
                     Mutex.lock slot.sm;
                     slot.sv <- Some resp;
                     Condition.signal slot.sc;
                     Mutex.unlock slot.sm;
                     loop ()
                 | None -> ()
               in
               loop ()))
         boxes);
  t

let admission t = t.adm
let workers t = Array.length t.boxes

(* Sticky dispatch by connection: one connection's requests land on one
   worker in order, preserving the protocol's answer-in-request-order
   guarantee even with pipelined clients. *)
let submit t ~conn req =
  let slot = { sm = Mutex.create (); sc = Condition.create (); sv = None } in
  Mailbox.send t.boxes.(conn mod Array.length t.boxes) (req, slot);
  slot

let await slot =
  Mutex.lock slot.sm;
  while slot.sv = None do
    Condition.wait slot.sc slot.sm
  done;
  let v = Option.get slot.sv in
  Mutex.unlock slot.sm;
  v

let registries t =
  Array.to_list (Array.map (fun o -> Obs.metrics o) t.worker_obs)

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter Mailbox.close t.boxes;
    List.iter Domain.join t.domains;
    t.domains <- [];
    Shard_admission.stop t.adm
  end
