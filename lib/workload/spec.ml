module Fabric = Gridbw_topology.Fabric

type volume_dist =
  | Paper_set
  | Uniform_volume of { lo : float; hi : float }
  | Fixed_volume of float
  | Choice of float array

type flexibility = Rigid | Flexible of { max_slack : float }

type t = {
  fabric : Fabric.t;
  volumes : volume_dist;
  rate_lo : float;
  rate_hi : float;
  flexibility : flexibility;
  mean_interarrival : float;
  count : int;
}

(* §4.3: {10..90 GB by 10} ∪ {100..900 GB by 100} ∪ {1 TB}, in MB. *)
let paper_volume_set =
  let small = Array.init 9 (fun i -> float_of_int (i + 1) *. 10_000.) in
  let mid = Array.init 9 (fun i -> float_of_int (i + 1) *. 100_000.) in
  Array.concat [ small; mid; [| 1_000_000. |] ]

let mean_of_array a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let mean_volume = function
  | Paper_set -> mean_of_array paper_volume_set
  | Uniform_volume { lo; hi } -> 0.5 *. (lo +. hi)
  | Fixed_volume v -> v
  | Choice a -> mean_of_array a

let make ?fabric ?(volumes = Paper_set) ?(rate_lo = 10.) ?(rate_hi = 1000.)
    ?(flexibility = Flexible { max_slack = 4.0 }) ?(count = 1000) ~mean_interarrival () =
  let fabric = match fabric with Some f -> f | None -> Fabric.paper_default () in
  if rate_lo <= 0. || rate_hi < rate_lo then invalid_arg "Spec.make: bad rate range";
  if mean_interarrival <= 0. then invalid_arg "Spec.make: mean_interarrival must be positive";
  if count <= 0 then invalid_arg "Spec.make: count must be positive";
  (match volumes with
  | Uniform_volume { lo; hi } when lo <= 0. || hi < lo -> invalid_arg "Spec.make: bad volume range"
  | Fixed_volume v when v <= 0. -> invalid_arg "Spec.make: bad fixed volume"
  | Choice a when Array.length a = 0 || Array.exists (fun v -> v <= 0.) a ->
      invalid_arg "Spec.make: bad volume choice set"
  | _ -> ());
  (match flexibility with
  | Flexible { max_slack } when max_slack < 1. || not (Float.is_finite max_slack) ->
      invalid_arg "Spec.make: max_slack must be finite and >= 1"
  | _ -> ());
  { fabric; volumes; rate_lo; rate_hi; flexibility; mean_interarrival; count }

(* Replaying an external trace needs a spec only for its fabric; the
   generator parameters are placeholders and must not be used to draw
   requests.  [count] stays positive to satisfy the invariants. *)
let for_replay fabric = make ~fabric ~count:1 ~mean_interarrival:1.0 ()

let paper_rigid ?count ~load () =
  if load <= 0. then invalid_arg "Spec.paper_rigid: load must be positive";
  let fabric = Fabric.paper_default () in
  let mean_interarrival = mean_volume Paper_set /. (load *. Fabric.half_total_capacity fabric) in
  make ~fabric ~flexibility:Rigid ?count ~mean_interarrival ()

let paper_flexible ?count ?(max_slack = 4.0) ~mean_interarrival () =
  make ~flexibility:(Flexible { max_slack }) ?count ~mean_interarrival ()

let offered_load t =
  mean_volume t.volumes /. (t.mean_interarrival *. Fabric.half_total_capacity t.fabric)

let pp_volumes ppf = function
  | Paper_set -> Format.fprintf ppf "paper-set"
  | Uniform_volume { lo; hi } -> Format.fprintf ppf "uniform[%.0f,%.0f]MB" lo hi
  | Fixed_volume v -> Format.fprintf ppf "fixed(%.0fMB)" v
  | Choice a -> Format.fprintf ppf "choice(%d values)" (Array.length a)

let pp ppf t =
  Format.fprintf ppf "@[<h>spec{%s, vol=%a, rate=[%.0f,%.0f]MB/s, 1/λ=%.3fs, n=%d, load≈%.2f}@]"
    (match t.flexibility with Rigid -> "rigid" | Flexible _ -> "flexible")
    pp_volumes t.volumes t.rate_lo t.rate_hi t.mean_interarrival t.count (offered_load t)
