module Rng = Gridbw_prng.Rng
module Dist = Gridbw_prng.Dist
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request

let draw_volume rng (spec : Spec.t) =
  match spec.volumes with
  | Spec.Paper_set -> Rng.choose rng Spec.paper_volume_set
  | Spec.Uniform_volume { lo; hi } -> Rng.float_in rng lo hi
  | Spec.Fixed_volume v -> v
  | Spec.Choice a -> Rng.choose rng a

let generate rng (spec : Spec.t) =
  let fabric = spec.fabric in
  let ingress_n = Fabric.ingress_count fabric and egress_n = Fabric.egress_count fabric in
  let rec build id clock acc =
    if id >= spec.count then List.rev acc
    else begin
      let ts = clock +. Dist.exponential rng ~mean:spec.mean_interarrival in
      let ingress = Rng.int rng ingress_n in
      let egress = Rng.int rng egress_n in
      let volume = draw_volume rng spec in
      let requested_rate = Rng.float_in rng spec.rate_lo spec.rate_hi in
      (* Rigid: the window is exactly the transmission time at the drawn
         rate.  Flexible: the drawn rate is the host cap (MaxRate) and the
         window allows u x the transmission time, u ~ U[1, max_slack]
         (section 5.3's "bandwidth requests between 10MB/s and 1GB/s"). *)
      let tf, max_rate =
        match spec.flexibility with
        | Spec.Rigid -> (ts +. (volume /. requested_rate), requested_rate)
        | Spec.Flexible { max_slack } ->
            let slack = Rng.float_in rng 1.0 max_slack in
            (ts +. (slack *. volume /. requested_rate), requested_rate)
      in
      let r = Request.make ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate in
      build (id + 1) ts (r :: acc)
    end
  in
  build 0 0.0 []

let horizon requests =
  List.fold_left (fun acc (r : Request.t) -> Float.max acc r.tf) 0.0 requests

let arrival_span requests =
  match requests with
  | [] | [ _ ] -> 0.0
  | first :: _ ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) (r : Request.t) -> (Float.min lo r.ts, Float.max hi r.ts))
          (first.Request.ts, first.Request.ts)
          requests
      in
      hi -. lo

let total_volume requests =
  List.fold_left (fun acc (r : Request.t) -> acc +. r.volume) 0.0 requests

let measured_load fabric requests =
  let span = arrival_span requests in
  if span <= 0. then 0.0
  else total_volume requests /. (span *. Fabric.half_total_capacity fabric)
