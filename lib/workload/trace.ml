module Request = Gridbw_request.Request

let header = "id,ingress,egress,volume_mb,ts_s,tf_s,max_rate_mbps"

let line_of (r : Request.t) =
  Printf.sprintf "%d,%d,%d,%.17g,%.17g,%.17g,%.17g" r.id r.ingress r.egress r.volume r.ts r.tf
    r.max_rate

let buffer_add buf requests =
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (line_of r);
      Buffer.add_char buf '\n')
    requests

let to_string requests =
  let buf = Buffer.create 4096 in
  buffer_add buf requests;
  Buffer.contents buf

let to_channel oc requests = output_string oc (to_string requests)

let to_file path requests =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc requests)

let parse_line lineno line =
  match String.split_on_char ',' (String.trim line) with
  | [ id; ingress; egress; volume; ts; tf; max_rate ] -> (
      try
        Request.make ~id:(int_of_string id) ~ingress:(int_of_string ingress)
          ~egress:(int_of_string egress) ~volume:(float_of_string volume)
          ~ts:(float_of_string ts) ~tf:(float_of_string tf) ~max_rate:(float_of_string max_rate)
      with Invalid_argument msg | Failure msg ->
        failwith (Printf.sprintf "Trace: line %d: %s" lineno msg))
  | _ -> failwith (Printf.sprintf "Trace: line %d: expected 7 comma-separated fields" lineno)

let of_lines lines =
  match lines with
  | [] -> []
  | first :: rest ->
      let body = if String.trim first = header then rest else lines in
      let start = if body == rest then 2 else 1 in
      List.filteri (fun _ l -> String.trim l <> "") body
      |> List.mapi (fun i l -> parse_line (start + i) l)

let of_string s = of_lines (String.split_on_char '\n' s)

let of_channel ic =
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  of_lines (read [])

let of_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)
