module Rng = Gridbw_prng.Rng
module Dist = Gridbw_prng.Dist
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request

type intensity = float -> float

let day_night ~base ~peak ~period =
  if base < 0. || peak < base then invalid_arg "Diurnal.day_night: need 0 <= base <= peak";
  if period <= 0. then invalid_arg "Diurnal.day_night: period must be positive";
  fun t ->
    let phase = 2.0 *. Float.pi *. (t /. period) in
    (* cos starts at the crest; shift so t = 0 is the trough. *)
    base +. ((peak -. base) *. 0.5 *. (1.0 -. cos phase))

let arrival_times rng intensity ~peak ~horizon =
  if peak <= 0. then invalid_arg "Diurnal.arrival_times: peak must be positive";
  if horizon <= 0. then invalid_arg "Diurnal.arrival_times: horizon must be positive";
  (* Lewis-Shedler thinning: candidate arrivals at the dominating constant
     rate [peak], kept with probability intensity(t) / peak. *)
  let rec loop t acc =
    let t = t +. Dist.exponential rng ~mean:(1.0 /. peak) in
    if t >= horizon then List.rev acc
    else begin
      let rate = intensity t in
      if rate < 0. || rate > peak *. (1. +. 1e-9) then
        invalid_arg "Diurnal.arrival_times: intensity outside [0, peak]";
      if Rng.float rng 1.0 < rate /. peak then loop t (t :: acc) else loop t acc
    end
  in
  loop 0.0 []

let generate rng (spec : Spec.t) intensity ~peak ~horizon =
  let fabric = spec.Spec.fabric in
  let arrivals = arrival_times rng intensity ~peak ~horizon in
  List.mapi
    (fun id ts ->
      let ingress = Rng.int rng (Fabric.ingress_count fabric) in
      let egress = Rng.int rng (Fabric.egress_count fabric) in
      let volume =
        match spec.Spec.volumes with
        | Spec.Paper_set -> Rng.choose rng Spec.paper_volume_set
        | Spec.Uniform_volume { lo; hi } -> Rng.float_in rng lo hi
        | Spec.Fixed_volume v -> v
        | Spec.Choice a -> Rng.choose rng a
      in
      let rate = Rng.float_in rng spec.Spec.rate_lo spec.Spec.rate_hi in
      let tf, max_rate =
        match spec.Spec.flexibility with
        | Spec.Rigid -> (ts +. (volume /. rate), rate)
        | Spec.Flexible { max_slack } ->
            let slack = Rng.float_in rng 1.0 max_slack in
            (ts +. (slack *. volume /. rate), rate)
      in
      Request.make ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate)
    arrivals
