(** Workload parameterisation (paper, sections 4.3 and 5.3).

    A spec fixes the fabric, the request-volume distribution, the range of
    requested transmission rates, the Poisson arrival intensity, and the
    number of requests.  {!Gen.generate} turns a spec plus an RNG into a
    concrete request list. *)

type volume_dist =
  | Paper_set  (** the §4.3 set: 10–90 GB by 10, 100–900 GB by 100, 1 TB *)
  | Uniform_volume of { lo : float; hi : float }  (** MB *)
  | Fixed_volume of float  (** MB *)
  | Choice of float array  (** uniform over explicit values, MB *)

type flexibility =
  | Rigid
      (** window length is exactly [volume / requested_rate]; the request
          must transmit at that rate for its whole window (§4) *)
  | Flexible of { max_slack : float }
      (** the drawn rate is the host cap ([MaxRate], the §5.3 "bandwidth
          request between 10MB/s and 1GB/s"); the transmission window is
          [u × volume / MaxRate] with [u] uniform on [\[1, max_slack\]], so
          [MinRate = MaxRate / u].  [max_slack] must be finite and ≥ 1 *)

type t = {
  fabric : Gridbw_topology.Fabric.t;
  volumes : volume_dist;
  rate_lo : float;  (** MB/s, lower bound of the requested-rate draw *)
  rate_hi : float;  (** MB/s, upper bound *)
  flexibility : flexibility;
  mean_interarrival : float;  (** s, Poisson arrival process *)
  count : int;  (** number of requests to generate *)
}

val paper_volume_set : float array
(** §4.3 volume set in MB. *)

val mean_volume : volume_dist -> float
(** Expected volume of one request under the distribution, MB. *)

val make :
  ?fabric:Gridbw_topology.Fabric.t ->
  ?volumes:volume_dist ->
  ?rate_lo:float ->
  ?rate_hi:float ->
  ?flexibility:flexibility ->
  ?count:int ->
  mean_interarrival:float ->
  unit ->
  t
(** Defaults: paper fabric (10+10 × 1 GB/s), [Paper_set] volumes, rates
    10–1000 MB/s, [Flexible {max_slack = 4.0}], 1000 requests.
    Raises [Invalid_argument] on non-positive parameters. *)

val for_replay : Gridbw_topology.Fabric.t -> t
(** A spec that only carries the fabric, for running a scheduler on a
    trace that was not drawn from a generator (CLI replay, fault drills).
    The generator parameters are placeholders; do not {!Gen.generate}
    from it. *)

val paper_rigid : ?count:int -> load:float -> unit -> t
(** §4.3 rigid workload calibrated so the time-averaged offered load
    (Σ demanded bandwidth / ½ Σ capacities) equals [load]: by Little's law
    the mean inter-arrival time is [mean_volume / (load * half_capacity)]. *)

val paper_flexible :
  ?count:int -> ?max_slack:float -> mean_interarrival:float -> unit -> t
(** §5.3 flexible workload, arrivals every [mean_interarrival] seconds on
    average; window slack uniform on [\[1, max_slack\]] (default 4). *)

val offered_load : t -> float
(** The time-averaged offered load this spec induces:
    [mean_volume / (mean_interarrival * half_capacity)]. *)

val pp : Format.formatter -> t -> unit
