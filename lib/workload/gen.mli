(** Turning a {!Spec.t} into a concrete request list. *)

val generate : Gridbw_prng.Rng.t -> Spec.t -> Gridbw_request.Request.t list
(** Draw [spec.count] requests: Poisson arrivals (exponential
    inter-arrival times of the spec's mean), uniformly random ingress and
    egress ports, volume from the spec's distribution, requested rate
    uniform in [\[rate_lo, rate_hi\]].  For rigid specs the window is
    exactly [volume / rate] and [MaxRate = MinRate = rate]; for flexible
    specs the drawn rate is the host cap ([MaxRate]) and the window is
    [u × volume / rate] with [u ~ U[1, max_slack]] ([MinRate = rate / u]).
    Ids are 0-based in arrival order; the returned list is sorted by
    arrival time. *)

val horizon : Gridbw_request.Request.t list -> float
(** Latest deadline ([max tf]); 0 for the empty list. *)

val arrival_span : Gridbw_request.Request.t list -> float
(** [max ts -. min ts]; 0 for fewer than two requests. *)

val measured_load :
  Gridbw_topology.Fabric.t -> Gridbw_request.Request.t list -> float
(** Realised time-averaged offered load over the arrival span:
    [Σ volume / (arrival_span × ½ Σ capacities)] (paper §4.3 definition,
    time-averaged).  0 when the span is empty. *)

val total_volume : Gridbw_request.Request.t list -> float
