(** Non-homogeneous Poisson arrivals for diurnal grid workloads.

    Grid traffic is not stationary: §1's data-grid scenario moves nightly
    experiment output in bursts.  This module draws arrival times from an
    arbitrary intensity function by Lewis-Shedler thinning and builds
    request lists with the same per-request marginals as {!Gen} but a
    time-varying rate. *)

type intensity = float -> float
(** Arrival rate (requests/s) as a function of time; must be bounded by
    the [peak] passed to the sampler and non-negative. *)

val day_night : base:float -> peak:float -> period:float -> intensity
(** Sinusoidal day/night cycle: [base] at the trough, [peak] at the crest,
    crest at [period/2].  Requires [0 <= base <= peak] and [period > 0]. *)

val arrival_times :
  Gridbw_prng.Rng.t -> intensity -> peak:float -> horizon:float -> float list
(** Thinning sampler: arrival instants on [\[0, horizon)), increasing.
    [peak] must dominate the intensity on the horizon (checked pointwise
    as it samples; raises [Invalid_argument] when violated). *)

val generate :
  Gridbw_prng.Rng.t ->
  Spec.t ->
  intensity ->
  peak:float ->
  horizon:float ->
  Gridbw_request.Request.t list
(** Like {!Gen.generate} but with thinned arrivals over [horizon]; the
    spec's [mean_interarrival] and [count] are ignored (the process
    determines how many requests arrive). *)
