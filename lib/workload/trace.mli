(** CSV persistence of workload traces.

    Format (one line per request, header included):
    [id,ingress,egress,volume_mb,ts_s,tf_s,max_rate_mbps].  Floats are
    printed with enough digits to round-trip exactly ([%.17g]). *)

val to_channel : out_channel -> Gridbw_request.Request.t list -> unit
val to_file : string -> Gridbw_request.Request.t list -> unit

val of_channel : in_channel -> Gridbw_request.Request.t list
(** Raises [Failure] with a line-number message on malformed input. *)

val of_file : string -> Gridbw_request.Request.t list

val to_string : Gridbw_request.Request.t list -> string
val of_string : string -> Gridbw_request.Request.t list
