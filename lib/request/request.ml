module Fabric = Gridbw_topology.Fabric

type t = {
  id : int;
  ingress : int;
  egress : int;
  volume : float;
  ts : float;
  tf : float;
  max_rate : float;
}

let finite x = Float.is_finite x

let make ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate =
  if not (finite volume && finite ts && finite tf && finite max_rate) then
    invalid_arg "Request.make: non-finite field";
  if volume <= 0. then invalid_arg "Request.make: volume must be positive";
  if tf <= ts then invalid_arg "Request.make: empty transmission window";
  if max_rate <= 0. then invalid_arg "Request.make: max_rate must be positive";
  let min_rate = volume /. (tf -. ts) in
  if max_rate < min_rate *. (1. -. 1e-9) then
    invalid_arg "Request.make: max_rate below min_rate (deadline unreachable)";
  { id; ingress; egress; volume; ts; tf; max_rate }

let make_rigid ~id ~ingress ~egress ~bw ~ts ~tf =
  if bw <= 0. then invalid_arg "Request.make_rigid: bandwidth must be positive";
  if tf <= ts then invalid_arg "Request.make_rigid: empty transmission window";
  make ~id ~ingress ~egress ~volume:(bw *. (tf -. ts)) ~ts ~tf ~max_rate:bw

let min_rate r = r.volume /. (r.tf -. r.ts)

let min_rate_at r ~now =
  if now >= r.tf then None
  else
    let start = Float.max now r.ts in
    if start >= r.tf then None else Some (r.volume /. (r.tf -. start))

let window_length r = r.tf -. r.ts

let duration_at r ~bw =
  if bw <= 0. then invalid_arg "Request.duration_at: bandwidth must be positive";
  r.volume /. bw

let is_rigid r = r.max_rate <= min_rate r *. (1. +. 1e-9)
let slack r = r.max_rate /. min_rate r
let routed_on r fabric = Fabric.valid_ingress fabric r.ingress && Fabric.valid_egress fabric r.egress
let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id

let pp ppf r =
  Format.fprintf ppf "r%d[%d->%d vol=%.1fMB win=[%.2f,%.2f] max=%.1fMB/s]" r.id r.ingress
    r.egress r.volume r.ts r.tf r.max_rate
