(** Short-lived transfer requests (paper, section 2.1).

    A request moves [volume] MB from [ingress] to [egress] within the
    transmission window [\[ts, tf\]]; the end systems cap its rate at
    [max_rate] MB/s.  The slowest feasible rate is
    [min_rate = volume / (tf - ts)]; a request is {e rigid} when
    [min_rate = max_rate] (no scheduling freedom) and {e flexible}
    otherwise. *)

type t = private {
  id : int;  (** unique within a workload; ties in heuristics break on id *)
  ingress : int;  (** index of the ingress access point *)
  egress : int;  (** index of the egress access point *)
  volume : float;  (** MB, > 0 *)
  ts : float;  (** requested start time (also the arrival time), s *)
  tf : float;  (** requested finish deadline, s; tf > ts *)
  max_rate : float;  (** host transmission limit, MB/s *)
}

val make :
  id:int -> ingress:int -> egress:int -> volume:float -> ts:float -> tf:float ->
  max_rate:float -> t
(** Validates: [volume > 0], [tf > ts], [max_rate > 0], all finite, and
    [max_rate >= min_rate] up to a relative [1e-9] slack (otherwise the
    request could never meet its own deadline).
    Raises [Invalid_argument] on violation. *)

val make_rigid :
  id:int -> ingress:int -> egress:int -> bw:float -> ts:float -> tf:float -> t
(** Rigid request transmitting at exactly [bw] for the whole window:
    [volume = bw * (tf - ts)] and [max_rate = bw]. *)

val min_rate : t -> float
(** [volume / (tf - ts)] — the rate below which the deadline is missed. *)

val min_rate_at : t -> now:float -> float option
(** Deadline-aware minimum rate when transmission starts at [now] instead
    of [ts]: [volume / (tf - now)].  [None] if [now >= tf] (window already
    closed). *)

val window_length : t -> float
(** [tf - ts]. *)

val duration_at : t -> bw:float -> float
(** Transmission time [volume / bw] at rate [bw > 0]. *)

val is_rigid : t -> bool
(** True when [min_rate] and [max_rate] coincide (relative tolerance
    [1e-9]): the scheduler has no freedom on the assigned bandwidth. *)

val slack : t -> float
(** [max_rate /. min_rate >= 1]; 1 for rigid requests. *)

val routed_on : t -> Gridbw_topology.Fabric.t -> bool
(** Both endpoints are valid ports of the fabric. *)

val compare : t -> t -> int
(** Total order by [id]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
