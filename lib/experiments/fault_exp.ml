module Table = Gridbw_report.Table
module Request = Gridbw_request.Request
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Flexible = Gridbw_core.Flexible
module Summary = Gridbw_metrics.Summary
module Resilience = Gridbw_metrics.Resilience
module Rng = Gridbw_prng.Rng
module Fault = Gridbw_fault.Fault
module Victim = Gridbw_fault.Victim
module Injector = Gridbw_fault.Injector

type row = {
  variant : string;
  mtbf : float;
  depth : float;  (** mean retained-capacity fraction during outages *)
  accept : float;
  kept : float;
  recovered : float;
  violation_min : float;
  goodput : float;
}

let policy = Policy.Fraction_of_max 0.8
let window_step = 400.0

(* Fault scripts get their own seed stream, decorrelated from the workload
   stream so the same faults hit every admission variant of a rep. *)
let fault_seed params ~rep = Int64.add (Runner.seed_for params ~rep) 7919L

let config_of ~admission ~recovery ~victim =
  { (Injector.default_config ~policy ~admission ()) with recovery; victim }

let variants =
  [
    ("greedy+recovery", Injector.Greedy, Injector.Resubmit);
    ("window+recovery", Injector.Window window_step, Injector.Resubmit);
    ("greedy no-recovery", Injector.Greedy, Injector.No_recovery);
  ]

let script_for params ~rep spec fault_spec requests =
  let rng = Rng.create ~seed:(fault_seed params ~rep) () in
  let horizon = Fault.horizon_of_requests requests in
  Fault.generate rng spec.Spec.fabric ~horizon fault_spec

let one_cell (params : Runner.params) ~mean_interarrival ~fault_spec ~victim
    (label, admission, recovery) =
  let cfg = config_of ~admission ~recovery ~victim in
  let acc = ref 0.0 and kept = ref 0.0 and recov = ref 0.0 in
  let viol = ref 0.0 and gput = ref 0.0 in
  for rep = 0 to params.Runner.reps - 1 do
    let spec = Runner.flexible_spec params ~mean_interarrival in
    let requests = Gen.generate (Rng.create ~seed:(Runner.seed_for params ~rep) ()) spec in
    let script = script_for params ~rep spec fault_spec requests in
    let report = Injector.run spec.Spec.fabric cfg script requests in
    let total = float_of_int (max 1 (List.length requests)) in
    acc :=
      !acc +. (float_of_int (List.length report.Injector.result.Types.accepted) /. total);
    kept := !kept +. report.Injector.stats.Resilience.guarantee_kept;
    recov := !recov +. report.Injector.stats.Resilience.recovered_fraction;
    viol := !viol +. report.Injector.stats.Resilience.violation_minutes;
    gput := !gput +. report.Injector.stats.Resilience.goodput
  done;
  let reps = float_of_int (max 1 params.Runner.reps) in
  {
    variant = label;
    mtbf = fault_spec.Fault.mtbf;
    depth = 0.5 *. (fault_spec.Fault.depth_lo +. fault_spec.Fault.depth_hi);
    accept = !acc /. reps;
    kept = !kept /. reps;
    recovered = !recov /. reps;
    violation_min = !viol /. reps;
    goodput = !gput /. reps;
  }

let default_fault_specs =
  [
    { Fault.default_spec with Fault.mtbf = 400.0; depth_lo = 0.4; depth_hi = 0.7 };
    { Fault.default_spec with Fault.mtbf = 400.0; depth_lo = 0.0; depth_hi = 0.3 };
    { Fault.default_spec with Fault.mtbf = 150.0; depth_lo = 0.0; depth_hi = 0.3 };
  ]

let run ?(fault_specs = default_fault_specs) ?(mean_interarrival = 0.3)
    (params : Runner.params) =
  List.concat_map
    (fun fault_spec ->
      List.map
        (one_cell params ~mean_interarrival ~fault_spec ~victim:Victim.Smallest_residual)
        variants)
    fault_specs

let to_table rows =
  Table.make
    ~headers:
      [ "variant"; "MTBF (s)"; "mean depth"; "accept"; "kept"; "recovered";
        "violation (min)"; "goodput (MB/s)" ]
    (List.map
       (fun r ->
         [
           r.variant;
           Printf.sprintf "%.0f" r.mtbf;
           Printf.sprintf "%.2f" r.depth;
           Printf.sprintf "%.3f" r.accept;
           Printf.sprintf "%.3f" r.kept;
           Printf.sprintf "%.3f" r.recovered;
           Printf.sprintf "%.2f" r.violation_min;
           Printf.sprintf "%.1f" r.goodput;
         ])
       rows)

(* Victim-policy ablation under the harshest default fault spec. *)
let run_ablation ?(mean_interarrival = 0.3) (params : Runner.params) =
  let fault_spec = { Fault.default_spec with Fault.mtbf = 150.0; depth_lo = 0.0; depth_hi = 0.3 } in
  List.map
    (fun victim ->
      let r =
        one_cell params ~mean_interarrival ~fault_spec ~victim
          ("greedy+recovery", Injector.Greedy, Injector.Resubmit)
      in
      (Victim.name victim, r))
    Victim.all

let ablation_table rows =
  Table.make
    ~headers:[ "victim policy"; "kept"; "recovered"; "violation (min)"; "goodput (MB/s)" ]
    (List.map
       (fun (name, r) ->
         [
           name;
           Printf.sprintf "%.3f" r.kept;
           Printf.sprintf "%.3f" r.recovered;
           Printf.sprintf "%.2f" r.violation_min;
           Printf.sprintf "%.1f" r.goodput;
         ])
       rows)

(* Acceptance gate: with no faults the injector must reproduce the
   fault-free heuristics bit for bit. *)
let parity (params : Runner.params) =
  let spec = Runner.flexible_spec params ~mean_interarrival:0.3 in
  let requests = Gen.generate (Rng.create ~seed:(Runner.seed_for params ~rep:0) ()) spec in
  let fabric = spec.Spec.fabric in
  let same (a : Types.result) (b : Types.result) =
    let ids l = List.map (fun (x : Gridbw_alloc.Allocation.t) -> x.request.Request.id) l in
    let summary (r : Types.result) =
      Summary.compute fabric ~all:r.Types.all ~accepted:r.Types.accepted
    in
    ids a.Types.accepted = ids b.Types.accepted && summary a = summary b
  in
  let g_ref = Flexible.greedy fabric policy requests in
  let g_inj =
    (Injector.run fabric (config_of ~admission:Injector.Greedy ~recovery:Injector.Resubmit
                            ~victim:Victim.Smallest_residual) [] requests)
      .Injector.result
  in
  let w_ref = Flexible.window ~step:window_step fabric policy requests in
  let w_inj =
    (Injector.run fabric (config_of ~admission:(Injector.Window window_step)
                            ~recovery:Injector.Resubmit ~victim:Victim.Smallest_residual) [] requests)
      .Injector.result
  in
  (same g_ref g_inj, same w_ref w_inj)
