(** Experiment E15 — stress-testing the paper's §2 assumption that "the
    capacity of the network core is larger than the aggregated capacity of
    all access points", so admission can ignore the core.

    We admit with edge-only GREEDY, then replay the accepted schedule
    against a core trunk of capacity ρ × ½(ΣB_in + ΣB_out) and measure how
    often the aggregate admitted rate would overload it.  A core-aware
    GREEDY variant (edge checks plus a trunk counter) shows what admission
    would have to give up if the assumption fails. *)

type row = {
  rho : float;  (** trunk capacity as a fraction of ½ Σ edge capacity *)
  edge_accept : float;  (** accept rate of edge-only admission *)
  violation_time_fraction : float;
      (** fraction of the schedule span where the admitted aggregate rate
          exceeds the trunk *)
  peak_trunk_load : float;  (** peak aggregate rate / trunk capacity *)
  core_aware_accept : float;  (** accept rate when the trunk is checked too *)
}

val run :
  ?rhos:float list -> ?mean_interarrival:float -> Runner.params -> row list
(** Defaults: ρ ∈ {0.3, 0.5, 0.7, 1.0}, inter-arrival 0.15 s (load ~2). *)

val to_table : row list -> Gridbw_report.Table.t
