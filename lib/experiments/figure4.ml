module Figure = Gridbw_report.Figure
module Summary = Gridbw_metrics.Summary

let default_loads = [ 0.5; 1.0; 1.5; 2.0; 3.0; 4.0; 5.0 ]

let run ?(loads = default_loads) params =
  let series_for metric =
    List.map
      (fun (name, kind) ->
        let points =
          List.map
            (fun load ->
              let y =
                Runner.mean_over_reps params (fun ~rep ->
                    metric (Runner.rigid_summary params ~load kind ~rep))
              in
              (load, y))
            loads
        in
        Figure.series ~label:name points)
      Runner.rigid_kinds
  in
  let accept =
    Figure.make ~id:"fig4-accept" ~title:"Rigid heuristics: request accept rate (paper Fig. 4)"
      ~x_label:"offered load" ~y_label:"accept rate"
      (series_for (fun s -> s.Summary.accept_rate))
  in
  let util =
    Figure.make ~id:"fig4-util" ~title:"Rigid heuristics: resource utilization (paper Fig. 4)"
      ~x_label:"offered load" ~y_label:"utilization (B_scaled)"
      (series_for (fun s -> s.Summary.utilization))
  in
  (accept, util)
