(** Experiment E1 — paper Figure 4: the four rigid heuristics (FIFO,
    CUMULATED-SLOTS, MINBW-SLOTS, MINVOL-SLOTS) compared on accept rate and
    on RESOURCE-UTIL across offered loads (§4.3 platform and volumes).

    Expected shape (§4.4): FIFO far worst (~10 % accept, <20 % utilization
    under load); MINVOL-SLOTS below the other two slot heuristics;
    CUMULATED-SLOTS ≈ MINBW-SLOTS on top. *)

val default_loads : float list
(** 0.5, 1, 1.5, 2, 3, 4, 5. *)

val run : ?loads:float list -> Runner.params -> Gridbw_report.Figure.t * Gridbw_report.Figure.t
(** [(accept-rate figure, utilization figure)], one series per heuristic,
    x = offered load. *)
