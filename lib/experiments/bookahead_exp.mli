(** Experiment E12 — book-ahead reservations (section 6's contrast with
    Burchard et al. [6]): what fraction of users booking their transfer in
    advance changes whom the network serves.

    Each request books with probability [p]; bookers announce an
    exponentially distributed lead before their start, non-bookers announce
    at their start.  Decisions are first-come-first-booked on the
    time-indexed ledger.  Expected shape: bookers enjoy a markedly higher
    accept rate at the expense of non-bookers; the overall accept rate
    moves little (capacity, not order, is the binding constraint). *)

type row = {
  booking_fraction : float;
  overall_accept : float;
  booker_accept : float;  (** accept rate among booking requests *)
  walkin_accept : float;  (** accept rate among non-booking requests *)
  bookers : int;  (** total booking requests across replications *)
}

val run :
  ?fractions:float list ->
  ?mean_lead:float ->
  ?mean_interarrival:float ->
  Runner.params ->
  row list
(** Defaults: fractions {0, 0.25, 0.5, 0.75, 1}, 300 s mean lead,
    0.15 s inter-arrival (load ~2). *)

val to_table : row list -> Gridbw_report.Table.t
