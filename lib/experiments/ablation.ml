module Figure = Gridbw_report.Figure
module Summary = Gridbw_metrics.Summary
module Policy = Gridbw_core.Policy

let default_steps = [ 10.; 25.; 50.; 100.; 200.; 400. ]

let run ?(steps = default_steps) ?(mean_interarrival = 0.2) params =
  let policy = Policy.Fraction_of_max 1.0 in
  let accept kind =
    Runner.mean_over_reps params (fun ~rep ->
        (Runner.flexible_summary params ~mean_interarrival kind policy ~rep).Summary.accept_rate)
  in
  let curve of_step = List.map (fun step -> (step, accept (of_step step))) steps in
  let greedy_level = accept `Greedy in
  Figure.make ~id:"ablation-window" ~title:"Ablation A1: lookahead vs deferred batching"
    ~x_label:"interval length (s)" ~y_label:"accept rate"
    [
      Figure.series ~label:"WINDOW (lookahead, paper)" (curve (fun s -> `Window s));
      Figure.series ~label:"WINDOW-DEFERRED (no clairvoyance)"
        (curve (fun s -> `Window_deferred s));
      Figure.series ~label:"GREEDY reference" (List.map (fun s -> (s, greedy_level)) steps);
    ]
