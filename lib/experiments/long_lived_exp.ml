module Table = Gridbw_report.Table
module Fabric = Gridbw_topology.Fabric
module Long_lived = Gridbw_core.Long_lived
module Rng = Gridbw_prng.Rng

type row = {
  requests : int;
  uniform_bw : float;
  greedy_accepted : float;
  optimal_accepted : float;
  gap : float;
}

let random_requests rng fabric ~count ~bw =
  List.init count (fun id ->
      Long_lived.request ~id
        ~ingress:(Rng.int rng (Fabric.ingress_count fabric))
        ~egress:(Rng.int rng (Fabric.egress_count fabric))
        ~bw)

let run ?(request_counts = [ 50; 100; 200; 400; 800 ]) ?(uniform_bw = 300.0)
    (params : Runner.params) =
  let fabric = Fabric.paper_default () in
  List.map
    (fun count ->
      let greedy_total = ref 0 and optimal_total = ref 0 in
      for rep = 0 to params.Runner.reps - 1 do
        let rng = Rng.create ~seed:(Runner.seed_for params ~rep) () in
        let requests = random_requests rng fabric ~count ~bw:uniform_bw in
        let greedy = Long_lived.greedy fabric requests in
        let optimal = Long_lived.optimal_uniform fabric ~bw:uniform_bw requests in
        greedy_total := !greedy_total + List.length greedy.Long_lived.accepted;
        optimal_total := !optimal_total + List.length optimal.Long_lived.accepted
      done;
      let reps = float_of_int (max 1 params.Runner.reps) in
      let greedy_accepted = float_of_int !greedy_total /. reps in
      let optimal_accepted = float_of_int !optimal_total /. reps in
      {
        requests = count;
        uniform_bw;
        greedy_accepted;
        optimal_accepted;
        gap =
          (if optimal_accepted > 0. then 1.0 -. (greedy_accepted /. optimal_accepted) else 0.0);
      })
    request_counts

let to_table rows =
  Table.make
    ~headers:[ "requests"; "uniform bw (MB/s)"; "greedy accepted"; "optimal (max-flow)"; "gap" ]
    (List.map
       (fun r ->
         [
           string_of_int r.requests;
           Printf.sprintf "%.0f" r.uniform_bw;
           Printf.sprintf "%.1f" r.greedy_accepted;
           Printf.sprintf "%.1f" r.optimal_accepted;
           Printf.sprintf "%.1f%%" (100. *. r.gap);
         ])
       rows)
