(** Experiment E17 — MALLEABLE accept rates under overload, and the
    small-instance gap to the exact malleable optimum.

    {b Sweep} ({!run}): the §5.3 flexible workload at four overloaded
    operating points (mean inter-arrival 0.1–0.2 s, offered load ~16–31),
    GREEDY and WINDOW against the MALLEABLE engine with and without
    in-advance booking.  Expected shape: MALLEABLE's accept rate is at
    least GREEDY's on every row and strictly higher on at least one —
    step profiles can thread volume through busy stretches a constant
    rate cannot.  This dominance is an {e overload} property: under
    moderate load a large profile-only-feasible transfer occasionally
    displaces several later small ones (see EXPERIMENTS.md), which is why
    the shipped operating points sit deep in the rejecting regime.

    {b Gap} ({!gap}): random small 1×1 instances where
    {!Gridbw_core.Exact.max_requests_malleable}'s flow feasibility check
    is exact, reporting the engine's accepted count against the optimum
    (the E6 analogue for profiles). *)

type row = {
  mean_interarrival : float;
  offered_load : float;
  greedy : float;  (** GREEDY / MIN BW accept rate *)
  window : float;  (** WINDOW (default 100 s step) / MIN BW accept rate *)
  malleable : float;  (** MALLEABLE, decide-at-arrival *)
  malleable_ba : float;  (** MALLEABLE with in-advance booking (default 30 s) *)
}

val default_interarrivals : float list
(** [{0.1; 0.125; 0.15; 0.2}] — the overload operating points. *)

val run :
  ?interarrivals:float list ->
  ?step:float ->
  ?book_ahead:float ->
  Runner.params ->
  row list

val to_table : row list -> Gridbw_report.Table.t

type gap_row = {
  size : int;
  trials : int;
  engine_accepted : int;  (** summed over trials *)
  exact_count : int;  (** summed over trials *)
  all_optimal : bool;  (** no trial exhausted the solver's node budget *)
}

val gap : ?sizes:int list -> ?trials:int -> seed:int64 -> unit -> gap_row list
val gap_table : gap_row list -> Gridbw_report.Table.t
