module Table = Gridbw_report.Table
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Policy = Gridbw_core.Policy
module Scheduler = Gridbw_core.Scheduler
module Exact = Gridbw_core.Exact
module Types = Gridbw_core.Types
module Spec = Gridbw_workload.Spec
module Rng = Gridbw_prng.Rng

type row = {
  heuristic : string;
  mean_ratio : float;
  worst_ratio : float;
  optimal_instances : int;
  instances : int;
}

let random_instance rng fabric n =
  List.init n (fun id ->
      let ingress = Rng.int rng (Fabric.ingress_count fabric) in
      let egress = Rng.int rng (Fabric.egress_count fabric) in
      let ts = Rng.float_in rng 0. 30. in
      let dur = Rng.float_in rng 2. 20. in
      Request.make_rigid ~id ~ingress ~egress ~bw:(Rng.float_in rng 20. 90.) ~ts ~tf:(ts +. dur))

let run ?(instances = 12) ?(requests_per_instance = 14) (params : Runner.params) =
  let fabric = Fabric.uniform ~ingress_count:2 ~egress_count:2 ~capacity:100.0 in
  let rng = Rng.create ~seed:params.Runner.seed () in
  let spec = Spec.for_replay fabric in
  let ratios = Hashtbl.create 8 in
  List.iter (fun (name, _) -> Hashtbl.replace ratios name []) Runner.rigid_schedulers;
  for _ = 1 to instances do
    let reqs = random_instance rng fabric requests_per_instance in
    let optimum = (Exact.max_requests fabric reqs).Exact.count in
    if optimum > 0 then
      List.iter
        (fun (name, sched) ->
          let got = List.length (Scheduler.run sched spec reqs).Types.accepted in
          let ratio = float_of_int got /. float_of_int optimum in
          Hashtbl.replace ratios name (ratio :: Hashtbl.find ratios name))
        Runner.rigid_schedulers
  done;
  List.map
    (fun (name, _) ->
      let rs = Hashtbl.find ratios name in
      let n = List.length rs in
      {
        heuristic = name;
        mean_ratio =
          (if n = 0 then 0.0 else List.fold_left ( +. ) 0.0 rs /. float_of_int n);
        worst_ratio = List.fold_left Float.min 1.0 rs;
        optimal_instances = List.length (List.filter (fun r -> r >= 1.0 -. 1e-9) rs);
        instances = n;
      })
    Runner.rigid_schedulers

let random_flexible_instance rng fabric n =
  List.init n (fun id ->
      let ingress = Rng.int rng (Fabric.ingress_count fabric) in
      let egress = Rng.int rng (Fabric.egress_count fabric) in
      let ts = Rng.float_in rng 0. 30. in
      let max_rate = Rng.float_in rng 20. 90. in
      let volume = Rng.float_in rng 50. 600. in
      let slack = Rng.float_in rng 1. 3. in
      Request.make ~id ~ingress ~egress ~volume ~ts
        ~tf:(ts +. (slack *. volume /. max_rate))
        ~max_rate)

let run_flexible ?(instances = 10) ?(requests_per_instance = 12) (params : Runner.params) =
  let fabric = Fabric.uniform ~ingress_count:2 ~egress_count:2 ~capacity:100.0 in
  let rng = Rng.create ~seed:params.Runner.seed () in
  let contenders =
    [
      ("GREEDY min-bw", Scheduler.of_flexible `Greedy Policy.Min_rate);
      ("GREEDY f=1", Scheduler.of_flexible `Greedy (Policy.Fraction_of_max 1.0));
      ("WINDOW(10) min-bw", Scheduler.of_flexible (`Window 10.) Policy.Min_rate);
      ("WINDOW(10) f=1", Scheduler.of_flexible (`Window 10.) (Policy.Fraction_of_max 1.0));
    ]
  in
  let spec = Spec.for_replay fabric in
  let ratios = Hashtbl.create 8 in
  List.iter (fun (name, _) -> Hashtbl.replace ratios name []) contenders;
  for _ = 1 to instances do
    let reqs = random_flexible_instance rng fabric requests_per_instance in
    let optimum = (Exact.max_requests_flexible fabric reqs).Exact.count in
    if optimum > 0 then
      List.iter
        (fun (name, sched) ->
          let got = List.length (Scheduler.run sched spec reqs).Types.accepted in
          let ratio = float_of_int got /. float_of_int optimum in
          Hashtbl.replace ratios name (ratio :: Hashtbl.find ratios name))
        contenders
  done;
  List.map
    (fun (name, _) ->
      let rs = Hashtbl.find ratios name in
      let n = List.length rs in
      {
        heuristic = name;
        mean_ratio = (if n = 0 then 0.0 else List.fold_left ( +. ) 0.0 rs /. float_of_int n);
        worst_ratio = List.fold_left Float.min 1.0 rs;
        optimal_instances = List.length (List.filter (fun r -> r >= 1.0 -. 1e-9) rs);
        instances = n;
      })
    contenders

let to_table rows =
  Table.make
    ~headers:[ "heuristic"; "mean accepted/optimal"; "worst"; "matched optimum"; "instances" ]
    (List.map
       (fun r ->
         [
           r.heuristic;
           Printf.sprintf "%.3f" r.mean_ratio;
           Printf.sprintf "%.3f" r.worst_ratio;
           Printf.sprintf "%d/%d" r.optimal_instances r.instances;
           string_of_int r.instances;
         ])
       rows)
