module Table = Gridbw_report.Table
module Summary = Gridbw_metrics.Summary
module Scheduler = Gridbw_core.Scheduler
module Policy = Gridbw_core.Policy
module Exact = Gridbw_core.Exact
module Types = Gridbw_core.Types
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Malleable = Gridbw_malleable.Malleable
module Rng = Gridbw_prng.Rng

(* The §5.3 flexible workload has a dominance crossover: under moderate
   load a big profile-only-feasible transfer can displace several later
   small ones, so MALLEABLE's extra accepts are only guaranteed once the
   system is overloaded and every engine is rejecting constantly.  These
   four operating points (offered load ~31, ~25, ~21, ~16) are the
   regime the engine is shipped for; EXPERIMENTS.md documents the
   crossover. *)
let default_interarrivals = [ 0.1; 0.125; 0.15; 0.2 ]
let default_step = 100.0
let default_book_ahead = 30.0

type row = {
  mean_interarrival : float;
  offered_load : float;
  greedy : float;
  window : float;
  malleable : float;
  malleable_ba : float;
}

let engine_accept params ~mean_interarrival sched =
  Runner.mean_over_reps params (fun ~rep ->
      let spec = Runner.flexible_spec params ~mean_interarrival in
      (Runner.scheduler_summary params spec sched ~rep).Summary.accept_rate)

let run ?(interarrivals = default_interarrivals) ?(step = default_step)
    ?(book_ahead = default_book_ahead) (params : Runner.params) =
  let greedy_s = Scheduler.of_flexible `Greedy Policy.Min_rate in
  let window_s = Scheduler.of_flexible (`Window step) Policy.Min_rate in
  let malleable_s = Malleable.(scheduler default) in
  let ba_s = Malleable.(scheduler { default with book_ahead }) in
  List.map
    (fun mean_interarrival ->
      {
        mean_interarrival;
        offered_load = Runner.offered_load_of_interarrival mean_interarrival;
        greedy = engine_accept params ~mean_interarrival greedy_s;
        window = engine_accept params ~mean_interarrival window_s;
        malleable = engine_accept params ~mean_interarrival malleable_s;
        malleable_ba = engine_accept params ~mean_interarrival ba_s;
      })
    interarrivals

let to_table rows =
  Table.make
    ~headers:
      [ "interarrival (s)"; "offered load"; "GREEDY"; Printf.sprintf "WINDOW %g s" default_step;
        "MALLEABLE"; Printf.sprintf "MALLEABLE ba=%g s" default_book_ahead ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.3f" r.mean_interarrival;
           Printf.sprintf "%.1f" r.offered_load;
           Printf.sprintf "%.3f" r.greedy;
           Printf.sprintf "%.3f" r.window;
           Printf.sprintf "%.3f" r.malleable;
           Printf.sprintf "%.3f" r.malleable_ba;
         ])
       rows)

(* --- small-instance optimality gap --- *)

type gap_row = {
  size : int;
  trials : int;
  engine_accepted : int;  (** summed over trials *)
  exact_count : int;  (** summed over trials *)
  all_optimal : bool;
}

(* Self-contained small 1x1 instances (the fabric where the flow
   feasibility check is exact): windows in [0, 50], durations in
   [1, 25], MinRate up to 80 % of the port, MaxRate up to 3x. *)
let small_instance rng ~size =
  let fabric = Fabric.uniform ~ingress_count:1 ~egress_count:1 ~capacity:100.0 in
  let requests =
    List.init size (fun id ->
        let ts = Rng.float_in rng 0. 50. in
        let dur = Rng.float_in rng 1. 25. in
        let min_rate = Rng.float_in rng 2.0 80.0 in
        let slack = Rng.float_in rng 1.0 3.0 in
        Request.make ~id ~ingress:0 ~egress:0 ~volume:(min_rate *. dur) ~ts ~tf:(ts +. dur)
          ~max_rate:(min_rate *. slack))
  in
  (fabric, requests)

let gap ?(sizes = [ 4; 6; 8 ]) ?(trials = 20) ~seed () =
  List.map
    (fun size ->
      let engine_accepted = ref 0 and exact_count = ref 0 and all_optimal = ref true in
      for trial = 0 to trials - 1 do
        let rng =
          Rng.create ~seed:(Int64.add seed (Int64.of_int ((size * 1000) + trial))) ()
        in
        let fabric, requests = small_instance rng ~size in
        let result = Malleable.run Malleable.default fabric requests in
        let sol = Exact.max_requests_malleable fabric requests in
        engine_accepted := !engine_accepted + List.length result.Types.accepted;
        exact_count := !exact_count + sol.Exact.count;
        if not sol.Exact.optimal then all_optimal := false
      done;
      { size; trials; engine_accepted = !engine_accepted; exact_count = !exact_count;
        all_optimal = !all_optimal })
    sizes

let gap_table rows =
  Table.make
    ~headers:[ "instance size"; "trials"; "MALLEABLE accepts"; "optimum"; "ratio" ]
    (List.map
       (fun r ->
         [
           string_of_int r.size;
           string_of_int r.trials;
           string_of_int r.engine_accepted;
           (if r.all_optimal then string_of_int r.exact_count
            else Printf.sprintf "%d (budget hit)" r.exact_count);
           (if r.exact_count = 0 then "-"
            else Printf.sprintf "%.3f" (float_of_int r.engine_accepted /. float_of_int r.exact_count));
         ])
       rows)
