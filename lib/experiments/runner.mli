(** Shared machinery for the experiment drivers: seeded replications of a
    (workload spec, heuristic) pair, aggregated into means.

    Experiment ids, workloads and expected shapes are indexed in DESIGN.md
    (section 4); paper-vs-measured numbers live in EXPERIMENTS.md.

    {b Time-scale compression.}  The experiment workloads shrink the §4.3
    volumes by {!volume_scale} (10x): the paper's volumes give a mean
    transfer duration of ~24 minutes, so a tractable request count never
    leaves the empty-system transient.  Scaling volumes (and nothing else)
    keeps every dimensionless quantity — offered load, rate ratios, the
    window-length/duration ratio — while letting a few-thousand-request run
    cover many transfer lifetimes.  {!steady_count} grows the request count
    with the arrival rate so the arrival span covers ≥ 8 mean durations,
    within caps that keep the O(K²) slot heuristics affordable. *)

type params = {
  count : int;  (** baseline requests per replication *)
  reps : int;  (** independent replications (seed + replication index) *)
  seed : int64;  (** base seed; replication [i] uses [seed + i] *)
}

val defaults : params
(** 600 requests, 3 replications, seed 42. *)

val quick : params
(** Small sizes for smoke tests and the bench harness: 150 requests,
    2 replications. *)

val with_params : ?count:int -> ?reps:int -> ?seed:int64 -> params -> params

type rigid_kind = [ `Fcfs | `Fifo_blocking | `Slots of Gridbw_core.Rigid.cost_kind ]
type flex_kind = [ `Greedy | `Window of float | `Window_deferred of float ]

val volume_scale : float
(** 0.1 — see the module comment. *)

val scaled_volumes : Gridbw_workload.Spec.volume_dist
val mean_duration : float
(** Expected transfer duration at the requested rate, seconds (~146 s). *)

val steady_count : ?cap:int -> int -> mean_interarrival:float -> int
(** [max base (min cap' (8 * mean_duration / mean_interarrival))] with
    [cap' = min cap (10 * base)]; default [cap] 3000. *)

val rigid_spec : params -> load:float -> Gridbw_workload.Spec.t
(** §4.3 rigid workload (scaled volumes) calibrated to the offered load. *)

val flexible_spec : params -> mean_interarrival:float -> Gridbw_workload.Spec.t
(** §5.3 flexible workload (scaled volumes). *)

val offered_load_of_interarrival : float -> float
(** The offered load a mean inter-arrival induces under the scaled
    volumes on the paper platform. *)

val scheduler_summary :
  ?ctx:Gridbw_core.Runtime.ctx ->
  params ->
  Gridbw_workload.Spec.t ->
  Gridbw_core.Scheduler.t ->
  rep:int ->
  Gridbw_metrics.Summary.t
(** One replication: draw the trace from the spec with the replication's
    seed, run the scheduler, summarise.  {!rigid_summary} and
    {!flexible_summary} are this with {!Gridbw_core.Scheduler.of_rigid} /
    [of_flexible]. *)

val rigid_summary :
  params -> load:float -> rigid_kind -> rep:int -> Gridbw_metrics.Summary.t
(** One replication of a rigid workload at the given offered load. *)

val flexible_summary :
  params ->
  mean_interarrival:float ->
  flex_kind ->
  Gridbw_core.Policy.t ->
  rep:int ->
  Gridbw_metrics.Summary.t
(** One replication of a flexible workload. *)

val mean_over_reps : params -> (rep:int -> float) -> float
(** Average a per-replication metric over [params.reps] replications. *)

val rigid_kinds : (string * rigid_kind) list
(** The §4 heuristics with their paper names: the blocking FIFO of
    Figure 4, the §4.1 FCFS, and the three slot heuristics. *)

val rigid_schedulers : (string * Gridbw_core.Scheduler.t) list
(** {!rigid_kinds} as first-class schedulers, same labels and order. *)

val policy_ladder : (string * Gridbw_core.Policy.t) list
(** MIN BW plus f ∈ {0.2, 0.5, 0.8, 1.0} — the §5.3 policy sweep. *)

val seed_for : params -> rep:int -> int64
