module Table = Gridbw_report.Table
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Distributed = Gridbw_control.Distributed
module Policy = Gridbw_core.Policy
module Rng = Gridbw_prng.Rng

type row = {
  gossip_interval : float;
  accept_rate : float;
  egress_violations : float;
  peak_overbooking : float;
}

let run ?(gossip_intervals = [ 0.0; 1.0; 5.0; 20.0; 60.0 ]) ?(mean_interarrival = 0.15)
    (params : Runner.params) =
  List.map
    (fun gossip_interval ->
      let accept = ref 0.0 and violations = ref 0.0 and peak = ref 0.0 in
      for rep = 0 to params.Runner.reps - 1 do
        let spec = Runner.flexible_spec params ~mean_interarrival in
        let requests = Gen.generate (Rng.create ~seed:(Runner.seed_for params ~rep) ()) spec in
        let r =
          Distributed.run spec.Spec.fabric (Policy.Fraction_of_max 0.8) ~gossip_interval requests
        in
        accept := !accept +. r.Distributed.accept_rate;
        violations := !violations +. float_of_int r.Distributed.egress_violations;
        peak := Float.max !peak r.Distributed.peak_overbooking
      done;
      let reps = float_of_int (max 1 params.Runner.reps) in
      {
        gossip_interval;
        accept_rate = !accept /. reps;
        egress_violations = !violations /. reps;
        peak_overbooking = !peak;
      })
    gossip_intervals

let to_table rows =
  Table.make
    ~headers:[ "gossip interval (s)"; "accept rate"; "egress violations"; "peak overbooking" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.0f" r.gossip_interval;
           Printf.sprintf "%.3f" r.accept_rate;
           Printf.sprintf "%.1f" r.egress_violations;
           Printf.sprintf "%.2fx" r.peak_overbooking;
         ])
       rows)
