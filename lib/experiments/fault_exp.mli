(** Experiment E16 — guarantees under faults.

    The paper's admission control promises every accepted request its
    deadline; E16 measures what survives of that promise when port
    capacities degrade.  A PRNG-driven renewal fault process (MTBF ×
    outage-depth sweep) hits the same workload under three variants:
    GREEDY with residual re-admission, WINDOW with residual re-admission,
    and GREEDY with no recovery.  A second table ablates the
    victim-selection policy.  Shapes in DESIGN.md section 5. *)

type row = {
  variant : string;
  mtbf : float;
  depth : float;  (** mean retained-capacity fraction during outages *)
  accept : float;
      (** accept rate of the original requests (re-admitted residuals
          compete for capacity, so recovery shifts this slightly) *)
  kept : float;  (** fraction of admitted, non-aborted transfers that met
                     their original deadline *)
  recovered : float;  (** fraction of preempted transfers that still finished *)
  violation_min : float;  (** mean guarantee-violation minutes per run *)
  goodput : float;  (** delivered MB over the workload span, MB/s *)
}

val run :
  ?fault_specs:Gridbw_fault.Fault.spec list ->
  ?mean_interarrival:float ->
  Runner.params ->
  row list
(** Defaults: mild (40–70 % retained) and severe (0–30 %) outages at
    MTBF 400 s plus severe at MTBF 150 s; inter-arrival 0.3 s. *)

val to_table : row list -> Gridbw_report.Table.t

val run_ablation :
  ?mean_interarrival:float -> Runner.params -> (string * row) list
(** Victim-policy ablation (GREEDY + recovery, severe faults). *)

val ablation_table : (string * row) list -> Gridbw_report.Table.t

val parity : Runner.params -> bool * bool
(** [(greedy_ok, window_ok)]: with an empty fault script the injector's
    decisions and summary metrics equal {!Gridbw_core.Flexible.greedy} /
    [window] exactly. *)
