module Figure = Gridbw_report.Figure
module Summary = Gridbw_metrics.Summary
module Policy = Gridbw_core.Policy

let default_interarrivals = [ 0.1; 0.2; 0.5; 1.0; 2.0; 5.0 ]
let default_steps = [ 100.0; 200.0; 400.0 ]

let accept_curve params kind policy interarrivals =
  List.map
    (fun mean_interarrival ->
      let y =
        Runner.mean_over_reps params (fun ~rep ->
            (Runner.flexible_summary params ~mean_interarrival kind policy ~rep)
              .Summary.accept_rate)
      in
      (mean_interarrival, y))
    interarrivals

let run ?(interarrivals = default_interarrivals) ?(steps = default_steps) params =
  let policy = Policy.Fraction_of_max 1.0 in
  let greedy =
    Figure.series ~label:"FCFS (greedy)" (accept_curve params `Greedy policy interarrivals)
  in
  let windows =
    List.map
      (fun step ->
        Figure.series
          ~label:(Printf.sprintf "WINDOW %g s" step)
          (accept_curve params (`Window step) policy interarrivals))
      steps
  in
  Figure.make ~id:"fig5" ~title:"FCFS vs interval-based heuristics, heavy load (paper Fig. 5)"
    ~x_label:"mean inter-arrival (s)" ~y_label:"accept rate" (greedy :: windows)
