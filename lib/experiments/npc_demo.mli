(** Experiment E9 — Theorem 1 made executable: build the 3-DM reduction on
    random instances and confirm, with the exact unit-request solver, that
    K requests are schedulable exactly when a perfect matching exists. *)

type row = {
  n : int;
  triples : int;
  requests : int;
  k : int;
  has_matching : bool;
  schedulable : bool;  (** exact solver accepted >= K requests *)
  agree : bool;
  nodes : int;  (** search nodes the exact solver explored *)
}

val run : ?sizes:(int * int) list -> Runner.params -> row list
(** [sizes] is a list of [(n, instances)]; default [(2, 6); (3, 4)].
    Instances alternate between matching-promised and unconstrained
    random. *)

val to_table : row list -> Gridbw_report.Table.t
