(** Experiments E3/E4 — paper Figures 6 and 7: bandwidth-allocation
    policies (MIN BW and f × MaxRate for several f) under the FCFS/GREEDY
    heuristic (Fig. 6) and the WINDOW heuristic with 400 s intervals
    (Fig. 7), each on a heavy-load panel (inter-arrival 0.1–5 s) and an
    underloaded panel (3–20 s).

    Expected shape (§5.3): in underload, smaller guaranteed bandwidth
    accepts more requests; under heavy load the ordering compresses and
    partially inverts because full-rate transfers free the ports sooner. *)

val heavy_interarrivals : float list
(** 0.1, 0.5, 1, 2, 5. *)

val underloaded_interarrivals : float list
(** 3, 5, 8, 12, 20. *)

val run :
  ?heavy:float list ->
  ?underloaded:float list ->
  kind:Runner.flex_kind ->
  id_prefix:string ->
  title:string ->
  Runner.params ->
  Gridbw_report.Figure.t * Gridbw_report.Figure.t
(** [(heavy panel, underloaded panel)], one series per policy. *)

val figure6 : Runner.params -> Gridbw_report.Figure.t * Gridbw_report.Figure.t
(** Fig. 6: GREEDY. *)

val figure7 : Runner.params -> Gridbw_report.Figure.t * Gridbw_report.Figure.t
(** Fig. 7: WINDOW with 400 s intervals. *)
