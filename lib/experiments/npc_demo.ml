module Table = Gridbw_report.Table
module Npc = Gridbw_core.Npc
module Unit_exact = Gridbw_core.Unit_exact
module Rng = Gridbw_prng.Rng

type row = {
  n : int;
  triples : int;
  requests : int;
  k : int;
  has_matching : bool;
  schedulable : bool;
  agree : bool;
  nodes : int;
}

let run ?(sizes = [ (2, 6); (3, 4) ]) (params : Runner.params) =
  let rng = Rng.create ~seed:params.Runner.seed () in
  List.concat_map
    (fun (n, instances) ->
      List.init instances (fun i ->
          let t =
            if i mod 2 = 0 then Npc.random rng ~n ~extra_triples:(Rng.int_in rng 0 n)
            else Npc.random_no_promise rng ~n ~triples:(Rng.int_in rng n (2 * n))
          in
          let inst, k = Npc.reduce t in
          let sol = Unit_exact.solve inst in
          let has_matching = Npc.has_matching t <> None in
          let schedulable = sol.Unit_exact.count >= k in
          {
            n;
            triples = List.length t.Npc.triples;
            requests = Array.length inst.Unit_exact.reqs;
            k;
            has_matching;
            schedulable;
            agree = has_matching = schedulable;
            nodes = sol.Unit_exact.nodes;
          }))
    sizes

let to_table rows =
  Table.make
    ~headers:[ "n"; "|T|"; "requests"; "K"; "3-DM matching"; ">=K schedulable"; "agree"; "nodes" ]
    (List.map
       (fun r ->
         [
           string_of_int r.n;
           string_of_int r.triples;
           string_of_int r.requests;
           string_of_int r.k;
           string_of_bool r.has_matching;
           string_of_bool r.schedulable;
           string_of_bool r.agree;
           string_of_int r.nodes;
         ])
       rows)
