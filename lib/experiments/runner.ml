module Rng = Gridbw_prng.Rng
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Fabric = Gridbw_topology.Fabric
module Summary = Gridbw_metrics.Summary
module Rigid = Gridbw_core.Rigid
module Policy = Gridbw_core.Policy
module Scheduler = Gridbw_core.Scheduler
module Types = Gridbw_core.Types

type params = { count : int; reps : int; seed : int64 }

let defaults = { count = 600; reps = 3; seed = 42L }
let quick = { count = 150; reps = 2; seed = 42L }

let with_params ?count ?reps ?seed p =
  {
    count = Option.value ~default:p.count count;
    reps = Option.value ~default:p.reps reps;
    seed = Option.value ~default:p.seed seed;
  }

type rigid_kind = [ `Fcfs | `Fifo_blocking | `Slots of Rigid.cost_kind ]
type flex_kind = [ `Greedy | `Window of float | `Window_deferred of float ]

let seed_for p ~rep = Int64.add p.seed (Int64.of_int rep)

(* Experiment workloads compress the paper's volumes by 10x (see DESIGN.md
   section 3): mean transfer duration drops from ~24 min to ~2.4 min, so a
   run of a few thousand requests covers many transfer lifetimes and the
   measured rates reflect steady state rather than the empty-system
   transient.  Load, window/duration and rate ratios are unchanged. *)
let volume_scale = 0.1

let scaled_volumes =
  Spec.Choice (Array.map (fun v -> v *. volume_scale) Spec.paper_volume_set)

let rate_lo = 10.0
and rate_hi = 1000.0

(* E[vol / rate] for rate ~ U[lo, hi]: E[vol] * ln(hi/lo) / (hi - lo). *)
let mean_duration =
  Spec.mean_volume scaled_volumes *. (log (rate_hi /. rate_lo) /. (rate_hi -. rate_lo))

(* Enough requests that the arrival span covers >= ~8 transfer lifetimes,
   capped to keep the O(K^2) slot heuristics tractable. *)
let steady_count ?(cap = 3000) base ~mean_interarrival =
  let cap = min cap (base * 10) in
  let needed = int_of_float (Float.ceil (8.0 *. mean_duration /. mean_interarrival)) in
  max base (min cap needed)

let offered_load_of_interarrival mean_interarrival =
  Spec.mean_volume scaled_volumes
  /. (mean_interarrival *. Fabric.half_total_capacity (Fabric.paper_default ()))

let rigid_spec p ~load =
  if load <= 0. then invalid_arg "Runner.rigid_spec: load must be positive";
  let fabric = Fabric.paper_default () in
  let mean_interarrival =
    Spec.mean_volume scaled_volumes /. (load *. Fabric.half_total_capacity fabric)
  in
  Spec.make ~fabric ~volumes:scaled_volumes ~rate_lo ~rate_hi ~flexibility:Spec.Rigid
    ~count:(steady_count ~cap:2500 p.count ~mean_interarrival)
    ~mean_interarrival ()

let flexible_spec p ~mean_interarrival =
  Spec.make ~volumes:scaled_volumes ~rate_lo ~rate_hi
    ~flexibility:(Spec.Flexible { max_slack = 4.0 })
    ~count:(steady_count ~cap:8000 p.count ~mean_interarrival)
    ~mean_interarrival ()

let summary_of_result fabric (result : Types.result) =
  Summary.compute fabric ~all:result.Types.all ~accepted:result.Types.accepted

let scheduler_summary ?ctx p spec sched ~rep =
  let requests = Gen.generate (Rng.create ~seed:(seed_for p ~rep) ()) spec in
  summary_of_result spec.Spec.fabric (Scheduler.run ?ctx sched spec requests)

let rigid_summary p ~load kind ~rep =
  scheduler_summary p (rigid_spec p ~load) (Scheduler.of_rigid kind) ~rep

let flexible_summary p ~mean_interarrival kind policy ~rep =
  scheduler_summary p (flexible_spec p ~mean_interarrival) (Scheduler.of_flexible kind policy) ~rep

let mean_over_reps p f =
  let acc = ref 0.0 in
  for rep = 0 to p.reps - 1 do
    acc := !acc +. f ~rep
  done;
  !acc /. float_of_int (max 1 p.reps)

let rigid_kinds =
  [
    ("FIFO (blocking)", `Fifo_blocking);
    ("FCFS", `Fcfs);
    ("CUMULATED-SLOTS", `Slots Rigid.Cumulated);
    ("MINBW-SLOTS", `Slots Rigid.Min_bw);
    ("MINVOL-SLOTS", `Slots Rigid.Min_vol);
  ]

let rigid_schedulers =
  List.map (fun (label, kind) -> (label, Scheduler.of_rigid kind)) rigid_kinds

let policy_ladder =
  [
    ("MIN BW", Policy.Min_rate);
    ("f=0.2", Policy.Fraction_of_max 0.2);
    ("f=0.5", Policy.Fraction_of_max 0.5);
    ("f=0.8", Policy.Fraction_of_max 0.8);
    ("f=1.0", Policy.Fraction_of_max 1.0);
  ]
