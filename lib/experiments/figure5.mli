(** Experiment E2 — paper Figure 5: FCFS (GREEDY) versus the interval-based
    WINDOW heuristic at several window lengths, on a heavily loaded network
    (mean inter-arrival 0.1–5 s), bandwidth policy f = 1.

    Expected shape (§5.3): WINDOW well above GREEDY throughout; accept rate
    grows with the window length; GREEDY under ~20 % while large windows
    pass 50 %. *)

val default_interarrivals : float list
(** 0.1, 0.2, 0.5, 1, 2, 5 (seconds). *)

val default_steps : float list
(** Window lengths 100, 200, 400 s as in the paper (WINDOW keeps each
    request's own start time, so the interval length is a pure lookahead
    knob and does not need the time-scale compression). *)

val run :
  ?interarrivals:float list -> ?steps:float list -> Runner.params -> Gridbw_report.Figure.t
