(** Experiment E7 — the paper's motivation (§1, §5.3): in an overloaded
    network, uncontrolled max-min sharing (the TCP surrogate) lets bulk
    transfers run arbitrarily late, while the admission-controlled
    schedulers guarantee every accepted transfer its window.

    The same flexible workload flows through (a) the {!Gridbw_baseline.Fluid}
    max-min simulator, (b) GREEDY, and (c) WINDOW(400).  For each approach
    the table reports the fraction of transfers finished within their
    window, the on-time delivered volume, and the completion-time
    predictability. *)

type row = {
  approach : string;
  served : float;  (** fraction of requests allowed to transmit *)
  on_time : float;  (** fraction of all requests finished by their tf *)
  on_time_volume : float;  (** MB delivered within window / MB offered *)
  mean_stretch : float;
      (** mean (finish - ts)/(tf - ts) over served transfers; <= 1 means
          within the window *)
}

val run :
  ?mean_interarrival:float -> Runner.params -> row list
(** Default inter-arrival 0.2 s — offered load ~1.6 under the scaled
    volumes (see {!Runner}).  The request count is capped at 2000: the
    exact fluid baseline is quadratic in it. *)

val to_table : row list -> Gridbw_report.Table.t
