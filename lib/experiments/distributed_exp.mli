(** Experiment E11 — distributed allocation (section 7 future work):
    sweep the gossip interval of {!Gridbw_control.Distributed} and compare
    against the centralised GREEDY controller on the same workload.

    Expected shape: accept rate stays close to centralised, but stale
    egress views overbook egress ports more and more as the interval grows
    — the cost of decentralisation is safety, not admissions. *)

type row = {
  gossip_interval : float;  (** 0 = centralised-equivalent *)
  accept_rate : float;
  egress_violations : float;  (** mean per replication *)
  peak_overbooking : float;  (** worst over replications *)
}

val run :
  ?gossip_intervals:float list -> ?mean_interarrival:float -> Runner.params -> row list
(** Defaults: intervals {0, 1, 5, 20, 60} s, inter-arrival 0.15 s
    (load ~2). *)

val to_table : row list -> Gridbw_report.Table.t
