(** Experiment E13 — the data-plane claim of section 5.4: over a shared
    deep bottleneck, raw TCP bulk flows lose segments, share unfairly and
    finish unpredictably; the same flows shaped to their reserved rates
    (Σ reservations = bottleneck capacity) see no losses and finish at
    deterministic times — "ensuring a stable bandwidth by an independent
    control plane enables well tuned TCP flows to fully utilize their
    allocated capacity". *)

type row = {
  treatment : string;
  completed : int;
  mean_completion : float;  (** rounds, over completed flows *)
  cov_completion : float;  (** coefficient of variation — predictability *)
  loss_events : int;
  utilization : float;
  jain : float;
}

val run :
  ?flows:int -> ?volume:float -> ?capacity:float -> ?max_rounds:int -> Runner.params -> row list
(** Four treatments: uncontrolled Reno, uncontrolled BIC, uncontrolled
    mixed, and reservation-shaped (equal shares).  Defaults: 20 flows of
    50k segments over a 1000 segment/round bottleneck. *)

val to_table : row list -> Gridbw_report.Table.t
