module Table = Gridbw_report.Table
module Summary = Gridbw_metrics.Summary
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Flexible = Gridbw_core.Flexible
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Rng = Gridbw_prng.Rng

let default_fs = [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ]

type row = {
  f : float;
  heuristic : string;
  regime : string;
  accept_rate : float;
  mean_speedup : float;
  guaranteed_fraction : float;
}

(* Mean inter-arrivals chosen for offered loads ~0.5 and ~5 under the
   scaled volumes (Runner.offered_load_of_interarrival). *)
let regimes = [ ("underloaded", 0.6); ("overloaded", 0.06) ]
let kinds = [ ("greedy", `Greedy); ("window(400)", `Window 400.0) ]

let run ?(fs = default_fs) (params : Runner.params) =
  List.concat_map
    (fun (regime, mean_interarrival) ->
      List.concat_map
        (fun (hname, kind) ->
          List.map
            (fun f ->
              let policy = Policy.Fraction_of_max f in
              let accept = ref 0.0 and speedup = ref 0.0 and guaranteed = ref 0.0 in
              for rep = 0 to params.Runner.reps - 1 do
                let spec = Runner.flexible_spec params ~mean_interarrival in
                let requests =
                  Gen.generate (Rng.create ~seed:(Runner.seed_for params ~rep) ()) spec
                in
                let result = Flexible.run kind spec.Spec.fabric policy requests in
                let summary =
                  Summary.compute spec.Spec.fabric ~all:requests
                    ~accepted:result.Types.accepted
                in
                accept := !accept +. summary.Summary.accept_rate;
                speedup := !speedup +. summary.Summary.mean_speedup;
                let n_acc = List.length result.Types.accepted in
                if n_acc > 0 then
                  guaranteed :=
                    !guaranteed
                    +. float_of_int (Summary.guaranteed_count ~f result.Types.accepted)
                       /. float_of_int n_acc
              done;
              let reps = float_of_int (max 1 params.Runner.reps) in
              {
                f;
                heuristic = hname;
                regime;
                accept_rate = !accept /. reps;
                mean_speedup = !speedup /. reps;
                guaranteed_fraction = !guaranteed /. reps;
              })
            fs)
        kinds)
    regimes

let to_table rows =
  Table.make
    ~headers:[ "regime"; "heuristic"; "f"; "accept rate"; "mean speedup"; "guaranteed" ]
    (List.map
       (fun r ->
         [
           r.regime;
           r.heuristic;
           Printf.sprintf "%.1f" r.f;
           Printf.sprintf "%.3f" r.accept_rate;
           Printf.sprintf "%.2f" r.mean_speedup;
           Printf.sprintf "%.3f" r.guaranteed_fraction;
         ])
       rows)
