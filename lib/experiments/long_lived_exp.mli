(** Experiment E10 — the polynomial special case of section 3: for uniform
    long-lived requests the max-flow scheduler is optimal, while the greedy
    packer can be beaten.  Sweeps the number of requests on the paper
    platform and reports greedy vs optimal accept counts. *)

type row = {
  requests : int;
  uniform_bw : float;
  greedy_accepted : float;  (** mean over replications *)
  optimal_accepted : float;
  gap : float;  (** 1 - greedy/optimal *)
}

val run : ?request_counts:int list -> ?uniform_bw:float -> Runner.params -> row list
(** Defaults: 50–800 requests, 300 MB/s uniform demand. *)

val to_table : row list -> Gridbw_report.Table.t
