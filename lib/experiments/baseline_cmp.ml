module Table = Gridbw_report.Table
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Fluid = Gridbw_baseline.Fluid
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Rng = Gridbw_prng.Rng

type row = {
  approach : string;
  served : float;
  on_time : float;
  on_time_volume : float;
  mean_stretch : float;
}

type tally = {
  mutable served_n : int;
  mutable on_time_n : int;
  mutable on_time_vol : float;
  mutable stretch_sum : float;
  mutable total : int;
  mutable offered_vol : float;
}

let fresh () =
  { served_n = 0; on_time_n = 0; on_time_vol = 0.0; stretch_sum = 0.0; total = 0; offered_vol = 0.0 }

let finish tally name =
  let n = float_of_int (max 1 tally.total) in
  {
    approach = name;
    served = float_of_int tally.served_n /. n;
    on_time = float_of_int tally.on_time_n /. n;
    on_time_volume = (if tally.offered_vol > 0. then tally.on_time_vol /. tally.offered_vol else 0.);
    mean_stretch =
      (if tally.served_n = 0 then 0.0 else tally.stretch_sum /. float_of_int tally.served_n);
  }

let run ?(mean_interarrival = 0.2) (params : Runner.params) =
  (* The exact max-min fluid baseline costs O(events x concurrency); in
     overload the concurrency approaches the request count, so the run is
     quadratic.  Cap the workload: the qualitative outcome (massive
     deadline misses without control) is insensitive to it. *)
  let params = Runner.with_params ~count:(min params.Runner.count 200) params in
  let fluid_t = fresh () and greedy_t = fresh () and window_t = fresh () in
  for rep = 0 to params.Runner.reps - 1 do
    let spec = Runner.flexible_spec params ~mean_interarrival in
    let requests = Gen.generate (Rng.create ~seed:(Runner.seed_for params ~rep) ()) spec in
    let offered = List.fold_left (fun acc (r : Request.t) -> acc +. r.volume) 0.0 requests in
    let total = List.length requests in
    (* (a) no control: every flow transmits, sharing max-min fairly. *)
    let fluid = Fluid.simulate spec.Spec.fabric requests in
    fluid_t.total <- fluid_t.total + total;
    fluid_t.offered_vol <- fluid_t.offered_vol +. offered;
    List.iter
      (fun f ->
        fluid_t.served_n <- fluid_t.served_n + 1;
        fluid_t.stretch_sum <- fluid_t.stretch_sum +. f.Fluid.stretch;
        if f.Fluid.deadline_met then begin
          fluid_t.on_time_n <- fluid_t.on_time_n + 1;
          fluid_t.on_time_vol <- fluid_t.on_time_vol +. f.Fluid.request.Request.volume
        end)
      fluid.Fluid.flows;
    (* (b)/(c) admission control: accepted requests finish at tau <= tf by
       construction. *)
    let controlled tally kind =
      let result = Flexible.run kind spec.Spec.fabric (Policy.Fraction_of_max 1.0) requests in
      tally.total <- tally.total + total;
      tally.offered_vol <- tally.offered_vol +. offered;
      List.iter
        (fun (a : Allocation.t) ->
          let r = a.Allocation.request in
          tally.served_n <- tally.served_n + 1;
          tally.on_time_n <- tally.on_time_n + 1;
          tally.on_time_vol <- tally.on_time_vol +. r.Request.volume;
          tally.stretch_sum <-
            tally.stretch_sum
            +. ((a.Allocation.tau -. r.Request.ts) /. (r.Request.tf -. r.Request.ts)))
        result.Types.accepted
    in
    controlled greedy_t `Greedy;
    controlled window_t (`Window 400.0)
  done;
  [
    finish fluid_t "max-min fluid (TCP surrogate)";
    finish greedy_t "GREEDY f=1.0";
    finish window_t "WINDOW(400) f=1.0";
  ]

let to_table rows =
  Table.make
    ~headers:[ "approach"; "served"; "on-time"; "on-time volume"; "mean stretch" ]
    (List.map
       (fun r ->
         [
           r.approach;
           Printf.sprintf "%.3f" r.served;
           Printf.sprintf "%.3f" r.on_time;
           Printf.sprintf "%.3f" r.on_time_volume;
           Printf.sprintf "%.2f" r.mean_stretch;
         ])
       rows)
