module Table = Gridbw_report.Table
module Tcp = Gridbw_transport.Tcp

type row = {
  treatment : string;
  completed : int;
  mean_completion : float;
  cov_completion : float;
  loss_events : int;
  utilization : float;
  jain : float;
}

let row_of treatment (result : Tcp.result) =
  let completions =
    List.filter_map
      (fun (f : Tcp.flow_report) -> Option.map float_of_int f.Tcp.finished_round)
      result.Tcp.flows
  in
  let n = List.length completions in
  let mean = if n = 0 then 0.0 else List.fold_left ( +. ) 0.0 completions /. float_of_int n in
  let var =
    if n < 2 then 0.0
    else
      List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0.0 completions
      /. float_of_int (n - 1)
  in
  {
    treatment;
    completed = n;
    mean_completion = mean;
    cov_completion = (if mean > 0. then sqrt var /. mean else 0.0);
    loss_events = List.fold_left (fun acc f -> acc + f.Tcp.loss_events) 0 result.Tcp.flows;
    utilization = result.Tcp.bottleneck_utilization;
    jain = result.Tcp.jain_fairness;
  }

let run ?(flows = 20) ?(volume = 50_000.) ?(capacity = 1000.) ?(max_rounds = 20_000)
    (params : Runner.params) =
  ignore params;
  (* Stagger starts a little so slow-start phases interleave (round-robin
     over the first 32 rounds); deterministic. *)
  let mk i algorithm rate_cap =
    Tcp.flow ~algorithm ~start_round:(i mod 32) ?rate_cap ~volume ()
  in
  let uncontrolled name algorithm_of =
    let specs = List.init flows (fun i -> mk i (algorithm_of i) None) in
    row_of name (Tcp.simulate ~capacity ~max_rounds specs)
  in
  let fair_share = capacity /. float_of_int flows in
  let controlled =
    let specs = List.init flows (fun i -> mk i (if i mod 2 = 0 then Tcp.Reno else Tcp.Bic) (Some fair_share)) in
    row_of "shaped reservations (f=1 shares)" (Tcp.simulate ~capacity ~max_rounds specs)
  in
  [
    uncontrolled "uncontrolled Reno" (fun _ -> Tcp.Reno);
    uncontrolled "uncontrolled BIC" (fun _ -> Tcp.Bic);
    uncontrolled "uncontrolled mixed" (fun i -> if i mod 2 = 0 then Tcp.Reno else Tcp.Bic);
    controlled;
  ]

let to_table rows =
  Table.make
    ~headers:
      [ "treatment"; "completed"; "mean completion (rounds)"; "completion CoV"; "loss events";
        "utilization"; "Jain" ]
    (List.map
       (fun r ->
         [
           r.treatment;
           string_of_int r.completed;
           Printf.sprintf "%.0f" r.mean_completion;
           Printf.sprintf "%.3f" r.cov_completion;
           string_of_int r.loss_events;
           Printf.sprintf "%.3f" r.utilization;
           Printf.sprintf "%.3f" r.jain;
         ])
       rows)
