(** Experiment E5 — the §5.3 tuning-factor study: sweep f from 0 to 1 and
    measure, for GREEDY and WINDOW(400) in an underloaded and an overloaded
    regime, the accept rate, the mean speedup over MinRate, and the
    fraction of accepted requests that actually got their [f × MaxRate]
    guarantee.

    Expected shape: accept-rate loss roughly linear in f under light load;
    speedup grows with f — the knob trades admission for transfer time
    without changing the allocation algorithm. *)

val default_fs : float list
(** 0, 0.2, 0.4, 0.6, 0.8, 1.0. *)

type row = {
  f : float;
  heuristic : string;
  regime : string;  (** "underloaded" or "overloaded" *)
  accept_rate : float;
  mean_speedup : float;
  guaranteed_fraction : float;  (** #guaranteed / accepted (§2.3) *)
}

val run : ?fs:float list -> Runner.params -> row list
val to_table : row list -> Gridbw_report.Table.t
