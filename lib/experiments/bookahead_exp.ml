module Table = Gridbw_report.Table
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Request = Gridbw_request.Request
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Rng = Gridbw_prng.Rng
module Dist = Gridbw_prng.Dist

type row = {
  booking_fraction : float;
  overall_accept : float;
  booker_accept : float;
  walkin_accept : float;
  bookers : int;
}

let run ?(fractions = [ 0.0; 0.25; 0.5; 0.75; 1.0 ]) ?(mean_lead = 300.0)
    ?(mean_interarrival = 0.15) (params : Runner.params) =
  List.map
    (fun booking_fraction ->
      let booker_total = ref 0 and booker_acc = ref 0 in
      let walkin_total = ref 0 and walkin_acc = ref 0 in
      for rep = 0 to params.Runner.reps - 1 do
        let spec = Runner.flexible_spec params ~mean_interarrival in
        let rng = Rng.create ~seed:(Runner.seed_for params ~rep) () in
        let requests = Gen.generate rng spec in
        (* Deterministic per-request leads drawn after the workload, so the
           same requests flow through every fraction with fresh coin
           flips. *)
        let lead_rng = Rng.create ~seed:(Int64.add (Runner.seed_for params ~rep) 1000L) () in
        let leads =
          List.map
            (fun (r : Request.t) ->
              let lead =
                if Rng.float lead_rng 1.0 < booking_fraction then
                  Dist.exponential lead_rng ~mean:mean_lead
                else 0.0
              in
              (r.id, lead))
            requests
        in
        let lead_of =
          let tbl = Hashtbl.create 64 in
          List.iter (fun (id, l) -> Hashtbl.replace tbl id l) leads;
          fun (r : Request.t) -> Hashtbl.find tbl r.id
        in
        let result =
          Flexible.book_ahead spec.Spec.fabric (Policy.Fraction_of_max 0.8) ~announce:lead_of
            requests
        in
        List.iter
          (fun (r : Request.t) ->
            let accepted =
              match Types.decision_of result r.id with
              | Some (Types.Accepted _) -> true
              | _ -> false
            in
            if lead_of r > 0. then begin
              incr booker_total;
              if accepted then incr booker_acc
            end
            else begin
              incr walkin_total;
              if accepted then incr walkin_acc
            end)
          requests
      done;
      let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den in
      {
        booking_fraction;
        overall_accept = ratio (!booker_acc + !walkin_acc) (!booker_total + !walkin_total);
        booker_accept = ratio !booker_acc !booker_total;
        walkin_accept = ratio !walkin_acc !walkin_total;
        bookers = !booker_total;
      })
    fractions

let to_table rows =
  Table.make
    ~headers:
      [ "booking fraction"; "overall accept"; "bookers' accept"; "walk-ins' accept"; "bookers" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.2f" r.booking_fraction;
           Printf.sprintf "%.3f" r.overall_accept;
           (if r.bookers = 0 then "-" else Printf.sprintf "%.3f" r.booker_accept);
           (if r.booking_fraction >= 1.0 then "-" else Printf.sprintf "%.3f" r.walkin_accept);
           string_of_int r.bookers;
         ])
       rows)
