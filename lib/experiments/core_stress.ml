module Table = Gridbw_report.Table
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Live = Gridbw_alloc.Live
module Event_queue = Gridbw_sim.Event_queue
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Timeline = Gridbw_metrics.Timeline
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Rng = Gridbw_prng.Rng

type row = {
  rho : float;
  edge_accept : float;
  violation_time_fraction : float;
  peak_trunk_load : float;
  core_aware_accept : float;
}

(* Edge-and-trunk GREEDY: Algorithm 2 plus one aggregate counter for the
   shared core trunk. *)
let core_aware_greedy fabric ~trunk policy requests =
  let live = Live.create fabric in
  let trunk_used = ref 0.0 in
  let releases = Event_queue.create () in
  let accepted = ref 0 in
  let ordered =
    List.sort
      (fun (a : Request.t) (b : Request.t) ->
        match Float.compare a.ts b.ts with 0 -> Int.compare a.id b.id | c -> c)
      requests
  in
  List.iter
    (fun (r : Request.t) ->
      let rec drain () =
        match Event_queue.peek releases with
        | Some (tau, (i, e, bw)) when tau <= r.ts ->
            ignore (Event_queue.pop releases);
            Live.release live ~ingress:i ~egress:e ~bw;
            trunk_used := Float.max 0.0 (!trunk_used -. bw);
            drain ()
        | _ -> ()
      in
      drain ();
      match Policy.assign policy r ~now:r.ts with
      | None -> ()
      | Some bw ->
          if
            !trunk_used +. bw <= trunk *. (1. +. 1e-9)
            && Live.fits live ~ingress:r.ingress ~egress:r.egress ~bw
          then begin
            Live.grab live ~ingress:r.ingress ~egress:r.egress ~bw;
            trunk_used := !trunk_used +. bw;
            incr accepted;
            Event_queue.push releases
              ~time:(r.ts +. (r.volume /. bw))
              (r.ingress, r.egress, bw)
          end)
    ordered;
  !accepted

(* Fraction of the span where the admitted aggregate rate exceeds the
   trunk, from the exact piecewise-constant timeline. *)
let violation_stats timeline ~trunk =
  match Timeline.span timeline with
  | None -> (0.0, 0.0)
  | Some (lo, hi) when hi <= lo -> (0.0, 0.0)
  | Some (lo, hi) ->
      let samples = 512 in
      let step = (hi -. lo) /. float_of_int samples in
      let over = ref 0 and peak = ref 0.0 in
      for k = 0 to samples - 1 do
        let rate = Timeline.total_rate timeline ~at:(lo +. ((float_of_int k +. 0.5) *. step)) in
        if rate > trunk *. (1. +. 1e-9) then incr over;
        if rate > !peak then peak := rate
      done;
      (float_of_int !over /. float_of_int samples, !peak /. trunk)

let run ?(rhos = [ 0.3; 0.5; 0.7; 1.0 ]) ?(mean_interarrival = 0.15) (params : Runner.params) =
  let policy = Policy.Fraction_of_max 0.8 in
  List.map
    (fun rho ->
      let edge_acc = ref 0.0 and viol = ref 0.0 and peak = ref 0.0 and aware = ref 0.0 in
      for rep = 0 to params.Runner.reps - 1 do
        let spec = Runner.flexible_spec params ~mean_interarrival in
        let fabric = spec.Spec.fabric in
        let trunk = rho *. Fabric.half_total_capacity fabric in
        let requests = Gen.generate (Rng.create ~seed:(Runner.seed_for params ~rep) ()) spec in
        let total = float_of_int (List.length requests) in
        let edge = Flexible.greedy fabric policy requests in
        edge_acc := !edge_acc +. (float_of_int (List.length edge.Types.accepted) /. total);
        let timeline = Timeline.build fabric edge.Types.accepted in
        let vf, pk = violation_stats timeline ~trunk in
        viol := !viol +. vf;
        peak := Float.max !peak pk;
        aware :=
          !aware +. (float_of_int (core_aware_greedy fabric ~trunk policy requests) /. total)
      done;
      let reps = float_of_int (max 1 params.Runner.reps) in
      {
        rho;
        edge_accept = !edge_acc /. reps;
        violation_time_fraction = !viol /. reps;
        peak_trunk_load = !peak;
        core_aware_accept = !aware /. reps;
      })
    rhos

let to_table rows =
  Table.make
    ~headers:
      [ "core trunk (x half edge cap)"; "edge-only accept"; "trunk-overload time";
        "peak trunk load"; "core-aware accept" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.1f" r.rho;
           Printf.sprintf "%.3f" r.edge_accept;
           Printf.sprintf "%.1f%%" (100. *. r.violation_time_fraction);
           Printf.sprintf "%.2fx" r.peak_trunk_load;
           Printf.sprintf "%.3f" r.core_aware_accept;
         ])
       rows)
