module Figure = Gridbw_report.Figure
module Summary = Gridbw_metrics.Summary

let heavy_interarrivals = [ 0.1; 0.5; 1.0; 2.0; 5.0 ]
let underloaded_interarrivals = [ 3.0; 5.0; 8.0; 12.0; 20.0 ]

let panel params kind interarrivals ~id ~title =
  let series =
    List.map
      (fun (label, policy) ->
        let points =
          List.map
            (fun mean_interarrival ->
              let y =
                Runner.mean_over_reps params (fun ~rep ->
                    (Runner.flexible_summary params ~mean_interarrival kind policy ~rep)
                      .Summary.accept_rate)
              in
              (mean_interarrival, y))
            interarrivals
        in
        Figure.series ~label points)
      Runner.policy_ladder
  in
  Figure.make ~id ~title ~x_label:"mean inter-arrival (s)" ~y_label:"accept rate" series

let run ?(heavy = heavy_interarrivals) ?(underloaded = underloaded_interarrivals) ~kind
    ~id_prefix ~title params =
  ( panel params kind heavy ~id:(id_prefix ^ "-heavy") ~title:(title ^ ", heavy load"),
    panel params kind underloaded ~id:(id_prefix ^ "-under") ~title:(title ^ ", underloaded") )

let figure6 params =
  run ~kind:`Greedy ~id_prefix:"fig6"
    ~title:"FCFS heuristic under bandwidth policies (paper Fig. 6)" params

let figure7 params =
  run ~kind:(`Window 400.0) ~id_prefix:"fig7"
    ~title:"WINDOW(400) heuristic under bandwidth policies (paper Fig. 7)" params
