(** Experiment E8 — the §2.3 co-allocation story: sweeping the tuning
    factor f on a transfer-then-compute workload shows the trade between
    transfer accept rate (more jobs run) and staging speed (each job's CPU
    is claimed and released earlier).

    Expected shape: staging time falls monotonically with f; completed-job
    count falls once rejections bite; somewhere in between lies the
    best mean job completion time. *)

type row = {
  policy : string;
  completed : int;
  rejected : int;
  mean_staging_time : float;
  mean_cpu_wait : float;
  mean_completion_time : float;
  makespan : float;
}

val run :
  ?fs:float list ->
  ?mean_interarrival:float ->
  ?mean_cpu_seconds:float ->
  ?cpus_per_site:int ->
  Runner.params ->
  row list
(** One row for MIN BW plus one per f.  Defaults: f ∈ {0.25, 0.5, 0.75, 1},
    inter-arrival 0.4 s (load ~0.8 under the scaled volumes), 120 s mean
    compute, 4 CPUs per site. *)

val to_table : row list -> Gridbw_report.Table.t
