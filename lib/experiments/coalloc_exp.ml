module Table = Gridbw_report.Table
module Coalloc = Gridbw_coalloc.Coalloc
module Policy = Gridbw_core.Policy
module Spec = Gridbw_workload.Spec
module Rng = Gridbw_prng.Rng

type row = {
  policy : string;
  completed : int;
  rejected : int;
  mean_staging_time : float;
  mean_cpu_wait : float;
  mean_completion_time : float;
  makespan : float;
}

let run ?(fs = [ 0.25; 0.5; 0.75; 1.0 ]) ?(mean_interarrival = 0.4) ?(mean_cpu_seconds = 120.0)
    ?(cpus_per_site = 4) (params : Runner.params) =
  let policies =
    ("MIN BW", Policy.Min_rate)
    :: List.map (fun f -> (Policy.name (Policy.Fraction_of_max f), Policy.Fraction_of_max f)) fs
  in
  List.map
    (fun (name, policy) ->
      let acc = ref { policy = name; completed = 0; rejected = 0; mean_staging_time = 0.;
                      mean_cpu_wait = 0.; mean_completion_time = 0.; makespan = 0. } in
      for rep = 0 to params.Runner.reps - 1 do
        let spec = Runner.flexible_spec params ~mean_interarrival in
        let jobs =
          Coalloc.random_jobs (Rng.create ~seed:(Runner.seed_for params ~rep) ()) spec
            ~mean_cpu_seconds
        in
        let r = Coalloc.simulate spec.Spec.fabric ~policy ~cpus_per_site jobs in
        acc :=
          {
            !acc with
            completed = !acc.completed + r.Coalloc.completed;
            rejected = !acc.rejected + r.Coalloc.rejected;
            mean_staging_time = !acc.mean_staging_time +. r.Coalloc.mean_staging_time;
            mean_cpu_wait = !acc.mean_cpu_wait +. r.Coalloc.mean_cpu_wait;
            mean_completion_time = !acc.mean_completion_time +. r.Coalloc.mean_completion_time;
            makespan = Float.max !acc.makespan r.Coalloc.makespan;
          }
      done;
      let reps = float_of_int (max 1 params.Runner.reps) in
      {
        !acc with
        mean_staging_time = !acc.mean_staging_time /. reps;
        mean_cpu_wait = !acc.mean_cpu_wait /. reps;
        mean_completion_time = !acc.mean_completion_time /. reps;
      })
    policies

let to_table rows =
  Table.make
    ~headers:
      [ "policy"; "completed"; "rejected"; "staging (s)"; "cpu wait (s)"; "completion (s)";
        "makespan (s)" ]
    (List.map
       (fun r ->
         [
           r.policy;
           string_of_int r.completed;
           string_of_int r.rejected;
           Printf.sprintf "%.0f" r.mean_staging_time;
           Printf.sprintf "%.0f" r.mean_cpu_wait;
           Printf.sprintf "%.0f" r.mean_completion_time;
           Printf.sprintf "%.0f" r.makespan;
         ])
       rows)
