(** Experiment E6 — optimality gap of the rigid heuristics on small
    instances where the exact branch-and-bound optimum (MAX-REQUESTS is
    NP-complete, Theorem 1) is still computable.

    Expected shape: CUMULATED-SLOTS and MINBW-SLOTS land within ~10–20 % of
    the optimum on average; FIFO falls far behind. *)

type row = {
  heuristic : string;
  mean_ratio : float;  (** mean over instances of accepted / optimum *)
  worst_ratio : float;
  optimal_instances : int;  (** instances where the heuristic matched the optimum *)
  instances : int;
}

val run : ?instances:int -> ?requests_per_instance:int -> Runner.params -> row list
(** Random rigid workloads on a 2×2 fabric (small so the optimum stays
    exact); defaults: 12 instances × 14 requests. *)

val run_flexible : ?instances:int -> ?requests_per_instance:int -> Runner.params -> row list
(** Same study for the on-line flexible heuristics (GREEDY and WINDOW
    under MIN BW and f=1) against {!Gridbw_core.Exact.max_requests_flexible}
    on the rate grid {MinRate, 0.5·Max, Max}; defaults: 10 instances × 12
    requests. *)

val to_table : row list -> Gridbw_report.Table.t
