(** Ablation A1 — how much of the WINDOW heuristic's gain is {e knowledge}
    (seeing a whole batch before committing) versus {e batching delay}?

    The paper's Algorithm 3 packs the arrivals of each interval while
    letting every accepted request keep its own start time — pure
    lookahead.  The deferred variant ({!Gridbw_core.Flexible.window_deferred})
    additionally delays each start to its batch boundary, as a real
    non-clairvoyant controller would have to.  Sweeping the interval
    length on a fixed heavy workload separates the two effects: lookahead
    improves monotonically with the interval, while the deferred variant
    degrades once the delay approaches typical transmission windows. *)

val default_steps : float list
(** 10, 25, 50, 100, 200, 400 s. *)

val run :
  ?steps:float list -> ?mean_interarrival:float -> Runner.params -> Gridbw_report.Figure.t
(** Accept rate vs interval length for WINDOW, WINDOW-DEFERRED and the
    GREEDY reference (flat); default inter-arrival 0.2 s (heavy load). *)
